package safeplan_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"safeplan"
)

// ExampleBuildUltimate shows the three-line path from any planner to a
// safety-guaranteed agent.
func ExampleBuildUltimate() {
	scenario := safeplan.DefaultScenario()
	kn := safeplan.NewConservativeExpert(scenario)
	agent := safeplan.BuildUltimate(scenario, kn)

	cfg := safeplan.DefaultSimConfig()
	cfg.InfoFilter = true
	r, err := safeplan.RunEpisode(cfg, agent, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("safe: %v, reached: %v\n", !r.Collided, r.Reached)
	// Output: safe: true, reached: true
}

// ExamplePlannerFunc wraps a hand-written policy; the compound planner
// guarantees safety regardless of what it outputs.
func ExamplePlannerFunc() {
	scenario := safeplan.DefaultScenario()
	fullThrottle := safeplan.PlannerFunc{
		PlannerName: "full-throttle",
		F: func(_ float64, _ safeplan.VehicleState, _ safeplan.Interval) float64 {
			return scenario.Ego.AMax
		},
	}
	agent := safeplan.BuildBasic(scenario, fullThrottle)
	r, err := safeplan.RunEpisode(safeplan.DefaultSimConfig(), agent, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("safe: %v\n", !r.Collided)
	// Output: safe: true
}

// ExampleRunCampaign aggregates the paper's per-campaign statistics.
func ExampleRunCampaign() {
	scenario := safeplan.DefaultScenario()
	agent := safeplan.BuildUltimate(scenario, safeplan.NewAggressiveExpert(scenario))
	cfg := safeplan.DefaultSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)
	cfg.InfoFilter = true
	stats, err := safeplan.RunCampaign(cfg, agent, 50, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("episodes: %d, safe rate: %.0f%%\n", stats.N, 100*stats.SafeRate())
	// Output: episodes: 50, safe rate: 100%
}

// TestSaveLoadPlannerRoundTripFacade exercises the model persistence path
// through the public API.
func TestSaveLoadPlannerRoundTripFacade(t *testing.T) {
	sc := safeplan.DefaultScenario()
	nnp, _, err := safeplan.TrainPlanner(sc, safeplan.NewConservativeExpert(sc), "rt",
		safeplan.TrainOptions{Samples: 2000, Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := nnp.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := safeplan.LoadPlanner(path, "rt2", sc)
	if err != nil {
		t.Fatal(err)
	}
	ego := safeplan.VehicleState{P: -20, V: 7}
	w := safeplan.Interval{Lo: 2, Hi: 8}
	if loaded.Accel(1, ego, w) != nnp.Accel(1, ego, w) {
		t.Fatal("loaded planner predicts differently")
	}
}

// TestCarFollowFacade exercises the second case study through the public
// API.
func TestCarFollowFacade(t *testing.T) {
	sc := safeplan.DefaultCarFollowScenario()
	cfg := safeplan.DefaultCarFollowSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)
	cfg.InfoFilter = true
	agent := safeplan.BuildCarFollowUltimate(sc, safeplan.NewCarFollowAggressiveExpert(sc))
	st, err := safeplan.RunCarFollowCampaign(cfg, agent, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.SafeRate() != 1 {
		t.Fatalf("car-following compound unsafe: %v", st.SafeRate())
	}
	r, err := safeplan.RunCarFollowEpisode(cfg, safeplan.BuildCarFollowPure(sc,
		safeplan.NewCarFollowConservativeExpert(sc)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collided {
		t.Fatal("conservative cruiser violated the gap")
	}
	if safeplan.BuildCarFollowBasic(sc, safeplan.NewCarFollowAggressiveExpert(sc)).Name() == "" {
		t.Fatal("empty name")
	}
}
