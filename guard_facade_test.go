package safeplan

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"safeplan/internal/faultinject"
)

// TestGuardedTraceParity pins a core guarantee of the guard layer: with
// a guard enabled and no fault model, the golden trace stays bit-identical
// to the unguarded run.  Compared trace-by-trace (not whole-struct)
// because the guarded result additionally carries the guard's call
// counters.
func TestGuardedTraceParity(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	cfg.Comms = DelayedComms(0.25, 0.3)
	cfg.InfoFilter = true
	agent := BuildUltimate(sc, NewConservativeExpert(sc))

	plain, err := RunEpisode(cfg, agent, 42, WithTrace())
	if err != nil {
		t.Fatal(err)
	}

	gc := DefaultGuardConfig(VehicleLimits{}) // zero limits inherit the scenario's
	opt, err := RunEpisode(cfg, agent, 42, WithTrace(), WithGuard(gc))
	if err != nil {
		t.Fatal(err)
	}

	if opt.Guard.Faults != 0 || opt.Guard.FallbackLastGood != 0 ||
		opt.Guard.FallbackEmergency != 0 || opt.Guard.WorstState != GuardNominal {
		t.Fatalf("healthy planner tripped the guard: %+v", opt.Guard)
	}
	if len(opt.Trace) != len(plain.Trace) {
		t.Fatalf("trace length %d, want %d", len(opt.Trace), len(plain.Trace))
	}
	for i := range plain.Trace {
		// Formatted compare: steps with no feasible window hold NaN
		// bounds and NaN != NaN under ==.
		if fmt.Sprintf("%+v", opt.Trace[i]) != fmt.Sprintf("%+v", plain.Trace[i]) {
			t.Fatalf("step %d differs with guard enabled:\n%+v\n%+v",
				i, plain.Trace[i], opt.Trace[i])
		}
	}
	if opt.Eta != plain.Eta || opt.Steps != plain.Steps || opt.Reached != plain.Reached {
		t.Fatalf("outcome differs: %+v vs %+v", opt, plain)
	}
}

// TestWithPlannerFaultOptions exercises the facade's fault-injection
// plumbing end to end: an invalid model is rejected with the safeplan:
// prefix, a preset reaches the runner (faults observed, guard
// auto-installed), and the run still completes safely.
func TestWithPlannerFaultOptions(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	cfg.InfoFilter = true
	agent := BuildUltimate(sc, NewConservativeExpert(sc))

	if _, err := RunEpisode(cfg, agent, 1, WithPlannerFault(faultinject.PanicP{P: 2})); err == nil ||
		!strings.HasPrefix(err.Error(), "safeplan:") {
		t.Fatalf("invalid fault model accepted: %v", err)
	}

	m, err := PlannerFaultPreset("worst")
	if err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for seed := int64(0); seed < 8; seed++ {
		res, err := RunEpisode(cfg, agent, seed, WithPlannerFault(m))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Collided {
			t.Fatalf("seed %d: collided under planner faults", seed)
		}
		if res.Guard.PlannerCalls == 0 {
			t.Fatalf("seed %d: guard not auto-installed", seed)
		}
		if res.Guard.Faults > 0 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("worst preset never fired over 8 seeds")
	}

	// The caller's config must stay untouched (options copy semantics).
	if cfg.Guard != nil || cfg.PlannerFault != nil {
		t.Fatal("RunEpisode mutated the caller's config")
	}
}

// TestCarFollowPlannerFaultOption checks the second scenario's facade
// wiring for guard and fault injection.
func TestCarFollowPlannerFaultOption(t *testing.T) {
	sc := DefaultCarFollowScenario()
	cfg := DefaultCarFollowSimConfig()
	cfg.InfoFilter = true
	agent := BuildCarFollowUltimate(sc, NewCarFollowConservativeExpert(sc))

	m, err := PlannerFaultPreset("nan")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCarFollowEpisode(cfg, agent, 5, WithPlannerFault(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided {
		t.Fatal("car-following episode collided under NaN faults")
	}
	if res.Guard.PlannerCalls == 0 {
		t.Fatal("guard not installed in car-following runner")
	}
}

// TestPlannerFaultPresetsResolve pins the re-exported preset catalogue.
func TestPlannerFaultPresetsResolve(t *testing.T) {
	names := PlannerFaultPresetNames()
	if len(names) == 0 {
		t.Fatal("empty planner-fault preset catalogue")
	}
	for _, name := range names {
		m, err := PlannerFaultPreset(name)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if name != "none" && m == nil {
			t.Errorf("preset %q resolved to nil", name)
		}
	}
	if _, err := PlannerFaultPreset("no-such"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestFaultInvariantsCatalogue: the fail-mode checker set carries the
// containment checkers and deliberately omits MonitorConsistency.
func TestFaultInvariantsCatalogue(t *testing.T) {
	inv := FaultInvariants(DefaultScenario())
	if len(inv) != 4 {
		t.Fatalf("FaultInvariants returned %d checkers", len(inv))
	}
	names := map[string]bool{}
	for _, iv := range inv {
		names[iv.Name()] = true
	}
	for _, want := range []string{"no-collision", "sound-estimate", "emergency-one-step", "guard-consistency"} {
		if !names[want] {
			t.Errorf("missing invariant %q in %v", want, names)
		}
	}
	if names["monitor-iff-boundary"] {
		t.Error("MonitorConsistency must not run under guard-forced κ_e steps")
	}
}

// TestValidateRejectsNonFinite is the satellite's table-driven check:
// every float field of the simulation configs rejects NaN and ±Inf with
// a prefixed, field-naming error.
func TestValidateRejectsNonFinite(t *testing.T) {
	vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	simCases := []struct {
		field string
		set   func(*SimConfig, float64)
	}{
		{"DtM", func(c *SimConfig, v float64) { c.DtM = v }},
		{"DtS", func(c *SimConfig, v float64) { c.DtS = v }},
		{"Horizon", func(c *SimConfig, v float64) { c.Horizon = v }},
		{"SensorDropProb", func(c *SimConfig, v float64) { c.SensorDropProb = v }},
		{"OncomingStartSpread", func(c *SimConfig, v float64) { c.OncomingStartSpread = v }},
		{"OncomingSpeedMin", func(c *SimConfig, v float64) { c.OncomingSpeedMin = v }},
		{"OncomingSpeedMax", func(c *SimConfig, v float64) { c.OncomingSpeedMax = v }},
	}
	for _, tc := range simCases {
		for _, v := range vals {
			cfg := DefaultSimConfig()
			tc.set(&cfg, v)
			err := Validate(cfg)
			if err == nil || !strings.HasPrefix(err.Error(), "safeplan:") ||
				!strings.Contains(err.Error(), tc.field) ||
				!strings.Contains(err.Error(), "finite") {
				t.Errorf("SimConfig.%s = %v: Validate() = %v", tc.field, v, err)
			}
		}
	}

	cfCases := []struct {
		field string
		set   func(*CarFollowSimConfig, float64)
	}{
		{"DtM", func(c *CarFollowSimConfig, v float64) { c.DtM = v }},
		{"DtS", func(c *CarFollowSimConfig, v float64) { c.DtS = v }},
		{"Horizon", func(c *CarFollowSimConfig, v float64) { c.Horizon = v }},
		{"LeadSpeedMin", func(c *CarFollowSimConfig, v float64) { c.LeadSpeedMin = v }},
		{"LeadSpeedMax", func(c *CarFollowSimConfig, v float64) { c.LeadSpeedMax = v }},
	}
	for _, tc := range cfCases {
		for _, v := range vals {
			cfg := DefaultCarFollowSimConfig()
			tc.set(&cfg, v)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.field) ||
				!strings.Contains(err.Error(), "finite") {
				t.Errorf("CarFollowSimConfig.%s = %v: Validate() = %v", tc.field, v, err)
			}
		}
	}
}

// TestValidateRejectsBadGuardConfig: guard misconfiguration surfaces
// through the public Validate with the safeplan: prefix.
func TestValidateRejectsBadGuardConfig(t *testing.T) {
	cfg := DefaultSimConfig()
	gc := DefaultGuardConfig(VehicleLimits{})
	gc.StepBudget = math.NaN()
	cfg.Guard = &gc
	err := Validate(cfg)
	if err == nil || !strings.HasPrefix(err.Error(), "safeplan:") ||
		!strings.Contains(err.Error(), "budget") {
		t.Fatalf("NaN step budget accepted: %v", err)
	}
}
