package safeplan

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestWithTraceDeterminism proves the traced options form is
// seed-deterministic byte-for-byte: two runs with the same seed produce
// identical results, including the full per-step trace.
func TestWithTraceDeterminism(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	cfg.Comms = DelayedComms(0.25, 0.3)
	cfg.InfoFilter = true
	agent := BuildUltimate(sc, NewConservativeExpert(sc))

	a, err := RunEpisode(cfg, agent, 42, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEpisode(cfg, agent, 42, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	// %#v is a deterministic full serialization and, unlike JSON, survives
	// the NaN window bounds recorded on steps with no feasible window.
	ab := []byte(fmt.Sprintf("%#v", a))
	bb := []byte(fmt.Sprintf("%#v", b))
	if !bytes.Equal(ab, bb) {
		t.Fatalf("traced episode not seed-deterministic:\nfirst:  %s\nsecond: %s", ab, bb)
	}
	if len(a.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
}

func TestWithWorkersValidation(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	agent := BuildPure(sc, NewConservativeExpert(sc))
	for _, n := range []int{0, -3} {
		_, err := RunCampaign(cfg, agent, 4, 1, WithWorkers(n))
		if err == nil {
			t.Fatalf("WithWorkers(%d) accepted", n)
		}
		if !strings.HasPrefix(err.Error(), "safeplan:") {
			t.Errorf("error not safeplan-prefixed: %v", err)
		}
	}
	if _, err := RunCampaign(cfg, agent, 4, 1, WithWorkers(2)); err != nil {
		t.Fatalf("WithWorkers(2) rejected: %v", err)
	}
}

// TestErrorsArePrefixed checks the satellite guarantee that every public
// entry point wraps internal errors with the "safeplan:" prefix.
func TestErrorsArePrefixed(t *testing.T) {
	sc := DefaultScenario()
	bad := DefaultSimConfig()
	bad.DtM = -1
	agent := BuildPure(sc, NewConservativeExpert(sc))

	if _, err := RunEpisode(bad, agent, 1); err == nil || !strings.HasPrefix(err.Error(), "safeplan:") {
		t.Errorf("RunEpisode: %v", err)
	}
	if _, err := RunCampaign(bad, agent, 4, 1); err == nil || !strings.HasPrefix(err.Error(), "safeplan:") {
		t.Errorf("RunCampaign: %v", err)
	}
	badMulti := DefaultMultiSimConfig()
	badMulti.Vehicles = 0
	magent := BuildMultiPure(sc, NewConservativeExpert(sc))
	if _, err := RunMultiEpisode(badMulti, magent, 1); err == nil || !strings.HasPrefix(err.Error(), "safeplan:") {
		t.Errorf("RunMultiEpisode: %v", err)
	}
	if _, err := RunMultiCampaign(badMulti, magent, 4, 1); err == nil || !strings.HasPrefix(err.Error(), "safeplan:") {
		t.Errorf("RunMultiCampaign: %v", err)
	}
	cfsc := DefaultCarFollowScenario()
	badCF := DefaultCarFollowSimConfig()
	badCF.DtM = -1
	cfAgent := BuildCarFollowPure(cfsc, NewCarFollowConservativeExpert(cfsc))
	if _, err := RunCarFollowEpisode(badCF, cfAgent, 1); err == nil || !strings.HasPrefix(err.Error(), "safeplan:") {
		t.Errorf("RunCarFollowEpisode: %v", err)
	}
	if _, err := RunCarFollowCampaign(badCF, cfAgent, 4, 1); err == nil || !strings.HasPrefix(err.Error(), "safeplan:") {
		t.Errorf("RunCarFollowCampaign: %v", err)
	}
	if _, err := WinningPercentage([]float64{1}, []float64{1, 2}); err == nil || !strings.HasPrefix(err.Error(), "safeplan:") {
		t.Errorf("WinningPercentage: %v", err)
	}
}

// TestCampaignCollector runs a 64-episode campaign through the public
// options API with a live collector (exercised under -race by `make
// check`) and checks the snapshot against the aggregate statistics.
func TestCampaignCollector(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	cfg.InfoFilter = true
	agent := BuildUltimate(sc, NewAggressiveExpert(sc))

	m := NewMetrics()
	var progressCalls atomic.Int64
	progress := ProgressFunc(func(done, total int64) { progressCalls.Add(1) })
	stats, err := RunCampaign(cfg, agent, 64, 1,
		WithCollector(MultiCollector(m, progress)),
		WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Episodes != 64 || int(s.Episodes) != stats.N {
		t.Errorf("episodes = %d, stats N = %d", s.Episodes, stats.N)
	}
	if s.Reached != int64(stats.Reached) {
		t.Errorf("reached = %d, want %d", s.Reached, stats.Reached)
	}
	if s.ProgressDone != 64 {
		t.Errorf("progress = %d/%d", s.ProgressDone, s.ProgressTotal)
	}
	if progressCalls.Load() != 64 {
		t.Errorf("progress callback fired %d times, want 64", progressCalls.Load())
	}
	if len(s.MonitorReasons) == 0 {
		t.Error("compound agent reported no monitor reasons")
	}
	if s.MonitorReasons["kn"] == 0 {
		t.Errorf("κ_n never selected: %v", s.MonitorReasons)
	}
	if s.FusedWidth.Count == 0 || s.FusedWidth.Mean > s.SoundWidth.Mean {
		t.Errorf("fused estimate no tighter than sound: fused %v vs sound %v",
			s.FusedWidth.Mean, s.SoundWidth.Mean)
	}
}

// TestCarFollowCollectorAndTrace exercises the second scenario through
// the same options: trace recording and monitor-reason telemetry.
func TestCarFollowCollectorAndTrace(t *testing.T) {
	sc := DefaultCarFollowScenario()
	cfg := DefaultCarFollowSimConfig()
	cfg.InfoFilter = true
	agent := BuildCarFollowUltimate(sc, NewCarFollowAggressiveExpert(sc))

	r, err := RunCarFollowEpisode(cfg, agent, 3, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no car-following trace recorded")
	}
	if r.Trace[len(r.Trace)-1].T == 0 && len(r.Trace) > 1 {
		t.Error("trace timestamps not advancing")
	}

	m := NewMetrics()
	if _, err := RunCarFollowCampaign(cfg, agent, 16, 1, WithCollector(m)); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Episodes != 16 {
		t.Errorf("episodes = %d", s.Episodes)
	}
	var decisions int64
	for _, c := range s.MonitorReasons {
		decisions += c
	}
	if decisions != s.Steps {
		t.Errorf("monitor decisions %d != steps %d", decisions, s.Steps)
	}
}

// TestWithDisturbanceOption checks the disturbance options end to end:
// an invalid model is rejected with the safeplan: prefix, a valid preset
// changes the episode relative to the clean channel, and the option is
// equivalent to setting the config field directly.
func TestWithDisturbanceOption(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	agent := BuildBasic(sc, NewConservativeExpert(sc))

	if _, err := RunEpisode(cfg, agent, 1, WithDisturbance(BurstLoss{PGoodBad: 2})); err == nil ||
		!strings.HasPrefix(err.Error(), "safeplan:") {
		t.Fatalf("invalid disturbance model accepted: %v", err)
	}
	if _, err := RunEpisode(cfg, agent, 1, WithSensorDisturbance(SensorBiasDrift{Max: 2})); err == nil ||
		!strings.HasPrefix(err.Error(), "safeplan:") {
		t.Fatalf("invalid sensor disturbance accepted: %v", err)
	}

	m, err := DisturbancePreset("blackout")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunEpisode(cfg, agent, 3)
	if err != nil {
		t.Fatal(err)
	}
	disturbed, err := RunEpisode(cfg, agent, 3, WithDisturbance(m))
	if err != nil {
		t.Fatal(err)
	}
	if disturbed.Collided {
		t.Fatal("compound planner collided under blackout schedule")
	}
	if disturbed.ReachTime == clean.ReachTime && disturbed.Steps == clean.Steps {
		t.Fatal("blackout disturbance had no effect on the episode")
	}

	direct := cfg
	direct.Comms = CommsConfig{Model: m}
	viaField, err := RunEpisode(direct, agent, 3)
	if err != nil {
		t.Fatal(err)
	}
	if viaField.Eta != disturbed.Eta || viaField.Steps != disturbed.Steps {
		t.Fatalf("option and config-field forms diverge: %+v vs %+v", disturbed, viaField)
	}
}

// TestDisturbancePresetsResolve pins the re-exported preset catalogue.
func TestDisturbancePresetsResolve(t *testing.T) {
	if len(DisturbancePresetNames()) == 0 || len(SensorDisturbancePresetNames()) == 0 {
		t.Fatal("empty preset catalogue")
	}
	for _, name := range DisturbancePresetNames() {
		if _, err := DisturbancePreset(name); err != nil {
			t.Errorf("preset %q: %v", name, err)
		}
	}
	for _, name := range SensorDisturbancePresetNames() {
		if _, err := SensorDisturbancePreset(name); err != nil {
			t.Errorf("sensor preset %q: %v", name, err)
		}
	}
	if _, err := DisturbancePreset("no-such"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestWithDisturbanceDoesNotMutateConfig: options apply to a local copy;
// the caller's config must stay untouched across entry points.
func TestWithDisturbanceDoesNotMutateConfig(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	agent := BuildBasic(sc, NewConservativeExpert(sc))
	m, err := DisturbancePreset("burst")
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SensorDisturbancePreset("bias")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunEpisode(cfg, agent, 1, WithDisturbance(m), WithSensorDisturbance(sm)); err != nil {
		t.Fatal(err)
	}
	if cfg.Comms.Model != nil || cfg.SensorDisturb != nil {
		t.Fatal("RunEpisode mutated the caller's config")
	}
}
