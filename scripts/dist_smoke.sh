#!/bin/sh
# dist-smoke: the distributed campaign tier's CI gate.
#
# Runs the same campaign twice:
#
#   1. baseline — campaignd -local, i.e. single-process campaign.Run;
#   2. distributed — a campaignd coordinator with two bench -worker
#      processes, one of which is SIGKILLed mid-campaign and revived
#      from its mid-shard checkpoint.
#
# The folded statistics of both runs must be BYTE-identical (cmp(1) on
# the -stats-out files).  That is the tier's headline property: worker
# count, crash timing, lease churn, and checkpoint resume must never
# change a single bit of the published statistics.  The in-tree chaos
# suite (internal/dist/chaos) proves the same property against scripted
# message faults; this script proves it against a real process kill on
# real TCP.
#
# Tunables (env): DIST_SMOKE_WORKLOAD, DIST_SMOKE_EPISODES,
# DIST_SMOKE_SEED, DIST_SMOKE_ADDR.
set -eu
cd "$(dirname "$0")/.."

WORKLOAD="${DIST_SMOKE_WORKLOAD:-none/ultimate-conservative}"
EPISODES="${DIST_SMOKE_EPISODES:-3072}"
SEED="${DIST_SMOKE_SEED:-7}"
ADDR="${DIST_SMOKE_ADDR:-127.0.0.1:7459}"

TMP="$(mktemp -d)"
COORD_PID=""
cleanup() {
	[ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "dist-smoke: building campaignd and bench"
go build -o "$TMP/campaignd" ./cmd/campaignd
go build -o "$TMP/bench" ./cmd/bench

echo "dist-smoke: baseline (single-process campaign.Run, $EPISODES episodes of $WORKLOAD)"
"$TMP/campaignd" -local -workload "$WORKLOAD" -episodes "$EPISODES" -seed "$SEED" \
	-stats-out "$TMP/baseline_stats.json" 2>"$TMP/baseline.log"

echo "dist-smoke: coordinator on $ADDR (lease TTL 2s)"
# -linger keeps the coordinator answering "done" briefly after the fold
# completes, so whichever worker did NOT submit the last shard learns the
# campaign is over from its next lease request instead of hitting a dead
# socket.
"$TMP/campaignd" -workload "$WORKLOAD" -episodes "$EPISODES" -seed "$SEED" \
	-addr "$ADDR" -lease-ttl 2s -linger 2s -checkpoint "$TMP/coord.ckpt.json" \
	-out "$TMP/dist.json" -stats-out "$TMP/dist_stats.json" 2>"$TMP/coord.log" &
COORD_PID=$!

# Worker 1 dies hard after 40 episodes — os.Exit, no cleanup, its
# mid-shard checkpoint left on disk and its lease left dangling for the
# coordinator's sweeper to expire.  The episode-count trigger makes the
# kill land mid-campaign deterministically, independent of machine speed.
"$TMP/bench" -worker "$ADDR" -worker-id victim -worker-kill-after 40 \
	-worker-checkpoint "$TMP/victim.ckpt.json" 2>"$TMP/victim.log" &
VICTIM_PID=$!
if wait "$VICTIM_PID" 2>/dev/null; then
	echo "dist-smoke: FAIL: victim exited cleanly; the kill seam never fired" >&2
	cat "$TMP/victim.log" >&2
	exit 1
fi
echo "dist-smoke: worker 'victim' died mid-campaign (checkpoint on disk, lease dangling)"

# Revive worker 1 after the 2s lease TTL has passed: its dead
# predecessor's shard is pending again, so the revival's checkpoint
# preference is honored and it RESUMES mid-shard instead of recomputing.
sleep 2.5
"$TMP/bench" -worker "$ADDR" -worker-id victim-revived \
	-worker-checkpoint "$TMP/victim.ckpt.json" 2>"$TMP/revived.log" &
REVIVED_PID=$!

# Worker 2 joins half a second later (so it cannot race the revival to
# its checkpointed shard) and the two drive the campaign to completion.
sleep 0.5
"$TMP/bench" -worker "$ADDR" -worker-id survivor 2>"$TMP/survivor.log" &
SURVIVOR_PID=$!

fail=0
wait "$SURVIVOR_PID" || { echo "dist-smoke: survivor worker failed" >&2; fail=1; }
wait "$REVIVED_PID" || { echo "dist-smoke: revived worker failed" >&2; fail=1; }
wait "$COORD_PID" || { echo "dist-smoke: coordinator failed" >&2; fail=1; }
COORD_PID=""
if [ "$fail" -ne 0 ]; then
	for f in coord victim revived survivor; do
		echo "---- $f.log ----" >&2
		cat "$TMP/$f.log" >&2 || true
	done
	exit 1
fi

if ! cmp -s "$TMP/baseline_stats.json" "$TMP/dist_stats.json"; then
	echo "dist-smoke: FAIL: distributed stats differ from the single-process baseline" >&2
	diff "$TMP/baseline_stats.json" "$TMP/dist_stats.json" >&2 || true
	exit 1
fi
if ! grep -q 'resumed=true' "$TMP/revived.log"; then
	echo "dist-smoke: FAIL: revived worker did not resume from the victim's checkpoint" >&2
	cat "$TMP/revived.log" >&2
	exit 1
fi

echo "dist-smoke: OK — distributed stats byte-identical to single-process baseline through a worker kill"
grep -E 'complete:' "$TMP/coord.log" || true
grep -E 'resumed=|shards completed' "$TMP/victim.log" "$TMP/revived.log" "$TMP/survivor.log" | sed 's/^/dist-smoke:   /' || true
