#!/bin/sh
# Determinism hygiene for the simulation hot path.
#
# Episode results must be pure functions of the seed: the engine threads
# explicit *rand.Rand streams everywhere and keeps wall-clock reads out of
# the stepping loop (the guard's wall-clock watchdog, internal/guard, is
# the one deliberate exception and lives outside the checked packages).
# This check fails when someone introduces
#
#   - a math/rand *global* call (rand.Float64(), rand.Int63(), ...) —
#     global streams are shared mutable state and break seed pairing; or
#   - a new time.Now in the stepping packages beyond the three known
#     telemetry latency probes (sim/sim.go, sim/multi.go, and
#     platoon/stepper.go, each behind a `coll != nil` check, so they
#     never run in headless campaigns).
#
# If you add a legitimate telemetry probe, raise TIME_NOW_BUDGET in the
# same change and say why in the commit message.
set -eu
cd "$(dirname "$0")/.."

# The greps recurse, so internal/sim also covers the lockstep batch
# engine (internal/sim/batch), which must stay entirely wall-clock-free:
# phase-major stepping has no per-lane planner timing (StepProbe.PlannerNs
# is 0 by design there — see the package doc).
PKGS="internal/sim internal/platoon internal/fusion internal/kalman internal/comms internal/reach internal/monitor internal/interval"
# Budget 3: the sim.go and multi.go probes plus the platoon stepper's
# planner-latency probe, all gated behind `coll != nil`.
TIME_NOW_BUDGET=3

fail=0

# Global math/rand calls: rand.X( where X is an exported identifier, minus
# the constructors (rand.New, rand.NewSource) used to build explicit
# streams.  Method calls on instances (rng.Float64()) do not match.
globals=$(grep -rnE '\brand\.[A-Z][A-Za-z]*\(' $PKGS --include='*.go' \
	| grep -v _test.go | grep -vE 'rand\.(New|NewSource)\(' || true)
if [ -n "$globals" ]; then
	echo "lint-determinism: global math/rand calls in stepping packages:" >&2
	echo "$globals" >&2
	fail=1
fi

# time.Now beyond the telemetry-probe budget.
nows=$(grep -rn 'time\.Now' $PKGS --include='*.go' | grep -v _test.go || true)
count=$(printf '%s' "$nows" | grep -c . || true)
if [ "$count" -gt "$TIME_NOW_BUDGET" ]; then
	echo "lint-determinism: $count time.Now calls in stepping packages (budget $TIME_NOW_BUDGET):" >&2
	echo "$nows" >&2
	fail=1
fi

# Distributed tier: every wall-clock read in internal/dist must flow
# through the Clock seam (clock.go).  Leases, heartbeats, and backoff are
# timing-sensitive but the statistics fold must not be, and the chaos
# suite can only script failure timelines if nothing else touches the
# clock.  time.Duration/time.Millisecond etc. are types and constants, not
# clock reads, and do not match.
clocked=$(grep -rnE 'time\.(Now|Sleep|After|AfterFunc|NewTimer|NewTicker|Tick|Since|Until)\(' \
	internal/dist --include='*.go' \
	| grep -v _test.go | grep -v 'internal/dist/clock\.go' || true)
if [ -n "$clocked" ]; then
	echo "lint-determinism: wall-clock reads in internal/dist outside the clock.go seam:" >&2
	echo "$clocked" >&2
	fail=1
fi

exit $fail
