package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"safeplan/internal/core"
	"safeplan/internal/faultinject"
	"safeplan/internal/planner"
	"safeplan/internal/sim"
)

// faultFixture is a fault-injected left-turn campaign: the ultimate
// compound design under the worst-case planner-fault stack, with the
// fail-mode invariant set counting (not aborting) so the campaign always
// completes.
func faultFixture() (sim.Config, core.Agent) {
	cfg := sim.DefaultConfig()
	cfg.Horizon = 8
	cfg.InfoFilter = true
	cfg.PlannerFault = mustPreset("worst")
	sc := cfg.Scenario
	return cfg, core.NewUltimate(sc, planner.ConservativeExpert(sc))
}

func mustPreset(name string) faultinject.Model {
	m, err := faultinject.Preset(name)
	if err != nil {
		panic(err)
	}
	return m
}

// TestCampaignGuardStats: guard counters aggregate across shards, the
// derived rates appear, and the whole thing stays bit-identical for any
// worker count.
func TestCampaignGuardStats(t *testing.T) {
	cfg, agent := faultFixture()
	run := func(workers int) Stats {
		rep, err := Run(Spec{
			Name: "guard-stats", Episodes: 400, BaseSeed: 3, Workers: workers,
			Invariants: []sim.Invariant{
				sim.NoCollision{},
				sim.EmergencyOneStep{Cfg: cfg.Scenario},
				sim.NewGuardConsistency(cfg.Scenario),
			},
			CountViolations: true,
		}, LeftTurn(cfg, agent))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats
	}
	s1, s8 := run(1), run(8)
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("guard statistics differ between 1 and 8 workers:\n1: %+v\n8: %+v", s1, s8)
	}
	if s1.GuardFaults == 0 || s1.GuardFaultEpisodes == 0 {
		t.Fatalf("worst preset produced no guard faults: %+v", s1.ShardStats)
	}
	if s1.GuardFallbackLastGood+s1.GuardFallbackEmergency+s1.GuardBypassSteps == 0 {
		t.Fatal("faults recorded but no fallbacks")
	}
	if s1.GuardFaultEpisodeRate == nil || s1.GuardFaultEpisodeRate.Total != s1.Episodes {
		t.Fatalf("fault episode rate missing or wrong: %+v", s1.GuardFaultEpisodeRate)
	}
	if s1.GuardFallbackStepRate <= 0 || s1.GuardFallbackStepRate > 1 {
		t.Fatalf("fallback step rate %v outside (0, 1]", s1.GuardFallbackStepRate)
	}
	for name, n := range s1.InvariantViolations {
		if n != 0 {
			t.Fatalf("containment invariant %s violated %d times", name, n)
		}
	}
	if s1.Collided != 0 {
		t.Fatalf("%d collisions under contained faults", s1.Collided)
	}
}

// TestCampaignReportGuardFieldsAbsentWhenClean pins checkpoint and report
// compatibility: a guard-less campaign serializes without a single
// guard_* key, byte-identical to reports from before the guard existed.
func TestCampaignReportGuardFieldsAbsentWhenClean(t *testing.T) {
	rep, err := Run(Spec{Name: "clean", Episodes: 1_000, BaseSeed: 9}, syntheticEpisode)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "guard") {
		t.Fatalf("guard-less report mentions guard fields:\n%s", raw)
	}
}

// TestCheckpointCorruptionDetected is the satellite's resilience check: a
// bit-flipped, truncated, or version-skewed checkpoint surfaces as
// ErrCorruptCheckpoint (so callers can discard it and start fresh), while
// a fingerprint mismatch deliberately does not.
func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	spec := Spec{Name: "corrupt", Episodes: 2_000, BaseSeed: 5, CheckpointPath: path}
	if _, err := Run(spec, syntheticEpisode); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		// Flip a bit in the opening brace: the file no longer parses.
		"bit-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0x40
			return c
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"version-skew": func(b []byte) []byte {
			cur := fmt.Sprintf(`"version": %d`, checkpointVersion)
			return []byte(strings.Replace(string(b), cur, `"version": 99`, 1))
		},
		"bad-shard-key": func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"0":`, `"zero":`, 1))
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, corrupt(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Run(spec, syntheticEpisode)
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("corrupt checkpoint not flagged: %v", err)
			}
		})
	}

	// Recovery path: discard the corrupt file and re-run fresh — the
	// statistics come back identical.
	if err := os.WriteFile(path, corruptions["bit-flip"](pristine), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, syntheticEpisode); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("expected corruption error, got %v", err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(spec, syntheticEpisode)
	if err != nil {
		t.Fatalf("fresh run after discarding corrupt checkpoint: %v", err)
	}
	var pf checkpointFile
	if err := json.Unmarshal(pristine, &pf); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.Episodes != int64(spec.Episodes) {
		t.Fatalf("fresh run aggregated %d episodes", fresh.Stats.Episodes)
	}

	// A well-formed checkpoint for a different campaign is NOT "corrupt".
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.BaseSeed = 6
	_, err = Run(other, syntheticEpisode)
	if err == nil || errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("fingerprint mismatch must be a distinct error, got %v", err)
	}
}
