package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"safeplan/internal/sim"
)

// tornFixture writes a realistic checkpoint (a partially-completed
// counting-mode campaign over the synthetic episode) and returns its
// path, fingerprint, and raw bytes.
func tornFixture(t *testing.T) (string, Fingerprint, []byte) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	spec := Spec{
		Name: "torn", Episodes: 64, BaseSeed: 11, Shards: 4,
		Invariants:      []sim.Invariant{sim.NoCollision{}},
		CountViolations: true,
	}
	done := make(map[int]*ShardStats)
	for _, shard := range []int{0, 2} { // sparse: mid-campaign snapshot
		agg := &ShardStats{}
		lo, _ := spec.ShardRange(shard)
		if err := RunShard(spec, syntheticEpisode, shard, lo, agg, nil); err != nil {
			t.Fatal(err)
		}
		done[shard] = agg
	}
	if err := SaveShardCheckpoint(path, spec.Fingerprint(), done); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, spec.Fingerprint(), raw
}

// TestCheckpointTornWriteRecovery simulates a torn write at every byte
// offset of a real checkpoint file and asserts the loader never panics
// and never returns silently wrong aggregates: every truncation either
// fails with ErrCorruptCheckpoint, or — when the cut only removes
// trailing whitespace so the JSON still parses whole — loads aggregates
// identical to the intact file.  WriteFileAtomic makes torn writes
// unreachable through the normal save path (temp write + fsync + rename
// + directory fsync); this covers the hostile leftovers that crashes,
// failing disks, and the chaos harness can still produce.
func TestCheckpointTornWriteRecovery(t *testing.T) {
	path, fp, raw := tornFixture(t)
	want, err := LoadShardCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(filepath.Dir(path), "torn.json")
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := func() (m map[int]*ShardStats, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut at %d/%d: loader panicked: %v", cut, len(raw), r)
				}
			}()
			return LoadShardCheckpoint(torn, fp)
		}()
		switch {
		case err == nil:
			// The truncated bytes still parsed as a complete checkpoint
			// (only trailing whitespace was cut): the result must be the
			// intact aggregates, never a silently different set.
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cut at %d/%d: clean load differs from intact checkpoint", cut, len(raw))
			}
		case errors.Is(err, ErrCorruptCheckpoint):
			// The only acceptable failure: callers discard and recompute.
		default:
			t.Fatalf("cut at %d/%d: error %v is not ErrCorruptCheckpoint", cut, len(raw), err)
		}
	}
}

// TestCheckpointBitFlipRecovery flips each byte of the header region and
// asserts corruption is always ErrCorruptCheckpoint or a clean
// fingerprint-mismatch error — never a panic, never silent acceptance of
// aggregates under a perturbed version or fingerprint field.
func TestCheckpointBitFlipRecovery(t *testing.T) {
	path, fp, raw := tornFixture(t)
	want, err := LoadShardCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	flip := filepath.Join(filepath.Dir(path), "flip.json")
	limit := min(len(raw), 256)
	for i := 0; i < limit; i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x20
		if err := os.WriteFile(flip, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadShardCheckpoint(flip, fp)
		switch {
		case err == nil:
			// A flip in insignificant whitespace or one that round-trips
			// to the same semantic value must still load the same shards.
			if len(got) != len(want) {
				t.Fatalf("flip at %d: clean load with %d shards, want %d", i, len(got), len(want))
			}
		case errors.Is(err, ErrCorruptCheckpoint):
			// Undecodable or version-skewed: discard-and-recompute path.
		case strings.Contains(err.Error(), "belongs to campaign"):
			// The flip landed inside the fingerprint and produced a
			// well-formed checkpoint for a *different* campaign — refusing
			// to resume it (loudly, not as corruption) is the contract.
		default:
			t.Fatalf("flip at %d: unexpected error %v", i, err)
		}
	}
}

// TestWriteFileAtomicReplaces pins the atomic-replace contract: the
// target is fully replaced, no temp files survive, and the write is
// readable back byte-for-byte.
func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "second" {
		t.Fatalf("read %q, want %q", raw, "second")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d directory entries after atomic writes, want 1 (no temp leftovers)", len(entries))
	}
}
