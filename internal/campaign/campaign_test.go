package campaign

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/planner"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
)

// syntheticEpisode is a deterministic, nearly-free episode function used to
// exercise the engine at full campaign scale without paying for the
// simulator: outcome and score are pure functions of the seed, and the
// invariant hooks are honored exactly like the real runners honor them.
func syntheticEpisode(opts sim.Options) (sim.Result, error) {
	seed := opts.Seed
	r := sim.Result{Steps: int(10 + seed%17)}
	switch {
	case seed%97 == 0:
		r.Collided = true
		r.Eta = -1
	case seed%5 == 0:
		// timeout: η = 0
	default:
		r.Reached = true
		r.ReachTime = 8 + float64(seed%31)*0.25
		r.Eta = 1 / r.ReachTime
	}
	if seed%7 == 0 {
		r.EmergencySteps = 3
	}
	if err := sim.CheckEpisodeInvariants(opts.Invariants, &r); err != nil {
		return r, err
	}
	return r, nil
}

// leftTurnFixture is a trimmed real-simulator campaign: basic compound
// design (no Kalman cost) under delayed comms with a short horizon, cheap
// enough that a 100k-episode determinism run fits in a test.
func leftTurnFixture() (sim.Config, core.Agent) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.Horizon = 8
	sc := cfg.Scenario
	return cfg, core.NewBasic(sc, planner.ConservativeExpert(sc))
}

// TestCampaignDeterminismSynthetic asserts the headline engine guarantee
// at full scale: a 100k-episode campaign produces bit-identical aggregate
// statistics for 1 worker and 8 workers.
func TestCampaignDeterminismSynthetic(t *testing.T) {
	const n = 100_000
	run := func(workers int) Stats {
		rep, err := Run(Spec{Name: "det-syn", Episodes: n, BaseSeed: 3, Workers: workers}, syntheticEpisode)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats
	}
	s1, s8 := run(1), run(8)
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("aggregate statistics differ between 1 and 8 workers:\n1: %+v\n8: %+v", s1, s8)
	}
	if s1.Episodes != n {
		t.Fatalf("aggregated %d episodes, want %d", s1.Episodes, n)
	}
	if s1.Collided == 0 || s1.Reached == 0 || s1.Timeouts == 0 {
		t.Fatalf("fixture should produce mixed outcomes, got %+v", s1.ShardStats)
	}
}

// TestCampaignDeterminismSimulator asserts the same property through the
// real left-turn simulator (100k episodes; downscaled under -race and
// -short, where the full campaign would dominate the suite's wall time).
func TestCampaignDeterminismSimulator(t *testing.T) {
	n := 100_000
	if raceEnabled || testing.Short() {
		n = 2_000
	}
	cfg, agent := leftTurnFixture()
	run := func(workers int) Stats {
		rep, err := Run(Spec{Name: "det-sim", Episodes: n, BaseSeed: 11, Workers: workers}, LeftTurn(cfg, agent))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats
	}
	s1, s8 := run(1), run(8)
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("simulator aggregate statistics differ between 1 and 8 workers:\n1: %+v\n8: %+v", s1, s8)
	}
}

// TestCampaignSpeedup asserts the parallel-efficiency acceptance bar on
// hardware that can express it: ≥ 4× episodes/sec at 8 workers on an
// 8-core machine.  Skipped on smaller machines and under the race
// detector, where the bar is not meaningful.
func TestCampaignSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need 8 cores for the speedup bar, have %d", runtime.NumCPU())
	}
	cfg, agent := leftTurnFixture()
	const n = 8_000
	run := func(workers int) float64 {
		rep, err := Run(Spec{Name: "speedup", Episodes: n, BaseSeed: 1, Workers: workers}, LeftTurn(cfg, agent))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Perf.EpisodesPerSec
	}
	run(8) // warm caches so the 1-worker baseline is not penalized
	base := run(1)
	par := run(8)
	if speedup := par / base; speedup < 4 {
		t.Fatalf("8-worker speedup %.2fx < 4x (%.0f vs %.0f episodes/sec)", speedup, par, base)
	}
}

func TestCampaignCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	spec := Spec{Name: "resume", Episodes: 10_000, BaseSeed: 5, CheckpointPath: path}

	full, err := Run(spec, syntheticEpisode)
	if err != nil {
		t.Fatal(err)
	}

	// A clean re-run resumes every shard from disk and reproduces the
	// statistics bit-for-bit without running a single episode.
	resumed, err := Run(spec, func(sim.Options) (sim.Result, error) {
		t.Fatal("resumed campaign ran an episode despite a complete checkpoint")
		return sim.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Stats, resumed.Stats) {
		t.Fatalf("resumed statistics differ:\nfull:    %+v\nresumed: %+v", full.Stats, resumed.Stats)
	}
	if resumed.Perf.ResumedShards != resumed.Perf.Shards {
		t.Fatalf("resumed %d of %d shards", resumed.Perf.ResumedShards, resumed.Perf.Shards)
	}

	// Simulate an interruption: drop half the shards from the checkpoint,
	// resume, and demand the exact same statistics.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cf map[string]json.RawMessage
	if err := json.Unmarshal(raw, &cf); err != nil {
		t.Fatal(err)
	}
	var shardsJSON map[string]json.RawMessage
	if err := json.Unmarshal(cf["shards"], &shardsJSON); err != nil {
		t.Fatal(err)
	}
	kept := 0
	for k := range shardsJSON {
		if kept%2 == 0 {
			delete(shardsJSON, k)
		}
		kept++
	}
	cf["shards"], _ = json.Marshal(shardsJSON)
	tampered, _ := json.Marshal(cf)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	partial, err := Run(spec, syntheticEpisode)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Perf.ResumedShards == 0 || partial.Perf.ResumedShards == partial.Perf.Shards {
		t.Fatalf("expected a partial resume, resumed %d of %d shards",
			partial.Perf.ResumedShards, partial.Perf.Shards)
	}
	if !reflect.DeepEqual(full.Stats, partial.Stats) {
		t.Fatalf("partially-resumed statistics differ:\nfull:    %+v\npartial: %+v", full.Stats, partial.Stats)
	}
}

func TestCampaignCheckpointFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	spec := Spec{Name: "fp", Episodes: 500, BaseSeed: 1, CheckpointPath: path}
	if _, err := Run(spec, syntheticEpisode); err != nil {
		t.Fatal(err)
	}
	spec.BaseSeed = 2
	if _, err := Run(spec, syntheticEpisode); err == nil {
		t.Fatal("resuming a checkpoint with a different base seed must fail")
	}
}

func TestCampaignInvariantFailMode(t *testing.T) {
	spec := Spec{
		Name: "fail", Episodes: 500, BaseSeed: 0,
		Invariants: []sim.Invariant{sim.NoCollision{}},
	}
	_, err := Run(spec, syntheticEpisode)
	if err == nil {
		t.Fatal("expected the seed-0 collision to fail the campaign")
	}
	var v *sim.ViolationError
	if !errors.As(err, &v) || v.Invariant != (sim.NoCollision{}).Name() {
		t.Fatalf("error %v does not unwrap to the no-collision violation", err)
	}
}

func TestCampaignInvariantCountMode(t *testing.T) {
	const n = 2_000
	spec := Spec{
		Name: "count", Episodes: n, BaseSeed: 0,
		Invariants:      []sim.Invariant{sim.NoCollision{}},
		CountViolations: true,
	}
	rep, err := Run(spec, syntheticEpisode)
	if err != nil {
		t.Fatal(err)
	}
	// Seeds 0, 97, 194, … collide: ceil(n/97) violations.
	want := int64((n + 96) / 97)
	if got := rep.Stats.InvariantViolations[(sim.NoCollision{}).Name()]; got != want {
		t.Fatalf("counted %d violations, want %d", got, want)
	}
	if rep.Stats.Collided != want {
		t.Fatalf("aggregated %d collisions, want %d", rep.Stats.Collided, want)
	}
}

// TestCampaignProgressAndTelemetry checks the collector plumbing: progress
// reaches Episodes and per-episode outcomes land in the shared collector.
func TestCampaignProgressAndTelemetry(t *testing.T) {
	m := telemetry.NewMetrics()
	rep, err := Run(Spec{Name: "telemetry", Episodes: 1_000, BaseSeed: 9, Collector: m}, syntheticEpisode)
	if err != nil {
		t.Fatal(err)
	}
	done, total := m.Progress()
	if done != 1_000 || total != 1_000 {
		t.Fatalf("progress %d/%d, want 1000/1000", done, total)
	}
	if rep.Perf.EpisodesPerSec <= 0 || rep.Perf.WallSeconds <= 0 {
		t.Fatalf("perf section not populated: %+v", rep.Perf)
	}
}

// TestCampaignRealInvariants runs the full checker set through the real
// simulator: a guaranteed design must sail through with zero violations.
func TestCampaignRealInvariants(t *testing.T) {
	cfg, _ := leftTurnFixture()
	sc := cfg.Scenario
	// The aggressive expert triggers κ_e regularly, so the emergency
	// checkers see real activations rather than passing vacuously.
	agent := core.NewBasic(sc, planner.AggressiveExpert(sc))
	n := 400
	if testing.Short() {
		n = 100
	}
	rep, err := Run(Spec{
		Name: "real-invariants", Episodes: n, BaseSeed: 21,
		Invariants: []sim.Invariant{
			sim.NoCollision{},
			sim.SoundEstimate{},
			sim.EmergencyOneStep{Cfg: sc},
			sim.NewMonitorConsistency(sc),
		},
	}, LeftTurn(cfg, agent))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Episodes != int64(n) {
		t.Fatalf("ran %d episodes, want %d", rep.Stats.Episodes, n)
	}
}

// TestCampaignWorkerCountByteParity tightens the determinism guarantee to
// the serialized form consumers actually diff: the marshalled Stats of a
// real-simulator campaign must be byte-identical at 1, 4, and 16 workers.
// Sixteen workers exceed the shard scratch pool's steady population on
// most CI machines, so this also shuffles arenas across goroutines.
func TestCampaignWorkerCountByteParity(t *testing.T) {
	n := 4_000
	if raceEnabled || testing.Short() {
		n = 800
	}
	cfg, agent := leftTurnFixture()
	marshal := func(workers int) string {
		rep, err := Run(Spec{Name: "byte-parity", Episodes: n, BaseSeed: 5, Workers: workers}, LeftTurn(cfg, agent))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep.Stats)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	s1 := marshal(1)
	for _, w := range []int{4, 16} {
		if sw := marshal(w); sw != s1 {
			t.Fatalf("marshalled Stats differ between 1 and %d workers:\n1:  %s\n%d: %s", w, s1, w, sw)
		}
	}
}

// TestCampaignScratchPoolUnderRace exercises the shard-level scratch pool
// with far more concurrent shards in flight than arenas initially exist,
// so pooled arenas migrate between goroutines across shard boundaries.
// Its assertion is the race detector itself (plus determinism at the
// end); without -race it is still a useful smoke of the pool handoff.
func TestCampaignScratchPoolUnderRace(t *testing.T) {
	cfg, agent := leftTurnFixture()
	n := 640
	run := func() Stats {
		rep, err := Run(Spec{Name: "pool-race", Episodes: n, BaseSeed: 9, Workers: 16, Shards: 64}, LeftTurn(cfg, agent))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated pooled campaigns diverged:\n%+v\n%+v", a, b)
	}
}
