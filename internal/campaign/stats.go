// Package campaign is the Monte-Carlo campaign engine: a sharded parallel
// episode runner with online (streaming) statistics, pluggable invariant
// checkers, and checkpoint/resume, built so that multi-million-episode
// safety campaigns are fast, interruptible, and *bit-reproducible* — the
// aggregate statistics are identical for any worker count.
//
// Determinism comes from two decisions.  First, episode i is always seeded
// with BaseSeed+i, independent of which worker runs it.  Second, episodes
// are aggregated per shard (a fixed partition of the episode range that
// does not depend on the worker count), each shard folds its episodes in
// index order, and the shard aggregates are merged in shard order with the
// Chan/Welford parallel-merge formulas.  Floating-point reduction order is
// therefore a pure function of (Episodes, Shards), never of scheduling.
package campaign

import "math"

// Welford is an online mean/variance accumulator (Welford's algorithm)
// with an exact parallel merge (Chan et al.).  The zero value is an empty
// accumulator.  All fields are exported so checkpoints can round-trip the
// accumulator through JSON without losing a bit (encoding/json emits the
// shortest representation that parses back to the same float64).
type Welford struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// Observe folds one value into the accumulator.
func (w *Welford) Observe(x float64) {
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (x - w.Mean)
}

// Merge folds another accumulator into this one.  Merging is associative
// up to floating-point rounding; the campaign runner fixes the merge order
// so the rounding is reproducible.
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := w.N + o.N
	d := o.Mean - w.Mean
	w.Mean += d * float64(o.N) / float64(n)
	w.M2 += o.M2 + d*d*float64(w.N)*float64(o.N)/float64(n)
	w.N = n
}

// Variance returns the sample variance (n−1 denominator), 0 for n < 2.
func (w Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N-1)
}

// Std returns the sample standard deviation.
func (w Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Moments couples a Welford accumulator with running min/max.  The zero
// value is empty; Min/Max are only meaningful when N > 0.
type Moments struct {
	Welford
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Observe folds one value.
func (m *Moments) Observe(x float64) {
	if m.N == 0 || x < m.Min {
		m.Min = x
	}
	if m.N == 0 || x > m.Max {
		m.Max = x
	}
	m.Welford.Observe(x)
}

// Merge folds another Moments into this one.
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	m.Min = math.Min(m.Min, o.Min)
	m.Max = math.Max(m.Max, o.Max)
	m.Welford.Merge(o.Welford)
}

// DefaultZ is the normal quantile for 95% Wilson confidence intervals.
const DefaultZ = 1.959963984540054

// Wilson returns the Wilson score interval for a binomial proportion:
// successes k out of n trials at normal quantile z.  Unlike the naive
// normal approximation it behaves at the extremes (k = 0 or k = n), which
// is exactly where safety campaigns live — the interesting rate is a
// collision rate near zero, and "0 collisions in 10⁶ episodes" must yield
// a nonzero upper bound.  n = 0 returns the vacuous [0, 1].
func Wilson(k, n int64, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	// The exact Wilson bound at the extremes is p itself; cancellation in
	// center-half can leave a ~1e-19 residue there, so pin it.
	if k == 0 {
		lo = 0
	}
	if k >= n {
		hi = 1
	}
	return lo, hi
}

// Rate is a binomial proportion with its Wilson 95% confidence interval,
// shaped for JSON reports.
type Rate struct {
	Count int64   `json:"count"`
	Total int64   `json:"total"`
	Rate  float64 `json:"rate"`
	Lo    float64 `json:"wilson_lo"`
	Hi    float64 `json:"wilson_hi"`
}

// NewRate builds a Rate for k successes out of n trials.
func NewRate(k, n int64) Rate {
	r := Rate{Count: k, Total: n}
	if n > 0 {
		r.Rate = float64(k) / float64(n)
	}
	r.Lo, r.Hi = Wilson(k, n, DefaultZ)
	return r
}
