package campaign

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var sum float64
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		sum += xs[i]
		w.Observe(xs[i])
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean-mean) > 1e-10 {
		t.Fatalf("mean %v, want %v", w.Mean, mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("variance %v, want %v", w.Variance(), variance)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var whole Welford
	parts := make([]Welford, 7)
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64()
		whole.Observe(x)
		parts[i%len(parts)].Observe(x)
	}
	var merged Welford
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N != whole.N {
		t.Fatalf("merged N %d, want %d", merged.N, whole.N)
	}
	if math.Abs(merged.Mean-whole.Mean) > 1e-12 {
		t.Fatalf("merged mean %v, sequential %v", merged.Mean, whole.Mean)
	}
	if math.Abs(merged.Variance()-whole.Variance())/whole.Variance() > 1e-12 {
		t.Fatalf("merged variance %v, sequential %v", merged.Variance(), whole.Variance())
	}
	// Merging into/from empty accumulators is the identity.
	var empty Welford
	before := merged
	merged.Merge(empty)
	if merged != before {
		t.Fatal("merging an empty accumulator changed the state")
	}
	empty.Merge(before)
	if empty != before {
		t.Fatal("merging into an empty accumulator did not adopt the source")
	}
}

func TestMomentsMinMax(t *testing.T) {
	var a, b Moments
	for _, x := range []float64{3, -1, 4} {
		a.Observe(x)
	}
	for _, x := range []float64{10, -7} {
		b.Observe(x)
	}
	a.Merge(b)
	if a.Min != -7 || a.Max != 10 || a.N != 5 {
		t.Fatalf("merged moments min=%v max=%v n=%d", a.Min, a.Max, a.N)
	}
}

func TestWilson(t *testing.T) {
	// Zero successes must still give a nonzero upper bound, and the
	// interval must always contain the point estimate.
	lo, hi := Wilson(0, 1000, DefaultZ)
	if lo != 0 || hi <= 0 || hi > 0.01 {
		t.Fatalf("Wilson(0, 1000) = [%v, %v]", lo, hi)
	}
	lo, hi = Wilson(1000, 1000, DefaultZ)
	if hi != 1 || lo >= 1 || lo < 0.99 {
		t.Fatalf("Wilson(1000, 1000) = [%v, %v]", lo, hi)
	}
	// Canonical value: 50/100 at z=1.96 is ≈ [0.404, 0.596].
	lo, hi = Wilson(50, 100, DefaultZ)
	if math.Abs(lo-0.4038) > 5e-4 || math.Abs(hi-0.5962) > 5e-4 {
		t.Fatalf("Wilson(50, 100) = [%v, %v], want ≈ [0.404, 0.596]", lo, hi)
	}
	// Vacuous case.
	lo, hi = Wilson(0, 0, DefaultZ)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0, 0) = [%v, %v], want [0, 1]", lo, hi)
	}
}

func TestShardRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{100, 7}, {64, 64}, {1000, 64}, {5, 5}, {101, 64},
	} {
		covered := 0
		prevHi := 0
		for i := 0; i < tc.shards; i++ {
			lo, hi := shardRange(tc.n, tc.shards, i)
			if lo != prevHi {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", tc.n, tc.shards, i, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("n=%d shards=%d: empty shard %d", tc.n, tc.shards, i)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d shards=%d: partition covers %d episodes", tc.n, tc.shards, covered)
		}
	}
}
