package campaign

import (
	"safeplan/internal/sim"
)

// ShardStats is the deterministic per-shard aggregate: pure counts plus
// Welford moments, folded in episode order within the shard.  It is the
// unit of checkpointing — a completed shard serializes to JSON and merges
// back losslessly on resume.
type ShardStats struct {
	Episodes int64 `json:"episodes"`
	Collided int64 `json:"collided"`
	Reached  int64 `json:"reached"`
	Timeouts int64 `json:"timeouts"`

	// EmergencyEpisodes counts episodes in which κ_e intervened at least
	// once — the per-episode activation events the Wilson interval is
	// computed over (per-step counts are not i.i.d.).
	EmergencyEpisodes int64 `json:"emergency_episodes"`

	Steps               int64 `json:"steps"`
	EmergencySteps      int64 `json:"emergency_steps"`
	SoundnessViolations int64 `json:"soundness_violations"`

	// Eta accumulates η over all episodes; ReachTimeSafe accumulates
	// reaching time over safe, reached episodes (the paper's '*' rows);
	// EmergencyFreq accumulates the per-episode κ_e step fraction.
	Eta           Moments `json:"eta"`
	ReachTimeSafe Moments `json:"reach_time_safe"`
	EmergencyFreq Moments `json:"emergency_freq"`
}

// Observe folds one episode result into the shard aggregate.
func (a *ShardStats) Observe(r *sim.Result) {
	a.Episodes++
	switch {
	case r.Collided:
		a.Collided++
	case r.Reached:
		a.Reached++
	default:
		a.Timeouts++
	}
	if r.EmergencySteps > 0 {
		a.EmergencyEpisodes++
	}
	a.Steps += int64(r.Steps)
	a.EmergencySteps += int64(r.EmergencySteps)
	a.SoundnessViolations += int64(r.SoundnessViolations)
	a.Eta.Observe(r.Eta)
	if r.Reached && !r.Collided {
		a.ReachTimeSafe.Observe(r.ReachTime)
	}
	a.EmergencyFreq.Observe(r.EmergencyFrequency())
}

// Merge folds another shard aggregate into this one.  The campaign runner
// calls it in ascending shard order, which pins the floating-point
// reduction order regardless of worker count.
func (a *ShardStats) Merge(b *ShardStats) {
	a.Episodes += b.Episodes
	a.Collided += b.Collided
	a.Reached += b.Reached
	a.Timeouts += b.Timeouts
	a.EmergencyEpisodes += b.EmergencyEpisodes
	a.Steps += b.Steps
	a.EmergencySteps += b.EmergencySteps
	a.SoundnessViolations += b.SoundnessViolations
	a.Eta.Merge(b.Eta)
	a.ReachTimeSafe.Merge(b.ReachTimeSafe)
	a.EmergencyFreq.Merge(b.EmergencyFreq)
}

// Stats is the deterministic statistics section of a campaign report:
// the merged shard totals plus derived rates with Wilson 95% confidence
// intervals.  Two runs of the same Spec produce byte-identical Stats for
// any worker count (the determinism test asserts this).
type Stats struct {
	ShardStats

	SafeRate             Rate    `json:"safe_rate"`
	CollisionRate        Rate    `json:"collision_rate"`
	ReachRate            Rate    `json:"reach_rate"`
	EmergencyEpisodeRate Rate    `json:"emergency_episode_rate"`
	EmergencyStepRate    float64 `json:"emergency_step_rate"`

	EtaStd float64 `json:"eta_std"`

	// InvariantViolations counts violations by checker name; only
	// populated when Spec.CountViolations is set (otherwise the first
	// violation fails the campaign).
	InvariantViolations map[string]int64 `json:"invariant_violations,omitempty"`
}

// finalize computes the derived rates from the merged totals.
func (s *Stats) finalize() {
	n := s.Episodes
	s.SafeRate = NewRate(n-s.Collided, n)
	s.CollisionRate = NewRate(s.Collided, n)
	s.ReachRate = NewRate(s.Reached, n)
	s.EmergencyEpisodeRate = NewRate(s.EmergencyEpisodes, n)
	if s.Steps > 0 {
		s.EmergencyStepRate = float64(s.EmergencySteps) / float64(s.Steps)
	}
	s.EtaStd = s.Eta.Std()
}

// Perf is the throughput section of a campaign report.  It is wall-clock
// data — explicitly *not* covered by the determinism guarantee — and is
// kept separate from Stats so reproducibility tests can compare Stats
// alone.
type Perf struct {
	WallSeconds    float64 `json:"wall_seconds"`
	EpisodesPerSec float64 `json:"episodes_per_sec"`
	StepsPerSec    float64 `json:"steps_per_sec"`

	// Step and episode latency percentiles, estimated from fixed-bucket
	// histograms (see telemetry.HistogramSnapshot.Quantile).  Step latency
	// is each episode's wall time divided by its step count.
	StepP50Ns    float64 `json:"step_p50_ns"`
	StepP99Ns    float64 `json:"step_p99_ns"`
	EpisodeP50Ms float64 `json:"episode_p50_ms"`
	EpisodeP99Ms float64 `json:"episode_p99_ms"`

	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// ResumedShards counts shards restored from a checkpoint instead of
	// re-run; ResumedEpisodes is their episode total.
	ResumedShards   int   `json:"resumed_shards,omitempty"`
	ResumedEpisodes int64 `json:"resumed_episodes,omitempty"`
}

// Report is the full result of one campaign run.
type Report struct {
	Name     string `json:"name"`
	Episodes int    `json:"episodes"`
	BaseSeed int64  `json:"base_seed"`

	Stats Stats `json:"stats"`
	Perf  Perf  `json:"perf"`
}
