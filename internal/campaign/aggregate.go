package campaign

import (
	"safeplan/internal/guard"
	"safeplan/internal/sim"
)

// ShardStats is the deterministic per-shard aggregate: pure counts plus
// Welford moments, folded in episode order within the shard.  It is the
// unit of checkpointing — a completed shard serializes to JSON and merges
// back losslessly on resume.
type ShardStats struct {
	Episodes int64 `json:"episodes"`
	Collided int64 `json:"collided"`
	Reached  int64 `json:"reached"`
	Timeouts int64 `json:"timeouts"`

	// EmergencyEpisodes counts episodes in which κ_e intervened at least
	// once — the per-episode activation events the Wilson interval is
	// computed over (per-step counts are not i.i.d.).
	EmergencyEpisodes int64 `json:"emergency_episodes"`

	Steps          int64 `json:"steps"`
	EmergencySteps int64 `json:"emergency_steps"`

	// FusedIntervalMisses counts steps whose fused (deliberately
	// non-guaranteed, Kalman-sharpened) interval missed the true state —
	// expected sharpening error, not a soundness breach.  (Historically
	// (mis)named SoundnessViolations; the deprecated alias key has been
	// removed.)
	FusedIntervalMisses int64 `json:"fused_interval_misses"`
	// SoundViolations counts genuine soundness-contract violations: steps
	// where the sound interval pair missed the true state.  The framework's
	// guarantee rests on this being 0 (cmd/bench -smoke asserts it).
	SoundViolations int64 `json:"sound_violations"`

	// Eta accumulates η over all episodes; ReachTimeSafe accumulates
	// reaching time over safe, reached episodes (the paper's '*' rows);
	// EmergencyFreq accumulates the per-episode κ_e step fraction.
	Eta           Moments `json:"eta"`
	ReachTimeSafe Moments `json:"reach_time_safe"`
	EmergencyFreq Moments `json:"emergency_freq"`

	// Guard* fold the planner-fault guard's per-episode counters
	// (internal/guard).  All fields carry omitempty and stay zero when no
	// guard or fault model is active, so guard-less reports and
	// checkpoints serialize byte-identically to before the guard existed.
	GuardFaults            int64 `json:"guard_faults,omitempty"`
	GuardPanics            int64 `json:"guard_panics,omitempty"`
	GuardNonFinite         int64 `json:"guard_non_finite,omitempty"`
	GuardRangeRejects      int64 `json:"guard_range_rejects,omitempty"`
	GuardDeadline          int64 `json:"guard_deadline,omitempty"`
	GuardWallClock         int64 `json:"guard_wall_clock,omitempty"`
	GuardFallbackLastGood  int64 `json:"guard_fallback_last_good,omitempty"`
	GuardFallbackEmergency int64 `json:"guard_fallback_emergency,omitempty"`
	GuardBypassSteps       int64 `json:"guard_bypass_steps,omitempty"`
	GuardDegradations      int64 `json:"guard_degradations,omitempty"`
	GuardRecoveries        int64 `json:"guard_recoveries,omitempty"`

	// GuardFaultEpisodes counts episodes with at least one contained
	// fault (the i.i.d. activation events the Wilson interval runs
	// over); GuardDegradedEpisodes / GuardEmergencyOnlyEpisodes count
	// episodes whose worst state reached that level.
	GuardFaultEpisodes         int64 `json:"guard_fault_episodes,omitempty"`
	GuardDegradedEpisodes      int64 `json:"guard_degraded_episodes,omitempty"`
	GuardEmergencyOnlyEpisodes int64 `json:"guard_emergency_only_episodes,omitempty"`

	// CertifiedSteps / CertifiedRangeMisses fold verified mode's IBP
	// cross-check counters (sim.Config.Certify).  Both omitempty: reports
	// from non-verified campaigns serialize byte-identically to before.
	CertifiedSteps       int64 `json:"certified_steps,omitempty"`
	CertifiedRangeMisses int64 `json:"certified_range_misses,omitempty"`

	// InvariantViolations counts violations by checker name within this
	// shard when the campaign runs in counting mode (Spec.CountViolations).
	// Counting lives in the shard aggregate — not in a campaign-global
	// counter — so checkpointed and remotely-executed shards carry their
	// violation tallies with them: a resumed or distributed campaign
	// reports exactly the counts a single uninterrupted run would.  (In
	// the Stats JSON this field is shadowed by the campaign-level map of
	// the same key, which finalize populates from the merged shards.)
	InvariantViolations map[string]int64 `json:"invariant_violations,omitempty"`
}

// Observe folds one episode result into the shard aggregate.
func (a *ShardStats) Observe(r *sim.Result) {
	a.Episodes++
	switch {
	case r.Collided:
		a.Collided++
	case r.Reached:
		a.Reached++
	default:
		a.Timeouts++
	}
	if r.EmergencySteps > 0 {
		a.EmergencyEpisodes++
	}
	a.Steps += int64(r.Steps)
	a.EmergencySteps += int64(r.EmergencySteps)
	a.FusedIntervalMisses += int64(r.FusedIntervalMisses)
	a.SoundViolations += int64(r.SoundViolations)
	a.Eta.Observe(r.Eta)
	if r.Reached && !r.Collided {
		a.ReachTimeSafe.Observe(r.ReachTime)
	}
	a.EmergencyFreq.Observe(r.EmergencyFrequency())

	g := r.Guard
	a.GuardFaults += int64(g.Faults)
	a.GuardPanics += int64(g.Panics)
	a.GuardNonFinite += int64(g.NonFinite)
	a.GuardRangeRejects += int64(g.RangeRejects)
	a.GuardDeadline += int64(g.Deadline)
	a.GuardWallClock += int64(g.WallClock)
	a.GuardFallbackLastGood += int64(g.FallbackLastGood)
	a.GuardFallbackEmergency += int64(g.FallbackEmergency)
	a.GuardBypassSteps += int64(g.BypassSteps)
	a.GuardDegradations += int64(g.Degradations)
	a.GuardRecoveries += int64(g.Recoveries)
	if g.Faults > 0 {
		a.GuardFaultEpisodes++
	}
	if g.WorstState >= guard.Degraded {
		a.GuardDegradedEpisodes++
	}
	if g.WorstState >= guard.EmergencyOnly {
		a.GuardEmergencyOnlyEpisodes++
	}
	a.CertifiedSteps += int64(r.CertifiedSteps)
	a.CertifiedRangeMisses += int64(r.CertifiedRangeMisses)
}

// Merge folds another shard aggregate into this one.  The campaign runner
// calls it in ascending shard order, which pins the floating-point
// reduction order regardless of worker count.
func (a *ShardStats) Merge(b *ShardStats) {
	a.Episodes += b.Episodes
	a.Collided += b.Collided
	a.Reached += b.Reached
	a.Timeouts += b.Timeouts
	a.EmergencyEpisodes += b.EmergencyEpisodes
	a.Steps += b.Steps
	a.EmergencySteps += b.EmergencySteps
	a.FusedIntervalMisses += b.FusedIntervalMisses
	a.SoundViolations += b.SoundViolations
	a.Eta.Merge(b.Eta)
	a.ReachTimeSafe.Merge(b.ReachTimeSafe)
	a.EmergencyFreq.Merge(b.EmergencyFreq)
	a.GuardFaults += b.GuardFaults
	a.GuardPanics += b.GuardPanics
	a.GuardNonFinite += b.GuardNonFinite
	a.GuardRangeRejects += b.GuardRangeRejects
	a.GuardDeadline += b.GuardDeadline
	a.GuardWallClock += b.GuardWallClock
	a.GuardFallbackLastGood += b.GuardFallbackLastGood
	a.GuardFallbackEmergency += b.GuardFallbackEmergency
	a.GuardBypassSteps += b.GuardBypassSteps
	a.GuardDegradations += b.GuardDegradations
	a.GuardRecoveries += b.GuardRecoveries
	a.GuardFaultEpisodes += b.GuardFaultEpisodes
	a.GuardDegradedEpisodes += b.GuardDegradedEpisodes
	a.GuardEmergencyOnlyEpisodes += b.GuardEmergencyOnlyEpisodes
	a.CertifiedSteps += b.CertifiedSteps
	a.CertifiedRangeMisses += b.CertifiedRangeMisses
	if b.InvariantViolations != nil {
		if a.InvariantViolations == nil {
			a.InvariantViolations = make(map[string]int64, len(b.InvariantViolations))
		}
		for name, n := range b.InvariantViolations {
			a.InvariantViolations[name] += n
		}
	}
}

// Stats is the deterministic statistics section of a campaign report:
// the merged shard totals plus derived rates with Wilson 95% confidence
// intervals.  Two runs of the same Spec produce byte-identical Stats for
// any worker count (the determinism test asserts this).
type Stats struct {
	ShardStats

	SafeRate             Rate    `json:"safe_rate"`
	CollisionRate        Rate    `json:"collision_rate"`
	ReachRate            Rate    `json:"reach_rate"`
	EmergencyEpisodeRate Rate    `json:"emergency_episode_rate"`
	EmergencyStepRate    float64 `json:"emergency_step_rate"`

	EtaStd float64 `json:"eta_std"`

	// GuardFaultEpisodeRate is the Wilson rate of episodes with at least
	// one contained planner fault; GuardFallbackStepRate is the fraction
	// of control steps whose command came from a guard fallback (last
	// good, κ_e, or an EmergencyOnly bypass).  Both absent when the
	// campaign saw no guard activity.
	GuardFaultEpisodeRate *Rate   `json:"guard_fault_episode_rate,omitempty"`
	GuardFallbackStepRate float64 `json:"guard_fallback_step_rate,omitempty"`

	// CertifiedMissStepRate is the fraction of certified steps whose
	// executed command escaped the IBP range; absent when verified mode
	// checked nothing.  A clean configuration must report 0 (the ibp-gate
	// asserts it).
	CertifiedMissStepRate float64 `json:"certified_miss_step_rate,omitempty"`

	// InvariantViolations counts violations by checker name; only
	// populated when Spec.CountViolations is set (otherwise the first
	// violation fails the campaign).  It is the shard-order merge of the
	// per-shard maps and shadows the embedded ShardStats field in JSON.
	InvariantViolations map[string]int64 `json:"invariant_violations,omitempty"`
}

// finalize computes the derived rates from the merged totals.
func (s *Stats) finalize() {
	s.InvariantViolations = s.ShardStats.InvariantViolations
	n := s.Episodes
	s.SafeRate = NewRate(n-s.Collided, n)
	s.CollisionRate = NewRate(s.Collided, n)
	s.ReachRate = NewRate(s.Reached, n)
	s.EmergencyEpisodeRate = NewRate(s.EmergencyEpisodes, n)
	if s.Steps > 0 {
		s.EmergencyStepRate = float64(s.EmergencySteps) / float64(s.Steps)
	}
	s.EtaStd = s.Eta.Std()
	if s.CertifiedSteps > 0 {
		s.CertifiedMissStepRate = float64(s.CertifiedRangeMisses) / float64(s.CertifiedSteps)
	}
	if s.GuardFaults > 0 || s.GuardFaultEpisodes > 0 || s.GuardBypassSteps > 0 {
		r := NewRate(s.GuardFaultEpisodes, n)
		s.GuardFaultEpisodeRate = &r
		if s.Steps > 0 {
			s.GuardFallbackStepRate = float64(s.GuardFallbackLastGood+s.GuardFallbackEmergency) / float64(s.Steps)
		}
	}
}

// Perf is the throughput section of a campaign report.  It is wall-clock
// data — explicitly *not* covered by the determinism guarantee — and is
// kept separate from Stats so reproducibility tests can compare Stats
// alone.
type Perf struct {
	WallSeconds    float64 `json:"wall_seconds"`
	EpisodesPerSec float64 `json:"episodes_per_sec"`
	StepsPerSec    float64 `json:"steps_per_sec"`

	// Step and episode latency percentiles, estimated from fixed-bucket
	// histograms (see telemetry.HistogramSnapshot.Quantile).  Step latency
	// is each episode's wall time divided by its step count.
	StepP50Ns    float64 `json:"step_p50_ns"`
	StepP99Ns    float64 `json:"step_p99_ns"`
	EpisodeP50Ms float64 `json:"episode_p50_ms"`
	EpisodeP99Ms float64 `json:"episode_p99_ms"`

	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// ResumedShards counts shards restored from a checkpoint instead of
	// re-run; ResumedEpisodes is their episode total.
	ResumedShards   int   `json:"resumed_shards,omitempty"`
	ResumedEpisodes int64 `json:"resumed_episodes,omitempty"`
}

// Report is the full result of one campaign run.
type Report struct {
	Name     string `json:"name"`
	Episodes int    `json:"episodes"`
	BaseSeed int64  `json:"base_seed"`

	Stats Stats `json:"stats"`
	Perf  Perf  `json:"perf"`
}
