package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// checkpointVersion guards the on-disk layout.  Version 2 dropped the
// deprecated soundness_violations alias (and its load-time migration);
// version 3 moved counting-mode invariant tallies into the per-shard
// aggregate (so resumed and distributed shards keep their counts).
// Older versions are rejected as stale rather than migrated.
const checkpointVersion = 3

// ErrCorruptCheckpoint marks a checkpoint file that cannot be decoded —
// truncated, bit-flipped, malformed, or written by an incompatible
// version.  Callers that prefer resilience over resumption can match it
// with errors.Is, discard the file, and start the campaign fresh (the
// aggregates are recomputable; see cmd/bench).  A *fingerprint* mismatch
// is deliberately NOT this error: a well-formed checkpoint from a
// different campaign means the caller asked to resume the wrong thing,
// and silently discarding it would hide the mistake.
var ErrCorruptCheckpoint = errors.New("campaign: corrupt checkpoint")

// Fingerprint identifies the campaign a checkpoint belongs to.  Resuming
// with a different fingerprint is refused: merging shard aggregates from a
// different seed range or partition would silently corrupt the statistics.
//
// The fingerprint deliberately excludes Workers (scheduling never affects
// the aggregates) and the configuration/agent (not serializable here) —
// callers that vary those should vary Name or the checkpoint path.
type Fingerprint struct {
	Name     string `json:"name"`
	Episodes int    `json:"episodes"`
	BaseSeed int64  `json:"base_seed"`
	Shards   int    `json:"shards"`
}

// Fingerprint derives the campaign identity a checkpoint (or a
// distributed shard result) must match before its aggregates may fold in.
func (s Spec) Fingerprint() Fingerprint {
	return Fingerprint{Name: s.Name, Episodes: s.Episodes, BaseSeed: s.BaseSeed, Shards: s.shards()}
}

// checkpointFile is the on-disk layout.  Shard indices are JSON object
// keys (decimal strings), so partial campaigns serialize sparsely.
type checkpointFile struct {
	Version     int                    `json:"version"`
	Fingerprint Fingerprint            `json:"fingerprint"`
	Shards      map[string]*ShardStats `json:"shards"`
}

// loadCheckpoint reads completed shard aggregates for the fingerprint.  A
// missing file is an empty resume, not an error; a fingerprint mismatch or
// a corrupt file is an error (the caller asked to resume *this* campaign).
func loadCheckpoint(path string, fp Fingerprint) (map[int]*ShardStats, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		return nil, fmt.Errorf("%w %s: %v", ErrCorruptCheckpoint, path, err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("%w %s: version %d, want %d", ErrCorruptCheckpoint, path, cf.Version, checkpointVersion)
	}
	if cf.Fingerprint != fp {
		return nil, fmt.Errorf("campaign: checkpoint %s belongs to campaign %+v, not %+v (delete it or change the path)",
			path, cf.Fingerprint, fp)
	}
	out := make(map[int]*ShardStats, len(cf.Shards))
	for k, agg := range cf.Shards {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || agg == nil {
			return nil, fmt.Errorf("%w %s: bad shard key %q", ErrCorruptCheckpoint, path, k)
		}
		out[i] = agg
	}
	return out, nil
}

// WriteFileAtomic writes data to path atomically AND durably: it writes a
// temporary file in the same directory, fsyncs it, renames it over the
// target, and fsyncs the parent directory, so readers never observe a
// torn file, an interruption mid-write leaves the previous contents
// intact, and a completed write survives power loss (rename without a
// directory fsync may be rolled back by the journal; data without an
// fsync may be zeroes after the rename).  It is the persistence primitive
// behind campaign and distributed-worker checkpoints, and cmd/bench
// routes its report/trace writes through it too.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("campaign: fsync %s: %w", dir, err)
	}
	return d.Close()
}

// LoadShardCheckpoint reads completed shard aggregates for the
// fingerprint — the campaign checkpoint format, exported for the
// distributed coordinator's own resume path.  A missing file is an empty
// resume; corruption is ErrCorruptCheckpoint; a fingerprint mismatch is a
// distinct error (the caller asked to resume the wrong campaign).
func LoadShardCheckpoint(path string, fp Fingerprint) (map[int]*ShardStats, error) {
	return loadCheckpoint(path, fp)
}

// SaveShardCheckpoint persists completed shard aggregates in the campaign
// checkpoint format (atomic + durable via WriteFileAtomic), exported for
// the distributed coordinator.  A file saved here resumes under
// single-process Run and vice versa: the format carries no topology.
func SaveShardCheckpoint(path string, fp Fingerprint, done map[int]*ShardStats) error {
	return saveCheckpoint(path, fp, done)
}

// saveCheckpoint atomically persists the completed shards: it writes a
// temporary file in the same directory and renames it over the target, so
// an interruption mid-write never leaves a torn checkpoint behind.
func saveCheckpoint(path string, fp Fingerprint, done map[int]*ShardStats) error {
	cf := checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: fp,
		Shards:      make(map[string]*ShardStats, len(done)),
	}
	for i, agg := range done {
		cf.Shards[strconv.Itoa(i)] = agg
	}
	raw, err := json.MarshalIndent(cf, "", " ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(raw, '\n'))
}
