package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"safeplan/internal/carfollow"
	"safeplan/internal/core"
	"safeplan/internal/platoon"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
)

// DefaultShards is the campaign partition width.  It is deliberately
// independent of GOMAXPROCS: the shard structure pins the floating-point
// reduction order, so it must not change with the machine the campaign
// happens to run on.  64 shards keep 8–32 workers busy with negligible
// tail imbalance while keeping checkpoints small.
const DefaultShards = 64

// EpisodeFunc runs one episode under the given options (the campaign
// runner fills in Seed, Collector, and Invariants).  The scenario
// adapters — LeftTurn, MultiVehicle, CarFollow, Platoon — wrap the
// engine's episode runners; custom workloads can supply their own.
type EpisodeFunc func(opts sim.Options) (sim.Result, error)

// LeftTurn adapts the single-vehicle left-turn runner.  The agent is
// shared across workers and must be stateless across episodes (every
// agent in this repository is).
func LeftTurn(cfg sim.Config, agent core.Agent) EpisodeFunc {
	return func(opts sim.Options) (sim.Result, error) { return sim.Run(cfg, agent, opts) }
}

// MultiVehicle adapts the multi-vehicle left-turn runner.
func MultiVehicle(cfg sim.MultiConfig, agent core.MultiAgent) EpisodeFunc {
	return func(opts sim.Options) (sim.Result, error) { return sim.RunMulti(cfg, agent, opts) }
}

// CarFollow adapts the car-following runner.
func CarFollow(cfg carfollow.SimConfig, agent carfollow.Agent) EpisodeFunc {
	return func(opts sim.Options) (sim.Result, error) { return carfollow.RunEpisode(cfg, agent, opts) }
}

// Platoon adapts the N-vehicle platoon runner.
func Platoon(cfg platoon.SimConfig, agent carfollow.Agent) EpisodeFunc {
	return func(opts sim.Options) (sim.Result, error) { return platoon.RunEpisode(cfg, agent, opts) }
}

// Spec configures a campaign.
type Spec struct {
	// Name labels the campaign in reports and checkpoint fingerprints.
	Name string
	// Episodes is the campaign size; episode i runs with seed BaseSeed+i.
	Episodes int
	BaseSeed int64

	// Shards partitions the episode range for aggregation; 0 selects
	// DefaultShards.  Results are bit-identical for any worker count at a
	// fixed shard count — change Shards and the (statistically
	// equivalent) aggregate floats may differ in the last ulp.
	Shards int
	// Workers bounds the number of concurrent shard goroutines; 0 selects
	// GOMAXPROCS.
	Workers int

	// Invariants are threaded into every episode (see sim.Invariant).  By
	// default the first violation aborts the campaign with the checker's
	// ViolationError; with CountViolations set, violations are tallied in
	// Stats.InvariantViolations instead and the campaign completes.
	Invariants      []sim.Invariant
	CountViolations bool

	// Collector receives per-step and per-episode telemetry from every
	// worker plus campaign progress; it must be concurrency-safe.
	Collector telemetry.Collector

	// CheckpointPath, when non-empty, enables checkpoint/resume: completed
	// shard aggregates are persisted to this JSON file (atomically, via
	// rename) and a later run with an identical Spec fingerprint resumes
	// from it, re-running only the missing shards.  CheckpointEvery sets
	// how many completed shards trigger a save; 0 saves after every shard.
	CheckpointPath  string
	CheckpointEvery int

	// BatchSize selects the batched lockstep execution mode used by
	// RunBatch: each shard's episodes run through the SoA engine in groups
	// of this many lanes (0 or 1 selects lane-at-a-time).  Stats are
	// bit-identical for any batch size — lanes are byte-identical to
	// scalar episodes and shards still fold in episode order — so
	// BatchSize, like Workers, is deliberately excluded from the
	// checkpoint fingerprint: a scalar checkpoint resumes under a batched
	// run (and vice versa) without perturbing the aggregate.  Run ignores
	// this field.
	BatchSize int
}

func (s Spec) validate() error {
	if s.Episodes <= 0 {
		return fmt.Errorf("campaign: non-positive episode count %d", s.Episodes)
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: negative shard count %d", s.Shards)
	}
	if s.Workers < 0 {
		return fmt.Errorf("campaign: worker count %d must be >= 1 (0 selects GOMAXPROCS)", s.Workers)
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("campaign: negative checkpoint interval %d", s.CheckpointEvery)
	}
	if s.BatchSize < 0 {
		return fmt.Errorf("campaign: negative batch size %d", s.BatchSize)
	}
	return nil
}

// shards resolves the effective shard count: never more shards than
// episodes, so every shard is non-empty.
func (s Spec) shards() int {
	n := s.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n > s.Episodes {
		n = s.Episodes
	}
	return n
}

// shardRange returns the half-open episode range [lo, hi) of shard i under
// the balanced contiguous partition: the first n%shards shards hold one
// extra episode.  The mapping depends only on (Episodes, Shards).
func shardRange(episodes, shards, i int) (lo, hi int) {
	q, r := episodes/shards, episodes%shards
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

// Latency histogram bucket bounds [ns].  Step latency spans sub-µs
// analytic planners to ms-scale NN stacks; episode latency spans fast
// early-terminating episodes to multi-second horizons.
var (
	stepLatencyBounds = []float64{
		250, 500, 1e3, 2e3, 4e3, 8e3, 16e3, 32e3, 64e3, 128e3, 256e3, 1e6,
	}
	episodeLatencyBounds = []float64{
		1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 1e9, 1e10,
	}
)

// shardCtx carries the per-shard plumbing shared by the scalar and batched
// episode loops: the aggregate under construction, the wall-clock
// histograms, and the campaign-wide progress counters.
type shardCtx struct {
	spec    *Spec
	invs    []sim.Invariant
	scratch *sim.Scratch
	agg     *ShardStats

	stepHist, epHist *telemetry.Histogram
	ranSteps         *atomic.Int64
	progress         *atomic.Int64
	aborted          func() bool
}

// observe folds one finished episode into the shard aggregate and the
// campaign's wall-clock accounting.  durNs is the episode's wall time — in
// batched mode the batch's wall time amortized per lane (Perf is not
// determinism-covered; Stats folds are wall-clock free).
func (c *shardCtx) observe(r *sim.Result, durNs float64) {
	c.epHist.Observe(durNs)
	if r.Steps > 0 {
		c.stepHist.Observe(durNs / float64(r.Steps))
	}
	c.ranSteps.Add(int64(r.Steps))
	c.agg.Observe(r)
	if c.spec.Collector != nil {
		c.spec.Collector.OnProgress(c.progress.Add(1), int64(c.spec.Episodes))
	}
}

// shardBody runs one shard's episode range [lo, hi), folding results via
// ctx.observe.  On failure it returns the seed of the failing episode with
// the error; on early abort (a sibling shard failed) it returns cleanly.
type shardBody func(ctx *shardCtx, lo, hi int) (seed int64, err error)

// scalarBody is Run's episode-at-a-time shard loop.
func scalarBody(spec Spec, episode EpisodeFunc) shardBody {
	return func(ctx *shardCtx, lo, hi int) (int64, error) {
		for e := lo; e < hi; e++ {
			if ctx.aborted() {
				return 0, nil
			}
			seed := spec.BaseSeed + int64(e)
			t0 := time.Now()
			r, err := episode(sim.Options{
				Seed:       seed,
				Collector:  spec.Collector,
				Invariants: ctx.invs,
				Scratch:    ctx.scratch,
			})
			if err != nil {
				return seed, err
			}
			ctx.observe(&r, float64(time.Since(t0).Nanoseconds()))
		}
		return 0, nil
	}
}

// Run executes the campaign and returns its report.  Episodes are fanned
// across workers shard by shard; per-shard aggregates merge in shard order,
// so Stats is bit-identical for any worker count (Perf is wall-clock data
// and is not).  With a CheckpointPath set, completed shards persist to disk
// and an interrupted campaign resumes where it left off.
func Run(spec Spec, episode EpisodeFunc) (*Report, error) {
	if episode == nil {
		return nil, fmt.Errorf("campaign: nil episode function")
	}
	return execute(spec, scalarBody(spec, episode))
}

// NumShards returns the effective shard count of the fixed partition —
// the same resolution Run uses, so out-of-process executors (internal/dist)
// walk exactly the shards a single-process run would.
func (s Spec) NumShards() int { return s.shards() }

// ShardRange returns the half-open episode index range [lo, hi) of shard
// i under the fixed balanced partition.  Episode e runs with seed
// BaseSeed+e wherever it executes.
func (s Spec) ShardRange(i int) (lo, hi int) {
	return shardRange(s.Episodes, s.shards(), i)
}

// RunShard executes episodes [from, hi) of shard i — from is the shard's
// own lo for a fresh run, or a mid-shard resume point — folding results
// into agg in episode index order, the canonical fold order, so a shard
// aggregate assembled across interruptions is byte-identical to one from
// an uninterrupted run.  In counting mode violations tally into
// agg.InvariantViolations.  after, when non-nil, runs after every folded
// episode with the index of the next episode to run; a non-nil return
// aborts the shard with that error (the checkpoint and crash-injection
// seam used by the distributed tier).
func RunShard(spec Spec, episode EpisodeFunc, shard, from int, agg *ShardStats, after func(next int) error) error {
	if episode == nil {
		return fmt.Errorf("campaign: nil episode function")
	}
	if agg == nil {
		return fmt.Errorf("campaign: nil shard aggregate")
	}
	if err := spec.validate(); err != nil {
		return err
	}
	shards := spec.shards()
	if shard < 0 || shard >= shards {
		return fmt.Errorf("campaign: shard %d outside [0, %d)", shard, shards)
	}
	lo, hi := shardRange(spec.Episodes, shards, shard)
	if from < lo || from > hi {
		return fmt.Errorf("campaign: shard %d resume episode %d outside [%d, %d]", shard, from, lo, hi)
	}
	invs := countingInvariants(spec, agg)
	scratch := scratchPool.Get().(*sim.Scratch)
	defer scratchPool.Put(scratch)
	for e := from; e < hi; e++ {
		seed := spec.BaseSeed + int64(e)
		r, err := episode(sim.Options{
			Seed:       seed,
			Collector:  spec.Collector,
			Invariants: invs,
			Scratch:    scratch,
		})
		if err != nil {
			return fmt.Errorf("campaign %q: shard %d seed %d: %w", spec.Name, shard, seed, err)
		}
		agg.Observe(&r)
		if after != nil {
			if err := after(e + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// FoldShards merges completed shard aggregates in ascending shard order
// and finalizes the derived rates — the exact reduction Run performs,
// exported so the distributed coordinator produces Stats byte-identical
// to a single-process run.  Every shard in [0, NumShards()) must be
// present.
func FoldShards(spec Spec, done map[int]*ShardStats) (Stats, error) {
	if err := spec.validate(); err != nil {
		return Stats{}, err
	}
	shards := spec.shards()
	var stats Stats
	for i := 0; i < shards; i++ {
		agg := done[i]
		if agg == nil {
			return Stats{}, fmt.Errorf("campaign: fold missing shard %d of %d", i, shards)
		}
		stats.ShardStats.Merge(agg)
	}
	stats.finalize()
	return stats, nil
}

// execute is the campaign core shared by Run and RunBatch: invariant
// wiring, checkpoint resume, the worker fan-out over pending shards, and
// the deterministic shard-order reduction.  Only the per-shard episode
// loop (body) differs between execution modes.
func execute(spec Spec, body shardBody) (*Report, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	shards := spec.shards()
	workers := spec.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Resume: load previously completed shard aggregates, if any.
	done := make(map[int]*ShardStats)
	if spec.CheckpointPath != "" {
		loaded, err := loadCheckpoint(spec.CheckpointPath, spec.Fingerprint())
		if err != nil {
			return nil, err
		}
		for i, agg := range loaded {
			if i < shards {
				done[i] = agg
			}
		}
	}
	var resumedEpisodes int64
	for _, agg := range done {
		resumedEpisodes += agg.Episodes
	}

	pending := make([]int, 0, shards)
	for i := 0; i < shards; i++ {
		if _, ok := done[i]; !ok {
			pending = append(pending, i)
		}
	}

	stepHist := telemetry.NewHistogram(stepLatencyBounds...)
	epHist := telemetry.NewHistogram(episodeLatencyBounds...)

	var (
		mu            sync.Mutex // guards done + checkpoint writes
		sinceSave     int
		firstErr      atomic.Pointer[campaignError]
		progress      atomic.Int64
		ranSteps      atomic.Int64
		checkpointErr atomic.Pointer[error]
	)
	progress.Store(resumedEpisodes)
	saveEvery := spec.CheckpointEvery
	if saveEvery == 0 {
		saveEvery = 1
	}

	start := time.Now()
	sim.ParallelForWorkers(workers, len(pending), func(k int) {
		if firstErr.Load() != nil {
			return // a sibling shard failed; drain the queue
		}
		shard := pending[k]
		lo, hi := shardRange(spec.Episodes, shards, shard)
		agg := &ShardStats{}
		// Invariant wiring: in counting mode every checker is wrapped so a
		// violation tallies into this shard's aggregate instead of failing
		// the episode.  Counting at shard granularity keeps the totals
		// order-independent across workers AND lets checkpointed or
		// remotely-run shards carry their violation counts with them.
		invs := countingInvariants(spec, agg)
		// Episode scratch is pooled at shard granularity only: one arena
		// per in-flight shard, reused across that shard's episodes and
		// returned when the shard completes.  Episode results are already
		// seed-deterministic with or without a scratch (the parity tests
		// assert it), so pooling cannot perturb Stats.
		scratch := scratchPool.Get().(*sim.Scratch)
		defer scratchPool.Put(scratch)
		ctx := &shardCtx{
			spec: &spec, invs: invs, scratch: scratch, agg: agg,
			stepHist: stepHist, epHist: epHist,
			ranSteps: &ranSteps, progress: &progress,
			aborted: func() bool { return firstErr.Load() != nil },
		}
		if seed, err := body(ctx, lo, hi); err != nil {
			firstErr.CompareAndSwap(nil, &campaignError{shard: shard, seed: seed, err: err})
			return
		}
		if firstErr.Load() != nil {
			return
		}
		mu.Lock()
		done[shard] = agg
		sinceSave++
		save := spec.CheckpointPath != "" && (sinceSave >= saveEvery || len(done) == shards)
		if save {
			sinceSave = 0
			if err := saveCheckpoint(spec.CheckpointPath, spec.Fingerprint(), done); err != nil {
				checkpointErr.CompareAndSwap(nil, &err)
			}
		}
		mu.Unlock()
	})
	wall := time.Since(start)

	if ce := firstErr.Load(); ce != nil {
		return nil, fmt.Errorf("campaign %q: shard %d seed %d: %w", spec.Name, ce.shard, ce.seed, ce.err)
	}
	if ep := checkpointErr.Load(); ep != nil {
		return nil, fmt.Errorf("campaign %q: checkpoint: %w", spec.Name, *ep)
	}

	// Deterministic reduction: merge shard aggregates in shard order.
	var stats Stats
	for i := 0; i < shards; i++ {
		stats.ShardStats.Merge(done[i])
	}
	stats.finalize()

	perf := Perf{
		WallSeconds:     wall.Seconds(),
		Workers:         workers,
		Shards:          shards,
		ResumedShards:   shards - len(pending),
		ResumedEpisodes: resumedEpisodes,
	}
	if ran := stats.Episodes - resumedEpisodes; ran > 0 && wall > 0 {
		perf.EpisodesPerSec = float64(ran) / wall.Seconds()
		perf.StepsPerSec = float64(ranSteps.Load()) / wall.Seconds()
	}
	if s := stepHist.Snapshot(); s.Count > 0 {
		perf.StepP50Ns = s.Quantile(0.50)
		perf.StepP99Ns = s.Quantile(0.99)
	}
	if s := epHist.Snapshot(); s.Count > 0 {
		perf.EpisodeP50Ms = s.Quantile(0.50) / 1e6
		perf.EpisodeP99Ms = s.Quantile(0.99) / 1e6
	}

	return &Report{
		Name:     spec.Name,
		Episodes: spec.Episodes,
		BaseSeed: spec.BaseSeed,
		Stats:    stats,
		Perf:     perf,
	}, nil
}

// scratchPool recycles episode arenas across shards.  sync.Pool is safe
// here precisely because the pool boundary is the shard, never the
// episode: within a shard one goroutine owns one arena for the whole
// shard, so no cross-goroutine handoff can reorder anything.
var scratchPool = sync.Pool{New: func() any { return sim.NewScratch() }}

// campaignError carries the first episode failure with its location.
type campaignError struct {
	shard int
	seed  int64
	err   error
}

// countingInvariants wraps the spec's checkers so violations tally into
// the shard aggregate instead of failing the episode (no-op outside
// counting mode).  Every checker name is pre-seeded with a zero entry so
// clean campaigns still report each invariant explicitly, and entries
// already present in agg (a mid-shard resume) keep accumulating.  The
// wrapped checkers write into agg's map and must only run on the
// goroutine that owns the shard.
func countingInvariants(spec Spec, agg *ShardStats) []sim.Invariant {
	invs := spec.Invariants
	if !spec.CountViolations || len(invs) == 0 {
		return invs
	}
	if agg.InvariantViolations == nil {
		agg.InvariantViolations = make(map[string]int64, len(invs))
	}
	wrapped := make([]sim.Invariant, len(invs))
	for i, inv := range invs {
		if _, ok := agg.InvariantViolations[inv.Name()]; !ok {
			agg.InvariantViolations[inv.Name()] = 0
		}
		wrapped[i] = countingInvariant{inner: inv, m: agg.InvariantViolations}
	}
	return wrapped
}

// countingInvariant tallies violations instead of failing the episode.
type countingInvariant struct {
	inner sim.Invariant
	m     map[string]int64
}

func (c countingInvariant) Name() string { return c.inner.Name() }

func (c countingInvariant) CheckStep(s sim.StepInfo) error {
	if c.inner.CheckStep(s) != nil {
		c.m[c.inner.Name()]++
	}
	return nil
}

func (c countingInvariant) CheckEpisode(r *sim.Result) error {
	if c.inner.CheckEpisode(r) != nil {
		c.m[c.inner.Name()]++
	}
	return nil
}
