package campaign

import (
	"errors"
	"fmt"
	"time"

	"safeplan/internal/core"
	"safeplan/internal/sim"
	"safeplan/internal/sim/batch"
)

// BatchFunc runs one group of episodes through a lockstep engine, one lane
// per seed, returning results in seed order.  The campaign runner fills in
// Collector, Invariants, and Scratch (Options.Seed is unused — seeds come
// from the slice).  Results need only stay valid until the next call with
// the same scratch arena; the runner folds them before reusing it.
type BatchFunc func(seeds []int64, opts sim.Options) ([]sim.Result, error)

// LeftTurnBatch adapts the batched left-turn engine (internal/sim/batch).
// The agent is shared across workers and must be stateless across
// episodes, exactly as with LeftTurn.
func LeftTurnBatch(cfg sim.Config, agent core.Agent) BatchFunc {
	return func(seeds []int64, opts sim.Options) ([]sim.Result, error) {
		return batch.Run(cfg, agent, seeds, opts)
	}
}

// batchBody is RunBatch's shard loop: it walks the shard's episode range in
// groups of Spec.BatchSize lanes, runs each group through the lockstep
// engine, and folds the results in episode order — the same fold order as
// the scalar loop, so the Chan/Welford aggregates are bit-identical for
// any batch size.
func batchBody(spec Spec, run BatchFunc) shardBody {
	size := spec.BatchSize
	if size <= 0 {
		size = 1
	}
	return func(ctx *shardCtx, lo, hi int) (int64, error) {
		seeds := make([]int64, 0, size)
		for e := lo; e < hi; e += size {
			if ctx.aborted() {
				return 0, nil
			}
			n := min(size, hi-e)
			seeds = seeds[:0]
			for j := 0; j < n; j++ {
				seeds = append(seeds, spec.BaseSeed+int64(e+j))
			}
			t0 := time.Now()
			results, err := run(seeds, sim.Options{
				Collector:  spec.Collector,
				Invariants: ctx.invs,
				Scratch:    ctx.scratch,
			})
			if err != nil {
				// The engine names the failing lane; surface its seed so
				// the campaign error points at the exact episode.
				var le *batch.LaneError
				if errors.As(err, &le) {
					return le.Seed, err
				}
				return seeds[0], err
			}
			if len(results) != n {
				return seeds[0], fmt.Errorf("campaign: batch returned %d results for %d seeds", len(results), n)
			}
			// Wall-clock amortized per lane; the Stats fold below is
			// timing-free and runs in episode order.
			amort := float64(time.Since(t0).Nanoseconds()) / float64(n)
			for j := range results {
				ctx.observe(&results[j], amort)
			}
		}
		return 0, nil
	}
}

// RunBatch executes the campaign through the batched lockstep engine:
// each shard's episodes step in groups of Spec.BatchSize lanes.  Every
// lane is byte-identical to its scalar episode and shards fold in episode
// order, so Stats is bit-identical to Run for any (worker count × batch
// size) combination — the differential parity suite asserts exactly this.
// Checkpoints interoperate with Run: the fingerprint excludes BatchSize.
func RunBatch(spec Spec, run BatchFunc) (*Report, error) {
	if run == nil {
		return nil, fmt.Errorf("campaign: nil batch function")
	}
	return execute(spec, batchBody(spec, run))
}
