//go:build !race

package campaign

// raceEnabled reports whether the race detector is compiled in; the
// determinism test downscales under -race, where a 100k-episode campaign
// would dominate the `make check` wall time.
const raceEnabled = false
