package sensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
)

func newModel(t *testing.T, cfg Config, seed int64) *Model {
	t.Helper()
	m, err := New(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := (Config{DeltaP: -1}).Validate(); err == nil {
		t.Error("negative DeltaP accepted")
	}
	if err := Uniform(2).Validate(); err != nil {
		t.Errorf("Uniform(2) invalid: %v", err)
	}
}

func TestUniformHelper(t *testing.T) {
	c := Uniform(1.4)
	if c.DeltaP != 1.4 || c.DeltaV != 1.4 || c.DeltaA != 1.4 {
		t.Fatalf("Uniform = %+v", c)
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(Uniform(1), nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := New(Config{DeltaV: -2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestZeroNoiseIsExact(t *testing.T) {
	m := newModel(t, Config{}, 1)
	s := dynamics.State{P: 12.5, V: 7.25}
	r := m.Measure(1, 3.0, s, -0.5)
	if r.P != s.P || r.V != s.V || r.A != -0.5 {
		t.Fatalf("zero-noise reading = %+v", r)
	}
	if r.Target != 1 || r.T != 3.0 {
		t.Fatalf("metadata wrong: %+v", r)
	}
}

func TestNoiseBounded(t *testing.T) {
	cfg := Config{DeltaP: 2, DeltaV: 1, DeltaA: 0.5}
	m := newModel(t, cfg, 2)
	s := dynamics.State{P: 100, V: 10}
	for i := 0; i < 5000; i++ {
		r := m.Measure(0, 0, s, 1)
		if math.Abs(r.P-s.P) > cfg.DeltaP {
			t.Fatalf("position noise out of bounds: %v", r.P-s.P)
		}
		if math.Abs(r.V-s.V) > cfg.DeltaV {
			t.Fatalf("velocity noise out of bounds: %v", r.V-s.V)
		}
		if math.Abs(r.A-1) > cfg.DeltaA {
			t.Fatalf("accel noise out of bounds: %v", r.A-1)
		}
	}
}

func TestNoiseRoughlyUniform(t *testing.T) {
	// Mean ≈ 0 and variance ≈ δ²/3 for uniform noise — these are the
	// moments the paper's Kalman R matrix assumes.
	const n = 200000
	cfg := Config{DeltaP: 3}
	m := newModel(t, cfg, 3)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		r := m.Measure(0, 0, dynamics.State{}, 0)
		sum += r.P
		sumSq += r.P * r.P
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("noise mean = %v, want ≈0", mean)
	}
	want := cfg.DeltaP * cfg.DeltaP / 3
	if math.Abs(variance-want)/want > 0.03 {
		t.Fatalf("noise variance = %v, want ≈%v", variance, want)
	}
}

func TestIntervalsSound(t *testing.T) {
	cfg := Uniform(1.5)
	m := newModel(t, cfg, 4)
	s := dynamics.State{P: 40, V: 9}
	for i := 0; i < 1000; i++ {
		r := m.Measure(0, 0, s, 0)
		if !r.PosInterval(cfg).Contains(s.P) {
			t.Fatal("true position outside PosInterval")
		}
		if !r.VelInterval(cfg).Contains(s.V) {
			t.Fatal("true velocity outside VelInterval")
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := newModel(t, Uniform(2), 77)
	b := newModel(t, Uniform(2), 77)
	s := dynamics.State{P: 5, V: 5}
	for i := 0; i < 100; i++ {
		ra, rb := a.Measure(0, 0, s, 0), b.Measure(0, 0, s, 0)
		if ra != rb {
			t.Fatal("sensor not deterministic for equal seeds")
		}
	}
}

// Property: the interval implied by a reading always contains the truth,
// for arbitrary states and uncertainties.
func TestQuickIntervalSoundness(t *testing.T) {
	f := func(seed int64, pRaw, vRaw, dRaw float64) bool {
		clean := func(x, cap float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(math.Abs(x), cap)
		}
		cfg := Uniform(clean(dRaw, 10))
		m, err := New(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		s := dynamics.State{P: clean(pRaw, 1000) - 500, V: clean(vRaw, 30)}
		for i := 0; i < 20; i++ {
			r := m.Measure(0, 0, s, 0)
			if !r.PosInterval(cfg).Contains(s.P) || !r.VelInterval(cfg).Contains(s.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a biased reading stays inside the sound ±δ envelope for every
// bias fraction — the clamp that keeps the fusion filter's soundness
// argument intact under bias-drift disturbance.
func TestQuickBiasedReadingStaysSound(t *testing.T) {
	f := func(seed int64, biasRaw float64) bool {
		bias := math.Mod(biasRaw, 1)
		if math.IsNaN(bias) {
			bias = 1
		}
		cfg := Uniform(2)
		m, err := New(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		s := dynamics.State{P: 100, V: 10}
		for i := 0; i < 20; i++ {
			r := m.MeasureBiased(0, 0, s, 1, bias)
			if !r.PosInterval(cfg).Contains(s.P) || !r.VelInterval(cfg).Contains(s.V) {
				return false
			}
			if math.Abs(r.A-1) > cfg.DeltaA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A zero bias must consume the RNG stream exactly like Measure, so
// attaching a disturbance model that emits Bias=0 changes nothing.
func TestMeasureBiasedZeroMatchesMeasure(t *testing.T) {
	cfg := Uniform(1.5)
	a, _ := New(cfg, rand.New(rand.NewSource(9)))
	b, _ := New(cfg, rand.New(rand.NewSource(9)))
	s := dynamics.State{P: 50, V: 8}
	for i := 0; i < 50; i++ {
		ra := a.Measure(1, float64(i), s, 0.5)
		rb := b.MeasureBiased(1, float64(i), s, 0.5, 0)
		if ra != rb {
			t.Fatalf("step %d: %+v != %+v", i, ra, rb)
		}
	}
}

// A full positive bias pins readings to the upper half of the envelope.
func TestFullBiasPinsToEdge(t *testing.T) {
	cfg := Uniform(2)
	m, _ := New(cfg, rand.New(rand.NewSource(4)))
	s := dynamics.State{P: 0, V: 0}
	for i := 0; i < 200; i++ {
		r := m.MeasureBiased(0, 0, s, 0, 1)
		if r.P < 0 || r.P > 2 {
			t.Fatalf("bias +1 reading %v outside [0, 2]", r.P)
		}
	}
}
