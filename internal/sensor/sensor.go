// Package sensor models the ego vehicle's onboard perception of other
// vehicles (paper §II-A): every Δt_s seconds the ego obtains a measurement
// of another vehicle's position, velocity, and acceleration, each corrupted
// by independent uniform noise in [−δ, +δ].  Measurements arrive without
// delay but are inaccurate — the mirror image of V2V messages, which are
// accurate but late.
package sensor

import (
	"fmt"
	"math/rand"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// Config holds the uniform noise half-widths (paper δ_p, δ_v, δ_a).
type Config struct {
	DeltaP float64 // position uncertainty [m]
	DeltaV float64 // velocity uncertainty [m/s]
	DeltaA float64 // acceleration uncertainty [m/s²]
}

// Validate reports whether all uncertainties are nonnegative.
func (c Config) Validate() error {
	if c.DeltaP < 0 || c.DeltaV < 0 || c.DeltaA < 0 {
		return fmt.Errorf("sensor: negative uncertainty %+v", c)
	}
	return nil
}

// Uniform returns a Config with δ_p = δ_v = δ_a = d, the sweep used in the
// paper's "messages lost" experiments.
func Uniform(d float64) Config { return Config{DeltaP: d, DeltaV: d, DeltaA: d} }

// Reading is one sensed snapshot of a target vehicle.
type Reading struct {
	Target int     // observed vehicle index
	T      float64 // measurement time [s]
	P      float64 // measured position [m]
	V      float64 // measured velocity [m/s]
	A      float64 // measured acceleration [m/s²]
}

// PosInterval returns the sound position interval implied by the reading:
// the true position is within ±δ_p of the measurement by construction.
func (r Reading) PosInterval(cfg Config) interval.Interval {
	return interval.New(r.P-cfg.DeltaP, r.P+cfg.DeltaP)
}

// VelInterval returns the sound velocity interval implied by the reading.
func (r Reading) VelInterval(cfg Config) interval.Interval {
	return interval.New(r.V-cfg.DeltaV, r.V+cfg.DeltaV)
}

// Model samples noisy readings.  It is not safe for concurrent use.
type Model struct {
	cfg Config
	rng *rand.Rand
}

// New creates a sensor model drawing noise from rng.
func New(cfg Config, rng *rand.Rand) (*Model, error) {
	m := &Model{}
	if err := m.Reset(cfg, rng); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset re-initialises the model in place for a new episode; behaviour is
// identical to a freshly constructed Model.
func (m *Model) Reset(cfg Config, rng *rand.Rand) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if rng == nil {
		return fmt.Errorf("sensor: nil rng")
	}
	m.cfg = cfg
	m.rng = rng
	return nil
}

// Config returns the model's noise configuration.
func (m *Model) Config() Config { return m.cfg }

// Measure produces a reading of the target's true state s and acceleration
// a at time t, with each component independently perturbed by uniform noise.
func (m *Model) Measure(target int, t float64, s dynamics.State, a float64) Reading {
	return m.MeasureBiased(target, t, s, a, 0)
}

// MeasureBiased is Measure with an adversarial bias of bias·δ added to each
// component *before* the shifted noise is clamped back into [−δ, +δ].
// The clamp keeps every reading inside the sound envelope the fusion
// filter's soundness argument relies on — bias pushes the error toward one
// edge (worst-case correlated error) but can never break the ±δ promise.
// bias is a fraction in [−1, 1]; disturbance models (internal/disturb)
// supply it per reading.
func (m *Model) MeasureBiased(target int, t float64, s dynamics.State, a float64, bias float64) Reading {
	return Reading{
		Target: target,
		T:      t,
		P:      s.P + m.biased(m.cfg.DeltaP, bias),
		V:      s.V + m.biased(m.cfg.DeltaV, bias),
		A:      a + m.biased(m.cfg.DeltaA, bias),
	}
}

// biased draws the uniform noise, shifts it by bias·d, and clamps the sum
// into [−d, +d].  The noise draw happens before the zero-bias shortcut so
// the RNG stream is identical with and without a bias model attached.
func (m *Model) biased(d, bias float64) float64 {
	if d == 0 {
		return 0
	}
	e := (m.rng.Float64()*2-1)*d + bias*d
	if e > d {
		e = d
	}
	if e < -d {
		e = -d
	}
	return e
}
