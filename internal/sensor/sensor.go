// Package sensor models the ego vehicle's onboard perception of other
// vehicles (paper §II-A): every Δt_s seconds the ego obtains a measurement
// of another vehicle's position, velocity, and acceleration, each corrupted
// by independent uniform noise in [−δ, +δ].  Measurements arrive without
// delay but are inaccurate — the mirror image of V2V messages, which are
// accurate but late.
package sensor

import (
	"fmt"
	"math/rand"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// Config holds the uniform noise half-widths (paper δ_p, δ_v, δ_a).
type Config struct {
	DeltaP float64 // position uncertainty [m]
	DeltaV float64 // velocity uncertainty [m/s]
	DeltaA float64 // acceleration uncertainty [m/s²]
}

// Validate reports whether all uncertainties are nonnegative.
func (c Config) Validate() error {
	if c.DeltaP < 0 || c.DeltaV < 0 || c.DeltaA < 0 {
		return fmt.Errorf("sensor: negative uncertainty %+v", c)
	}
	return nil
}

// Uniform returns a Config with δ_p = δ_v = δ_a = d, the sweep used in the
// paper's "messages lost" experiments.
func Uniform(d float64) Config { return Config{DeltaP: d, DeltaV: d, DeltaA: d} }

// Reading is one sensed snapshot of a target vehicle.
type Reading struct {
	Target int     // observed vehicle index
	T      float64 // measurement time [s]
	P      float64 // measured position [m]
	V      float64 // measured velocity [m/s]
	A      float64 // measured acceleration [m/s²]
}

// PosInterval returns the sound position interval implied by the reading:
// the true position is within ±δ_p of the measurement by construction.
func (r Reading) PosInterval(cfg Config) interval.Interval {
	return interval.New(r.P-cfg.DeltaP, r.P+cfg.DeltaP)
}

// VelInterval returns the sound velocity interval implied by the reading.
func (r Reading) VelInterval(cfg Config) interval.Interval {
	return interval.New(r.V-cfg.DeltaV, r.V+cfg.DeltaV)
}

// Model samples noisy readings.  It is not safe for concurrent use.
type Model struct {
	cfg Config
	rng *rand.Rand
}

// New creates a sensor model drawing noise from rng.
func New(cfg Config, rng *rand.Rand) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("sensor: nil rng")
	}
	return &Model{cfg: cfg, rng: rng}, nil
}

// Config returns the model's noise configuration.
func (m *Model) Config() Config { return m.cfg }

// Measure produces a reading of the target's true state s and acceleration
// a at time t, with each component independently perturbed by uniform noise.
func (m *Model) Measure(target int, t float64, s dynamics.State, a float64) Reading {
	return Reading{
		Target: target,
		T:      t,
		P:      s.P + m.uniform(m.cfg.DeltaP),
		V:      s.V + m.uniform(m.cfg.DeltaV),
		A:      a + m.uniform(m.cfg.DeltaA),
	}
}

func (m *Model) uniform(d float64) float64 {
	if d == 0 {
		return 0
	}
	return (m.rng.Float64()*2 - 1) * d
}
