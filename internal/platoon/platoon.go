// Package platoon generalizes the car-following case study
// (internal/carfollow) to an N-vehicle chain with chained V2V links — the
// ReachMM platooning setting mapped onto the paper's §II-A distance-gap
// unsafe set.
//
// Vehicle 0 is the exogenous head (the stop-and-go lead of the
// car-following study, and the disturbance source for string stability).
// Vehicle 1 is the NN-controlled ego: its planner runs under the full
// κ_n/κ_e compound stack — unsafe-set and boundary-safe-set monitoring on
// the sound estimate, optional guard and fault injection — exactly as in
// carfollow.  Vehicles 2..N−1 are analytic followers: each tracks its
// predecessor with the conservative expert cruise law on the fused
// estimate and falls back to κ_e (maximum braking) whenever its link's
// sound estimate puts it in the unsafe or boundary safe set.
//
// Every inter-vehicle link ℓ (vehicle ℓ → vehicle ℓ+1) carries its own
// communication channel, sensor stream, and fusion filter, each with an
// independently derived random stream and an optional per-link
// disturbance model — so burst loss can hit any segment of the chain
// independently of the others.
//
// The unsafe set is pairwise: every gap p_ℓ − p_{ℓ+1} must stay at or
// above the scenario's PGap (FixedGap, the paper's §II-A set), or — as a
// config switch — above the ReachMM ACC time-gap requirement
// DDefault + TGap·v_follower (TimeGap).  A two-vehicle platoon under
// FixedGap reproduces the car-following episode byte for byte at matched
// config and seed; the differential test pins this.
package platoon

import (
	"fmt"
	"math"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
)

// GapSpec selects the pairwise unsafe-set variant.
type GapSpec int

const (
	// FixedGap is the paper's §II-A distance-gap set: every bumper gap
	// must stay at or above Scenario.PGap.  This is the variant the
	// framework's hard guarantee (and the platoon-smoke gate) covers.
	FixedGap GapSpec = iota
	// TimeGap is the ReachMM ACC specification (ojcsys2023.py):
	// Drel ≥ DDefault + TGap·v_ego for every follower.  The monitor stack
	// runs on the DDefault floor of the requirement, so a breach of the
	// speed-dependent part is possible and is scored as a collision; the
	// guarantee is not claimed for this variant.
	TimeGap
)

// DefaultDDefault and DefaultTGap are the ReachMM ACC constants used when
// a TimeGap config leaves them zero.
const (
	DefaultDDefault = 10.0
	DefaultTGap     = 1.4
)

// FollowerGains tunes the analytic follower controller (vehicles 2..N−1).
// Zero fields select the conservative expert's values (see
// carfollow.ConservativeExpert): Headway 1.8 s, Buffer 4 m, GainGap 0.5,
// GainSpeed 0.9.
type FollowerGains struct {
	Headway   float64 // time headway [s]
	Buffer    float64 // constant extra spacing [m]
	GainGap   float64 // accel per metre of gap error
	GainSpeed float64 // accel per m/s of speed difference
}

// fill resolves zero fields to the conservative-expert defaults.
func (g FollowerGains) fill() FollowerGains {
	if g.Headway == 0 {
		g.Headway = 1.8
	}
	if g.Buffer == 0 {
		g.Buffer = 4
	}
	if g.GainGap == 0 {
		g.GainGap = 0.5
	}
	if g.GainSpeed == 0 {
		g.GainSpeed = 0.9
	}
	return g
}

// SimConfig assembles a platoon campaign.  It embeds the car-following
// SimConfig — scenario constants, default communication/sensing stack,
// the head's stop-and-go workload, guard and fault-injection wiring — and
// adds the chain structure on top.  A SimConfig with Vehicles = 2 and no
// per-link overrides is exactly the embedded carfollow.SimConfig.
type SimConfig struct {
	carfollow.SimConfig

	// Vehicles is the chain length N including the exogenous head (≥ 2).
	// N = 2 is precisely the car-following scenario.
	Vehicles int

	// Spacing is the initial bumper gap of the follower links (vehicle i ≥
	// 2 starts Spacing behind its predecessor) [m].  Zero derives it from
	// the scenario's initial head gap (LeadInit.P − EgoInit.P).
	Spacing float64

	// LinkComms, when non-empty, must have Vehicles−1 entries: entry ℓ
	// configures the V2V channel of link ℓ (vehicle ℓ → vehicle ℓ+1).
	// Empty selects the embedded Comms config for every link.
	LinkComms []comms.Config

	// LinkSensorDisturb, when non-empty, must have Vehicles−1 entries:
	// entry ℓ injects sensing faults on link ℓ (nil entries leave that
	// link clean).  Empty applies the embedded SensorDisturb (possibly
	// nil) to every link.
	LinkSensorDisturb []disturb.SensorModel

	// Spec selects the pairwise unsafe-set variant; DDefault and TGap
	// parameterize the TimeGap requirement (zeroes select the ReachMM
	// defaults).  Both are ignored under FixedGap.
	Spec     GapSpec
	DDefault float64
	TGap     float64

	// Follow tunes the analytic follower controller.
	Follow FollowerGains
}

// DefaultSimConfig returns a four-vehicle platoon over the car-following
// evaluation defaults: head + NN ego + two followers, every link on the
// same channel/sensor configuration, FixedGap spec.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		SimConfig: carfollow.DefaultSimConfig(),
		Vehicles:  4,
	}
}

// Validate checks the configuration.
func (c SimConfig) Validate() error {
	if err := c.SimConfig.Validate(); err != nil {
		return err
	}
	if c.Vehicles < 2 {
		return fmt.Errorf("platoon: need at least two vehicles (head + ego), got %d", c.Vehicles)
	}
	if math.IsNaN(c.Spacing) || math.IsInf(c.Spacing, 0) || c.Spacing < 0 {
		return fmt.Errorf("platoon: bad spacing %v", c.Spacing)
	}
	if n := len(c.LinkComms); n != 0 && n != c.Vehicles-1 {
		return fmt.Errorf("platoon: LinkComms has %d entries, need 0 or %d", n, c.Vehicles-1)
	}
	for l, cc := range c.LinkComms {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("platoon: link %d comms: %w", l, err)
		}
	}
	if n := len(c.LinkSensorDisturb); n != 0 && n != c.Vehicles-1 {
		return fmt.Errorf("platoon: LinkSensorDisturb has %d entries, need 0 or %d", n, c.Vehicles-1)
	}
	for l, m := range c.LinkSensorDisturb {
		if m == nil {
			continue
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("platoon: link %d sensor disturbance: %w", l, err)
		}
	}
	switch c.Spec {
	case FixedGap:
	case TimeGap:
		for _, f := range []struct {
			name string
			v    float64
		}{{"DDefault", c.DDefault}, {"TGap", c.TGap}} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return fmt.Errorf("platoon: bad %s %v", f.name, f.v)
			}
		}
	default:
		return fmt.Errorf("platoon: unknown gap spec %d", c.Spec)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Follow.Headway", c.Follow.Headway}, {"Follow.Buffer", c.Follow.Buffer},
		{"Follow.GainGap", c.Follow.GainGap}, {"Follow.GainSpeed", c.Follow.GainSpeed},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("platoon: bad %s %v", f.name, f.v)
		}
	}
	if sp := c.spacing(); sp <= c.LinkScenario().PGap {
		return fmt.Errorf("platoon: initial follower spacing %v already violates the gap requirement", sp)
	}
	return nil
}

// spacing resolves the initial follower gap: Spacing, or the scenario's
// initial head gap when zero.
func (c SimConfig) spacing() float64 {
	if c.Spacing > 0 {
		return c.Spacing
	}
	return c.Scenario.LeadInit.P - c.Scenario.EgoInit.P
}

// dDefault and tGap resolve the TimeGap constants.
func (c SimConfig) dDefault() float64 {
	if c.DDefault > 0 {
		return c.DDefault
	}
	return DefaultDDefault
}

func (c SimConfig) tGap() float64 {
	if c.TGap > 0 {
		return c.TGap
	}
	return DefaultTGap
}

// LinkScenario returns the effective per-link scenario constants the
// monitor/guard stack runs on.  Under FixedGap it is the embedded
// Scenario unchanged; under TimeGap the PGap is replaced by the
// requirement's speed-independent floor DDefault (the monitor keeps the
// paper's fixed-gap machinery; the speed-dependent part is scored by the
// violation predicate, not guaranteed).  Agents for the NN vehicle should
// be constructed against this config so their monitoring matches the
// engine's.
func (c SimConfig) LinkScenario() carfollow.Config {
	sc := c.Scenario
	if c.Spec == TimeGap {
		sc.PGap = c.dDefault()
	}
	return sc
}

// RequiredGap returns the minimum admissible bumper gap for a follower
// moving at speed v under the configured spec.
func (c SimConfig) RequiredGap(v float64) float64 {
	if c.Spec == TimeGap {
		return c.dDefault() + c.tGap()*v
	}
	return c.Scenario.PGap
}

// GapViolation reports whether the pair (pred, foll) violates the
// configured pairwise unsafe set — the scored safety outcome, evaluated
// on true states.  Under FixedGap it is exactly the car-following
// Violation predicate.
func (c SimConfig) GapViolation(pred, foll dynamics.State) bool {
	return pred.P-foll.P < c.RequiredGap(foll.V)
}

// linkComms returns link ℓ's channel configuration.
func (c SimConfig) linkComms(l int) comms.Config {
	if len(c.LinkComms) > 0 {
		return c.LinkComms[l]
	}
	return c.Comms
}

// linkSensorDisturb returns link ℓ's sensing-fault model (possibly nil).
func (c SimConfig) linkSensorDisturb(l int) disturb.SensorModel {
	if len(c.LinkSensorDisturb) > 0 {
		return c.LinkSensorDisturb[l]
	}
	return c.SensorDisturb
}
