package platoon

import (
	"encoding/json"
	"fmt"
	"testing"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

func pJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// pDump renders a full Result, trace included, for exact comparison.
// Traces hold NaN placeholders (MeasP before the first reading), which
// JSON cannot carry and which compare unequal under ==; the formatted
// rendering is exact for every other value and stable for NaN.
func pDump(v any) string { return fmt.Sprintf("%+v", v) }

// parityCases are the disturbance shapes the byte-parity differential
// covers: every channel family, adversarial bursts, sensing faults, and
// the fault-injection guard.
func parityCases(t *testing.T) []struct {
	name string
	mod  func(*carfollow.SimConfig)
} {
	t.Helper()
	burst, err := disturb.Preset("burst")
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		mod  func(*carfollow.SimConfig)
	}{
		{"perfect", func(*carfollow.SimConfig) {}},
		{"delayed", func(c *carfollow.SimConfig) { c.Comms = comms.Delayed(0.25, 0.5); c.InfoFilter = true }},
		{"lost", func(c *carfollow.SimConfig) { c.Comms = comms.Lost(); c.Sensor = sensor.Uniform(2) }},
		{"burst", func(c *carfollow.SimConfig) { c.Comms = comms.Disturbed(burst); c.InfoFilter = true }},
		{"sensor-fault", func(c *carfollow.SimConfig) {
			c.Comms = comms.Lost()
			c.SensorDisturb = disturb.BiasDrift{Max: 1, Period: 12}
		}},
	}
}

// TestTwoVehicleByteParity is the tentpole differential gate: a
// two-vehicle platoon must reproduce the car-following episode byte for
// byte at matched config and seed — full Result including the trace —
// under every disturbance shape, on both the fresh and the pooled-arena
// paths.
func TestTwoVehicleByteParity(t *testing.T) {
	reused := sim.NewScratch()
	for _, tc := range parityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cf := carfollow.DefaultSimConfig()
			tc.mod(&cf)
			agent := carfollow.NewUltimate(cf.Scenario, carfollow.AggressiveExpert(cf.Scenario))
			pcfg := SimConfig{SimConfig: cf, Vehicles: 2}
			for seed := int64(0); seed < 6; seed++ {
				want, err := carfollow.RunEpisode(cf, agent, sim.Options{Seed: seed, Trace: true})
				if err != nil {
					t.Fatal(err)
				}
				ref := pDump(want)
				for name, opts := range map[string]sim.Options{
					"fresh":  {Seed: seed, Trace: true},
					"pooled": {Seed: seed, Trace: true, Scratch: reused},
				} {
					got, err := RunEpisode(pcfg, agent, opts)
					if err != nil {
						t.Fatal(err)
					}
					if g := pDump(got); g != ref {
						t.Fatalf("seed %d (%s): two-vehicle platoon diverged from carfollow\ncarfollow: %s\nplatoon:   %s",
							seed, name, ref, g)
					}
				}
				// Untraced results must also serialize to identical JSON —
				// in particular, a two-vehicle platoon must not emit the
				// Links block the longer chains carry.
				cw, err := carfollow.RunEpisode(cf, agent, sim.Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				pw, err := RunEpisode(pcfg, agent, sim.Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if a, b := pJSON(t, cw), pJSON(t, pw); a != b {
					t.Fatalf("seed %d: JSON serialization diverged\ncarfollow: %s\nplatoon:   %s", seed, a, b)
				}
			}
		})
	}
}

// TestTwoVehicleParityWithInvariants repeats the differential with the
// safety invariants attached, pinning that the invariant plumbing (step
// payloads, episode checks) does not perturb the episode either.
func TestTwoVehicleParityWithInvariants(t *testing.T) {
	cf := carfollow.DefaultSimConfig()
	cf.Comms = comms.Delayed(0.25, 0.5)
	cf.InfoFilter = true
	agent := carfollow.NewUltimate(cf.Scenario, carfollow.AggressiveExpert(cf.Scenario))
	pcfg := SimConfig{SimConfig: cf, Vehicles: 2}
	invs := []sim.Invariant{
		sim.NoCollision{},
		sim.SoundEstimate{},
		carfollow.TrueSlack{Cfg: cf.Scenario},
		StringStability{},
	}
	for seed := int64(20); seed < 26; seed++ {
		want, err := carfollow.RunEpisode(cf, agent, sim.Options{Seed: seed, Trace: true, Invariants: invs[:3]})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunEpisode(pcfg, agent, sim.Options{Seed: seed, Trace: true, Invariants: invs})
		if err != nil {
			t.Fatal(err)
		}
		if pDump(want) != pDump(got) {
			t.Fatalf("seed %d: invariant-checked platoon episode diverged from carfollow", seed)
		}
	}
}

// TestStepperFinishIdempotent pins Finish/past-the-end semantics on the
// platoon engine.
func TestStepperFinishIdempotent(t *testing.T) {
	cfg := DefaultSimConfig()
	agent := carfollow.NewUltimate(cfg.Scenario, carfollow.ConservativeExpert(cfg.Scenario))
	st, err := NewStepper(cfg, agent, sim.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Step(sim.StepInput{}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if out, err := st.Step(sim.StepInput{}); err != nil || !out.Done {
		t.Fatalf("past-the-end step: out=%+v err=%v", out, err)
	}
	second, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if pDump(first) != pDump(second) {
		t.Fatalf("Finish is not idempotent\nfirst:  %s\nsecond: %s", pDump(first), pDump(second))
	}
}

// TestStepperRunParity pins the externally driven engine against the
// closed RunEpisode loop on a four-vehicle chain, fresh and pooled.
func TestStepperRunParity(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := carfollow.NewUltimate(cfg.Scenario, carfollow.AggressiveExpert(cfg.Scenario))
	reused := sim.NewScratch()
	for seed := int64(0); seed < 6; seed++ {
		want, err := RunEpisode(cfg, agent, sim.Options{Seed: seed, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		ref := pDump(want)
		for name, opts := range map[string]sim.Options{
			"fresh":  {Seed: seed, Trace: true},
			"pooled": {Seed: seed, Trace: true, Scratch: reused},
		} {
			st, err := NewStepper(cfg, agent, opts)
			if err != nil {
				t.Fatal(err)
			}
			for !st.Done() {
				if _, err := st.Step(sim.StepInput{}); err != nil {
					t.Fatal(err)
				}
			}
			res, err := st.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if got := pDump(res); got != ref {
				t.Fatalf("seed %d (%s): stepper-driven episode diverged from RunEpisode", seed, name)
			}
		}
	}
}
