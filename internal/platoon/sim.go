package platoon

import (
	"fmt"
	"sync/atomic"

	"safeplan/internal/carfollow"
	"safeplan/internal/sim"
)

// RunEpisode simulates one platoon episode under the shared episode
// options (trace recording, telemetry collector).  Like carfollow's
// RunEpisode it is a thin closed loop over the resumable Stepper engine.
func RunEpisode(cfg SimConfig, agent carfollow.Agent, opts sim.Options) (sim.Result, error) {
	st, err := NewStepper(cfg, agent, opts)
	if err != nil {
		return sim.Result{}, err
	}
	for {
		out, err := st.Step(sim.StepInput{})
		if err != nil || out.Done {
			return st.Finish()
		}
	}
}

// RunCampaign simulates n seed-paired platoon episodes with the shared
// campaign options (worker bound, telemetry collector).
func RunCampaign(cfg SimConfig, agent carfollow.Agent, n int, o sim.CampaignOptions) ([]sim.Result, error) {
	if o.Workers < 0 {
		return nil, fmt.Errorf("platoon: worker count %d must be >= 1 (0 selects GOMAXPROCS)", o.Workers)
	}
	if n <= 0 {
		return nil, fmt.Errorf("platoon: non-positive episode count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]sim.Result, n)
	errs := make([]error, n)
	var done atomic.Int64
	scratches := sim.NewWorkerScratches(o.Workers, n)
	sim.ParallelForWorkersScoped(o.Workers, n, func(w, i int) {
		results[i], errs[i] = RunEpisode(cfg, agent, o.EpisodeOptions(i, scratches[w]))
		if o.Collector != nil {
			o.Collector.OnProgress(done.Add(1), int64(n))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("platoon: episode %d: %w", i, err)
		}
	}
	return results, nil
}
