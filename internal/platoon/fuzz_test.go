package platoon

import (
	"testing"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/sim"
)

// ffReader decodes fuzz bytes into bounded parameters (the platoon twin
// of the decoder in internal/carfollow; each package keeps its own copy
// so the fuzz targets stay self-contained).
type ffReader struct {
	data []byte
	i    int
}

func (r *ffReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

func (r *ffReader) unit() float64 { return float64(r.next()) / 255 }

func (r *ffReader) rng(lo, hi float64) float64 { return lo + r.unit()*(hi-lo) }

func ffModel(r *ffReader) disturb.Model {
	switch r.next() % 5 {
	case 0:
		return nil
	case 1:
		return disturb.IID{DropProb: r.unit(), Delay: r.rng(0, 0.5)}
	case 2:
		return disturb.GilbertElliott{
			PGoodBad: r.unit(),
			PBadGood: r.rng(0.02, 1),
			DropBad:  r.unit(),
			Delay:    r.rng(0, 0.3),
		}
	case 3:
		return disturb.Jitter{
			Base:     r.rng(0, 0.2),
			Spread:   r.rng(0, 0.8),
			TailProb: r.unit(),
			TailMean: r.rng(0, 1),
			DropProb: r.unit(),
		}
	default:
		s1 := r.rng(0, 10)
		return disturb.Schedule{Phases: []disturb.Phase{
			{Start: s1, Model: disturb.Blackout{}},
			{Start: s1 + r.rng(0.5, 5), Model: disturb.IID{DropProb: r.unit()}},
		}}
	}
}

// FuzzPlatoonSafety decodes arbitrary bytes into a chain length, an
// independent channel disturbance per link, an optional sensing
// disturbance, and a scripted head behaviour, and asserts the framework's
// guarantees across the whole chain via the shared invariant checkers:
// no pairwise gap violation anywhere, sound estimates contain the true
// predecessor state on every link, and the true-state stopping-distance
// slack stays nonnegative for every follower pair.
func FuzzPlatoonSafety(f *testing.F) {
	// Seed corpus: the carfollow-equivalent chain, per-link disturbance
	// geometries, and a hard-braking head.
	f.Add([]byte{}, int64(1))                          // N=2, perfect comms
	f.Add([]byte{2, 1, 127, 127, 0, 0}, int64(42))     // N=4, delayed middle link
	f.Add([]byte{1, 4, 60, 90, 128, 2, 0}, int64(7))   // N=3, blackout on head link
	f.Add([]byte{3, 0, 2, 200, 40, 200, 30}, int64(9)) // N=5, bursty tail link
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0}, int64(3)) // head slams the brakes (script of aMin)

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		r := &ffReader{data: data}
		cfg := DefaultSimConfig()
		cfg.Vehicles = 2 + int(r.next()%4) // chains of 2..5 vehicles
		links := make([]comms.Config, cfg.Vehicles-1)
		anyModel := false
		for l := range links {
			links[l] = comms.NoDisturbance()
			if m := ffModel(r); m != nil {
				links[l] = comms.Disturbed(m)
				anyModel = true
			}
		}
		if anyModel {
			cfg.LinkComms = links
		}
		switch r.next() % 3 {
		case 1:
			cfg.SensorDisturb = disturb.BiasDrift{Rate: r.unit(), Max: r.unit()}
		case 2:
			cfg.SensorDisturb = disturb.SensorDropout{
				PGoodBad: r.rng(0, 0.3),
				PBadGood: r.rng(0.05, 1),
				DropBad:  r.unit(),
			}
		}
		sc := cfg.Scenario
		agents := []carfollow.Agent{
			carfollow.NewBasic(sc, carfollow.ConservativeExpert(sc)),
			carfollow.NewBasic(sc, carfollow.AggressiveExpert(sc)),
		}
		agent := agents[int(r.next())%len(agents)]
		// Script the head from the remaining bytes (one control step per
		// byte, clamped into its physical envelope).
		if n := len(r.data) - r.i; n > 0 {
			if n > 400 {
				n = 400
			}
			script := make([]float64, n)
			for i := range script {
				script[i] = r.rng(sc.Lead.AMin, sc.Lead.AMax)
			}
			cfg.LeadScript = script
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoder produced invalid config: %v", err)
		}
		_, err := RunEpisode(cfg, agent, sim.Options{Seed: seed, Invariants: []sim.Invariant{
			sim.NoCollision{},
			sim.SoundEstimate{},
			carfollow.TrueSlack{Cfg: cfg.Scenario},
		}})
		if err != nil {
			t.Fatalf("invariant violated on a %d-vehicle chain: %v", cfg.Vehicles, err)
		}
	})
}
