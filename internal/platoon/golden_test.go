package platoon

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/sim"
)

var update = flag.Bool("update", false, "re-bless the golden trace files")

// goldenChainRow snapshots the whole chain at one control step.  Floats
// marshal with Go's shortest-round-trip formatting, so the encoding is
// byte-exact and any behavioural drift — RNG stream reordering, follower
// law changes, link plumbing — shows up as a diff.
type goldenChainRow struct {
	Step      int       `json:"step"`
	T         float64   `json:"t"`
	P         []float64 `json:"p"`
	V         []float64 `json:"v"`
	EgoA      float64   `json:"ego_a"`
	Emergency bool      `json:"emergency"`
}

// goldenChain is one blessed episode: subsampled full-chain rows plus the
// terminal outcome and per-link statistics.
type goldenChain struct {
	Rows     []goldenChainRow `json:"rows"`
	Reached  bool             `json:"reached"`
	Collided bool             `json:"collided"`
	Steps    int              `json:"steps"`
	Links    []sim.LinkStats  `json:"links"`
}

const goldenSeed = 11

// goldenCases are the two canonical platoon episodes: a clean chain and
// one with the adversarial burst preset on the middle link — the
// disturbance geometry the chained-link design exists for.
func goldenCases(t *testing.T) []struct {
	Name string
	Cfg  SimConfig
} {
	t.Helper()
	clean := DefaultSimConfig()
	clean.InfoFilter = true

	burst := DefaultSimConfig()
	burst.InfoFilter = true
	bm, err := disturb.Preset("burst")
	if err != nil {
		t.Fatal(err)
	}
	burst.LinkComms = []comms.Config{
		comms.NoDisturbance(), comms.Disturbed(bm), comms.NoDisturbance(),
	}
	return []struct {
		Name string
		Cfg  SimConfig
	}{
		{"clean", clean},
		{"burst-mid", burst},
	}
}

// goldenChainTrace drives the engine step by step, snapshotting every
// 10th step (and the last) of the whole chain.
func goldenChainTrace(t *testing.T, cfg SimConfig) []byte {
	t.Helper()
	sc := cfg.LinkScenario()
	agent := carfollow.NewUltimate(sc, carfollow.ConservativeExpert(sc))
	st, err := NewStepper(cfg, agent, sim.Options{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	var g goldenChain
	for !st.Done() {
		out, err := st.Step(sim.StepInput{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Step%10 == 0 || out.Done {
			row := goldenChainRow{
				Step: out.Step, T: out.T,
				P:    make([]float64, len(st.states)),
				V:    make([]float64, len(st.states)),
				EgoA: out.Accel, Emergency: out.Emergency,
			}
			for i, s := range st.states {
				row.P[i], row.V[i] = s.P, s.V
			}
			g.Rows = append(g.Rows, row)
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g.Reached, g.Collided, g.Steps, g.Links = res.Reached, res.Collided, res.Steps, res.Links
	out, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenChainTraces replays the canonical platoon episodes and
// byte-compares them against the blessed traces in testdata/.  Run with
// -update to re-bless after an intentional behaviour change.
func TestGoldenChainTraces(t *testing.T) {
	for _, tc := range goldenCases(t) {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			got := goldenChainTrace(t, tc.Cfg)
			path := filepath.Join("testdata", "golden_"+tc.Name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/platoon -run TestGoldenChainTraces -update` to bless)", err)
			}
			if !bytes.Equal(got, want) {
				diffAt := 0
				for diffAt < len(got) && diffAt < len(want) && got[diffAt] == want[diffAt] {
					diffAt++
				}
				lo, hi := diffAt-80, diffAt+80
				if lo < 0 {
					lo = 0
				}
				if hi > len(got) {
					hi = len(got)
				}
				t.Fatalf("golden chain trace %q drifted at byte %d:\n got … %s …\nre-bless with -update only if the change is intentional",
					tc.Name, diffAt, got[lo:hi])
			}
		})
	}
}
