package platoon

import (
	"math"
	"time"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/guard"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
)

// link bundles one V2V link's per-episode machinery: the channel and
// sensor stream from vehicle ℓ to vehicle ℓ+1, the receiver's fusion
// filter, and the latest estimate/knowledge built from them.
type link struct {
	channel  *comms.Channel
	sens     *sensor.Model
	filt     *fusion.Filter
	sensProc disturb.SensorProcess // nil unless the link has a sensing-fault model

	est      fusion.Estimate
	k        carfollow.Knowledge
	lastMeas sensor.Reading
	haveMeas bool
}

// Stepper is the platoon twin of carfollow.Stepper: a resumable episode
// engine over the N-vehicle chain, sharing sim's StepInput / StepOutcome
// vocabulary.  Injected messages are routed to link Sender−1 and injected
// readings to link Target−1 (1-based vehicle indices, matching the
// engine's own traffic).
//
// For Vehicles = 2 the per-step work — RNG derivation, channel/sensor/
// filter traffic, monitor decisions, trace layout, termination — is
// operation-for-operation the car-following engine's, which is what the
// byte-parity differential test pins.
//
// The same lifetime rules apply as for carfollow.Stepper: not safe for
// concurrent use, and pooled inside the arena's opaque external-engine
// slot when Options.Scratch is set.
type Stepper struct {
	cfg   SimConfig
	agent carfollow.Agent
	opts  sim.Options

	sc carfollow.Config // effective link scenario (see SimConfig.LinkScenario)
	gs *sim.GuardedStep

	driver *traffic.StopAndGo

	links  []link
	states []dynamics.State // states[i] is vehicle i; 0 = head, 1 = NN ego
	accels []float64        // applied accel of vehicle i at the last step

	fAcc   []float64 // follower commands this step (index by vehicle, i ≥ 2)
	fEmerg []bool

	// Per-link episode statistics (index ℓ = link vehicle ℓ → ℓ+1).
	gap0      []float64
	minGap    []float64
	peakErr   []float64
	linkEmerg []int

	follower carfollow.Expert

	msgTick, sensTick comms.Ticker
	msgBuf            []comms.Message

	coll telemetry.Collector

	plan  func() (float64, bool)
	emerg func() float64
	env   func() (float64, float64, bool)

	t float64
	k carfollow.Knowledge

	dt       float64
	maxSteps int
	step     int

	res      sim.Result
	done     bool
	finished bool
	err      error
}

// pooledStepper fetches the arena's pooled platoon engine, or a fresh one
// when the arena is nil or the slot holds a different scenario's engine.
func pooledStepper(sh *sim.Scratch) *Stepper {
	if st, ok := sh.ExtEngine().(*Stepper); ok && st != nil {
		return st
	}
	st := &Stepper{}
	sh.SetExtEngine(st)
	return st
}

// grown returns s resized to n with every element zeroed, reusing the
// backing array when it is large enough.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// NewStepper validates cfg and builds a resumable platoon engine
// positioned before step 0.
//
// The random streams derive from the master in the car-following order,
// extended link by link: head driver, then for each link ℓ = 0..N−2 the
// channel and sensor streams, then the init stream, then (last, under the
// legacy compatibility rule) the per-link sensing-disturbance streams in
// link order, then the guard/fault streams.  With Vehicles = 2 the
// derivation collapses exactly to carfollow.NewStepper's.
func NewStepper(cfg SimConfig, agent carfollow.Agent, opts sim.Options) (*Stepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = carfollow.DefaultHorizon
	}
	sh := opts.Scratch
	sh.Begin()
	st := pooledStepper(sh)
	st.reset(cfg, agent, opts)

	n := cfg.Vehicles
	sc := cfg.LinkScenario()
	st.sc = sc

	master := sh.RNG(seed)
	var err error
	st.driver, err = sh.StopAndGo(cfg.Lead, sh.RNG(master.Int63()))
	if err != nil {
		return nil, err
	}
	st.links = grown(st.links, n-1)
	for l := range st.links {
		lk := &st.links[l]
		lk.channel, err = sh.Channel(cfg.linkComms(l), sh.RNG(master.Int63()))
		if err != nil {
			return nil, err
		}
		lk.sens, err = sh.Sensor(cfg.Sensor, sh.RNG(master.Int63()))
		if err != nil {
			return nil, err
		}
		// Every link's filter propagates with the scenario's Lead limits —
		// the same worst case the monitor assumes for the predecessor.  For
		// follower links (targets moving under Ego limits) soundness
		// therefore additionally assumes Ego ⊆ Lead actuation bounds, which
		// the defaults satisfy with equality.
		lk.filt, err = sh.Fusion(fusion.Config{
			Limits:    sc.Lead,
			Sensor:    cfg.Sensor,
			UseKalman: cfg.InfoFilter,
			Replay:    cfg.InfoFilter,
		})
		if err != nil {
			return nil, err
		}
	}
	initRng := sh.RNG(master.Int63())
	// Disturbance streams derive last so legacy configurations keep their
	// exact per-seed behaviour (carfollow rule, applied in link order).
	for l := range st.links {
		if m := cfg.linkSensorDisturb(l); m != nil {
			st.links[l].sensProc = m.NewSensor(sh.RNG(master.Int63()))
		}
	}
	// Planner-fault streams derive after the disturbance streams, under the
	// same compatibility rule.
	gs, err := sim.NewGuardedStep(cfg.Guard, cfg.PlannerFault, sc.Ego, master)
	if err != nil {
		return nil, err
	}
	st.gs = gs

	st.states = grown(st.states, n)
	st.accels = grown(st.accels, n)
	st.fAcc = grown(st.fAcc, n)
	st.fEmerg = grown(st.fEmerg, n)
	st.states[0] = sc.LeadInit
	st.states[1] = sc.EgoInit
	sp := cfg.spacing()
	for i := 2; i < n; i++ {
		st.states[i] = dynamics.State{P: sc.EgoInit.P - float64(i-1)*sp, V: sc.EgoInit.V}
	}
	if cfg.LeadSpeedMax > 0 {
		// One draw, as in carfollow: the whole chain starts at the sampled
		// equilibrium speed.
		v := cfg.LeadSpeedMin + initRng.Float64()*(cfg.LeadSpeedMax-cfg.LeadSpeedMin)
		for i := range st.states {
			st.states[i].V = v
		}
	}
	for l := range st.links {
		st.links[l].filt.InitExact(0, st.states[l], 0)
	}

	st.gap0 = grown(st.gap0, n-1)
	st.minGap = grown(st.minGap, n-1)
	st.peakErr = grown(st.peakErr, n-1)
	st.linkEmerg = grown(st.linkEmerg, n-1)
	for l := 0; l < n-1; l++ {
		g := st.states[l].P - st.states[l+1].P
		st.gap0[l] = g
		st.minGap[l] = g
	}

	fg := cfg.Follow.fill()
	st.follower = carfollow.Expert{
		Cfg:     sc,
		Headway: fg.Headway, Buffer: fg.Buffer,
		GainGap: fg.GainGap, GainSpeed: fg.GainSpeed,
		Label: "platoon-follower",
	}

	st.msgTick = comms.MakeTicker(cfg.DtM)
	st.msgTick.Due(0)
	st.sensTick = comms.MakeTicker(cfg.DtS)
	st.sensTick.Due(0)

	st.msgBuf = sh.MsgBuf()
	st.coll = opts.Collector

	st.dt = sc.DtC
	st.maxSteps = int(horizon/st.dt) + 1

	if st.plan == nil {
		// Built once per pooled Stepper: the closures read the receiver's
		// fields at call time.  The NN vehicle is states[1]; its knowledge
		// is link 0's, refreshed each step before the guard runs.
		st.plan = func() (float64, bool) { return st.agent.Accel(st.t, st.states[1], st.k) }
		st.emerg = func() float64 { return st.sc.EmergencyAccel(st.states[1]) }
		st.env = func() (float64, float64, bool) {
			if st.sc.InUnsafeSet(st.states[1], st.k.Sound) || st.sc.InBoundarySafeSet(st.states[1], st.k.Sound) {
				return 0, 0, false
			}
			return st.sc.Ego.AMin, st.sc.Ego.AMax, true
		}
	}
	return st, nil
}

// reset clears per-episode state while keeping the reusable closures and
// slice backing arrays.
func (st *Stepper) reset(cfg SimConfig, agent carfollow.Agent, opts sim.Options) {
	plan, emerg, env := st.plan, st.emerg, st.env
	links, states, accels := st.links[:0], st.states[:0], st.accels[:0]
	fAcc, fEmerg := st.fAcc[:0], st.fEmerg[:0]
	gap0, minGap, peakErr, linkEmerg := st.gap0[:0], st.minGap[:0], st.peakErr[:0], st.linkEmerg[:0]
	*st = Stepper{
		plan: plan, emerg: emerg, env: env,
		links: links, states: states, accels: accels,
		fAcc: fAcc, fEmerg: fEmerg,
		gap0: gap0, minGap: minGap, peakErr: peakErr, linkEmerg: linkEmerg,
	}
	st.cfg = cfg
	st.agent = agent
	st.opts = opts
}

// Done reports whether the episode has terminated (or a step invariant
// failed); further Step calls are no-ops returning the terminal outcome.
func (st *Stepper) Done() bool { return st.done || st.err != nil }

// Err returns the step-invariant violation that aborted the episode, if
// any.
func (st *Stepper) Err() error { return st.err }

// Step advances the episode by one control step; see sim.Stepper.Step.
func (st *Stepper) Step(in sim.StepInput) (sim.StepOutcome, error) {
	if st.done || st.err != nil {
		return st.terminalOutcome(), st.err
	}
	if st.step >= st.maxSteps {
		st.done = true
		return st.terminalOutcome(), nil
	}
	step := st.step
	st.t = float64(step) * st.dt
	t := st.t
	cfg := &st.cfg
	sc := st.sc
	res := &st.res
	links := st.links

	// 0. Externally streamed events (sessions only; empty in batch runs),
	// routed to links by 1-based vehicle index.
	for _, m := range in.Messages {
		if m.Sender >= 1 && m.Sender <= len(links) {
			links[m.Sender-1].filt.OnMessage(m)
		}
	}
	for _, r := range in.Readings {
		if r.Target >= 1 && r.Target <= len(links) {
			links[r.Target-1].filt.OnReading(r)
		}
	}

	// 1. Per-link traffic and estimation, in chain order.  Each link's
	// sender broadcasts its own true state; the receiver fuses whatever the
	// disturbed channel and sensor deliver.
	msgAt, msgDue := st.msgTick.Due(t)
	sensAt, sensDue := st.sensTick.Due(t)
	for l := range links {
		lk := &links[l]
		pred := st.states[l]
		predA := st.accels[l]
		if msgDue {
			lk.channel.Send(comms.Message{Sender: l + 1, T: msgAt, P: pred.P, V: pred.V, A: predA})
		}
		st.msgBuf = lk.channel.PollAppend(t, st.msgBuf[:0])
		for _, m := range st.msgBuf {
			lk.filt.OnMessage(m)
		}
		if sensDue {
			drop := false
			var bias float64
			if lk.sensProc != nil {
				d := lk.sensProc.Next(sensAt)
				drop = d.Drop
				bias = d.Bias
			}
			if !drop {
				lk.lastMeas = lk.sens.MeasureBiased(l+1, sensAt, pred, predA, bias)
				lk.haveMeas = true
				lk.filt.OnReading(lk.lastMeas)
			}
		}
		est := lk.filt.EstimateAt(t)
		lk.est = est
		if !est.P.Contains(pred.P) || !est.V.Contains(pred.V) {
			res.FusedIntervalMisses++
		}
		if !est.SoundP.Contains(pred.P) || !est.SoundV.Contains(pred.V) {
			res.SoundViolations++
		}
		lk.k = carfollow.Knowledge{
			Sound: carfollow.LeadEstimate{P: est.SoundP, V: est.SoundV,
				PointP: est.PointP, PointV: est.PointV, A: est.A},
			Fused: carfollow.LeadEstimate{P: est.P, V: est.V,
				PointP: est.PointP, PointV: est.PointV, A: est.A},
		}
	}
	st.k = links[0].k

	// 2. NN vehicle under the guard, timed for telemetry exactly as in
	// carfollow (the probe reports link 0, the NN vehicle's own link).
	var a0 float64
	var emergency bool
	var gres guard.StepResult
	var start time.Time
	if st.coll != nil {
		start = time.Now()
	}
	if st.gs != nil {
		a0, emergency, gres = st.gs.Step(t, st.plan, st.emerg, st.env)
	} else {
		a0, emergency = st.plan()
	}
	if st.coll != nil {
		est := links[0].est
		st.coll.OnStep(telemetry.StepProbe{
			T:          t,
			Emergency:  emergency,
			SoundWidth: est.SoundP.Width(),
			FusedWidth: est.P.Width(),
			PlannerNs:  time.Since(start).Nanoseconds(),
		})
		if st.gs != nil {
			st.gs.Report(st.coll, t, gres)
		}
	}
	if emergency {
		res.EmergencySteps++
	}

	// 3. Analytic followers: κ_e when their link's sound estimate puts
	// them in the unsafe or boundary safe set, the expert cruise law on
	// the fused estimate otherwise — the monitor half of the compound
	// design, applied per link.
	for i := 2; i < len(st.states); i++ {
		k := links[i-1].k
		if sc.InUnsafeSet(st.states[i], k.Sound) || sc.InBoundarySafeSet(st.states[i], k.Sound) {
			st.fAcc[i] = sc.EmergencyAccel(st.states[i])
			st.fEmerg[i] = true
			st.linkEmerg[i-1]++
		} else {
			st.fAcc[i] = st.follower.Accel(t, st.states[i], k.Fused, sc.Lead.AMin)
			st.fEmerg[i] = false
		}
	}

	if len(st.opts.Invariants) > 0 {
		for l := range links {
			a, em := a0, emergency
			if l >= 1 {
				a, em = st.fAcc[l+1], st.fEmerg[l+1]
			}
			si := sim.StepInfo{
				T: t, Vehicle: l,
				Ego: st.states[l+1], Other: st.states[l], OtherA: st.accels[l],
				Est: links[l].est, Accel: a, Emergency: em,
			}
			if l == 0 && st.gs != nil {
				st.gs.Annotate(&si, gres)
			}
			if ierr := sim.CheckStepInvariants(st.opts.Invariants, si); ierr != nil {
				st.err = ierr
				return st.terminalOutcome(), ierr
			}
		}
	}

	if st.opts.Trace {
		// Shared sample layout, reporting the NN vehicle's link: the head
		// plays the oncoming vehicle's role, the passing-window columns are
		// NaN — byte-identical to the car-following trace at N = 2.
		lk := &links[0]
		est := lk.est
		s := sim.Sample{
			T:    t,
			EgoP: st.states[1].P, EgoV: st.states[1].V, EgoA: a0,
			OncP: st.states[0].P, OncV: st.states[0].V, OncA: st.accels[0],
			MeasP: math.NaN(), MeasV: math.NaN(),
			EstP: est.PointP, EstV: est.PointV,
			EstPLo: est.P.Lo, EstPHi: est.P.Hi,
			EstVLo: est.V.Lo, EstVHi: est.V.Hi,
			SoundPLo: est.SoundP.Lo, SoundPHi: est.SoundP.Hi,
			SoundVLo: est.SoundV.Lo, SoundVHi: est.SoundV.Hi,
			SoundLo: math.NaN(), SoundHi: math.NaN(),
			ConsLo: math.NaN(), ConsHi: math.NaN(),
			AggrLo: math.NaN(), AggrHi: math.NaN(),
			Emergency: emergency,
		}
		if lk.haveMeas {
			s.MeasP, s.MeasV = lk.lastMeas.P, lk.lastMeas.V
		}
		res.Trace = append(res.Trace, s)
	}

	// 4. Dynamics, in the car-following order (ego, then head) extended by
	// the followers front to back.
	var ba float64
	if len(cfg.LeadScript) > 0 {
		ba = sim.ScriptAccel(cfg.LeadScript, step)
	} else {
		ba = st.driver.Accel(t, st.states[0])
	}
	st.states[1], st.accels[1] = dynamics.Step(st.states[1], a0, st.dt, sc.Ego)
	st.states[0], st.accels[0] = dynamics.Step(st.states[0], ba, st.dt, sc.Lead)
	for i := 2; i < len(st.states); i++ {
		st.states[i], st.accels[i] = dynamics.Step(st.states[i], st.fAcc[i], st.dt, sc.Ego)
	}
	res.Steps++
	st.step++

	for l := range links {
		gap := st.states[l].P - st.states[l+1].P
		if gap < st.minGap[l] {
			st.minGap[l] = gap
		}
		if e := math.Abs(gap - st.gap0[l]); e > st.peakErr[l] {
			st.peakErr[l] = e
		}
	}

	out := sim.StepOutcome{
		T: t, Step: step,
		Accel: a0, Emergency: emergency,
		EgoP: st.states[1].P, EgoV: st.states[1].V,
	}

	for l := range links {
		if cfg.GapViolation(st.states[l], st.states[l+1]) {
			res.Collided = true
			res.Eta = -1
			st.done = true
			out.Done, out.Collided = true, true
			return out, nil
		}
	}
	if sc.ReachedGoal(st.states[1]) {
		res.Reached = true
		res.ReachTime = t + st.dt
		res.Eta = 1 / res.ReachTime
		st.done = true
		out.Done, out.Reached = true, true
		return out, nil
	}
	if st.step >= st.maxSteps {
		st.done = true
		out.Done = true
	}
	return out, nil
}

// terminalOutcome summarizes a finished (or failed) episode for repeated
// Step calls past the end.
func (st *Stepper) terminalOutcome() sim.StepOutcome {
	out := sim.StepOutcome{
		T: st.t, Step: st.step,
		Done: true, Collided: st.res.Collided, Reached: st.res.Reached,
	}
	if len(st.states) > 1 {
		out.EgoP, out.EgoV = st.states[1].P, st.states[1].V
	}
	return out
}

// Finish finalizes the episode; see sim.Stepper.Finish.  For chains
// longer than one link it publishes the per-link statistics before the
// episode invariants run, so chain-level invariants (StringStability) can
// read them; a two-vehicle platoon leaves Links nil and its Result
// serializes byte-identically to the car-following episode's.
func (st *Stepper) Finish() (sim.Result, error) {
	if st.finished {
		return st.res, st.err
	}
	st.finished = true
	if st.cfg.Vehicles > 2 {
		st.res.Links = make([]sim.LinkStats, len(st.links))
		for l := range st.res.Links {
			st.res.Links[l] = sim.LinkStats{
				MinGap:         st.minGap[l],
				PeakGapErr:     st.peakErr[l],
				EmergencySteps: st.linkEmerg[l],
			}
		}
	}
	sim.ReportOutcome(st.coll, st.opts.Seed, &st.res)
	if st.gs != nil {
		st.res.Guard = st.gs.Stats()
	}
	if st.err == nil && len(st.opts.Invariants) > 0 {
		st.err = sim.CheckEpisodeInvariants(st.opts.Invariants, &st.res)
	}
	return st.res, st.err
}
