package platoon

import (
	"fmt"
	"math"

	"safeplan/internal/sim"
)

// Default string-stability thresholds.
const (
	// DefaultAmpTol admits 10% peak-gap-error growth per link before the
	// chain counts as string-unstable.
	DefaultAmpTol = 0.1
	// DefaultFloor is the absolute gap-error level [m] below which
	// amplification is not assessed: ratios of near-zero errors are noise,
	// not propagation.
	DefaultFloor = 0.5
)

// StringStability is the chain-level episode invariant: a disturbance
// entering at the head must not amplify in peak gap-error as it
// propagates down the follower links.  Writing e_ℓ for link ℓ's gap error
// (deviation of the bumper gap from its initial equilibrium value), the
// checker requires, for every adjacent pair of links,
//
//	peak|e_{ℓ+1}| ≤ (1 + AmpTol) · max(peak|e_ℓ|, Floor)
//
// over the whole episode.  It reads the per-link statistics the platoon
// engine publishes in Result.Links, so it only bites on chains longer
// than one link (shorter episodes have no propagation to assess) and is
// a no-op when attached to non-platoon scenarios.
type StringStability struct {
	sim.EpisodeOnly
	// AmpTol is the admissible relative amplification per link; 0 selects
	// DefaultAmpTol.
	AmpTol float64
	// Floor is the absolute peak-error floor [m]; 0 selects DefaultFloor.
	Floor float64
}

// Name implements sim.Invariant.
func (StringStability) Name() string { return "string-stability" }

// CheckEpisode implements sim.Invariant.
func (c StringStability) CheckEpisode(r *sim.Result) error {
	if len(r.Links) < 2 {
		return nil
	}
	tol := c.AmpTol
	if tol == 0 {
		tol = DefaultAmpTol
	}
	floor := c.Floor
	if floor == 0 {
		floor = DefaultFloor
	}
	for l := 1; l < len(r.Links); l++ {
		up := r.Links[l-1].PeakGapErr
		down := r.Links[l].PeakGapErr
		if bound := (1 + tol) * math.Max(up, floor); down > bound {
			return &sim.ViolationError{
				Invariant: StringStability{}.Name(),
				T:         math.NaN(),
				Detail: fmt.Sprintf(
					"peak gap error amplified down the chain: link %d peak %.3f m > %.3f m (link %d peak %.3f m, tol %.0f%%)",
					l, down, bound, l-1, up, tol*100),
			}
		}
	}
	return nil
}
