package platoon

import (
	"math"
	"strings"
	"testing"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/sim"
)

// ultimate builds the NN-slot compound agent against the effective link
// scenario (so TimeGap configs monitor on the DDefault floor).
func ultimate(cfg SimConfig) carfollow.Agent {
	sc := cfg.LinkScenario()
	return carfollow.NewUltimate(sc, carfollow.AggressiveExpert(sc))
}

func TestValidate(t *testing.T) {
	muts := map[string]func(*SimConfig){
		"vehicles":      func(c *SimConfig) { c.Vehicles = 1 },
		"spacing-nan":   func(c *SimConfig) { c.Spacing = math.NaN() },
		"spacing-tight": func(c *SimConfig) { c.Spacing = c.Scenario.PGap / 2 },
		"link-comms":    func(c *SimConfig) { c.LinkComms = []comms.Config{comms.Lost()} },
		"link-sensor": func(c *SimConfig) {
			c.LinkSensorDisturb = []disturb.SensorModel{nil, nil}
		},
		"spec":          func(c *SimConfig) { c.Spec = GapSpec(9) },
		"tgap":          func(c *SimConfig) { c.Spec = TimeGap; c.TGap = math.Inf(1) },
		"follow":        func(c *SimConfig) { c.Follow.GainGap = -1 },
		"embedded-comm": func(c *SimConfig) { c.Comms.DropProb = 2 },
	}
	for name, mut := range muts {
		c := DefaultSimConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	good := DefaultSimConfig()
	good.LinkComms = []comms.Config{comms.NoDisturbance(), comms.Lost(), comms.Delayed(0.25, 0.5)}
	good.LinkSensorDisturb = []disturb.SensorModel{nil, disturb.BiasDrift{Max: 1, Period: 12}, nil}
	good.Spec = TimeGap
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestChainSafeUnderBurstOnAnyLink hits each chain segment with the
// adversarial burst preset in turn — the scenario the per-link channel
// plumbing exists for — and requires the whole chain to stay safe with
// sound estimation intact.
func TestChainSafeUnderBurstOnAnyLink(t *testing.T) {
	burst, err := disturb.Preset("burst")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultSimConfig()
	base.InfoFilter = true
	for hit := 0; hit < base.Vehicles-1; hit++ {
		links := make([]comms.Config, base.Vehicles-1)
		for i := range links {
			links[i] = comms.NoDisturbance()
		}
		links[hit] = comms.Disturbed(burst)
		cfg := base
		cfg.LinkComms = links
		agent := ultimate(cfg)
		invs := []sim.Invariant{
			sim.NoCollision{},
			sim.SoundEstimate{},
			carfollow.TrueSlack{Cfg: cfg.LinkScenario()},
			StringStability{},
		}
		for seed := int64(0); seed < 10; seed++ {
			r, err := RunEpisode(cfg, agent, sim.Options{Seed: seed, Invariants: invs})
			if err != nil {
				t.Fatalf("burst on link %d, seed %d: %v", hit, seed, err)
			}
			if r.Collided {
				t.Fatalf("burst on link %d, seed %d: gap violation", hit, seed)
			}
			if r.SoundViolations != 0 {
				t.Fatalf("burst on link %d, seed %d: %d sound violations", hit, seed, r.SoundViolations)
			}
		}
	}
}

// TestLinkStatsPopulated pins the Links contract: nil at N = 2, one entry
// per link with sane values for longer chains, published before episode
// invariants run.
func TestLinkStatsPopulated(t *testing.T) {
	cfg := DefaultSimConfig()
	agent := ultimate(cfg)
	r, err := RunEpisode(cfg, agent, sim.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != cfg.Vehicles-1 {
		t.Fatalf("got %d link stats for %d links", len(r.Links), cfg.Vehicles-1)
	}
	for l, ls := range r.Links {
		if ls.MinGap <= cfg.Scenario.PGap {
			t.Errorf("link %d: min gap %v at or below PGap despite no collision", l, ls.MinGap)
		}
		if ls.PeakGapErr < 0 {
			t.Errorf("link %d: negative peak gap error %v", l, ls.PeakGapErr)
		}
		if ls.EmergencySteps < 0 || (l == 0 && ls.EmergencySteps != 0) {
			t.Errorf("link %d: bad emergency count %d", l, ls.EmergencySteps)
		}
	}

	two := cfg
	two.Vehicles = 2
	r2, err := RunEpisode(two, agent, sim.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Links != nil {
		t.Fatalf("two-vehicle platoon published link stats: %+v", r2.Links)
	}
}

// TestStringStabilityInvariant covers both verdicts of the chain-level
// checker directly on synthetic results.
func TestStringStabilityInvariant(t *testing.T) {
	stable := &sim.Result{Links: []sim.LinkStats{
		{PeakGapErr: 4}, {PeakGapErr: 3.2}, {PeakGapErr: 2.1},
	}}
	if err := (StringStability{}).CheckEpisode(stable); err != nil {
		t.Fatalf("damping chain rejected: %v", err)
	}
	amplifying := &sim.Result{Links: []sim.LinkStats{
		{PeakGapErr: 2}, {PeakGapErr: 3},
	}}
	err := (StringStability{}).CheckEpisode(amplifying)
	if err == nil {
		t.Fatal("amplifying chain accepted")
	}
	if !strings.Contains(err.Error(), "string-stability") {
		t.Fatalf("unexpected violation text: %v", err)
	}
	// Sub-floor wiggle is noise, not propagation.
	noise := &sim.Result{Links: []sim.LinkStats{
		{PeakGapErr: 0.01}, {PeakGapErr: 0.3},
	}}
	if err := (StringStability{}).CheckEpisode(noise); err != nil {
		t.Fatalf("sub-floor chain rejected: %v", err)
	}
	if err := (StringStability{}).CheckEpisode(&sim.Result{}); err != nil {
		t.Fatal("non-platoon result rejected")
	}
}

// TestTimeGapSpec pins the config switch: the monitor floor moves to
// DDefault, the violation predicate gains the speed term, and the chain
// still runs safely under the default constants.
func TestTimeGapSpec(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Spec = TimeGap
	if got := cfg.LinkScenario().PGap; got != DefaultDDefault {
		t.Fatalf("TimeGap monitor floor = %v, want %v", got, DefaultDDefault)
	}
	if got, want := cfg.RequiredGap(10), DefaultDDefault+DefaultTGap*10; got != want {
		t.Fatalf("RequiredGap(10) = %v, want %v", got, want)
	}
	pred := cfg.Scenario.LeadInit
	foll := cfg.Scenario.EgoInit
	foll.P = pred.P - DefaultDDefault - DefaultTGap*foll.V + 0.1
	if !cfg.GapViolation(pred, foll) {
		t.Fatal("time-gap breach not flagged")
	}
	// The guarantee covers only the DDefault floor; an agent must keep a
	// headway of at least TGap itself to meet the speed-dependent part.
	// The conservative expert (1.8 s > TGap) does, the aggressive one
	// (0.35 s) does not — both facts are part of the spec's semantics.
	sc := cfg.LinkScenario()
	cons := carfollow.NewUltimate(sc, carfollow.ConservativeExpert(sc))
	for seed := int64(0); seed < 6; seed++ {
		r, err := RunEpisode(cfg, cons, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Collided {
			t.Fatalf("seed %d: conservative chain broke the time gap", seed)
		}
	}
	breaches := 0
	aggr := carfollow.NewUltimate(sc, carfollow.AggressiveExpert(sc))
	for seed := int64(0); seed < 6; seed++ {
		r, err := RunEpisode(cfg, aggr, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Collided {
			breaches++
		}
	}
	if breaches == 0 {
		t.Fatal("aggressive chain never breached the speed-dependent gap — spec switch inert?")
	}
}

// TestCampaignDeterministicAcrossWorkers: the worker count must not leak
// into any platoon episode's random streams.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultSimConfig()
	m, err := disturb.Preset("worst")
	if err != nil {
		t.Fatal(err)
	}
	cfg.LinkComms = []comms.Config{
		comms.NoDisturbance(), comms.Disturbed(m), comms.Delayed(0.25, 0.5),
	}
	cfg.SensorDisturb = disturb.SensorDropout{PGoodBad: 0.04, PBadGood: 0.15, DropBad: 0.95}
	agent := ultimate(cfg)
	run := func(workers int) string {
		rs, err := RunCampaign(cfg, agent, 24, sim.CampaignOptions{BaseSeed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]string, len(rs))
		for i, r := range rs {
			parts[i] = pDump(r)
		}
		return strings.Join(parts, "\n")
	}
	if a, b := run(1), run(8); a != b {
		t.Fatal("platoon campaign differs between 1 and 8 workers")
	}
}
