package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultDriverConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []DriverConfig{
		{VTargetMin: 10, VTargetMax: 5, SegMin: 1, SegMax: 2, AccelMin: -1, AccelMax: 1, Response: 1},
		{VTargetMin: 1, VTargetMax: 5, SegMin: 0, SegMax: 2, AccelMin: -1, AccelMax: 1, Response: 1},
		{VTargetMin: 1, VTargetMax: 5, SegMin: 3, SegMax: 2, AccelMin: -1, AccelMax: 1, Response: 1},
		{VTargetMin: 1, VTargetMax: 5, SegMin: 1, SegMax: 2, AccelMin: 1, AccelMax: 2, Response: 1},
		{VTargetMin: 1, VTargetMax: 5, SegMin: 1, SegMax: 2, AccelMin: -1, AccelMax: 1, Response: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewDriverRejectsNilRNG(t *testing.T) {
	if _, err := NewDriver(DefaultDriverConfig(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestAccelWithinEnvelope(t *testing.T) {
	cfg := DefaultDriverConfig()
	d, err := NewDriver(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s := dynamics.State{P: 0, V: 8}
	lim := dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}
	for i := 0; i < 2000; i++ {
		a := d.Accel(float64(i)*0.05, s)
		if a < cfg.AccelMin-1e-12 || a > cfg.AccelMax+1e-12 {
			t.Fatalf("accel %v outside behavioural envelope", a)
		}
		s, _ = dynamics.Step(s, a, 0.05, lim)
	}
}

func TestTargetResampledPerSegment(t *testing.T) {
	d, err := NewDriver(DefaultDriverConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	s := dynamics.State{V: 8}
	seen := map[float64]bool{}
	for i := 0; i < 4000; i++ {
		d.Accel(float64(i)*0.05, s)
		seen[d.Target()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct targets over 200 s; resampling broken", len(seen))
	}
}

func TestTargetsWithinRange(t *testing.T) {
	cfg := DefaultDriverConfig()
	d, _ := NewDriver(cfg, rand.New(rand.NewSource(3)))
	s := dynamics.State{V: 8}
	for i := 0; i < 2000; i++ {
		d.Accel(float64(i)*0.05, s)
		if tv := d.Target(); tv < cfg.VTargetMin || tv > cfg.VTargetMax {
			t.Fatalf("target %v outside range", tv)
		}
	}
}

func TestDriverTracksTarget(t *testing.T) {
	// With a long segment, the speed should approach the target.
	cfg := DefaultDriverConfig()
	cfg.SegMin, cfg.SegMax = 50, 60
	d, _ := NewDriver(cfg, rand.New(rand.NewSource(4)))
	lim := dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}
	s := dynamics.State{V: 0}
	for i := 0; i < 400; i++ { // 20 s at 0.05
		a := d.Accel(float64(i)*0.05, s)
		s, _ = dynamics.Step(s, a, 0.05, lim)
	}
	if diff := s.V - d.Target(); diff > 0.5 || diff < -0.5 {
		t.Fatalf("speed %v far from target %v after 20 s", s.V, d.Target())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []float64 {
		d, _ := NewDriver(DefaultDriverConfig(), rand.New(rand.NewSource(7)))
		s := dynamics.State{V: 8}
		var out []float64
		for i := 0; i < 100; i++ {
			out = append(out, d.Accel(float64(i)*0.05, s))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("driver not deterministic")
		}
	}
}

// Property: driving any vehicle with the generated accelerations keeps its
// velocity within the physical envelope (the behavioural envelope is inside
// the physical one, and dynamics.Step enforces the rest).
func TestQuickPhysicalEnvelope(t *testing.T) {
	lim := dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}
	f := func(seed int64) bool {
		d, err := NewDriver(DefaultDriverConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		s := dynamics.State{V: 8}
		for i := 0; i < 400; i++ {
			a := d.Accel(float64(i)*0.05, s)
			s, _ = dynamics.Step(s, a, 0.05, lim)
			if s.V < lim.VMin-1e-9 || s.V > lim.VMax+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
