package traffic

import (
	"fmt"
	"math/rand"

	"safeplan/internal/dynamics"
)

// StopAndGoConfig shapes a lead vehicle that alternates cruising with
// occasional hard-braking episodes — the adversarial workload for the
// car-following case study (a tailgating planner is only unsafe if the
// lead sometimes brakes hard).
type StopAndGoConfig struct {
	VCruiseMin, VCruiseMax float64 // cruise target range [m/s]
	CruiseMin, CruiseMax   float64 // cruise phase duration range [s]
	BrakeProb              float64 // probability a phase change starts a hard brake
	BrakeAccel             float64 // hard-brake deceleration (negative) [m/s²]
	BrakeToVMax            float64 // hard brakes aim at a speed in [0, BrakeToVMax]
	Response               float64 // cruise speed-tracking time constant [s]
}

// DefaultStopAndGoConfig brakes hard (−5 m/s²) on about a quarter of phase
// changes, down to walking speed or a full stop.
func DefaultStopAndGoConfig() StopAndGoConfig {
	return StopAndGoConfig{
		VCruiseMin:  6,
		VCruiseMax:  14,
		CruiseMin:   1.5,
		CruiseMax:   4.0,
		BrakeProb:   0.25,
		BrakeAccel:  -5,
		BrakeToVMax: 3,
		Response:    0.6,
	}
}

// Validate reports whether the configuration is usable.
func (c StopAndGoConfig) Validate() error {
	switch {
	case c.VCruiseMin < 0 || c.VCruiseMin > c.VCruiseMax:
		return fmt.Errorf("traffic: bad cruise speed range [%v, %v]", c.VCruiseMin, c.VCruiseMax)
	case c.CruiseMin <= 0 || c.CruiseMin > c.CruiseMax:
		return fmt.Errorf("traffic: bad cruise durations [%v, %v]", c.CruiseMin, c.CruiseMax)
	case c.BrakeProb < 0 || c.BrakeProb > 1:
		return fmt.Errorf("traffic: brake probability %v outside [0,1]", c.BrakeProb)
	case c.BrakeAccel >= 0:
		return fmt.Errorf("traffic: brake accel %v must be negative", c.BrakeAccel)
	case c.BrakeToVMax < 0:
		return fmt.Errorf("traffic: negative brake target %v", c.BrakeToVMax)
	case c.Response <= 0:
		return fmt.Errorf("traffic: non-positive response time")
	}
	return nil
}

// StopAndGo generates the lead vehicle's acceleration.  Not safe for
// concurrent use.
type StopAndGo struct {
	cfg StopAndGoConfig
	rng *rand.Rand

	started  bool
	braking  bool
	vTarget  float64
	phaseEnd float64
}

// NewStopAndGo creates a stop-and-go driver drawing randomness from rng.
func NewStopAndGo(cfg StopAndGoConfig, rng *rand.Rand) (*StopAndGo, error) {
	d := &StopAndGo{}
	if err := d.Reset(cfg, rng); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-initialises the driver in place for a new episode; behaviour is
// identical to a freshly constructed StopAndGo.
func (d *StopAndGo) Reset(cfg StopAndGoConfig, rng *rand.Rand) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if rng == nil {
		return fmt.Errorf("traffic: nil rng")
	}
	*d = StopAndGo{cfg: cfg, rng: rng}
	return nil
}

// Accel returns the behavioural acceleration at time t for state s.
func (d *StopAndGo) Accel(t float64, s dynamics.State) float64 {
	if !d.started || t >= d.phaseEnd || (d.braking && s.V <= d.vTarget+0.05) {
		d.started = true
		if !d.braking && d.rng.Float64() < d.cfg.BrakeProb {
			// Begin a hard brake down to a low speed.
			d.braking = true
			d.vTarget = d.rng.Float64() * d.cfg.BrakeToVMax
			d.phaseEnd = t + 8 // safety net; usually ends on reaching vTarget
		} else {
			d.braking = false
			d.vTarget = d.cfg.VCruiseMin + d.rng.Float64()*(d.cfg.VCruiseMax-d.cfg.VCruiseMin)
			d.phaseEnd = t + d.cfg.CruiseMin + d.rng.Float64()*(d.cfg.CruiseMax-d.cfg.CruiseMin)
		}
	}
	if d.braking {
		if s.V > d.vTarget {
			return d.cfg.BrakeAccel
		}
		return 0
	}
	a := (d.vTarget - s.V) / d.cfg.Response
	if a > 2.5 {
		a = 2.5
	}
	if a < d.cfg.BrakeAccel {
		a = d.cfg.BrakeAccel
	}
	return a
}

// Braking reports whether the driver is in a hard-brake phase (for tests).
func (d *StopAndGo) Braking() bool { return d.braking }
