package traffic

import (
	"math/rand"
	"testing"

	"safeplan/internal/dynamics"
)

func TestStopAndGoDefaultsValid(t *testing.T) {
	if err := DefaultStopAndGoConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestStopAndGoValidateRejects(t *testing.T) {
	muts := map[string]func(*StopAndGoConfig){
		"speed":    func(c *StopAndGoConfig) { c.VCruiseMin = 10; c.VCruiseMax = 5 },
		"negspeed": func(c *StopAndGoConfig) { c.VCruiseMin = -1 },
		"cruise":   func(c *StopAndGoConfig) { c.CruiseMin = 0 },
		"cruise2":  func(c *StopAndGoConfig) { c.CruiseMin = 5; c.CruiseMax = 1 },
		"prob":     func(c *StopAndGoConfig) { c.BrakeProb = 1.5 },
		"brake":    func(c *StopAndGoConfig) { c.BrakeAccel = 1 },
		"target":   func(c *StopAndGoConfig) { c.BrakeToVMax = -1 },
		"response": func(c *StopAndGoConfig) { c.Response = 0 },
	}
	for name, mut := range muts {
		c := DefaultStopAndGoConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestStopAndGoRejectsNilRNG(t *testing.T) {
	if _, err := NewStopAndGo(DefaultStopAndGoConfig(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := DefaultStopAndGoConfig()
	bad.Response = 0
	if _, err := NewStopAndGo(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestStopAndGoBrakesSometimes(t *testing.T) {
	cfg := DefaultStopAndGoConfig()
	d, err := NewStopAndGo(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	lim := dynamics.Limits{VMin: 0, VMax: 20, AMin: -6, AMax: 2.5}
	s := dynamics.State{V: 10}
	brakeSteps, cruiseSteps := 0, 0
	for i := 0; i < 4000; i++ { // 200 s
		a := d.Accel(float64(i)*0.05, s)
		if d.Braking() {
			brakeSteps++
			if a > 0 {
				t.Fatal("positive accel during a hard-brake phase")
			}
		} else {
			cruiseSteps++
		}
		if a < cfg.BrakeAccel-1e-9 || a > 2.5+1e-9 {
			t.Fatalf("accel %v outside behavioural envelope", a)
		}
		s, _ = dynamics.Step(s, a, 0.05, lim)
	}
	if brakeSteps == 0 {
		t.Fatal("driver never hard-braked in 200 s")
	}
	if cruiseSteps == 0 {
		t.Fatal("driver never cruised")
	}
}

func TestStopAndGoBrakePhaseEndsAtTarget(t *testing.T) {
	cfg := DefaultStopAndGoConfig()
	cfg.BrakeProb = 1 // brake at the first phase change
	d, err := NewStopAndGo(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	lim := dynamics.Limits{VMin: 0, VMax: 20, AMin: -6, AMax: 2.5}
	s := dynamics.State{V: 12}
	sawBrake := false
	for i := 0; i < 2000; i++ {
		a := d.Accel(float64(i)*0.05, s)
		if d.Braking() {
			sawBrake = true
		} else if sawBrake {
			// Brake phase ended: speed must be near or below the brake
			// target band.
			if s.V > cfg.BrakeToVMax+0.2 {
				t.Fatalf("brake phase ended at v=%v, above target band", s.V)
			}
			return
		}
		s, _ = dynamics.Step(s, a, 0.05, lim)
	}
	t.Fatal("brake phase never completed")
}

func TestStopAndGoDeterministic(t *testing.T) {
	run := func() []float64 {
		d, _ := NewStopAndGo(DefaultStopAndGoConfig(), rand.New(rand.NewSource(9)))
		s := dynamics.State{V: 10}
		var out []float64
		for i := 0; i < 200; i++ {
			out = append(out, d.Accel(float64(i)*0.05, s))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stop-and-go driver not deterministic")
		}
	}
}
