// Package traffic provides the workload model for the oncoming vehicle C1:
// the paper drives C1 with "a randomly generated sequence of accelerations"
// (§V-A).  Independent per-step noise would average out to constant speed,
// so the generator produces structured randomness: piecewise-constant random
// target speeds tracked with bounded acceleration.  This yields oncoming
// arrival times that vary by several seconds across simulations — the
// variability that separates conservative from aggressive planning.
package traffic

import (
	"fmt"
	"math/rand"

	"safeplan/internal/dynamics"
)

// DriverConfig shapes the random behaviour of the oncoming vehicle.
type DriverConfig struct {
	VTargetMin, VTargetMax float64 // target-speed range sampled per segment [m/s]
	SegMin, SegMax         float64 // segment duration range [s]
	AccelMin, AccelMax     float64 // behavioural acceleration envelope [m/s²]
	Response               float64 // speed-tracking time constant [s]
}

// DefaultDriverConfig returns the workload used by the evaluation:
// behavioural acceleration within [−3, 2.5] m/s² (inside the physical
// envelope used by the safety analysis), target speeds 5–15 m/s resampled
// every 0.8–2.5 s.
func DefaultDriverConfig() DriverConfig {
	return DriverConfig{
		VTargetMin: 5,
		VTargetMax: 15,
		SegMin:     0.8,
		SegMax:     2.5,
		AccelMin:   -3,
		AccelMax:   2.5,
		Response:   0.6,
	}
}

// Validate reports whether the configuration is usable.
func (c DriverConfig) Validate() error {
	switch {
	case c.VTargetMin > c.VTargetMax:
		return fmt.Errorf("traffic: target speed range reversed")
	case c.SegMin <= 0 || c.SegMin > c.SegMax:
		return fmt.Errorf("traffic: bad segment durations [%v, %v]", c.SegMin, c.SegMax)
	case c.AccelMin >= 0 || c.AccelMax <= 0:
		return fmt.Errorf("traffic: behavioural accel envelope must straddle 0")
	case c.Response <= 0:
		return fmt.Errorf("traffic: non-positive response time")
	}
	return nil
}

// Driver generates the oncoming vehicle's acceleration.  It is not safe for
// concurrent use.
type Driver struct {
	cfg     DriverConfig
	rng     *rand.Rand
	vTarget float64
	segEnd  float64
	started bool
}

// NewDriver creates a Driver drawing randomness from rng.
func NewDriver(cfg DriverConfig, rng *rand.Rand) (*Driver, error) {
	d := &Driver{}
	if err := d.Reset(cfg, rng); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-initialises the driver in place for a new episode; behaviour is
// identical to a freshly constructed Driver.
func (d *Driver) Reset(cfg DriverConfig, rng *rand.Rand) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if rng == nil {
		return fmt.Errorf("traffic: nil rng")
	}
	*d = Driver{cfg: cfg, rng: rng}
	return nil
}

// Accel returns the behavioural acceleration command at time t for the
// current state s.  The caller applies physical clamping via dynamics.Step.
func (d *Driver) Accel(t float64, s dynamics.State) float64 {
	if !d.started || t >= d.segEnd {
		d.started = true
		d.vTarget = d.cfg.VTargetMin + d.rng.Float64()*(d.cfg.VTargetMax-d.cfg.VTargetMin)
		d.segEnd = t + d.cfg.SegMin + d.rng.Float64()*(d.cfg.SegMax-d.cfg.SegMin)
	}
	a := (d.vTarget - s.V) / d.cfg.Response
	if a > d.cfg.AccelMax {
		a = d.cfg.AccelMax
	}
	if a < d.cfg.AccelMin {
		a = d.cfg.AccelMin
	}
	return a
}

// Target returns the current target speed (for tests and traces).
func (d *Driver) Target() float64 { return d.vTarget }
