// Package fusion implements the paper's information filter (§III-B): it
// fuses (a) reachability analysis over the latest — possibly delayed —
// V2V message, (b) a sound interval around the latest raw sensor reading
// propagated forward, and (c) a Kalman-filter confidence interval over the
// sensor history (with message rollback/replay), by intersecting the
// intervals, exactly as the paper joins [p1,p2] and [p3,p4] into
// [max(p1,p3), min(p2,p4)].
//
// Components (a) and (b) are sound — the true state is guaranteed inside —
// so the "basic" compound planner (information filter disabled) still has
// the estimates its safety argument needs.  Enabling the Kalman component
// is what the paper calls the information filter: it shrinks the interval
// well below the raw sensor noise, which shrinks the estimated unsafe set
// and improves efficiency.
package fusion

import (
	"fmt"
	"math"

	"safeplan/internal/comms"
	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/kalman"
	"safeplan/internal/reach"
	"safeplan/internal/sensor"
)

// Config selects which estimators participate in the join.
type Config struct {
	Limits dynamics.Limits // physical envelope of the observed vehicle
	Sensor sensor.Config   // sensor noise (for the sound reading interval and KF R)

	// UseKalman enables the Kalman component (the paper's information
	// filter).  When false the estimate is the sound join of message
	// reachability and the propagated raw reading — the "basic" design.
	UseKalman bool
	// SigmaK is the half-width of the KF confidence interval in standard
	// deviations.  Zero selects DefaultSigmaK.
	SigmaK float64
	// Replay enables KF message rollback/replay (paper Fig. 3 extension).
	// Ignored unless UseKalman is set.  Disable only for ablation.
	Replay bool
}

// DefaultSigmaK covers ≳99.7% of Gaussian mass.
const DefaultSigmaK = 3

// soundEps pads the sound components before intersection.  The reachability
// bounds and the simulator's integrator compute the same kinematics in
// different expression orders, so a vehicle driving exactly at its envelope
// limit can land ~1 ulp outside the bound; the pad absorbs that without
// weakening the estimate measurably.
const soundEps = 1e-9

// Estimate is the fused interval knowledge about one observed vehicle at a
// query time.
//
// P and V are the sharpest available intervals (including the Kalman
// component when enabled); SoundP and SoundV are the join of the *sound*
// components only — message reachability and the propagated raw reading —
// and are guaranteed to contain the true state.  Safety-critical consumers
// (the runtime monitor) must use the sound pair; efficiency-oriented
// consumers (the NN planner's unsafe-set estimate) use the sharp pair.
// Without the Kalman component the two pairs coincide.
type Estimate struct {
	P interval.Interval // sharpest possible-position interval
	V interval.Interval // sharpest possible-velocity interval

	SoundP interval.Interval // guaranteed position interval
	SoundV interval.Interval // guaranteed velocity interval

	A float64 // best current acceleration estimate (point value)

	PointP, PointV float64 // point estimates (KF mean, else interval mid)
	HasInfo        bool    // false until any message or reading arrived
}

// Filter fuses messages and sensor readings for a single observed vehicle.
// It is not safe for concurrent use.
type Filter struct {
	cfg    Config
	sigmaK float64
	kf     *kalman.Filter

	haveMsg bool
	msg     reach.Snapshot // latest message content
	msgA    float64        // acceleration reported by that message

	haveReading bool
	reading     sensor.Reading
}

// New creates a Filter.
func New(cfg Config) (*Filter, error) {
	f := &Filter{}
	if err := f.ResetConfig(cfg); err != nil {
		return nil, err
	}
	return f, nil
}

// ResetConfig reconfigures the filter in place and clears all fused state,
// reusing the embedded Kalman filter's measurement history buffer.
// Equivalent to replacing the filter with New(cfg).
func (f *Filter) ResetConfig(cfg Config) error {
	if err := cfg.Limits.Validate(); err != nil {
		return fmt.Errorf("fusion: %w", err)
	}
	if err := cfg.Sensor.Validate(); err != nil {
		return fmt.Errorf("fusion: %w", err)
	}
	sigma := cfg.SigmaK
	if sigma <= 0 {
		sigma = DefaultSigmaK
	}
	f.cfg = cfg
	f.sigmaK = sigma
	f.haveMsg = false
	f.haveReading = false
	if cfg.UseKalman {
		kcfg := kalman.Config{
			DeltaP: cfg.Sensor.DeltaP,
			DeltaV: cfg.Sensor.DeltaV,
			DeltaA: cfg.Sensor.DeltaA,
		}
		if f.kf == nil {
			f.kf = kalman.New(kcfg)
		} else {
			f.kf.ResetConfig(kcfg)
		}
	} else {
		f.kf = nil
	}
	return nil
}

// Reset returns the filter to its initial, information-free state.
func (f *Filter) Reset() {
	f.haveMsg = false
	f.haveReading = false
	if f.kf != nil {
		f.kf.Reset()
	}
}

// InitExact seeds the filter with an exactly known initial state, modeling
// the handshake broadcast at scenario start.
func (f *Filter) InitExact(t float64, s dynamics.State, a float64) {
	f.haveMsg = true
	f.msg = reach.Snapshot{T: t, S: s}
	f.msgA = a
	if f.kf != nil {
		f.kf.InitExact(t, s.P, s.V, a)
	}
}

// OnMessage ingests a delivered V2V message.  Stale messages (older than
// the newest one seen) are ignored.
func (f *Filter) OnMessage(m comms.Message) {
	if f.haveMsg && m.T <= f.msg.T {
		return
	}
	f.haveMsg = true
	f.msg = reach.Snapshot{T: m.T, S: dynamics.State{P: m.P, V: m.V}}
	f.msgA = m.A
	if f.kf != nil && f.cfg.Replay {
		f.kf.ApplyMessage(m.T, m.P, m.V, m.A)
	}
}

// OnReading ingests a sensor reading.  Out-of-order readings are ignored.
func (f *Filter) OnReading(r sensor.Reading) {
	if f.haveReading && r.T < f.reading.T {
		return
	}
	f.haveReading = true
	f.reading = r
	if f.kf != nil {
		// Update returns an error only for out-of-order input, which the
		// guard above already filtered; a residual conflict (message replay
		// moved the KF clock past r.T) is benign to skip.
		_ = f.kf.Update(r.T, r.P, r.V, r.A)
	}
}

// EstimateAt returns the fused estimate for the observed vehicle at time t.
func (f *Filter) EstimateAt(t float64) Estimate {
	lim := f.cfg.Limits
	set := reach.Entire(lim)
	est := Estimate{}

	if f.haveMsg {
		set = set.Intersect(reach.At(f.msg, t, lim).Expand(soundEps, soundEps))
		est.HasInfo = true
		est.A = f.msgA
	}
	if f.haveReading {
		base := reach.Set{
			P: f.reading.PosInterval(f.cfg.Sensor),
			V: f.reading.VelInterval(f.cfg.Sensor).ClampTo(lim.VMin, lim.VMax),
		}
		prop := reach.FromSet(base, t-f.reading.T, lim).Expand(soundEps, soundEps)
		if joined := set.Intersect(prop); !joined.IsEmpty() {
			set = joined
		}
		est.HasInfo = true
		if !f.haveMsg || f.reading.T >= f.msg.T {
			est.A = f.reading.A
		}
	}

	est.P, est.V = set.P, set.V
	est.SoundP, est.SoundV = set.P, set.V
	est.PointP, est.PointV = set.P.Mid(), set.V.Mid()

	if f.kf != nil && f.kf.Initialized() {
		kp, kv := f.kf.IntervalAt(t, f.sigmaK)
		kv = kv.ClampTo(lim.VMin, lim.VMax)
		joined := reach.Set{P: set.P.Intersect(kp), V: set.V.Intersect(kv)}
		if !joined.IsEmpty() {
			set = joined
			est.P, est.V = set.P, set.V
		}
		// Point estimate from the KF mean, clamped into the sound set.
		x, _ := f.kf.EstimateAt(t)
		if !set.P.IsEmpty() {
			est.PointP = set.P.Clamp(x.X)
		}
		if !set.V.IsEmpty() {
			est.PointV = set.V.Clamp(x.Y)
		}
	}
	return est
}

// MessageAge returns t minus the timestamp of the newest message, or +Inf
// when no message has ever arrived.
func (f *Filter) MessageAge(t float64) float64 {
	if !f.haveMsg {
		return math.Inf(1)
	}
	return t - f.msg.T
}
