package fusion

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/dynamics"
	"safeplan/internal/sensor"
)

// Metamorphic test of the Kalman rollback/replay machinery (the Fig. 3
// extension): delivering the same message set late — each message delayed
// past several sensor readings — must converge to the same posterior as
// delivering it in order.  Rollback/replay exists precisely to make
// delivery *timing* irrelevant as long as the information content is the
// same; this test states that property directly.

// event is one delivery: either a message or a reading, at a given arrival
// time.
type event struct {
	arrival float64
	msg     *comms.Message
	reading *sensor.Reading
}

// buildTruth simulates the observed vehicle for the duration and returns
// its in-order messages (every msgEvery) and noisy readings (every dt).
func buildTruth(rng *rand.Rand, duration, dt, msgEvery, delta float64) (msgs []comms.Message, readings []sensor.Reading) {
	s := dynamics.State{P: -40, V: 8}
	a := 0.0
	nextMsg := 0.0
	for t := 0.0; t < duration; t += dt {
		if t >= nextMsg {
			msgs = append(msgs, comms.Message{T: t, P: s.P, V: s.V, A: a})
			nextMsg += msgEvery
		}
		readings = append(readings, sensor.Reading{
			T: t,
			P: s.P + (rng.Float64()*2-1)*delta,
			V: s.V + (rng.Float64()*2-1)*delta,
			A: a,
		})
		if rng.Intn(5) == 0 {
			a = lim.AMin + rng.Float64()*(lim.AMax-lim.AMin)
		}
		s, a = dynamics.Step(s, a, dt, lim)
	}
	return msgs, readings
}

// deliver feeds events to a fresh replay-enabled Kalman filter in arrival
// order (readings before messages at equal arrival times, mimicking the
// simulator's step ordering).
func deliver(t *testing.T, events []event) *Filter {
	t.Helper()
	f := newFilter(t, true, 1)
	sort.SliceStable(events, func(i, j int) bool { return events[i].arrival < events[j].arrival })
	for _, e := range events {
		if e.reading != nil {
			f.OnReading(*e.reading)
		} else {
			f.OnMessage(*e.msg)
		}
	}
	return f
}

func TestMetamorphicReplayMatchesInOrder(t *testing.T) {
	const (
		duration = 12.0
		dt       = 0.05
		msgEvery = 0.1
		delta    = 1.0
		tol      = 1e-9
	)
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		msgs, readings := buildTruth(rng, duration, dt, msgEvery, delta)

		inOrder := make([]event, 0, len(msgs)+len(readings))
		delayed := make([]event, 0, len(msgs)+len(readings))
		for i := range readings {
			inOrder = append(inOrder, event{arrival: readings[i].T, reading: &readings[i]})
			delayed = append(delayed, event{arrival: readings[i].T, reading: &readings[i]})
		}
		for i := range msgs {
			inOrder = append(inOrder, event{arrival: msgs[i].T, msg: &msgs[i]})
			// Each message is delayed by a random multiple of the control
			// period (0.1 s – 0.5 s), so it lands after 2–10 readings that
			// the Kalman filter must roll back over and replay.  Delays are
			// per-message, so late messages arrive *interleaved* differently
			// than they were sent — but never out of timestamp order beyond
			// what OnMessage's staleness guard discards in both scenarios
			// equally (delay grows with the index, preserving send order).
			d := 0.1 + 0.05*float64(rng.Intn(9))
			delayed = append(delayed, event{arrival: msgs[i].T + d, msg: &msgs[i]})
		}

		fa := deliver(t, inOrder)
		fb := deliver(t, delayed)

		// Compare the posteriors at the end of the episode, after every
		// delayed message has arrived and been replayed.
		q := duration + 1.0
		ea, eb := fa.EstimateAt(q), fb.EstimateAt(q)
		for _, c := range []struct {
			name string
			a, b float64
		}{
			{"P.Lo", ea.P.Lo, eb.P.Lo},
			{"P.Hi", ea.P.Hi, eb.P.Hi},
			{"V.Lo", ea.V.Lo, eb.V.Lo},
			{"V.Hi", ea.V.Hi, eb.V.Hi},
			{"PointP", ea.PointP, eb.PointP},
			{"PointV", ea.PointV, eb.PointV},
		} {
			if math.Abs(c.a-c.b) > tol {
				t.Fatalf("seed %d: %s diverged after replay: in-order %v vs delayed %v",
					seed, c.name, c.a, c.b)
			}
		}
	}
}

// TestMetamorphicDroppedTailIsStale is the boundary case: a message that
// arrives so late that a *newer* message beat it must be ignored entirely —
// the posterior must equal that of never sending it.
func TestMetamorphicDroppedTailIsStale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	msgs, readings := buildTruth(rng, 6.0, 0.05, 0.1, 1.0)

	base := make([]event, 0, len(readings)+len(msgs))
	overtaken := make([]event, 0, len(readings)+len(msgs)+1)
	for i := range readings {
		base = append(base, event{arrival: readings[i].T, reading: &readings[i]})
		overtaken = append(overtaken, event{arrival: readings[i].T, reading: &readings[i]})
	}
	for i := range msgs {
		base = append(base, event{arrival: msgs[i].T, msg: &msgs[i]})
		overtaken = append(overtaken, event{arrival: msgs[i].T, msg: &msgs[i]})
	}
	// Re-deliver an old message long after newer ones: pure staleness.
	overtaken = append(overtaken, event{arrival: 100, msg: &msgs[0]})

	ea := deliver(t, base).EstimateAt(7)
	eb := deliver(t, overtaken).EstimateAt(7)
	if ea.P != eb.P || ea.V != eb.V || ea.PointP != eb.PointP || ea.PointV != eb.PointV {
		t.Fatalf("stale re-delivery changed the posterior: %+v vs %+v", ea, eb)
	}
}
