package fusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/comms"
	"safeplan/internal/dynamics"
	"safeplan/internal/sensor"
)

var lim = dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}

func newFilter(t *testing.T, useKF bool, delta float64) *Filter {
	t.Helper()
	f, err := New(Config{
		Limits:    lim,
		Sensor:    sensor.Uniform(delta),
		UseKalman: useKF,
		Replay:    true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Limits: dynamics.Limits{VMin: 1, VMax: 0, AMin: -1, AMax: 1}}); err == nil {
		t.Error("bad limits accepted")
	}
	if _, err := New(Config{Limits: lim, Sensor: sensor.Config{DeltaP: -1}}); err == nil {
		t.Error("bad sensor config accepted")
	}
}

func TestNoInformation(t *testing.T) {
	f := newFilter(t, true, 1)
	est := f.EstimateAt(0)
	if est.HasInfo {
		t.Fatal("fresh filter claims information")
	}
	if !est.P.Contains(1e12) {
		t.Fatal("position should be unbounded without information")
	}
	if est.V.Lo != lim.VMin || est.V.Hi != lim.VMax {
		t.Fatalf("velocity should be the physical envelope, got %v", est.V)
	}
	if !math.IsInf(f.MessageAge(5), 1) {
		t.Fatal("MessageAge should be +Inf without messages")
	}
}

func TestInitExactPinsState(t *testing.T) {
	f := newFilter(t, true, 1)
	f.InitExact(0, dynamics.State{P: -35, V: 8}, 0.5)
	est := f.EstimateAt(0)
	if !est.HasInfo {
		t.Fatal("no info after InitExact")
	}
	if !est.P.Contains(-35) || est.P.Width() > 1e-6 {
		t.Fatalf("P = %v, want point at -35", est.P)
	}
	if est.A != 0.5 {
		t.Fatalf("A = %v", est.A)
	}
	if f.MessageAge(1) != 1 {
		t.Fatalf("MessageAge = %v", f.MessageAge(1))
	}
}

func TestMessageReachabilityGrowth(t *testing.T) {
	f := newFilter(t, false, 1)
	f.OnMessage(comms.Message{T: 0, P: 0, V: 8, A: 0})
	e1 := f.EstimateAt(0.5)
	e2 := f.EstimateAt(2.0)
	if e2.P.Width() < e1.P.Width() {
		t.Fatal("uncertainty should grow with message age")
	}
}

func TestStaleMessageIgnored(t *testing.T) {
	f := newFilter(t, false, 1)
	f.OnMessage(comms.Message{T: 2, P: 10, V: 8})
	f.OnMessage(comms.Message{T: 1, P: 0, V: 0}) // older — ignore
	if f.MessageAge(2) != 0 {
		t.Fatal("stale message overwrote newer one")
	}
	est := f.EstimateAt(2)
	if !est.P.Contains(10) {
		t.Fatalf("estimate lost the newer message: %v", est.P)
	}
}

func TestReadingSharpensEstimate(t *testing.T) {
	f := newFilter(t, false, 1)
	f.OnMessage(comms.Message{T: 0, P: 0, V: 8, A: 0})
	stale := f.EstimateAt(3) // 3 s of reachability growth: wide
	f.OnReading(sensor.Reading{T: 3, P: 24, V: 8, A: 0})
	fresh := f.EstimateAt(3)
	if fresh.P.Width() >= stale.P.Width() {
		t.Fatalf("fresh reading should shrink the interval: %v vs %v", fresh.P, stale.P)
	}
	if fresh.P.Width() > 2*1+1e-6 { // ±δp (plus the sound-side pad)
		t.Fatalf("reading interval too wide: %v", fresh.P)
	}
}

func TestAccelSourcePreference(t *testing.T) {
	f := newFilter(t, false, 1)
	f.OnMessage(comms.Message{T: 1, P: 0, V: 8, A: 0.7})
	if est := f.EstimateAt(1); est.A != 0.7 {
		t.Fatalf("A = %v, want message accel", est.A)
	}
	// Newer reading wins.
	f.OnReading(sensor.Reading{T: 2, P: 8, V: 8, A: -0.3})
	if est := f.EstimateAt(2); est.A != -0.3 {
		t.Fatalf("A = %v, want reading accel", est.A)
	}
	// A newer message wins back.
	f.OnMessage(comms.Message{T: 3, P: 16, V: 8, A: 1.1})
	if est := f.EstimateAt(3); est.A != 1.1 {
		t.Fatalf("A = %v, want newest message accel", est.A)
	}
}

func TestOutOfOrderReadingIgnored(t *testing.T) {
	f := newFilter(t, false, 1)
	f.OnReading(sensor.Reading{T: 2, P: 10, V: 5})
	f.OnReading(sensor.Reading{T: 1, P: 0, V: 0})
	est := f.EstimateAt(2)
	if !est.P.Contains(10) {
		t.Fatalf("older reading overwrote newer one: %v", est.P)
	}
}

func TestKalmanTightensOverBasic(t *testing.T) {
	// Run the same noisy trajectory through a basic (no KF) and an
	// information-filter configuration; after convergence the KF interval
	// must be narrower.  This is the mechanism behind the ultimate
	// planner's efficiency gain.
	const delta = 3.0
	basic := newFilter(t, false, delta)
	ultimate := newFilter(t, true, delta)
	rng := rand.New(rand.NewSource(5))
	s := dynamics.State{P: 0, V: 8}
	basic.InitExact(0, s, 0)
	ultimate.InitExact(0, s, 0)
	const dt = 0.1
	var a float64
	for i := 1; i <= 100; i++ {
		a = -1 + 2*rng.Float64()
		var applied float64
		s, applied = dynamics.Step(s, a, dt, lim)
		r := sensor.Reading{
			T: float64(i) * dt,
			P: s.P + (rng.Float64()*2-1)*delta,
			V: s.V + (rng.Float64()*2-1)*delta,
			A: applied + (rng.Float64()*2-1)*delta,
		}
		basic.OnReading(r)
		ultimate.OnReading(r)
	}
	tNow := 100 * dt
	eb := basic.EstimateAt(tNow)
	eu := ultimate.EstimateAt(tNow)
	if eu.V.Width() >= eb.V.Width() {
		t.Fatalf("KF should tighten velocity: ultimate %v vs basic %v", eu.V, eb.V)
	}
	if !eu.V.Contains(s.V) && math.Abs(eu.PointV-s.V) > 1.5 {
		t.Fatalf("ultimate velocity estimate far from truth: %v vs %v", eu.V, s.V)
	}
}

func TestMessageReplayImprovesPoint(t *testing.T) {
	const delta = 3.0
	f := newFilter(t, true, delta)
	rng := rand.New(rand.NewSource(11))
	s := dynamics.State{P: 0, V: 8}
	f.InitExact(0, s, 0)
	const dt = 0.1
	type snap struct {
		t float64
		s dynamics.State
		a float64
	}
	var snaps []snap
	for i := 1; i <= 50; i++ {
		a := -1 + 2*rng.Float64()
		var applied float64
		s, applied = dynamics.Step(s, a, dt, lim)
		snaps = append(snaps, snap{float64(i) * dt, s, applied})
		f.OnReading(sensor.Reading{
			T: float64(i) * dt,
			P: s.P + (rng.Float64()*2-1)*delta,
			V: s.V + (rng.Float64()*2-1)*delta,
			A: applied + (rng.Float64()*2-1)*delta,
		})
	}
	now := 50 * dt
	before := f.EstimateAt(now)
	// Delayed message: exact state from 0.3 s ago.
	m := snaps[len(snaps)-4]
	f.OnMessage(comms.Message{T: m.t, P: m.s.P, V: m.s.V, A: m.a})
	after := f.EstimateAt(now)
	if after.P.Width() >= before.P.Width() {
		t.Fatalf("replayed message should shrink interval: %v vs %v", after.P, before.P)
	}
	if math.Abs(after.PointP-s.P) > math.Abs(before.PointP-s.P)+0.5 {
		t.Fatalf("replayed message worsened the point estimate: %.3f → %.3f (truth %.3f)",
			before.PointP, after.PointP, s.P)
	}
}

func TestReset(t *testing.T) {
	f := newFilter(t, true, 1)
	f.InitExact(0, dynamics.State{P: 1, V: 2}, 0)
	f.OnReading(sensor.Reading{T: 1, P: 1, V: 2})
	f.Reset()
	if est := f.EstimateAt(2); est.HasInfo {
		t.Fatal("Reset did not clear information")
	}
}

// Soundness property (DESIGN.md invariant #1 applied to the full filter):
// with basic (sound-only) fusion, the true state is always inside the
// estimate, for arbitrary trajectories, message patterns, and noise.
func TestQuickBasicFusionSound(t *testing.T) {
	const dt = 0.05
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := 0.5 + rng.Float64()*3
		flt, err := New(Config{Limits: lim, Sensor: sensor.Uniform(delta)})
		if err != nil {
			return false
		}
		s := dynamics.State{P: -40 + rng.Float64()*10, V: rng.Float64() * 12}
		flt.InitExact(0, s, 0)
		var applied float64
		for i := 1; i <= 200; i++ {
			now := float64(i) * dt
			a := lim.AMin + rng.Float64()*(lim.AMax-lim.AMin)
			s, applied = dynamics.Step(s, a, dt, lim)
			if i%2 == 0 { // sensing period 0.1
				flt.OnReading(sensor.Reading{
					T: now,
					P: s.P + (rng.Float64()*2-1)*delta,
					V: s.V + (rng.Float64()*2-1)*delta,
					A: applied + (rng.Float64()*2-1)*delta,
				})
			}
			if i%2 == 0 && rng.Float64() < 0.5 { // intermittent messages
				flt.OnMessage(comms.Message{T: now, P: s.P, V: s.V, A: applied})
			}
			est := flt.EstimateAt(now)
			if !est.P.Expand(1e-6).Contains(s.P) || !est.V.Expand(1e-6).Contains(s.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// With the Kalman filter enabled, the joined estimate must still contain
// the truth essentially always (the sound components bound the join, and
// the KF interval at 3σ rarely excludes the truth; any empty intersection
// falls back to the sound set).
func TestQuickUltimateFusionMostlySound(t *testing.T) {
	const dt = 0.05
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := 1 + rng.Float64()*2
		flt, err := New(Config{Limits: lim, Sensor: sensor.Uniform(delta), UseKalman: true, Replay: true})
		if err != nil {
			return false
		}
		s := dynamics.State{P: -40, V: 8}
		flt.InitExact(0, s, 0)
		misses := 0
		var applied float64
		const steps = 200
		for i := 1; i <= steps; i++ {
			now := float64(i) * dt
			a := -1 + rng.Float64()*2
			s, applied = dynamics.Step(s, a, dt, lim)
			if i%2 == 0 {
				flt.OnReading(sensor.Reading{
					T: now,
					P: s.P + (rng.Float64()*2-1)*delta,
					V: s.V + (rng.Float64()*2-1)*delta,
					A: applied + (rng.Float64()*2-1)*delta,
				})
			}
			est := flt.EstimateAt(now)
			if !est.P.Contains(s.P) || !est.V.Contains(s.V) {
				misses++
			}
			// The sound pair must contain the truth on every step, KF or
			// not — that is what the safety machinery consumes.
			if !est.SoundP.Contains(s.P) || !est.SoundV.Contains(s.V) {
				return false
			}
		}
		// "Mostly sound": the 3σ KF join may exclude the truth around
		// sharp accelerations; it is an efficiency estimate, not a safety
		// one, so only gross inconsistency fails the test.
		return misses <= steps/4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
