// Package eval implements the paper's evaluation function η (§II-A) and
// the aggregate statistics reported in Tables I–II: mean reaching time
// (safe episodes only), safe rate, mean η, winning percentage, and
// emergency frequency — plus the RMSE metric of §V-C.
package eval

import (
	"fmt"
	"math"

	"safeplan/internal/sim"
)

// Stats aggregates a campaign of episodes for one planner configuration.
type Stats struct {
	N        int // episodes
	Safe     int // episodes without a safety violation
	Reached  int // episodes that reached the target set
	Timeouts int // episodes that neither reached nor collided

	MeanEta           float64 // mean η over all episodes
	MeanReachTimeSafe float64 // mean reaching time over safe, reached episodes (paper's '*': only safe cases counted)
	EmergencyFreq     float64 // emergency steps / total steps, pooled over the campaign

	Etas []float64 // per-episode η, aligned with the seed order (for pairwise comparison)
}

// SafeRate is Safe/N.
func (s Stats) SafeRate() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Safe) / float64(s.N)
}

// Aggregate folds episode results into Stats.  Results must come from the
// same campaign (same seed sequence) for cross-planner comparisons to be
// paired correctly.
func Aggregate(results []sim.Result) Stats {
	var st Stats
	st.N = len(results)
	var sumEta, sumReach float64
	var reachedSafe int
	var emSteps, steps int
	for _, r := range results {
		if !r.Collided {
			st.Safe++
		}
		if r.Reached {
			st.Reached++
		}
		if r.Reached && !r.Collided {
			reachedSafe++
			sumReach += r.ReachTime
		}
		if !r.Reached && !r.Collided {
			st.Timeouts++
		}
		sumEta += r.Eta
		emSteps += r.EmergencySteps
		steps += r.Steps
		st.Etas = append(st.Etas, r.Eta)
	}
	if st.N > 0 {
		st.MeanEta = sumEta / float64(st.N)
	}
	if reachedSafe > 0 {
		st.MeanReachTimeSafe = sumReach / float64(reachedSafe)
	}
	if steps > 0 {
		st.EmergencyFreq = float64(emSteps) / float64(steps)
	}
	return st
}

// WinningPercentage is the fraction of paired episodes where a's η strictly
// exceeds b's — the paper's "winning percentage" of the ultimate compound
// planner against each alternative.
func WinningPercentage(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: unpaired η series (%d vs %d)", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("eval: empty η series")
	}
	wins := 0
	for i := range a {
		if a[i] > b[i] {
			wins++
		}
	}
	return float64(wins) / float64(len(a)), nil
}

// RMSE returns the root-mean-square error between paired series.
func RMSE(estimate, truth []float64) (float64, error) {
	if len(estimate) != len(truth) {
		return 0, fmt.Errorf("eval: unpaired series (%d vs %d)", len(estimate), len(truth))
	}
	if len(estimate) == 0 {
		return 0, fmt.Errorf("eval: empty series")
	}
	var s float64
	n := 0
	for i := range estimate {
		if math.IsNaN(estimate[i]) || math.IsNaN(truth[i]) {
			continue // e.g. before the first sensor reading
		}
		d := estimate[i] - truth[i]
		s += d * d
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("eval: only NaN samples")
	}
	return math.Sqrt(s / float64(n)), nil
}

// ReductionPercent expresses how much smaller after is than before, in
// percent (the paper reports the filter cutting RMSE by 69% / 76%).
func ReductionPercent(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (before - after) / before * 100
}
