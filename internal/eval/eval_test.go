package eval

import (
	"math"
	"testing"
	"testing/quick"

	"safeplan/internal/sim"
)

func TestAggregateBasics(t *testing.T) {
	results := []sim.Result{
		{Reached: true, ReachTime: 5, Eta: 0.2, Steps: 100, EmergencySteps: 10},
		{Collided: true, Eta: -1, Steps: 50, EmergencySteps: 0},
		{Steps: 600}, // timeout
		{Reached: true, ReachTime: 10, Eta: 0.1, Steps: 200, EmergencySteps: 30},
	}
	st := Aggregate(results)
	if st.N != 4 || st.Safe != 3 || st.Reached != 2 || st.Timeouts != 1 {
		t.Fatalf("counts: %+v", st)
	}
	if got, want := st.SafeRate(), 0.75; got != want {
		t.Fatalf("SafeRate = %v", got)
	}
	if got, want := st.MeanReachTimeSafe, 7.5; got != want {
		t.Fatalf("MeanReachTimeSafe = %v", got)
	}
	if got, want := st.MeanEta, (0.2-1+0+0.1)/4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanEta = %v", got)
	}
	if got, want := st.EmergencyFreq, 40.0/950; math.Abs(got-want) > 1e-12 {
		t.Fatalf("EmergencyFreq = %v", got)
	}
	if len(st.Etas) != 4 || st.Etas[1] != -1 {
		t.Fatalf("Etas = %v", st.Etas)
	}
}

func TestAggregateCollidedAfterReachNotCounted(t *testing.T) {
	// A result flagged both reached and collided contributes to Reached but
	// not to the safe reach-time mean.
	st := Aggregate([]sim.Result{{Reached: true, Collided: true, ReachTime: 3}})
	if st.MeanReachTimeSafe != 0 {
		t.Fatalf("unsafe reach counted: %v", st.MeanReachTimeSafe)
	}
}

func TestAggregateEmpty(t *testing.T) {
	st := Aggregate(nil)
	if st.N != 0 || st.SafeRate() != 0 || st.MeanEta != 0 {
		t.Fatalf("empty aggregate: %+v", st)
	}
}

func TestWinningPercentage(t *testing.T) {
	a := []float64{0.2, 0.1, -1, 0.3}
	b := []float64{0.1, 0.1, 0.2, -1}
	got, err := WinningPercentage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 { // wins at 0 and 3; tie at 1; loss at 2
		t.Fatalf("WinningPercentage = %v", got)
	}
	if _, err := WinningPercentage(a, b[:2]); err == nil {
		t.Fatal("unpaired series accepted")
	}
	if _, err := WinningPercentage(nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("identical RMSE = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(12.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	// NaN samples skipped.
	got, err = RMSE([]float64{math.NaN(), 1}, []float64{5, 1})
	if err != nil || got != 0 {
		t.Fatalf("NaN-skipping RMSE = %v, %v", got, err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("unpaired series accepted")
	}
	if _, err := RMSE([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Fatal("all-NaN series accepted")
	}
}

func TestReductionPercent(t *testing.T) {
	if got := ReductionPercent(10, 3.1); math.Abs(got-69) > 1e-9 {
		t.Fatalf("ReductionPercent = %v", got)
	}
	if got := ReductionPercent(0, 5); got != 0 {
		t.Fatalf("zero-before reduction = %v", got)
	}
}

// Property: winning percentage of a series against itself is 0 (no strict
// wins) and a+b winning percentages of strictly ordered series sum to 1.
func TestQuickWinningPercentage(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		self, err := WinningPercentage(raw, raw)
		if err != nil || self != 0 {
			return false
		}
		shifted := make([]float64, len(raw))
		ok := true
		for i, v := range raw {
			// Skip values where adding 1 is lost to float granularity.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e15 {
				ok = false
				break
			}
			shifted[i] = v + 1
		}
		if !ok {
			return true
		}
		up, err := WinningPercentage(shifted, raw)
		if err != nil {
			return false
		}
		return up == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
