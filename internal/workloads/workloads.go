// Package workloads names the canonical campaign workloads so every
// process in a distributed campaign — coordinator, worker, bench — can
// reconstruct the identical episode function and invariant-checker set
// from a short wire-safe name.  Configurations and agents are not
// serializable (they carry closures, networks, and channel models), so
// the distribution protocol ships only the workload *name*; both sides
// construct the rest deterministically from this registry.  A name must
// therefore mean exactly one thing forever: changing what a registered
// name builds silently changes what a remote worker computes.
package workloads

import (
	"fmt"
	"sort"

	"safeplan/internal/campaign"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/experiments"
	"safeplan/internal/sim"
)

// Workload is one named left-turn campaign configuration.
type Workload struct {
	Name  string
	Cfg   sim.Config
	Agent core.Agent
}

// Episode adapts the workload for the scalar campaign engine.
func (w Workload) Episode() campaign.EpisodeFunc {
	return campaign.LeftTurn(w.Cfg, w.Agent)
}

// Batch adapts the workload for the lockstep batched campaign engine.
func (w Workload) Batch() campaign.BatchFunc {
	return campaign.LeftTurnBatch(w.Cfg, w.Agent)
}

// Invariants is the workload's full checker set for guaranteed compound
// designs (no collision, sound estimates, Eq. 4 emergency one-step,
// monitor-iff-boundary).
func (w Workload) Invariants() []sim.Invariant {
	return InvariantSet(w.Cfg)
}

// InvariantSet is the full checker set for guaranteed compound designs.
func InvariantSet(cfg sim.Config) []sim.Invariant {
	return []sim.Invariant{
		sim.NoCollision{},
		sim.SoundEstimate{},
		sim.EmergencyOneStep{Cfg: cfg.Scenario},
		sim.NewMonitorConsistency(cfg.Scenario),
	}
}

// CanonicalMatrix builds the benchmark workloads: the paper's three
// communication settings × both expert planners under the ultimate
// design, plus two adversarial disturbance presets.  quick keeps one
// workload per axis so regression snapshots stay cheap and stable.
func CanonicalMatrix(quick bool) []Workload {
	var out []Workload
	settings := experiments.StandardSettings()
	short := map[string]string{
		"no disturbance":   "none",
		"messages delayed": "delayed",
		"messages lost":    "lost",
	}
	kinds := []experiments.PlannerKind{experiments.Conservative, experiments.Aggressive}
	if quick {
		kinds = kinds[:1]
	}
	for _, s := range settings {
		for _, k := range kinds {
			cfg := experiments.SettingConfig(s)
			cfg.InfoFilter = true
			pl := experiments.ExpertPlanners(cfg.Scenario).Pick(k)
			out = append(out, Workload{
				Name:  short[s.Name] + "/ultimate-" + k.String(),
				Cfg:   cfg,
				Agent: core.NewUltimate(cfg.Scenario, pl),
			})
		}
	}
	presets := []string{"burst", "worst"}
	if quick {
		presets = presets[:1]
	}
	for _, p := range presets {
		m, err := disturb.Preset(p)
		if err != nil {
			// The preset names above are registry constants; a failure
			// here is a programming error, not an input error.
			panic(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Comms = comms.Disturbed(m)
		cfg.InfoFilter = true
		pl := experiments.ExpertPlanners(cfg.Scenario).Cons
		out = append(out, Workload{
			Name:  "disturb-" + p + "/ultimate-conservative",
			Cfg:   cfg,
			Agent: core.NewUltimate(cfg.Scenario, pl),
		})
	}
	return out
}

// Lookup resolves a workload name from the full canonical matrix.
// Construction is deliberately lazy and per-call: agents hold mutable
// per-episode scratch only behind the engine's pooling, but a fresh
// agent per process keeps distributed workers fully independent.
func Lookup(name string) (Workload, error) {
	for _, w := range CanonicalMatrix(false) {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q (known: %v)", name, Names())
}

// Names lists the registered workload names, sorted.
func Names() []string {
	var out []string
	for _, w := range CanonicalMatrix(false) {
		out = append(out, w.Name)
	}
	sort.Strings(out)
	return out
}
