package dist

import (
	"encoding/json"
	"fmt"
	"os"

	"safeplan/internal/campaign"
)

// workerCheckpointVersion guards the mid-shard checkpoint layout.
const workerCheckpointVersion = 1

// WorkerCheckpoint is a worker's mid-shard resume point: the partial
// aggregate for episodes [lo, NextEpisode) of one shard, fingerprinted
// to the campaign.  Because RunShard folds episodes in index order, a
// worker that crashes, reloads this file, and continues from NextEpisode
// produces a shard aggregate byte-identical to an uninterrupted run —
// that is the property the chaos gate proves.
type WorkerCheckpoint struct {
	Version     int                  `json:"version"`
	Fingerprint campaign.Fingerprint `json:"fingerprint"`
	Shard       int                  `json:"shard"`
	// NextEpisode is the first episode index NOT yet folded into Stats.
	NextEpisode int                  `json:"next_episode"`
	Stats       *campaign.ShardStats `json:"stats"`
	// Sum is the checksum of every other field.  JSON decoding alone only
	// catches structural damage — a bit flip inside a number yields a
	// checkpoint that parses fine and resumes from plausible-but-wrong
	// state (the chaos gate found exactly this).  The checksum makes any
	// value-level damage load as ErrCorruptCheckpoint instead.
	Sum string `json:"sum"`
}

// checksum hashes the checkpoint's content (Sum field excluded).
func (ck WorkerCheckpoint) checksum() string {
	ck.Sum = ""
	raw, err := json.Marshal(ck)
	if err != nil {
		panic(err) // closed struct of marshalable fields
	}
	return sumBytes(raw)
}

// SaveWorkerCheckpoint persists a mid-shard resume point atomically and
// durably (campaign.WriteFileAtomic: temp + fsync + rename + dir fsync).
func SaveWorkerCheckpoint(path string, ck WorkerCheckpoint) error {
	ck.Version = workerCheckpointVersion
	ck.Sum = ck.checksum()
	raw, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(path, append(raw, '\n'))
}

// LoadWorkerCheckpoint reads a mid-shard resume point.  A missing file
// returns (nil, nil) — nothing to resume.  A file that cannot be decoded
// (torn write, bit flip, version skew) returns
// campaign.ErrCorruptCheckpoint, which the worker treats as "no
// checkpoint": the shard recomputes from its start, trading time for
// correctness, never folding suspect bytes.  A checkpoint for a
// DIFFERENT campaign is a distinct, non-discardable error: the caller
// pointed a worker at the wrong state file, and silently recomputing
// would hide the misconfiguration.
func LoadWorkerCheckpoint(path string, fp campaign.Fingerprint) (*WorkerCheckpoint, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: read worker checkpoint: %w", err)
	}
	var ck WorkerCheckpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil, fmt.Errorf("%w %s: %v", campaign.ErrCorruptCheckpoint, path, err)
	}
	if ck.Version != workerCheckpointVersion {
		return nil, fmt.Errorf("%w %s: version %d, want %d", campaign.ErrCorruptCheckpoint, path, ck.Version, workerCheckpointVersion)
	}
	if ck.Stats == nil || ck.Shard < 0 {
		return nil, fmt.Errorf("%w %s: missing stats or negative shard", campaign.ErrCorruptCheckpoint, path)
	}
	if got := ck.checksum(); got != ck.Sum {
		return nil, fmt.Errorf("%w %s: checksum %.12s… does not match content %.12s…", campaign.ErrCorruptCheckpoint, path, ck.Sum, got)
	}
	if ck.Fingerprint != fp {
		return nil, fmt.Errorf("dist: worker checkpoint %s belongs to campaign %+v, not %+v (delete it or change the path)",
			path, ck.Fingerprint, fp)
	}
	return &ck, nil
}
