package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"safeplan/internal/campaign"
	"safeplan/internal/dist"
	"safeplan/internal/disturb"
	"safeplan/internal/sim"
)

// synthEpisode mirrors the campaign test fixture: outcome is a pure
// function of the seed, so the differential gate isolates the protocol —
// any statistics difference is a distribution bug, not episode noise.
func synthEpisode(opts sim.Options) (sim.Result, error) {
	seed := opts.Seed
	r := sim.Result{Steps: int(10 + seed%17)}
	switch {
	case seed%97 == 0:
		r.Collided = true
		r.Eta = -1
	case seed%5 == 0:
		// timeout: η = 0
	default:
		r.Reached = true
		r.ReachTime = 8 + float64(seed%31)*0.25
		r.Eta = 1 / r.ReachTime
	}
	if seed%7 == 0 {
		r.EmergencySteps = 3
	}
	if err := sim.CheckEpisodeInvariants(opts.Invariants, &r); err != nil {
		return r, err
	}
	return r, nil
}

func synthResolver(name string) (campaign.EpisodeFunc, []sim.Invariant, error) {
	if name != "synthetic" {
		return nil, nil, fmt.Errorf("chaos test: unknown workload %q", name)
	}
	return synthEpisode, nil, nil
}

type localConn struct{ c *dist.Coordinator }

func (l localConn) Do(req dist.Request) (dist.Response, error) { return l.c.Dispatch(req), nil }
func (l localConn) Close() error                               { return nil }

// gateSpec is the chaos gate's campaign: enough episodes over the full
// 64-shard plan that every protocol op fires many times per run.
func gateSpec() campaign.Spec {
	return campaign.Spec{Name: "chaos-gate", Episodes: 400, BaseSeed: 3}
}

// baseline computes the single-process reference statistics once.
var (
	baselineOnce  sync.Once
	baselineStats campaign.Stats
	baselineErr   error
)

func baseline(t *testing.T) campaign.Stats {
	t.Helper()
	baselineOnce.Do(func() {
		rep, err := campaign.Run(gateSpec(), synthEpisode)
		if err != nil {
			baselineErr = err
			return
		}
		baselineStats = rep.Stats
	})
	if baselineErr != nil {
		t.Fatal(baselineErr)
	}
	return baselineStats
}

func assertByteIdentical(t *testing.T, got campaign.Stats) {
	t.Helper()
	want := baseline(t)
	wraw, _ := json.Marshal(want)
	graw, _ := json.Marshal(got)
	if !bytes.Equal(wraw, graw) {
		t.Fatalf("stats diverged from single-process baseline:\nwant: %s\ngot:  %s", wraw, graw)
	}
}

func newCoordinator(t *testing.T, spec campaign.Spec) *dist.Coordinator {
	t.Helper()
	c, err := dist.NewCoordinator(dist.Config{
		Spec:       spec,
		Workload:   "synthetic",
		LeaseTTL:   50 * time.Millisecond,
		RetryAfter: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// chaosWorker builds a worker config with fast, bounded retry math and
// the given fault script.
func chaosWorker(c *dist.Coordinator, id string, cfg Config) dist.WorkerConfig {
	return dist.WorkerConfig{
		ID:             id,
		Dial:           Dial(func() (dist.Conn, error) { return localConn{c}, nil }, cfg),
		Resolve:        synthResolver,
		HeartbeatEvery: 3,
		// Message-level faults can fail many round trips in a row; the
		// gate bounds retries high enough that injected loss cannot
		// starve a worker out, with sub-millisecond backoff to keep the
		// suite fast.
		MaxRetries: 200,
		Backoff:    dist.Backoff{Base: 100 * time.Microsecond, Cap: 2 * time.Millisecond},
	}
}

// TestChaosGateMessageFaults is the differential gate over message-level
// failure modes: for each scripted fault — lost requests, lost
// responses (processed-but-unacknowledged, the duplicate factory),
// duplicated requests, delay jitter with reordering-scale tails, burst
// loss on both legs, corrupted result payloads, and a kitchen-sink
// combination — two faulted workers must drive the campaign to final
// statistics byte-identical to the single-process baseline.
func TestChaosGateMessageFaults(t *testing.T) {
	modes := []struct {
		name string
		cfg  Config
	}{
		{"drop-requests", Config{Request: disturb.IID{DropProb: 0.25}}},
		{"drop-responses", Config{Response: disturb.IID{DropProb: 0.25}}},
		{"dup-requests", Config{Request: disturb.Replay{Prob: 0.4}}},
		{"delay-jitter", Config{
			Request:  disturb.Jitter{Base: 0.02, Spread: 0.1, TailProb: 0.1, TailMean: 0.3},
			Response: disturb.Jitter{Base: 0.02, Spread: 0.1, TailProb: 0.1, TailMean: 0.3},
		}},
		{"burst-loss-both", Config{
			Request:  disturb.GilbertElliott{PGoodBad: 0.1, PBadGood: 0.3, DropBad: 0.9},
			Response: disturb.GilbertElliott{PGoodBad: 0.1, PBadGood: 0.3, DropBad: 0.9, StartBad: true},
		}},
		{"corrupt-sums", Config{CorruptSumProb: 0.3}},
		{"everything-at-once", Config{
			Request:        disturb.Replay{Inner: disturb.IID{DropProb: 0.15}, Prob: 0.2},
			Response:       disturb.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.4, DropBad: 0.8},
			CorruptSumProb: 0.2,
		}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			c := newCoordinator(t, gateSpec())
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for i := range errs {
				cfg := mode.cfg
				cfg.Seed = int64(1000*i) + 7
				wcfg := chaosWorker(c, fmt.Sprintf("chaos-%d", i), cfg)
				wg.Add(1)
				go func(i int, wcfg dist.WorkerConfig) {
					defer wg.Done()
					_, errs[i] = dist.RunWorker(wcfg)
				}(i, wcfg)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			got, err := c.WaitResult()
			if err != nil {
				t.Fatal(err)
			}
			assertByteIdentical(t, got)
		})
	}
}

// TestChaosGateWorkerKill: a worker is killed mid-shard at a scripted
// episode while a sibling keeps running; a replacement rejoins from the
// victim's checkpoint.  Final statistics must not show a trace of any of
// it.
func TestChaosGateWorkerKill(t *testing.T) {
	c := newCoordinator(t, gateSpec())
	ckpt := filepath.Join(t.TempDir(), "victim.json")

	var wg sync.WaitGroup
	var survivorErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, survivorErr = dist.RunWorker(chaosWorker(c, "survivor", Config{Request: disturb.IID{DropProb: 0.1}}))
	}()

	victim := chaosWorker(c, "victim", Config{})
	victim.CheckpointPath = ckpt
	victim.AfterEpisode = KillAfter(9)
	if _, err := dist.RunWorker(victim); !errors.Is(err, ErrInjected) {
		t.Fatalf("victim survived its kill script: %v", err)
	}

	// The victim's lease must expire before its shard is grantable again.
	time.Sleep(60 * time.Millisecond)

	revived := chaosWorker(c, "revived", Config{})
	revived.CheckpointPath = ckpt
	if _, err := dist.RunWorker(revived); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if survivorErr != nil {
		t.Fatal(survivorErr)
	}
	got, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got)
}

// TestChaosGateCorruptCheckpoint: the victim's on-disk checkpoint is
// corrupted (torn or bit-flipped, seed-swept) between its crash and the
// replacement's start.  The replacement must detect the damage, discard
// it, recompute — and the final statistics must still be byte-identical.
// Never a panic, never silently wrong stats.
func TestChaosGateCorruptCheckpoint(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			spec := gateSpec()
			spec.Shards = 4 // fewer, bigger shards: the recompute is visible
			c, err := dist.NewCoordinator(dist.Config{
				Spec: spec, Workload: "synthetic",
				LeaseTTL: 30 * time.Millisecond, RetryAfter: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ckpt := filepath.Join(t.TempDir(), "victim.json")

			victim := chaosWorker(c, "victim", Config{})
			victim.CheckpointPath = ckpt
			victim.AfterEpisode = KillAfter(20)
			if _, err := dist.RunWorker(victim); !errors.Is(err, ErrInjected) {
				t.Fatalf("victim survived: %v", err)
			}
			if err := CorruptFile(ckpt, seed); err != nil {
				t.Fatal(err)
			}
			time.Sleep(40 * time.Millisecond)

			revived := chaosWorker(c, "revived", Config{})
			revived.CheckpointPath = ckpt
			sum, err := dist.RunWorker(revived)
			if err != nil {
				t.Fatal(err)
			}
			// A corrupt checkpoint may never be resumed from: the
			// checkpoint checksum classifies both structural damage and
			// value-level flips (which still parse as JSON) as corrupt.
			// The binding assertion is on the final statistics.
			got, err := c.WaitResult()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := campaign.Run(spec, synthEpisode)
			if err != nil {
				t.Fatal(err)
			}
			wraw, _ := json.Marshal(rep.Stats)
			graw, _ := json.Marshal(got)
			if !bytes.Equal(wraw, graw) {
				t.Fatalf("seed %d: stats diverged after checkpoint corruption (resumed=%v):\nwant: %s\ngot:  %s",
					seed, sum.Resumed, wraw, graw)
			}
		})
	}
}

// TestChaosConnCountersFire sanity-checks that the fault scripts above
// actually injected faults (a gate that injects nothing proves nothing).
func TestChaosConnCountersFire(t *testing.T) {
	spec := gateSpec()
	c := newCoordinator(t, spec)
	inner := localConn{c}
	conn := Wrap(inner, Config{
		Request:        disturb.IID{DropProb: 0.5},
		Response:       disturb.IID{DropProb: 0.5},
		CorruptSumProb: 1,
		Seed:           11,
	})
	fp := spec.Fingerprint()
	drops := 0
	for i := 0; i < 200; i++ {
		if _, err := conn.Do(dist.Request{Op: dist.OpHello, Worker: "probe", Fingerprint: &fp}); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected transport error: %v", err)
			}
			drops++
		}
	}
	if conn.DroppedRequests == 0 || conn.DroppedResponses == 0 || drops == 0 {
		t.Fatalf("drop script never fired: %+v", conn)
	}
	agg := &campaign.ShardStats{}
	lo, _ := spec.ShardRange(0)
	if err := campaign.RunShard(spec, synthEpisode, 0, lo, agg, nil); err != nil {
		t.Fatal(err)
	}
	req := dist.Request{Op: dist.OpResult, Worker: "probe", Fingerprint: &fp, Shard: 0, Stats: agg, Sum: dist.ShardSum(agg)}
	sawBadSum := false
	for i := 0; i < 50 && !sawBadSum; i++ {
		resp, err := conn.Do(req)
		if err != nil {
			continue
		}
		if resp.Reason == dist.ReasonBadSum {
			sawBadSum = true
		}
	}
	if !sawBadSum || conn.CorruptedSums == 0 {
		t.Fatalf("sum corruption never rejected: corrupted=%d", conn.CorruptedSums)
	}
}

// TestCorruptFileShapes: every corruption seed really changes the file,
// and the worker checkpoint loader classifies the damage as corrupt (or,
// for a lucky value-preserving flip, loads something parseable) — it
// must never panic.
func TestCorruptFileShapes(t *testing.T) {
	spec := gateSpec()
	fp := spec.Fingerprint()
	for seed := int64(0); seed < 20; seed++ {
		path := filepath.Join(t.TempDir(), "ck.json")
		if err := dist.SaveWorkerCheckpoint(path, dist.WorkerCheckpoint{
			Fingerprint: fp, Shard: 1, NextEpisode: 9,
			Stats: &campaign.ShardStats{Episodes: 3, Reached: 3},
		}); err != nil {
			t.Fatal(err)
		}
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := CorruptFile(path, seed); err != nil {
			t.Fatal(err)
		}
		damaged, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: loader panicked on corrupt checkpoint: %v", seed, r)
				}
			}()
			ck, err := dist.LoadWorkerCheckpoint(path, fp)
			if bytes.Equal(pristine, damaged) {
				return // the truncation landed at full length: no damage
			}
			if err == nil && ck != nil {
				// Only content-preserving damage (a flip in JSON
				// whitespace) may load cleanly — the checksum rejects any
				// flip that changes a decoded value.
				if ck.NextEpisode != 9 || ck.Shard != 1 || ck.Stats.Episodes != 3 {
					t.Fatalf("seed %d: corrupted values loaded as clean: %+v", seed, ck)
				}
				return
			}
			if !errors.Is(err, campaign.ErrCorruptCheckpoint) && err != nil && ck == nil && !errors.Is(err, os.ErrNotExist) {
				// Fingerprint-mismatch (flip inside the fingerprint) is
				// also an accepted loud outcome.
				if !bytes.Contains([]byte(err.Error()), []byte("belongs to campaign")) {
					t.Fatalf("seed %d: unclassified corruption outcome: %v", seed, err)
				}
			}
		}()
	}
}
