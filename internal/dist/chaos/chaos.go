// Package chaos is the crash-injection harness for the distributed
// campaign tier: it wraps a worker's protocol transport with scripted
// message faults (drop, delay, duplicate — driven by the same
// internal/disturb channel models the simulator uses for V2V traffic),
// corrupts result payloads in flight, kills workers at a chosen episode,
// and corrupts checkpoints on disk.  The differential gate in this
// package's tests proves the tier's headline property: final campaign
// statistics are byte-identical to a single-process run under EVERY
// injected failure mode.
//
// Faults are injected at the transport seam (dist.Conn), so the
// coordinator and worker under test run their real code paths — retry,
// backoff, lease expiry, duplicate admission — rather than mocks of
// them.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"safeplan/internal/dist"
	"safeplan/internal/disturb"
)

// ErrInjected marks transport failures manufactured by this package, so
// tests can tell injected faults from real bugs.
var ErrInjected = errors.New("chaos: injected fault")

// Config scripts the faults one Conn injects.
type Config struct {
	// Request governs the worker→coordinator leg.  A Drop decision means
	// the request never reaches the coordinator (the worker sees a
	// transport error and retries); Dup delivers spare copies of the
	// request before the real one — duplicate protocol messages.
	Request disturb.Model
	// Response governs the coordinator→worker leg.  A Drop decision
	// means the coordinator PROCESSED the request but the answer was
	// lost — the classic ambiguous failure that forces retries and
	// duplicate result submissions.
	Response disturb.Model

	// CorruptSumProb flips a byte of the result checksum on submissions
	// with this probability, simulating payload corruption in flight;
	// the coordinator must answer ReasonBadSum and the worker resubmit.
	CorruptSumProb float64

	// Unit converts a disturbance Delay (seconds in the channel-model
	// domain) into wall time; 0 selects time.Millisecond per second, so
	// simulator-scale models inject microsecond-scale test latencies.
	Unit time.Duration

	// Clock performs delay sleeps; nil selects dist.RealClock.
	Clock dist.Clock

	// Seed derives the fault streams.  The same seed replays the same
	// fault script against a deterministic request sequence.
	Seed int64
}

// Conn injects Config's faults around an inner transport.  Like the
// disturbance processes it is built on, it is single-goroutine (one
// worker owns one Conn).
type Conn struct {
	inner dist.Conn
	cfg   Config
	clock dist.Clock
	req   disturb.Process
	resp  disturb.Process
	rng   *rand.Rand
	t     float64

	// Counters let tests assert the script actually fired.
	DroppedRequests  int
	DroppedResponses int
	DupedRequests    int
	CorruptedSums    int
	Delays           int
}

// Wrap builds a chaos transport around inner.
func Wrap(inner dist.Conn, cfg Config) *Conn {
	if cfg.Unit <= 0 {
		cfg.Unit = time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = dist.RealClock{}
	}
	mk := func(m disturb.Model, salt int64) disturb.Process {
		if m == nil {
			m = disturb.None{}
		}
		return m.New(
			rand.New(rand.NewSource(cfg.Seed^salt)),
			rand.New(rand.NewSource(cfg.Seed^salt^0x5eed)),
		)
	}
	return &Conn{
		inner: inner,
		cfg:   cfg,
		clock: cfg.Clock,
		req:   mk(cfg.Request, 0x7ea),
		resp:  mk(cfg.Response, 0xaca),
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0xc0ffee)),
	}
}

// Dial wraps a dial function so every redial gets a fresh chaos
// transport with a seed derived from the attempt number — fault scripts
// stay reproducible across reconnects.
func Dial(inner func() (dist.Conn, error), cfg Config) func() (dist.Conn, error) {
	attempt := int64(0)
	return func() (dist.Conn, error) {
		c, err := inner()
		if err != nil {
			return nil, err
		}
		dcfg := cfg
		dcfg.Seed = cfg.Seed + 1_000_003*attempt
		attempt++
		return Wrap(c, dcfg), nil
	}
}

// sleep converts a channel-model delay to wall time and sleeps it.
func (c *Conn) sleep(delay float64) {
	if delay <= 0 {
		return
	}
	c.Delays++
	c.clock.Sleep(time.Duration(delay * float64(c.cfg.Unit)))
}

// Do implements dist.Conn with the scripted faults applied around the
// real round trip.
func (c *Conn) Do(req dist.Request) (dist.Response, error) {
	t := c.t
	c.t++

	// Payload corruption: mangle the result checksum in flight.  The sum
	// no longer matches the stats, so the coordinator must refuse to
	// fold and the worker must resubmit.
	if req.Op == dist.OpResult && c.cfg.CorruptSumProb > 0 && c.rng.Float64() < c.cfg.CorruptSumProb && req.Sum != "" {
		c.CorruptedSums++
		b := []byte(req.Sum)
		b[0] ^= 0x1 // hex-digit flip: still well-formed, just wrong
		if string(b) == req.Sum {
			b[0] ^= 0x3
		}
		req.Sum = string(b)
	}

	// Request leg.
	rd := c.req.Next(t)
	if rd.Drop {
		c.DroppedRequests++
		return dist.Response{}, fmt.Errorf("%w: request %s dropped", ErrInjected, req.Op)
	}
	c.sleep(rd.Delay)
	for range rd.Dup {
		// A duplicated protocol message: the coordinator sees the same
		// request again before the copy the worker will read the answer
		// to.  Idempotent ops (hello, renew, result) must tolerate it.
		c.DupedRequests++
		if _, err := c.inner.Do(req); err != nil {
			return dist.Response{}, err
		}
	}
	resp, err := c.inner.Do(req)
	if err != nil {
		return dist.Response{}, err
	}

	// Response leg: the coordinator has already processed the request.
	pd := c.resp.Next(t)
	if pd.Drop {
		c.DroppedResponses++
		return dist.Response{}, fmt.Errorf("%w: response to %s dropped", ErrInjected, req.Op)
	}
	c.sleep(pd.Delay)
	return resp, nil
}

// Close implements dist.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// KillAfter builds a dist worker AfterEpisode hook that crashes the
// worker after it has run n episodes (across shards), leaving whatever
// mid-shard state exists on disk — the kill-worker-at-step-N injection.
func KillAfter(n int) func(shard, next int) error {
	ran := 0
	return func(shard, next int) error {
		ran++
		if ran >= n {
			return fmt.Errorf("%w: worker killed after %d episodes (shard %d, next %d)", ErrInjected, ran, shard, next)
		}
		return nil
	}
}

// CorruptFile damages a file on disk in a seed-selected way — truncation
// or a bit flip — simulating a torn write or media corruption under a
// crashed worker.  Checkpoint loaders must detect the damage
// (campaign.ErrCorruptCheckpoint) and recompute, never fold the bytes.
func CorruptFile(path string, seed int64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	switch {
	case len(raw) == 0 || rng.Intn(2) == 0:
		raw = raw[:rng.Intn(len(raw)+1)] // torn write: cut at a random offset
	default:
		raw[rng.Intn(len(raw))] ^= 1 << uint(rng.Intn(8)) // media bit flip
	}
	return os.WriteFile(path, raw, 0o644)
}
