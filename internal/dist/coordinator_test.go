package dist

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"safeplan/internal/campaign"
	"safeplan/internal/sim"
)

// synthEpisode mirrors the campaign package's synthetic fixture: outcome
// and score are pure functions of the seed, so shard aggregates are
// reproducible anywhere — exactly the property the distributed tier
// transports.
func synthEpisode(opts sim.Options) (sim.Result, error) {
	seed := opts.Seed
	r := sim.Result{Steps: int(10 + seed%17)}
	switch {
	case seed%97 == 0:
		r.Collided = true
		r.Eta = -1
	case seed%5 == 0:
		// timeout: η = 0
	default:
		r.Reached = true
		r.ReachTime = 8 + float64(seed%31)*0.25
		r.Eta = 1 / r.ReachTime
	}
	if seed%7 == 0 {
		r.EmergencySteps = 3
	}
	if err := sim.CheckEpisodeInvariants(opts.Invariants, &r); err != nil {
		return r, err
	}
	return r, nil
}

// collisionInvariant flags collided episodes, giving counting-mode runs a
// nonzero invariant_violations map to carry across the wire.
type collisionInvariant struct{}

func (collisionInvariant) Name() string                 { return "test-no-collision" }
func (collisionInvariant) CheckStep(sim.StepInfo) error { return nil }
func (collisionInvariant) CheckEpisode(r *sim.Result) error {
	if r.Collided {
		return fmt.Errorf("collided")
	}
	return nil
}

func synthResolver(name string) (campaign.EpisodeFunc, []sim.Invariant, error) {
	switch name {
	case "synthetic":
		return synthEpisode, nil, nil
	case "synthetic-counting":
		return synthEpisode, []sim.Invariant{collisionInvariant{}}, nil
	}
	return nil, nil, fmt.Errorf("dist test: unknown workload %q", name)
}

// synthSpec builds the test campaign matching a resolver workload.
func synthSpec(name string, episodes, shards int) (campaign.Spec, string) {
	workload := "synthetic"
	spec := campaign.Spec{Name: name, Episodes: episodes, BaseSeed: 3, Shards: shards}
	return spec, workload
}

// shardAggregate computes one shard's aggregate the way a worker would.
func shardAggregate(t *testing.T, spec campaign.Spec, shard int) *campaign.ShardStats {
	t.Helper()
	agg := &campaign.ShardStats{}
	lo, _ := spec.ShardRange(shard)
	if err := campaign.RunShard(spec, synthEpisode, shard, lo, agg, nil); err != nil {
		t.Fatal(err)
	}
	return agg
}

func leaseReq(worker string, fp campaign.Fingerprint) Request {
	return Request{Op: OpLease, Worker: worker, Fingerprint: &fp}
}

func resultReq(worker string, fp campaign.Fingerprint, shard int, agg *campaign.ShardStats) Request {
	return Request{Op: OpResult, Worker: worker, Fingerprint: &fp, Shard: shard, Stats: agg, Sum: ShardSum(agg)}
}

// TestCoordinatorLeaseExpiryReassignment drives the full crash story
// with a fake clock: worker A leases a shard and goes silent, the lease
// expires, the shard is reassigned to B, A's stale renewal is refused —
// and when A's late result arrives anyway it is accepted (the bytes are
// deterministic, so they are the right bytes), with B's eventual copy
// acknowledged as a benign duplicate.
func TestCoordinatorLeaseExpiryReassignment(t *testing.T) {
	spec, workload := synthSpec("lease-expiry", 40, 4)
	fp := spec.Fingerprint()
	fc := NewFakeClock(time.Unix(0, 0))
	c, err := NewCoordinator(Config{Spec: spec, Workload: workload, LeaseTTL: time.Second, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}

	la := c.Dispatch(leaseReq("A", fp))
	if !la.OK || la.Assign == nil || la.Assign.Shard != 0 {
		t.Fatalf("A's first lease: %+v", la)
	}

	// Before expiry the shard must NOT be reassigned: B gets shard 1.
	if lb := c.Dispatch(leaseReq("B", fp)); lb.Assign == nil || lb.Assign.Shard != 1 {
		t.Fatalf("B leased %+v while A's lease was live", lb.Assign)
	}

	// A renews in time; the lease extends from the renewal instant.
	fc.Advance(900 * time.Millisecond)
	if r := c.Dispatch(Request{Op: OpRenew, Worker: "A", Fingerprint: &fp, Shard: 0}); !r.OK {
		t.Fatalf("in-time renewal refused: %+v", r)
	}
	fc.Advance(900 * time.Millisecond)
	if n := c.ExpireLeases(); n != 1 {
		// B's shard-1 lease (granted 1.8s ago, TTL 1s) expires; A's
		// renewed shard-0 lease (0.9s old) survives.
		t.Fatalf("expired %d leases, want 1 (B's)", n)
	}

	// Now A goes silent past its TTL.
	fc.Advance(1100 * time.Millisecond)
	if n := c.ExpireLeases(); n != 1 {
		t.Fatalf("expired %d leases, want 1 (A's)", n)
	}

	// B asks again: shard 0 (lowest pending) comes back — a reassignment.
	lb := c.Dispatch(leaseReq("B", fp))
	if lb.Assign == nil || lb.Assign.Shard != 0 {
		t.Fatalf("reassignment gave B %+v, want shard 0", lb.Assign)
	}

	// A's stale renewal is refused with the machine-readable reason.
	if r := c.Dispatch(Request{Op: OpRenew, Worker: "A", Fingerprint: &fp, Shard: 0}); r.OK || r.Reason != ReasonLeaseLost {
		t.Fatalf("stale renewal: %+v, want %s", r, ReasonLeaseLost)
	}

	// A was slow, not wrong: its late shard-0 result still folds.
	agg := shardAggregate(t, spec, 0)
	if r := c.Dispatch(resultReq("A", fp, 0, agg)); !r.OK {
		t.Fatalf("late result refused: %+v", r)
	}
	// B finishes the same shard: same bytes, benign duplicate.
	if r := c.Dispatch(resultReq("B", fp, 0, shardAggregate(t, spec, 0))); !r.OK || !r.Duplicate {
		t.Fatalf("duplicate result: %+v, want OK duplicate", r)
	}

	ctr := c.Counters()
	if ctr.LeasesExpired != 2 || ctr.Reassignments != 1 || ctr.ResultsLate != 1 ||
		ctr.ResultsDuplicate != 1 || ctr.ResultsAccepted != 1 || ctr.LeasesRenewed != 1 {
		t.Fatalf("counters %+v", ctr)
	}
}

// TestCoordinatorMismatchPoisons: a duplicate result whose bytes differ
// from the accepted ones is a determinism violation — the campaign fails
// loudly and permanently rather than folding either copy.
func TestCoordinatorMismatchPoisons(t *testing.T) {
	spec, workload := synthSpec("mismatch", 40, 4)
	fp := spec.Fingerprint()
	c, err := NewCoordinator(Config{Spec: spec, Workload: workload, Clock: NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Dispatch(resultReq("A", fp, 0, shardAggregate(t, spec, 0))); !r.OK {
		t.Fatalf("first result refused: %+v", r)
	}
	// Same episode count, different content: a plausible-but-wrong copy.
	bad := shardAggregate(t, spec, 0)
	bad.Reached--
	bad.Timeouts++
	r := c.Dispatch(resultReq("B", fp, 0, bad))
	if r.OK || r.Reason != ReasonStatsMismatch {
		t.Fatalf("mismatched duplicate: %+v, want %s", r, ReasonStatsMismatch)
	}
	if c.Failed() == nil {
		t.Fatal("campaign not poisoned after mismatch")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done() open after poisoning")
	}
	if _, err := c.WaitResult(); err == nil {
		t.Fatal("WaitResult succeeded on a poisoned campaign")
	}
	// Every later request fails closed.
	if l := c.Dispatch(leaseReq("C", fp)); l.OK {
		t.Fatalf("lease granted on poisoned campaign: %+v", l)
	}
}

// TestCoordinatorRejectsBadInput covers the protocol guard rails: wrong
// fingerprint, corrupted payload (bad sum), wrong episode coverage, and
// unknown ops all get machine-readable rejections without state damage.
func TestCoordinatorRejectsBadInput(t *testing.T) {
	spec, workload := synthSpec("guards", 40, 4)
	fp := spec.Fingerprint()
	c, err := NewCoordinator(Config{Spec: spec, Workload: workload, Clock: NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}

	wrong := fp
	wrong.BaseSeed++
	if r := c.Dispatch(leaseReq("A", wrong)); r.OK || r.Reason != ReasonFingerprint {
		t.Fatalf("wrong-fingerprint lease: %+v", r)
	}
	if r := c.Dispatch(Request{Op: OpLease, Worker: "A"}); r.OK || r.Reason != ReasonFingerprint {
		t.Fatalf("missing-fingerprint lease: %+v", r)
	}

	agg := shardAggregate(t, spec, 0)
	req := resultReq("A", fp, 0, agg)
	req.Sum = "deadbeef"
	if r := c.Dispatch(req); r.OK || r.Reason != ReasonBadSum {
		t.Fatalf("corrupted payload: %+v", r)
	}

	short := shardAggregate(t, spec, 0)
	short.Episodes--
	if r := c.Dispatch(resultReq("A", fp, 0, short)); r.OK || r.Reason != ReasonBadRequest {
		t.Fatalf("partial shard accepted: %+v", r)
	}

	if r := c.Dispatch(Request{Op: "gossip", Worker: "A"}); r.OK || r.Reason != ReasonBadRequest {
		t.Fatalf("unknown op: %+v", r)
	}
	if r := c.Dispatch(Request{Op: OpHello}); r.OK || r.Reason != ReasonBadRequest {
		t.Fatalf("anonymous hello: %+v", r)
	}
	if ctr := c.Counters(); ctr.ShardsDone != 0 || ctr.ResultsBadSum != 1 {
		t.Fatalf("counters after rejects: %+v", ctr)
	}
}

// TestCoordinatorDrainQuiesces: draining stops admissions immediately,
// still accepts the in-flight result, and closes Done() once no lease is
// outstanding; WaitResult reports ErrDraining for the incomplete
// campaign.
func TestCoordinatorDrainQuiesces(t *testing.T) {
	spec, workload := synthSpec("drain", 40, 4)
	fp := spec.Fingerprint()
	c, err := NewCoordinator(Config{Spec: spec, Workload: workload, Clock: NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	la := c.Dispatch(leaseReq("A", fp))
	if la.Assign == nil {
		t.Fatalf("lease: %+v", la)
	}
	c.Drain()
	if l := c.Dispatch(leaseReq("B", fp)); !l.Done {
		t.Fatalf("post-drain lease %+v, want Done", l)
	}
	select {
	case <-c.Done():
		t.Fatal("quiesced with a lease still in flight")
	default:
	}
	if r := c.Dispatch(resultReq("A", fp, la.Assign.Shard, shardAggregate(t, spec, la.Assign.Shard))); !r.OK {
		t.Fatalf("in-flight result refused during drain: %+v", r)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done() open after last in-flight lease resolved")
	}
	if _, err := c.WaitResult(); !errors.Is(err, ErrDraining) {
		t.Fatalf("WaitResult after drain: %v, want ErrDraining", err)
	}
}

// TestCoordinatorCheckpointHandoff: a coordinator that accepted some
// shards and drained leaves a checkpoint a FRESH coordinator — or a
// plain single-process campaign.Run — resumes from, and the finished
// statistics are byte-identical to an undisturbed run.  The checkpoint
// format deliberately carries no topology.
func TestCoordinatorCheckpointHandoff(t *testing.T) {
	spec, workload := synthSpec("handoff", 60, 6)
	spec.CheckpointPath = filepath.Join(t.TempDir(), "coord.json")
	fp := spec.Fingerprint()
	c, err := NewCoordinator(Config{Spec: spec, Workload: workload, Clock: NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 3; shard++ {
		if r := c.Dispatch(resultReq("A", fp, shard, shardAggregate(t, spec, shard))); !r.OK {
			t.Fatalf("shard %d: %+v", shard, r)
		}
	}
	c.Drain()

	c2, err := NewCoordinator(Config{Spec: spec, Workload: workload, Clock: NewFakeClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if ctr := c2.Counters(); ctr.ResumedShards != 3 || ctr.ShardsDone != 3 {
		t.Fatalf("resumed coordinator counters: %+v", ctr)
	}
	// The resumed coordinator must not re-grant completed shards.
	if l := c2.Dispatch(leaseReq("B", fp)); l.Assign == nil || l.Assign.Shard != 3 {
		t.Fatalf("resumed lease %+v, want shard 3", l.Assign)
	}
	for shard := 3; shard < 6; shard++ {
		if r := c2.Dispatch(resultReq("B", fp, shard, shardAggregate(t, spec, shard))); !r.OK {
			t.Fatalf("shard %d: %+v", shard, r)
		}
	}
	got, err := c2.WaitResult()
	if err != nil {
		t.Fatal(err)
	}

	ref := spec
	ref.CheckpointPath = ""
	rep, err := campaign.Run(ref, synthEpisode)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsIdentical(t, rep.Stats, got)
}
