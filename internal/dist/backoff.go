package dist

import (
	"math/rand"
	"time"
)

// Backoff computes jittered exponential retry delays: attempt k draws
// uniformly from [Base, min(Cap, Base·Factor^k)] ("decorrelated-lite"
// full jitter with a floor).  The floor is what prevents the classic
// zero-delay busy loop: however the RNG lands, a retry always waits at
// least Base.  The jitter source is injected (never a global stream) so
// retry schedules are reproducible under test and two workers sharing a
// machine never phase-lock their retries against the coordinator.
type Backoff struct {
	// Base is the minimum (and first-attempt maximum) delay.  Zero
	// selects DefaultBackoffBase.
	Base time.Duration
	// Cap bounds the delay from above.  Zero selects DefaultBackoffCap.
	Cap time.Duration
	// Factor is the exponential growth per attempt; values below 1
	// (including zero) select 2.
	Factor float64

	// Rng draws the jitter.  Nil panics in Next — the caller owns stream
	// derivation, and a silently-created global-seeded stream would be
	// exactly the nondeterminism this package is built to keep out.
	Rng *rand.Rand

	attempt int
}

// Default backoff bounds: 50 ms growing to 5 s.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 5 * time.Second
)

func (b *Backoff) bounds() (base, cap time.Duration, factor float64) {
	base, cap, factor = b.Base, b.Cap, b.Factor
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if cap < base {
		cap = base
	}
	if factor < 1 {
		factor = 2
	}
	return base, cap, factor
}

// Next returns the delay for the current attempt and advances the
// attempt counter.  The result is always within [Base, Cap].
func (b *Backoff) Next() time.Duration {
	base, cap, factor := b.bounds()
	ceil := float64(base)
	for i := 0; i < b.attempt; i++ {
		ceil *= factor
		if ceil >= float64(cap) {
			ceil = float64(cap)
			break
		}
	}
	b.attempt++
	lo, hi := float64(base), ceil
	d := time.Duration(lo + b.Rng.Float64()*(hi-lo))
	if d < base {
		d = base
	}
	if d > cap {
		d = cap
	}
	return d
}

// Reset rewinds the attempt counter after a success, so the next failure
// starts again from Base.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays Next has handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
