package dist

import (
	"sync"
	"time"
)

// Clock is the package's single wall-clock seam.  Everything in
// internal/dist that needs time — lease expiry, heartbeat cadence,
// backoff sleeps, RPC deadlines — goes through a Clock, and this file is
// the only one allowed to touch the time package's clock functions
// (scripts/lint_determinism.sh enforces it).  Tests substitute a
// FakeClock and drive lease expiry and backoff schedules to the exact
// nanosecond, which is what makes the failure-mode tests deterministic
// instead of sleep-and-hope.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After fires once after d (the select-friendly form of Sleep).
	After(d time.Duration) <-chan time.Time
}

// RealClock is the production Clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually-advanced Clock for deterministic tests.  Sleep
// and After complete when Advance moves the clock past their deadline.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(at time.Time) *FakeClock { return &FakeClock{now: at} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it blocks until Advance passes the deadline.
func (c *FakeClock) Sleep(d time.Duration) { <-c.After(d) }

// After implements Clock.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward, releasing every sleeper whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	keep := c.waiters[:0]
	var fire []chan time.Time
	for _, w := range c.waiters {
		if !w.at.After(now) {
			fire = append(fire, w.ch)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
	for _, ch := range fire {
		ch <- now
	}
}
