package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Server exposes a Coordinator over TCP: one line-delimited JSON Request
// per line in, one Response per line out, strictly in order per
// connection.  It also runs the lease-expiry sweeper (the coordinator
// itself is passive) and serves /metrics + /healthz as an http.Handler.
type Server struct {
	coord *Coordinator
	clock Clock

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closing  bool

	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup
}

// NewServer wraps a coordinator and starts its lease sweeper.  Call
// Close to release it.
func NewServer(coord *Coordinator) *Server {
	s := &Server{
		coord: coord,
		clock: coord.clock,
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.sweeper()
	return s
}

// Coordinator returns the wrapped coordinator.
func (s *Server) Coordinator() *Coordinator { return s.coord }

// sweeper expires overdue leases on a quarter-TTL cadence so a crashed
// worker's shard returns to the pool even when no other worker happens
// to poke the coordinator.
func (s *Server) sweeper() {
	defer s.wg.Done()
	period := s.coord.cfg.LeaseTTL / 4
	if period <= 0 {
		period = time.Second
	}
	for {
		select {
		case <-s.quit:
			return
		case <-s.coord.Done():
			return
		case <-s.clock.After(period):
			s.coord.ExpireLeases()
		}
	}
}

// ListenAndServe listens on addr and serves the worker protocol until
// Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts worker connections on ln until Close.  It returns nil
// after Close, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("dist: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Addr returns the protocol listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting, drops every connection, stops the sweeper, and
// waits for all server goroutines to exit.  The coordinator's state —
// accepted shards, checkpoint file — is untouched.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.quitOnce.Do(func() { close(s.quit) })
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// handleConn reads one Request per line and answers through the
// coordinator.  Malformed lines get a bad-request response; a read error
// ends the connection (the worker's leases survive until they expire —
// connections carry requests, not ownership).
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	dec.DisallowUnknownFields()
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			var syn *json.SyntaxError
			var typ *json.UnmarshalTypeError
			if errors.As(err, &syn) || errors.As(err, &typ) || strings.HasPrefix(err.Error(), "json: unknown field") {
				enc.Encode(Response{OK: false, Reason: ReasonBadRequest, Error: "malformed request: " + err.Error()})
			}
			return
		}
		if err := enc.Encode(s.coord.Dispatch(req)); err != nil {
			return
		}
	}
}

// ServeHTTP exposes /healthz (liveness; 503 once draining or done, so
// orchestrators stop routing new workers here) and /metrics (the
// coordinator's fault-tolerance counters).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		ctr := s.coord.Counters()
		if ctr.Draining || ctr.Complete || s.coord.Failed() != nil {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case "/metrics":
		payload := struct {
			Campaign CampaignInfo `json:"campaign"`
			Counters Counters     `json:"counters"`
			Error    string       `json:"error,omitempty"`
		}{Campaign: s.coord.Info(), Counters: s.coord.Counters()}
		if err := s.coord.Failed(); err != nil {
			payload.Error = err.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	default:
		http.NotFound(w, r)
	}
}
