package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"safeplan/internal/campaign"
)

// Default coordinator timing.
const (
	// DefaultLeaseTTL bounds how long a silent worker holds a shard
	// before it is reassigned.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultRetryAfter is the wait hint handed to workers when every
	// shard is leased or done.
	DefaultRetryAfter = 250 * time.Millisecond
)

// Config configures a Coordinator.
type Config struct {
	// Spec is the campaign to distribute.  Spec.Workers and
	// Spec.BatchSize are worker-local concerns and ignored here; the
	// coordinator owns only the shard plan and the fold.  When
	// Spec.CheckpointPath is set the coordinator checkpoints accepted
	// shard results there (campaign checkpoint format, so a partial
	// distributed campaign can be finished by single-process Run and
	// vice versa) and resumes from it on construction.
	Spec campaign.Spec

	// Workload names the episode function in the internal/workloads
	// registry.  The coordinator never runs episodes itself; it ships
	// this name to workers, which must resolve it identically.
	Workload string

	// LeaseTTL bounds worker silence per shard; 0 selects
	// DefaultLeaseTTL.  RetryAfter is the backpressure hint when no
	// shard is grantable; 0 selects DefaultRetryAfter.
	LeaseTTL   time.Duration
	RetryAfter time.Duration

	// Clock injects time for lease bookkeeping; nil selects RealClock.
	Clock Clock
}

// shard lease states.
const (
	shardPending = iota
	shardLeased
	shardDone
)

type shardState struct {
	state  int
	owner  string
	expiry time.Time
	// granted counts how many times the shard was leased; grants beyond
	// the first are reassignments (expiry or worker churn).
	granted int
}

// Counters is a snapshot of the coordinator's fault-tolerance telemetry,
// the payload behind the /metrics surface.  Everything here is
// observability only: no counter value ever feeds the statistics fold.
type Counters struct {
	WorkersSeen       int64 `json:"workers_seen"`
	LeasesGranted     int64 `json:"leases_granted"`
	LeasesRenewed     int64 `json:"leases_renewed"`
	LeasesExpired     int64 `json:"leases_expired"`
	Reassignments     int64 `json:"reassignments"`
	ResultsAccepted   int64 `json:"results_accepted"`
	ResultsLate       int64 `json:"results_late"`
	ResultsDuplicate  int64 `json:"results_duplicate"`
	ResultsMismatched int64 `json:"results_mismatched"`
	ResultsBadSum     int64 `json:"results_bad_sum"`
	WorkerRetries     int64 `json:"worker_retries"`
	ShardsDone        int64 `json:"shards_done"`
	ShardsTotal       int64 `json:"shards_total"`
	ResumedShards     int64 `json:"resumed_shards"`
	EpisodesDone      int64 `json:"episodes_done"`
	Draining          bool  `json:"draining"`
	Complete          bool  `json:"complete"`
}

// Coordinator owns a campaign's shard plan and drives it to completion
// through any number of (possibly crashing) workers.  It is a passive
// state machine: every transition happens inside a worker request or an
// explicit ExpireLeases call, so tests drive it deterministically with a
// FakeClock and the server wraps it with a real sweeper goroutine.
type Coordinator struct {
	cfg   Config
	clock Clock
	fp    campaign.Fingerprint
	info  CampaignInfo

	mu       sync.Mutex
	shards   []shardState
	done     map[int]*campaign.ShardStats
	sums     map[int]string
	workers  map[string]int64 // worker ID → last reported retry count
	ctr      Counters
	draining bool
	failed   error
	// finished closes exactly once, when every shard is done, the
	// campaign is poisoned, or a drain has quiesced (no lease in
	// flight); closed guards the single close.
	finished chan struct{}
	closed   bool
	// sinceSave counts accepted shards since the last checkpoint write.
	sinceSave int
}

// NewCoordinator validates the campaign, resumes from the spec's
// checkpoint if one exists, and returns a coordinator ready to serve.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Workload == "" {
		return nil, fmt.Errorf("dist: empty workload name")
	}
	spec := cfg.Spec
	n := spec.NumShards()
	if n <= 0 {
		return nil, fmt.Errorf("dist: campaign %q has no shards (episodes %d)", spec.Name, spec.Episodes)
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	c := &Coordinator{
		cfg:   cfg,
		clock: cfg.Clock,
		fp:    spec.Fingerprint(),
		info: CampaignInfo{
			Name:            spec.Name,
			Workload:        cfg.Workload,
			Episodes:        spec.Episodes,
			BaseSeed:        spec.BaseSeed,
			Shards:          n,
			CountViolations: spec.CountViolations,
			Fingerprint:     spec.Fingerprint(),
		},
		shards:   make([]shardState, n),
		done:     make(map[int]*campaign.ShardStats, n),
		sums:     make(map[int]string, n),
		workers:  make(map[string]int64),
		finished: make(chan struct{}),
	}
	c.ctr.ShardsTotal = int64(n)
	if spec.CheckpointPath != "" {
		loaded, err := campaign.LoadShardCheckpoint(spec.CheckpointPath, c.fp)
		if err != nil {
			return nil, err
		}
		for i, agg := range loaded {
			if i >= n {
				continue
			}
			c.shards[i].state = shardDone
			c.done[i] = agg
			c.sums[i] = ShardSum(agg)
			c.ctr.ResumedShards++
			c.ctr.ShardsDone++
			c.ctr.EpisodesDone += agg.Episodes
		}
	}
	if len(c.done) == n {
		c.ctr.Complete = true
		c.closeFinishedLocked()
	}
	return c, nil
}

// closeFinishedLocked closes the completion channel exactly once.
// Caller holds c.mu (or owns c exclusively during construction).
func (c *Coordinator) closeFinishedLocked() {
	if !c.closed {
		c.closed = true
		close(c.finished)
	}
}

// maybeQuiesceLocked finishes a drain once no lease is in flight: with
// admissions stopped and nothing outstanding, no further result can
// arrive, so waiting any longer is pointless.  Caller holds c.mu.
func (c *Coordinator) maybeQuiesceLocked() {
	if !c.draining || c.closed {
		return
	}
	for i := range c.shards {
		if c.shards[i].state == shardLeased {
			return
		}
	}
	c.closeFinishedLocked()
}

// Info returns the campaign descriptor handed to joining workers.
func (c *Coordinator) Info() CampaignInfo { return c.info }

// Done returns a channel closed when the campaign completes or fails.
func (c *Coordinator) Done() <-chan struct{} { return c.finished }

// Result folds the completed shards into final campaign statistics —
// byte-identical to single-process Run — or reports the poisoning error.
// It fails if the campaign has not finished.
func (c *Coordinator) Result() (campaign.Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return campaign.Stats{}, c.failed
	}
	if int(c.ctr.ShardsDone) != len(c.shards) {
		return campaign.Stats{}, fmt.Errorf("dist: campaign %q incomplete: %d/%d shards done",
			c.cfg.Spec.Name, c.ctr.ShardsDone, len(c.shards))
	}
	return campaign.FoldShards(c.cfg.Spec, c.done)
}

// Counters snapshots the fault-tolerance telemetry.
func (c *Coordinator) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.ctr
	ctr.Draining = c.draining
	return ctr
}

// Drain stops granting leases: subsequent lease requests get Done, so
// workers finish their in-flight shards (whose results are still
// accepted) and exit.  Once the last in-flight lease resolves — result
// submitted or lease expired — Done() closes.  Used for graceful SIGTERM
// shutdown; checkpointed shards survive for a later resume.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
	c.maybeQuiesceLocked()
}

// ExpireLeases releases every lease whose deadline has passed, returning
// the shards to pending.  The server calls this on a timer; tests call it
// directly after advancing a FakeClock.
func (c *Coordinator) ExpireLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expireLocked(c.clock.Now())
}

func (c *Coordinator) expireLocked(now time.Time) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		if s.state == shardLeased && now.After(s.expiry) {
			s.state = shardPending
			s.owner = ""
			c.ctr.LeasesExpired++
			n++
		}
	}
	if n > 0 {
		c.maybeQuiesceLocked()
	}
	return n
}

// Dispatch routes one worker request to its handler.  It is the single
// protocol entry point shared by the TCP server and the in-process tests.
func (c *Coordinator) Dispatch(req Request) Response {
	switch req.Op {
	case OpHello:
		return c.Hello(req)
	case OpLease:
		return c.Lease(req)
	case OpRenew:
		return c.Renew(req)
	case OpResult:
		return c.SubmitResult(req)
	case OpBye:
		return Response{Op: OpBye, OK: true}
	default:
		return Response{Op: req.Op, OK: false, Reason: ReasonBadRequest,
			Error: fmt.Sprintf("dist: unknown op %q", req.Op)}
	}
}

// note records worker sighting and retry telemetry.  Caller holds c.mu.
func (c *Coordinator) noteLocked(req Request) {
	if req.Worker == "" {
		return
	}
	prev, seen := c.workers[req.Worker]
	if !seen {
		c.ctr.WorkersSeen++
	}
	if req.Retries > prev {
		c.ctr.WorkerRetries += req.Retries - prev
	}
	c.workers[req.Worker] = req.Retries
}

// checkFingerprint guards shard-touching ops.  Caller holds c.mu.
func (c *Coordinator) checkFingerprint(op string, req Request) (Response, bool) {
	if req.Fingerprint == nil || *req.Fingerprint != c.fp {
		return Response{Op: op, OK: false, Reason: ReasonFingerprint,
			Error: fmt.Sprintf("dist: request fingerprint %+v does not match campaign %+v", req.Fingerprint, c.fp)}, false
	}
	return Response{}, true
}

// Hello admits a worker and returns the campaign descriptor.
func (c *Coordinator) Hello(req Request) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Worker == "" {
		return Response{Op: OpHello, OK: false, Reason: ReasonBadRequest, Error: "dist: hello without worker ID"}
	}
	c.noteLocked(req)
	info := c.info
	return Response{Op: OpHello, OK: true, Campaign: &info}
}

// Lease grants a pending shard under a fresh lease.  Preference order:
// the worker's requested shard (it holds a checkpoint for it), else the
// lowest pending shard — lowest-first keeps smoke runs predictable but is
// not load-bearing; ANY assignment order folds identically.
func (c *Coordinator) Lease(req Request) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteLocked(req)
	if resp, ok := c.checkFingerprint(OpLease, req); !ok {
		return resp
	}
	if c.failed != nil {
		return Response{Op: OpLease, OK: false, Reason: ReasonStatsMismatch, Error: c.failed.Error(), Done: true}
	}
	now := c.clock.Now()
	c.expireLocked(now)
	if c.draining || int(c.ctr.ShardsDone) == len(c.shards) {
		return Response{Op: OpLease, OK: true, Done: true}
	}
	pick := -1
	if req.Prefer != nil {
		if i := *req.Prefer; i >= 0 && i < len(c.shards) && c.shards[i].state == shardPending {
			pick = i
		}
	}
	if pick < 0 {
		for i := range c.shards {
			if c.shards[i].state == shardPending {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		// Everything is leased or done: back off and ask again (a lease
		// may expire, finishing may need this worker yet).
		return Response{Op: OpLease, OK: true, Wait: true, RetryMS: c.cfg.RetryAfter.Milliseconds()}
	}
	s := &c.shards[pick]
	s.state = shardLeased
	s.owner = req.Worker
	s.expiry = now.Add(c.cfg.LeaseTTL)
	s.granted++
	c.ctr.LeasesGranted++
	if s.granted > 1 {
		c.ctr.Reassignments++
	}
	lo, hi := c.cfg.Spec.ShardRange(pick)
	return Response{Op: OpLease, OK: true, Assign: &Assignment{
		Shard: pick, Lo: lo, Hi: hi, LeaseMS: c.cfg.LeaseTTL.Milliseconds(),
	}}
}

// Renew extends a held lease.  A renewal for a lease the worker no longer
// holds — expired and reassigned, or completed by someone else — returns
// ReasonLeaseLost so the worker abandons the shard instead of wasting
// episodes it cannot submit first.
func (c *Coordinator) Renew(req Request) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteLocked(req)
	if resp, ok := c.checkFingerprint(OpRenew, req); !ok {
		return resp
	}
	now := c.clock.Now()
	c.expireLocked(now)
	if req.Shard < 0 || req.Shard >= len(c.shards) {
		return Response{Op: OpRenew, OK: false, Reason: ReasonBadRequest,
			Error: fmt.Sprintf("dist: renew shard %d outside [0, %d)", req.Shard, len(c.shards))}
	}
	s := &c.shards[req.Shard]
	if s.state != shardLeased || s.owner != req.Worker {
		return Response{Op: OpRenew, OK: false, Reason: ReasonLeaseLost,
			Error: fmt.Sprintf("dist: worker %s no longer holds shard %d", req.Worker, req.Shard)}
	}
	s.expiry = now.Add(c.cfg.LeaseTTL)
	c.ctr.LeasesRenewed++
	return Response{Op: OpRenew, OK: true, LeaseMS: c.cfg.LeaseTTL.Milliseconds()}
}

// SubmitResult folds one completed shard aggregate, exactly once.
//
// Admission is deliberately more generous than leasing: a result is
// accepted even if the submitter's lease expired (a late result from a
// slow-but-alive worker is still the correct bytes — determinism means
// the shard's content does not depend on who computes it), and a result
// for an already-done shard is acknowledged as a benign duplicate when
// its sum matches the accepted one.  A duplicate with a DIFFERENT sum is
// a determinism violation and poisons the whole campaign: folding either
// copy could silently publish wrong statistics, so nothing is folded and
// every subsequent request fails loudly.
func (c *Coordinator) SubmitResult(req Request) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteLocked(req)
	if resp, ok := c.checkFingerprint(OpResult, req); !ok {
		return resp
	}
	if c.failed != nil {
		return Response{Op: OpResult, OK: false, Reason: ReasonStatsMismatch, Error: c.failed.Error(), Done: true}
	}
	if req.Shard < 0 || req.Shard >= len(c.shards) || req.Stats == nil {
		return Response{Op: OpResult, OK: false, Reason: ReasonBadRequest,
			Error: fmt.Sprintf("dist: result for shard %d missing stats or out of range", req.Shard)}
	}
	// Transport-integrity check: the aggregate must hash to the sum the
	// worker computed before sending.
	sum := ShardSum(req.Stats)
	if req.Sum != sum {
		c.ctr.ResultsBadSum++
		return Response{Op: OpResult, OK: false, Reason: ReasonBadSum,
			Error: fmt.Sprintf("dist: shard %d result sum %.12s… does not match payload %.12s…", req.Shard, req.Sum, sum)}
	}
	// Shape check: the aggregate must cover exactly the shard's episode
	// range.  A worker submitting a partial shard is a protocol bug.
	lo, hi := c.cfg.Spec.ShardRange(req.Shard)
	if req.Stats.Episodes != int64(hi-lo) {
		return Response{Op: OpResult, OK: false, Reason: ReasonBadRequest,
			Error: fmt.Sprintf("dist: shard %d aggregate covers %d episodes, want %d", req.Shard, req.Stats.Episodes, hi-lo)}
	}
	s := &c.shards[req.Shard]
	if s.state == shardDone {
		if c.sums[req.Shard] == sum {
			c.ctr.ResultsDuplicate++
			return Response{Op: OpResult, OK: true, Duplicate: true}
		}
		c.ctr.ResultsMismatched++
		c.failed = fmt.Errorf("dist: campaign %q poisoned: shard %d result from %s (sum %.12s…) contradicts accepted result (sum %.12s…): same shard, different bytes — determinism violation",
			c.cfg.Spec.Name, req.Shard, req.Worker, sum, c.sums[req.Shard])
		c.closeFinishedLocked()
		return Response{Op: OpResult, OK: false, Reason: ReasonStatsMismatch, Error: c.failed.Error()}
	}
	if s.state == shardLeased && s.owner != req.Worker {
		// Late result from a worker whose lease expired and whose shard
		// was reassigned: the bytes are still correct, accept them.  The
		// reassigned worker's eventual submission becomes a duplicate.
		c.ctr.ResultsLate++
	}
	s.state = shardDone
	s.owner = ""
	c.done[req.Shard] = req.Stats
	c.sums[req.Shard] = sum
	c.ctr.ResultsAccepted++
	c.ctr.ShardsDone++
	c.ctr.EpisodesDone += req.Stats.Episodes
	complete := int(c.ctr.ShardsDone) == len(c.shards)
	if err := c.maybeCheckpointLocked(complete); err != nil {
		c.failed = fmt.Errorf("dist: campaign %q: checkpoint: %w", c.cfg.Spec.Name, err)
		c.closeFinishedLocked()
		return Response{Op: OpResult, OK: false, Reason: ReasonBadRequest, Error: c.failed.Error()}
	}
	if complete {
		c.ctr.Complete = true
		c.closeFinishedLocked()
	} else {
		c.maybeQuiesceLocked()
	}
	return Response{Op: OpResult, OK: true, Done: complete}
}

// maybeCheckpointLocked persists accepted shards per the spec's
// checkpoint cadence.  Caller holds c.mu.
func (c *Coordinator) maybeCheckpointLocked(force bool) error {
	if c.cfg.Spec.CheckpointPath == "" {
		return nil
	}
	c.sinceSave++
	every := c.cfg.Spec.CheckpointEvery
	if every == 0 {
		every = 1
	}
	if !force && c.sinceSave < every {
		return nil
	}
	c.sinceSave = 0
	return campaign.SaveShardCheckpoint(c.cfg.Spec.CheckpointPath, c.fp, c.done)
}

// Failed reports whether the campaign has been poisoned, and by what.
func (c *Coordinator) Failed() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// ErrDraining is returned by WaitResult when the coordinator drained
// before the campaign completed.
var ErrDraining = errors.New("dist: coordinator drained before campaign completed")

// WaitResult blocks until the campaign finishes and returns the folded
// statistics.  If the coordinator was drained first, it returns
// ErrDraining (checkpointed shards remain on disk for a later resume).
func (c *Coordinator) WaitResult() (campaign.Stats, error) {
	<-c.finished
	c.mu.Lock()
	failed, incomplete, draining := c.failed, int(c.ctr.ShardsDone) != len(c.shards), c.draining
	c.mu.Unlock()
	if failed == nil && incomplete && draining {
		return campaign.Stats{}, ErrDraining
	}
	return c.Result()
}
