package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"time"

	"safeplan/internal/campaign"
	"safeplan/internal/sim"
)

// Conn is one request/response protocol transport.  The TCP form is
// DialTCP; tests substitute in-process transports, and the chaos harness
// wraps either with fault injection.
type Conn interface {
	// Do performs one round trip.  Any error means the transport is
	// suspect; the worker closes it, redials, and retries under backoff.
	Do(Request) (Response, error)
	Close() error
}

// tcpConn is the production transport: line-delimited JSON over TCP.
type tcpConn struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// DialTCP connects a worker transport to a coordinator address.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpConn{conn: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c)}, nil
}

func (t *tcpConn) Do(req Request) (Response, error) {
	if err := t.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := t.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

func (t *tcpConn) Close() error { return t.conn.Close() }

// Resolver turns a coordinator's workload name into the episode function
// and invariant set, via the worker's own registry (internal/workloads in
// production, synthetic fixtures in tests).  Both sides constructing from
// the same name is what keeps remote episodes byte-identical to local
// ones.
type Resolver func(workload string) (campaign.EpisodeFunc, []sim.Invariant, error)

// Default worker cadences.
const (
	// DefaultHeartbeatEvery renews the lease after this many episodes.
	DefaultHeartbeatEvery = 16
	// DefaultMaxRetries bounds consecutive transport failures before the
	// worker gives up on the coordinator.
	DefaultMaxRetries = 8
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// ID names the worker in leases and telemetry.  Required.
	ID string
	// Dial opens a transport to the coordinator; the worker redials
	// after any transport error.  Required.
	Dial func() (Conn, error)
	// Resolve maps the campaign's workload name to episode + invariants.
	// Required.
	Resolve Resolver

	// CheckpointPath, when set, persists a mid-shard resume point so a
	// restarted worker continues at the exact episode it left off.
	// CheckpointEvery is the save cadence in episodes (0 saves after
	// every episode).
	CheckpointPath  string
	CheckpointEvery int

	// HeartbeatEvery renews the lease after this many episodes; 0
	// selects DefaultHeartbeatEvery.
	HeartbeatEvery int

	// MaxRetries bounds consecutive transport failures (each retried
	// under jittered exponential backoff); 0 selects DefaultMaxRetries.
	MaxRetries int
	// Backoff shapes the retry delays.  Backoff.Rng nil derives a stream
	// from the worker ID, so two workers on one host never phase-lock.
	Backoff Backoff

	// Clock injects time for backoff and wait sleeps; nil selects
	// RealClock.
	Clock Clock

	// AfterEpisode, when non-nil, runs after every folded episode with
	// the shard and the next episode index — the chaos harness's crash
	// seam.  A non-nil return abandons the shard and fails the worker
	// with that error, mid-shard state on disk, exactly like a crash.
	AfterEpisode func(shard, next int) error
}

// WorkerSummary is what a worker accomplished before exiting.
type WorkerSummary struct {
	// ShardsCompleted counts results this worker got accepted (benign
	// duplicates included — the shard is complete either way).
	ShardsCompleted int
	// EpisodesRun counts episodes actually executed here (resumed
	// episodes are not re-run, so they don't count).
	EpisodesRun int
	// Retries counts transport round trips that failed and were retried.
	Retries int64
	// Resumed reports whether a mid-shard checkpoint was used.
	Resumed bool
	// LeasesLost counts shards abandoned because the lease expired.
	LeasesLost int
}

// errLeaseLost aborts RunShard from the heartbeat when the coordinator
// reassigned the shard; the worker abandons it and leases another.
var errLeaseLost = errors.New("dist: lease lost")

// worker is RunWorker's loop state.
type worker struct {
	cfg     WorkerConfig
	clock   Clock
	conn    Conn
	fp      campaign.Fingerprint
	backoff Backoff
	sum     WorkerSummary
}

// RunWorker joins a coordinator, leases shards until the campaign
// completes (or the coordinator drains), and returns what it did.  It
// survives transport failures by redialing under jittered exponential
// backoff, abandons shards whose lease it loses, and — with a
// CheckpointPath — resumes a crashed shard mid-way, byte-identically.
func RunWorker(cfg WorkerConfig) (WorkerSummary, error) {
	if cfg.ID == "" || cfg.Dial == nil || cfg.Resolve == nil {
		return WorkerSummary{}, fmt.Errorf("dist: worker needs ID, Dial, and Resolve")
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	w := &worker{cfg: cfg, clock: cfg.Clock, backoff: cfg.Backoff}
	if w.backoff.Rng == nil {
		// Derive the jitter stream from the worker ID: deterministic per
		// worker, distinct across workers.
		h := fnv.New64a()
		h.Write([]byte(cfg.ID))
		w.backoff.Rng = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	defer func() {
		if w.conn != nil {
			w.conn.Close()
		}
	}()
	err := w.run()
	return w.sum, err
}

// rpc performs one round trip, redialing and retrying on transport
// errors under backoff.  Protocol-level rejections (OK=false) are NOT
// retried here — they are answers, returned to the caller.
func (w *worker) rpc(req Request) (Response, error) {
	req.Worker = w.cfg.ID
	req.Retries = w.sum.Retries
	for {
		if w.conn == nil {
			conn, err := w.cfg.Dial()
			if err != nil {
				if rerr := w.retryDelay(fmt.Errorf("dial: %w", err)); rerr != nil {
					return Response{}, rerr
				}
				continue
			}
			w.conn = conn
		}
		resp, err := w.conn.Do(req)
		if err != nil {
			w.conn.Close()
			w.conn = nil
			if rerr := w.retryDelay(err); rerr != nil {
				return Response{}, rerr
			}
			continue
		}
		w.backoff.Reset()
		return resp, nil
	}
}

// retryDelay books one failed round trip and sleeps the next backoff
// delay, or reports retry exhaustion.
func (w *worker) retryDelay(cause error) error {
	if w.backoff.Attempt() >= w.cfg.MaxRetries {
		return fmt.Errorf("dist: worker %s: coordinator unreachable after %d retries: %w",
			w.cfg.ID, w.cfg.MaxRetries, cause)
	}
	w.sum.Retries++
	w.clock.Sleep(w.backoff.Next())
	return nil
}

func (w *worker) run() error {
	// Join: learn the campaign, rebuild its spec locally, and verify the
	// two sides agree on the fingerprint before touching any shard.
	hello, err := w.rpc(Request{Op: OpHello})
	if err != nil {
		return err
	}
	if !hello.OK || hello.Campaign == nil {
		return fmt.Errorf("dist: worker %s: hello rejected: %s (%s)", w.cfg.ID, hello.Error, hello.Reason)
	}
	info := *hello.Campaign
	episode, invs, err := w.cfg.Resolve(info.Workload)
	if err != nil {
		w.rpc(Request{Op: OpBye}) // best effort; the lease TTL covers us anyway
		return fmt.Errorf("dist: worker %s: %w", w.cfg.ID, err)
	}
	spec := campaign.Spec{
		Name:            info.Name,
		Episodes:        info.Episodes,
		BaseSeed:        info.BaseSeed,
		Shards:          info.Shards,
		Invariants:      invs,
		CountViolations: info.CountViolations,
	}
	if got := spec.Fingerprint(); got != info.Fingerprint {
		return fmt.Errorf("dist: worker %s: rebuilt spec fingerprint %+v does not match coordinator %+v",
			w.cfg.ID, got, info.Fingerprint)
	}
	w.fp = info.Fingerprint

	// Resume: a mid-shard checkpoint names the shard to ask for first.
	var ck *WorkerCheckpoint
	if w.cfg.CheckpointPath != "" {
		ck, err = LoadWorkerCheckpoint(w.cfg.CheckpointPath, w.fp)
		if errors.Is(err, campaign.ErrCorruptCheckpoint) {
			// Corrupt on disk: discard and recompute.  Correctness never
			// depends on the checkpoint, only restart cost does.
			os.Remove(w.cfg.CheckpointPath)
			ck, err = nil, nil
		}
		if err != nil {
			return fmt.Errorf("dist: worker %s: %w", w.cfg.ID, err)
		}
	}

	for {
		req := Request{Op: OpLease, Fingerprint: &w.fp}
		if ck != nil {
			shard := ck.Shard
			req.Prefer = &shard
		}
		lease, err := w.rpc(req)
		if err != nil {
			return err
		}
		switch {
		case !lease.OK:
			return fmt.Errorf("dist: worker %s: lease rejected: %s (%s)", w.cfg.ID, lease.Error, lease.Reason)
		case lease.Done:
			w.rpc(Request{Op: OpBye})
			return nil
		case lease.Wait:
			w.clock.Sleep(time.Duration(lease.RetryMS) * time.Millisecond)
			continue
		case lease.Assign == nil:
			return fmt.Errorf("dist: worker %s: lease response carries no assignment", w.cfg.ID)
		}
		a := *lease.Assign
		if ck != nil && ck.Shard != a.Shard {
			// The checkpointed shard was granted elsewhere (or already
			// finished): the resume point is stale.  Drop it now so this
			// shard's own mid-run checkpoints can't be mistaken for it.
			w.dropCheckpoint()
			ck = nil
		}
		if err := w.runShard(spec, episode, a, ck); err != nil {
			if errors.Is(err, errLeaseLost) {
				w.sum.LeasesLost++
				w.dropCheckpoint()
				ck = nil
				continue
			}
			return err
		}
		ck = nil
	}
}

// runShard executes one leased shard — resuming from a matching
// checkpoint — and submits its aggregate.
func (w *worker) runShard(spec campaign.Spec, episode campaign.EpisodeFunc, a Assignment, ck *WorkerCheckpoint) error {
	agg := &campaign.ShardStats{}
	from := a.Lo
	if ck != nil && ck.Shard == a.Shard && ck.NextEpisode >= a.Lo && ck.NextEpisode <= a.Hi {
		agg = ck.Stats
		from = ck.NextEpisode
		w.sum.Resumed = true
	}
	sinceSave, sinceBeat := 0, 0
	err := campaign.RunShard(spec, episode, a.Shard, from, agg, func(next int) error {
		w.sum.EpisodesRun++
		if w.cfg.AfterEpisode != nil {
			if err := w.cfg.AfterEpisode(a.Shard, next); err != nil {
				return err
			}
		}
		if w.cfg.CheckpointPath != "" {
			sinceSave++
			if sinceSave > w.cfg.CheckpointEvery || next == a.Hi {
				sinceSave = 0
				if err := SaveWorkerCheckpoint(w.cfg.CheckpointPath, WorkerCheckpoint{
					Fingerprint: w.fp, Shard: a.Shard, NextEpisode: next, Stats: agg,
				}); err != nil {
					return err
				}
			}
		}
		if sinceBeat++; sinceBeat >= w.cfg.HeartbeatEvery && next < a.Hi {
			sinceBeat = 0
			beat, err := w.rpc(Request{Op: OpRenew, Fingerprint: &w.fp, Shard: a.Shard, EpisodesDone: agg.Episodes})
			if err != nil {
				return err
			}
			if !beat.OK {
				if beat.Reason == ReasonLeaseLost {
					return errLeaseLost
				}
				return fmt.Errorf("dist: worker %s: renew shard %d: %s (%s)", w.cfg.ID, a.Shard, beat.Error, beat.Reason)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Submit until the coordinator durably has the shard.  A bad-sum
	// rejection (in-flight corruption) resubmits; a benign duplicate is
	// success; a mismatch or poisoning is fatal.
	for {
		resp, err := w.rpc(Request{Op: OpResult, Fingerprint: &w.fp, Shard: a.Shard, Stats: agg, Sum: ShardSum(agg)})
		if err != nil {
			return err
		}
		if resp.OK {
			w.sum.ShardsCompleted++
			w.dropCheckpoint()
			return nil
		}
		if resp.Reason == ReasonBadSum {
			w.sum.Retries++
			w.clock.Sleep(w.backoff.Next())
			continue
		}
		return fmt.Errorf("dist: worker %s: result for shard %d rejected: %s (%s)", w.cfg.ID, a.Shard, resp.Error, resp.Reason)
	}
}

// dropCheckpoint removes the mid-shard resume file once its shard is
// submitted or abandoned.
func (w *worker) dropCheckpoint() {
	if w.cfg.CheckpointPath != "" {
		os.Remove(w.cfg.CheckpointPath)
	}
}
