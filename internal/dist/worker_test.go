package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"safeplan/internal/campaign"
	"safeplan/internal/sim"
)

// assertStatsIdentical compares two campaign Stats at the byte level —
// the distributed tier's contract is byte-identity, not approximate
// equality, so the comparison is on the serialized form the reports and
// goldens use.
func assertStatsIdentical(t *testing.T, want, got campaign.Stats) {
	t.Helper()
	wraw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	graw, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wraw, graw) {
		t.Fatalf("stats differ byte-for-byte:\nwant: %s\ngot:  %s", wraw, graw)
	}
}

// localConn answers requests straight from a coordinator — the
// in-process transport for tests (and the base the chaos transport
// wraps).
type localConn struct{ c *Coordinator }

func (l localConn) Do(req Request) (Response, error) { return l.c.Dispatch(req), nil }
func (l localConn) Close() error                     { return nil }

func localDial(c *Coordinator) func() (Conn, error) {
	return func() (Conn, error) { return localConn{c}, nil }
}

// runWorkers runs n workers concurrently against the coordinator and
// fails on any worker error.
func runWorkers(t *testing.T, c *Coordinator, n int, customize func(i int, cfg *WorkerConfig)) []WorkerSummary {
	t.Helper()
	sums := make([]WorkerSummary, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{
			ID:             fmt.Sprintf("w%d", i),
			Dial:           localDial(c),
			Resolve:        synthResolver,
			HeartbeatEvery: 5,
		}
		if customize != nil {
			customize(i, &cfg)
		}
		wg.Add(1)
		go func(i int, cfg WorkerConfig) {
			defer wg.Done()
			sums[i], errs[i] = RunWorker(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return sums
}

// TestDistByteIdenticalClean is the no-failure differential gate: three
// workers pulling shards from a coordinator produce final statistics
// byte-identical to single-process campaign.Run, for both a plain and a
// counting-mode (invariant-tallying) campaign.
func TestDistByteIdenticalClean(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		counting bool
	}{
		{"plain", "synthetic", false},
		{"counting", "synthetic-counting", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := campaign.Spec{Name: "dist-" + tc.name, Episodes: 800, BaseSeed: 3}
			if tc.counting {
				spec.Invariants = []sim.Invariant{collisionInvariant{}}
				spec.CountViolations = true
			}
			c, err := NewCoordinator(Config{Spec: spec, Workload: tc.workload, RetryAfter: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			sums := runWorkers(t, c, 3, nil)
			got, err := c.WaitResult()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := campaign.Run(spec, synthEpisode)
			if err != nil {
				t.Fatal(err)
			}
			assertStatsIdentical(t, rep.Stats, got)
			if tc.counting && got.InvariantViolations["test-no-collision"] == 0 {
				t.Fatal("counting campaign carried no violations across the wire")
			}
			total := 0
			for _, s := range sums {
				total += s.ShardsCompleted
			}
			if total < spec.NumShards() {
				t.Fatalf("workers completed %d shards, campaign has %d", total, spec.NumShards())
			}
		})
	}
}

// TestWorkerCrashCheckpointResume is the kill-and-rejoin story: a worker
// crashes mid-shard (the AfterEpisode seam), a replacement with the same
// checkpoint path waits out the dead lease, resumes at the exact episode
// the checkpoint recorded, and the finished campaign is byte-identical
// to an undisturbed single-process run.
func TestWorkerCrashCheckpointResume(t *testing.T) {
	spec := campaign.Spec{Name: "crash-resume", Episodes: 60, BaseSeed: 3, Shards: 3}
	c, err := NewCoordinator(Config{
		Spec: spec, Workload: "synthetic",
		LeaseTTL: 50 * time.Millisecond, RetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "worker.json")

	crash := errors.New("injected crash")
	_, err = RunWorker(WorkerConfig{
		ID: "doomed", Dial: localDial(c), Resolve: synthResolver,
		CheckpointPath: ckpt,
		AfterEpisode: func(shard, next int) error {
			if next == 7 {
				return crash
			}
			return nil
		},
	})
	if !errors.Is(err, crash) {
		t.Fatalf("crashed worker returned %v", err)
	}
	ck, err := LoadWorkerCheckpoint(ckpt, spec.Fingerprint())
	if err != nil || ck == nil {
		t.Fatalf("no resume point after crash: %v %v", ck, err)
	}
	if ck.Shard != 0 || ck.NextEpisode != 6 {
		// The crash fired before episode 7's checkpoint was written, so
		// the durable resume point is the previous episode boundary.
		t.Fatalf("resume point %+v, want shard 0 next 6", ck)
	}

	// The dead worker's lease must expire before the shard is grantable.
	time.Sleep(60 * time.Millisecond)

	sum, err := RunWorker(WorkerConfig{
		ID: "revived", Dial: localDial(c), Resolve: synthResolver,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Resumed {
		t.Fatalf("replacement did not resume from the checkpoint: %+v", sum)
	}
	// Shard 0 resumes at episode 6 (14 to run) plus shards 1 and 2 in
	// full: recomputing from scratch would show 60.
	if sum.EpisodesRun != 14+20+20 {
		t.Fatalf("replacement ran %d episodes, want 54 (mid-shard resume)", sum.EpisodesRun)
	}
	got, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(spec, synthEpisode)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsIdentical(t, rep.Stats, got)
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up after completion: %v", err)
	}
}

// TestWorkerDiscardsCorruptCheckpoint: a torn or garbage resume file is
// discarded (recompute, never fold suspect bytes), while a checkpoint
// from a different campaign fails loudly instead.
func TestWorkerDiscardsCorruptCheckpoint(t *testing.T) {
	spec := campaign.Spec{Name: "corrupt-ck", Episodes: 40, BaseSeed: 3, Shards: 2}
	ckpt := filepath.Join(t.TempDir(), "worker.json")
	if err := os.WriteFile(ckpt, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(Config{Spec: spec, Workload: "synthetic", RetryAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunWorker(WorkerConfig{
		ID: "w", Dial: localDial(c), Resolve: synthResolver, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed || sum.EpisodesRun != 40 {
		t.Fatalf("worker must recompute after discarding corruption: %+v", sum)
	}
	got, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(spec, synthEpisode)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsIdentical(t, rep.Stats, got)

	// Wrong-campaign checkpoint: loud, distinct error.
	other := spec
	other.BaseSeed = 99
	if err := SaveWorkerCheckpoint(ckpt, WorkerCheckpoint{
		Fingerprint: other.Fingerprint(), Shard: 0, NextEpisode: 5, Stats: &campaign.ShardStats{Episodes: 5},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = LoadWorkerCheckpoint(ckpt, spec.Fingerprint())
	if err == nil || errors.Is(err, campaign.ErrCorruptCheckpoint) || !strings.Contains(err.Error(), "belongs to campaign") {
		t.Fatalf("wrong-campaign checkpoint: %v, want a distinct fingerprint error", err)
	}
}

// flakyDial fails whole connection attempts before finally handing out a
// working transport — the coordinator-restart/network-partition shape of
// failure, distinct from per-message chaos.
func flakyDial(c *Coordinator, failures int) func() (Conn, error) {
	var mu sync.Mutex
	return func() (Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		if failures > 0 {
			failures--
			return nil, errors.New("connection refused (injected)")
		}
		return localConn{c}, nil
	}
}

// TestWorkerRetriesDialUnderBackoff: a worker facing dial failures keeps
// retrying under its jittered backoff and completes once the coordinator
// is reachable; retry telemetry reaches the coordinator's counters.
func TestWorkerRetriesDialUnderBackoff(t *testing.T) {
	spec := campaign.Spec{Name: "flaky-dial", Episodes: 40, BaseSeed: 3, Shards: 2}
	c, err := NewCoordinator(Config{Spec: spec, Workload: "synthetic", RetryAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunWorker(WorkerConfig{
		ID: "w", Dial: flakyDial(c, 3), Resolve: synthResolver,
		Backoff: Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Retries != 3 {
		t.Fatalf("worker recorded %d retries, want 3", sum.Retries)
	}
	if ctr := c.Counters(); ctr.WorkerRetries != 3 {
		t.Fatalf("coordinator saw %d worker retries, want 3", ctr.WorkerRetries)
	}
	if _, err := c.WaitResult(); err != nil {
		t.Fatal(err)
	}

	// Exhausting MaxRetries is a clean, reported failure — not a hang.
	c2, err := NewCoordinator(Config{Spec: spec, Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWorker(WorkerConfig{
		ID: "unlucky", Dial: flakyDial(c2, 1000), Resolve: synthResolver, MaxRetries: 3,
		Backoff: Backoff{Base: time.Microsecond, Cap: 2 * time.Microsecond},
	})
	if err == nil || !strings.Contains(err.Error(), "unreachable after 3 retries") {
		t.Fatalf("retry exhaustion: %v", err)
	}
}

// TestWorkerRejectsWorkloadSkew: a worker whose registry cannot resolve
// the campaign's workload fails loudly instead of computing something
// else.
func TestWorkerRejectsWorkloadSkew(t *testing.T) {
	spec := campaign.Spec{Name: "skew", Episodes: 40, BaseSeed: 3, Shards: 2}
	c, err := NewCoordinator(Config{Spec: spec, Workload: "not-in-any-registry"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWorker(WorkerConfig{ID: "w", Dial: localDial(c), Resolve: synthResolver})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("workload skew: %v", err)
	}
}

// TestServerTCPEndToEnd runs the real wire path — TCP listener, JSON
// lines, DialTCP workers — plus the /metrics and /healthz surfaces, and
// holds the result to the same byte-identity bar.
func TestServerTCPEndToEnd(t *testing.T) {
	spec := campaign.Spec{Name: "tcp-e2e", Episodes: 400, BaseSeed: 3}
	c, err := NewCoordinator(Config{Spec: spec, Workload: "synthetic", RetryAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("healthz before completion: %d", rr.Code)
	}

	addr := ln.Addr().String()
	runWorkers(t, c, 2, func(i int, cfg *WorkerConfig) {
		cfg.Dial = func() (Conn, error) { return DialTCP(addr) }
	})
	got, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(spec, synthEpisode)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsIdentical(t, rep.Stats, got)

	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("metrics: %d", rr.Code)
	}
	var payload struct {
		Campaign CampaignInfo `json:"campaign"`
		Counters Counters     `json:"counters"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("metrics payload: %v\n%s", err, rr.Body.Bytes())
	}
	if !payload.Counters.Complete || payload.Counters.ShardsDone != int64(spec.NumShards()) {
		t.Fatalf("metrics counters %+v", payload.Counters)
	}
	if payload.Campaign.Workload != "synthetic" {
		t.Fatalf("metrics campaign %+v", payload.Campaign)
	}

	// A finished coordinator reports not-ready so orchestrators stop
	// sending workers.
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 503 {
		t.Fatalf("healthz after completion: %d", rr.Code)
	}
}
