// Package dist is the fault-tolerant distributed campaign tier: a
// coordinator/worker work-distribution protocol that extends the campaign
// engine's determinism contract — byte-identical Stats at any topology —
// across process and machine boundaries, with failure as a first-class
// input.
//
// The coordinator owns a campaign.Spec and its fixed shard plan.  Workers
// connect over line-delimited JSON (the internal/serve transport style),
// acquire shards under time-bounded leases, heartbeat while they run
// episodes, and submit per-shard aggregates.  The coordinator folds
// results with the ordered Chan/Welford merge (campaign.FoldShards), so
// the final Stats are byte-for-byte what a single process computes — for
// any worker count, and through every failure the protocol tolerates:
//
//   - a worker crash or hang: its lease expires and the shard is
//     reassigned to the next worker that asks;
//   - a lost, delayed, or duplicated protocol message: workers retry with
//     jittered exponential backoff, and the coordinator admits duplicate
//     or late shard results exactly once, verifying every copy against
//     the first accepted result's fingerprint — two workers computing the
//     same shard MUST produce identical bytes, and a mismatch aborts the
//     campaign loudly rather than folding corrupt statistics;
//   - a worker restart: fingerprinted mid-shard checkpoints
//     (campaign.WriteFileAtomic durability, campaign.ErrCorruptCheckpoint
//     discard semantics) let a rejoining worker resume at the exact
//     episode it left off, byte-identically, instead of recomputing;
//   - a corrupt checkpoint on disk: detected, discarded, recomputed.
//
// Wall-clock time — lease TTLs, heartbeats, backoff — flows exclusively
// through the Clock seam in clock.go; nothing clock-derived ever touches
// the statistics fold.  See DESIGN.md §16 for the full failure model and
// the exactly-once argument.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"safeplan/internal/campaign"
)

// Protocol operations.  A worker speaks line-delimited JSON over a plain
// TCP connection: one Request per line in, one Response per line out, in
// order (the worker protocol is strictly request/response, so no
// correlation IDs are needed; retries are new requests).
const (
	// OpHello introduces a worker and fetches the campaign descriptor.
	OpHello = "hello"
	// OpLease asks for a shard under a time-bounded lease.
	OpLease = "lease"
	// OpRenew heartbeats an in-flight lease, reporting progress.
	OpRenew = "renew"
	// OpResult submits a completed shard aggregate.
	OpResult = "result"
	// OpBye announces a clean departure (telemetry only; crashed workers
	// never send it and cost nothing but a lease timeout).
	OpBye = "bye"
)

// Rejection reasons carried in Response.Reason when OK is false.
const (
	// ReasonBadRequest: malformed JSON, unknown op, or missing fields.
	ReasonBadRequest = "bad-request"
	// ReasonUnknownWorkload: the coordinator's workload name is not in
	// this worker's registry — a version or deployment skew.  Terminal
	// for the worker.
	ReasonUnknownWorkload = "unknown-workload"
	// ReasonLeaseLost: the renewing or submitting worker no longer holds
	// the shard's lease (it expired and was reassigned, or the shard was
	// completed by another worker).  The worker abandons the shard.
	ReasonLeaseLost = "lease-lost"
	// ReasonBadSum: the submitted aggregate does not hash to the
	// accompanying sum — the message was corrupted in flight.  Retryable:
	// the worker resubmits.
	ReasonBadSum = "bad-sum"
	// ReasonStatsMismatch: a duplicate result for a completed shard
	// hashed differently from the accepted one.  This is a determinism
	// violation — two executions of the same shard disagreed — and it
	// poisons the campaign: the coordinator fails loudly rather than
	// guess which bytes to trust.
	ReasonStatsMismatch = "stats-mismatch"
	// ReasonFingerprint: the worker's campaign fingerprint does not match
	// the coordinator's — it is talking to the wrong campaign.  Terminal.
	ReasonFingerprint = "fingerprint-mismatch"
)

// Request is one line of worker input.
type Request struct {
	Op     string `json:"op"`
	Worker string `json:"worker"`

	// Fingerprint guards every shard-touching op: the worker echoes the
	// campaign fingerprint from hello, and the coordinator refuses work
	// and results that fingerprint differently.
	Fingerprint *campaign.Fingerprint `json:"fingerprint,omitempty"`

	// Lease parameters.  Prefer, when non-nil, names a shard the worker
	// holds a mid-shard checkpoint for; the coordinator grants it if the
	// shard is still pending, letting the worker resume instead of
	// recomputing.
	Prefer *int `json:"prefer,omitempty"`

	// Renew/result parameters.
	Shard int `json:"shard,omitempty"`
	// EpisodesDone reports shard progress on renewals (telemetry only —
	// it never affects the fold).
	EpisodesDone int64 `json:"episodes_done,omitempty"`
	// Stats is the completed shard aggregate; Sum is its canonical hash
	// (ShardSum), the exactly-once fold fingerprint.
	Stats *campaign.ShardStats `json:"stats,omitempty"`
	Sum   string               `json:"sum,omitempty"`

	// Retries is the worker's cumulative transport-retry count, surfaced
	// on the coordinator's /metrics (telemetry only).
	Retries int64 `json:"retries,omitempty"`
}

// CampaignInfo describes the campaign to joining workers: everything a
// worker needs to reconstruct the spec's deterministic skeleton.  The
// configuration and agent are NOT shipped — the Workload name resolves
// them through the worker's registry (internal/workloads), because only
// identical construction on both sides keeps remote episodes
// byte-identical to local ones.
type CampaignInfo struct {
	Name            string               `json:"name"`
	Workload        string               `json:"workload"`
	Episodes        int                  `json:"episodes"`
	BaseSeed        int64                `json:"base_seed"`
	Shards          int                  `json:"shards"`
	CountViolations bool                 `json:"count_violations"`
	Fingerprint     campaign.Fingerprint `json:"fingerprint"`
}

// Assignment is one granted lease.
type Assignment struct {
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// LeaseMS is the lease TTL; the worker must renew within it or the
	// shard is reassigned.
	LeaseMS int64 `json:"lease_ms"`
}

// Response is one line of coordinator output.
type Response struct {
	Op string `json:"op"`
	OK bool   `json:"ok"`

	// Error is human-readable; Reason is the machine-readable rejection
	// class.  Both empty when OK.
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`

	// Campaign is attached to hello responses.
	Campaign *CampaignInfo `json:"campaign,omitempty"`

	// Lease outcome: exactly one of Assign, Wait, or Done.
	Assign *Assignment `json:"assign,omitempty"`
	// Wait: every shard is done or leased; retry after RetryMS.
	Wait    bool  `json:"wait,omitempty"`
	RetryMS int64 `json:"retry_ms,omitempty"`
	// Done: no work will ever be granted again (campaign complete or
	// coordinator draining) — the worker should exit.
	Done bool `json:"done,omitempty"`

	// Renewed lease TTL (renew responses).
	LeaseMS int64 `json:"lease_ms,omitempty"`

	// Duplicate marks a result for an already-completed shard whose sum
	// matched the accepted one: a benign replay, acknowledged so the
	// worker stops resubmitting.
	Duplicate bool `json:"duplicate,omitempty"`
}

// ShardSum is the exactly-once fold fingerprint: the SHA-256 of the
// aggregate's canonical JSON encoding.  encoding/json is deterministic
// here (struct fields in declaration order, map keys sorted, shortest
// round-tripping floats), so equal aggregates — and only equal
// aggregates — share a sum.
func ShardSum(s *campaign.ShardStats) string {
	raw, err := json.Marshal(s)
	if err != nil {
		// ShardStats is a closed struct of marshalable fields; this is
		// unreachable short of memory corruption.
		panic(err)
	}
	return sumBytes(raw)
}

// sumBytes is the hex SHA-256 shared by the result fingerprint and the
// worker-checkpoint checksum.
func sumBytes(raw []byte) string {
	h := sha256.Sum256(raw)
	return hex.EncodeToString(h[:])
}
