package dist

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffBounds is the retry-math property test: across many seeds
// and attempt depths, every delay stays within [Base, Cap], the schedule
// is deterministic under a fixed seed, and no draw ever hits zero (the
// busy-loop failure mode the floor exists to prevent).
func TestBackoffBounds(t *testing.T) {
	const base, cap = 10 * time.Millisecond, 400 * time.Millisecond
	for seed := int64(0); seed < 200; seed++ {
		b := &Backoff{Base: base, Cap: cap, Rng: rand.New(rand.NewSource(seed))}
		ceil := base
		for i := 0; i < 25; i++ {
			d := b.Next()
			if d < base || d > cap {
				t.Fatalf("seed %d attempt %d: delay %v outside [%v, %v]", seed, i, d, base, cap)
			}
			if d == 0 {
				t.Fatalf("seed %d attempt %d: zero delay (busy loop)", seed, i)
			}
			// The attempt's window is [base, min(cap, base·2^i)]: a draw
			// above the exponential ceiling means the window grew faster
			// than the exponent.
			if d > ceil {
				t.Fatalf("seed %d attempt %d: delay %v above window ceiling %v", seed, i, d, ceil)
			}
			if ceil < cap {
				ceil *= 2
				if ceil > cap {
					ceil = cap
				}
			}
		}
	}
}

// TestBackoffDeterministic: the same seed replays the same schedule, and
// different seeds de-correlate (at least one differing delay in a short
// window).
func TestBackoffDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		b := &Backoff{Base: time.Millisecond, Cap: time.Second, Rng: rand.New(rand.NewSource(seed))}
		out := make([]time.Duration, 12)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b2 := draw(7), draw(7)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed, different schedule at %d: %v vs %v", i, a[i], b2[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 12-delay schedules")
	}
}

// TestBackoffResetRestartsWindow: after Reset the first delay is again
// bounded by Base (the attempt-0 window is the degenerate [Base, Base]).
func TestBackoffResetRestartsWindow(t *testing.T) {
	b := &Backoff{Base: 5 * time.Millisecond, Cap: time.Second, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 6; i++ {
		b.Next()
	}
	if b.Attempt() != 6 {
		t.Fatalf("attempt counter %d after 6 draws", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("attempt counter %d after reset", b.Attempt())
	}
	if d := b.Next(); d != 5*time.Millisecond {
		t.Fatalf("first post-reset delay %v, want exactly Base (degenerate window)", d)
	}
}

// TestBackoffZeroValueDefaults: an unconfigured Backoff (only an Rng)
// uses the documented defaults and still respects them as bounds.
func TestBackoffZeroValueDefaults(t *testing.T) {
	b := &Backoff{Rng: rand.New(rand.NewSource(3))}
	for i := 0; i < 20; i++ {
		d := b.Next()
		if d < DefaultBackoffBase || d > DefaultBackoffCap {
			t.Fatalf("attempt %d: delay %v outside default bounds", i, d)
		}
	}
}

// TestFakeClockAdvance pins the test clock's semantics: After fires only
// once Advance crosses the deadline, and non-positive waits fire
// immediately.
func TestFakeClockAdvance(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	ch := fc.After(50 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	fc.Advance(49 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	fc.Advance(time.Millisecond)
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire at its deadline")
	}
	select {
	case <-fc.After(0):
	default:
		t.Fatal("zero-duration After must fire immediately")
	}
}
