package nn

import (
	"fmt"
	"math"
	"math/rand"

	"safeplan/internal/mat"
)

// Dense is a fully connected layer: y = act(x·Wᵀ + b) with W of shape
// (out × in) and b of length out.
type Dense struct {
	In, Out int
	W       *mat.Dense // out × in
	B       []float64  // out
	Act     Activation

	// Forward caches (batch mode), reused by Backward.
	x    *mat.Dense // input (n × in)
	z    *mat.Dense // pre-activation (n × out)
	aOut *mat.Dense // activation output (n × out)

	// Gradients accumulated by Backward.
	GradW *mat.Dense
	GradB []float64
}

// NewDense constructs a layer with Glorot-uniform initialized weights and
// zero biases, drawing from rng for determinism.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid layer shape %d→%d", in, out))
	}
	if act == nil {
		panic("nn: nil activation")
	}
	l := &Dense{
		In:    in,
		Out:   out,
		W:     mat.NewDense(out, in),
		B:     make([]float64, out),
		Act:   act,
		GradW: mat.NewDense(out, in),
		GradB: make([]float64, out),
	}
	scale := math.Sqrt(6.0 / float64(in+out))
	l.W.Randomize(rng, scale)
	return l
}

// Forward computes the layer output for a batch x (n × in), caching the
// values Backward needs.
func (l *Dense) Forward(x *mat.Dense) *mat.Dense {
	n := x.Rows()
	if x.Cols() != l.In {
		panic(fmt.Sprintf("nn: layer expects %d inputs, got %d", l.In, x.Cols()))
	}
	l.x = x
	if l.z == nil || l.z.Rows() != n {
		l.z = mat.NewDense(n, l.Out)
		l.aOut = mat.NewDense(n, l.Out)
	}
	mat.MulBTransInto(l.z, x, l.W) // z = x·Wᵀ
	for i := 0; i < n; i++ {
		zr := l.z.Row(i)
		ar := l.aOut.Row(i)
		for j := 0; j < l.Out; j++ {
			zr[j] += l.B[j]
			ar[j] = l.Act.Apply(zr[j])
		}
	}
	return l.aOut
}

// Backward consumes dL/dOut (n × out) and returns dL/dIn (n × in),
// accumulating dL/dW and dL/dB (averaged over the batch) into GradW/GradB.
func (l *Dense) Backward(dOut *mat.Dense) *mat.Dense {
	n := dOut.Rows()
	if l.x == nil || n != l.x.Rows() || dOut.Cols() != l.Out {
		panic("nn: Backward without matching Forward")
	}
	// dZ = dOut ⊙ act'(z), computed in place on a scratch copy.
	dZ := mat.NewDense(n, l.Out)
	for i := 0; i < n; i++ {
		zr := l.z.Row(i)
		dr := dOut.Row(i)
		dzr := dZ.Row(i)
		for j := 0; j < l.Out; j++ {
			dzr[j] = dr[j] * l.Act.Derivative(zr[j])
		}
	}
	// GradW = dZᵀ·x / n ; GradB = column-mean of dZ.
	mat.MulTransInto(l.GradW, dZ, l.x)
	l.GradW.ScaleInPlace(1 / float64(n))
	for j := 0; j < l.Out; j++ {
		l.GradB[j] = 0
	}
	for i := 0; i < n; i++ {
		dzr := dZ.Row(i)
		for j := 0; j < l.Out; j++ {
			l.GradB[j] += dzr[j]
		}
	}
	for j := 0; j < l.Out; j++ {
		l.GradB[j] /= float64(n)
	}
	// dIn = dZ·W.
	dIn := mat.NewDense(n, l.In)
	mat.MulInto(dIn, dZ, l.W)
	return dIn
}

// Params returns the parameter and gradient tensors in a stable order,
// flattening biases into 1×out matrices for the optimizer.
func (l *Dense) params() []param {
	return []param{
		{w: l.W.Data(), g: l.GradW.Data()},
		{w: l.B, g: l.GradB},
	}
}

// param pairs a parameter vector with its gradient.
type param struct {
	w, g []float64
}
