package nn

import (
	"fmt"
	"math/rand"

	"safeplan/internal/mat"
)

// Network is a feed-forward multilayer perceptron for regression.
type Network struct {
	Layers []*Dense

	in1 *mat.Dense // Predict1 input scratch, lazily sized to 1×InputDim
}

// NewMLP builds a network with the given layer sizes, e.g.
// NewMLP(rng, act, 5, 32, 32, 1) for a 5-input, 1-output net with two
// 32-unit hidden layers using act; the output layer is linear (Identity).
func NewMLP(rng *rand.Rand, hiddenAct Activation, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	n := &Network{}
	for i := 0; i < len(sizes)-1; i++ {
		act := hiddenAct
		if i == len(sizes)-2 {
			act = Identity{}
		}
		n.Layers = append(n.Layers, NewDense(sizes[i], sizes[i+1], act, rng))
	}
	return n
}

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.Layers[0].In }

// OutputDim returns the output width.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// ForwardBatch runs a batch (rows are samples) through the network.
// The returned matrix is owned by the network and overwritten by the next
// call; clone it if it must persist.
func (n *Network) ForwardBatch(x *mat.Dense) *mat.Dense {
	out := x
	for _, l := range n.Layers {
		out = l.Forward(out)
	}
	return out
}

// Predict evaluates the network on a single input vector.
func (n *Network) Predict(in []float64) []float64 {
	if len(in) != n.InputDim() {
		panic(fmt.Sprintf("nn: Predict expects %d inputs, got %d", n.InputDim(), len(in)))
	}
	x := mat.NewDense(1, len(in))
	copy(x.Row(0), in)
	out := n.ForwardBatch(x)
	res := make([]float64, out.Cols())
	copy(res, out.Row(0))
	return res
}

// Predict1 evaluates a single-output network on one input vector.  Unlike
// Predict it reuses network-owned scratch (the layer activations plus a
// cached 1-row input matrix), so steady-state calls do not allocate.  Like
// ForwardBatch it is not safe for concurrent use.
func (n *Network) Predict1(in []float64) float64 {
	if len(in) != n.InputDim() {
		panic(fmt.Sprintf("nn: Predict1 expects %d inputs, got %d", n.InputDim(), len(in)))
	}
	if n.OutputDim() != 1 {
		panic("nn: Predict1 on multi-output network")
	}
	if n.in1 == nil || n.in1.Cols() != len(in) {
		n.in1 = mat.NewDense(1, len(in))
	}
	copy(n.in1.Row(0), in)
	return n.ForwardBatch(n.in1).Row(0)[0]
}

// MSE computes the mean-squared error of predictions pred against targets y
// (same shape), averaged over all entries.
func MSE(pred, y *mat.Dense) float64 {
	if pred.Rows() != y.Rows() || pred.Cols() != y.Cols() {
		panic("nn: MSE shape mismatch")
	}
	var s float64
	pd, yd := pred.Data(), y.Data()
	for i := range pd {
		d := pd[i] - yd[i]
		s += d * d
	}
	return s / float64(len(pd))
}

// TrainBatch performs one gradient step on the batch (x, y) under MSE loss
// using opt, and returns the pre-step loss.
func (n *Network) TrainBatch(x, y *mat.Dense, opt Optimizer) float64 {
	pred := n.ForwardBatch(x)
	loss := MSE(pred, y)
	// dL/dPred for MSE (mean over all N·K entries): 2(pred−y)/(N·K); the
	// per-layer batch averaging uses N, so scale by 2/K here.
	rows, cols := pred.Rows(), pred.Cols()
	dOut := mat.NewDense(rows, cols)
	scale := 2 / float64(cols)
	for i := 0; i < rows; i++ {
		pr, yr, dr := pred.Row(i), y.Row(i), dOut.Row(i)
		for j := 0; j < cols; j++ {
			dr[j] = scale * (pr[j] - yr[j])
		}
	}
	d := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		d = n.Layers[i].Backward(d)
	}
	opt.Step(n)
	return loss
}

// Clone returns a deep copy of the network (weights only; caches and
// gradients start fresh).
func (n *Network) Clone() *Network {
	out := &Network{}
	for _, l := range n.Layers {
		nl := &Dense{
			In:    l.In,
			Out:   l.Out,
			W:     l.W.Clone(),
			B:     append([]float64(nil), l.B...),
			Act:   l.Act,
			GradW: mat.NewDense(l.Out, l.In),
			GradB: make([]float64, l.Out),
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.In*l.Out + l.Out
	}
	return total
}

// params collects every (parameter, gradient) pair in a stable order.
func (n *Network) params() []param {
	var ps []param
	for _, l := range n.Layers {
		ps = append(ps, l.params()...)
	}
	return ps
}
