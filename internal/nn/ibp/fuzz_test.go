package ibp

import (
	"math"
	"math/rand"
	"testing"

	"safeplan/internal/interval"
	"safeplan/internal/nn"
)

// byteAt reads data[i] with a zero default, so short fuzz inputs still
// decode a full configuration.
func byteAt(data []byte, i int) byte {
	if i < len(data) {
		return data[i]
	}
	return 0
}

// FuzzIBPContainment drives the soundness property from fuzzer-chosen
// network shapes, activations, normalizers, and input boxes: every sampled
// point evaluation must land inside the certified interval, and the
// degenerate midpoint box must reproduce Predict1 exactly.  The committed
// seed corpus (testdata/fuzz/FuzzIBPContainment) covers every activation
// and both normalizer arms; make check replays it, make fuzz-smoke
// explores beyond it.
func FuzzIBPContainment(f *testing.F) {
	f.Add([]byte{0x00, 0x03, 0x00, 0x00, 0x10, 0x20}, int64(1))
	f.Add([]byte{0x01, 0x05, 0x01, 0x01, 0x7f, 0x01}, int64(42))
	f.Add([]byte{0x02, 0x0b, 0x02, 0x00, 0x40, 0xc0}, int64(7))
	f.Add([]byte{0x03, 0x07, 0x03, 0x01, 0x00, 0xff}, int64(13))
	f.Add([]byte{0x04, 0x01, 0x04, 0x00, 0x90, 0x33, 0x55, 0xaa}, int64(99))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		in := 1 + int(byteAt(data, 0))%5
		hidden := 1 + int(byteAt(data, 1))%12
		acts := []nn.Activation{nn.ReLU{}, nn.LeakyReLU{}, nn.Tanh{}, nn.Sigmoid{}, nn.Identity{}}
		act := acts[int(byteAt(data, 2))%len(acts)]
		sizes := []int{in, hidden, 1}
		if byteAt(data, 3)%2 == 1 {
			sizes = []int{in, hidden, 1 + int(byteAt(data, 3))%6, 1}
		}
		net := nn.NewMLP(rng, act, sizes...)
		var norm *nn.Normalizer
		if byteAt(data, 4)%2 == 1 {
			norm = &nn.Normalizer{Mean: make([]float64, in), Std: make([]float64, in)}
			for j := 0; j < in; j++ {
				norm.Mean[j] = rng.Float64()*4 - 2
				norm.Std[j] = 0.1 + rng.Float64()*3
			}
		}
		p, err := New(net, norm)
		if err != nil {
			t.Fatalf("New rejected a monotone network: %v", err)
		}
		box := make([]interval.Interval, in)
		for k := range box {
			c := float64(int8(byteAt(data, 5+2*k))) / 8
			w := float64(byteAt(data, 6+2*k)) / 32
			box[k] = interval.New(c-w, c+w)
		}
		scr := p.NewScratch()
		out := p.PredictInterval1(box, scr)
		if out.IsEmpty() || math.IsNaN(out.Lo) || math.IsNaN(out.Hi) {
			t.Fatalf("bad certified interval %v for box %v", out, box)
		}
		x := make([]float64, in)
		xn := make([]float64, in)
		for s := 0; s < 32; s++ {
			for k := range x {
				x[k] = box[k].Lo + rng.Float64()*(box[k].Hi-box[k].Lo)
			}
			copy(xn, x)
			if norm != nil {
				norm.Apply(xn)
			}
			y := net.Predict1(xn)
			if tol := tolFor(out); y < out.Lo-tol || y > out.Hi+tol {
				t.Fatalf("Predict1 = %v escapes certified %v (box %v, sample %v)", y, out, box, x)
			}
		}
		point := make([]interval.Interval, in)
		for k := range point {
			m := box[k].Mid()
			point[k] = interval.Point(m)
			xn[k] = m
		}
		if norm != nil {
			norm.Apply(xn)
		}
		y := net.Predict1(xn)
		pout := p.PredictInterval1(point, scr)
		if pout.Lo != y || pout.Hi != y {
			t.Fatalf("point box gives [%v, %v], Predict1 gives %v", pout.Lo, pout.Hi, y)
		}
	})
}
