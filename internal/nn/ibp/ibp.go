// Package ibp implements interval bound propagation (IBP) through the
// repository's feed-forward networks: given a box of input intervals it
// produces an output box guaranteed to contain Predict(x) for every x in
// the input box (up to floating-point rounding — see the soundness note).
//
// The construction is the classical sign-split affine transform.  For a
// dense layer y = act(x·Wᵀ + b), each pre-activation bound accumulates
// w·lo for nonnegative weights and w·hi for negative ones (and vice versa
// for the upper bound), in exactly the same k-ascending order as
// mat.MulBTransInto with the bias added afterwards — so for a degenerate
// point box both bounds reproduce Network.Predict1 bit for bit.  Every
// activation in this repository (ReLU, LeakyReLU with α ≥ 0, Tanh,
// Sigmoid, Identity) is monotone nondecreasing, so its exact interval
// image is [f(lo), f(hi)]; New rejects anything else.  The optional input
// normalizer is a monotone affine map (Std > 0, validated) and lifts the
// same way.
//
// Soundness note: in exact real arithmetic the output box is a superset
// of the network's image of the input box.  In float64 the accumulations
// round to nearest (no directed rounding), so a point evaluation can
// escape the bound by a few ulps; runtime consumers absorb this with a
// small tolerance (sim.CertifyConfig.Tol), and the property/fuzz suites
// pin the slack at 1e-9 relative.  See DESIGN.md §15 for the full
// argument.
//
// A Propagator is immutable after New (weights are snapshotted, so later
// training of the source network is not reflected) and safe for
// concurrent use; per-call state lives in a caller-supplied Scratch.
package ibp

import (
	"fmt"
	"math"

	"safeplan/internal/interval"
	"safeplan/internal/nn"
)

// layer is an immutable snapshot of one dense layer.
type layer struct {
	in, out int
	w       []float64 // out × in, row-major (same layout as mat.Dense)
	b       []float64
	act     nn.Activation
}

// Propagator propagates interval boxes through a network snapshot.
type Propagator struct {
	layers []layer
	mean   []float64 // input normalizer, nil when absent
	std    []float64

	inDim, outDim int
	maxWidth      int // widest layer, sizing the ping-pong buffers
}

// Scratch holds the propagation ping-pong buffers.  A zero Scratch is
// ready to use and grows on first call; reusing one across calls keeps the
// steady state allocation-free.  A Scratch must not be shared between
// concurrent propagations.
type Scratch struct {
	lo, hi, lo2, hi2 []float64
}

// grow ensures every buffer holds at least n values.
func (s *Scratch) grow(n int) {
	if cap(s.lo) < n {
		s.lo = make([]float64, n)
		s.hi = make([]float64, n)
		s.lo2 = make([]float64, n)
		s.hi2 = make([]float64, n)
	}
	s.lo, s.hi = s.lo[:cap(s.lo)], s.hi[:cap(s.hi)]
	s.lo2, s.hi2 = s.lo2[:cap(s.lo2)], s.hi2[:cap(s.hi2)]
}

// monotone reports whether act's interval image is exactly [f(lo), f(hi)].
func monotone(act nn.Activation) error {
	switch a := act.(type) {
	case nn.ReLU, nn.Tanh, nn.Sigmoid, nn.Identity:
		return nil
	case nn.LeakyReLU:
		if a.Alpha < 0 {
			return fmt.Errorf("ibp: leaky_relu with negative alpha %v is not monotone", a.Alpha)
		}
		return nil
	}
	return fmt.Errorf("ibp: activation %q is not known to be monotone", act.Name())
}

// New snapshots net (and the optional input normalizer norm) into a
// Propagator.  It fails when any activation is not provably monotone, any
// parameter is non-finite, or the normalizer is malformed (length mismatch
// or a scale that is not strictly positive).  The snapshot is deep: later
// training steps on net do not change the propagator.
func New(net *nn.Network, norm *nn.Normalizer) (*Propagator, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("ibp: nil or empty network")
	}
	p := &Propagator{inDim: net.InputDim(), outDim: net.OutputDim()}
	p.maxWidth = p.inDim
	for i, l := range net.Layers {
		if err := monotone(l.Act); err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		w := make([]float64, l.In*l.Out)
		copy(w, l.W.Data())
		b := make([]float64, l.Out)
		copy(b, l.B)
		for _, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("ibp: layer %d has a non-finite weight", i)
			}
		}
		for _, v := range b {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("ibp: layer %d has a non-finite bias", i)
			}
		}
		p.layers = append(p.layers, layer{in: l.In, out: l.Out, w: w, b: b, act: l.Act})
		if l.Out > p.maxWidth {
			p.maxWidth = l.Out
		}
	}
	if norm != nil {
		if len(norm.Mean) != p.inDim || len(norm.Std) != p.inDim {
			return nil, fmt.Errorf("ibp: normalizer length %d/%d does not match input dim %d",
				len(norm.Mean), len(norm.Std), p.inDim)
		}
		for j := range norm.Std {
			if !(norm.Std[j] > 0) || math.IsInf(norm.Std[j], 0) ||
				math.IsNaN(norm.Mean[j]) || math.IsInf(norm.Mean[j], 0) {
				return nil, fmt.Errorf("ibp: normalizer feature %d has bad mean/std %v/%v",
					j, norm.Mean[j], norm.Std[j])
			}
		}
		p.mean = append([]float64(nil), norm.Mean...)
		p.std = append([]float64(nil), norm.Std...)
	}
	return p, nil
}

// InputDim returns the expected box width.
func (p *Propagator) InputDim() int { return p.inDim }

// OutputDim returns the output box width.
func (p *Propagator) OutputDim() int { return p.outDim }

// NewScratch returns a Scratch pre-grown for this propagator.
func (p *Propagator) NewScratch() *Scratch {
	s := &Scratch{}
	s.grow(p.maxWidth)
	return s
}

// PredictInterval propagates box through the network and returns a fresh
// output box.  It allocates; hot paths should use PredictIntervalInto with
// a reused Scratch.
func (p *Propagator) PredictInterval(box []interval.Interval) []interval.Interval {
	dst := make([]interval.Interval, p.outDim)
	return p.PredictIntervalInto(dst, box, nil)
}

// PredictIntervalInto propagates box into dst (length ≥ OutputDim) and
// returns dst[:OutputDim].  Every input interval must be nonempty with
// finite bounds (a zero-weight times an infinite bound would poison the
// sums with NaN); violations panic, mirroring Predict's shape panics.  A
// nil scr allocates temporary buffers; passing a reused Scratch makes the
// steady state allocation-free.
func (p *Propagator) PredictIntervalInto(dst, box []interval.Interval, scr *Scratch) []interval.Interval {
	if len(box) != p.inDim {
		panic(fmt.Sprintf("ibp: PredictIntervalInto expects %d inputs, got %d", p.inDim, len(box)))
	}
	if len(dst) < p.outDim {
		panic(fmt.Sprintf("ibp: dst length %d below output dim %d", len(dst), p.outDim))
	}
	for k, iv := range box {
		if iv.IsEmpty() || math.IsNaN(iv.Lo) ||
			math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
			panic(fmt.Sprintf("ibp: input %d is empty or non-finite: %v", k, iv))
		}
	}
	if scr == nil {
		scr = &Scratch{}
	}
	scr.grow(p.maxWidth)
	curLo, curHi := scr.lo[:p.inDim], scr.hi[:p.inDim]
	nxtLo, nxtHi := scr.lo2, scr.hi2
	for k, iv := range box {
		if p.std != nil {
			// The normalizer is the same expression Normalizer.Apply
			// evaluates per sample, applied to each bound (Std > 0 keeps
			// the order), so point boxes stay bit-exact.
			curLo[k] = (iv.Lo - p.mean[k]) / p.std[k]
			curHi[k] = (iv.Hi - p.mean[k]) / p.std[k]
		} else {
			curLo[k], curHi[k] = iv.Lo, iv.Hi
		}
	}
	for _, l := range p.layers {
		outLo, outHi := nxtLo[:l.out], nxtHi[:l.out]
		for j := 0; j < l.out; j++ {
			wrow := l.w[j*l.in : (j+1)*l.in]
			// Sign-split accumulation in the same k-ascending order as
			// mat.MulBTransInto, bias added after the sum exactly as
			// Dense.Forward does — a point box reproduces Predict1 bitwise.
			var slo, shi float64
			for k, w := range wrow {
				if w >= 0 {
					slo += w * curLo[k]
					shi += w * curHi[k]
				} else {
					slo += w * curHi[k]
					shi += w * curLo[k]
				}
			}
			slo += l.b[j]
			shi += l.b[j]
			outLo[j] = l.act.Apply(slo)
			outHi[j] = l.act.Apply(shi)
		}
		curLo, curHi, nxtLo, nxtHi = outLo, outHi, curLo[:cap(curLo)], curHi[:cap(curHi)]
	}
	for j := 0; j < p.outDim; j++ {
		dst[j] = interval.Interval{Lo: curLo[j], Hi: curHi[j]}
	}
	return dst[:p.outDim]
}

// PredictInterval1 propagates box through a single-output network and
// returns the certified output range — the hot-path twin of
// Network.Predict1.  It panics on multi-output networks.
func (p *Propagator) PredictInterval1(box []interval.Interval, scr *Scratch) interval.Interval {
	if p.outDim != 1 {
		panic("ibp: PredictInterval1 on multi-output propagator")
	}
	var out [1]interval.Interval
	p.PredictIntervalInto(out[:], box, scr)
	return out[0]
}
