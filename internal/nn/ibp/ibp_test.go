package ibp

import (
	"math"
	"math/rand"
	"testing"

	"safeplan/internal/interval"
	"safeplan/internal/nn"
)

// containTol absorbs the only unsoundness IBP has in float64: library
// activations (math.Tanh, math.Exp) are faithfully but not provably
// monotonically rounded, so a point evaluation may escape the bound by an
// ulp.  The affine stages themselves are exactly monotone (termwise real
// ordering + identical accumulation order + round-to-nearest monotonicity).
const containTol = 1e-9

func tolFor(iv interval.Interval) float64 {
	m := math.Max(math.Abs(iv.Lo), math.Abs(iv.Hi))
	return containTol * math.Max(1, m)
}

// randBox draws a finite box with centers in ±5 and widths in [0, 4).
func randBox(rng *rand.Rand, n int) []interval.Interval {
	box := make([]interval.Interval, n)
	for k := range box {
		c := rng.Float64()*10 - 5
		w := rng.Float64() * 2
		box[k] = interval.New(c-w, c+w)
	}
	return box
}

// randNorm fits a plausible normalizer: arbitrary means, strictly positive
// scales.
func randNorm(rng *rand.Rand, n int) *nn.Normalizer {
	norm := &nn.Normalizer{Mean: make([]float64, n), Std: make([]float64, n)}
	for j := 0; j < n; j++ {
		norm.Mean[j] = rng.Float64()*4 - 2
		norm.Std[j] = 0.25 + rng.Float64()*2
	}
	return norm
}

var hiddenActs = []struct {
	name string
	act  nn.Activation
}{
	{"relu", nn.ReLU{}},
	{"leaky_relu", nn.LeakyReLU{}},
	{"tanh", nn.Tanh{}},
	{"sigmoid", nn.Sigmoid{}},
	{"identity", nn.Identity{}},
}

// TestIBPContainment is the core soundness property: for ~200 random
// networks per activation, Predict1(x) lies inside PredictInterval1(box)
// for dozens of sampled x ∈ box (thousands of point checks per
// activation).
func TestIBPContainment(t *testing.T) {
	for _, tc := range hiddenActs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for caseNo := 0; caseNo < 200; caseNo++ {
				in := 1 + rng.Intn(5)
				hidden := 1 + rng.Intn(12)
				sizes := []int{in, hidden, 1}
				if rng.Intn(2) == 0 {
					sizes = []int{in, hidden, 1 + rng.Intn(8), 1}
				}
				net := nn.NewMLP(rng, tc.act, sizes...)
				var norm *nn.Normalizer
				if rng.Intn(2) == 0 {
					norm = randNorm(rng, in)
				}
				p, err := New(net, norm)
				if err != nil {
					t.Fatalf("case %d: New: %v", caseNo, err)
				}
				box := randBox(rng, in)
				out := p.PredictInterval1(box, nil)
				if out.IsEmpty() || math.IsNaN(out.Lo) || math.IsNaN(out.Hi) {
					t.Fatalf("case %d: bad output interval %v", caseNo, out)
				}
				x := make([]float64, in)
				for s := 0; s < 25; s++ {
					for k := range x {
						x[k] = box[k].Lo + rng.Float64()*(box[k].Hi-box[k].Lo)
					}
					xn := append([]float64(nil), x...)
					if norm != nil {
						norm.Apply(xn)
					}
					y := net.Predict1(xn)
					if tol := tolFor(out); y < out.Lo-tol || y > out.Hi+tol {
						t.Fatalf("case %d sample %d: Predict1 = %v escapes certified %v (act %s)",
							caseNo, s, y, out, tc.name)
					}
				}
			}
		})
	}
}

// TestIBPPointBoxExact pins the bitwise guarantee: a degenerate point box
// propagates to the exact Predict1 value — not within a tolerance, equal.
func TestIBPPointBoxExact(t *testing.T) {
	for _, tc := range hiddenActs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for caseNo := 0; caseNo < 200; caseNo++ {
				in := 1 + rng.Intn(5)
				net := nn.NewMLP(rng, tc.act, in, 1+rng.Intn(10), 1)
				var norm *nn.Normalizer
				if rng.Intn(2) == 0 {
					norm = randNorm(rng, in)
				}
				p, err := New(net, norm)
				if err != nil {
					t.Fatal(err)
				}
				box := make([]interval.Interval, in)
				x := make([]float64, in)
				for k := range x {
					x[k] = rng.Float64()*10 - 5
					box[k] = interval.Point(x[k])
				}
				if norm != nil {
					norm.Apply(x)
				}
				y := net.Predict1(x)
				out := p.PredictInterval1(box, nil)
				if out.Lo != y || out.Hi != y {
					t.Fatalf("case %d: point box gives [%v, %v], Predict1 gives %v (act %s)",
						caseNo, out.Lo, out.Hi, y, tc.name)
				}
			}
		})
	}
}

// TestIBPMonotoneWidth asserts the bound is monotone under box expansion:
// widening any input interval can only widen (never shift out of) the
// output interval.  The affine stages make this exact in float64; the
// activation slack is absorbed by containTol.
func TestIBPMonotoneWidth(t *testing.T) {
	for _, tc := range hiddenActs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			for caseNo := 0; caseNo < 200; caseNo++ {
				in := 1 + rng.Intn(5)
				net := nn.NewMLP(rng, tc.act, in, 1+rng.Intn(10), 1)
				p, err := New(net, nil)
				if err != nil {
					t.Fatal(err)
				}
				box := randBox(rng, in)
				out := p.PredictInterval1(box, nil)
				wider := make([]interval.Interval, in)
				for k := range wider {
					wider[k] = box[k].Expand(rng.Float64())
				}
				wout := p.PredictInterval1(wider, nil)
				tol := tolFor(wout)
				if out.Lo < wout.Lo-tol || out.Hi > wout.Hi+tol {
					t.Fatalf("case %d: expansion shrank the bound: %v -> %v (act %s)",
						caseNo, out, wout, tc.name)
				}
				if wout.Width() < out.Width()-tol {
					t.Fatalf("case %d: width shrank under expansion: %v -> %v",
						caseNo, out.Width(), wout.Width())
				}
			}
		})
	}
}

// TestIBPRejectsNonMonotone pins the constructor's activation whitelist.
func TestIBPRejectsNonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, nn.LeakyReLU{Alpha: -0.5}, 3, 4, 1)
	if _, err := New(net, nil); err == nil {
		t.Fatal("negative-alpha leaky ReLU accepted")
	}
}

// TestIBPRejectsBadNormalizer pins the Std > 0 and length validation.
func TestIBPRejectsBadNormalizer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP(rng, nn.Tanh{}, 3, 4, 1)
	for _, norm := range []*nn.Normalizer{
		{Mean: []float64{0, 0, 0}, Std: []float64{1, 0, 1}},
		{Mean: []float64{0, 0, 0}, Std: []float64{1, -1, 1}},
		{Mean: []float64{0, 0}, Std: []float64{1, 1}},
		{Mean: []float64{0, math.NaN(), 0}, Std: []float64{1, 1, 1}},
	} {
		if _, err := New(net, norm); err == nil {
			t.Fatalf("bad normalizer %+v accepted", norm)
		}
	}
}

// TestIBPSnapshot pins the snapshot semantics: training the source network
// after New must not move the propagator's bounds.
func TestIBPSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := nn.NewMLP(rng, nn.Tanh{}, 2, 4, 1)
	p, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	box := []interval.Interval{interval.New(-1, 1), interval.New(0, 2)}
	before := p.PredictInterval1(box, nil)
	for _, l := range net.Layers {
		l.B[0] += 10
	}
	after := p.PredictInterval1(box, nil)
	if before != after {
		t.Fatalf("propagator tracked post-snapshot mutation: %v -> %v", before, after)
	}
}

// TestIBPPanicsOnBadBox pins the caller contract: empty or non-finite
// inputs panic rather than silently poisoning the sums.
func TestIBPPanicsOnBadBox(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := nn.NewMLP(rng, nn.Tanh{}, 2, 3, 1)
	p, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, box := range [][]interval.Interval{
		{interval.New(0, 1)}, // wrong width
		{interval.New(0, 1), interval.Empty()},
		{interval.New(0, 1), {Lo: 0, Hi: math.Inf(1)}},
		{interval.New(0, 1), {Lo: math.NaN(), Hi: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("box %v did not panic", box)
				}
			}()
			p.PredictInterval1(box, nil)
		}()
	}
}

// TestIBPAllocs is the scratch-path budget wired into make alloc-gate: a
// propagation with a reused Scratch must not allocate at all.
func TestIBPAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is not meaningful with -short")
	}
	rng := rand.New(rand.NewSource(5))
	net := nn.NewMLP(rng, nn.Tanh{}, 5, 16, 16, 1)
	p, err := New(net, randNorm(rng, 5))
	if err != nil {
		t.Fatal(err)
	}
	box := randBox(rng, 5)
	scr := p.NewScratch()
	dst := make([]interval.Interval, 1)
	p.PredictIntervalInto(dst, box, scr) // warm-up
	avg := testing.AllocsPerRun(100, func() {
		p.PredictIntervalInto(dst, box, scr)
	})
	if avg != 0 {
		t.Errorf("PredictIntervalInto allocates %.1f times with a warm Scratch (budget 0)", avg)
	}
}

// BenchmarkPredictInterval1 is the IBP bench row: the certified range's
// marginal cost over a point evaluation of the same network.
func BenchmarkPredictInterval1(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	net := nn.NewMLP(rng, nn.Tanh{}, 5, 32, 32, 1)
	p, err := New(net, nil)
	if err != nil {
		b.Fatal(err)
	}
	box := randBox(rng, 5)
	scr := p.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictInterval1(box, scr)
	}
}

// BenchmarkPredict1Baseline is the point-evaluation baseline for the row
// above.
func BenchmarkPredict1Baseline(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	net := nn.NewMLP(rng, nn.Tanh{}, 5, 32, 32, 1)
	x := []float64{0.3, -1.2, 0.8, 2.1, -0.4}
	net.Predict1(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict1(x)
	}
}
