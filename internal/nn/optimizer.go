package nn

import "math"

// Optimizer updates a network's parameters from the gradients accumulated
// by the latest Backward pass.
type Optimizer interface {
	// Step applies one update to every parameter of n.
	Step(n *Network)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64 // learning rate (required, > 0)
	Momentum float64 // momentum coefficient in [0, 1)

	vel [][]float64
}

// Step implements Optimizer.
func (s *SGD) Step(n *Network) {
	ps := n.params()
	if s.vel == nil {
		s.vel = make([][]float64, len(ps))
		for i, p := range ps {
			s.vel[i] = make([]float64, len(p.w))
		}
	}
	for i, p := range ps {
		v := s.vel[i]
		for j := range p.w {
			v[j] = s.Momentum*v[j] - s.LR*p.g[j]
			p.w[j] += v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with standard defaults filled in
// for zero-valued fields: β1 = 0.9, β2 = 0.999, ε = 1e-8.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64

	t    int
	m, v [][]float64
}

func (a *Adam) defaults() (b1, b2, eps float64) {
	b1, b2, eps = a.Beta1, a.Beta2, a.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	return
}

// Step implements Optimizer.
func (a *Adam) Step(n *Network) {
	ps := n.params()
	if a.m == nil {
		a.m = make([][]float64, len(ps))
		a.v = make([][]float64, len(ps))
		for i, p := range ps {
			a.m[i] = make([]float64, len(p.w))
			a.v[i] = make([]float64, len(p.w))
		}
	}
	b1, b2, eps := a.defaults()
	a.t++
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i, p := range ps {
		m, v := a.m[i], a.v[i]
		for j := range p.w {
			g := p.g[j]
			m[j] = b1*m[j] + (1-b1)*g
			v[j] = b2*v[j] + (1-b2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.w[j] -= a.LR * mh / (math.Sqrt(vh) + eps)
		}
	}
}
