package nn

import (
	"encoding/json"
	"fmt"

	"safeplan/internal/mat"
)

// modelJSON is the on-disk representation of a Network (plus an optional
// input normalizer), versioned for forward compatibility.
type modelJSON struct {
	Version int         `json:"version"`
	Layers  []layerJSON `json:"layers"`
	Norm    *normJSON   `json:"normalizer,omitempty"`
}

type layerJSON struct {
	In         int         `json:"in"`
	Out        int         `json:"out"`
	Activation string      `json:"activation"`
	W          [][]float64 `json:"w"`
	B          []float64   `json:"b"`
}

type normJSON struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

const modelVersion = 1

// MarshalModel serializes a network and an optional input normalizer to
// JSON.  norm may be nil.
func MarshalModel(n *Network, norm *Normalizer) ([]byte, error) {
	mj := modelJSON{Version: modelVersion}
	for _, l := range n.Layers {
		lj := layerJSON{
			In:         l.In,
			Out:        l.Out,
			Activation: l.Act.Name(),
			B:          append([]float64(nil), l.B...),
		}
		for i := 0; i < l.Out; i++ {
			lj.W = append(lj.W, append([]float64(nil), l.W.Row(i)...))
		}
		mj.Layers = append(mj.Layers, lj)
	}
	if norm != nil {
		mj.Norm = &normJSON{
			Mean: append([]float64(nil), norm.Mean...),
			Std:  append([]float64(nil), norm.Std...),
		}
	}
	return json.MarshalIndent(mj, "", " ")
}

// UnmarshalModel reconstructs a network (and normalizer, possibly nil) from
// the JSON produced by MarshalModel.
func UnmarshalModel(data []byte) (*Network, *Normalizer, error) {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, nil, fmt.Errorf("nn: decode model: %w", err)
	}
	if mj.Version != modelVersion {
		return nil, nil, fmt.Errorf("nn: unsupported model version %d", mj.Version)
	}
	if len(mj.Layers) == 0 {
		return nil, nil, fmt.Errorf("nn: model has no layers")
	}
	n := &Network{}
	for i, lj := range mj.Layers {
		act, ok := ActivationByName(lj.Activation)
		if !ok {
			return nil, nil, fmt.Errorf("nn: layer %d: unknown activation %q", i, lj.Activation)
		}
		if len(lj.W) != lj.Out || len(lj.B) != lj.Out {
			return nil, nil, fmt.Errorf("nn: layer %d: shape mismatch", i)
		}
		l := &Dense{
			In:    lj.In,
			Out:   lj.Out,
			W:     mat.NewDense(lj.Out, lj.In),
			B:     append([]float64(nil), lj.B...),
			Act:   act,
			GradW: mat.NewDense(lj.Out, lj.In),
			GradB: make([]float64, lj.Out),
		}
		for r, row := range lj.W {
			if len(row) != lj.In {
				return nil, nil, fmt.Errorf("nn: layer %d: row %d width %d != %d", i, r, len(row), lj.In)
			}
			copy(l.W.Row(r), row)
		}
		if i > 0 && n.Layers[i-1].Out != l.In {
			return nil, nil, fmt.Errorf("nn: layer %d input %d does not match previous output %d",
				i, l.In, n.Layers[i-1].Out)
		}
		n.Layers = append(n.Layers, l)
	}
	var norm *Normalizer
	if mj.Norm != nil {
		if len(mj.Norm.Mean) != len(mj.Norm.Std) || len(mj.Norm.Mean) != n.InputDim() {
			return nil, nil, fmt.Errorf("nn: normalizer width mismatch")
		}
		norm = &Normalizer{Mean: mj.Norm.Mean, Std: mj.Norm.Std}
	}
	return n, norm, nil
}
