package nn

import (
	"math"
	"math/rand"

	"safeplan/internal/mat"
)

// LRSetter is implemented by optimizers whose learning rate can be changed
// between epochs (used by learning-rate decay).
type LRSetter interface {
	// SetLR replaces the learning rate.
	SetLR(lr float64)
	// LR returns the current learning rate.
	CurrentLR() float64
}

// SetLR implements LRSetter.
func (s *SGD) SetLR(lr float64) { s.LR = lr }

// CurrentLR implements LRSetter.
func (s *SGD) CurrentLR() float64 { return s.LR }

// SetLR implements LRSetter.
func (a *Adam) SetLR(lr float64) { a.LR = lr }

// CurrentLR implements LRSetter.
func (a *Adam) CurrentLR() float64 { return a.LR }

// ClipGradients rescales every gradient of n so the global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm.  A non-positive maxNorm is
// a no-op.
func (n *Network) ClipGradients(maxNorm float64) float64 {
	var sq float64
	for _, p := range n.params() {
		for _, g := range p.g {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range n.params() {
		for i := range p.g {
			p.g[i] *= scale
		}
	}
	return norm
}

// AdvancedTrainConfig drives FitAdvanced.
type AdvancedTrainConfig struct {
	Epochs    int   // maximum epochs (required, > 0)
	BatchSize int   // minibatch size; 0 selects 32
	Seed      int64 // shuffle seed

	ClipNorm float64 // global gradient-norm clip; 0 disables
	LRDecay  float64 // per-epoch multiplicative learning-rate decay in (0, 1]; 0 disables

	// ValFrac holds out this fraction of the data for validation; with
	// Patience > 0 training stops after that many epochs without a new
	// best validation loss and the best-epoch weights are restored.
	ValFrac  float64
	Patience int

	Verbose func(epoch int, trainLoss, valLoss float64) // optional
}

// FitResult reports an advanced training run.
type FitResult struct {
	Epochs       int     // epochs actually run
	TrainLoss    float64 // final-epoch mean training loss
	ValLoss      float64 // best validation loss (NaN without validation)
	StoppedEarly bool
	RestoredBest bool
}

// FitAdvanced trains with gradient clipping, learning-rate decay, and
// early stopping on a held-out validation split.  It generalizes Fit; with
// all extras zeroed it behaves identically (modulo the validation split).
func (n *Network) FitAdvanced(ds *Dataset, opt Optimizer, cfg AdvancedTrainConfig) FitResult {
	if cfg.Epochs <= 0 {
		panic("nn: AdvancedTrainConfig.Epochs must be positive")
	}
	bs := cfg.BatchSize
	if bs <= 0 {
		bs = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	train := ds
	var val *Dataset
	if cfg.ValFrac > 0 && cfg.ValFrac < 1 {
		ds.Shuffle(rng)
		train, val = ds.Split(1 - cfg.ValFrac)
	}

	res := FitResult{ValLoss: math.NaN()}
	bestVal := math.Inf(1)
	var bestNet *Network
	sinceBest := 0
	var bx, by *mat.Dense
	clipStep := clippingOptimizer{inner: opt, maxNorm: cfg.ClipNorm}

	for e := 0; e < cfg.Epochs; e++ {
		train.Shuffle(rng)
		var sum float64
		batches := 0
		for from := 0; from < train.Len(); from += bs {
			to := from + bs
			if to > train.Len() {
				to = train.Len()
			}
			bx, by = train.Batch(from, to, bx, by)
			sum += n.TrainBatch(bx, by, clipStep)
			batches++
		}
		res.TrainLoss = sum / float64(batches)
		res.Epochs = e + 1

		valLoss := math.NaN()
		if val != nil {
			valLoss = n.Evaluate(val)
			if valLoss < bestVal {
				bestVal = valLoss
				res.ValLoss = bestVal
				bestNet = n.Clone()
				sinceBest = 0
			} else {
				sinceBest++
			}
		}
		if cfg.Verbose != nil {
			cfg.Verbose(e, res.TrainLoss, valLoss)
		}
		if val != nil && cfg.Patience > 0 && sinceBest >= cfg.Patience {
			res.StoppedEarly = true
			break
		}
		if cfg.LRDecay > 0 && cfg.LRDecay <= 1 {
			if ls, ok := opt.(LRSetter); ok {
				ls.SetLR(ls.CurrentLR() * cfg.LRDecay)
			}
		}
	}
	if bestNet != nil && cfg.Patience > 0 {
		// Restore the best-validation weights.
		for i, l := range n.Layers {
			copy(l.W.Data(), bestNet.Layers[i].W.Data())
			copy(l.B, bestNet.Layers[i].B)
		}
		res.RestoredBest = true
	}
	return res
}

// clippingOptimizer interposes gradient clipping before the inner
// optimizer's step.
type clippingOptimizer struct {
	inner   Optimizer
	maxNorm float64
}

// Step implements Optimizer.
func (c clippingOptimizer) Step(n *Network) {
	if c.maxNorm > 0 {
		n.ClipGradients(c.maxNorm)
	}
	c.inner.Step(n)
}
