package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/mat"
)

func TestActivations(t *testing.T) {
	cases := []struct {
		act        Activation
		x, fx, dfx float64
	}{
		{ReLU{}, 2, 2, 1},
		{ReLU{}, -2, 0, 0},
		{LeakyReLU{}, 2, 2, 1},
		{LeakyReLU{}, -2, -0.02, 0.01},
		{LeakyReLU{Alpha: 0.2}, -1, -0.2, 0.2},
		{Tanh{}, 0, 0, 1},
		{Sigmoid{}, 0, 0.5, 0.25},
		{Identity{}, 3.7, 3.7, 1},
	}
	for _, c := range cases {
		if got := c.act.Apply(c.x); math.Abs(got-c.fx) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.act.Name(), c.x, got, c.fx)
		}
		if got := c.act.Derivative(c.x); math.Abs(got-c.dfx) > 1e-12 {
			t.Errorf("%s'(%v) = %v, want %v", c.act.Name(), c.x, got, c.dfx)
		}
	}
}

func TestActivationDerivativesNumerically(t *testing.T) {
	const h = 1e-6
	acts := []Activation{ReLU{}, LeakyReLU{}, Tanh{}, Sigmoid{}, Identity{}}
	for _, act := range acts {
		for _, x := range []float64{-2.3, -0.7, 0.4, 1.9} {
			num := (act.Apply(x+h) - act.Apply(x-h)) / (2 * h)
			if got := act.Derivative(x); math.Abs(got-num) > 1e-5 {
				t.Errorf("%s'(%v) = %v, numeric %v", act.Name(), x, got, num)
			}
		}
	}
}

func TestActivationByName(t *testing.T) {
	for _, name := range []string{"relu", "leaky_relu", "tanh", "sigmoid", "identity"} {
		act, ok := ActivationByName(name)
		if !ok || act.Name() != name {
			t.Errorf("ActivationByName(%q) failed", name)
		}
	}
	if _, ok := ActivationByName("softmax"); ok {
		t.Error("unknown name accepted")
	}
}

func TestNewMLPShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewMLP(rng, Tanh{}, 5, 16, 8, 1)
	if len(n.Layers) != 3 {
		t.Fatalf("layers = %d", len(n.Layers))
	}
	if n.InputDim() != 5 || n.OutputDim() != 1 {
		t.Fatalf("dims %d→%d", n.InputDim(), n.OutputDim())
	}
	if _, ok := n.Layers[2].Act.(Identity); !ok {
		t.Fatal("output layer must be linear")
	}
	want := 5*16 + 16 + 16*8 + 8 + 8*1 + 1
	if got := n.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestPredictShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewMLP(rng, ReLU{}, 3, 4, 2)
	out := n.Predict([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("Predict output len = %d", len(out))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict1 on 2-output net should panic")
		}
	}()
	n.Predict1([]float64{1, 2, 3})
}

func TestPredictDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewMLP(rng, Tanh{}, 2, 8, 1)
	a := n.Predict1([]float64{0.3, -0.7})
	b := n.Predict1([]float64{0.3, -0.7})
	if a != b {
		t.Fatal("Predict not deterministic")
	}
}

// Numerical gradient check: the backprop gradients must match finite
// differences of the loss with respect to every parameter.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewMLP(rng, Tanh{}, 3, 5, 2)
	x := mat.NewDense(4, 3)
	y := mat.NewDense(4, 2)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)

	// Compute analytic gradients via one backward pass (no optimizer step).
	pred := n.ForwardBatch(x)
	rows, cols := pred.Rows(), pred.Cols()
	dOut := mat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dOut.Set(i, j, 2*(pred.At(i, j)-y.At(i, j))/float64(cols))
		}
	}
	d := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		d = n.Layers[i].Backward(d)
	}

	loss := func() float64 { return MSE(n.ForwardBatch(x), y) }
	const h = 1e-6
	checked := 0
	for li, l := range n.Layers {
		wd := l.W.Data()
		gd := l.GradW.Data()
		for k := 0; k < len(wd); k += 3 { // sample every third weight
			orig := wd[k]
			wd[k] = orig + h
			lp := loss()
			wd[k] = orig - h
			lm := loss()
			wd[k] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-gd[k]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d weight %d: analytic %v, numeric %v", li, k, gd[k], num)
			}
			checked++
		}
		for k := range l.B {
			orig := l.B[k]
			l.B[k] = orig + h
			lp := loss()
			l.B[k] = orig - h
			lm := loss()
			l.B[k] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-l.GradB[k]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d bias %d: analytic %v, numeric %v", li, k, l.GradB[k], num)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("gradient check exercised nothing")
	}
}

func makeQuadraticDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, 2)
	y := mat.NewDense(n, 1)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, a*a+0.5*b)
	}
	return &Dataset{X: x, Y: y}
}

func TestFitLearnsQuadratic(t *testing.T) {
	ds := makeQuadraticDataset(800, 1)
	rng := rand.New(rand.NewSource(2))
	n := NewMLP(rng, Tanh{}, 2, 24, 24, 1)
	before := n.Evaluate(ds)
	loss := n.Fit(ds, &Adam{LR: 0.01}, TrainConfig{Epochs: 60, BatchSize: 64, Seed: 5})
	if loss >= before {
		t.Fatalf("training did not reduce loss: %v → %v", before, loss)
	}
	if loss > 0.002 {
		t.Fatalf("final training loss %v too high", loss)
	}
	// Spot generalization.
	if got, want := n.Predict1([]float64{0.5, 0.5}), 0.5; math.Abs(got-want) > 0.1 {
		t.Fatalf("Predict(0.5,0.5) = %v, want ≈%v", got, want)
	}
}

func TestSGDMomentumLearns(t *testing.T) {
	ds := makeQuadraticDataset(400, 3)
	rng := rand.New(rand.NewSource(4))
	n := NewMLP(rng, Tanh{}, 2, 16, 1)
	loss := n.Fit(ds, &SGD{LR: 0.05, Momentum: 0.9}, TrainConfig{Epochs: 80, BatchSize: 32, Seed: 6})
	if loss > 0.01 {
		t.Fatalf("SGD+momentum final loss %v too high", loss)
	}
}

func TestFitDeterministic(t *testing.T) {
	train := func() float64 {
		ds := makeQuadraticDataset(200, 7)
		n := NewMLP(rand.New(rand.NewSource(8)), Tanh{}, 2, 8, 1)
		return n.Fit(ds, &Adam{LR: 0.01}, TrainConfig{Epochs: 10, BatchSize: 32, Seed: 9})
	}
	if a, b := train(), train(); a != b {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewMLP(rng, ReLU{}, 2, 4, 1)
	c := n.Clone()
	in := []float64{0.2, -0.4}
	if n.Predict1(in) != c.Predict1(in) {
		t.Fatal("clone predicts differently")
	}
	// Mutating the clone must not affect the original.
	c.Layers[0].W.Set(0, 0, 99)
	if n.Layers[0].W.At(0, 0) == 99 {
		t.Fatal("clone shares weight storage")
	}
}

func TestDatasetShuffleKeepsPairs(t *testing.T) {
	x := mat.NewDense(50, 1)
	y := mat.NewDense(50, 1)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, float64(i))
		y.Set(i, 0, float64(i)*2)
	}
	ds := &Dataset{X: x, Y: y}
	ds.Shuffle(rand.New(rand.NewSource(11)))
	moved := false
	for i := 0; i < 50; i++ {
		if y.At(i, 0) != 2*x.At(i, 0) {
			t.Fatal("shuffle broke sample pairing")
		}
		if x.At(i, 0) != float64(i) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("shuffle did nothing")
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := makeQuadraticDataset(100, 12)
	train, val := ds.Split(0.8)
	if train.Len() != 80 || val.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), val.Len())
	}
	trainAll, valNil := ds.Split(1)
	if trainAll.Len() != 100 || valNil != nil {
		t.Fatal("full split wrong")
	}
}

func TestNewDatasetMismatch(t *testing.T) {
	if _, err := NewDataset(mat.NewDense(3, 1), mat.NewDense(4, 1)); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

func TestNormalizer(t *testing.T) {
	x := mat.NewDenseFrom([][]float64{{0, 100}, {10, 100}, {20, 100}})
	nm := FitNormalizer(x)
	if math.Abs(nm.Mean[0]-10) > 1e-12 {
		t.Fatalf("Mean[0] = %v", nm.Mean[0])
	}
	if nm.Std[1] != 1 {
		t.Fatalf("constant column Std = %v, want fallback 1", nm.Std[1])
	}
	s := []float64{10, 100}
	nm.Apply(s)
	if math.Abs(s[0]) > 1e-12 || math.Abs(s[1]) > 1e-12 {
		t.Fatalf("normalized mean sample = %v, want zeros", s)
	}
	// Matrix application normalizes columns to mean 0 / var 1.
	nm2 := FitNormalizer(x)
	nm2.ApplyMatrix(x)
	var mean0 float64
	for i := 0; i < 3; i++ {
		mean0 += x.At(i, 0)
	}
	if math.Abs(mean0) > 1e-9 {
		t.Fatalf("ApplyMatrix mean = %v", mean0/3)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := NewMLP(rng, Tanh{}, 3, 7, 2)
	norm := &Normalizer{Mean: []float64{1, 2, 3}, Std: []float64{4, 5, 6}}
	data, err := MarshalModel(n, norm)
	if err != nil {
		t.Fatal(err)
	}
	n2, norm2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.1, -0.2, 0.3}
	a, b := n.Predict(in), n2.Predict(in)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("round-trip prediction differs: %v vs %v", a, b)
		}
	}
	if norm2 == nil || norm2.Mean[2] != 3 || norm2.Std[0] != 4 {
		t.Fatalf("normalizer round trip = %+v", norm2)
	}
}

func TestSerializeNilNormalizer(t *testing.T) {
	n := NewMLP(rand.New(rand.NewSource(14)), ReLU{}, 2, 3, 1)
	data, err := MarshalModel(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, norm, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if norm != nil {
		t.Fatal("nil normalizer became non-nil")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for name, data := range map[string]string{
		"not json":       "{",
		"wrong version":  `{"version": 99, "layers": [{"in":1,"out":1,"activation":"relu","w":[[1]],"b":[0]}]}`,
		"no layers":      `{"version": 1, "layers": []}`,
		"bad activation": `{"version": 1, "layers": [{"in":1,"out":1,"activation":"nope","w":[[1]],"b":[0]}]}`,
		"ragged weights": `{"version": 1, "layers": [{"in":2,"out":1,"activation":"relu","w":[[1]],"b":[0]}]}`,
		"chain mismatch": `{"version": 1, "layers": [{"in":1,"out":2,"activation":"relu","w":[[1],[1]],"b":[0,0]},{"in":3,"out":1,"activation":"identity","w":[[1,1,1]],"b":[0]}]}`,
	} {
		if _, _, err := UnmarshalModel([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: training on any small random dataset never produces NaN
// parameters with a sane learning rate.
func TestQuickTrainingStaysFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := mat.NewDense(32, 3)
		y := mat.NewDense(32, 1)
		x.Randomize(rng, 2)
		y.Randomize(rng, 2)
		ds := &Dataset{X: x, Y: y}
		n := NewMLP(rng, Tanh{}, 3, 8, 1)
		n.Fit(ds, &Adam{LR: 0.01}, TrainConfig{Epochs: 5, BatchSize: 8, Seed: seed})
		for _, l := range n.Layers {
			for _, w := range l.W.Data() {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
