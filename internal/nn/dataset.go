package nn

import (
	"fmt"
	"math"
	"math/rand"

	"safeplan/internal/mat"
)

// Dataset is a supervised regression dataset: row i of X maps to row i of Y.
type Dataset struct {
	X, Y *mat.Dense
}

// NewDataset wraps feature and target matrices, validating row agreement.
func NewDataset(x, y *mat.Dense) (*Dataset, error) {
	if x.Rows() != y.Rows() {
		return nil, fmt.Errorf("nn: dataset rows mismatch %d vs %d", x.Rows(), y.Rows())
	}
	return &Dataset{X: x, Y: y}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows() }

// Shuffle permutes the samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.Len()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		swapRows(d.X, i, j)
		swapRows(d.Y, i, j)
	}
}

func swapRows(m *mat.Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Split partitions the dataset into a training set with frac of the samples
// and a validation set with the rest.  frac is clamped to (0, 1].
func (d *Dataset) Split(frac float64) (train, val *Dataset) {
	if frac <= 0 {
		frac = 0.5
	}
	if frac > 1 {
		frac = 1
	}
	n := d.Len()
	k := int(float64(n) * frac)
	if k == 0 {
		k = 1
	}
	train = &Dataset{X: sliceRows(d.X, 0, k), Y: sliceRows(d.Y, 0, k)}
	if k >= n {
		// Empty validation set is represented as nil.
		return train, nil
	}
	val = &Dataset{X: sliceRows(d.X, k, n), Y: sliceRows(d.Y, k, n)}
	return train, val
}

func sliceRows(m *mat.Dense, from, to int) *mat.Dense {
	out := mat.NewDense(to-from, m.Cols())
	for i := from; i < to; i++ {
		copy(out.Row(i-from), m.Row(i))
	}
	return out
}

// Batch copies samples [from, to) into the provided scratch matrices
// (allocating if nil or mis-sized) and returns them.
func (d *Dataset) Batch(from, to int, bx, by *mat.Dense) (*mat.Dense, *mat.Dense) {
	n := to - from
	if bx == nil || bx.Rows() != n {
		bx = mat.NewDense(n, d.X.Cols())
		by = mat.NewDense(n, d.Y.Cols())
	}
	for i := from; i < to; i++ {
		copy(bx.Row(i-from), d.X.Row(i))
		copy(by.Row(i-from), d.Y.Row(i))
	}
	return bx, by
}

// Normalizer standardizes features to zero mean and unit variance; it is
// fitted on training data and baked into serialized planner models so the
// same transform applies at inference time.
type Normalizer struct {
	Mean, Std []float64
}

// FitNormalizer computes per-column mean and standard deviation of x.
// Columns with (near-)zero variance get Std 1 so they pass through.
func FitNormalizer(x *mat.Dense) *Normalizer {
	cols := x.Cols()
	n := float64(x.Rows())
	nm := &Normalizer{Mean: make([]float64, cols), Std: make([]float64, cols)}
	for i := 0; i < x.Rows(); i++ {
		r := x.Row(i)
		for j, v := range r {
			nm.Mean[j] += v
		}
	}
	for j := range nm.Mean {
		nm.Mean[j] /= n
	}
	for i := 0; i < x.Rows(); i++ {
		r := x.Row(i)
		for j, v := range r {
			d := v - nm.Mean[j]
			nm.Std[j] += d * d
		}
	}
	for j := range nm.Std {
		nm.Std[j] = math.Sqrt(nm.Std[j] / n)
		if nm.Std[j] < 1e-9 {
			nm.Std[j] = 1
		}
	}
	return nm
}

// Apply standardizes a single sample in place.
func (nm *Normalizer) Apply(sample []float64) {
	for j := range sample {
		sample[j] = (sample[j] - nm.Mean[j]) / nm.Std[j]
	}
}

// ApplyMatrix standardizes every row of x in place.
func (nm *Normalizer) ApplyMatrix(x *mat.Dense) {
	for i := 0; i < x.Rows(); i++ {
		nm.Apply(x.Row(i))
	}
}

// TrainConfig drives Fit.
type TrainConfig struct {
	Epochs    int                           // passes over the data (required, > 0)
	BatchSize int                           // minibatch size; 0 selects 32
	Seed      int64                         // shuffle seed
	Verbose   func(epoch int, loss float64) // optional progress callback
}

// Fit trains the network on ds with opt under MSE loss and returns the
// final epoch's mean training loss.
func (n *Network) Fit(ds *Dataset, opt Optimizer, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		panic("nn: TrainConfig.Epochs must be positive")
	}
	bs := cfg.BatchSize
	if bs <= 0 {
		bs = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var bx, by *mat.Dense
	var last float64
	for e := 0; e < cfg.Epochs; e++ {
		ds.Shuffle(rng)
		var sum float64
		batches := 0
		for from := 0; from < ds.Len(); from += bs {
			to := from + bs
			if to > ds.Len() {
				to = ds.Len()
			}
			bx, by = ds.Batch(from, to, bx, by)
			sum += n.TrainBatch(bx, by, opt)
			batches++
		}
		last = sum / float64(batches)
		if cfg.Verbose != nil {
			cfg.Verbose(e, last)
		}
	}
	return last
}

// Evaluate returns the MSE of the network over the dataset.
func (n *Network) Evaluate(ds *Dataset) float64 {
	pred := n.ForwardBatch(ds.X)
	return MSE(pred, ds.Y)
}
