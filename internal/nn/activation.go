// Package nn is a from-scratch feed-forward neural-network substrate: dense
// layers, common activations, mean-squared-error training with SGD or Adam,
// and JSON serialization.  It exists so the repository can *train* the
// NN-based planners (κ_n) that the safety framework wraps — the paper
// obtains them with the method of its reference [6]; here they are learned
// by imitation of analytic expert policies (see internal/planner).
//
// The implementation is deliberately small and deterministic: stdlib only,
// no goroutines, all randomness injected via *rand.Rand.
package nn

import "math"

// Activation is an element-wise nonlinearity with its derivative.
type Activation interface {
	// Name identifies the activation in serialized models.
	Name() string
	// Apply computes f(x).
	Apply(x float64) float64
	// Derivative computes f'(x) given the pre-activation x.
	Derivative(x float64) float64
}

// ReLU is max(0, x).
type ReLU struct{}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Apply implements Activation.
func (ReLU) Apply(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Derivative implements Activation.
func (ReLU) Derivative(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// LeakyReLU is x for x>0 and αx otherwise; the zero value uses α = 0.01.
type LeakyReLU struct {
	Alpha float64
}

// Name implements Activation.
func (LeakyReLU) Name() string { return "leaky_relu" }

func (l LeakyReLU) alpha() float64 {
	if l.Alpha == 0 {
		return 0.01
	}
	return l.Alpha
}

// Apply implements Activation.
func (l LeakyReLU) Apply(x float64) float64 {
	if x > 0 {
		return x
	}
	return l.alpha() * x
}

// Derivative implements Activation.
func (l LeakyReLU) Derivative(x float64) float64 {
	if x > 0 {
		return 1
	}
	return l.alpha()
}

// Tanh is the hyperbolic tangent.
type Tanh struct{}

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// Apply implements Activation.
func (Tanh) Apply(x float64) float64 { return math.Tanh(x) }

// Derivative implements Activation.
func (Tanh) Derivative(x float64) float64 {
	t := math.Tanh(x)
	return 1 - t*t
}

// Sigmoid is the logistic function.
type Sigmoid struct{}

// Name implements Activation.
func (Sigmoid) Name() string { return "sigmoid" }

// Apply implements Activation.
func (Sigmoid) Apply(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Derivative implements Activation.
func (Sigmoid) Derivative(x float64) float64 {
	s := 1 / (1 + math.Exp(-x))
	return s * (1 - s)
}

// Identity is f(x) = x, used for linear output layers in regression.
type Identity struct{}

// Name implements Activation.
func (Identity) Name() string { return "identity" }

// Apply implements Activation.
func (Identity) Apply(x float64) float64 { return x }

// Derivative implements Activation.
func (Identity) Derivative(float64) float64 { return 1 }

// ActivationByName returns the activation registered under name, used when
// deserializing models.
func ActivationByName(name string) (Activation, bool) {
	switch name {
	case "relu":
		return ReLU{}, true
	case "leaky_relu":
		return LeakyReLU{}, true
	case "tanh":
		return Tanh{}, true
	case "sigmoid":
		return Sigmoid{}, true
	case "identity":
		return Identity{}, true
	}
	return nil, false
}
