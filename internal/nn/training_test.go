package nn

import (
	"math"
	"math/rand"
	"testing"

	"safeplan/internal/mat"
)

func TestClipGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewMLP(rng, Tanh{}, 2, 4, 1)
	// Produce gradients with one backward pass.
	x := mat.NewDense(8, 2)
	y := mat.NewDense(8, 1)
	x.Randomize(rng, 3)
	y.Fill(10) // large targets → large gradients
	pred := n.ForwardBatch(x)
	dOut := mat.NewDense(8, 1)
	for i := 0; i < 8; i++ {
		dOut.Set(i, 0, 2*(pred.At(i, 0)-y.At(i, 0)))
	}
	d := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		d = n.Layers[i].Backward(d)
	}
	pre := n.ClipGradients(0) // no-op returns the norm
	if pre <= 0 {
		t.Fatal("expected nonzero gradient norm")
	}
	clipTo := pre / 2
	if got := n.ClipGradients(clipTo); math.Abs(got-pre) > 1e-9 {
		t.Fatalf("pre-clip norm = %v, want %v", got, pre)
	}
	// After clipping the norm must equal clipTo.
	var sq float64
	for _, l := range n.Layers {
		for _, g := range l.GradW.Data() {
			sq += g * g
		}
		for _, g := range l.GradB {
			sq += g * g
		}
	}
	if got := math.Sqrt(sq); math.Abs(got-clipTo) > 1e-9*clipTo {
		t.Fatalf("post-clip norm = %v, want %v", got, clipTo)
	}
	// Clipping below the current norm again is idempotent-ish; clipping
	// above is a no-op.
	if n.ClipGradients(1e9); false {
		t.Fatal("unreachable")
	}
}

func TestLRSetters(t *testing.T) {
	s := &SGD{LR: 0.1}
	s.SetLR(0.05)
	if s.CurrentLR() != 0.05 {
		t.Fatal("SGD SetLR broken")
	}
	a := &Adam{LR: 0.01}
	a.SetLR(0.002)
	if a.CurrentLR() != 0.002 {
		t.Fatal("Adam SetLR broken")
	}
}

func TestFitAdvancedLearns(t *testing.T) {
	ds := makeQuadraticDataset(600, 21)
	n := NewMLP(rand.New(rand.NewSource(22)), Tanh{}, 2, 24, 1)
	res := n.FitAdvanced(ds, &Adam{LR: 0.01}, AdvancedTrainConfig{
		Epochs:    50,
		BatchSize: 64,
		Seed:      23,
		ClipNorm:  5,
		LRDecay:   0.98,
	})
	if res.TrainLoss > 0.01 {
		t.Fatalf("FitAdvanced final loss %v too high", res.TrainLoss)
	}
	if res.Epochs != 50 || res.StoppedEarly {
		t.Fatalf("unexpected early stop: %+v", res)
	}
	if !math.IsNaN(res.ValLoss) {
		t.Fatalf("no validation requested but ValLoss = %v", res.ValLoss)
	}
}

func TestFitAdvancedEarlyStops(t *testing.T) {
	// Pure-noise targets: validation loss cannot improve for long, so
	// patience must trigger.
	rng := rand.New(rand.NewSource(31))
	x := mat.NewDense(400, 2)
	y := mat.NewDense(400, 1)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	ds := &Dataset{X: x, Y: y}
	n := NewMLP(rand.New(rand.NewSource(32)), Tanh{}, 2, 16, 1)
	res := n.FitAdvanced(ds, &Adam{LR: 0.02}, AdvancedTrainConfig{
		Epochs:    200,
		BatchSize: 32,
		Seed:      33,
		ValFrac:   0.25,
		Patience:  5,
	})
	if !res.StoppedEarly {
		t.Fatalf("expected early stop on noise, ran %d epochs", res.Epochs)
	}
	if !res.RestoredBest {
		t.Fatal("best weights not restored")
	}
	if math.IsNaN(res.ValLoss) {
		t.Fatal("validation loss missing")
	}
}

func TestFitAdvancedRestoresBestWeights(t *testing.T) {
	// After restore, evaluating on the (deterministic) validation part of
	// the split must give ≤ the final-epoch value — spot-check by running
	// twice and confirming determinism of the result.
	run := func() FitResult {
		ds := makeQuadraticDataset(300, 41)
		n := NewMLP(rand.New(rand.NewSource(42)), Tanh{}, 2, 8, 1)
		return n.FitAdvanced(ds, &Adam{LR: 0.01}, AdvancedTrainConfig{
			Epochs: 40, BatchSize: 32, Seed: 43, ValFrac: 0.2, Patience: 100,
		})
	}
	a, b := run(), run()
	if a.ValLoss != b.ValLoss || a.TrainLoss != b.TrainLoss {
		t.Fatalf("FitAdvanced not deterministic: %+v vs %+v", a, b)
	}
	if a.ValLoss > 0.1 {
		t.Fatalf("validation loss %v too high", a.ValLoss)
	}
}

func TestFitAdvancedLRDecayApplied(t *testing.T) {
	ds := makeQuadraticDataset(100, 51)
	n := NewMLP(rand.New(rand.NewSource(52)), Tanh{}, 2, 4, 1)
	opt := &Adam{LR: 0.01}
	n.FitAdvanced(ds, opt, AdvancedTrainConfig{
		Epochs: 10, BatchSize: 32, Seed: 53, LRDecay: 0.5,
	})
	// 10 epochs of halving (decay applies after each epoch, incl. the last).
	want := 0.01 * math.Pow(0.5, 10)
	if math.Abs(opt.LR-want)/want > 1e-9 {
		t.Fatalf("decayed LR = %v, want %v", opt.LR, want)
	}
}

func TestFitAdvancedPanicsOnZeroEpochs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds := makeQuadraticDataset(10, 1)
	NewMLP(rand.New(rand.NewSource(1)), Tanh{}, 2, 2, 1).
		FitAdvanced(ds, &Adam{LR: 0.01}, AdvancedTrainConfig{})
}
