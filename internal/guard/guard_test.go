package guard

import (
	"math"
	"strings"
	"testing"

	"safeplan/internal/dynamics"
)

var testLimits = dynamics.Limits{VMin: 0, VMax: 12, AMin: -6, AMax: 3}

func newTestGuard(t *testing.T, mut func(*Config)) *Guard {
	t.Helper()
	cfg := DefaultConfig(testLimits)
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func planOK(a float64) func() (float64, bool)   { return func() (float64, bool) { return a, false } }
func planEmrg(a float64) func() (float64, bool) { return func() (float64, bool) { return a, true } }
func planPanic() func() (float64, bool)         { return func() (float64, bool) { panic("boom") } }

const kEmergency = -6.0

func emerg() float64 { return kEmergency }

func TestCleanPassThrough(t *testing.T) {
	g := newTestGuard(t, nil)
	a, em, r := g.Step(planOK(1.5), emerg, nil, nil)
	if a != 1.5 || em {
		t.Fatalf("clean step altered output: a=%v em=%v", a, em)
	}
	if r.Fault != FaultNone || r.Fallback != FallbackNone || r.Transition() {
		t.Fatalf("clean step reported %+v", r)
	}
	st := g.Stats()
	if st.PlannerCalls != 1 || st.Faults != 0 || st.FinalState != Nominal {
		t.Fatalf("stats %+v", st)
	}
}

func TestPanicContainedFallsBackToEmergency(t *testing.T) {
	g := newTestGuard(t, nil)
	a, em, r := g.Step(planPanic(), emerg, nil, nil)
	if a != kEmergency || !em {
		t.Fatalf("panic fallback a=%v em=%v, want κ_e", a, em)
	}
	if r.Fault != FaultPanic || r.Fallback != FallbackEmergency {
		t.Fatalf("panic step reported %+v", r)
	}
	if r.PanicValue == nil {
		t.Fatal("panic value not captured")
	}
	if g.Stats().Panics != 1 {
		t.Fatalf("stats %+v", g.Stats())
	}
}

func TestNonFiniteAndRangeUseLastGood(t *testing.T) {
	g := newTestGuard(t, nil)
	g.Step(planOK(2), emerg, nil, nil) // prime the last-good cache
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 99, -99} {
		a, em, r := g.Step(planOK(bad), emerg, nil, nil)
		if a != 2 || em {
			t.Fatalf("fault on %v: got a=%v em=%v, want last-good 2", bad, a, em)
		}
		if r.Fallback != FallbackLastGood {
			t.Fatalf("fault on %v: fallback %v", bad, r.Fallback)
		}
		g.Step(planOK(2), emerg, nil, nil) // drain the score between faults
	}
	st := g.Stats()
	if st.NonFinite != 3 || st.RangeRejects != 2 || st.FallbackLastGood != 5 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLastGoodExpiresToEmergency(t *testing.T) {
	g := newTestGuard(t, func(c *Config) { c.LastGoodTTL = 2; c.DegradeScore = 100; c.EmergencyScore = 100 })
	g.Step(planOK(2), emerg, nil, nil)
	// Age the cache past its TTL with faults (which never refresh it).
	for i := 0; i < 2; i++ {
		if _, _, r := g.Step(planOK(math.NaN()), emerg, nil, nil); r.Fallback != FallbackLastGood {
			t.Fatalf("step %d: fallback %v, want last-good", i, r.Fallback)
		}
	}
	if _, _, r := g.Step(planOK(math.NaN()), emerg, nil, nil); r.Fallback != FallbackEmergency {
		t.Fatalf("stale cache: fallback %v, want emergency", r.Fallback)
	}
}

func TestEmergencyVerdictFaultFallsBackToEmergency(t *testing.T) {
	g := newTestGuard(t, nil)
	g.Step(planOK(2), emerg, nil, nil)
	// κ_n said emergency but produced garbage: the verdict demands κ_e,
	// not the cached non-emergency command.
	a, em, r := g.Step(planEmrg(math.NaN()), emerg, nil, nil)
	if a != kEmergency || !em || r.Fallback != FallbackEmergency {
		t.Fatalf("got a=%v em=%v r=%+v, want κ_e", a, em, r)
	}
}

func TestEmergencyCommandCrossCheck(t *testing.T) {
	g := newTestGuard(t, nil)
	g.Step(planOK(2), emerg, nil, nil) // prime the last-good cache

	// A truthful emergency verdict carrying κ_e's own command passes
	// through untouched.
	a, em, r := g.Step(planEmrg(kEmergency), emerg, nil, nil)
	if a != kEmergency || !em || r.Fault != FaultNone || r.Fallback != FallbackNone {
		t.Fatalf("genuine κ_e step: a=%v em=%v r=%+v", a, em, r)
	}

	// An emergency verdict with a deviating in-range command (a stuck or
	// biased output stage) is an output-validation fault and must yield
	// the recomputed κ_e command — never the last-good cache.
	a, em, r = g.Step(planEmrg(1.5), emerg, nil, nil)
	if a != kEmergency || !em {
		t.Fatalf("impersonated κ_e step: a=%v em=%v, want recomputed κ_e", a, em)
	}
	if r.Fault != FaultRange || r.Fallback != FallbackEmergency {
		t.Fatalf("impersonated κ_e step reported %+v", r)
	}
	if g.Stats().RangeRejects != 1 {
		t.Fatalf("stats %+v", g.Stats())
	}
}

func TestDeadlineFault(t *testing.T) {
	g := newTestGuard(t, nil) // default budget 0.1 s
	lat := 0.0
	latFn := func() float64 { return lat }
	if _, _, r := g.Step(planOK(1), emerg, latFn, nil); r.Fault != FaultNone {
		t.Fatalf("on-time call flagged %v", r.Fault)
	}
	lat = 0.25
	a, em, r := g.Step(planOK(1), emerg, latFn, nil)
	if r.Fault != FaultDeadline {
		t.Fatalf("late call flagged %v", r.Fault)
	}
	if a != 1 || em {
		// last-good cache holds the previous command (1).
		t.Fatalf("deadline fallback a=%v em=%v", a, em)
	}
}

func TestDegradationAndRecoveryHysteresis(t *testing.T) {
	g := newTestGuard(t, func(c *Config) {
		c.DegradeScore = 2
		c.EmergencyScore = 4
		c.RecoverySteps = 3
		c.LastGoodTTL = 100
	})
	fault := planOK(math.NaN())

	g.Step(fault, emerg, nil, nil)
	if g.State() != Nominal {
		t.Fatalf("one fault degraded to %v", g.State())
	}
	_, _, r := g.Step(fault, emerg, nil, nil)
	if g.State() != Degraded || !r.Transition() || r.Prev != Nominal {
		t.Fatalf("after 2 faults: state %v, r %+v", g.State(), r)
	}
	// Degraded faults must go to κ_e even with a fresh last-good cache.
	if _, _, r := g.Step(fault, emerg, nil, nil); r.Fallback != FallbackEmergency {
		t.Fatalf("degraded fallback %v", r.Fallback)
	}
	g.Step(fault, emerg, nil, nil)
	if g.State() != EmergencyOnly {
		t.Fatalf("after 4 faults: state %v", g.State())
	}

	// Recovery: drain the score (4 clean steps), then a full clean streak
	// per level.  The clean steps that drain the score also count toward
	// the streak only once the score is zero at streak completion.
	steps := 0
	for g.State() == EmergencyOnly {
		a, em, r := g.Step(planOK(1), emerg, nil, nil)
		if a != kEmergency || !em || r.Fallback != FallbackEmergency {
			t.Fatalf("bypass step a=%v em=%v r=%+v", a, em, r)
		}
		if steps++; steps > 50 {
			t.Fatal("never recovered from EmergencyOnly")
		}
	}
	if g.State() != Degraded {
		t.Fatalf("recovered to %v, want Degraded (one level at a time)", g.State())
	}
	// One more full streak to reach Nominal; commands flow again in
	// Degraded.
	steps = 0
	for g.State() == Degraded {
		a, em, _ := g.Step(planOK(1), emerg, nil, nil)
		if a != 1 || em {
			t.Fatalf("degraded clean step a=%v em=%v", a, em)
		}
		if steps++; steps > 50 {
			t.Fatal("never recovered from Degraded")
		}
	}
	st := g.Stats()
	if st.Degradations != 2 || st.Recoveries != 2 || st.WorstState != EmergencyOnly || st.FinalState != Nominal {
		t.Fatalf("stats %+v", st)
	}
}

func TestFlakyPlannerReearnsTrustSlowly(t *testing.T) {
	g := newTestGuard(t, func(c *Config) {
		c.DegradeScore = 1
		c.EmergencyScore = 2
		c.RecoverySteps = 4
	})
	fault := planOK(math.NaN())
	g.Step(fault, emerg, nil, nil)
	g.Step(fault, emerg, nil, nil)
	if g.State() != EmergencyOnly {
		t.Fatalf("state %v", g.State())
	}
	// A fault mid-recovery resets the streak: 3 clean + 1 fault + 3 clean
	// must not recover (needs 4 consecutive with score drained).
	for i := 0; i < 3; i++ {
		g.Step(planOK(1), emerg, nil, nil)
	}
	g.Step(fault, emerg, nil, nil)
	for i := 0; i < 3; i++ {
		g.Step(planOK(1), emerg, nil, nil)
	}
	if g.State() != EmergencyOnly {
		t.Fatalf("flaky planner re-earned trust too fast: %v", g.State())
	}
}

// envFixed returns an envelope callback pinning a fixed safe-action
// interval, as the episode runners derive from the monitor's commitment
// guards.
func envFixed(lo, hi float64, ok bool) func() (float64, float64, bool) {
	return func() (float64, float64, bool) { return lo, hi, ok }
}

func TestEnvelopeRejectsCommittedViolation(t *testing.T) {
	g := newTestGuard(t, nil)
	// Committed passing-before: the monitor demands at least 1.0 m/s² to
	// keep clearing the zone ahead of the oncoming vehicle.  An in-limits
	// command below the floor (a stuck output replaying a gentle cruise)
	// must be rejected and replaced by κ_e, never executed.
	a, em, r := g.Step(planOK(0.2), emerg, nil, envFixed(1.0, 3.0, true))
	if r.Fault != FaultRange || r.Fallback != FallbackEmergency {
		t.Fatalf("floor violation reported %+v", r)
	}
	if a != kEmergency || !em {
		t.Fatalf("floor violation executed a=%v em=%v", a, em)
	}
	// A command satisfying the floor passes through untouched.
	a, em, r = g.Step(planOK(1.5), emerg, nil, envFixed(1.0, 3.0, true))
	if r.Fault != FaultNone || a != 1.5 || em {
		t.Fatalf("in-envelope command a=%v em=%v r=%+v", a, em, r)
	}
	if g.Stats().RangeRejects != 1 {
		t.Fatalf("stats %+v", g.Stats())
	}
}

func TestEnvelopeNotOKAdmitsOnlyEmergency(t *testing.T) {
	g := newTestGuard(t, nil)
	// ok=false: the monitor's verdict for this state is an emergency
	// hand-off, so a non-emergency command — however plausible — cannot
	// be trusted.
	a, em, r := g.Step(planOK(1), emerg, nil, envFixed(0, 0, false))
	if r.Fault != FaultRange || a != kEmergency || !em {
		t.Fatalf("no-envelope step a=%v em=%v r=%+v", a, em, r)
	}
}

func TestLastGoodRevalidatedAgainstEnvelope(t *testing.T) {
	g := newTestGuard(t, nil)
	// Cache 0.5 while the state is unconstrained.
	g.Step(planOK(0.5), emerg, nil, envFixed(-6, 3, true))
	// A fault arrives after the ego commits: the current envelope floors
	// commands at 1.0, the cached 0.5 would break the commitment, so the
	// fallback must be κ_e even though the cache is fresh.
	a, em, r := g.Step(planOK(math.NaN()), emerg, nil, envFixed(1.0, 3.0, true))
	if r.Fallback != FallbackEmergency || a != kEmergency || !em {
		t.Fatalf("stale-committed fallback a=%v em=%v r=%+v", a, em, r)
	}
	// With an envelope that still admits the cache, last-good is used.
	g.Step(planOK(0.5), emerg, nil, envFixed(-6, 3, true))
	a, em, r = g.Step(planOK(math.NaN()), emerg, nil, envFixed(-6, 3, true))
	if r.Fallback != FallbackLastGood || a != 0.5 || em {
		t.Fatalf("valid last-good fallback a=%v em=%v r=%+v", a, em, r)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"nan budget", func(c *Config) { c.StepBudget = math.NaN() }, "step budget"},
		{"neg wall", func(c *Config) { c.WallBudget = -1 }, "wall budget"},
		{"neg ttl", func(c *Config) { c.LastGoodTTL = -1 }, "TTL"},
		{"zero degrade", func(c *Config) { c.DegradeScore = 0 }, "scores"},
		{"reversed scores", func(c *Config) { c.DegradeScore = 9 }, "below degrade"},
		{"zero recovery", func(c *Config) { c.RecoverySteps = 0 }, "recovery"},
		{"bad limits", func(c *Config) { c.Limits.AMin = 1 }, "AMin"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(testLimits)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := DefaultConfig(testLimits).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestEnumStrings(t *testing.T) {
	checks := []struct {
		got, want string
	}{
		{Nominal.String(), "nominal"},
		{Degraded.String(), "degraded"},
		{EmergencyOnly.String(), "emergency-only"},
		{FaultPanic.String(), "panic"},
		{FaultNonFinite.String(), "non-finite"},
		{FaultRange.String(), "range"},
		{FaultDeadline.String(), "deadline"},
		{FaultWallClock.String(), "wall-clock"},
		{FallbackLastGood.String(), "last-good"},
		{FallbackEmergency.String(), "emergency"},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
