// Package guard contains every compute-side failure mode of the embedded
// planner κ_n: panics, NaN/±Inf outputs, commands outside the actuation
// envelope, and blown per-step compute budgets (a deterministic
// simulated-time budget plus an optional wall-clock watchdog).  On a
// contained fault the guard substitutes a validated fallback — the last
// known-good κ_n command, or the emergency planner κ_e — and drives a
// degradation state machine (NOMINAL → DEGRADED → EMERGENCY_ONLY) with
// hysteresis, so a flaky planner loses trust quickly and re-earns it
// slowly.
//
// Soundness note (why the paper's safety theorem survives planner
// faults): the §III-E argument needs two properties of the control
// stack.  First, whenever the state is in the boundary safe set X_b, the
// command executed is κ_e's — the runtime monitor enforces that on every
// step where κ_n returns a usable verdict, and the guard commands κ_e
// itself on every step where it does not.  Second — and this is the
// subtle one — in the *committed* regime (negative slack: the ego can no
// longer stop before the conflict zone) the monitor returns
// emergency=false but silently clamps κ_n's output to a commitment guard
// (a floor while passing before the oncoming vehicle, a ceiling while
// passing after), so "returned normally with emergency=false" does NOT
// mean any admissible command is one-step safe.  The guard therefore
// revalidates every executed command against the monitor's safe-action
// envelope for the *current* state (the Envelope callback): a
// pass-through or cached last-good command outside the envelope is
// rejected as an output-validation fault and replaced by κ_e.  κ_e
// itself always satisfies the envelope — a feasible passing-before floor
// is at most AMax (else the monitor declares the commitment infeasible
// and hands off), and a passing-after ceiling only exists while even a
// full-throttle arrival stays behind the oncoming vehicle's latest exit,
// so the ceiling clamps at AMax.  κ_n's output is therefore never
// trusted beyond what the monitor plus guard validated, and the theorem
// goes through unchanged.  See DESIGN.md §11.
package guard

import (
	"fmt"
	"math"
	"time"

	"safeplan/internal/dynamics"
)

// State is the guard's trust level in the wrapped planner.
type State int

const (
	// Nominal: κ_n is trusted; faults fall back per-step.
	Nominal State = iota
	// Degraded: recent faults; fallbacks go straight to κ_e (the
	// last-good cache is considered stale on a degraded planner).
	Degraded
	// EmergencyOnly: the planner has lost trust entirely; κ_e commands
	// every step while κ_n is shadow-called so it can re-earn trust.
	EmergencyOnly
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Nominal:
		return "nominal"
	case Degraded:
		return "degraded"
	case EmergencyOnly:
		return "emergency-only"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Fault classifies one contained planner failure.
type Fault int

const (
	// FaultNone: the call returned a usable command.
	FaultNone Fault = iota
	// FaultPanic: the call panicked (recovered by the guard).
	FaultPanic
	// FaultDeadline: the simulated compute latency exceeded StepBudget.
	FaultDeadline
	// FaultWallClock: the wall-clock watchdog budget was exceeded.
	FaultWallClock
	// FaultNonFinite: the command was NaN or ±Inf.
	FaultNonFinite
	// FaultRange: the command failed output validation — outside the
	// actuation limits, outside the monitor's safe-action envelope for
	// the current state (a stuck or biased output stage violating a
	// commitment guard), or an emergency-flagged command deviating from
	// κ_e's recomputed command (a corrupted output stage impersonating the
	// trusted emergency planner).
	FaultRange
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultDeadline:
		return "deadline"
	case FaultWallClock:
		return "wall-clock"
	case FaultNonFinite:
		return "non-finite"
	case FaultRange:
		return "range"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Fallback names the action source that replaced κ_n's output.
type Fallback int

const (
	// FallbackNone: κ_n's own command was executed.
	FallbackNone Fallback = iota
	// FallbackLastGood: the cached last known-good κ_n command.
	FallbackLastGood
	// FallbackEmergency: the emergency planner κ_e.
	FallbackEmergency
)

// String implements fmt.Stringer.
func (f Fallback) String() string {
	switch f {
	case FallbackNone:
		return "none"
	case FallbackLastGood:
		return "last-good"
	case FallbackEmergency:
		return "emergency"
	}
	return fmt.Sprintf("fallback(%d)", int(f))
}

// Default thresholds; see Config.
const (
	DefaultStepBudget     = 0.1 // one control period at the paper's Δt_c
	DefaultLastGoodTTL    = 5
	DefaultDegradeScore   = 3
	DefaultEmergencyScore = 8
	DefaultRecoverySteps  = 20
)

// rangeTol absorbs round-off in planners that compute commands exactly at
// the envelope edge (e.g. clamped bisection landing on AMin ± 1 ulp).
const rangeTol = 1e-9

// Config tunes the guard.  The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Limits is the actuation envelope commands are validated against.
	// The episode runners fill it from the scenario's ego limits when the
	// zero value is left in place.
	Limits dynamics.Limits

	// StepBudget is the per-step simulated compute budget [s]: a planner
	// call whose *simulated* latency (reported by the fault injector)
	// exceeds it is a deadline fault.  Deterministic — it never reads the
	// wall clock.  Zero disables the check; DefaultConfig sets one
	// control period.
	StepBudget float64

	// WallBudget, when positive, adds a wall-clock watchdog: a call that
	// takes longer than this on the host is treated as a deadline fault
	// *after it returns*.  A call that never returns cannot be preempted
	// — Go offers no safe way to kill a goroutine — so this is a
	// detection bound, not a hard kill; it exists for real inference
	// backends, stays off by default, and is excluded from the
	// determinism guarantee.
	WallBudget time.Duration

	// LastGoodTTL is the maximum age [steps] of the cached last-good
	// command.  Beyond it, faults fall back to κ_e directly.
	LastGoodTTL int

	// DegradeScore and EmergencyScore are the leaky-bucket fault scores
	// (+1 per fault, −1 per clean step, floor 0) at which the guard
	// enters Degraded and EmergencyOnly.
	DegradeScore   int
	EmergencyScore int

	// RecoverySteps is the clean-step streak (with a drained score)
	// required to climb one trust level back up.  Climbing two levels
	// takes two full streaks — the hysteresis that stops a flaky planner
	// from oscillating in and out of trust.
	RecoverySteps int
}

// DefaultConfig returns the guard tuning used by the episode runners when
// a fault model is injected without an explicit guard: envelope checks
// against lim, a one-control-period simulated deadline, no wall-clock
// watchdog, and the default degradation thresholds.
func DefaultConfig(lim dynamics.Limits) Config {
	return Config{
		Limits:         lim,
		StepBudget:     DefaultStepBudget,
		LastGoodTTL:    DefaultLastGoodTTL,
		DegradeScore:   DefaultDegradeScore,
		EmergencyScore: DefaultEmergencyScore,
		RecoverySteps:  DefaultRecoverySteps,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Limits.Validate(); err != nil {
		return fmt.Errorf("guard: %w", err)
	}
	if math.IsNaN(c.StepBudget) || math.IsInf(c.StepBudget, 0) || c.StepBudget < 0 {
		return fmt.Errorf("guard: bad step budget %v", c.StepBudget)
	}
	if c.WallBudget < 0 {
		return fmt.Errorf("guard: negative wall budget %v", c.WallBudget)
	}
	if c.LastGoodTTL < 0 {
		return fmt.Errorf("guard: negative last-good TTL %d", c.LastGoodTTL)
	}
	if c.DegradeScore < 1 || c.EmergencyScore < 1 {
		return fmt.Errorf("guard: degradation scores must be >= 1 (degrade %d, emergency %d)",
			c.DegradeScore, c.EmergencyScore)
	}
	if c.EmergencyScore < c.DegradeScore {
		return fmt.Errorf("guard: emergency score %d below degrade score %d",
			c.EmergencyScore, c.DegradeScore)
	}
	if c.RecoverySteps < 1 {
		return fmt.Errorf("guard: recovery steps %d must be >= 1", c.RecoverySteps)
	}
	return nil
}

// EpisodeStats aggregates one episode's guard activity.  All fields are
// plain counts, so campaign shards can fold them order-independently.
type EpisodeStats struct {
	// PlannerCalls counts guarded κ_n invocations (including shadow
	// calls in EmergencyOnly).
	PlannerCalls int `json:"planner_calls"`

	// Faults counts contained failures, broken down by kind below.
	Faults       int `json:"faults"`
	Panics       int `json:"panics"`
	NonFinite    int `json:"non_finite"`
	RangeRejects int `json:"range_rejects"`
	Deadline     int `json:"deadline"`
	WallClock    int `json:"wall_clock"`

	// FallbackLastGood / FallbackEmergency count substituted commands by
	// source; BypassSteps counts EmergencyOnly steps where κ_e commanded
	// regardless of the shadow call's verdict.
	FallbackLastGood  int `json:"fallback_last_good"`
	FallbackEmergency int `json:"fallback_emergency"`
	BypassSteps       int `json:"bypass_steps"`

	// Degradations / Recoveries count downward / upward state
	// transitions; WorstState and FinalState summarize the trajectory.
	Degradations int   `json:"degradations"`
	Recoveries   int   `json:"recoveries"`
	WorstState   State `json:"worst_state"`
	FinalState   State `json:"final_state"`

	// CertifiedSteps counts clean pass-through steps cross-checked
	// against an IBP certified range; CertifiedRangeMisses counts those
	// whose executed command fell outside it.  Both stay zero (and out of
	// the JSON) unless SetCertifiedRange armed the check.
	CertifiedSteps       int `json:"certified_steps,omitempty"`
	CertifiedRangeMisses int `json:"certified_range_misses,omitempty"`
}

// StepResult reports what the guard did on one step.
type StepResult struct {
	// Fault is the contained failure (FaultNone on a clean call).
	Fault Fault
	// Fallback is the source of the executed command when κ_n's own
	// output was not used.
	Fallback Fallback
	// Prev and State are the degradation state before and after the step.
	Prev, State State
	// PanicValue is the recovered panic payload (nil otherwise).
	PanicValue any
	// CertifiedMiss is set when the executed command fell outside the
	// IBP certified range (diagnostic only — the command still executes,
	// the envelope check remains the enforcement layer).
	CertifiedMiss bool
}

// Transition reports whether the step moved the state machine.
func (r StepResult) Transition() bool { return r.State != r.Prev }

// Guard is one episode's planner-fault containment state.  It is not
// safe for concurrent use; episode runners create one per episode (agents
// are shared across campaign workers, the guard is not).
type Guard struct {
	cfg Config

	state       State
	score       int
	cleanStreak int

	lastGood    float64
	lastGoodAge int
	hasLastGood bool

	certified func() (lo, hi float64, ok bool)
	certTol   float64

	stats EpisodeStats
}

// New builds an episode guard.
func New(cfg Config) (*Guard, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Guard{cfg: cfg}, nil
}

// State returns the current degradation state.
func (g *Guard) State() State { return g.state }

// SetCertifiedRange arms the IBP cross-check: f returns the certified
// output range of the planner network for the current step's sound
// estimate (ok=false when no range is available, e.g. a non-NN planner
// or an unbounded estimate).  Clean non-emergency pass-through commands
// are then checked against [lo − tol, hi + tol] and misses are counted
// in EpisodeStats — flagged, not substituted, because the certified
// range is a diagnostic over-approximation while the monitor envelope
// is the enforcement layer.  A tol ≤ 0 uses the guard's default
// round-off tolerance.  Pass nil to disarm.
func (g *Guard) SetCertifiedRange(f func() (lo, hi float64, ok bool), tol float64) {
	if tol <= 0 {
		tol = rangeTol
	}
	g.certified, g.certTol = f, tol
}

// Stats returns the episode statistics accumulated so far.
func (g *Guard) Stats() EpisodeStats {
	s := g.stats
	s.FinalState = g.state
	return s
}

// Step runs one guarded planner invocation.  plan is the wrapped κ_n
// call; emergency computes κ_e's command for the current ego state (only
// invoked when needed, so its cost is paid on fallback steps alone);
// simLatency, when non-nil, reports the call's simulated compute latency
// [s] for the deterministic deadline check (it is read after plan returns
// or panics — fault injectors record the latency before raising);
// envelope, when non-nil, returns the monitor's safe-action interval for
// the *current* state (ok=false: no non-emergency command is admissible).
// Every executed non-emergency command — κ_n's own and the cached
// last-good — is validated against it, which is what keeps fallbacks
// sound in the committed regime where the monitor clamps silently.  A
// nil envelope validates against the actuation limits alone.
func (g *Guard) Step(plan func() (float64, bool), emergency func() float64, simLatency func() float64, envelope func() (lo, hi float64, ok bool)) (float64, bool, StepResult) {
	prev := g.state
	if g.hasLastGood {
		g.lastGoodAge++
	}

	a, em, pv, wall := g.call(plan)
	g.stats.PlannerCalls++
	fault := g.classify(a, pv, wall, simLatency)

	// The envelope is state-dependent, not command-dependent: compute it
	// at most once per step, shared by the pass-through check and the
	// last-good revalidation.
	envLo, envHi := g.cfg.Limits.AMin, g.cfg.Limits.AMax
	envOK, envDone := true, false
	env := func() (float64, float64, bool) {
		if !envDone {
			envDone = true
			if envelope != nil {
				envLo, envHi, envOK = envelope()
			}
		}
		return envLo, envHi, envOK
	}

	// κ_e cross-check: an emergency-flagged command must be κ_e's own.
	// κ_e is deterministic, so the guard recomputes it and rejects any
	// deviation (a stuck or biased output stage replaying a stale command
	// under a truthful emergency verdict) as an output-validation fault.
	var eAccel float64
	haveE := false
	if fault == FaultNone && em {
		eAccel, haveE = emergency(), true
		if math.Abs(a-eAccel) > rangeTol {
			fault = FaultRange
		}
	}

	// Envelope check: a non-emergency command must sit inside the
	// monitor's safe-action interval for the current state.  Inside the
	// actuation limits is not enough — in the committed regime the
	// monitor imposes a floor or ceiling with emergency=false, and a
	// corrupted output stage (stuck, biased) can violate it with a
	// perfectly plausible-looking command.
	if fault == FaultNone && !em {
		if lo, hi, ok := env(); !ok || a < lo-rangeTol || a > hi+rangeTol {
			fault = FaultRange
		}
	}

	r := StepResult{Fault: fault, Prev: prev, PanicValue: pv}
	if fault == FaultNone {
		g.onClean()
		r.State = g.state
		if prev == EmergencyOnly {
			// Bypass: the shadow call succeeded, but κ_e keeps control
			// until the planner re-earns trust.
			g.stats.BypassSteps++
			g.stats.FallbackEmergency++
			r.Fallback = FallbackEmergency
			if !haveE {
				eAccel = emergency()
			}
			return eAccel, true, r
		}
		if !em {
			g.lastGood, g.hasLastGood, g.lastGoodAge = a, true, 0
			// IBP cross-check on the executed κ_n command.  Emergency and
			// bypass steps execute κ_e, which the certified range does not
			// describe, so only this arm is checked.
			if g.certified != nil {
				if lo, hi, ok := g.certified(); ok {
					g.stats.CertifiedSteps++
					if a < lo-g.certTol || a > hi+g.certTol {
						g.stats.CertifiedRangeMisses++
						r.CertifiedMiss = true
					}
				}
			}
		}
		return a, em, r
	}

	g.recordFault(fault)
	g.onFault()
	r.State = g.state

	// The last-good cache is eligible only from a trusted planner whose
	// call *returned* with a non-emergency verdict (a panic yields no
	// verdict, and an emergency verdict demands κ_e itself), and only
	// after revalidating the cached command against the current state's
	// envelope: a command the monitor approved a few steps ago can
	// violate a commitment guard that has tightened since.
	if prev == Nominal && pv == nil && !em && g.hasLastGood && g.lastGoodAge <= g.cfg.LastGoodTTL {
		if lo, hi, ok := env(); ok && g.lastGood >= lo-rangeTol && g.lastGood <= hi+rangeTol {
			g.stats.FallbackLastGood++
			r.Fallback = FallbackLastGood
			return g.lastGood, false, r
		}
	}
	g.stats.FallbackEmergency++
	r.Fallback = FallbackEmergency
	if !haveE {
		eAccel = emergency()
	}
	return eAccel, true, r
}

// call invokes the planner with panic containment and optional wall-clock
// measurement.
func (g *Guard) call(plan func() (float64, bool)) (a float64, em bool, pv any, wall time.Duration) {
	var start time.Time
	if g.cfg.WallBudget > 0 {
		start = time.Now()
	}
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				pv = rec
				a, em = math.NaN(), false
			}
		}()
		a, em = plan()
	}()
	if g.cfg.WallBudget > 0 {
		wall = time.Since(start)
	}
	return a, em, pv, wall
}

// classify orders the fault checks: a panic trumps everything, budget
// violations trump output validation (a late command is invalid even if
// well-formed), and non-finite trumps range (NaN compares false to any
// bound).
func (g *Guard) classify(a float64, pv any, wall time.Duration, simLatency func() float64) Fault {
	if pv != nil {
		return FaultPanic
	}
	if g.cfg.StepBudget > 0 && simLatency != nil && simLatency() > g.cfg.StepBudget {
		return FaultDeadline
	}
	if g.cfg.WallBudget > 0 && wall > g.cfg.WallBudget {
		return FaultWallClock
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return FaultNonFinite
	}
	if a < g.cfg.Limits.AMin-rangeTol || a > g.cfg.Limits.AMax+rangeTol {
		return FaultRange
	}
	return FaultNone
}

func (g *Guard) recordFault(f Fault) {
	g.stats.Faults++
	switch f {
	case FaultPanic:
		g.stats.Panics++
	case FaultDeadline:
		g.stats.Deadline++
	case FaultWallClock:
		g.stats.WallClock++
	case FaultNonFinite:
		g.stats.NonFinite++
	case FaultRange:
		g.stats.RangeRejects++
	}
}

// onClean drains the leaky bucket and climbs one trust level per full
// clean streak once the score is drained.
func (g *Guard) onClean() {
	g.cleanStreak++
	if g.score > 0 {
		g.score--
	}
	if g.state != Nominal && g.score == 0 && g.cleanStreak >= g.cfg.RecoverySteps {
		g.state--
		g.cleanStreak = 0
		g.stats.Recoveries++
	}
}

// onFault fills the leaky bucket and degrades on threshold crossings.  A
// single step raises the score by one, so the machine always passes
// through Degraded on its way down.
func (g *Guard) onFault() {
	g.cleanStreak = 0
	if g.score < g.cfg.EmergencyScore {
		g.score++
	}
	switch {
	case g.state == Nominal && g.score >= g.cfg.DegradeScore:
		g.state = Degraded
		g.stats.Degradations++
	case g.state == Degraded && g.score >= g.cfg.EmergencyScore:
		g.state = EmergencyOnly
		g.stats.Degradations++
	}
	if g.state > g.stats.WorstState {
		g.stats.WorstState = g.state
	}
}
