package mat

import (
	"math/rand"
	"testing"
)

func TestNewDense(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %d×%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Fatal("new matrix not zero")
			}
		}
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero dims")
		}
	}()
	NewDense(0, 3)
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %d×%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatal("wrong values")
	}
}

func TestNewDenseFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestSetAtRow(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	row[1] = 9 // views alias storage
	if m.At(1, 1) != 9 {
		t.Fatal("Row is not a view")
	}
}

func TestBoundsPanics(t *testing.T) {
	m := NewDense(2, 2)
	for name, fn := range map[string]func(){
		"At":  func() { m.At(2, 0) },
		"Set": func() { m.Set(0, -1, 1) },
		"Row": func() { m.Row(5) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewDenseFrom([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := Mul(a, b)
	want := NewDenseFrom([][]float64{{58, 64}, {139, 154}})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul = %+v", got.Data())
	}
}

func TestMulShapePanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(a, b)
}

func TestMulAliasPanics(t *testing.T) {
	a := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected alias panic")
		}
	}()
	MulInto(a, a, a)
}

func TestMulTransInto(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}, {5, 6}}) // 3×2
	b := NewDenseFrom([][]float64{{7}, {8}, {9}})          // 3×1
	dst := NewDense(2, 1)
	MulTransInto(dst, a, b) // aᵀ·b = 2×1
	want := NewDenseFrom([][]float64{{1*7 + 3*8 + 5*9}, {2*7 + 4*8 + 6*9}})
	if !dst.Equal(want, 0) {
		t.Fatalf("MulTransInto = %+v", dst.Data())
	}
}

func TestMulBTransInto(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}})         // 1×2
	b := NewDenseFrom([][]float64{{3, 4}, {5, 6}}) // 2×2
	dst := NewDense(1, 2)
	MulBTransInto(dst, a, b) // a·bᵀ
	want := NewDenseFrom([][]float64{{1*3 + 2*4, 1*5 + 2*6}})
	if !dst.Equal(want, 0) {
		t.Fatalf("MulBTransInto = %+v", dst.Data())
	}
}

func TestTransMulAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(4, 3)
	b := NewDense(4, 5)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	// Reference: explicit transpose.
	at := NewDense(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := Mul(at, b)
	got := NewDense(3, 5)
	MulTransInto(got, a, b)
	if !got.Equal(want, 1e-12) {
		t.Fatal("MulTransInto disagrees with reference")
	}
}

func TestInPlaceOps(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}})
	n := NewDenseFrom([][]float64{{3, 4}})
	m.AddInPlace(n)
	if !m.Equal(NewDenseFrom([][]float64{{4, 6}}), 0) {
		t.Fatal("AddInPlace wrong")
	}
	m.SubInPlace(n)
	if !m.Equal(NewDenseFrom([][]float64{{1, 2}}), 0) {
		t.Fatal("SubInPlace wrong")
	}
	m.ScaleInPlace(3)
	if !m.Equal(NewDenseFrom([][]float64{{3, 6}}), 0) {
		t.Fatal("ScaleInPlace wrong")
	}
	m.AddScaledInPlace(-1, n)
	if !m.Equal(NewDenseFrom([][]float64{{0, 2}}), 0) {
		t.Fatal("AddScaledInPlace wrong")
	}
}

func TestApplyCloneZeroFill(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, -2}})
	c := m.Clone()
	m.Apply(func(x float64) float64 { return x * x })
	if !m.Equal(NewDenseFrom([][]float64{{1, 4}}), 0) {
		t.Fatal("Apply wrong")
	}
	if !c.Equal(NewDenseFrom([][]float64{{1, -2}}), 0) {
		t.Fatal("Clone aliases original")
	}
	m.Fill(7)
	if m.At(0, 0) != 7 || m.At(0, 1) != 7 {
		t.Fatal("Fill wrong")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero wrong")
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, -9}, {3, 2}})
	if got := m.MaxAbs(); got != 9 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestRandomizeDeterministic(t *testing.T) {
	a := NewDense(3, 3)
	b := NewDense(3, 3)
	a.Randomize(rand.New(rand.NewSource(42)), 0.5)
	b.Randomize(rand.New(rand.NewSource(42)), 0.5)
	if !a.Equal(b, 0) {
		t.Fatal("Randomize not deterministic for equal seeds")
	}
	if a.MaxAbs() > 0.5 {
		t.Fatal("Randomize exceeded scale")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewDense(1, 2).Equal(NewDense(2, 1), 1) {
		t.Fatal("different shapes reported equal")
	}
}
