// Package mat provides the small dense linear algebra the framework needs:
// fixed-size 2-vectors and 2×2 matrices for the Kalman filter over
// (position, velocity) state, and a general row-major Dense matrix used by
// the neural-network substrate.
//
// Everything is allocation-conscious: the 2D types are plain value types,
// and Dense offers in-place variants for the inner loops of training.
package mat

import (
	"fmt"
	"math"
)

// Vec2 is a 2-vector, used for the (position, velocity) state of a vehicle.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns k·v.
func (v Vec2) Scale(k float64) Vec2 { return Vec2{k * v.X, k * v.Y} }

// Dot returns the inner product.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean norm.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Mat2 is a 2×2 matrix
//
//	| A B |
//	| C D |
type Mat2 struct {
	A, B, C, D float64
}

// Identity2 returns the 2×2 identity.
func Identity2() Mat2 { return Mat2{A: 1, D: 1} }

// Diag2 returns diag(a, d).
func Diag2(a, d float64) Mat2 { return Mat2{A: a, D: d} }

// Add returns m + n.
func (m Mat2) Add(n Mat2) Mat2 {
	return Mat2{m.A + n.A, m.B + n.B, m.C + n.C, m.D + n.D}
}

// Sub returns m - n.
func (m Mat2) Sub(n Mat2) Mat2 {
	return Mat2{m.A - n.A, m.B - n.B, m.C - n.C, m.D - n.D}
}

// Scale returns k·m.
func (m Mat2) Scale(k float64) Mat2 {
	return Mat2{k * m.A, k * m.B, k * m.C, k * m.D}
}

// Mul returns the matrix product m·n.
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// MulVec returns m·v.
func (m Mat2) MulVec(v Vec2) Vec2 {
	return Vec2{m.A*v.X + m.B*v.Y, m.C*v.X + m.D*v.Y}
}

// Transpose returns mᵀ.
func (m Mat2) Transpose() Mat2 { return Mat2{m.A, m.C, m.B, m.D} }

// Det returns the determinant.
func (m Mat2) Det() float64 { return m.A*m.D - m.B*m.C }

// Inverse returns m⁻¹.  It reports ok=false when the matrix is singular
// (|det| below 1e-300), in which case the returned matrix is the zero value.
func (m Mat2) Inverse() (Mat2, bool) {
	det := m.Det()
	if math.Abs(det) < 1e-300 {
		return Mat2{}, false
	}
	inv := 1 / det
	return Mat2{A: m.D * inv, B: -m.B * inv, C: -m.C * inv, D: m.A * inv}, true
}

// Trace returns A + D.
func (m Mat2) Trace() float64 { return m.A + m.D }

// IsSymmetric reports whether |B-C| ≤ tol·(1+max|entry|).
func (m Mat2) IsSymmetric(tol float64) bool {
	scale := 1 + math.Max(math.Max(math.Abs(m.A), math.Abs(m.D)),
		math.Max(math.Abs(m.B), math.Abs(m.C)))
	return math.Abs(m.B-m.C) <= tol*scale
}

// IsPSD reports whether the symmetric part of m is positive semi-definite,
// up to the tolerance tol on the eigenvalue test.  Kalman covariance
// matrices must satisfy this at every step.
func (m Mat2) IsPSD(tol float64) bool {
	// Symmetrize first; covariance updates can introduce tiny asymmetry.
	b := (m.B + m.C) / 2
	tr := m.A + m.D
	det := m.A*m.D - b*b
	// Eigenvalues of [[A,b],[b,D]] are (tr ± sqrt(tr²-4det))/2; PSD iff both ≥ 0,
	// i.e. tr ≥ 0 and det ≥ 0 (within tolerance).
	return tr >= -tol && det >= -tol*(1+tr*tr)
}

// String implements fmt.Stringer.
func (m Mat2) String() string {
	return fmt.Sprintf("[%.4g %.4g; %.4g %.4g]", m.A, m.B, m.C, m.D)
}
