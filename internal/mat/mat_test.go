package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Ops(t *testing.T) {
	v := Vec2{1, 2}
	w := Vec2{3, -4}
	if got := v.Add(w); got != (Vec2{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec2{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := w.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestMat2Identity(t *testing.T) {
	id := Identity2()
	m := Mat2{1, 2, 3, 4}
	if got := id.Mul(m); got != m {
		t.Errorf("I·m = %v", got)
	}
	if got := m.Mul(id); got != m {
		t.Errorf("m·I = %v", got)
	}
	v := Vec2{5, 7}
	if got := id.MulVec(v); got != v {
		t.Errorf("I·v = %v", got)
	}
}

func TestMat2Mul(t *testing.T) {
	m := Mat2{1, 2, 3, 4}
	n := Mat2{5, 6, 7, 8}
	want := Mat2{19, 22, 43, 50}
	if got := m.Mul(n); got != want {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMat2Inverse(t *testing.T) {
	m := Mat2{4, 7, 2, 6}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	got := m.Mul(inv)
	id := Identity2()
	const tol = 1e-12
	if math.Abs(got.A-id.A) > tol || math.Abs(got.B-id.B) > tol ||
		math.Abs(got.C-id.C) > tol || math.Abs(got.D-id.D) > tol {
		t.Fatalf("m·m⁻¹ = %v", got)
	}
	if _, ok := (Mat2{1, 2, 2, 4}).Inverse(); ok {
		t.Fatal("singular matrix reported invertible")
	}
}

func TestMat2TransposeDetTrace(t *testing.T) {
	m := Mat2{1, 2, 3, 4}
	if got := m.Transpose(); got != (Mat2{1, 3, 2, 4}) {
		t.Errorf("Transpose = %v", got)
	}
	if got := m.Det(); got != -2 {
		t.Errorf("Det = %v", got)
	}
	if got := m.Trace(); got != 5 {
		t.Errorf("Trace = %v", got)
	}
}

func TestMat2AddSubScale(t *testing.T) {
	m := Mat2{1, 2, 3, 4}
	n := Mat2{4, 3, 2, 1}
	if got := m.Add(n); got != (Mat2{5, 5, 5, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := m.Sub(n); got != (Mat2{-3, -1, 1, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := m.Scale(2); got != (Mat2{2, 4, 6, 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestMat2PSD(t *testing.T) {
	if !Diag2(1, 2).IsPSD(1e-12) {
		t.Error("diag(1,2) should be PSD")
	}
	if !Diag2(0, 0).IsPSD(1e-12) {
		t.Error("zero matrix should be PSD")
	}
	if Diag2(-1, 2).IsPSD(1e-12) {
		t.Error("diag(-1,2) should not be PSD")
	}
	// Symmetric indefinite.
	if (Mat2{1, 3, 3, 1}).IsPSD(1e-12) {
		t.Error("[[1,3],[3,1]] should not be PSD")
	}
}

func TestMat2Symmetric(t *testing.T) {
	if !(Mat2{1, 2, 2, 3}).IsSymmetric(1e-12) {
		t.Error("symmetric matrix rejected")
	}
	if (Mat2{1, 2, 3, 4}).IsSymmetric(1e-12) {
		t.Error("asymmetric matrix accepted")
	}
}

func TestQuickMat2MulAssociative(t *testing.T) {
	clean := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 1
		}
		// Keep magnitudes modest so products stay in float range.
		return math.Mod(x, 100)
	}
	f := func(a, b, c, d, e, g, h, i, j, k, l, m float64) bool {
		x := Mat2{clean(a), clean(b), clean(c), clean(d)}
		y := Mat2{clean(e), clean(g), clean(h), clean(i)}
		z := Mat2{clean(j), clean(k), clean(l), clean(m)}
		p := x.Mul(y).Mul(z)
		q := x.Mul(y.Mul(z))
		tol := 1e-6 * (1 + math.Abs(p.A) + math.Abs(p.B) + math.Abs(p.C) + math.Abs(p.D))
		return math.Abs(p.A-q.A) < tol && math.Abs(p.B-q.B) < tol &&
			math.Abs(p.C-q.C) < tol && math.Abs(p.D-q.D) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeProduct(t *testing.T) {
	clean := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 1
		}
		return math.Mod(x, 1000)
	}
	f := func(a, b, c, d, e, g, h, i float64) bool {
		x := Mat2{clean(a), clean(b), clean(c), clean(d)}
		y := Mat2{clean(e), clean(g), clean(h), clean(i)}
		return x.Mul(y).Transpose() == y.Transpose().Mul(x.Transpose())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
