package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major dense matrix.  It is the storage type of the
// neural-network substrate (weights, activations, gradients).
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of rows.  All rows must have
// equal length.
func NewDenseFrom(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Row returns a view (not a copy) of row i as a slice.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice (row-major).  Mutations are visible.
func (m *Dense) Data() []float64 { return m.data }

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero sets every element to 0, keeping the allocation.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Randomize fills the matrix with uniform values in [-scale, scale] using
// rng; it is used for weight initialization (deterministic given the seed).
func (m *Dense) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.data {
		m.data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// MulInto computes dst = a·b.  dst must be preallocated with matching shape
// and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic("mat: Mul dst shape mismatch")
	}
	if dst == a || dst == b {
		panic("mat: Mul dst aliases operand")
	}
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Mul returns a·b as a new matrix.
func Mul(a, b *Dense) *Dense {
	dst := NewDense(a.rows, b.cols)
	MulInto(dst, a, b)
	return dst
}

// MulTransInto computes dst = aᵀ·b without materializing the transpose.
func MulTransInto(dst, a, b *Dense) {
	if a.rows != b.rows {
		panic("mat: MulTrans shape mismatch")
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic("mat: MulTrans dst shape mismatch")
	}
	dst.Zero()
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.data[i*dst.cols : (i+1)*dst.cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulBTransInto computes dst = a·bᵀ without materializing the transpose.
func MulBTransInto(dst, a, b *Dense) {
	if a.cols != b.cols {
		panic("mat: MulBTrans shape mismatch")
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic("mat: MulBTrans dst shape mismatch")
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// AddInPlace computes m += n element-wise.
func (m *Dense) AddInPlace(n *Dense) {
	m.sameShape(n)
	for i, v := range n.data {
		m.data[i] += v
	}
}

// SubInPlace computes m -= n element-wise.
func (m *Dense) SubInPlace(n *Dense) {
	m.sameShape(n)
	for i, v := range n.data {
		m.data[i] -= v
	}
}

// ScaleInPlace computes m *= k element-wise.
func (m *Dense) ScaleInPlace(k float64) {
	for i := range m.data {
		m.data[i] *= k
	}
}

// AddScaledInPlace computes m += k·n, the axpy used by plain SGD.
func (m *Dense) AddScaledInPlace(k float64, n *Dense) {
	m.sameShape(n)
	for i, v := range n.data {
		m.data[i] += k * v
	}
}

// Apply sets every element x to f(x).
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

func (m *Dense) sameShape(n *Dense) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.rows, m.cols, n.rows, n.cols))
	}
}

// MaxAbs returns the largest absolute entry, 0 for the empty matrix.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports element-wise equality within tol.
func (m *Dense) Equal(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-n.data[i]) > tol {
			return false
		}
	}
	return true
}
