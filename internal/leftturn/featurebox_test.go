package leftturn

import (
	"math"
	"math/rand"
	"testing"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// featureTol absorbs floating-point slack in the corner bracket: the
// window times are monotone in the estimate endpoints in real arithmetic,
// but TimeToReach/TimeToCover round to nearest, so a sub-estimate's
// feature can escape the corner hull by an ulp or two.
const featureTol = 1e-9

// subEstimate draws an estimate whose P/V intervals (and point values)
// lie inside sound's, sharing its acceleration — exactly the family
// FeatureBoxInto certifies over, which includes the fused estimate.
func subEstimate(rng *rand.Rand, sound OncomingEstimate) OncomingEstimate {
	sub := func(iv interval.Interval) interval.Interval {
		a := iv.Lo + rng.Float64()*iv.Width()
		b := iv.Lo + rng.Float64()*iv.Width()
		return interval.New(math.Min(a, b), math.Max(a, b))
	}
	p, v := sub(sound.P), sub(sound.V)
	return OncomingEstimate{
		P: p, V: v,
		PointP: p.Lo + rng.Float64()*p.Width(),
		PointV: v.Lo + rng.Float64()*v.Width(),
		A:      sound.A,
	}
}

// TestFeatureBoxContainment is the bracketing property the certified
// range rests on: for random sound estimates and random sub-estimates,
// the point features computed from the sub-estimate's window lie inside
// the interval feature box computed from the sound estimate alone.
func TestFeatureBoxContainment(t *testing.T) {
	c := cfg()
	for _, aggr := range []bool{false, true} {
		name := "conservative"
		if aggr {
			name = "aggressive"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			var feat [FeatureCount]float64
			var box [FeatureCount]interval.Interval
			for caseNo := 0; caseNo < 400; caseNo++ {
				pc := rng.Float64()*160 - 120 // straddle the zone [PB, PF]
				vc := rng.Float64() * 22
				sound := OncomingEstimate{
					P: interval.New(pc, pc+rng.Float64()*40),
					V: interval.New(math.Max(0, vc-rng.Float64()*6), vc),
					A: rng.Float64()*6 - 3,
				}
				ego := dynamics.State{P: rng.Float64()*40 - 30, V: rng.Float64() * 15}
				tm := rng.Float64() * 20
				c.FeatureBoxInto(box[:], tm, ego, sound, aggr)
				for i, iv := range box {
					if iv.IsEmpty() || math.IsNaN(iv.Lo) || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
						t.Fatalf("case %d: feature %d box is bad: %v", caseNo, i, iv)
					}
				}
				for s := 0; s < 30; s++ {
					est := sound
					if s > 0 {
						est = subEstimate(rng, sound)
					}
					var w interval.Interval
					if aggr {
						w = c.AggressiveWindow(est)
					} else {
						w = c.ConservativeWindow(est)
					}
					FeaturesInto(feat[:], tm, ego, w)
					for i, f := range feat {
						if f < box[i].Lo-featureTol || f > box[i].Hi+featureTol {
							t.Fatalf("case %d sample %d: feature %d = %v escapes box %v (sound %+v, est %+v)",
								caseNo, s, i, f, box[i], sound, est)
						}
					}
				}
			}
		})
	}
}

// TestFeatureBoxPointEstimate pins exactness on degenerate sound sets: a
// point estimate's feature box collapses to the point features bitwise,
// matching the ibp point-box guarantee downstream.
func TestFeatureBoxPointEstimate(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(37))
	var feat [FeatureCount]float64
	var box [FeatureCount]interval.Interval
	for caseNo := 0; caseNo < 300; caseNo++ {
		p := rng.Float64()*160 - 120
		v := rng.Float64() * 22
		est := OncomingEstimate{
			P: interval.Point(p), V: interval.Point(v),
			PointP: p, PointV: v, A: rng.Float64()*6 - 3,
		}
		ego := dynamics.State{P: rng.Float64()*40 - 30, V: rng.Float64() * 15}
		tm := rng.Float64() * 20
		for _, aggr := range []bool{false, true} {
			var w interval.Interval
			if aggr {
				w = c.AggressiveWindow(est)
			} else {
				w = c.ConservativeWindow(est)
			}
			FeaturesInto(feat[:], tm, ego, w)
			c.FeatureBoxInto(box[:], tm, ego, est, aggr)
			for i, f := range feat {
				if box[i].Lo != f || box[i].Hi != f {
					t.Fatalf("case %d aggr=%v: feature %d box [%v, %v] is not the point %v",
						caseNo, aggr, i, box[i].Lo, box[i].Hi, f)
				}
			}
		}
	}
}

// TestFeatureBoxEmptySound pins the degenerate inputs: empty or
// surely-passed sound sets produce the (cap, cap) empty-window features.
func TestFeatureBoxEmptySound(t *testing.T) {
	c := cfg()
	ego := dynamics.State{P: -20, V: 8}
	var box [FeatureCount]interval.Interval
	for _, est := range []OncomingEstimate{
		{P: interval.Empty(), V: interval.New(0, 5)},
		{P: interval.New(-10, 0), V: interval.Empty()},
		{P: interval.New(c.Geometry.PB+1, c.Geometry.PB+5), V: interval.New(0, 5)},
	} {
		c.FeatureBoxInto(box[:], 3, ego, est, false)
		cap := interval.Point(float64(FeatureTimeCap))
		if box[3] != cap || box[4] != cap {
			t.Fatalf("estimate %+v: window features %v, %v, want point %v", est, box[3], box[4], cap)
		}
	}
}
