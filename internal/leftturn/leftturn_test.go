package leftturn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

func cfg() Config { return DefaultConfig() }

func TestDefaultConfigValid(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := cfg()
	bad.Geometry = Geometry{PF: 15, PB: 5}
	if bad.Validate() == nil {
		t.Error("reversed zone accepted")
	}
	bad = cfg()
	bad.DtC = 0
	if bad.Validate() == nil {
		t.Error("zero control period accepted")
	}
	bad = cfg()
	bad.ABuf = -1
	if bad.Validate() == nil {
		t.Error("negative buffer accepted")
	}
	bad = cfg()
	bad.Ego.AMax = 0
	if bad.Validate() == nil {
		t.Error("bad ego limits accepted")
	}
}

func TestSlackBranches(t *testing.T) {
	c := cfg()
	// Before the zone: pf − db − p0 with db = v²/(2·6).
	ego := dynamics.State{P: -30, V: 8}
	want := 5 - (8*8)/12.0 - (-30)
	if got := c.Slack(ego); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Slack before zone = %v, want %v", got, want)
	}
	// Inside the zone: p0 − pb ≤ 0.
	ego = dynamics.State{P: 10, V: 5}
	if got := c.Slack(ego); got != -5 {
		t.Fatalf("Slack inside zone = %v, want -5", got)
	}
	// Past the zone: +Inf.
	ego = dynamics.State{P: 16, V: 5}
	if got := c.Slack(ego); !math.IsInf(got, 1) {
		t.Fatalf("Slack past zone = %v, want +Inf", got)
	}
}

func TestSlackSignMeansStoppable(t *testing.T) {
	c := cfg()
	// Positive slack: braking at AMin from here must stop before PF.
	ego := dynamics.State{P: -20, V: 8}
	if c.Slack(ego) <= 0 {
		t.Fatal("expected positive slack for the test setup")
	}
	stop := ego.P + dynamics.StopDistance(ego.V, c.Ego.AMin)
	if stop > c.Geometry.PF {
		t.Fatalf("positive slack but stop point %v past PF", stop)
	}
	// Negative slack: cannot stop before PF.
	ego = dynamics.State{P: 0, V: 10}
	if c.Slack(ego) >= 0 {
		t.Fatal("expected negative slack for the test setup")
	}
	stop = ego.P + dynamics.StopDistance(ego.V, c.Ego.AMin)
	if stop <= c.Geometry.PF {
		t.Fatalf("negative slack but stop point %v before PF", stop)
	}
}

func TestEgoWindow(t *testing.T) {
	c := cfg()
	// Approaching: [ (pf−p)/v, (pb−p)/v ].
	w := c.EgoWindow(dynamics.State{P: -5, V: 5})
	if math.Abs(w.Lo-2) > 1e-12 || math.Abs(w.Hi-4) > 1e-12 {
		t.Fatalf("approach window = %v", w)
	}
	// Inside: [0, (pb−p)/v].
	w = c.EgoWindow(dynamics.State{P: 10, V: 5})
	if w.Lo != 0 || math.Abs(w.Hi-1) > 1e-12 {
		t.Fatalf("inside window = %v", w)
	}
	// Past: empty.
	if w = c.EgoWindow(dynamics.State{P: 20, V: 5}); !w.IsEmpty() {
		t.Fatalf("past window = %v, want empty", w)
	}
	// Stopped short of the zone: empty (never arrives at current speed).
	if w = c.EgoWindow(dynamics.State{P: -5, V: 0}); !w.IsEmpty() {
		t.Fatalf("stopped window = %v, want empty", w)
	}
	// Stopped inside the zone: [0, +Inf).
	w = c.EgoWindow(dynamics.State{P: 10, V: 0})
	if w.Lo != 0 || !math.IsInf(w.Hi, 1) {
		t.Fatalf("stuck window = %v", w)
	}
}

func TestConservativeWindowPointEstimate(t *testing.T) {
	c := cfg()
	// C1 40 m short of the front line at 8 m/s, known exactly.
	est := ExactEstimate(dynamics.State{P: -35, V: 8}, 0)
	w := c.ConservativeWindow(est)
	// Earliest entry: flat out at AMax=3 capped at VMax=15 over 40 m.
	wantLo := dynamics.TimeToReach(40, 8, 3, 15)
	if math.Abs(w.Lo-wantLo) > 1e-9 {
		t.Fatalf("entry = %v, want %v", w.Lo, wantLo)
	}
	// Latest exit: hard braking to VMin=0 → never covers 50 m → +Inf.
	if !math.IsInf(w.Hi, 1) {
		t.Fatalf("exit = %v, want +Inf with VMin=0", w.Hi)
	}
}

func TestConservativeWindowMatchesPaperEq7(t *testing.T) {
	// Compare the entry bound against the closed form of Eq. 7.
	c := cfg()
	lim := c.Oncoming
	for _, tc := range []struct{ p, v float64 }{{-35, 8}, {-10, 14}, {0, 5}, {4, 15}} {
		est := ExactEstimate(dynamics.State{P: tc.p, V: tc.v}, 0)
		w := c.ConservativeWindow(est)
		dth := (lim.VMax*lim.VMax - tc.v*tc.v) / (2 * lim.AMax)
		d := c.Geometry.PF - tc.p
		var want float64
		if d > dth {
			want = (lim.VMax-tc.v)/lim.AMax + (d-dth)/lim.VMax
		} else {
			want = (-tc.v + math.Sqrt(tc.v*tc.v+2*lim.AMax*d)) / lim.AMax
		}
		if math.Abs(w.Lo-want) > 1e-9 {
			t.Fatalf("p=%v v=%v: entry %v, Eq.7 gives %v", tc.p, tc.v, w.Lo, want)
		}
	}
}

func TestConservativeWindowPastZone(t *testing.T) {
	c := cfg()
	est := ExactEstimate(dynamics.State{P: 16, V: 8}, 0)
	if w := c.ConservativeWindow(est); !w.IsEmpty() {
		t.Fatalf("window for passed C1 = %v, want empty", w)
	}
}

func TestConservativeWindowEmptyEstimate(t *testing.T) {
	c := cfg()
	est := OncomingEstimate{P: interval.Empty(), V: interval.Empty()}
	if w := c.ConservativeWindow(est); !w.IsEmpty() {
		t.Fatalf("window for empty estimate = %v", w)
	}
}

func TestConservativeWindowWidensWithUncertainty(t *testing.T) {
	c := cfg()
	exact := ExactEstimate(dynamics.State{P: -35, V: 8}, 0)
	blurred := exact
	blurred.P = blurred.P.Expand(3)
	blurred.V = blurred.V.Expand(1).ClampTo(c.Oncoming.VMin, c.Oncoming.VMax)
	we, wb := c.ConservativeWindow(exact), c.ConservativeWindow(blurred)
	if !(wb.Lo <= we.Lo && wb.Hi >= we.Hi) {
		t.Fatalf("blurred window %v should contain exact window %v", wb, we)
	}
}

func TestAggressiveInsideConservative(t *testing.T) {
	c := cfg()
	est := ExactEstimate(dynamics.State{P: -35, V: 8}, 0.5)
	cons := c.ConservativeWindow(est)
	aggr := c.AggressiveWindow(est)
	if aggr.IsEmpty() {
		t.Fatal("aggressive window unexpectedly empty")
	}
	if !cons.ContainsInterval(aggr) {
		t.Fatalf("aggressive %v not inside conservative %v", aggr, cons)
	}
	if aggr.Width() >= cons.Width() {
		t.Fatal("aggressive window should be strictly more compact")
	}
}

func TestAggressiveWindowNoConflictWhenDecelerating(t *testing.T) {
	c := cfg()
	// C1 crawling and braking: under the buffered assumption it never
	// arrives, so the aggressive window is empty.
	est := ExactEstimate(dynamics.State{P: -35, V: 0.2}, -2)
	if w := c.AggressiveWindow(est); !w.IsEmpty() {
		t.Fatalf("aggressive window = %v, want empty", w)
	}
	// The conservative window still flags the possibility.
	if w := c.ConservativeWindow(est); w.IsEmpty() {
		t.Fatal("conservative window must not be empty here")
	}
}

func TestUnsafeSet(t *testing.T) {
	c := cfg()
	// Committed ego (negative slack) with overlapping windows → unsafe.
	ego := dynamics.State{P: 0, V: 10} // slack = 5 − 100/12 < 0
	w := c.EgoWindow(ego)
	if !c.InUnsafeSet(ego, w) { // oncoming window equal to ego's window
		t.Fatal("overlapping committed state should be unsafe")
	}
	// Positive slack is never unsafe.
	ego2 := dynamics.State{P: -30, V: 8}
	if c.InUnsafeSet(ego2, interval.New(0, 100)) {
		t.Fatal("stoppable state must not be unsafe")
	}
	// Negative slack but disjoint windows: safe.
	if c.InUnsafeSet(ego, interval.New(50, 60)) {
		t.Fatal("disjoint windows must not be unsafe")
	}
}

func TestBoundaryThresholdPositive(t *testing.T) {
	c := cfg()
	if c.BoundaryThreshold(8) <= 0 {
		t.Fatal("threshold must be positive for moving ego")
	}
	// Factor (1 − amax/amin) with amax=3, amin=−6 is 1.5.
	want := (8*c.DtC + 0.5*3*c.DtC*c.DtC) * 1.5
	if got := c.BoundaryThreshold(8); math.Abs(got-want) > 1e-12 {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
}

func TestBoundarySafeSet(t *testing.T) {
	c := cfg()
	// Construct a state with slack just inside [0, threshold).
	v := 8.0
	th := c.BoundaryThreshold(v)
	db := c.BrakingDistance(v)
	p := c.Geometry.PF - db - th/2 // slack = th/2
	ego := dynamics.State{P: p, V: v}
	s := c.Slack(ego)
	if s < 0 || s >= th {
		t.Fatalf("test setup wrong: slack=%v threshold=%v", s, th)
	}
	overlap := c.EgoWindow(ego)
	if !c.InBoundarySafeSet(ego, overlap) {
		t.Fatal("state straddling the boundary should be in X_b")
	}
	// Same slack, disjoint windows → not in X_b.
	if c.InBoundarySafeSet(ego, interval.New(1000, 2000)) {
		t.Fatal("disjoint windows should not trigger X_b")
	}
	// Large slack → not in X_b.
	far := dynamics.State{P: -30, V: 8}
	if c.InBoundarySafeSet(far, overlap) {
		t.Fatal("far state should not be in X_b")
	}
	// Negative slack → not in X_b (already committed).
	committed := dynamics.State{P: 0, V: 10}
	if c.InBoundarySafeSet(committed, c.EgoWindow(committed)) {
		t.Fatal("negative-slack state should not be in X_b")
	}
}

func TestEmergencyAccel(t *testing.T) {
	c := cfg()
	// Short of the line: brake to stop StopMargin before PF.
	ego := dynamics.State{P: -15, V: 8}
	want := -8.0 * 8 / (2 * (20 - c.StopMargin))
	if got := c.EmergencyAccel(ego); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EmergencyAccel = %v, want %v", got, want)
	}
	// Inside the zone: full throttle out.
	if got := c.EmergencyAccel(dynamics.State{P: 10, V: 3}); got != c.Ego.AMax {
		t.Fatalf("in-zone EmergencyAccel = %v, want AMax", got)
	}
	// At the line with speed: committed (cannot stop before PF anymore) —
	// escape at full throttle rather than parking in the zone.
	if got := c.EmergencyAccel(dynamics.State{P: c.Geometry.PF, V: 5}); got != c.Ego.AMax {
		t.Fatalf("at-line EmergencyAccel = %v, want AMax (committed escape)", got)
	}
	// Stopped at the line: hold.
	if got := c.EmergencyAccel(dynamics.State{P: c.Geometry.PF, V: 0}); got != 0 {
		t.Fatalf("stopped EmergencyAccel = %v, want 0", got)
	}
	// Within the stop margin but still stoppable (slack ≥ 0): max braking.
	if got := c.EmergencyAccel(dynamics.State{P: c.Geometry.PF - c.StopMargin/2, V: 0.5}); got != c.Ego.AMin {
		t.Fatalf("inside-margin EmergencyAccel = %v, want AMin", got)
	}
	// Committed at speed: escape.
	if got := c.EmergencyAccel(dynamics.State{P: 4.5, V: 12}); got != c.Ego.AMax {
		t.Fatalf("committed EmergencyAccel = %v, want AMax", got)
	}
}

func TestMinAccelToClear(t *testing.T) {
	c := cfg()
	// Already past the back line: any accel works; floor is AMin.
	if a, ok := c.MinAccelToClear(dynamics.State{P: 16, V: 5}, 1); !ok || a != c.Ego.AMin {
		t.Fatalf("past-line floor = %v, %v", a, ok)
	}
	// Infinite window: no constraint.
	if a, ok := c.MinAccelToClear(dynamics.State{P: 0, V: 5}, math.Inf(1)); !ok || a != c.Ego.AMin {
		t.Fatalf("infinite-window floor = %v, %v", a, ok)
	}
	// Zero window with distance to go: infeasible.
	if _, ok := c.MinAccelToClear(dynamics.State{P: 0, V: 5}, 0); ok {
		t.Fatal("zero window should be infeasible")
	}
	// Infeasible even at AMax.
	if _, ok := c.MinAccelToClear(dynamics.State{P: -30, V: 0}, 0.5); ok {
		t.Fatal("45 m in 0.5 s from standstill should be infeasible")
	}
	// Feasible: the returned floor must cover the distance, and a slightly
	// smaller accel must not.
	ego := dynamics.State{P: 0, V: 8}
	a, ok := c.MinAccelToClear(ego, 2.0)
	if !ok {
		t.Fatal("expected feasible")
	}
	d := c.Geometry.PB - ego.P
	if got := dynamics.DistanceAfter(2.0, ego.V, a, c.Ego.VMin, c.Ego.VMax); got < d-1e-6 {
		t.Fatalf("floor %v covers only %v of %v m", a, got, d)
	}
	if a > c.Ego.AMin {
		if got := dynamics.DistanceAfter(2.0, ego.V, a-0.01, c.Ego.VMin, c.Ego.VMax); got >= d {
			t.Fatalf("floor %v is not minimal", a)
		}
	}
}

func TestTargetAndCollision(t *testing.T) {
	c := cfg()
	if !c.ReachedTarget(dynamics.State{P: 15.01}) {
		t.Error("past back line should reach target")
	}
	if c.ReachedTarget(dynamics.State{P: 15}) {
		t.Error("at back line is not yet the target")
	}
	if !c.Collision(dynamics.State{P: 10}, dynamics.State{P: 12}) {
		t.Error("both in zone should collide")
	}
	if c.Collision(dynamics.State{P: 10}, dynamics.State{P: 16}) {
		t.Error("one out of zone should not collide")
	}
	if !c.InZone(5) || !c.InZone(15) || c.InZone(4.99) {
		t.Error("InZone boundary semantics wrong")
	}
}

func TestFeatures(t *testing.T) {
	ego := dynamics.State{P: -10, V: 6}
	f := Features(2.5, ego, interval.New(3, 7))
	want := []float64{2.5, -10, 6, 3, 7}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("Features = %v, want %v", f, want)
		}
	}
	// Empty window saturates at the cap.
	f = Features(0, ego, interval.Empty())
	if f[3] != FeatureTimeCap || f[4] != FeatureTimeCap {
		t.Fatalf("empty-window features = %v", f)
	}
	// Infinite exit saturates at the cap.
	f = Features(0, ego, interval.New(2, math.Inf(1)))
	if f[3] != 2 || f[4] != FeatureTimeCap {
		t.Fatalf("inf-window features = %v", f)
	}
}

// Safety invariant #2 (DESIGN.md), discrete form of Eq. 4: from any state
// with slack ≥ SafetyMargin — which is what the monitor's widened boundary
// band guarantees at the moment κ_e first takes over — repeatedly applying
// the emergency planner never lets the ego cross the front line.
func TestQuickEmergencyInvariant(t *testing.T) {
	c := cfg()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ego := dynamics.State{
			P: -40 + rng.Float64()*44.9, // up to just before PF
			V: rng.Float64() * c.Ego.VMax,
		}
		if c.Slack(ego) < c.SafetyMargin {
			return true // outside the precondition κ_e is engaged under
		}
		s := ego
		for i := 0; i < 1000; i++ {
			a := c.EmergencyAccel(s)
			s, _ = dynamics.Step(s, a, c.DtC, c.Ego)
			if s.P > c.Geometry.PF {
				return false
			}
			if s.V == 0 {
				break
			}
		}
		return s.P <= c.Geometry.PF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The widened boundary band must be wide enough that a single control step
// from just outside the band (under any admissible acceleration) cannot
// drive the slack below SafetyMargin — the hand-off precondition above.
func TestQuickBoundaryBandHandoff(t *testing.T) {
	c := cfg()
	w := interval.New(0, math.Inf(1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ego := dynamics.State{
			P: -40 + rng.Float64()*44.9,
			V: rng.Float64() * c.Ego.VMax,
		}
		if c.InBoundarySafeSet(ego, w) || c.Slack(ego) < 0 {
			return true // we test states the monitor leaves to κ_n
		}
		if math.IsInf(c.Slack(ego), 1) {
			return true
		}
		// One arbitrary κ_n step; afterwards the state must either still
		// have slack ≥ SafetyMargin (κ_e can take over) or be past PF in a
		// way only possible if slack was hugely positive (not reachable in
		// one step from the sampled region, so treat as failure).
		a := c.Ego.AMin + rng.Float64()*(c.Ego.AMax-c.Ego.AMin)
		next, _ := dynamics.Step(ego, a, c.DtC, c.Ego)
		if next.P > c.Geometry.PF {
			return false
		}
		return c.Slack(next) >= c.SafetyMargin-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the aggressive window is always contained in the conservative
// window for point estimates (DESIGN.md invariant #6).
func TestQuickAggressiveSubsetOfConservative(t *testing.T) {
	c := cfg()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := dynamics.State{
			P: -45 + rng.Float64()*55,
			V: rng.Float64() * c.Oncoming.VMax,
		}
		a := c.Oncoming.AMin + rng.Float64()*(c.Oncoming.AMax-c.Oncoming.AMin)
		est := ExactEstimate(s, a)
		cons := c.ConservativeWindow(est)
		aggr := c.AggressiveWindow(est)
		if aggr.IsEmpty() {
			return true
		}
		// Tolerate float slack at the edges.
		return cons.Expand(1e-9).ContainsInterval(aggr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the conservative window always contains the realized passing
// time of C1, for any admissible behaviour and sound estimate — the
// soundness that the safety argument rests on.
func TestQuickConservativeWindowSound(t *testing.T) {
	c := cfg()
	const dt = 0.05
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := dynamics.State{P: -40 + rng.Float64()*5, V: 2 + rng.Float64()*10}
		est := ExactEstimate(s, 0)
		w := c.ConservativeWindow(est)
		// Drive C1 with random admissible accelerations; record the real
		// entry and exit times.
		var entry, exit float64 = -1, -1
		for i := 1; i <= 2000; i++ {
			a := c.Oncoming.AMin + rng.Float64()*(c.Oncoming.AMax-c.Oncoming.AMin)
			s, _ = dynamics.Step(s, a, dt, c.Oncoming)
			now := float64(i) * dt
			if entry < 0 && s.P >= c.Geometry.PF {
				entry = now
			}
			if exit < 0 && s.P > c.Geometry.PB {
				exit = now
				break
			}
		}
		if entry < 0 {
			return true // never entered within the horizon (stopped)
		}
		if entry < w.Lo-dt {
			return false // entered before the earliest predicted time
		}
		if exit >= 0 && !math.IsInf(w.Hi, 1) && exit > w.Hi+dt {
			return false // exited after the latest predicted time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAccelToDelay(t *testing.T) {
	c := cfg()
	// Already at/past the line: no delay possible.
	if _, ok := c.MaxAccelToDelay(dynamics.State{P: 5, V: 5}, 1); ok {
		t.Fatal("at-line delay should be infeasible")
	}
	// Zero delay: anything goes.
	if a, ok := c.MaxAccelToDelay(dynamics.State{P: 0, V: 5}, 0); !ok || a != c.Ego.AMax {
		t.Fatalf("zero-delay ceiling = %v, %v", a, ok)
	}
	// Committed fast ego, short delay: full throttle still arrives later
	// than the bound → ceiling is AMax.
	if a, ok := c.MaxAccelToDelay(dynamics.State{P: 0, V: 5}, 0.1); !ok || a != c.Ego.AMax {
		t.Fatalf("trivial ceiling = %v, %v", a, ok)
	}
	// Even max braking arrives too early → infeasible (committed ego very
	// close and fast).
	if _, ok := c.MaxAccelToDelay(dynamics.State{P: 4.5, V: 12}, 5); ok {
		t.Fatal("expected infeasible delay")
	}
	// Interior case: the ceiling must delay arrival to at least tDelay and
	// a slightly larger accel must not.
	ego := dynamics.State{P: 0, V: 8}
	tDelay := 0.8
	a, ok := c.MaxAccelToDelay(ego, tDelay)
	if !ok {
		t.Fatal("expected feasible ceiling")
	}
	arr := dynamics.TimeToReach(c.Geometry.PF-ego.P, ego.V, a, c.Ego.VMax)
	if arr < tDelay-1e-6 {
		t.Fatalf("ceiling %v arrives at %v < %v", a, arr, tDelay)
	}
	if a < c.Ego.AMax {
		arr2 := dynamics.TimeToReach(c.Geometry.PF-ego.P, ego.V, a+0.01, c.Ego.VMax)
		if arr2 >= tDelay {
			t.Fatalf("ceiling %v is not maximal", a)
		}
	}
}

func TestConservativeWindowInsideZone(t *testing.T) {
	c := cfg()
	// C1 already inside the zone: entry now, exit pending.
	est := ExactEstimate(dynamics.State{P: 10, V: 8}, 0)
	w := c.ConservativeWindow(est)
	if w.IsEmpty() || w.Lo != 0 {
		t.Fatalf("in-zone window = %v, want entry at 0", w)
	}
	if w.Hi <= 0 {
		t.Fatalf("in-zone window exit = %v", w.Hi)
	}
}

func TestConservativeWindowExitOrdering(t *testing.T) {
	c := cfg()
	// Degenerate estimate where the naive exit would precede the entry:
	// C1's interval straddles the zone so the farthest position is well
	// inside while the closest is before the front line.
	est := OncomingEstimate{
		P:      interval.New(-1, 14.9),
		V:      interval.New(14, 15),
		PointP: 7, PointV: 14.5, A: 0,
	}
	w := c.ConservativeWindow(est)
	if w.IsEmpty() || w.Hi < w.Lo {
		t.Fatalf("window ordering broken: %v", w)
	}
}

func TestAggressiveWindowEmptyEstimate(t *testing.T) {
	c := cfg()
	est := OncomingEstimate{P: interval.Empty(), V: interval.Empty()}
	if w := c.AggressiveWindow(est); !w.IsEmpty() {
		t.Fatalf("aggressive window for empty estimate = %v", w)
	}
	// Past the zone.
	est = ExactEstimate(dynamics.State{P: 16, V: 10}, 0)
	if w := c.AggressiveWindow(est); !w.IsEmpty() {
		t.Fatalf("aggressive window for passed C1 = %v", w)
	}
}

func TestAggressiveWindowExitOrdering(t *testing.T) {
	c := cfg()
	// A straddling interval can make the naive exit precede the entry; the
	// window must still be well-ordered.
	est := OncomingEstimate{
		P:      interval.New(0, 14.5),
		V:      interval.New(13, 15),
		PointP: 7, PointV: 14, A: 2,
	}
	w := c.AggressiveWindow(est)
	if !w.IsEmpty() && w.Hi < w.Lo {
		t.Fatalf("aggressive window ordering broken: %v", w)
	}
}

func TestValidateMarginAndGeometryBranches(t *testing.T) {
	bad := cfg()
	bad.StopMargin = -0.1
	if bad.Validate() == nil {
		t.Error("negative StopMargin accepted")
	}
	bad = cfg()
	bad.SafetyMargin = -0.1
	if bad.Validate() == nil {
		t.Error("negative SafetyMargin accepted")
	}
	bad = cfg()
	bad.Oncoming.AMin = 1
	if bad.Validate() == nil {
		t.Error("bad oncoming limits accepted")
	}
}
