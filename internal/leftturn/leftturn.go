// Package leftturn implements the paper's case study (§IV): an unprotected
// left turn where the ego vehicle C0 must cross a conflict zone that an
// oncoming vehicle C1 also traverses.
//
// Both vehicles are parameterized by arc length along their own fixed path
// with the conflict zone at [PF, PB] (front line, back line).  The paper
// states C1's initial world position as 50.5–60 m with the zone at [5, 15];
// Eq. 7 is only consistent if C1 is measured on a mirrored axis, so we use
// C1's travel coordinate c1 = 20 − p1_world, which maps the zone to [5, 15]
// for C1 as well and its start to −30.5 … −40 (see DESIGN.md §3).
//
// The package provides the pure scenario mathematics: slack (Eq. 5),
// passing-time windows (the projected ego window, the conservative Eq. 7
// estimate, and the aggressive Eq. 8 estimate), the unsafe set (Eq. 6), the
// boundary safe set (§IV), and the emergency planner (§IV).  All windows
// are expressed in time-from-now (relative) form; intersection tests are
// unaffected by this choice of origin.
package leftturn

import (
	"fmt"
	"math"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// Geometry locates the conflict zone on each vehicle's path coordinate.
type Geometry struct {
	PF float64 // front line of the unsafe area [m]
	PB float64 // back line of the unsafe area [m], PB > PF
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.PB <= g.PF {
		return fmt.Errorf("leftturn: back line %v must exceed front line %v", g.PB, g.PF)
	}
	return nil
}

// Config gathers every scenario constant.
type Config struct {
	Geometry Geometry

	Ego      dynamics.Limits // physical envelope of C0
	Oncoming dynamics.Limits // physical envelope of C1

	EgoInit      dynamics.State // C0 state at t = 0
	OncomingInit dynamics.State // C1 state at t = 0 (mirrored coordinate)

	DtC float64 // control period Δt_c [s]

	// ABuf and VBuf are the user-defined buffers of the aggressive
	// unsafe-set estimation (paper Eq. 8).
	ABuf, VBuf float64

	// StopMargin is the distance before the front line that the emergency
	// planner aims its stop at.  The paper's κ_e targets PF exactly, which
	// is only safe in continuous time; in the Δt_c-discretized system the
	// last braking step can overshoot the asymptotic stop point by up to
	// ¼·|AMin|·Δt_c², so κ_e leaves this margin.
	StopMargin float64
	// SafetyMargin widens the boundary-safe-set slack band by a constant,
	// so that when the runtime monitor first hands control to κ_e the
	// remaining slack is at least SafetyMargin rather than merely
	// nonnegative — which is what absorbs the discretization error above.
	SafetyMargin float64
}

// DefaultConfig returns the constants used throughout the evaluation.
// Values stated by the paper (zone [5,15] m, p0(0) = −30 m, Δt_c = 0.05 s,
// C1 start distance) are taken verbatim; the remaining constants are the
// documented defaults recorded in EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Geometry: Geometry{PF: 5, PB: 15},
		Ego:      dynamics.Limits{VMin: 0, VMax: 12, AMin: -6, AMax: 3},
		Oncoming: dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3},
		EgoInit:  dynamics.State{P: -30, V: 8},
		// Mirrored C1 start: paper's p1(0) ∈ {50.5+0.5j} ↦ c1(0) = 20−p1(0);
		// the default is the sweep's midpoint, overridden per simulation.
		OncomingInit: dynamics.State{P: -35, V: 8},
		DtC:          0.05,
		ABuf:         0.5,
		VBuf:         1.0,
		StopMargin:   0.10,
		SafetyMargin: 0.05,
	}
}

// Validate checks the full configuration.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Ego.Validate(); err != nil {
		return fmt.Errorf("leftturn: ego limits: %w", err)
	}
	if err := c.Oncoming.Validate(); err != nil {
		return fmt.Errorf("leftturn: oncoming limits: %w", err)
	}
	if c.DtC <= 0 {
		return fmt.Errorf("leftturn: non-positive control period %v", c.DtC)
	}
	if c.ABuf < 0 || c.VBuf < 0 {
		return fmt.Errorf("leftturn: negative aggressive buffer (ABuf=%v, VBuf=%v)", c.ABuf, c.VBuf)
	}
	if c.StopMargin < 0 || c.SafetyMargin < 0 {
		return fmt.Errorf("leftturn: negative margin (StopMargin=%v, SafetyMargin=%v)", c.StopMargin, c.SafetyMargin)
	}
	return nil
}

// BrakingDistance returns d_b = −v²/(2·a_min) for the ego vehicle.
func (c Config) BrakingDistance(v float64) float64 {
	return dynamics.StopDistance(v, c.Ego.AMin)
}

// Slack implements paper Eq. 5: how much stopping margin the ego has before
// the front line.  Nonnegative slack means C0 can still stop before the
// zone; negative slack means it is committed to entering (or is inside).
func (c Config) Slack(ego dynamics.State) float64 {
	switch {
	case ego.P <= c.Geometry.PF:
		return c.Geometry.PF - c.BrakingDistance(ego.V) - ego.P
	case ego.P <= c.Geometry.PB:
		return ego.P - c.Geometry.PB // ≤ 0 while inside the zone
	default:
		return math.Inf(1)
	}
}

// EgoWindow returns the projected passing-time window of the ego vehicle
// over the conflict zone at its *current* velocity (paper Eq. for
// [τ0,min, τ0,max]), in time-from-now form.  A stationary ego short of the
// zone yields an unbounded-entry window that can never intersect; a
// stationary ego inside the zone yields [0, +Inf).  Once past the back
// line the window is empty: no conflict is possible anymore.
func (c Config) EgoWindow(ego dynamics.State) interval.Interval {
	g := c.Geometry
	switch {
	case ego.P <= g.PF:
		if ego.V <= 0 {
			return interval.Empty() // never arrives at current velocity
		}
		return interval.New((g.PF-ego.P)/ego.V, (g.PB-ego.P)/ego.V)
	case ego.P <= g.PB:
		if ego.V <= 0 {
			return interval.New(0, math.Inf(1)) // stuck inside the zone
		}
		return interval.New(0, (g.PB-ego.P)/ego.V)
	default:
		return interval.Empty()
	}
}

// OncomingEstimate is what the planner knows about C1 at decision time —
// sound intervals from the information filter plus point estimates for the
// aggressive computation.
type OncomingEstimate struct {
	P interval.Interval // possible positions (mirrored coordinate)
	V interval.Interval // possible velocities

	PointP, PointV float64 // best point estimates
	A              float64 // best current acceleration estimate
}

// ExactEstimate builds an estimate from perfectly known C1 state, used in
// tests and in the perfect-information ablation.
func ExactEstimate(s dynamics.State, a float64) OncomingEstimate {
	return OncomingEstimate{
		P:      interval.Point(s.P),
		V:      interval.Point(s.V),
		PointP: s.P,
		PointV: s.V,
		A:      a,
	}
}

// ConservativeWindow implements paper Eq. 7 generalized to interval
// knowledge: the earliest time C1 could reach the front line (closest
// position, highest speed, maximum acceleration, top speed) and the latest
// time it could clear the back line (farthest position, lowest speed,
// maximum braking, velocity floor).  The true passing window is contained
// in the result whenever the estimate is sound.
func (c Config) ConservativeWindow(est OncomingEstimate) interval.Interval {
	if est.P.IsEmpty() || est.V.IsEmpty() {
		return interval.Empty()
	}
	if est.P.Lo >= c.Geometry.PB {
		return interval.Empty() // surely past the zone
	}
	tEntry, tExit := c.conservativeTimes(est)
	if math.IsInf(tEntry, 1) {
		// Even flat-out C1 cannot reach the zone (cannot happen with
		// AMax > 0 and finite distance, but guard anyway).
		return interval.Empty()
	}
	return interval.New(tEntry, tExit)
}

// conservativeTimes computes Eq. 7's raw entry/exit pair (exit clamped to
// the entry) without the emptiness handling.  Both times are monotone
// nonincreasing in the estimate's position and velocity endpoints, which
// is what FeatureBoxInto's corner bracketing relies on.
func (c Config) conservativeTimes(est OncomingEstimate) (tEntry, tExit float64) {
	g, lim := c.Geometry, c.Oncoming
	tEntry = dynamics.TimeToReach(g.PF-est.P.Hi, est.V.Hi, lim.AMax, lim.VMax)
	tExit = dynamics.TimeToCover(g.PB-est.P.Lo, est.V.Lo, lim.AMin, lim.VMin, lim.VMax)
	if tExit < tEntry {
		tExit = tEntry
	}
	return tEntry, tExit
}

// AggressiveWindow implements paper Eq. 8: instead of physical limits it
// assumes C1 stays within ±ABuf of its current acceleration and ±VBuf of
// its current velocity, yielding a much more compact — deliberately
// unsound — window for the embedded NN planner.  Safety is unaffected
// because the runtime monitor keeps using the conservative window.
//
// The buffered dynamics are evaluated at the estimate's interval endpoints
// (entry from the closest/fastest corner, exit from the farthest/slowest),
// so communication disturbance — which widens the estimate — widens the
// aggressive window too, degrading efficiency gracefully rather than
// silently betting harder.
func (c Config) AggressiveWindow(est OncomingEstimate) interval.Interval {
	if est.P.IsEmpty() || est.V.IsEmpty() {
		return interval.Empty()
	}
	if est.P.Lo >= c.Geometry.PB {
		return interval.Empty()
	}
	tEntry, tExit := c.aggressiveTimes(est)
	if math.IsInf(tEntry, 1) {
		// Under the buffered assumption C1 never arrives: treat as no
		// conflict (this is exactly the aggressive bet).
		return interval.Empty()
	}
	return interval.New(tEntry, tExit)
}

// aggressiveTimes computes Eq. 8's raw entry/exit pair (exit clamped to
// the entry) without the emptiness handling.  The buffered accelerations
// aFast/aSlow depend only on the point acceleration estimate, so for a
// fixed est.A both times are monotone nonincreasing in the position and
// velocity endpoints — the bracketing property FeatureBoxInto relies on
// (the entry's velocity cap and the exit's velocity floor move *with*
// their endpoints, preserving the ordering).
func (c Config) aggressiveTimes(est OncomingEstimate) (tEntry, tExit float64) {
	g, lim := c.Geometry, c.Oncoming
	vEntry := est.V.Hi
	aFast := math.Min(est.A+c.ABuf, lim.AMax)
	vFast := math.Min(vEntry+c.VBuf, lim.VMax)
	tEntry = dynamics.TimeToReach(g.PF-est.P.Hi, vEntry, aFast, vFast)
	vExit := est.V.Lo
	aSlow := math.Max(est.A-c.ABuf, lim.AMin)
	vSlow := math.Max(vExit-c.VBuf, lim.VMin)
	tExit = dynamics.TimeToCover(g.PB-est.P.Lo, vExit, aSlow, vSlow, lim.VMax)
	if tExit < tEntry {
		tExit = tEntry
	}
	return tEntry, tExit
}

// InUnsafeSet implements paper Eq. 6 on the estimated oncoming window:
// the state is unsafe when the ego can no longer stop before the zone
// (negative slack) and the passing windows intersect.
func (c Config) InUnsafeSet(ego dynamics.State, oncoming interval.Interval) bool {
	if !(c.Slack(ego) < 0) {
		return false
	}
	return c.EgoWindow(ego).Intersects(oncoming)
}

// BoundaryThreshold returns the slack bound of the boundary safe set:
// (v0·Δt_c + ½·a_max·Δt_c²)·(1 − a_max/a_min).  States with slack in
// [0, threshold) may reach negative slack within one control step under
// some admissible input.
func (c Config) BoundaryThreshold(v0 float64) float64 {
	return (v0*c.DtC + 0.5*c.Ego.AMax*c.DtC*c.DtC) * (1 - c.Ego.AMax/c.Ego.AMin)
}

// InBoundarySafeSet implements the paper's X_b for this scenario: slack is
// nonnegative but below the one-step threshold (widened by SafetyMargin,
// see Config), and the windows intersect.
func (c Config) InBoundarySafeSet(ego dynamics.State, oncoming interval.Interval) bool {
	s := c.Slack(ego)
	if s < 0 || s >= c.BoundaryThreshold(ego.V)+c.SafetyMargin {
		return false
	}
	return c.EgoWindow(ego).Intersects(oncoming)
}

// StopOvershoot returns the worst-case distance by which the
// Δt_c-discretized integrator overshoots a continuous critical stop:
// the final braking step applies the velocity-clamped deceleration −v/Δt_c
// for the whole period and travels v·Δt_c/2 instead of v²/(2|a_min|),
// an excess of at most |a_min|·Δt_c²/8 (maximized at v = |a_min|·Δt_c/2).
// κ_e and the emergency-one-step checker both use this bound: a state
// whose slack is below it cannot be guaranteed to stop short of the front
// line in discrete time, however hard it brakes.
func (c Config) StopOvershoot() float64 {
	return -c.Ego.AMin * c.DtC * c.DtC / 8
}

// EmergencyAccel implements the scenario's emergency planner κ_e.  The
// paper switches on position (brake before the front line, escape after);
// here the switch is on *feasibility*, which is what Eq. 4 actually needs:
//
//   - stoppable (short of the line, with enough slack to absorb the
//     discretization overshoot): brake just hard enough to stop
//     StopMargin before PF;
//   - committed (already inside the zone, negative slack, or slack below
//     StopOvershoot — where the discretized stop can land past the front
//     line at crawl speed, the worst state of all): escape at full
//     acceleration — braking a committed vehicle would park it inside
//     the conflict zone, the one outcome that must never happen.
//
// The StopOvershoot cut matters only on the knife edge: the runtime
// monitor hands off with at least SafetyMargin of slack, so a fault-free
// episode never engages κ_e below it.  Fault containment does — the
// guard substitutes κ_e at arbitrary reachable states, including
// mid-dash states whose slack has just crossed zero — and braking there
// must not be allowed to stop millimetres past the line.
//
// The output is clamped to the ego's envelope so the planner remains
// admissible from any state.
func (c Config) EmergencyAccel(ego dynamics.State) float64 {
	g := c.Geometry
	if ego.P > g.PF {
		return c.Ego.AMax
	}
	if ego.V <= 0 {
		return 0 // already stopped short of the zone: hold
	}
	if c.Slack(ego) <= c.StopOvershoot() {
		return c.Ego.AMax // committed: minimize time spent in the zone
	}
	var a float64
	gap := g.PF - c.StopMargin - ego.P
	if gap <= 0 {
		a = c.Ego.AMin
	} else {
		a = -ego.V * ego.V / (2 * gap)
	}
	return math.Max(c.Ego.AMin, math.Min(c.Ego.AMax, a))
}

// MinAccelToClear returns the smallest constant acceleration that lets the
// ego cover the distance to the back line within the next tWindow seconds
// (clearing the zone before the oncoming vehicle can possibly arrive).  It
// reports ok = false when even full acceleration is insufficient.  The
// runtime monitor uses this as a commitment guard: once the ego's slack is
// negative it is committed to crossing, and constraining the NN planner's
// output to at least this floor preserves the pass-before-C1 invariant that
// justified committing (see internal/monitor).
func (c Config) MinAccelToClear(ego dynamics.State, tWindow float64) (float64, bool) {
	d := c.Geometry.PB - ego.P
	if d <= 0 {
		return c.Ego.AMin, true // already past the back line
	}
	if tWindow <= 0 {
		return 0, false
	}
	if math.IsInf(tWindow, 1) {
		return c.Ego.AMin, true
	}
	reach := func(a float64) float64 {
		return dynamics.DistanceAfter(tWindow, ego.V, a, c.Ego.VMin, c.Ego.VMax)
	}
	if reach(c.Ego.AMax) < d {
		return 0, false
	}
	if reach(c.Ego.AMin) >= d {
		return c.Ego.AMin, true
	}
	lo, hi := c.Ego.AMin, c.Ego.AMax // reach(lo) < d ≤ reach(hi)
	for i := 0; i < 60; i++ {
		mid := lo + (hi-lo)/2
		if reach(mid) >= d {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// MaxAccelToDelay returns the largest constant acceleration that keeps the
// ego from reaching the front line for at least tDelay seconds.  It reports
// ok = false when even maximum braking arrives too early (only possible for
// a committed ego, since a stoppable one never arrives under full braking).
// The runtime monitor uses this as the pass-after commitment guard — the
// dual of MinAccelToClear.
func (c Config) MaxAccelToDelay(ego dynamics.State, tDelay float64) (float64, bool) {
	d := c.Geometry.PF - ego.P
	if d <= 0 {
		return c.Ego.AMax, false // already at/past the line
	}
	if tDelay <= 0 {
		return c.Ego.AMax, true
	}
	arrival := func(a float64) float64 {
		return dynamics.TimeToReach(d, ego.V, a, c.Ego.VMax)
	}
	if arrival(c.Ego.AMin) < tDelay {
		return c.Ego.AMin, false
	}
	if arrival(c.Ego.AMax) >= tDelay {
		return c.Ego.AMax, true
	}
	lo, hi := c.Ego.AMin, c.Ego.AMax // arrival(lo) ≥ tDelay > arrival(hi)
	for i := 0; i < 60; i++ {
		mid := lo + (hi-lo)/2
		if arrival(mid) >= tDelay {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// ReachedTarget reports whether the ego vehicle has completed the turn —
// the target set X_t is every state with the ego past the back line.
func (c Config) ReachedTarget(ego dynamics.State) bool {
	return ego.P > c.Geometry.PB
}

// InZone reports whether a path position lies inside the conflict zone.
func (c Config) InZone(p float64) bool {
	return p >= c.Geometry.PF && p <= c.Geometry.PB
}

// Collision reports whether both vehicles occupy the conflict zone
// simultaneously — the safety violation of the case study.
func (c Config) Collision(ego, oncoming dynamics.State) bool {
	return c.InZone(ego.P) && c.InZone(oncoming.P)
}

// FeatureTimeCap bounds the passing-window features fed to the NN planner;
// +Inf window edges (no conflict possible) saturate here.
const FeatureTimeCap = 60

// FeatureCount is the width of the NN planner input vector.
const FeatureCount = 5

// Features assembles the paper's 5-dimensional NN planner input
// (t, p0, v0, τ1,min, τ1,max).  An empty window is encoded as a window that
// starts and ends at the cap, i.e. "conflict infinitely far away".
func Features(t float64, ego dynamics.State, oncoming interval.Interval) []float64 {
	dst := make([]float64, FeatureCount)
	FeaturesInto(dst, t, ego, oncoming)
	return dst
}

// FeaturesInto writes the feature vector into dst (length ≥ FeatureCount)
// without allocating; hot paths reuse one scratch buffer across calls.
func FeaturesInto(dst []float64, t float64, ego dynamics.State, oncoming interval.Interval) {
	tMin, tMax := float64(FeatureTimeCap), float64(FeatureTimeCap)
	if !oncoming.IsEmpty() {
		tMin = math.Min(oncoming.Lo, FeatureTimeCap)
		tMax = math.Min(oncoming.Hi, FeatureTimeCap)
	}
	dst[0], dst[1], dst[2], dst[3], dst[4] = t, ego.P, ego.V, tMin, tMax
}

// FeatureBox returns a fresh interval feature box; see FeatureBoxInto.
func (c Config) FeatureBox(t float64, ego dynamics.State, sound OncomingEstimate, aggressive bool) []interval.Interval {
	dst := make([]interval.Interval, FeatureCount)
	c.FeatureBoxInto(dst, t, ego, sound, aggressive)
	return dst
}

// FeatureBoxInto is the interval twin of FeaturesInto: it writes into dst
// (length ≥ FeatureCount) a box guaranteed to contain the feature vector
// Features(t, ego, W(e)) for *every* oncoming estimate e whose position and
// velocity intervals lie inside the sound estimate's and whose point
// acceleration equals sound.A — in particular for the fused (Kalman-joined)
// estimate the planner actually sees, which the filter keeps inside the
// sound set by construction.  W is the aggressive window (Eq. 8) when
// aggressive is set and the conservative one (Eq. 7) otherwise, matching
// which window the certified agent feeds its planner.
//
// Time, ego position, and ego velocity are exactly known, so the first
// three features are point intervals.  The window features are bracketed
// at two corner estimates — nearest/fastest (entry's earliest corner) and
// farthest/slowest (exit's latest corner): both window times are monotone
// nonincreasing in the estimate's position/velocity endpoints, the
// FeatureTimeCap saturation is monotone, and the empty-window encoding
// (cap, cap) is folded in whenever some estimate in the sound set can
// already have passed the zone (sound.P.Hi ≥ PB) or never arrive (an
// infinite corner entry saturates to the cap on the far side).  The box is
// always finite, so it is a valid ibp input.
func (c Config) FeatureBoxInto(dst []interval.Interval, t float64, ego dynamics.State, sound OncomingEstimate, aggressive bool) {
	dst[0] = interval.Point(t)
	dst[1] = interval.Point(ego.P)
	dst[2] = interval.Point(ego.V)
	const tcap = float64(FeatureTimeCap)
	if sound.P.IsEmpty() || sound.V.IsEmpty() || sound.P.Lo >= c.Geometry.PB {
		// Every estimate inside the sound set yields an empty window.
		dst[3], dst[4] = interval.Point(tcap), interval.Point(tcap)
		return
	}
	near := OncomingEstimate{
		P: interval.Point(sound.P.Hi), V: interval.Point(sound.V.Hi),
		PointP: sound.P.Hi, PointV: sound.V.Hi, A: sound.A,
	}
	far := OncomingEstimate{
		P: interval.Point(sound.P.Lo), V: interval.Point(sound.V.Lo),
		PointP: sound.P.Lo, PointV: sound.V.Lo, A: sound.A,
	}
	var enN, exN, enF, exF float64
	if aggressive {
		enN, exN = c.aggressiveTimes(near)
		enF, exF = c.aggressiveTimes(far)
	} else {
		enN, exN = c.conservativeTimes(near)
		enF, exF = c.conservativeTimes(far)
	}
	f3lo, f3hi := math.Min(enN, tcap), math.Min(enF, tcap)
	f4lo, f4hi := math.Min(exN, tcap), math.Min(exF, tcap)
	if sound.P.Hi >= c.Geometry.PB {
		// The near corner has surely passed the zone: the empty-window
		// features (cap, cap) are reachable inside the sound set.
		f3hi, f4hi = tcap, tcap
	}
	dst[3] = interval.New(math.Min(f3lo, f3hi), math.Max(f3lo, f3hi))
	dst[4] = interval.New(math.Min(f4lo, f4hi), math.Max(f4lo, f4hi))
}
