// Package planner defines the planner abstraction of the paper (§II-A):
// a function from the current system state to the ego acceleration — and
// provides the concrete planners of the evaluation: two analytic expert
// policies (a conservative yielder and an aggressive gap-taker) and the
// NN-based planners trained to imitate them (see train.go).
//
// Every planner consumes the same 5 quantities the paper feeds κ_n in the
// case study: the time t, the ego position and velocity, and the estimated
// passing-time window [τ1,min, τ1,max] of the oncoming vehicle.  Which
// window a planner receives — conservative (Eq. 7) or aggressive (Eq. 8) —
// is decided by the surrounding compound planner, which is exactly how the
// aggressive unsafe-set technique influences behaviour without retraining.
package planner

import (
	"math"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
)

// Planner decides the ego acceleration from the planner-visible state.
type Planner interface {
	// Name identifies the planner in results tables.
	Name() string
	// Accel returns the commanded acceleration given the time, the ego
	// state, and the estimated oncoming passing-time window (relative,
	// possibly empty when no conflict is considered possible).
	Accel(t float64, ego dynamics.State, oncoming interval.Interval) float64
}

// Expert is an analytic rule policy over the planner-visible state.  It is
// both a usable planner and the teacher for imitation learning.
//
// Decision logic: commit ("go") when the ego can clear the back line —
// flat out — at least GoMargin seconds before the window opens; otherwise
// yield by tracking a speed profile that arrives at the front line as the
// window closes (crawling to a stop if the window never closes).
type Expert struct {
	Cfg leftturn.Config

	// GoMargin is the spare time demanded before committing.  Large
	// positive values yield the conservative planner; negative values the
	// aggressive one (it commits even when flat-out clearing happens after
	// the earliest possible oncoming arrival — betting the oncoming car
	// won't actually drive at its physical limits).
	GoMargin float64
	// YieldBuffer is how many metres before the front line the yield
	// profile aims to stop.
	YieldBuffer float64
	// Response is the speed-tracking time constant while yielding [s].
	Response float64
	// ComfortBrake is the deceleration magnitude beyond which the yield
	// profile switches to a hard stop-before-line braking law [m/s²].
	ComfortBrake float64
	// GlideBrake shapes the approach when the window never closes: the
	// yield profile holds the speed from which a GlideBrake-deceleration
	// stop at the buffer point is still possible, so the vehicle glides to
	// the line instead of stopping far away [m/s²].
	GlideBrake float64

	// Label names the expert in results tables.
	Label string
}

// ConservativeExpert returns the yield-first expert: it commits only with a
// full second of worst-case margin and brakes early, mirroring the paper's
// κ_n,cons behaviour (safe standalone, but slow).
func ConservativeExpert(cfg leftturn.Config) *Expert {
	return &Expert{
		Cfg:          cfg,
		GoMargin:     1.0,
		YieldBuffer:  1.0,
		Response:     0.6,
		ComfortBrake: 4.0,
		GlideBrake:   1.2,
		Label:        "expert-conservative",
	}
}

// AggressiveExpert returns the gap-taking expert: it commits even when the
// worst-case oncoming arrival precedes its own clearing time by up to
// |GoMargin| seconds, mirroring κ_n,aggr (fast, but unsafe standalone).
func AggressiveExpert(cfg leftturn.Config) *Expert {
	return &Expert{
		Cfg:          cfg,
		GoMargin:     -1.6,
		YieldBuffer:  0.5,
		Response:     0.4,
		ComfortBrake: 5.0,
		GlideBrake:   2.0,
		Label:        "expert-aggressive",
	}
}

// Name implements Planner.
func (e *Expert) Name() string { return e.Label }

// Accel implements Planner.
func (e *Expert) Accel(_ float64, ego dynamics.State, oncoming interval.Interval) float64 {
	c := e.Cfg
	lim := c.Ego
	// Past the zone, or inside it: keep moving out at full throttle.
	if ego.P > c.Geometry.PF {
		return lim.AMax
	}
	// No conflict possible: go.
	if oncoming.IsEmpty() {
		return lim.AMax
	}
	// Commit when flat-out clearing beats the window opening with margin.
	clear := dynamics.TimeToReach(c.Geometry.PB-ego.P, ego.V, lim.AMax, lim.VMax)
	if clear+e.GoMargin <= oncoming.Lo {
		return lim.AMax
	}
	return e.yieldAccel(ego, oncoming)
}

// yieldAccel tracks a profile that arrives at the front line as the window
// closes, degrading to a stop at YieldBuffer before the line when the
// window never closes (or closes too far away).
func (e *Expert) yieldAccel(ego dynamics.State, oncoming interval.Interval) float64 {
	c := e.Cfg
	lim := c.Ego
	dist := c.Geometry.PF - e.YieldBuffer - ego.P
	if dist <= 0 {
		// Within the buffer: stop now.
		return lim.AMin
	}
	// Hard-stop guard: if the braking needed to stop before the buffer
	// point approaches the comfort limit, brake for the stop regardless of
	// the tracking law.
	required := ego.V * ego.V / (2 * dist)
	if required >= e.ComfortBrake {
		return math.Max(lim.AMin, -required*1.1)
	}
	// Glide: approach as fast as a comfortable stop at the buffer point
	// allows, so the vehicle is poised at the line when the window closes.
	vTarget := math.Sqrt(2 * e.GlideBrake * dist)
	if !math.IsInf(oncoming.Hi, 1) && oncoming.Hi > 0 {
		// The window closes at a known time: aim to arrive right then.
		if vArrive := dist / oncoming.Hi; vArrive > vTarget {
			vTarget = vArrive
		}
	}
	if vTarget > lim.VMax {
		vTarget = lim.VMax
	}
	a := (vTarget - ego.V) / e.Response
	return math.Max(lim.AMin, math.Min(lim.AMax, a))
}

// Emergency wraps the scenario's emergency planner κ_e as a Planner so it
// can be benchmarked standalone; it ignores the window by design.
type Emergency struct {
	Cfg leftturn.Config
}

// Name implements Planner.
func (Emergency) Name() string { return "emergency" }

// Accel implements Planner.
func (e Emergency) Accel(_ float64, ego dynamics.State, _ interval.Interval) float64 {
	return e.Cfg.EmergencyAccel(ego)
}

// Func adapts a plain function to the Planner interface, easing tests and
// user-supplied planners.
type Func struct {
	PlannerName string
	F           func(t float64, ego dynamics.State, oncoming interval.Interval) float64
}

// Name implements Planner.
func (f Func) Name() string { return f.PlannerName }

// Accel implements Planner.
func (f Func) Accel(t float64, ego dynamics.State, oncoming interval.Interval) float64 {
	return f.F(t, ego, oncoming)
}
