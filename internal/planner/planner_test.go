package planner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
)

func scenario() leftturn.Config { return leftturn.DefaultConfig() }

func TestExpertGoesWhenNoConflict(t *testing.T) {
	c := scenario()
	e := ConservativeExpert(c)
	ego := dynamics.State{P: -30, V: 8}
	if got := e.Accel(0, ego, interval.Empty()); got != c.Ego.AMax {
		t.Fatalf("no-conflict accel = %v, want AMax", got)
	}
}

func TestExpertGoesWithHugeMargin(t *testing.T) {
	c := scenario()
	e := ConservativeExpert(c)
	ego := dynamics.State{P: -30, V: 8}
	// Oncoming car a minute away: commit.
	if got := e.Accel(0, ego, interval.New(60, 70)); got != c.Ego.AMax {
		t.Fatalf("huge-margin accel = %v, want AMax", got)
	}
}

func TestExpertYieldsWhenWindowImminent(t *testing.T) {
	c := scenario()
	e := ConservativeExpert(c)
	ego := dynamics.State{P: -30, V: 8}
	// Oncoming car arriving about when we would: yield (decelerate or at
	// least not full throttle).
	got := e.Accel(0, ego, interval.New(3, math.Inf(1)))
	if got >= c.Ego.AMax {
		t.Fatalf("imminent-conflict accel = %v, want < AMax", got)
	}
}

func TestExpertEscapesInsideZone(t *testing.T) {
	c := scenario()
	e := ConservativeExpert(c)
	ego := dynamics.State{P: 10, V: 3}
	if got := e.Accel(0, ego, interval.New(0, 10)); got != c.Ego.AMax {
		t.Fatalf("in-zone accel = %v, want AMax", got)
	}
}

func TestExpertHardStopsNearLine(t *testing.T) {
	c := scenario()
	e := ConservativeExpert(c)
	// Fast and close with a conflict: must brake hard.
	ego := dynamics.State{P: 0, V: 9}
	got := e.Accel(0, ego, interval.New(0.4, 5))
	if got > -3 {
		t.Fatalf("near-line conflict accel = %v, want strong braking", got)
	}
}

func TestAggressiveCommitsEarlierThanConservative(t *testing.T) {
	c := scenario()
	cons := ConservativeExpert(c)
	aggr := AggressiveExpert(c)
	ego := dynamics.State{P: -30, V: 8}
	// A window whose opening is between the two GoMargins.
	clear := dynamics.TimeToReach(c.Geometry.PB-ego.P, ego.V, c.Ego.AMax, c.Ego.VMax)
	w := interval.New(clear-0.5, math.Inf(1)) // opens 0.5 s before flat-out clearing
	if got := aggr.Accel(0, ego, w); got != c.Ego.AMax {
		t.Fatalf("aggressive should commit, got %v", got)
	}
	if got := cons.Accel(0, ego, w); got >= c.Ego.AMax {
		t.Fatalf("conservative should yield, got %v", got)
	}
}

func TestConservativeExpertIsSafeStandalone(t *testing.T) {
	// Drive the conservative expert closed-loop against a worst-case
	// oncoming vehicle with perfect information; it must never enter the
	// zone while the other car is inside.
	c := scenario()
	e := ConservativeExpert(c)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ego := c.EgoInit
		onc := dynamics.State{P: -40 + rng.Float64()*9.5, V: 7 + rng.Float64()*8}
		var oncA float64
		for i := 0; i < 600; i++ {
			tt := float64(i) * c.DtC
			w := c.ConservativeWindow(leftturn.ExactEstimate(onc, oncA))
			a := e.Accel(tt, ego, w)
			ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
			// Random admissible oncoming behaviour.
			ba := -3 + rng.Float64()*5.5
			onc, oncA = dynamics.Step(onc, ba, c.DtC, c.Oncoming)
			if c.Collision(ego, onc) {
				t.Fatalf("seed %d: conservative expert collided at t=%.2f", seed, tt)
			}
			if c.ReachedTarget(ego) {
				break
			}
		}
	}
}

func TestEmergencyPlannerWrapper(t *testing.T) {
	c := scenario()
	e := Emergency{Cfg: c}
	if e.Name() != "emergency" {
		t.Fatal("name wrong")
	}
	ego := dynamics.State{P: -15, V: 8}
	if got, want := e.Accel(0, ego, interval.Empty()), c.EmergencyAccel(ego); got != want {
		t.Fatalf("wrapper accel %v != κ_e %v", got, want)
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func{PlannerName: "const", F: func(float64, dynamics.State, interval.Interval) float64 { return 1.5 }}
	if f.Name() != "const" {
		t.Fatal("name wrong")
	}
	if got := f.Accel(0, dynamics.State{}, interval.Empty()); got != 1.5 {
		t.Fatalf("accel = %v", got)
	}
}

// Property: expert output is always within the ego envelope.
func TestQuickExpertOutputAdmissible(t *testing.T) {
	c := scenario()
	experts := []*Expert{ConservativeExpert(c), AggressiveExpert(c)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ego := dynamics.State{P: -45 + rng.Float64()*65, V: rng.Float64() * c.Ego.VMax}
		var w interval.Interval
		switch rng.Intn(3) {
		case 0:
			w = interval.Empty()
		case 1:
			lo := rng.Float64() * 10
			w = interval.New(lo, lo+rng.Float64()*10)
		default:
			w = interval.New(rng.Float64()*10, math.Inf(1))
		}
		for _, e := range experts {
			a := e.Accel(rng.Float64()*10, ego, w)
			if a < c.Ego.AMin-1e-9 || a > c.Ego.AMax+1e-9 || math.IsNaN(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
