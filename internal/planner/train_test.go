package planner

import (
	"math"
	"path/filepath"
	"testing"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// quickOpts keeps training fast in unit tests.
func quickOpts(seed int64) TrainOptions {
	return TrainOptions{
		Hidden:    []int{32, 32},
		Samples:   10000,
		Epochs:    40,
		BatchSize: 64,
		Seed:      seed,
	}
}

func TestBuildImitationDataset(t *testing.T) {
	c := scenario()
	ds, err := BuildImitationDataset(c, ConservativeExpert(c), quickOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 10000 {
		t.Fatalf("dataset size = %d", ds.Len())
	}
	if ds.X.Cols() != 5 || ds.Y.Cols() != 1 {
		t.Fatalf("feature/label shape %d/%d", ds.X.Cols(), ds.Y.Cols())
	}
	// Labels must be admissible accelerations.
	for i := 0; i < ds.Len(); i++ {
		a := ds.Y.At(i, 0)
		if a < c.Ego.AMin-1e-9 || a > c.Ego.AMax+1e-9 {
			t.Fatalf("label %v outside envelope", a)
		}
	}
	// The dataset must contain both committed (AMax) and yielding samples.
	var nGo, nYield int
	for i := 0; i < ds.Len(); i++ {
		if ds.Y.At(i, 0) >= c.Ego.AMax-1e-9 {
			nGo++
		} else {
			nYield++
		}
	}
	if nGo == 0 || nYield == 0 {
		t.Fatalf("dataset lacks decision diversity: go=%d yield=%d", nGo, nYield)
	}
}

func TestTrainNNPlannerImitatesExpert(t *testing.T) {
	c := scenario()
	expert := ConservativeExpert(c)
	nnp, loss, err := TrainNNPlanner(c, expert, "nn-cons", quickOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	// The expert policy is discontinuous at the go/yield switch, so the MSE
	// floor is dominated by boundary samples; what matters behaviourally is
	// the decision agreement below.
	if loss > 0.8 {
		t.Fatalf("imitation loss %v too high", loss)
	}
	// The NN must agree with the expert's go/yield decision on most states
	// from a held-out draw of the training distribution.
	held, err := BuildImitationDataset(c, expert, quickOpts(102))
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for i := 0; i < held.Len(); i += 7 {
		f := held.X.Row(i)
		ego := dynamics.State{P: f[1], V: f[2]}
		w := interval.New(f[3], f[4])
		ea := held.Y.At(i, 0)
		na := nnp.Accel(f[0], ego, w)
		if (ea >= c.Ego.AMax-0.5) == (na >= c.Ego.AMax-0.5) {
			agree++
		}
		total++
	}
	if frac := float64(agree) / float64(total); frac < 0.85 {
		t.Fatalf("go/yield agreement %.2f too low (n=%d)", frac, total)
	}
}

func TestNNPlannerOutputClamped(t *testing.T) {
	c := scenario()
	nnp, _, err := TrainNNPlanner(c, AggressiveExpert(c), "nn-aggr", quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ego := dynamics.State{P: -45 + float64(i)*0.15, V: float64(i % 13)}
		a := nnp.Accel(float64(i)*0.03, ego, interval.New(1, 5))
		if a < c.Ego.AMin || a > c.Ego.AMax || math.IsNaN(a) {
			t.Fatalf("NN output %v outside envelope", a)
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	c := scenario()
	opts := quickOpts(4)
	opts.Samples = 2000
	opts.Epochs = 5
	a, _, err := TrainNNPlanner(c, ConservativeExpert(c), "a", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TrainNNPlanner(c, ConservativeExpert(c), "b", opts)
	if err != nil {
		t.Fatal(err)
	}
	ego := dynamics.State{P: -20, V: 7}
	w := interval.New(2, 8)
	if a.Accel(1, ego, w) != b.Accel(1, ego, w) {
		t.Fatal("training not deterministic for equal seeds")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := scenario()
	opts := quickOpts(5)
	opts.Samples = 2000
	opts.Epochs = 5
	nnp, _, err := TrainNNPlanner(c, ConservativeExpert(c), "nn", opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := nnp.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNNPlanner(path, "nn-loaded", c.Ego)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != "nn-loaded" {
		t.Fatal("label not applied")
	}
	ego := dynamics.State{P: -15, V: 6}
	w := interval.New(1.5, 7)
	if got, want := loaded.Accel(2, ego, w), nnp.Accel(2, ego, w); math.Abs(got-want) > 1e-9 {
		t.Fatalf("round trip changed prediction: %v vs %v", got, want)
	}
}

func TestLoadRejectsMissingFile(t *testing.T) {
	if _, err := LoadNNPlanner(filepath.Join(t.TempDir(), "nope.json"), "x", scenario().Ego); err == nil {
		t.Fatal("missing file accepted")
	}
}
