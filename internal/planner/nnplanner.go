package planner

import (
	"fmt"
	"os"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/nn"
)

// NNPlanner is a neural-network-based planner κ_n: a trained regression
// network over the paper's 5 input features (t, p0, v0, τ1,min, τ1,max)
// producing the commanded acceleration.
type NNPlanner struct {
	Label  string
	Net    *nn.Network
	Norm   *nn.Normalizer  // input standardization baked in at training time
	Limits dynamics.Limits // ego envelope for output clamping

	feats [leftturn.FeatureCount]float64 // per-call feature scratch
}

// Name implements Planner.
func (p *NNPlanner) Name() string { return p.Label }

// Accel implements Planner.
func (p *NNPlanner) Accel(t float64, ego dynamics.State, oncoming interval.Interval) float64 {
	feats := p.feats[:]
	leftturn.FeaturesInto(feats, t, ego, oncoming)
	if p.Norm != nil {
		p.Norm.Apply(feats)
	}
	a := p.Net.Predict1(feats)
	if a > p.Limits.AMax {
		a = p.Limits.AMax
	}
	if a < p.Limits.AMin {
		a = p.Limits.AMin
	}
	return a
}

// Save writes the planner's model (network + normalizer) to path.
func (p *NNPlanner) Save(path string) error {
	data, err := nn.MarshalModel(p.Net, p.Norm)
	if err != nil {
		return fmt.Errorf("planner: marshal %s: %w", p.Label, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("planner: save %s: %w", p.Label, err)
	}
	return nil
}

// LoadNNPlanner reads a model saved by Save.
func LoadNNPlanner(path, label string, limits dynamics.Limits) (*NNPlanner, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("planner: load %s: %w", label, err)
	}
	net, norm, err := nn.UnmarshalModel(data)
	if err != nil {
		return nil, fmt.Errorf("planner: load %s: %w", label, err)
	}
	if net.InputDim() != 5 || net.OutputDim() != 1 {
		return nil, fmt.Errorf("planner: model %s has shape %d→%d, want 5→1",
			label, net.InputDim(), net.OutputDim())
	}
	return &NNPlanner{Label: label, Net: net, Norm: norm, Limits: limits}, nil
}
