package planner

import (
	"fmt"
	"math"
	"math/rand"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/mat"
	"safeplan/internal/nn"
	"safeplan/internal/traffic"
)

// TrainOptions drives imitation learning of an NN planner from an expert.
type TrainOptions struct {
	Hidden      []int                 // hidden layer widths; nil selects {32, 32}
	Samples     int                   // dataset size; 0 selects 20000
	RolloutFrac float64               // fraction of samples drawn from closed-loop rollouts (default 0.6)
	Epochs      int                   // training epochs; 0 selects 40
	BatchSize   int                   // minibatch size; 0 selects 64
	LR          float64               // Adam learning rate; 0 selects 3e-3
	Seed        int64                 // master seed (weights, rollouts, shuffling)
	Driver      *traffic.DriverConfig // oncoming behaviour for rollouts; nil selects default
}

func (o *TrainOptions) fill() {
	if len(o.Hidden) == 0 {
		o.Hidden = []int{32, 32}
	}
	if o.Samples <= 0 {
		o.Samples = 20000
	}
	if o.RolloutFrac <= 0 || o.RolloutFrac > 1 {
		o.RolloutFrac = 0.6
	}
	if o.Epochs <= 0 {
		o.Epochs = 40
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.LR <= 0 {
		o.LR = 3e-3
	}
	if o.Driver == nil {
		d := traffic.DefaultDriverConfig()
		o.Driver = &d
	}
}

// BuildImitationDataset samples planner-visible states — a mixture of
// closed-loop expert rollouts (the realistic state manifold) and uniform
// random feature draws (coverage) — and labels each with the expert's
// decision.  The feature layout matches leftturn.Features.
func BuildImitationDataset(cfg leftturn.Config, expert Planner, opts TrainOptions) (*nn.Dataset, error) {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed))
	x := mat.NewDense(opts.Samples, 5)
	y := mat.NewDense(opts.Samples, 1)
	i := 0
	add := func(t float64, ego dynamics.State, w interval.Interval) bool {
		if i >= opts.Samples {
			return false
		}
		copy(x.Row(i), leftturn.Features(t, ego, w))
		y.Set(i, 0, expert.Accel(t, ego, w))
		i++
		return true
	}

	// Closed-loop rollouts under the expert.
	rolloutBudget := int(float64(opts.Samples) * opts.RolloutFrac)
	for i < rolloutBudget {
		if err := rolloutOnce(cfg, expert, *opts.Driver, rng, add); err != nil {
			return nil, err
		}
	}
	// Uniform coverage of the feature space.
	for i < opts.Samples {
		ego := dynamics.State{
			P: -45 + rng.Float64()*65,
			V: rng.Float64() * cfg.Ego.VMax,
		}
		t := rng.Float64() * 15
		var w interval.Interval
		switch r := rng.Float64(); {
		case r < 0.15:
			w = interval.Empty()
		case r < 0.45:
			lo := rng.Float64() * 15
			w = interval.New(lo, math.Inf(1))
		default:
			lo := rng.Float64() * 15
			w = interval.New(lo, lo+rng.Float64()*12)
		}
		add(t, ego, w)
	}
	return nn.NewDataset(x, y)
}

// rolloutOnce simulates one expert-controlled episode, feeding every step's
// (features, label) pair to add.  The oncoming window is the conservative
// estimate over the exact oncoming state, matching what the planner sees at
// runtime when communication is perfect.
func rolloutOnce(cfg leftturn.Config, expert Planner,
	dc traffic.DriverConfig, rng *rand.Rand, add func(float64, dynamics.State, interval.Interval) bool) error {
	driver, err := traffic.NewDriver(dc, rng)
	if err != nil {
		return err
	}
	ego := cfg.EgoInit
	onc := cfg.OncomingInit
	onc.P -= rng.Float64() * 9.5 // the paper's initial-position sweep
	onc.V = 5 + rng.Float64()*7
	var oncA float64
	const horizon = 30.0
	for t := 0.0; t < horizon; t += cfg.DtC {
		est := leftturn.ExactEstimate(onc, oncA)
		w := cfg.ConservativeWindow(est)
		if !add(t, ego, w) {
			return nil
		}
		a := expert.Accel(t, ego, w)
		ego, _ = dynamics.Step(ego, a, cfg.DtC, cfg.Ego)
		oncA = driver.Accel(t, onc)
		onc, oncA = stepOncoming(onc, oncA, cfg)
		if cfg.ReachedTarget(ego) {
			return nil
		}
	}
	return nil
}

func stepOncoming(s dynamics.State, a float64, cfg leftturn.Config) (dynamics.State, float64) {
	next, applied := dynamics.Step(s, a, cfg.DtC, cfg.Oncoming)
	return next, applied
}

// TrainNNPlanner imitates the expert with a freshly initialized MLP and
// returns the resulting NN planner together with its final training loss.
func TrainNNPlanner(cfg leftturn.Config, expert Planner, label string, opts TrainOptions) (*NNPlanner, float64, error) {
	opts.fill()
	ds, err := BuildImitationDataset(cfg, expert, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("planner: build dataset: %w", err)
	}
	norm := nn.FitNormalizer(ds.X)
	norm.ApplyMatrix(ds.X)

	sizes := append([]int{5}, opts.Hidden...)
	sizes = append(sizes, 1)
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	net := nn.NewMLP(rng, nn.Tanh{}, sizes...)
	loss := net.Fit(ds, &nn.Adam{LR: opts.LR}, nn.TrainConfig{
		Epochs:    opts.Epochs,
		BatchSize: opts.BatchSize,
		Seed:      opts.Seed + 2,
	})
	return &NNPlanner{Label: label, Net: net, Norm: norm, Limits: cfg.Ego}, loss, nil
}
