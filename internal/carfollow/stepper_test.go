package carfollow

import (
	"encoding/json"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/sim"
)

func cfJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStepperRunParity pins the car-following half of the ownership
// inversion: an externally driven Stepper — fresh and with a reused
// arena (the pooled ExtEngine path) — must reproduce RunEpisode byte for
// byte under every disturbance shape the package exercises.
func TestStepperRunParity(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*SimConfig)
	}{
		{"perfect", func(*SimConfig) {}},
		{"delayed", func(c *SimConfig) { c.Comms = comms.Delayed(0.25, 0.5) }},
		{"lost", func(c *SimConfig) { c.Comms = comms.Lost() }},
	}
	reused := sim.NewScratch()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := simCfg()
			cfg.InfoFilter = true
			tc.mod(&cfg)
			agent := NewUltimate(cfg.Scenario, AggressiveExpert(cfg.Scenario))
			for seed := int64(0); seed < 8; seed++ {
				want, err := RunEpisode(cfg, agent, sim.Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				ref := cfJSON(t, want)
				for name, opts := range map[string]sim.Options{
					"fresh":  {Seed: seed},
					"pooled": {Seed: seed, Scratch: reused},
				} {
					st, err := NewStepper(cfg, agent, opts)
					if err != nil {
						t.Fatal(err)
					}
					for !st.Done() {
						if _, err := st.Step(sim.StepInput{}); err != nil {
							t.Fatal(err)
						}
					}
					res, err := st.Finish()
					if err != nil {
						t.Fatal(err)
					}
					if got := cfJSON(t, res); got != ref {
						t.Fatalf("seed %d (%s): stepper-driven episode diverged from RunEpisode\nrun:     %s\nstepper: %s", seed, name, ref, got)
					}
				}
			}
		})
	}
}

// TestStepperFinishIdempotent pins Finish/past-the-end semantics on the
// carfollow engine (the sim-side contract test covers the leftturn one).
func TestStepperFinishIdempotent(t *testing.T) {
	cfg := simCfg()
	st, err := NewStepper(cfg, NewUltimate(cfg.Scenario, ConservativeExpert(cfg.Scenario)), sim.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Step(sim.StepInput{}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if out, err := st.Step(sim.StepInput{}); err != nil || !out.Done {
		t.Fatalf("past-the-end step: out=%+v err=%v", out, err)
	}
	second, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if cfJSON(t, first) != cfJSON(t, second) {
		t.Fatalf("Finish is not idempotent\nfirst:  %s\nsecond: %s", cfJSON(t, first), cfJSON(t, second))
	}
}
