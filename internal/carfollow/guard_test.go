package carfollow

import (
	"reflect"
	"testing"

	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/sim"
)

// TestGuardedCampaignParity pins the car-following guard's transparency
// at campaign scale: with a guard enabled and no fault model, every
// episode must be identical to the unguarded campaign once the guard's
// own call counters are set aside.
func TestGuardedCampaignParity(t *testing.T) {
	const episodes = 12
	cfg := simCfg()
	cfg.InfoFilter = true
	agent := NewUltimate(cfg.Scenario, AggressiveExpert(cfg.Scenario))
	plain, err := RunCampaign(cfg, agent, episodes, sim.CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}

	gc := guard.DefaultConfig(cfg.Scenario.Ego)
	cfg.Guard = &gc
	a, err := RunCampaign(cfg, agent, episodes, sim.CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		g := a[i]
		if g.Guard.Faults != 0 || g.Guard.WorstState != guard.Nominal {
			t.Fatalf("episode %d: healthy planner tripped the guard: %+v", i, g.Guard)
		}
		g.Guard = guard.EpisodeStats{}
		if !reflect.DeepEqual(g, plain[i]) {
			t.Fatalf("episode %d differs with guard enabled:\n%+v\n%+v", i, plain[i], a[i])
		}
	}
}

// TestFaultPresetsContainedCarFollow sweeps every planner-fault preset
// through the car-following runner under the fail-mode invariants.
func TestFaultPresetsContainedCarFollow(t *testing.T) {
	for _, name := range faultinject.PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := faultinject.Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := simCfg()
			cfg.InfoFilter = true
			cfg.PlannerFault = m
			agent := NewUltimate(cfg.Scenario, AggressiveExpert(cfg.Scenario))
			for seed := int64(0); seed < 10; seed++ {
				res, err := RunEpisode(cfg, agent, sim.Options{
					Seed: seed,
					Invariants: []sim.Invariant{
						sim.NoCollision{},
						sim.SoundEstimate{},
						TrueSlack{Cfg: cfg.Scenario},
						sim.GuardConsistency{Limits: cfg.Scenario.Ego},
					},
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Collided {
					t.Fatalf("seed %d: collided under preset %s", seed, name)
				}
				if res.Guard.PlannerCalls == 0 {
					t.Fatalf("seed %d: guard never invoked", seed)
				}
			}
		})
	}
}
