package carfollow

import (
	"math"
	"math/rand"
	"testing"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// subLead draws an estimate inside sound's intervals with the shared
// acceleration — the family FeatureBoxInto certifies over.
func subLead(rng *rand.Rand, sound LeadEstimate) LeadEstimate {
	sub := func(iv interval.Interval) interval.Interval {
		a := iv.Lo + rng.Float64()*iv.Width()
		b := iv.Lo + rng.Float64()*iv.Width()
		return interval.New(math.Min(a, b), math.Max(a, b))
	}
	p, v := sub(sound.P), sub(sound.V)
	return LeadEstimate{
		P: p, V: v,
		PointP: p.Lo + rng.Float64()*p.Width(),
		PointV: v.Lo + rng.Float64()*v.Width(),
		A:      sound.A,
	}
}

// TestFeatureBoxContainment: the point features of every sub-estimate lie
// inside the interval feature box of the sound estimate.  The affine and
// single-operation bracketing arguments are exact in float64, so no
// tolerance is needed.
func TestFeatureBoxContainment(t *testing.T) {
	c := DefaultConfig()
	rng := rand.New(rand.NewSource(41))
	var box [FeatureCount]interval.Interval
	for caseNo := 0; caseNo < 400; caseNo++ {
		pc := rng.Float64() * 80
		sound := LeadEstimate{
			P: interval.New(pc, pc+rng.Float64()*20),
			V: interval.New(rng.Float64()*10, 10+rng.Float64()*10),
			A: rng.Float64()*6 - 4,
		}
		sound.PointP = sound.P.Mid()
		sound.PointV = sound.V.Mid()
		ego := dynamics.State{P: rng.Float64()*20 - 10, V: rng.Float64() * 20}
		ab := c.AggressiveAssumedBrake(sound.A)
		c.FeatureBoxInto(box[:], ego, sound, ab)
		for i, iv := range box {
			if iv.IsEmpty() || math.IsNaN(iv.Lo) || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
				t.Fatalf("case %d: feature %d box is bad: %v", caseNo, i, iv)
			}
		}
		for s := 0; s < 30; s++ {
			est := sound
			if s > 0 {
				est = subLead(rng, sound)
			}
			feat := c.Features(ego, est, ab)
			for i, f := range feat {
				if f < box[i].Lo || f > box[i].Hi {
					t.Fatalf("case %d sample %d: feature %d = %v escapes box %v (sound %+v, est %+v)",
						caseNo, s, i, f, box[i], sound, est)
				}
			}
		}
	}
}

// TestFeatureBoxPointLead pins bitwise exactness on point estimates.
func TestFeatureBoxPointLead(t *testing.T) {
	c := DefaultConfig()
	rng := rand.New(rand.NewSource(43))
	var box [FeatureCount]interval.Interval
	for caseNo := 0; caseNo < 300; caseNo++ {
		lead := ExactLead(dynamics.State{P: rng.Float64() * 80, V: rng.Float64() * 20}, rng.Float64()*6-4)
		ego := dynamics.State{P: rng.Float64()*20 - 10, V: rng.Float64() * 20}
		ab := c.AggressiveAssumedBrake(lead.A)
		feat := c.Features(ego, lead, ab)
		c.FeatureBoxInto(box[:], ego, lead, ab)
		for i, f := range feat {
			if box[i].Lo != f || box[i].Hi != f {
				t.Fatalf("case %d: feature %d box [%v, %v] is not the point %v",
					caseNo, i, box[i].Lo, box[i].Hi, f)
			}
		}
	}
}

// TestFeatureBoxNoLead pins the empty-estimate sentinel arm.
func TestFeatureBoxNoLead(t *testing.T) {
	c := DefaultConfig()
	var box [FeatureCount]interval.Interval
	sound := LeadEstimate{P: interval.Empty(), V: interval.Empty(), PointV: 3}
	c.FeatureBoxInto(box[:], dynamics.State{P: 0, V: 5}, sound, c.Lead.AMin)
	if box[0] != interval.Point(noLeadGap) {
		t.Fatalf("gap feature %v, want point %v", box[0], noLeadGap)
	}
	if box[2] != interval.Point(3) {
		t.Fatalf("lead-speed feature %v, want point 3", box[2])
	}
}
