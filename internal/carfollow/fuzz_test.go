package carfollow

import (
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/sim"
)

// ffReader decodes fuzz bytes into bounded parameters (the car-following
// twin of the decoder in internal/sim; each package keeps its own copy so
// the fuzz targets stay self-contained).
type ffReader struct {
	data []byte
	i    int
}

func (r *ffReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

func (r *ffReader) unit() float64 { return float64(r.next()) / 255 }

func (r *ffReader) rng(lo, hi float64) float64 { return lo + r.unit()*(hi-lo) }

func ffModel(r *ffReader) disturb.Model {
	switch r.next() % 5 {
	case 0:
		return nil
	case 1:
		return disturb.IID{DropProb: r.unit(), Delay: r.rng(0, 0.5)}
	case 2:
		return disturb.GilbertElliott{
			PGoodBad: r.unit(),
			PBadGood: r.rng(0.02, 1),
			DropBad:  r.unit(),
			Delay:    r.rng(0, 0.3),
		}
	case 3:
		return disturb.Jitter{
			Base:     r.rng(0, 0.2),
			Spread:   r.rng(0, 0.8),
			TailProb: r.unit(),
			TailMean: r.rng(0, 1),
			DropProb: r.unit(),
		}
	default:
		s1 := r.rng(0, 10)
		return disturb.Schedule{Phases: []disturb.Phase{
			{Start: s1, Model: disturb.Blackout{}},
			{Start: s1 + r.rng(0.5, 5), Model: disturb.IID{DropProb: r.unit()}},
		}}
	}
}

// FuzzCarFollowSafety decodes arbitrary bytes into a channel disturbance,
// a sensing disturbance, and a scripted lead behaviour, and asserts the
// framework's guarantees in the car-following scenario via the shared
// invariant checkers threaded through the step loop (sim.Invariant).
func FuzzCarFollowSafety(f *testing.F) {
	// Seed corpus: the three Table-style settings plus a hard-brake lead.
	f.Add([]byte{}, int64(1))                        // perfect comms, stock lead
	f.Add([]byte{1, 127, 127, 0}, int64(42))         // ≈ "messages delayed"
	f.Add([]byte{1, 255, 0, 0}, int64(7))            // ≈ "messages lost"
	f.Add([]byte{4, 60, 90, 128, 2, 0, 0}, int64(9)) // blackout then flaky
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, int64(3))  // lead slams the brakes (script of aMin)

	sc := DefaultConfig()
	agents := []Agent{
		NewBasic(sc, ConservativeExpert(sc)),
		NewBasic(sc, AggressiveExpert(sc)),
	}
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		r := &ffReader{data: data}
		cfg := DefaultSimConfig()
		if m := ffModel(r); m != nil {
			cfg.Comms = comms.Disturbed(m)
		}
		switch r.next() % 3 {
		case 1:
			cfg.SensorDisturb = disturb.BiasDrift{Rate: r.unit(), Max: r.unit()}
		case 2:
			cfg.SensorDisturb = disturb.SensorDropout{
				PGoodBad: r.rng(0, 0.3),
				PBadGood: r.rng(0.05, 1),
				DropBad:  r.unit(),
			}
		}
		agent := agents[int(r.next())%len(agents)]
		// Script the lead from the remaining bytes (one control step per
		// byte, clamped into the lead's physical envelope).
		if n := len(r.data) - r.i; n > 0 {
			if n > 400 {
				n = 400
			}
			script := make([]float64, n)
			for i := range script {
				script[i] = r.rng(cfg.Scenario.Lead.AMin, cfg.Scenario.Lead.AMax)
			}
			cfg.LeadScript = script
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoder produced invalid config: %v", err)
		}
		// Shared invariant checkers, enforced online at every step: no gap
		// violation, sound estimates contain the true lead state, and — the
		// Eq. 4 emergency invariant — the true-state stopping-distance slack
		// stays nonnegative, so maximal braking from any visited state
		// preserves the gap against every admissible lead behaviour.
		_, err := RunEpisode(cfg, agent, sim.Options{Seed: seed, Invariants: []sim.Invariant{
			sim.NoCollision{},
			sim.SoundEstimate{},
			TrueSlack{Cfg: cfg.Scenario},
		}})
		if err != nil {
			t.Fatalf("invariant violated under %+v: %v", cfg.Comms, err)
		}
	})
}
