package carfollow

import (
	"fmt"

	"safeplan/internal/sim"
)

// TrueSlack implements sim.Invariant for the car-following scenario: the
// Eq. 4 emergency invariant on *true* states.  At every visited step the
// stopping-distance slack against the exactly-known lead must stay
// nonnegative, so maximal braking from any visited state preserves the
// gap against every admissible lead behaviour — the emergency planner
// always has a safe move available.
//
// This is the online form of the check the FuzzCarFollowSafety target used
// to run over recorded traces; as an Invariant it also runs inside
// campaigns and unit tests without recording anything.
type TrueSlack struct {
	sim.StepOnly
	Cfg Config
}

// Name implements sim.Invariant.
func (TrueSlack) Name() string { return "true-slack" }

// CheckStep implements sim.Invariant.
func (c TrueSlack) CheckStep(s sim.StepInfo) error {
	if slack := c.Cfg.Slack(s.Ego, ExactLead(s.Other, s.OtherA)); slack < 0 {
		return &sim.ViolationError{
			Invariant: c.Name(),
			T:         s.T,
			Detail: fmt.Sprintf("true-state slack %v < 0 (ego p=%.3f v=%.3f, lead p=%.3f v=%.3f)",
				slack, s.Ego.P, s.Ego.V, s.Other.P, s.Other.V),
		}
	}
	return nil
}
