package carfollow

import (
	"math"
	"time"

	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/guard"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
)

// Stepper is the car-following twin of sim.Stepper: a resumable episode
// engine over the stop-and-go lead scenario, sharing sim's StepInput /
// StepOutcome vocabulary so streaming services drive every scenario
// through one interface.  Injected messages and readings are fused before
// the step's own traffic (the lead's index is 1).
//
// The same lifetime rules apply as for sim.Stepper: not safe for
// concurrent use, and pooled inside the arena (via the arena's opaque
// external-engine slot) when Options.Scratch is set.
type Stepper struct {
	cfg   SimConfig
	agent Agent
	opts  sim.Options

	sc Config
	gs *sim.GuardedStep

	driver   *traffic.StopAndGo
	channel  *comms.Channel
	sens     *sensor.Model
	filt     *fusion.Filter
	sensProc disturb.SensorProcess

	ego, lead dynamics.State
	leadA     float64

	msgTick, sensTick comms.Ticker
	msgBuf            []comms.Message
	lastMeas          sensor.Reading
	haveMeas          bool

	coll telemetry.Collector

	plan  func() (float64, bool)
	emerg func() float64
	env   func() (float64, float64, bool)

	t float64
	k Knowledge

	dt       float64
	maxSteps int
	step     int

	res      sim.Result
	done     bool
	finished bool
	err      error
}

// pooledStepper fetches the arena's pooled car-following engine, or a
// fresh one when the arena is nil or the slot holds nothing usable.
func pooledStepper(sh *sim.Scratch) *Stepper {
	if st, ok := sh.ExtEngine().(*Stepper); ok && st != nil {
		return st
	}
	st := &Stepper{}
	sh.SetExtEngine(st)
	return st
}

// NewStepper validates cfg and builds a resumable car-following engine
// positioned before step 0, performing exactly the per-episode setup of
// the closed RunEpisode loop (same RNG derivation order).
func NewStepper(cfg SimConfig, agent Agent, opts sim.Options) (*Stepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = DefaultHorizon
	}
	sh := opts.Scratch
	sh.Begin()
	st := pooledStepper(sh)
	st.reset(cfg, agent, opts)

	master := sh.RNG(seed)
	var err error
	st.driver, err = sh.StopAndGo(cfg.Lead, sh.RNG(master.Int63()))
	if err != nil {
		return nil, err
	}
	st.channel, err = sh.Channel(cfg.Comms, sh.RNG(master.Int63()))
	if err != nil {
		return nil, err
	}
	st.sens, err = sh.Sensor(cfg.Sensor, sh.RNG(master.Int63()))
	if err != nil {
		return nil, err
	}
	st.filt, err = sh.Fusion(fusion.Config{
		Limits:    cfg.Scenario.Lead,
		Sensor:    cfg.Sensor,
		UseKalman: cfg.InfoFilter,
		Replay:    cfg.InfoFilter,
	})
	if err != nil {
		return nil, err
	}
	initRng := sh.RNG(master.Int63())
	// Disturbance streams derive last so legacy configurations keep their
	// exact per-seed behaviour.
	if cfg.SensorDisturb != nil {
		st.sensProc = cfg.SensorDisturb.NewSensor(sh.RNG(master.Int63()))
	}
	// Planner-fault streams derive after the disturbance streams, under the
	// same compatibility rule.
	gs, err := sim.NewGuardedStep(cfg.Guard, cfg.PlannerFault, cfg.Scenario.Ego, master)
	if err != nil {
		return nil, err
	}
	st.gs = gs

	sc := cfg.Scenario
	st.sc = sc
	st.ego = sc.EgoInit
	st.lead = sc.LeadInit
	if cfg.LeadSpeedMax > 0 {
		st.lead.V = cfg.LeadSpeedMin + initRng.Float64()*(cfg.LeadSpeedMax-cfg.LeadSpeedMin)
		st.ego.V = st.lead.V
	}
	st.filt.InitExact(0, st.lead, 0)

	st.msgTick = comms.MakeTicker(cfg.DtM)
	st.msgTick.Due(0)
	st.sensTick = comms.MakeTicker(cfg.DtS)
	st.sensTick.Due(0)

	st.msgBuf = sh.MsgBuf()
	st.coll = opts.Collector

	st.dt = sc.DtC
	st.maxSteps = int(horizon/st.dt) + 1

	if st.plan == nil {
		// Built once per pooled Stepper (see sim.Stepper): the closures
		// read the receiver's fields at call time.
		st.plan = func() (float64, bool) { return st.agent.Accel(st.t, st.ego, st.k) }
		st.emerg = func() float64 { return st.sc.EmergencyAccel(st.ego) }
		// Car following has no committed regime: outside the unsafe and
		// boundary sets any admissible command is one-step safe, so the
		// envelope is the full actuation range there and κ_e-only inside
		// them.
		st.env = func() (float64, float64, bool) {
			if st.sc.InUnsafeSet(st.ego, st.k.Sound) || st.sc.InBoundarySafeSet(st.ego, st.k.Sound) {
				return 0, 0, false
			}
			return st.sc.Ego.AMin, st.sc.Ego.AMax, true
		}
	}
	return st, nil
}

// reset clears per-episode state while keeping the reusable closures.
func (st *Stepper) reset(cfg SimConfig, agent Agent, opts sim.Options) {
	plan, emerg, env := st.plan, st.emerg, st.env
	*st = Stepper{plan: plan, emerg: emerg, env: env}
	st.cfg = cfg
	st.agent = agent
	st.opts = opts
}

// Done reports whether the episode has terminated (or a step invariant
// failed); further Step calls are no-ops returning the terminal outcome.
func (st *Stepper) Done() bool { return st.done || st.err != nil }

// Err returns the step-invariant violation that aborted the episode, if
// any.
func (st *Stepper) Err() error { return st.err }

// Step advances the episode by one control step; see sim.Stepper.Step.
func (st *Stepper) Step(in sim.StepInput) (sim.StepOutcome, error) {
	if st.done || st.err != nil {
		return st.terminalOutcome(), st.err
	}
	if st.step >= st.maxSteps {
		st.done = true
		return st.terminalOutcome(), nil
	}
	step := st.step
	st.t = float64(step) * st.dt
	t := st.t
	cfg := &st.cfg
	sc := st.sc
	res := &st.res

	// 0. Externally streamed events (sessions only; empty in batch runs).
	for _, m := range in.Messages {
		st.filt.OnMessage(m)
	}
	for _, r := range in.Readings {
		st.filt.OnReading(r)
	}

	if at, ok := st.msgTick.Due(t); ok {
		st.channel.Send(comms.Message{Sender: 1, T: at, P: st.lead.P, V: st.lead.V, A: st.leadA})
	}
	st.msgBuf = st.channel.PollAppend(t, st.msgBuf[:0])
	for _, m := range st.msgBuf {
		st.filt.OnMessage(m)
	}
	if at, ok := st.sensTick.Due(t); ok {
		drop := false
		var bias float64
		if st.sensProc != nil {
			d := st.sensProc.Next(at)
			drop = d.Drop
			bias = d.Bias
		}
		if !drop {
			st.lastMeas = st.sens.MeasureBiased(1, at, st.lead, st.leadA, bias)
			st.haveMeas = true
			st.filt.OnReading(st.lastMeas)
		}
	}

	est := st.filt.EstimateAt(t)
	if !est.P.Contains(st.lead.P) || !est.V.Contains(st.lead.V) {
		res.FusedIntervalMisses++
	}
	if !est.SoundP.Contains(st.lead.P) || !est.SoundV.Contains(st.lead.V) {
		res.SoundViolations++
	}
	st.k = Knowledge{
		Sound: LeadEstimate{P: est.SoundP, V: est.SoundV,
			PointP: est.PointP, PointV: est.PointV, A: est.A},
		Fused: LeadEstimate{P: est.P, V: est.V,
			PointP: est.PointP, PointV: est.PointV, A: est.A},
	}
	var a0 float64
	var emergency bool
	var gres guard.StepResult
	var start time.Time
	if st.coll != nil {
		start = time.Now()
	}
	if st.gs != nil {
		a0, emergency, gres = st.gs.Step(t, st.plan, st.emerg, st.env)
	} else {
		a0, emergency = st.plan()
	}
	if st.coll != nil {
		st.coll.OnStep(telemetry.StepProbe{
			T:          t,
			Emergency:  emergency,
			SoundWidth: est.SoundP.Width(),
			FusedWidth: est.P.Width(),
			PlannerNs:  time.Since(start).Nanoseconds(),
		})
		if st.gs != nil {
			st.gs.Report(st.coll, t, gres)
		}
	}
	if emergency {
		res.EmergencySteps++
	}
	if len(st.opts.Invariants) > 0 {
		si := sim.StepInfo{
			T: t, Ego: st.ego, Other: st.lead, OtherA: st.leadA,
			Est: est, Accel: a0, Emergency: emergency,
		}
		if st.gs != nil {
			st.gs.Annotate(&si, gres)
		}
		if ierr := sim.CheckStepInvariants(st.opts.Invariants, si); ierr != nil {
			st.err = ierr
			return st.terminalOutcome(), ierr
		}
	}

	if st.opts.Trace {
		// Reuse the shared sample layout: the lead plays the oncoming
		// vehicle's role, and the passing-window columns are NaN (car
		// following has no crossing window).
		s := sim.Sample{
			T:    t,
			EgoP: st.ego.P, EgoV: st.ego.V, EgoA: a0,
			OncP: st.lead.P, OncV: st.lead.V, OncA: st.leadA,
			MeasP: math.NaN(), MeasV: math.NaN(),
			EstP: est.PointP, EstV: est.PointV,
			EstPLo: est.P.Lo, EstPHi: est.P.Hi,
			EstVLo: est.V.Lo, EstVHi: est.V.Hi,
			SoundPLo: est.SoundP.Lo, SoundPHi: est.SoundP.Hi,
			SoundVLo: est.SoundV.Lo, SoundVHi: est.SoundV.Hi,
			SoundLo: math.NaN(), SoundHi: math.NaN(),
			ConsLo: math.NaN(), ConsHi: math.NaN(),
			AggrLo: math.NaN(), AggrHi: math.NaN(),
			Emergency: emergency,
		}
		if st.haveMeas {
			s.MeasP, s.MeasV = st.lastMeas.P, st.lastMeas.V
		}
		res.Trace = append(res.Trace, s)
	}

	var ba float64
	if len(cfg.LeadScript) > 0 {
		ba = sim.ScriptAccel(cfg.LeadScript, step)
	} else {
		ba = st.driver.Accel(t, st.lead)
	}
	st.ego, _ = dynamics.Step(st.ego, a0, st.dt, sc.Ego)
	st.lead, st.leadA = dynamics.Step(st.lead, ba, st.dt, sc.Lead)
	res.Steps++
	st.step++

	out := sim.StepOutcome{
		T: t, Step: step,
		Accel: a0, Emergency: emergency,
		EgoP: st.ego.P, EgoV: st.ego.V,
	}

	if sc.Violation(st.ego, st.lead) {
		res.Collided = true
		res.Eta = -1
		st.done = true
		out.Done, out.Collided = true, true
		return out, nil
	}
	if sc.ReachedGoal(st.ego) {
		res.Reached = true
		res.ReachTime = t + st.dt
		res.Eta = 1 / res.ReachTime
		st.done = true
		out.Done, out.Reached = true, true
		return out, nil
	}
	if st.step >= st.maxSteps {
		st.done = true
		out.Done = true
	}
	return out, nil
}

// terminalOutcome summarizes a finished (or failed) episode for repeated
// Step calls past the end.
func (st *Stepper) terminalOutcome() sim.StepOutcome {
	return sim.StepOutcome{
		T: st.t, Step: st.step,
		EgoP: st.ego.P, EgoV: st.ego.V,
		Done: true, Collided: st.res.Collided, Reached: st.res.Reached,
	}
}

// Finish finalizes the episode; see sim.Stepper.Finish.
func (st *Stepper) Finish() (sim.Result, error) {
	if st.finished {
		return st.res, st.err
	}
	st.finished = true
	sim.ReportOutcome(st.coll, st.opts.Seed, &st.res)
	if st.gs != nil {
		st.res.Guard = st.gs.Stats()
	}
	if st.err == nil && len(st.opts.Invariants) > 0 {
		st.err = sim.CheckEpisodeInvariants(st.opts.Invariants, &st.res)
	}
	return st.res, st.err
}
