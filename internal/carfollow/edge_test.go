package carfollow

import (
	"math"
	"testing"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// These tests pin the edge semantics of the safety predicates — the
// overtake geometry (lead level with or behind the ego, which the chained
// platoon links can present to a follower after a collision upstream) and
// empty-interval estimates (a filter with no information yet).  The
// assertions document current behaviour so any change is a deliberate,
// visible decision rather than an accident.

// TestViolationBoundary: the unsafe set is the *open* gap region
// (paper §II-A: |p0 − pi| < p_gap), so a gap of exactly PGap is safe and
// anything below — including a lead level with or behind the ego, where
// the signed gap is zero or negative — violates.
func TestViolationBoundary(t *testing.T) {
	c := DefaultConfig()
	ego := dynamics.State{P: 100, V: 10}
	cases := []struct {
		name  string
		leadP float64
		want  bool
	}{
		{"wide gap", 100 + 3*c.PGap, false},
		{"exactly PGap", 100 + c.PGap, false},
		{"just inside", 100 + c.PGap - 1e-9, true},
		{"level", 100, true},
		{"lead behind ego", 90, true},
	}
	for _, tc := range cases {
		if got := c.Violation(ego, dynamics.State{P: tc.leadP, V: 10}); got != tc.want {
			t.Errorf("%s: Violation = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestOvertakeGeometry: with the lead at or behind the ego, the slack is
// necessarily negative (the criterion cannot hold without a positive
// gap), the state is in the unsafe set, and the monitor demands κ_e.
func TestOvertakeGeometry(t *testing.T) {
	c := DefaultConfig()
	ego := dynamics.State{P: 100, V: 10}
	for _, leadP := range []float64{100, 95} {
		lead := ExactLead(dynamics.State{P: leadP, V: 10}, 0)
		if !c.InUnsafeSet(ego, lead) {
			t.Errorf("lead at p=%v: not in unsafe set", leadP)
		}
		if s := c.Slack(ego, lead); s >= 0 {
			t.Errorf("lead at p=%v: nonnegative slack %v", leadP, s)
		}
		if !c.InBoundarySafeSet(ego, lead) {
			t.Errorf("lead at p=%v: boundary test does not demand κ_e", leadP)
		}
	}
	// Equal speeds and stopping profiles: slack reduces exactly to
	// gap − PGap, so the sign flips at PGap.
	lead := ExactLead(dynamics.State{P: 100 + c.PGap, V: 10}, 0)
	if s := c.Slack(ego, lead); s != 0 {
		t.Errorf("matched-profile slack at gap=PGap: got %v, want 0", s)
	}
}

// TestEmptyEstimateSemantics: an empty interval estimate means "no lead
// known"; the predicates treat that as unconstrained — not-unsafe,
// not-boundary, infinite slack.  Soundness for an *actually present*
// lead is the fusion layer's contract (sound intervals are never empty
// while a tracked vehicle exists), enforced by sim.SoundEstimate.
func TestEmptyEstimateSemantics(t *testing.T) {
	c := DefaultConfig()
	ego := dynamics.State{P: 100, V: 10}
	empty := LeadEstimate{P: interval.Empty(), V: interval.Empty()}
	if c.InUnsafeSet(ego, empty) {
		t.Error("empty estimate classified unsafe")
	}
	if c.InBoundarySafeSet(ego, empty) {
		t.Error("empty estimate classified boundary-unsafe")
	}
	if s := c.Slack(ego, empty); !math.IsInf(s, 1) {
		t.Errorf("empty estimate slack = %v, want +Inf", s)
	}
	// Half-empty estimates (position known, velocity not): Slack is the
	// guarded predicate and still reports unconstrained.
	halfEmpty := LeadEstimate{P: interval.Point(130), V: interval.Empty()}
	if s := c.Slack(ego, halfEmpty); !math.IsInf(s, 1) {
		t.Errorf("empty-velocity slack = %v, want +Inf", s)
	}
	// InUnsafeSet guards only on position: a known-close position with
	// unknown velocity still reads unsafe.
	close := LeadEstimate{P: interval.Point(ego.P + c.PGap/2), V: interval.Empty()}
	if !c.InUnsafeSet(ego, close) {
		t.Error("close lead with unknown velocity not classified unsafe")
	}
}

// TestSlackStoppedVehicles: both vehicles stopped reduces the criterion
// to the bare gap test — positive slack iff the gap exceeds PGap.
func TestSlackStoppedVehicles(t *testing.T) {
	c := DefaultConfig()
	ego := dynamics.State{P: 100, V: 0}
	if s := c.Slack(ego, ExactLead(dynamics.State{P: 100 + c.PGap + 1, V: 0}, 0)); s != 1 {
		t.Errorf("stopped slack = %v, want 1", s)
	}
	if s := c.Slack(ego, ExactLead(dynamics.State{P: 100 + c.PGap - 1, V: 0}, 0)); s != -1 {
		t.Errorf("stopped slack = %v, want -1", s)
	}
	// κ_e from rest holds position rather than commanding reverse thrust.
	if a := c.EmergencyAccel(ego); a != 0 {
		t.Errorf("κ_e from rest = %v, want 0", a)
	}
	if a := c.EmergencyAccel(dynamics.State{P: 0, V: 5}); a != c.Ego.AMin {
		t.Errorf("κ_e while moving = %v, want %v", a, c.Ego.AMin)
	}
}
