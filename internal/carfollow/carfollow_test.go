package carfollow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

func cfCfg() Config { return DefaultConfig() }

func TestDefaultConfigValid(t *testing.T) {
	if err := cfCfg().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	muts := map[string]func(*Config){
		"gap":      func(c *Config) { c.PGap = 0 },
		"initgap":  func(c *Config) { c.LeadInit.P = c.EgoInit.P + 1 },
		"goal":     func(c *Config) { c.Goal = -10 },
		"dtc":      func(c *Config) { c.DtC = 0 },
		"abuf":     func(c *Config) { c.ABuf = -1 },
		"minbrake": func(c *Config) { c.MinAssumedBrake = 0.5 },
		"margin":   func(c *Config) { c.SafetyMargin = -1 },
		"ego":      func(c *Config) { c.Ego.AMax = 0 },
		"lead":     func(c *Config) { c.Lead.VMin = 5; c.Lead.VMax = 1 },
	}
	for name, mut := range muts {
		c := cfCfg()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestUnsafeSet(t *testing.T) {
	c := cfCfg()
	ego := dynamics.State{P: 0, V: 10}
	if !c.InUnsafeSet(ego, ExactLead(dynamics.State{P: 1.5, V: 10}, 0)) {
		t.Error("gap below PGap should be unsafe")
	}
	if c.InUnsafeSet(ego, ExactLead(dynamics.State{P: 2.5, V: 10}, 0)) {
		t.Error("gap above PGap should be safe")
	}
	if c.InUnsafeSet(ego, LeadEstimate{P: interval.Empty()}) {
		t.Error("no lead should never be unsafe")
	}
}

func TestSlackSemantics(t *testing.T) {
	c := cfCfg()
	// Equal speeds: slack = gap − PGap (stopping distances cancel).
	ego := dynamics.State{P: 0, V: 10}
	lead := ExactLead(dynamics.State{P: 30, V: 10}, 0)
	want := 30.0 - c.PGap
	if got := c.Slack(ego, lead); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Slack = %v, want %v", got, want)
	}
	// Faster ego reduces slack by the stopping-distance difference.
	ego.V = 14
	if got := c.Slack(ego, lead); got >= want {
		t.Fatalf("faster ego should have less slack: %v", got)
	}
	// No lead: unconstrained.
	if got := c.Slack(ego, LeadEstimate{P: interval.Empty(), V: interval.Empty()}); !math.IsInf(got, 1) {
		t.Fatalf("no-lead slack = %v", got)
	}
}

func TestBoundarySafeSet(t *testing.T) {
	c := cfCfg()
	lead := ExactLead(dynamics.State{P: 30, V: 10}, 0)
	// Comfortable state: not in the band.
	if c.InBoundarySafeSet(dynamics.State{P: 0, V: 10}, lead) {
		t.Error("comfortable gap flagged")
	}
	// Slack ≈ 0: the band must fire.
	closeEgo := dynamics.State{P: 30 - c.PGap - 0.1, V: 10} // gap = PGap + 0.1
	if !c.InBoundarySafeSet(closeEgo, lead) {
		t.Errorf("critical gap not flagged (slack %v)", c.Slack(closeEgo, lead))
	}
}

func TestEmergencyAccel(t *testing.T) {
	c := cfCfg()
	if got := c.EmergencyAccel(dynamics.State{V: 10}); got != c.Ego.AMin {
		t.Fatalf("κ_e at speed = %v", got)
	}
	if got := c.EmergencyAccel(dynamics.State{V: 0}); got != 0 {
		t.Fatalf("κ_e stopped = %v", got)
	}
}

func TestAggressiveAssumedBrake(t *testing.T) {
	c := cfCfg()
	// Cruising lead (a = 0): assume −ABuf... floored by MinAssumedBrake.
	if got := c.AggressiveAssumedBrake(0); got != c.MinAssumedBrake {
		t.Fatalf("assumed brake for cruising lead = %v", got)
	}
	// Hard-braking lead: assume slightly harder, clamped at physical a_min.
	if got := c.AggressiveAssumedBrake(-5.5); got != c.Lead.AMin {
		t.Fatalf("assumed brake for braking lead = %v", got)
	}
	if got := c.AggressiveAssumedBrake(-3); got != -4.5 {
		t.Fatalf("assumed brake = %v, want -4.5", got)
	}
}

func TestRequiredGapMonotonic(t *testing.T) {
	c := cfCfg()
	// Assuming the lead *can* brake hard (the physical a_min) demands a
	// larger gap than the aggressive soft-braking assumption.
	soft := c.RequiredGap(12, 10, -2)
	hard := c.RequiredGap(12, 10, c.Lead.AMin)
	if soft >= hard {
		t.Fatalf("soft assumption %v should demand less gap than hard %v", soft, hard)
	}
	// Never negative.
	if got := c.RequiredGap(2, 15, c.Lead.AMin); got != 0 {
		t.Fatalf("required gap = %v, want 0", got)
	}
}

func TestFeaturesShape(t *testing.T) {
	c := cfCfg()
	f := c.Features(dynamics.State{P: 0, V: 10}, ExactLead(dynamics.State{P: 20, V: 8}, -1), -3)
	if len(f) != 5 {
		t.Fatalf("features len = %d", len(f))
	}
	if math.Abs(f[0]-(20-c.PGap)) > 1e-12 || f[1] != 10 || f[2] != 8 || f[3] != -1 {
		t.Fatalf("features = %v", f)
	}
}

func TestExpertBehaviours(t *testing.T) {
	c := cfCfg()
	cons := ConservativeExpert(c)
	aggr := AggressiveExpert(c)
	ego := dynamics.State{P: 0, V: 10}
	lead := ExactLead(dynamics.State{P: 20, V: 10}, 0)
	ac := cons.Accel(0, ego, lead, c.Lead.AMin)
	aa := aggr.Accel(0, ego, lead, c.Lead.AMin)
	// At 18 m of spare gap the conservative expert (needs ~22 m headway at
	// 10 m/s) brakes or coasts; the aggressive one closes in.
	if ac >= aa {
		t.Fatalf("conservative accel %v should be below aggressive %v", ac, aa)
	}
	// Free road: both accelerate.
	free := LeadEstimate{P: interval.Empty(), V: interval.Empty()}
	if cons.Accel(0, ego, free, c.Lead.AMin) <= 0 {
		t.Fatal("free-road expert should accelerate")
	}
	// At the speed limit, no positive command.
	fast := dynamics.State{P: 0, V: c.Ego.VMax}
	if aggr.Accel(0, fast, ExactLead(dynamics.State{P: 100, V: 20}, 0), c.Lead.AMin) > 0 {
		t.Fatal("expert exceeded the speed limit")
	}
}

// Eq. 4 for car following: from any state outside the boundary band
// (slack after a worst-case step ≥ margin), engaging κ_e on the *next*
// step keeps the true gap ≥ PGap forever, for every admissible lead
// behaviour.
func TestQuickEmergencyInvariant(t *testing.T) {
	c := cfCfg()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ego := dynamics.State{P: 0, V: rng.Float64() * c.Ego.VMax}
		lead := dynamics.State{
			P: c.PGap + 0.1 + rng.Float64()*60,
			V: rng.Float64() * c.Lead.VMax,
		}
		est := ExactLead(lead, 0)
		if c.InBoundarySafeSet(ego, est) || c.InUnsafeSet(ego, est) {
			return true // the monitor would not leave κ_n in control here
		}
		// One adversarial κ_n step (the monitor certified it as safe)…
		a := c.Ego.AMin + rng.Float64()*(c.Ego.AMax-c.Ego.AMin)
		ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
		var leadA float64
		lead, leadA = dynamics.Step(lead, c.Lead.AMin, c.DtC, c.Lead)
		_ = leadA
		// …then κ_e forever against a worst-case lead.
		for i := 0; i < 2000; i++ {
			if lead.P-ego.P < c.PGap {
				return false
			}
			ego, _ = dynamics.Step(ego, c.EmergencyAccel(ego), c.DtC, c.Ego)
			lead, _ = dynamics.Step(lead, c.Lead.AMin, c.DtC, c.Lead)
			if ego.V == 0 && lead.V == 0 {
				break
			}
		}
		return lead.P-ego.P >= c.PGap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// The full compound policy with a reckless κ_n never violates the gap
// against an adversarial lead, with exact knowledge.
func TestQuickCompoundSafetyRecklessNN(t *testing.T) {
	c := cfCfg()
	full := funcPlanner{name: "floor", f: func(Config) float64 { return c.Ego.AMax }}
	agent := NewUltimate(c, full)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ego := c.EgoInit
		lead := dynamics.State{P: 30 + rng.Float64()*20, V: rng.Float64() * c.Lead.VMax}
		ego.V = lead.V
		var leadA float64
		for i := 0; i < 2000; i++ {
			k := Knowledge{Sound: ExactLead(lead, leadA), Fused: ExactLead(lead, leadA)}
			a, _ := agent.Accel(float64(i)*c.DtC, ego, k)
			ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
			// Adversarial lead: biased random walk with hard brakes.
			var ba float64
			if rng.Float64() < 0.05 {
				ba = c.Lead.AMin
			} else {
				ba = -2 + rng.Float64()*4
			}
			lead, leadA = dynamics.Step(lead, ba, c.DtC, c.Lead)
			if c.Violation(ego, lead) {
				return false
			}
			if c.ReachedGoal(ego) {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// funcPlanner adapts a constant policy for tests.
type funcPlanner struct {
	name string
	f    func(Config) float64
}

func (p funcPlanner) Name() string { return p.name }
func (p funcPlanner) Accel(_ float64, _ dynamics.State, _ LeadEstimate, _ float64) float64 {
	return p.f(Config{})
}

func TestTrainNNPlannerImitates(t *testing.T) {
	c := cfCfg()
	nnp, loss, err := TrainNNPlanner(c, ConservativeExpert(c), "cf-nn", TrainOptions{
		Samples: 6000, Epochs: 25, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.3 {
		t.Fatalf("imitation loss %v too high", loss)
	}
	// Spot agreement on random states.
	rng := rand.New(rand.NewSource(2))
	expert := ConservativeExpert(c)
	var sq float64
	const n = 400
	for i := 0; i < n; i++ {
		ego := dynamics.State{P: 0, V: rng.Float64() * c.Ego.VMax}
		lead := ExactLead(dynamics.State{P: c.PGap + rng.Float64()*60, V: rng.Float64() * c.Lead.VMax},
			c.Lead.AMin+rng.Float64()*(c.Lead.AMax-c.Lead.AMin))
		d := nnp.Accel(0, ego, lead, c.Lead.AMin) - expert.Accel(0, ego, lead, c.Lead.AMin)
		sq += d * d
	}
	if rmse := math.Sqrt(sq / n); rmse > 0.8 {
		t.Fatalf("behavioural RMSE %v too high", rmse)
	}
}
