package carfollow

import (
	"reflect"
	"testing"
	"testing/quick"

	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/eval"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

func simCfg() SimConfig { return DefaultSimConfig() }

func TestSimValidate(t *testing.T) {
	muts := map[string]func(*SimConfig){
		"dtm":      func(c *SimConfig) { c.DtM = 0 },
		"dts":      func(c *SimConfig) { c.DtS = -1 },
		"horizon":  func(c *SimConfig) { c.Horizon = -1 },
		"speeds":   func(c *SimConfig) { c.LeadSpeedMin = 10; c.LeadSpeedMax = 5 },
		"comms":    func(c *SimConfig) { c.Comms.DropProb = 2 },
		"sensor":   func(c *SimConfig) { c.Sensor.DeltaP = -1 },
		"lead":     func(c *SimConfig) { c.Lead.BrakeAccel = 1 },
		"scenario": func(c *SimConfig) { c.Scenario.PGap = 0 },
	}
	for name, mut := range muts {
		c := simCfg()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestRunConservativeSafe(t *testing.T) {
	cfg := simCfg()
	r, err := RunEpisode(cfg, &Pure{Cfg: cfg.Scenario, Planner: ConservativeExpert(cfg.Scenario)}, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Collided {
		t.Fatal("conservative follower violated the gap")
	}
	if !r.Reached {
		t.Fatalf("episode timed out: %+v", r)
	}
	if r.FusedIntervalMisses != 0 {
		t.Fatalf("fused estimate missed the lead %d times", r.FusedIntervalMisses)
	}
	if r.SoundViolations != 0 {
		t.Fatalf("sound estimate missed the lead %d times", r.SoundViolations)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := simCfg()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	agent := NewUltimate(cfg.Scenario, AggressiveExpert(cfg.Scenario))
	cfg.InfoFilter = true
	a, err := RunEpisode(cfg, agent, sim.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEpisode(cfg, agent, sim.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.ReachTime != b.ReachTime || a.Steps != b.Steps {
		t.Fatal("car-following sim not deterministic")
	}
}

func TestPureAggressiveUnsafeUnderDisturbance(t *testing.T) {
	cfg := simCfg()
	cfg.Comms = comms.Lost()
	cfg.Sensor = sensor.Uniform(2)
	agent := &Pure{Cfg: cfg.Scenario, Planner: AggressiveExpert(cfg.Scenario)}
	violations := 0
	for seed := int64(0); seed < 40; seed++ {
		r, err := RunEpisode(cfg, agent, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Collided {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("pure aggressive follower never violated the gap — workload too benign")
	}
}

func TestCompoundAlwaysSafeAcrossSettings(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*SimConfig)
	}{
		{"none", func(*SimConfig) {}},
		{"delayed", func(c *SimConfig) { c.Comms = comms.Delayed(0.25, 0.5) }},
		{"lost", func(c *SimConfig) { c.Comms = comms.Lost(); c.Sensor = sensor.Uniform(2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := simCfg()
			tc.mut(&cfg)
			cfg.InfoFilter = true
			agent := NewUltimate(cfg.Scenario, AggressiveExpert(cfg.Scenario))
			for seed := int64(0); seed < 30; seed++ {
				r, err := RunEpisode(cfg, agent, sim.Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if r.Collided {
					t.Fatalf("seed %d: gap violation", seed)
				}
			}
		})
	}
}

func TestUltimateFasterThanBasic(t *testing.T) {
	// The aggressive braking assumption lets κ_n follow closer, which
	// translates into earlier goal arrival (the ego rides nearer the lead).
	cfg := simCfg()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	const n = 60
	basicRs, err := RunCampaign(cfg, NewBasic(cfg.Scenario, AggressiveExpert(cfg.Scenario)), n, sim.CampaignOptions{BaseSeed: 100})
	if err != nil {
		t.Fatal(err)
	}
	ultCfg := cfg
	ultCfg.InfoFilter = true
	ultRs, err := RunCampaign(ultCfg, NewUltimate(ultCfg.Scenario, AggressiveExpert(ultCfg.Scenario)), n, sim.CampaignOptions{BaseSeed: 100})
	if err != nil {
		t.Fatal(err)
	}
	bs, us := eval.Aggregate(basicRs), eval.Aggregate(ultRs)
	if bs.SafeRate() != 1 || us.SafeRate() != 1 {
		t.Fatalf("compound designs unsafe: basic=%v ultimate=%v", bs.SafeRate(), us.SafeRate())
	}
	if us.MeanReachTimeSafe >= bs.MeanReachTimeSafe {
		t.Fatalf("ultimate %v not faster than basic %v", us.MeanReachTimeSafe, bs.MeanReachTimeSafe)
	}
}

func TestRunCampaignPairsSeeds(t *testing.T) {
	cfg := simCfg()
	agent := &Pure{Cfg: cfg.Scenario, Planner: ConservativeExpert(cfg.Scenario)}
	rs, err := RunCampaign(cfg, agent, 5, sim.CampaignOptions{BaseSeed: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		single, err := RunEpisode(cfg, agent, sim.Options{Seed: 30 + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if r.ReachTime != single.ReachTime {
			t.Fatalf("episode %d differs from direct run", i)
		}
	}
	if _, err := RunCampaign(cfg, agent, 0, sim.CampaignOptions{}); err == nil {
		t.Fatal("zero episodes accepted")
	}
}

// End-to-end property: the car-following compound planner is safe across
// random disturbance settings.
func TestQuickCarFollowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed int64) bool {
		u := seed
		if u < 0 {
			u = -u
		}
		cfg := simCfg()
		switch u % 3 {
		case 1:
			cfg.Comms = comms.Delayed(0.25, float64(u%20)*0.05)
		case 2:
			cfg.Comms = comms.Lost()
			cfg.Sensor = sensor.Uniform(1 + float64(u%10)*0.3)
		}
		cfg.InfoFilter = u%2 == 0
		agent := NewUltimate(cfg.Scenario, AggressiveExpert(cfg.Scenario))
		r, err := RunEpisode(cfg, agent, sim.Options{Seed: seed})
		if err != nil {
			return false
		}
		return !r.Collided
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCampaignDeterministic pins campaign determinism under an
// adversarial disturbance: identical invocations must yield identical
// results.
func TestRunCampaignDeterministic(t *testing.T) {
	cfg := simCfg()
	m, err := disturb.Preset("worst")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Comms = comms.Disturbed(m)
	cfg.SensorDisturb = disturb.BiasDrift{Max: 1, Period: 12}
	cfg.InfoFilter = true
	agent := NewUltimate(cfg.Scenario, AggressiveExpert(cfg.Scenario))
	a, err := RunCampaign(cfg, agent, 24, sim.CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg, agent, 24, sim.CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("car-following campaign not deterministic")
	}
}

// TestCampaignDeterministicAcrossWorkers: the worker count must not leak
// into any episode's random streams.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := simCfg()
	m, err := disturb.Preset("worst")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Comms = comms.Disturbed(m)
	cfg.SensorDisturb = disturb.SensorDropout{PGoodBad: 0.04, PBadGood: 0.15, DropBad: 0.95}
	run := func(workers int) []sim.Result {
		agent := NewBasic(cfg.Scenario, ConservativeExpert(cfg.Scenario))
		rs, err := RunCampaign(cfg, agent, 24, sim.CampaignOptions{BaseSeed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatal("car-following campaign differs between 1 and 8 workers")
	}
}
