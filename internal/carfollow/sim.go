package carfollow

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/faultinject"
	"safeplan/internal/fusion"
	"safeplan/internal/guard"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
)

// SimConfig assembles a car-following campaign: the scenario constants,
// the communication/sensing stack (identical to the left-turn study), and
// the stop-and-go lead workload.
type SimConfig struct {
	Scenario Config
	Comms    comms.Config
	Sensor   sensor.Config
	Lead     traffic.StopAndGoConfig

	DtM float64 // message transmission period [s]
	DtS float64 // sensing period [s]

	// InfoFilter enables the Kalman component with replay.
	InfoFilter bool

	Horizon float64 // episode cutoff [s]; 0 selects DefaultHorizon

	// LeadSpeedMin/Max sample the initial lead speed; the ego starts at
	// the same speed so episodes begin in equilibrium.
	LeadSpeedMin, LeadSpeedMax float64

	// SensorDisturb, when non-nil, injects adversarial sensing faults
	// (bias drift, bursty dropout — see internal/disturb).  Readings stay
	// inside the sound ±δ envelope.
	SensorDisturb disturb.SensorModel

	// LeadScript, when non-empty, replaces the stochastic stop-and-go
	// lead with a scripted per-control-step acceleration sequence (the
	// last value holds beyond its end).  Used by fuzzing to search lead
	// behaviours directly.
	LeadScript []float64

	// Guard, when non-nil, wraps every planner invocation in the
	// compute-fault containment layer (internal/guard).  Zero Limits are
	// filled from Scenario.Ego.
	Guard *guard.Config

	// PlannerFault, when non-nil, injects compute faults into the planner
	// (internal/faultinject).  A default guard is installed automatically
	// when none is configured, and the injector's random streams derive
	// from the master seed after every legacy stream (same compatibility
	// rule as the left-turn runner).
	PlannerFault faultinject.Model
}

// DefaultHorizon bounds a car-following episode (the ~400 m course takes
// ~40 s at typical speeds).
const DefaultHorizon = 90

// DefaultSimConfig returns the car-following evaluation defaults.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Scenario:     DefaultConfig(),
		Comms:        comms.NoDisturbance(),
		Sensor:       sensor.Uniform(1),
		Lead:         traffic.DefaultStopAndGoConfig(),
		DtM:          0.1,
		DtS:          0.1,
		Horizon:      DefaultHorizon,
		LeadSpeedMin: 6,
		LeadSpeedMax: 14,
	}
}

// Validate checks the configuration.
func (c SimConfig) Validate() error {
	if err := c.Scenario.Validate(); err != nil {
		return err
	}
	if err := c.Comms.Validate(); err != nil {
		return err
	}
	if err := c.Sensor.Validate(); err != nil {
		return err
	}
	if err := c.Lead.Validate(); err != nil {
		return err
	}
	// NaN compares false with every ordering operator, so the range checks
	// below would silently accept NaN fields; reject non-finite values
	// explicitly first.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DtM", c.DtM}, {"DtS", c.DtS}, {"Horizon", c.Horizon},
		{"LeadSpeedMin", c.LeadSpeedMin}, {"LeadSpeedMax", c.LeadSpeedMax},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("carfollow: %s is %v (must be finite)", f.name, f.v)
		}
	}
	if c.DtM <= 0 || c.DtS <= 0 {
		return fmt.Errorf("carfollow: non-positive periods")
	}
	if c.Horizon < 0 {
		return fmt.Errorf("carfollow: negative horizon")
	}
	if c.LeadSpeedMin > c.LeadSpeedMax || c.LeadSpeedMin < 0 {
		return fmt.Errorf("carfollow: bad lead speed range")
	}
	if c.SensorDisturb != nil {
		if err := c.SensorDisturb.Validate(); err != nil {
			return fmt.Errorf("carfollow: %w", err)
		}
	}
	for i, a := range c.LeadScript {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("carfollow: lead script entry %d is %v", i, a)
		}
	}
	if c.Guard != nil {
		g := *c.Guard
		if g.Limits == (dynamics.Limits{}) {
			g.Limits = c.Scenario.Ego // the runner applies the same fill
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("carfollow: %w", err)
		}
	}
	if c.PlannerFault != nil {
		if err := c.PlannerFault.Validate(); err != nil {
			return fmt.Errorf("carfollow: %w", err)
		}
	}
	return nil
}

// Run simulates one car-following episode.  The returned sim.Result reuses
// the left-turn study's scoring: η = −1 on a gap violation, 1/t on
// reaching the goal, 0 on timeout.
func Run(cfg SimConfig, agent Agent, seed int64) (sim.Result, error) {
	return RunEpisode(cfg, agent, sim.Options{Seed: seed})
}

// RunEpisode simulates one car-following episode under the shared episode
// options (trace recording, telemetry collector).
func RunEpisode(cfg SimConfig, agent Agent, opts sim.Options) (res sim.Result, err error) {
	if err := cfg.Validate(); err != nil {
		return sim.Result{}, err
	}
	if len(opts.Invariants) > 0 {
		defer func() {
			if err == nil {
				err = sim.CheckEpisodeInvariants(opts.Invariants, &res)
			}
		}()
	}
	seed := opts.Seed
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = DefaultHorizon
	}
	sh := opts.Scratch
	sh.Begin()
	master := sh.RNG(seed)
	driver, err := sh.StopAndGo(cfg.Lead, sh.RNG(master.Int63()))
	if err != nil {
		return sim.Result{}, err
	}
	channel, err := sh.Channel(cfg.Comms, sh.RNG(master.Int63()))
	if err != nil {
		return sim.Result{}, err
	}
	sens, err := sh.Sensor(cfg.Sensor, sh.RNG(master.Int63()))
	if err != nil {
		return sim.Result{}, err
	}
	filt, err := sh.Fusion(fusion.Config{
		Limits:    cfg.Scenario.Lead,
		Sensor:    cfg.Sensor,
		UseKalman: cfg.InfoFilter,
		Replay:    cfg.InfoFilter,
	})
	if err != nil {
		return sim.Result{}, err
	}
	initRng := sh.RNG(master.Int63())
	// Disturbance streams derive last so legacy configurations keep their
	// exact per-seed behaviour.
	var sensProc disturb.SensorProcess
	if cfg.SensorDisturb != nil {
		sensProc = cfg.SensorDisturb.NewSensor(sh.RNG(master.Int63()))
	}
	// Planner-fault streams derive after the disturbance streams, under the
	// same compatibility rule.
	gs, err := sim.NewGuardedStep(cfg.Guard, cfg.PlannerFault, cfg.Scenario.Ego, master)
	if err != nil {
		return sim.Result{}, err
	}
	if gs != nil {
		defer func() { res.Guard = gs.Stats() }()
	}

	sc := cfg.Scenario
	ego := sc.EgoInit
	lead := sc.LeadInit
	if cfg.LeadSpeedMax > 0 {
		lead.V = cfg.LeadSpeedMin + initRng.Float64()*(cfg.LeadSpeedMax-cfg.LeadSpeedMin)
		ego.V = lead.V
	}
	filt.InitExact(0, lead, 0)

	msgTick := comms.MakeTicker(cfg.DtM)
	msgTick.Due(0)
	sensTick := comms.MakeTicker(cfg.DtS)
	sensTick.Due(0)

	var leadA float64
	var lastMeas sensor.Reading
	var haveMeas bool
	msgBuf := sh.MsgBuf()
	coll := opts.Collector
	defer sim.ReportOutcome(coll, seed, &res)

	// Per-episode closures (see sim.Run): built once, reading the loop
	// variables through shared captures.
	var t float64
	var k Knowledge
	plan := func() (float64, bool) { return agent.Accel(t, ego, k) }
	emerg := func() float64 { return sc.EmergencyAccel(ego) }
	// Car following has no committed regime: outside the unsafe and
	// boundary sets any admissible command is one-step safe, so the
	// envelope is the full actuation range there and κ_e-only inside them.
	env := func() (float64, float64, bool) {
		if sc.InUnsafeSet(ego, k.Sound) || sc.InBoundarySafeSet(ego, k.Sound) {
			return 0, 0, false
		}
		return sc.Ego.AMin, sc.Ego.AMax, true
	}

	dt := sc.DtC
	maxSteps := int(horizon/dt) + 1
	for step := 0; step < maxSteps; step++ {
		t = float64(step) * dt

		if at, ok := msgTick.Due(t); ok {
			channel.Send(comms.Message{Sender: 1, T: at, P: lead.P, V: lead.V, A: leadA})
		}
		msgBuf = channel.PollAppend(t, msgBuf[:0])
		for _, m := range msgBuf {
			filt.OnMessage(m)
		}
		if at, ok := sensTick.Due(t); ok {
			drop := false
			var bias float64
			if sensProc != nil {
				d := sensProc.Next(at)
				drop = d.Drop
				bias = d.Bias
			}
			if !drop {
				lastMeas = sens.MeasureBiased(1, at, lead, leadA, bias)
				haveMeas = true
				filt.OnReading(lastMeas)
			}
		}

		est := filt.EstimateAt(t)
		if !est.P.Contains(lead.P) || !est.V.Contains(lead.V) {
			res.FusedIntervalMisses++
		}
		if !est.SoundP.Contains(lead.P) || !est.SoundV.Contains(lead.V) {
			res.SoundViolations++
		}
		k = Knowledge{
			Sound: LeadEstimate{P: est.SoundP, V: est.SoundV,
				PointP: est.PointP, PointV: est.PointV, A: est.A},
			Fused: LeadEstimate{P: est.P, V: est.V,
				PointP: est.PointP, PointV: est.PointV, A: est.A},
		}
		var a0 float64
		var emergency bool
		var gres guard.StepResult
		var start time.Time
		if coll != nil {
			start = time.Now()
		}
		if gs != nil {
			a0, emergency, gres = gs.Step(t, plan, emerg, env)
		} else {
			a0, emergency = plan()
		}
		if coll != nil {
			coll.OnStep(telemetry.StepProbe{
				T:          t,
				Emergency:  emergency,
				SoundWidth: est.SoundP.Width(),
				FusedWidth: est.P.Width(),
				PlannerNs:  time.Since(start).Nanoseconds(),
			})
			if gs != nil {
				gs.Report(coll, t, gres)
			}
		}
		if emergency {
			res.EmergencySteps++
		}
		if len(opts.Invariants) > 0 {
			si := sim.StepInfo{
				T: t, Ego: ego, Other: lead, OtherA: leadA,
				Est: est, Accel: a0, Emergency: emergency,
			}
			if gs != nil {
				gs.Annotate(&si, gres)
			}
			if ierr := sim.CheckStepInvariants(opts.Invariants, si); ierr != nil {
				return res, ierr
			}
		}

		if opts.Trace {
			// Reuse the shared sample layout: the lead plays the oncoming
			// vehicle's role, and the passing-window columns are NaN (car
			// following has no crossing window).
			s := sim.Sample{
				T:    t,
				EgoP: ego.P, EgoV: ego.V, EgoA: a0,
				OncP: lead.P, OncV: lead.V, OncA: leadA,
				MeasP: math.NaN(), MeasV: math.NaN(),
				EstP: est.PointP, EstV: est.PointV,
				EstPLo: est.P.Lo, EstPHi: est.P.Hi,
				EstVLo: est.V.Lo, EstVHi: est.V.Hi,
				SoundPLo: est.SoundP.Lo, SoundPHi: est.SoundP.Hi,
				SoundVLo: est.SoundV.Lo, SoundVHi: est.SoundV.Hi,
				SoundLo: math.NaN(), SoundHi: math.NaN(),
				ConsLo: math.NaN(), ConsHi: math.NaN(),
				AggrLo: math.NaN(), AggrHi: math.NaN(),
				Emergency: emergency,
			}
			if haveMeas {
				s.MeasP, s.MeasV = lastMeas.P, lastMeas.V
			}
			res.Trace = append(res.Trace, s)
		}

		var ba float64
		if len(cfg.LeadScript) > 0 {
			ba = sim.ScriptAccel(cfg.LeadScript, step)
		} else {
			ba = driver.Accel(t, lead)
		}
		ego, _ = dynamics.Step(ego, a0, dt, sc.Ego)
		lead, leadA = dynamics.Step(lead, ba, dt, sc.Lead)
		res.Steps++

		if sc.Violation(ego, lead) {
			res.Collided = true
			res.Eta = -1
			return res, nil
		}
		if sc.ReachedGoal(ego) {
			res.Reached = true
			res.ReachTime = t + dt
			res.Eta = 1 / res.ReachTime
			return res, nil
		}
	}
	return res, nil
}

// RunCampaign simulates n seed-paired car-following episodes with the
// shared campaign options (worker bound, telemetry collector).
func RunCampaign(cfg SimConfig, agent Agent, n int, o sim.CampaignOptions) ([]sim.Result, error) {
	if o.Workers < 0 {
		return nil, fmt.Errorf("carfollow: worker count %d must be >= 1 (0 selects GOMAXPROCS)", o.Workers)
	}
	if n <= 0 {
		return nil, fmt.Errorf("carfollow: non-positive episode count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]sim.Result, n)
	errs := make([]error, n)
	var done atomic.Int64
	scratches := sim.NewWorkerScratches(o.Workers, n)
	sim.ParallelForWorkersScoped(o.Workers, n, func(w, i int) {
		results[i], errs[i] = RunEpisode(cfg, agent, sim.Options{Seed: o.BaseSeed + int64(i), Collector: o.Collector, Scratch: scratches[w]})
		if o.Collector != nil {
			o.Collector.OnProgress(done.Add(1), int64(n))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("carfollow: episode %d: %w", i, err)
		}
	}
	return results, nil
}

// RunMany simulates n seed-paired episodes in parallel with no telemetry.
//
// Deprecated: use RunCampaign.
func RunMany(cfg SimConfig, agent Agent, n int, baseSeed int64) ([]sim.Result, error) {
	return RunCampaign(cfg, agent, n, sim.CampaignOptions{BaseSeed: baseSeed})
}
