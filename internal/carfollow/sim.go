package carfollow

import (
	"fmt"
	"math"
	"sync/atomic"

	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
	"safeplan/internal/traffic"
)

// SimConfig assembles a car-following campaign: the scenario constants,
// the communication/sensing stack (identical to the left-turn study), and
// the stop-and-go lead workload.
type SimConfig struct {
	Scenario Config
	Comms    comms.Config
	Sensor   sensor.Config
	Lead     traffic.StopAndGoConfig

	DtM float64 // message transmission period [s]
	DtS float64 // sensing period [s]

	// InfoFilter enables the Kalman component with replay.
	InfoFilter bool

	Horizon float64 // episode cutoff [s]; 0 selects DefaultHorizon

	// LeadSpeedMin/Max sample the initial lead speed; the ego starts at
	// the same speed so episodes begin in equilibrium.
	LeadSpeedMin, LeadSpeedMax float64

	// SensorDisturb, when non-nil, injects adversarial sensing faults
	// (bias drift, bursty dropout — see internal/disturb).  Readings stay
	// inside the sound ±δ envelope.
	SensorDisturb disturb.SensorModel

	// LeadScript, when non-empty, replaces the stochastic stop-and-go
	// lead with a scripted per-control-step acceleration sequence (the
	// last value holds beyond its end).  Used by fuzzing to search lead
	// behaviours directly.
	LeadScript []float64

	// Guard, when non-nil, wraps every planner invocation in the
	// compute-fault containment layer (internal/guard).  Zero Limits are
	// filled from Scenario.Ego.
	Guard *guard.Config

	// PlannerFault, when non-nil, injects compute faults into the planner
	// (internal/faultinject).  A default guard is installed automatically
	// when none is configured, and the injector's random streams derive
	// from the master seed after every legacy stream (same compatibility
	// rule as the left-turn runner).
	PlannerFault faultinject.Model
}

// DefaultHorizon bounds a car-following episode (the ~400 m course takes
// ~40 s at typical speeds).
const DefaultHorizon = 90

// DefaultSimConfig returns the car-following evaluation defaults.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Scenario:     DefaultConfig(),
		Comms:        comms.NoDisturbance(),
		Sensor:       sensor.Uniform(1),
		Lead:         traffic.DefaultStopAndGoConfig(),
		DtM:          0.1,
		DtS:          0.1,
		Horizon:      DefaultHorizon,
		LeadSpeedMin: 6,
		LeadSpeedMax: 14,
	}
}

// Validate checks the configuration.
func (c SimConfig) Validate() error {
	if err := c.Scenario.Validate(); err != nil {
		return err
	}
	if err := c.Comms.Validate(); err != nil {
		return err
	}
	if err := c.Sensor.Validate(); err != nil {
		return err
	}
	if err := c.Lead.Validate(); err != nil {
		return err
	}
	// NaN compares false with every ordering operator, so the range checks
	// below would silently accept NaN fields; reject non-finite values
	// explicitly first.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DtM", c.DtM}, {"DtS", c.DtS}, {"Horizon", c.Horizon},
		{"LeadSpeedMin", c.LeadSpeedMin}, {"LeadSpeedMax", c.LeadSpeedMax},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("carfollow: %s is %v (must be finite)", f.name, f.v)
		}
	}
	if c.DtM <= 0 || c.DtS <= 0 {
		return fmt.Errorf("carfollow: non-positive periods")
	}
	if c.Horizon < 0 {
		return fmt.Errorf("carfollow: negative horizon")
	}
	if c.LeadSpeedMin > c.LeadSpeedMax || c.LeadSpeedMin < 0 {
		return fmt.Errorf("carfollow: bad lead speed range")
	}
	if c.SensorDisturb != nil {
		if err := c.SensorDisturb.Validate(); err != nil {
			return fmt.Errorf("carfollow: %w", err)
		}
	}
	for i, a := range c.LeadScript {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("carfollow: lead script entry %d is %v", i, a)
		}
	}
	if c.Guard != nil {
		g := *c.Guard
		if g.Limits == (dynamics.Limits{}) {
			g.Limits = c.Scenario.Ego // the runner applies the same fill
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("carfollow: %w", err)
		}
	}
	if c.PlannerFault != nil {
		if err := c.PlannerFault.Validate(); err != nil {
			return fmt.Errorf("carfollow: %w", err)
		}
	}
	return nil
}

// RunEpisode simulates one car-following episode under the shared episode
// options (trace recording, telemetry collector).  Like sim.Run it is a
// thin closed loop over the resumable Stepper engine.
func RunEpisode(cfg SimConfig, agent Agent, opts sim.Options) (sim.Result, error) {
	st, err := NewStepper(cfg, agent, opts)
	if err != nil {
		return sim.Result{}, err
	}
	for {
		out, err := st.Step(sim.StepInput{})
		if err != nil || out.Done {
			return st.Finish()
		}
	}
}

// RunCampaign simulates n seed-paired car-following episodes with the
// shared campaign options (worker bound, telemetry collector).
func RunCampaign(cfg SimConfig, agent Agent, n int, o sim.CampaignOptions) ([]sim.Result, error) {
	if o.Workers < 0 {
		return nil, fmt.Errorf("carfollow: worker count %d must be >= 1 (0 selects GOMAXPROCS)", o.Workers)
	}
	if n <= 0 {
		return nil, fmt.Errorf("carfollow: non-positive episode count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]sim.Result, n)
	errs := make([]error, n)
	var done atomic.Int64
	scratches := sim.NewWorkerScratches(o.Workers, n)
	sim.ParallelForWorkersScoped(o.Workers, n, func(w, i int) {
		results[i], errs[i] = RunEpisode(cfg, agent, o.EpisodeOptions(i, scratches[w]))
		if o.Collector != nil {
			o.Collector.OnProgress(done.Add(1), int64(n))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("carfollow: episode %d: %w", i, err)
		}
	}
	return results, nil
}
