package carfollow

import (
	"fmt"
	"math"
	"math/rand"

	"safeplan/internal/dynamics"
	"safeplan/internal/mat"
	"safeplan/internal/nn"
	"safeplan/internal/telemetry"
)

// Planner decides the ego acceleration for car following.  The assumed
// lead braking (conservative: the physical a_min; aggressive: the Eq.-8-
// style buffered value) is chosen by the surrounding agent, which is how
// the aggressive unsafe-set estimation reaches the planner without
// retraining — exactly as in the left-turn study.
type Planner interface {
	// Name identifies the planner in results tables.
	Name() string
	// Accel returns the commanded acceleration.
	Accel(t float64, ego dynamics.State, lead LeadEstimate, assumedBrake float64) float64
}

// Expert is the analytic cruise policy: track a target headway of
// RequiredGap + Headway·v + Buffer with proportional gap and speed terms.
type Expert struct {
	Cfg Config

	Headway   float64 // time headway [s]
	Buffer    float64 // constant extra spacing [m]
	GainGap   float64 // accel per metre of gap error
	GainSpeed float64 // accel per m/s of speed difference

	Label string
}

// ConservativeExpert keeps a generous headway; safe standalone.
func ConservativeExpert(cfg Config) *Expert {
	return &Expert{Cfg: cfg, Headway: 1.8, Buffer: 4, GainGap: 0.5, GainSpeed: 0.9,
		Label: "cf-expert-conservative"}
}

// AggressiveExpert tailgates; fast, but rear-ends a hard-braking lead when
// run bare under communication disturbance.
func AggressiveExpert(cfg Config) *Expert {
	return &Expert{Cfg: cfg, Headway: 0.35, Buffer: 0.8, GainGap: 0.9, GainSpeed: 1.1,
		Label: "cf-expert-aggressive"}
}

// Name implements Planner.
func (e *Expert) Name() string { return e.Label }

// Accel implements Planner.
func (e *Expert) Accel(_ float64, ego dynamics.State, lead LeadEstimate, assumedBrake float64) float64 {
	c := e.Cfg
	if lead.P.IsEmpty() {
		// Free road: cruise at the speed limit.
		return math.Min(c.Ego.AMax, (c.Ego.VMax-ego.V)/0.8)
	}
	gap := lead.PointP - ego.P - c.PGap
	target := c.RequiredGap(ego.V, lead.PointV, assumedBrake) + e.Headway*ego.V + e.Buffer
	a := e.GainGap*(gap-target) + e.GainSpeed*(lead.PointV-ego.V)
	// Never command past the speed limit; the envelope clamp handles the
	// rest.
	if ego.V >= c.Ego.VMax && a > 0 {
		a = 0
	}
	return math.Max(c.Ego.AMin, math.Min(c.Ego.AMax, a))
}

// NNPlanner is an imitation-trained network over Config.Features.
type NNPlanner struct {
	Label string
	Net   *nn.Network
	Norm  *nn.Normalizer
	Cfg   Config
}

// Name implements Planner.
func (p *NNPlanner) Name() string { return p.Label }

// Accel implements Planner.
func (p *NNPlanner) Accel(_ float64, ego dynamics.State, lead LeadEstimate, assumedBrake float64) float64 {
	feats := p.Cfg.Features(ego, lead, assumedBrake)
	if p.Norm != nil {
		p.Norm.Apply(feats)
	}
	a := p.Net.Predict1(feats)
	return math.Max(p.Cfg.Ego.AMin, math.Min(p.Cfg.Ego.AMax, a))
}

// TrainOptions drives car-following imitation learning.  The expert policy
// is a pure function of the feature vector, so uniform feature sampling
// covers it without closed-loop rollouts.
type TrainOptions struct {
	Hidden    []int // nil selects {24, 24}
	Samples   int   // 0 selects 12000
	Epochs    int   // 0 selects 40
	BatchSize int   // 0 selects 64
	LR        float64
	Seed      int64
}

func (o *TrainOptions) fill() {
	if len(o.Hidden) == 0 {
		o.Hidden = []int{24, 24}
	}
	if o.Samples <= 0 {
		o.Samples = 12000
	}
	if o.Epochs <= 0 {
		o.Epochs = 40
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.LR <= 0 {
		o.LR = 3e-3
	}
}

// TrainNNPlanner imitates the expert over sampled planner-visible states.
func TrainNNPlanner(cfg Config, expert Planner, label string, opts TrainOptions) (*NNPlanner, float64, error) {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed))
	x := mat.NewDense(opts.Samples, 5)
	y := mat.NewDense(opts.Samples, 1)
	for i := 0; i < opts.Samples; i++ {
		ego := dynamics.State{P: 0, V: rng.Float64() * cfg.Ego.VMax}
		gap := rng.Float64() * 80
		leadV := rng.Float64() * cfg.Lead.VMax
		leadA := cfg.Lead.AMin + rng.Float64()*(cfg.Lead.AMax-cfg.Lead.AMin)
		lead := ExactLead(dynamics.State{P: ego.P + cfg.PGap + gap, V: leadV}, leadA)
		var assumed float64
		if rng.Float64() < 0.5 {
			assumed = cfg.Lead.AMin
		} else {
			assumed = cfg.AggressiveAssumedBrake(leadA)
		}
		copy(x.Row(i), cfg.Features(ego, lead, assumed))
		y.Set(i, 0, expert.Accel(0, ego, lead, assumed))
	}
	ds, err := nn.NewDataset(x, y)
	if err != nil {
		return nil, 0, fmt.Errorf("carfollow: dataset: %w", err)
	}
	norm := nn.FitNormalizer(ds.X)
	norm.ApplyMatrix(ds.X)
	sizes := append([]int{5}, opts.Hidden...)
	sizes = append(sizes, 1)
	net := nn.NewMLP(rand.New(rand.NewSource(opts.Seed+1)), nn.Tanh{}, sizes...)
	loss := net.Fit(ds, &nn.Adam{LR: opts.LR}, nn.TrainConfig{
		Epochs:    opts.Epochs,
		BatchSize: opts.BatchSize,
		Seed:      opts.Seed + 2,
	})
	return &NNPlanner{Label: label, Net: net, Norm: norm, Cfg: cfg}, loss, nil
}

// Knowledge carries the sound and fused lead estimates for one step.
type Knowledge struct {
	Sound LeadEstimate // guaranteed to contain the true lead state
	Fused LeadEstimate // sharpest available (Kalman-joined when enabled)
}

// Agent is the closed-loop decision maker for car following.
type Agent interface {
	// Name identifies the agent in results tables.
	Name() string
	// Accel returns the acceleration command and an emergency flag.
	Accel(t float64, ego dynamics.State, k Knowledge) (a float64, emergency bool)
}

// Pure runs κ_n bare with the conservative (physical) braking assumption.
type Pure struct {
	Cfg     Config
	Planner Planner
}

// Name implements Agent.
func (p *Pure) Name() string { return "pure:" + p.Planner.Name() }

// Accel implements Agent.
func (p *Pure) Accel(t float64, ego dynamics.State, k Knowledge) (float64, bool) {
	return p.Planner.Accel(t, ego, k.Fused, p.Cfg.Lead.AMin), false
}

// Compound is the car-following compound planner: the monitor's one-step
// worst-case lookahead on the *sound* estimate selects κ_e (maximum
// braking); otherwise κ_n plans with its braking assumption.  Because a
// negative verdict certifies that even full throttle keeps the next-step
// slack nonnegative, κ_n's output needs no further clamping — any
// admissible acceleration is safe.
type Compound struct {
	Cfg     Config
	Planner Planner

	// Aggressive selects the buffered braking assumption for κ_n.
	Aggressive bool

	// Collector, when non-nil, receives the monitor's selection reason
	// every control step.
	Collector telemetry.Collector

	label string
}

// SetCollector attaches a telemetry collector; part of the optional
// instrumentation contract recognized by the public run options.
func (c *Compound) SetCollector(tc telemetry.Collector) { c.Collector = tc }

// NewBasic builds the basic compound design (monitor + κ_e only).
func NewBasic(cfg Config, p Planner) *Compound {
	return &Compound{Cfg: cfg, Planner: p, label: "basic:" + p.Name()}
}

// NewUltimate builds the ultimate design (adds the aggressive estimation;
// pair with the information filter in the simulator).
func NewUltimate(cfg Config, p Planner) *Compound {
	return &Compound{Cfg: cfg, Planner: p, Aggressive: true, label: "ultimate:" + p.Name()}
}

// Name implements Agent.
func (c *Compound) Name() string {
	if c.label != "" {
		return c.label
	}
	return "compound:" + c.Planner.Name()
}

// Accel implements Agent.
func (c *Compound) Accel(t float64, ego dynamics.State, k Knowledge) (float64, bool) {
	if c.Cfg.InUnsafeSet(ego, k.Sound) {
		c.decide(telemetry.ReasonUnsafe)
		return c.Cfg.EmergencyAccel(ego), true
	}
	if c.Cfg.InBoundarySafeSet(ego, k.Sound) {
		c.decide(telemetry.ReasonBoundary)
		return c.Cfg.EmergencyAccel(ego), true
	}
	c.decide(telemetry.ReasonPlanner)
	assumed := c.Cfg.Lead.AMin
	if c.Aggressive {
		assumed = c.Cfg.AggressiveAssumedBrake(k.Fused.A)
	}
	return c.Planner.Accel(t, ego, k.Fused, assumed), false
}

// decide reports the step's monitor selection to the collector.
func (c *Compound) decide(reason string) {
	if c.Collector != nil {
		c.Collector.OnMonitorDecision(reason)
	}
}
