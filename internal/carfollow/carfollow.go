// Package carfollow is the second case study: car following on a single
// lane — the exact unsafe-set example of paper §II-A ("if the ego vehicle
// C0 and another vehicle Ci are on the same lane, C0 must keep a distance
// gap with Ci to avoid collision: X_u = { x | |p0 − pi| < p_gap }").
//
// It instantiates every ingredient of the framework for this scenario:
// the unsafe set, a sound boundary test with a one-step worst-case
// lookahead, the emergency planner (maximum braking, which from any
// boundary-safe state preserves the gap against a worst-case lead), the
// aggressive unsafe-set estimation (assume the lead will not brake much
// harder than it currently does), and planner-visible features for the NN
// planner.  The information filter (internal/fusion) is reused verbatim —
// the lead vehicle is observed exactly like the oncoming one in the
// left-turn study.
package carfollow

import (
	"fmt"
	"math"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// Config gathers the car-following scenario constants.
type Config struct {
	Ego  dynamics.Limits // envelope of the following vehicle C0
	Lead dynamics.Limits // envelope of the lead vehicle C1

	EgoInit  dynamics.State // C0 at t = 0
	LeadInit dynamics.State // C1 at t = 0 (ahead: LeadInit.P > EgoInit.P)

	PGap float64 // minimum allowed bumper gap [m] (paper's p_gap)
	Goal float64 // ego target position; reaching it ends the episode [m]

	DtC float64 // control period [s]

	// ABuf is the aggressive-estimation buffer: κ_n's unsafe set assumes
	// the lead will not brake harder than a1(t) − ABuf (instead of the
	// physical a_min), mirroring Eq. 8 of the left-turn study.
	ABuf float64
	// MinAssumedBrake floors the aggressive braking assumption so a lead
	// that is currently accelerating is still assumed able to brake
	// moderately [m/s², negative].
	MinAssumedBrake float64

	// SafetyMargin is the slack the monitor demands after a worst-case
	// step before it leaves κ_n in control [m].
	SafetyMargin float64
}

// DefaultConfig returns the car-following defaults used by the tests,
// example, and benchmarks.
func DefaultConfig() Config {
	return Config{
		Ego:             dynamics.Limits{VMin: 0, VMax: 20, AMin: -6, AMax: 2.5},
		Lead:            dynamics.Limits{VMin: 0, VMax: 20, AMin: -6, AMax: 2.5},
		EgoInit:         dynamics.State{P: 0, V: 10},
		LeadInit:        dynamics.State{P: 30, V: 10},
		PGap:            2,
		Goal:            400,
		DtC:             0.05,
		ABuf:            1.5,
		MinAssumedBrake: -2.0,
		SafetyMargin:    0.05,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Ego.Validate(); err != nil {
		return fmt.Errorf("carfollow: ego limits: %w", err)
	}
	if err := c.Lead.Validate(); err != nil {
		return fmt.Errorf("carfollow: lead limits: %w", err)
	}
	if c.PGap <= 0 {
		return fmt.Errorf("carfollow: non-positive gap %v", c.PGap)
	}
	if c.LeadInit.P-c.EgoInit.P <= c.PGap {
		return fmt.Errorf("carfollow: initial gap %v already unsafe", c.LeadInit.P-c.EgoInit.P)
	}
	if c.Goal <= c.EgoInit.P {
		return fmt.Errorf("carfollow: goal %v behind the start", c.Goal)
	}
	if c.DtC <= 0 {
		return fmt.Errorf("carfollow: non-positive control period %v", c.DtC)
	}
	if c.ABuf < 0 {
		return fmt.Errorf("carfollow: negative ABuf %v", c.ABuf)
	}
	if c.MinAssumedBrake >= 0 {
		return fmt.Errorf("carfollow: MinAssumedBrake %v must be negative", c.MinAssumedBrake)
	}
	if c.SafetyMargin < 0 {
		return fmt.Errorf("carfollow: negative safety margin")
	}
	return nil
}

// LeadEstimate is the planner-visible knowledge about the lead vehicle —
// sound intervals plus point estimates, filled from the information filter.
type LeadEstimate struct {
	P interval.Interval // possible lead positions
	V interval.Interval // possible lead velocities

	PointP, PointV float64 // best point estimates
	A              float64 // best current lead acceleration estimate
}

// ExactLead builds an estimate from perfectly known lead state (tests and
// the perfect-information ablation).
func ExactLead(s dynamics.State, a float64) LeadEstimate {
	return LeadEstimate{
		P: interval.Point(s.P), V: interval.Point(s.V),
		PointP: s.P, PointV: s.V, A: a,
	}
}

// InUnsafeSet implements the paper's §II-A unsafe set for the worst case
// of the estimate: the gap to the *closest possible* lead position is
// below PGap.
func (c Config) InUnsafeSet(ego dynamics.State, lead LeadEstimate) bool {
	if lead.P.IsEmpty() {
		return false
	}
	return lead.P.Lo-ego.P < c.PGap
}

// Slack is the sound safety margin of the classic stopping-distance
// criterion: even if the lead brakes at its physical limit from its
// worst-case (closest, slowest) state, an ego that starts braking at
// a_min next step keeps the gap.  Positive slack = that criterion holds
// with room to spare.
func (c Config) Slack(ego dynamics.State, lead LeadEstimate) float64 {
	if lead.P.IsEmpty() || lead.V.IsEmpty() {
		return math.Inf(1) // no lead known: unconstrained
	}
	dbEgo := dynamics.StopDistance(ego.V, c.Ego.AMin)
	dbLead := dynamics.StopDistance(lead.V.Lo, c.Lead.AMin)
	return (lead.P.Lo + dbLead) - (ego.P + dbEgo) - c.PGap
}

// slackAfterWorstStep evaluates the slack after one control step in which
// the ego applies accel a and the lead behaves worst-case (maximum
// braking).  It is the direct, discrete evaluation of the boundary-safe-
// set condition (paper Eq. 3) for this scenario.
func (c Config) slackAfterWorstStep(ego dynamics.State, lead LeadEstimate, a float64) float64 {
	nextEgo, _ := dynamics.Step(ego, a, c.DtC, c.Ego)
	// Worst-case lead after dt: closest position advancing at its slowest,
	// velocity dropping at a_min.
	vLo := lead.V.Lo + c.Lead.AMin*c.DtC
	if vLo < c.Lead.VMin {
		vLo = c.Lead.VMin
	}
	pLo := lead.P.Lo + dynamics.DistanceAfter(c.DtC, lead.V.Lo, c.Lead.AMin, c.Lead.VMin, c.Lead.VMax)
	nextLead := LeadEstimate{P: interval.Point(pLo), V: interval.Point(vLo)}
	return c.Slack(nextEgo, nextLead)
}

// InBoundarySafeSet reports whether some admissible ego acceleration could
// push the state into (one-step reach of) the unsafe region: the monitor
// hands control to κ_e exactly then.  Because slack is monotone decreasing
// in the ego's acceleration, checking the maximal acceleration suffices.
func (c Config) InBoundarySafeSet(ego dynamics.State, lead LeadEstimate) bool {
	if lead.P.IsEmpty() {
		return false
	}
	return c.slackAfterWorstStep(ego, lead, c.Ego.AMax) < c.SafetyMargin
}

// EmergencyAccel is κ_e for car following: maximum braking.  From any
// state with nonnegative slack, braking at a_min keeps the gap ≥ PGap
// against every admissible lead behaviour (both vehicles' stopping points
// preserve the ordering by the slack definition), so Eq. 4 holds.
func (c Config) EmergencyAccel(ego dynamics.State) float64 {
	if ego.V <= 0 {
		return 0
	}
	return c.Ego.AMin
}

// AggressiveAssumedBrake returns the lead braking assumption fed to κ_n:
// min(a1(t) − ABuf, MinAssumedBrake), clamped at the physical a_min.  The
// lead "probably" won't brake much harder than it currently does.
func (c Config) AggressiveAssumedBrake(leadA float64) float64 {
	a := leadA - c.ABuf
	if a > c.MinAssumedBrake {
		a = c.MinAssumedBrake
	}
	if a < c.Lead.AMin {
		a = c.Lead.AMin
	}
	return a
}

// RequiredGap returns the headway the stopping-distance criterion demands
// at the given speeds under the given lead braking assumption.
func (c Config) RequiredGap(egoV, leadV, assumedBrake float64) float64 {
	dbEgo := dynamics.StopDistance(egoV, c.Ego.AMin)
	dbLead := dynamics.StopDistance(leadV, assumedBrake)
	g := dbEgo - dbLead
	if g < 0 {
		return 0
	}
	return g
}

// Violation reports whether the true states violate the unsafe set — the
// scored safety outcome of an episode.
func (c Config) Violation(ego, lead dynamics.State) bool {
	return lead.P-ego.P < c.PGap
}

// ReachedGoal reports whether the ego has covered the episode distance.
func (c Config) ReachedGoal(ego dynamics.State) bool { return ego.P >= c.Goal }

// FeatureCount is the NN-planner input dimension for car following.
const FeatureCount = 5

// noLeadGap is the sentinel gap feature used when no lead is known.
const noLeadGap = 1e3

// Features assembles the 5-dimensional NN-planner input for car following:
// (gap to worst-case lead, ego speed, lead speed estimate, lead accel
// estimate, required gap under the planner's braking assumption).
func (c Config) Features(ego dynamics.State, lead LeadEstimate, assumedBrake float64) []float64 {
	gap := noLeadGap
	if !lead.P.IsEmpty() {
		gap = lead.P.Lo - ego.P - c.PGap
	}
	return []float64{
		gap,
		ego.V,
		lead.PointV,
		lead.A,
		c.RequiredGap(ego.V, lead.PointV, assumedBrake),
	}
}

// FeatureBox returns a fresh interval feature box; see FeatureBoxInto.
func (c Config) FeatureBox(ego dynamics.State, sound LeadEstimate, assumedBrake float64) []interval.Interval {
	dst := make([]interval.Interval, FeatureCount)
	c.FeatureBoxInto(dst, ego, sound, assumedBrake)
	return dst
}

// FeatureBoxInto is the interval twin of Features: it writes into dst
// (length ≥ FeatureCount) a box containing Features(ego, e, assumedBrake)
// for every lead estimate e whose P/V intervals lie inside the sound
// estimate's, whose PointV lies inside sound.V, and whose A equals
// sound.A — in particular for the fused estimate the planner sees, which
// the filter keeps inside the sound set.  The braking assumption is a
// function of the shared A, so the caller passes the same value it feeds
// Features.
//
// The gap feature is linear in the estimate's lower position bound; the
// lead-speed feature is exactly the sound velocity interval; the
// required-gap feature brackets because RequiredGap is monotone
// nonincreasing in the lead speed (a faster lead stops farther ahead).
// A degenerate point estimate reproduces Features bitwise.  An empty
// sound position interval means every consistent estimate has an empty
// one too, so the gap feature is exactly the no-lead sentinel; an empty
// velocity interval falls back to the point estimate carried alongside.
func (c Config) FeatureBoxInto(dst []interval.Interval, ego dynamics.State, sound LeadEstimate, assumedBrake float64) {
	if sound.P.IsEmpty() {
		dst[0] = interval.Point(noLeadGap)
	} else {
		dst[0] = interval.New(sound.P.Lo-ego.P-c.PGap, sound.P.Hi-ego.P-c.PGap)
	}
	dst[1] = interval.Point(ego.V)
	vHull := sound.V
	if vHull.IsEmpty() {
		vHull = interval.Point(sound.PointV)
	}
	dst[2] = vHull
	dst[3] = interval.Point(sound.A)
	gLo := c.RequiredGap(ego.V, vHull.Hi, assumedBrake)
	gHi := c.RequiredGap(ego.V, vHull.Lo, assumedBrake)
	dst[4] = interval.New(math.Min(gLo, gHi), math.Max(gLo, gHi))
}
