// Package disturb is the composable disturbance-model layer for the V2V
// channel and the onboard sensor.  It generalizes the evaluation's three
// fixed communication settings (perfect / delayed+dropped / lost) to
// arbitrary scripted disturbance processes: Gilbert–Elliott burst loss,
// uniform and heavy-tailed delay jitter with message reordering, stale
// message replay, total blackout windows, and sensor bias drift and
// dropout — plus a Schedule combinator that switches models over episode
// time ("clean 0–2 s, burst loss 2–5 s, blackout 5–6 s").
//
// Every model is a deterministic seeded process: a Model is an immutable
// description, and Model.New instantiates one episode's worth of state fed
// by caller-owned random streams.  Drop decisions and delay draws come
// from *separate* streams so that sweeping a loss parameter (e.g. the
// Gilbert–Elliott bad-state dwell) never perturbs the latency of the
// messages that survive in both arms of an A/B comparison.
//
// Soundness note (why the paper's safety theorem survives every model
// here): the reachability analysis behind the runtime monitor only
// assumes that a delivered message carries the sender's exact state at
// its timestamp — never that messages arrive at all, on time, in order,
// or exactly once.  Dropping, delaying, reordering, and replaying
// messages therefore only ever *widen* the sound estimate.  Sensor-side
// models preserve the sensor's ±δ noise envelope by construction (bias is
// clamped into it), so the sound reading interval stays sound.  See
// DESIGN.md §"Disturbance models".
package disturb

import (
	"fmt"
	"math"
	"math/rand"
)

// Decision is the fate of one message offered to the channel.
type Decision struct {
	// Drop discards the message entirely.
	Drop bool
	// Delay is the delivery latency of the (surviving) message [s].
	Delay float64
	// Dup lists delivery latencies of duplicate copies of the message.
	// A duplicate delivered with a larger latency than fresher traffic is
	// exactly a stale replay at the receiver: an old timestamp arriving
	// after newer information, which the fusion filter must discard.
	Dup []float64
}

// Process is one episode's instantiated disturbance process for a single
// channel.  Next is called once per offered message in nondecreasing
// timestamp order.  It is not safe for concurrent use.
type Process interface {
	Next(t float64) Decision
}

// Model is an immutable description of a channel disturbance process.
type Model interface {
	// Name identifies the model in tables and flags.
	Name() string
	// Validate reports whether the parameters are usable.
	Validate() error
	// New instantiates a fresh process.  Loss decisions must draw only
	// from dropRng and latency draws only from delayRng, and a process
	// should consume its per-message delay draw even for dropped
	// messages, so the two streams stay aligned across parameter sweeps.
	New(dropRng, delayRng *rand.Rand) Process
}

// validDelay rejects non-finite or negative latencies.
func validDelay(name string, d float64) error {
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		return fmt.Errorf("disturb: %s: bad delay %v", name, d)
	}
	return nil
}

// validProb rejects values outside [0, 1].
func validProb(name, field string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("disturb: %s: %s %v outside [0,1]", name, field, p)
	}
	return nil
}

// None is the perfect-channel model: every message delivered immediately.
type None struct{}

// Name implements Model.
func (None) Name() string { return "none" }

// Validate implements Model.
func (None) Validate() error { return nil }

// New implements Model.
func (None) New(_, _ *rand.Rand) Process { return noneProcess{} }

type noneProcess struct{}

func (noneProcess) Next(float64) Decision { return Decision{} }

// Blackout drops every message.  On its own it is the "messages lost"
// setting; inside a Schedule phase it is a total communication blackout
// window (occlusion, interferer, denial of service).
type Blackout struct{}

// Name implements Model.
func (Blackout) Name() string { return "blackout" }

// Validate implements Model.
func (Blackout) Validate() error { return nil }

// New implements Model.
func (Blackout) New(_, _ *rand.Rand) Process { return blackoutProcess{} }

type blackoutProcess struct{}

func (blackoutProcess) Next(float64) Decision { return Decision{Drop: true} }

// IID is the evaluation's classic channel: each message independently
// dropped with probability DropProb, survivors delayed by the constant
// Delay.  It reproduces comms.Delayed(delay, pd) behind the Model
// interface.
type IID struct {
	DropProb float64 // per-message drop probability, in [0, 1]
	Delay    float64 // constant delivery latency [s]
}

// Name implements Model.
func (IID) Name() string { return "iid" }

// Validate implements Model.
func (m IID) Validate() error {
	if err := validProb(m.Name(), "drop probability", m.DropProb); err != nil {
		return err
	}
	return validDelay(m.Name(), m.Delay)
}

// New implements Model.
func (m IID) New(dropRng, _ *rand.Rand) Process {
	return &iidProcess{m: m, drop: dropRng}
}

type iidProcess struct {
	m    IID
	drop *rand.Rand
}

func (p *iidProcess) Next(float64) Decision {
	d := Decision{Delay: p.m.Delay}
	if p.m.DropProb > 0 && p.drop.Float64() < p.m.DropProb {
		d.Drop = true
	}
	return d
}

// GilbertElliott is the classic two-state burst-loss channel: a hidden
// Markov chain alternates between a good and a bad state, with independent
// loss probabilities per state.  With DropBad near 1 it produces loss
// *bursts* whose mean length is 1/PBadGood messages — the disturbance
// i.i.d. drops cannot express, and the one that starves the filter of
// messages for many consecutive control steps.
type GilbertElliott struct {
	PGoodBad float64 // per-message transition probability good → bad
	PBadGood float64 // per-message transition probability bad → good
	DropGood float64 // loss probability in the good state
	DropBad  float64 // loss probability in the bad state
	Delay    float64 // constant delivery latency of survivors [s]
	StartBad bool    // start the chain in the bad state
}

// Name implements Model.
func (GilbertElliott) Name() string { return "gilbert-elliott" }

// Validate implements Model.
func (m GilbertElliott) Validate() error {
	for _, f := range []struct {
		field string
		p     float64
	}{
		{"P(good→bad)", m.PGoodBad},
		{"P(bad→good)", m.PBadGood},
		{"drop(good)", m.DropGood},
		{"drop(bad)", m.DropBad},
	} {
		if err := validProb(m.Name(), f.field, f.p); err != nil {
			return err
		}
	}
	return validDelay(m.Name(), m.Delay)
}

// New implements Model.
func (m GilbertElliott) New(dropRng, _ *rand.Rand) Process {
	return &geProcess{m: m, drop: dropRng, bad: m.StartBad}
}

type geProcess struct {
	m    GilbertElliott
	drop *rand.Rand
	bad  bool
}

func (p *geProcess) Next(float64) Decision {
	// Loss by the current state, then transition — so StartBad takes
	// effect on the very first message.
	loss := p.m.DropGood
	flip := p.m.PGoodBad
	if p.bad {
		loss = p.m.DropBad
		flip = p.m.PBadGood
	}
	d := Decision{Delay: p.m.Delay}
	if loss > 0 && p.drop.Float64() < loss {
		d.Drop = true
	}
	if flip > 0 && p.drop.Float64() < flip {
		p.bad = !p.bad
	}
	return d
}

// Jitter delays each message by Base + U(0, Spread) and, with probability
// TailProb, an additional exponential heavy-tail draw of mean TailMean —
// so occasional messages arrive much later than their successors.
// Per-message latency variation is what produces *reordering*: a message
// can be overtaken by a fresher one, and the filter must discard it on
// arrival.  DropProb adds independent loss on top.
type Jitter struct {
	Base     float64 // minimum latency [s]
	Spread   float64 // width of the uniform jitter component [s]
	TailProb float64 // probability of a heavy-tail excursion, in [0, 1]
	TailMean float64 // mean of the exponential tail component [s]
	DropProb float64 // independent per-message drop probability, in [0, 1]
}

// Name implements Model.
func (Jitter) Name() string { return "jitter" }

// Validate implements Model.
func (m Jitter) Validate() error {
	if err := validDelay(m.Name(), m.Base); err != nil {
		return err
	}
	if err := validDelay(m.Name(), m.Spread); err != nil {
		return err
	}
	if err := validDelay(m.Name(), m.TailMean); err != nil {
		return err
	}
	if err := validProb(m.Name(), "tail probability", m.TailProb); err != nil {
		return err
	}
	return validProb(m.Name(), "drop probability", m.DropProb)
}

// New implements Model.
func (m Jitter) New(dropRng, delayRng *rand.Rand) Process {
	return &jitterProcess{m: m, drop: dropRng, delay: delayRng}
}

type jitterProcess struct {
	m           Jitter
	drop, delay *rand.Rand
}

func (p *jitterProcess) Next(float64) Decision {
	// Draw the latency unconditionally so the delay stream stays aligned
	// across drop-parameter sweeps (see the Model contract).
	lat := p.m.Base
	if p.m.Spread > 0 {
		lat += p.delay.Float64() * p.m.Spread
	}
	if p.m.TailProb > 0 && p.delay.Float64() < p.m.TailProb {
		// Inverse-CDF exponential draw; 1−U avoids log(0).
		lat += p.m.TailMean * -math.Log(1-p.delay.Float64())
	}
	d := Decision{Delay: lat}
	if p.m.DropProb > 0 && p.drop.Float64() < p.m.DropProb {
		d.Drop = true
	}
	return d
}

// Replay wraps another model and additionally re-delivers messages as
// stale duplicates: with probability Prob a surviving message spawns a
// copy arriving ExtraMin–ExtraMax seconds after the original.  By then
// fresher traffic has usually arrived, so the duplicate reaches the
// filter with an out-of-date timestamp — the stale-replay disturbance.
type Replay struct {
	Inner    Model   // the underlying loss/latency model (nil means None)
	Prob     float64 // per-message duplication probability, in [0, 1]
	ExtraMin float64 // minimum extra latency of the duplicate [s]
	ExtraMax float64 // maximum extra latency of the duplicate [s]
}

// Name implements Model.
func (m Replay) Name() string { return "replay(" + m.inner().Name() + ")" }

func (m Replay) inner() Model {
	if m.Inner == nil {
		return None{}
	}
	return m.Inner
}

// Validate implements Model.
func (m Replay) Validate() error {
	if err := validProb("replay", "duplication probability", m.Prob); err != nil {
		return err
	}
	if err := validDelay("replay", m.ExtraMin); err != nil {
		return err
	}
	if err := validDelay("replay", m.ExtraMax); err != nil {
		return err
	}
	if m.ExtraMin > m.ExtraMax {
		return fmt.Errorf("disturb: replay: extra latency range [%v, %v] reversed", m.ExtraMin, m.ExtraMax)
	}
	return m.inner().Validate()
}

// New implements Model.
func (m Replay) New(dropRng, delayRng *rand.Rand) Process {
	return &replayProcess{m: m, inner: m.inner().New(dropRng, delayRng), drop: dropRng, delay: delayRng}
}

type replayProcess struct {
	m           Replay
	inner       Process
	drop, delay *rand.Rand
}

func (p *replayProcess) Next(t float64) Decision {
	d := p.inner.Next(t)
	if d.Drop || p.m.Prob <= 0 {
		return d
	}
	if p.drop.Float64() < p.m.Prob {
		extra := p.m.ExtraMin + p.delay.Float64()*(p.m.ExtraMax-p.m.ExtraMin)
		d.Dup = append(d.Dup, d.Delay+extra)
	}
	return d
}

// Phase is one entry of a Schedule: Model governs messages stamped from
// Start until the next phase's start.
type Phase struct {
	Start float64 // phase onset [s], relative to episode time
	Model Model
}

// Schedule scripts disturbance phases over episode time.  The phase whose
// window contains a message's timestamp decides its fate; messages before
// the first phase see a perfect channel.  Each phase owns independent
// derived random streams, so editing one phase never perturbs another.
type Schedule struct {
	Phases []Phase
}

// Name implements Model.
func (m Schedule) Name() string {
	s := "schedule["
	for i, ph := range m.Phases {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%g:%s", ph.Start, ph.Model.Name())
	}
	return s + "]"
}

// Validate implements Model.
func (m Schedule) Validate() error {
	if len(m.Phases) == 0 {
		return fmt.Errorf("disturb: schedule: no phases")
	}
	prev := math.Inf(-1)
	for i, ph := range m.Phases {
		if math.IsNaN(ph.Start) || ph.Start < prev {
			return fmt.Errorf("disturb: schedule: phase %d start %v not nondecreasing", i, ph.Start)
		}
		prev = ph.Start
		if ph.Model == nil {
			return fmt.Errorf("disturb: schedule: phase %d has nil model", i)
		}
		if err := ph.Model.Validate(); err != nil {
			return fmt.Errorf("disturb: schedule: phase %d: %w", i, err)
		}
	}
	return nil
}

// New implements Model.
func (m Schedule) New(dropRng, delayRng *rand.Rand) Process {
	p := &scheduleProcess{m: m, procs: make([]Process, len(m.Phases))}
	for i, ph := range m.Phases {
		// Derive per-phase substreams up front, in phase order, so each
		// phase's randomness is a pure function of (seed, phase index).
		drop := rand.New(rand.NewSource(dropRng.Int63()))
		delay := rand.New(rand.NewSource(delayRng.Int63()))
		p.procs[i] = ph.Model.New(drop, delay)
	}
	return p
}

type scheduleProcess struct {
	m     Schedule
	procs []Process
}

func (p *scheduleProcess) Next(t float64) Decision {
	active := -1
	for i, ph := range p.m.Phases {
		if t >= ph.Start {
			active = i
		}
	}
	if active < 0 {
		return Decision{} // before the first phase: perfect channel
	}
	return p.procs[active].Next(t)
}
