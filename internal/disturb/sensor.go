package disturb

import (
	"fmt"
	"math"
	"math/rand"
)

// SensorDecision is the fate of one scheduled sensor reading.
type SensorDecision struct {
	// Drop skips the reading entirely (perception outage).
	Drop bool
	// Bias shifts every measured component by Bias·δ before the shifted
	// noise is clamped back into the sound ±δ envelope, as a fraction in
	// [−1, 1].  A bias of +1 pins readings to the top edge of the
	// interval — the worst sound sensor: maximally correlated error the
	// uniform-noise model never produces on its own, without ever
	// breaking the ±δ promise the filter's soundness rests on.
	Bias float64
}

// SensorProcess is one episode's instantiated sensor disturbance for a
// single observed vehicle.  Next is called once per scheduled reading in
// nondecreasing time order.  It is not safe for concurrent use.
type SensorProcess interface {
	Next(t float64) SensorDecision
}

// SensorModel is an immutable description of a sensor disturbance process.
type SensorModel interface {
	// Name identifies the model in tables and flags.
	Name() string
	// Validate reports whether the parameters are usable.
	Validate() error
	// NewSensor instantiates a fresh process drawing from rng.
	NewSensor(rng *rand.Rand) SensorProcess
}

// SensorNone is the undisturbed sensor.
type SensorNone struct{}

// Name implements SensorModel.
func (SensorNone) Name() string { return "none" }

// Validate implements SensorModel.
func (SensorNone) Validate() error { return nil }

// NewSensor implements SensorModel.
func (SensorNone) NewSensor(*rand.Rand) SensorProcess { return sensorNoneProcess{} }

type sensorNoneProcess struct{}

func (sensorNoneProcess) Next(float64) SensorDecision { return SensorDecision{} }

// BiasDrift drifts the measurement bias over episode time: a ramp of Rate
// fractions of δ per second clamped to ±Max, or — when Period is positive —
// a sinusoid of amplitude Max and that period.  It models a slowly
// miscalibrating perception stack whose error is *correlated* across
// readings, the case the i.i.d. uniform noise model is blind to.
type BiasDrift struct {
	Rate   float64 // drift rate [fraction of δ per second]
	Max    float64 // bias amplitude cap [fraction of δ], in [0, 1]
	Period float64 // if > 0, sinusoidal drift with this period [s]
}

// Name implements SensorModel.
func (BiasDrift) Name() string { return "bias-drift" }

// Validate implements SensorModel.
func (m BiasDrift) Validate() error {
	if math.IsNaN(m.Rate) || math.IsInf(m.Rate, 0) {
		return fmt.Errorf("disturb: bias-drift: bad rate %v", m.Rate)
	}
	if math.IsNaN(m.Max) || m.Max < 0 || m.Max > 1 {
		return fmt.Errorf("disturb: bias-drift: amplitude %v outside [0,1]", m.Max)
	}
	if math.IsNaN(m.Period) || m.Period < 0 {
		return fmt.Errorf("disturb: bias-drift: negative period %v", m.Period)
	}
	return nil
}

// NewSensor implements SensorModel.
func (m BiasDrift) NewSensor(*rand.Rand) SensorProcess { return biasDriftProcess{m} }

type biasDriftProcess struct{ m BiasDrift }

func (p biasDriftProcess) Next(t float64) SensorDecision {
	var b float64
	if p.m.Period > 0 {
		b = p.m.Max * math.Sin(2*math.Pi*t/p.m.Period)
	} else {
		b = p.m.Rate * t
		if b > p.m.Max {
			b = p.m.Max
		}
		if b < -p.m.Max {
			b = -p.m.Max
		}
	}
	return SensorDecision{Bias: b}
}

// SensorDropout is Gilbert–Elliott burst dropout on the reading schedule:
// the perception stack fails in bursts (sun glare, occlusion) rather than
// independently per frame.  Set the two drop probabilities equal for
// i.i.d. dropout.
type SensorDropout struct {
	PGoodBad float64 // per-reading transition probability good → bad
	PBadGood float64 // per-reading transition probability bad → good
	DropGood float64 // dropout probability in the good state
	DropBad  float64 // dropout probability in the bad state
}

// Name implements SensorModel.
func (SensorDropout) Name() string { return "sensor-dropout" }

// Validate implements SensorModel.
func (m SensorDropout) Validate() error {
	for _, f := range []struct {
		field string
		p     float64
	}{
		{"P(good→bad)", m.PGoodBad},
		{"P(bad→good)", m.PBadGood},
		{"drop(good)", m.DropGood},
		{"drop(bad)", m.DropBad},
	} {
		if err := validProb(m.Name(), f.field, f.p); err != nil {
			return err
		}
	}
	return nil
}

// NewSensor implements SensorModel.
func (m SensorDropout) NewSensor(rng *rand.Rand) SensorProcess {
	return &sensorDropoutProcess{m: m, rng: rng}
}

type sensorDropoutProcess struct {
	m   SensorDropout
	rng *rand.Rand
	bad bool
}

func (p *sensorDropoutProcess) Next(float64) SensorDecision {
	loss := p.m.DropGood
	flip := p.m.PGoodBad
	if p.bad {
		loss = p.m.DropBad
		flip = p.m.PBadGood
	}
	var d SensorDecision
	if loss > 0 && p.rng.Float64() < loss {
		d.Drop = true
	}
	if flip > 0 && p.rng.Float64() < flip {
		p.bad = !p.bad
	}
	return d
}

// SensorStack composes several sensor models: a reading is dropped when
// any layer drops it, and the layers' biases add (clamped to ±1).
type SensorStack struct {
	Models []SensorModel
}

// Name implements SensorModel.
func (m SensorStack) Name() string {
	s := "stack["
	for i, sm := range m.Models {
		if i > 0 {
			s += " "
		}
		s += sm.Name()
	}
	return s + "]"
}

// Validate implements SensorModel.
func (m SensorStack) Validate() error {
	if len(m.Models) == 0 {
		return fmt.Errorf("disturb: sensor stack: no models")
	}
	for i, sm := range m.Models {
		if sm == nil {
			return fmt.Errorf("disturb: sensor stack: nil model at %d", i)
		}
		if err := sm.Validate(); err != nil {
			return fmt.Errorf("disturb: sensor stack: model %d: %w", i, err)
		}
	}
	return nil
}

// NewSensor implements SensorModel.
func (m SensorStack) NewSensor(rng *rand.Rand) SensorProcess {
	procs := make([]SensorProcess, len(m.Models))
	for i, sm := range m.Models {
		procs[i] = sm.NewSensor(rand.New(rand.NewSource(rng.Int63())))
	}
	return sensorStackProcess{procs}
}

type sensorStackProcess struct{ procs []SensorProcess }

func (p sensorStackProcess) Next(t float64) SensorDecision {
	var out SensorDecision
	for _, sp := range p.procs {
		d := sp.Next(t)
		out.Drop = out.Drop || d.Drop
		out.Bias += d.Bias
	}
	if out.Bias > 1 {
		out.Bias = 1
	}
	if out.Bias < -1 {
		out.Bias = -1
	}
	return out
}
