package disturb

import (
	"fmt"
	"sort"
)

// Presets are named, ready-to-run disturbance scripts shared by the CLI
// flags (cmd/simulate -disturb), the worst-case experiment sweep, and the
// fuzz targets' seed corpora.  Parameters are chosen to be *adversarial*
// at the evaluation's Δt_m = 0.1 s message cadence: bursts starve the
// filter for tens of control steps, jitter tails overtake several fresher
// messages, and the blackout script follows the ISSUE's canonical
// "clean 0–2 s, burst 2–5 s, blackout 5–6 s" shape.
var presets = map[string]func() Model{
	"none": func() Model { return None{} },
	"iid":  func() Model { return IID{DropProb: 0.5, Delay: 0.25} },
	"burst": func() Model {
		// Mean dwell: 20 messages good (2 s), 8 messages bad (0.8 s) with
		// near-total loss — repeated sub-second starvation windows.
		return GilbertElliott{PGoodBad: 0.05, PBadGood: 0.125, DropGood: 0.02, DropBad: 0.98, Delay: 0.1}
	},
	"jitter": func() Model {
		// Latency 0.05–0.45 s uniform with a 15% exponential tail of mean
		// 0.5 s: heavy reordering plus 20% independent loss.
		return Jitter{Base: 0.05, Spread: 0.4, TailProb: 0.15, TailMean: 0.5, DropProb: 0.2}
	},
	"replay": func() Model {
		// Stale duplicates 0.3–1.5 s behind an already delayed channel.
		return Replay{Inner: IID{DropProb: 0.3, Delay: 0.2}, Prob: 0.4, ExtraMin: 0.3, ExtraMax: 1.5}
	},
	"blackout": func() Model {
		return Schedule{Phases: []Phase{
			{Start: 0, Model: None{}},
			{Start: 2, Model: GilbertElliott{PGoodBad: 0.1, PBadGood: 0.2, DropBad: 1, Delay: 0.1}},
			{Start: 5, Model: Blackout{}},
			{Start: 6, Model: None{}},
		}}
	},
	"worst": func() Model {
		// Everything at once, phase by phase: burst loss, heavy jitter
		// with stale replay, a total blackout, then a lossy recovery.
		return Schedule{Phases: []Phase{
			{Start: 0, Model: GilbertElliott{PGoodBad: 0.08, PBadGood: 0.1, DropGood: 0.05, DropBad: 1, Delay: 0.15}},
			{Start: 3, Model: Replay{
				Inner: Jitter{Base: 0.1, Spread: 0.5, TailProb: 0.25, TailMean: 0.6, DropProb: 0.3},
				Prob:  0.5, ExtraMin: 0.4, ExtraMax: 2,
			}},
			{Start: 6, Model: Blackout{}},
			{Start: 7.5, Model: IID{DropProb: 0.6, Delay: 0.3}},
		}}
	},
}

var sensorPresets = map[string]func() SensorModel{
	"none": func() SensorModel { return SensorNone{} },
	"bias": func() SensorModel {
		// Full-scale drift within a 12 s period: readings sweep from one
		// edge of the sound envelope to the other and back.
		return BiasDrift{Max: 1, Period: 12}
	},
	"dropout": func() SensorModel {
		return SensorDropout{PGoodBad: 0.04, PBadGood: 0.15, DropGood: 0.05, DropBad: 0.95}
	},
	"worst": func() SensorModel {
		return SensorStack{Models: []SensorModel{
			BiasDrift{Max: 1, Period: 8},
			SensorDropout{PGoodBad: 0.05, PBadGood: 0.12, DropGood: 0.1, DropBad: 0.9},
		}}
	},
}

// Preset returns the named channel disturbance script.
func Preset(name string) (Model, error) {
	f, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("disturb: unknown preset %q (have %v)", name, PresetNames())
	}
	return f(), nil
}

// PresetNames lists the channel presets in sorted order.
func PresetNames() []string { return sortedKeys(presets) }

// SensorPreset returns the named sensor disturbance model.
func SensorPreset(name string) (SensorModel, error) {
	f, ok := sensorPresets[name]
	if !ok {
		return nil, fmt.Errorf("disturb: unknown sensor preset %q (have %v)", name, SensorPresetNames())
	}
	return f(), nil
}

// SensorPresetNames lists the sensor presets in sorted order.
func SensorPresetNames() []string { return sortedKeys(sensorPresets) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
