package disturb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func newProc(t *testing.T, m Model, seed int64) Process {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("%s invalid: %v", m.Name(), err)
	}
	return m.New(rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed+1)))
}

func TestValidateRejects(t *testing.T) {
	for name, m := range map[string]Model{
		"iid-prob":        IID{DropProb: 1.5},
		"iid-delay":       IID{Delay: -1},
		"ge-prob":         GilbertElliott{PGoodBad: -0.1},
		"ge-delay":        GilbertElliott{Delay: math.NaN()},
		"jitter-base":     Jitter{Base: -0.1},
		"jitter-tail":     Jitter{TailProb: 2},
		"replay-range":    Replay{ExtraMin: 1, ExtraMax: 0.5},
		"replay-inner":    Replay{Inner: IID{DropProb: -1}},
		"schedule-empty":  Schedule{},
		"schedule-order":  Schedule{Phases: []Phase{{Start: 2, Model: None{}}, {Start: 1, Model: None{}}}},
		"schedule-nil":    Schedule{Phases: []Phase{{Start: 0, Model: nil}}},
		"schedule-nested": Schedule{Phases: []Phase{{Start: 0, Model: IID{Delay: -3}}}},
	} {
		t.Run(name, func(t *testing.T) {
			if err := m.Validate(); err == nil {
				t.Fatalf("invalid %T accepted", m)
			}
		})
	}
	for name, m := range map[string]SensorModel{
		"bias-amp":    BiasDrift{Max: 1.5},
		"bias-period": BiasDrift{Period: -1},
		"drop-prob":   SensorDropout{DropBad: -0.5},
		"stack-empty": SensorStack{},
		"stack-inner": SensorStack{Models: []SensorModel{BiasDrift{Max: 2}}},
	} {
		t.Run(name, func(t *testing.T) {
			if err := m.Validate(); err == nil {
				t.Fatalf("invalid %T accepted", m)
			}
		})
	}
}

func TestIIDMatchesLegacySemantics(t *testing.T) {
	p := newProc(t, IID{DropProb: 0.3, Delay: 0.25}, 42)
	const n = 20000
	dropped := 0
	for i := 0; i < n; i++ {
		d := p.Next(float64(i) * 0.1)
		if d.Delay != 0.25 || len(d.Dup) != 0 {
			t.Fatalf("decision %+v", d)
		}
		if d.Drop {
			dropped++
		}
	}
	if rate := float64(dropped) / n; math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("empirical drop rate %.3f, want ≈0.30", rate)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	m := GilbertElliott{PGoodBad: 0.05, PBadGood: 0.125, DropGood: 0, DropBad: 1}
	p := newProc(t, m, 7)
	const n = 50000
	drops := make([]bool, n)
	total := 0
	for i := range drops {
		drops[i] = p.Next(float64(i)).Drop
		if drops[i] {
			total++
		}
	}
	// Stationary loss rate: πbad = PGoodBad/(PGoodBad+PBadGood) = 2/7.
	if rate := float64(total) / n; math.Abs(rate-2.0/7) > 0.03 {
		t.Fatalf("loss rate %.3f, want ≈%.3f", rate, 2.0/7)
	}
	// Burstiness: mean run length of consecutive drops ≈ 1/PBadGood = 8,
	// far above the ≈1.4 an i.i.d. channel of equal rate would produce.
	runs, runLen := 0, 0
	for _, d := range drops {
		if d {
			runLen++
		} else if runLen > 0 {
			runs++
			runLen = 0
		}
	}
	if runs == 0 {
		t.Fatal("no loss bursts observed")
	}
	mean := float64(total) / float64(runs)
	if mean < 4 {
		t.Fatalf("mean burst length %.2f — not bursty", mean)
	}
}

func TestJitterBoundsAndReordering(t *testing.T) {
	m := Jitter{Base: 0.05, Spread: 0.4, TailProb: 0.15, TailMean: 0.5}
	p := newProc(t, m, 3)
	reordered := false
	prev := -1.0
	for i := 0; i < 2000; i++ {
		tm := float64(i) * 0.1
		d := p.Next(tm)
		if d.Drop {
			t.Fatal("jitter without DropProb dropped a message")
		}
		if d.Delay < 0.05 {
			t.Fatalf("delay %v below base", d.Delay)
		}
		if prev >= 0 && tm+d.Delay < prev {
			reordered = true
		}
		if arr := tm + d.Delay; arr > prev {
			prev = arr
		}
	}
	if !reordered {
		t.Fatal("jitter never reordered messages")
	}
}

// TestDelayStreamIndependentOfDropParameter is the contract behind the
// split RNG streams: sweeping the loss parameter must not perturb the
// latency draws of unrelated messages, or Gilbert–Elliott A/B comparisons
// measure stream aliasing instead of the channel effect.
func TestDelayStreamIndependentOfDropParameter(t *testing.T) {
	delays := func(dropProb float64) []float64 {
		m := Jitter{Base: 0.05, Spread: 0.4, TailProb: 0.15, TailMean: 0.5, DropProb: dropProb}
		p := newProc(t, m, 11)
		var out []float64
		for i := 0; i < 500; i++ {
			out = append(out, p.Next(float64(i)*0.1).Delay)
		}
		return out
	}
	if a, b := delays(0), delays(0.7); !reflect.DeepEqual(a, b) {
		t.Fatal("changing DropProb perturbed the delay stream")
	}
}

func TestReplayProducesStaleDuplicates(t *testing.T) {
	m := Replay{Inner: IID{Delay: 0.2}, Prob: 0.5, ExtraMin: 0.3, ExtraMax: 1.5}
	p := newProc(t, m, 9)
	dups := 0
	for i := 0; i < 4000; i++ {
		d := p.Next(float64(i) * 0.1)
		for _, extra := range d.Dup {
			dups++
			if extra < d.Delay+0.3-1e-12 || extra > d.Delay+1.5+1e-12 {
				t.Fatalf("duplicate latency %v outside [%v, %v]", extra, d.Delay+0.3, d.Delay+1.5)
			}
		}
	}
	if rate := float64(dups) / 4000; math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("duplication rate %.3f, want ≈0.5", rate)
	}
}

func TestScheduleDispatchesByTime(t *testing.T) {
	m := Schedule{Phases: []Phase{
		{Start: 1, Model: None{}},
		{Start: 2, Model: Blackout{}},
		{Start: 3, Model: None{}},
	}}
	p := newProc(t, m, 1)
	for _, tc := range []struct {
		t    float64
		drop bool
	}{{0.5, false}, {1.5, false}, {2.0, true}, {2.9, true}, {3.0, false}, {10, false}} {
		if got := p.Next(tc.t).Drop; got != tc.drop {
			t.Fatalf("t=%v: drop=%v, want %v", tc.t, got, tc.drop)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() []Decision {
		m, err := Preset("worst")
		if err != nil {
			t.Fatal(err)
		}
		p := m.New(rand.New(rand.NewSource(5)), rand.New(rand.NewSource(6)))
		var out []Decision
		for i := 0; i < 300; i++ {
			out = append(out, p.Next(float64(i)*0.05))
		}
		return out
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatal("process not deterministic for equal seeds")
	}
}

func TestBiasDriftRampAndSinusoid(t *testing.T) {
	ramp := BiasDrift{Rate: 0.2, Max: 0.6}.NewSensor(nil)
	if b := ramp.Next(1).Bias; math.Abs(b-0.2) > 1e-12 {
		t.Fatalf("ramp bias at 1s = %v", b)
	}
	if b := ramp.Next(10).Bias; b != 0.6 {
		t.Fatalf("ramp bias not clamped: %v", b)
	}
	sin := BiasDrift{Max: 1, Period: 12}.NewSensor(nil)
	for tm := 0.0; tm < 24; tm += 0.1 {
		if b := sin.Next(tm).Bias; math.Abs(b) > 1 {
			t.Fatalf("sinusoid bias %v outside ±1", b)
		}
	}
	if b := sin.Next(3).Bias; math.Abs(b-1) > 1e-9 {
		t.Fatalf("sinusoid peak = %v, want 1", b)
	}
}

func TestSensorDropoutBursts(t *testing.T) {
	m := SensorDropout{PGoodBad: 0.04, PBadGood: 0.15, DropGood: 0, DropBad: 1}
	p := m.NewSensor(rand.New(rand.NewSource(2)))
	total, runs, runLen := 0, 0, 0
	const n = 30000
	for i := 0; i < n; i++ {
		if p.Next(float64(i)).Drop {
			total++
			runLen++
		} else if runLen > 0 {
			runs++
			runLen = 0
		}
	}
	if total == 0 || runs == 0 {
		t.Fatal("no dropout observed")
	}
	if mean := float64(total) / float64(runs); mean < 3 {
		t.Fatalf("mean dropout burst %.2f — not bursty", mean)
	}
}

func TestSensorStackCombinesAndClamps(t *testing.T) {
	m := SensorStack{Models: []SensorModel{
		BiasDrift{Rate: 10, Max: 0.8},
		BiasDrift{Rate: 10, Max: 0.8},
	}}
	p := m.NewSensor(rand.New(rand.NewSource(1)))
	if b := p.Next(5).Bias; b != 1 {
		t.Fatalf("stacked bias %v, want clamp at 1", b)
	}
}

func TestPresetsAllValid(t *testing.T) {
	for _, name := range PresetNames() {
		m, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	for _, name := range SensorPresetNames() {
		m, err := SensorPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("sensor preset %q invalid: %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := SensorPreset("nope"); err == nil {
		t.Error("unknown sensor preset accepted")
	}
}
