// Package xrand provides a bit-exact reimplementation of Go's math/rand
// generator (the additive lagged-Fibonacci rngSource) whose seeding can be
// batched: SeedMany initializes many independent sources in one pass,
// interleaving their recurrence chains so the CPU pipelines them.
//
// Why this exists: seeding one math/rand source walks a 607-entry bootstrap
// recurrence — three serial modular multiplications per entry — and costs
// ~10µs, which the profile shows is over half of a whole simulation episode
// (each episode derives about eight purpose-specific streams).  Within one
// episode the streams are derived sequentially from the master and there is
// nothing to overlap; across the lanes of a batch, every source is
// independent, so their chains can be interleaved and the per-seed latency
// hidden.  That cross-lane amortization is only sound if a Source-backed
// *rand.Rand draws exactly what a rand.NewSource-backed one would — hence
// the bit-exact replica, pinned by TestSourceMatchesMathRand.
package xrand

const (
	rngLen   = 607
	rngTap   = 273
	rngMax   = 1 << 63
	rngMask  = rngMax - 1
	int32max = (1 << 31) - 1
)

// Source is a drop-in rand.Source64 producing exactly the stream of
// math/rand's rngSource for the same seed.  The zero value is not seeded;
// call Seed (or NewSource / SeedMany) before drawing.
type Source struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

// NewSource returns a seeded Source, equivalent to rand.NewSource.
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// seedrand advances the bootstrap recurrence x[n+1] = 48271·x[n] mod 2³¹−1
// (Schrage's method, as in math/rand).
func seedrand(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// normSeed folds an arbitrary int64 seed into the generator's nonzero
// 31-bit bootstrap domain, exactly as rngSource.Seed does.
func normSeed(seed int64) int32 {
	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return int32(seed)
}

// Seed initializes the generator to the deterministic state rand.NewSource
// would produce for the same seed.
func (s *Source) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap
	x := normSeed(seed)
	for i := -20; i < rngLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = seedrand(x)
			u ^= int64(x) << 20
			x = seedrand(x)
			u ^= int64(x)
			u ^= rngCooked[i]
			s.vec[i] = u
		}
	}
}

// Int63 returns the next non-negative 63-bit integer of the stream.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

// Uint64 returns the next 64-bit value of the stream.
func (s *Source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// seedLanes is how many bootstrap chains SeedMany interleaves per block.
// Each chain is a serial dependency of modular multiplications; eight
// independent chains keep a wide core's multipliers busy without spilling
// the live x values out of registers.
const seedLanes = 8

// SeedMany seeds dst[i] with seeds[i] for every i, producing states
// identical to calling dst[i].Seed(seeds[i]) one by one, but several times
// faster: the bootstrap chains of up to seedLanes sources advance in
// lockstep inside one loop, so their serial multiply latencies overlap.
// The two slices must have equal length.
func SeedMany(dst []*Source, seeds []int64) {
	if len(dst) != len(seeds) {
		panic("xrand: SeedMany length mismatch")
	}
	for base := 0; base < len(dst); base += seedLanes {
		k := len(dst) - base
		if k > seedLanes {
			k = seedLanes
		}
		if k == 1 {
			dst[base].Seed(seeds[base])
			continue
		}
		var x [seedLanes]int32
		for j := 0; j < k; j++ {
			s := dst[base+j]
			s.tap = 0
			s.feed = rngLen - rngTap
			x[j] = normSeed(seeds[base+j])
		}
		// Bootstrap warm-up: the 20 discarded iterations of Seed's loop.
		for i := 0; i < 20; i++ {
			for j := 0; j < k; j++ {
				x[j] = seedrand(x[j])
			}
		}
		for i := 0; i < rngLen; i++ {
			c := rngCooked[i]
			for j := 0; j < k; j++ {
				x0 := seedrand(x[j])
				u := int64(x0) << 40
				x1 := seedrand(x0)
				u ^= int64(x1) << 20
				x2 := seedrand(x1)
				u ^= int64(x2)
				x[j] = x2
				dst[base+j].vec[i] = u ^ c
			}
		}
	}
}
