package xrand

import (
	"math/rand"
	"testing"
)

// seedCases spans the seed-normalization branches (negative, zero, small,
// int32max multiples, large positive/negative) plus a pseudorandom spread.
func seedCases() []int64 {
	cases := []int64{
		0, 1, -1, 2, 42, 89482311,
		int32max, int32max + 1, -int32max, -int32max - 1,
		1 << 40, -(1 << 40), 1<<63 - 1, -(1<<63 - 1),
	}
	meta := rand.New(rand.NewSource(7))
	for len(cases) < 200 {
		cases = append(cases, meta.Int63()-meta.Int63())
	}
	return cases
}

// TestSourceMatchesMathRand pins the bit-exact equivalence law: for any
// seed, a Source produces exactly the Uint64/Int63 stream of
// rand.NewSource, and a Source-backed *rand.Rand draws exactly the same
// Float64/Int63n/NormFloat64 values.  Everything else in this package
// (and the batch engine's seeding fast path) rests on this.
func TestSourceMatchesMathRand(t *testing.T) {
	for _, seed := range seedCases() {
		ours := NewSource(seed)
		ref := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 400; i++ {
			if g, w := ours.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, g, w)
			}
		}

		// Through the *rand.Rand wrapper, mixing derived draw kinds.
		or := rand.New(NewSource(seed))
		rr := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if g, w := or.Float64(), rr.Float64(); g != w {
				t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
			}
			if g, w := or.Int63(), rr.Int63(); g != w {
				t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, g, w)
			}
			if g, w := or.NormFloat64(), rr.NormFloat64(); g != w {
				t.Fatalf("seed %d draw %d: NormFloat64 = %v, want %v", seed, i, g, w)
			}
		}
	}
}

// TestSeedManyMatchesSeed pins the batching law: SeedMany(dst, seeds) is
// state-identical to seeding each source individually, for every block
// size around the interleave width (1, partial block, exact block,
// multiple blocks, ragged tail).
func TestSeedManyMatchesSeed(t *testing.T) {
	all := seedCases()
	for _, n := range []int{1, 2, 5, 8, 9, 16, 24, 31, 64} {
		seeds := all[:n]
		batch := make([]*Source, n)
		for i := range batch {
			batch[i] = &Source{}
		}
		SeedMany(batch, seeds)
		for i, seed := range seeds {
			want := NewSource(seed)
			if *batch[i] != *want {
				t.Fatalf("n=%d source %d (seed %d): SeedMany state differs from Seed", n, i, seed)
			}
		}
	}
}

// TestSeedManyReseeds verifies SeedMany fully overwrites prior state, as
// pooled engines reseed the same sources batch after batch.
func TestSeedManyReseeds(t *testing.T) {
	srcs := []*Source{NewSource(1), NewSource(2), NewSource(3)}
	for _, s := range srcs {
		for i := 0; i < 17; i++ { // advance tap/feed off the seeded state
			s.Uint64()
		}
	}
	SeedMany(srcs, []int64{10, 11, 12})
	for i, s := range srcs {
		if want := NewSource(int64(10 + i)); *s != *want {
			t.Fatalf("source %d: reseeded state differs from fresh Seed", i)
		}
	}
}

func BenchmarkSeedScalar(b *testing.B) {
	s := &Source{}
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedMany8(b *testing.B) {
	srcs := make([]*Source, 8)
	seeds := make([]int64, 8)
	for i := range srcs {
		srcs[i] = &Source{}
		seeds[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SeedMany(srcs, seeds)
	}
}
