package monitor

import (
	"math"
	"testing"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
)

// TestEnvelopeEmergencyNotOK pins the Envelope contract for emergency
// verdicts: no planner command is admissible, only κ_e's.
func TestEnvelopeEmergencyNotOK(t *testing.T) {
	lim := leftturn.DefaultConfig().Ego
	o := Outcome{Emergency: true, Reason: "boundary"}
	if _, _, ok := o.Envelope(lim); ok {
		t.Fatal("emergency verdict admitted a planner command")
	}
}

// TestEnvelopeUnconstrained pins the zero verdict: the envelope is the
// full actuation interval.
func TestEnvelopeUnconstrained(t *testing.T) {
	lim := leftturn.DefaultConfig().Ego
	var o Outcome
	lo, hi, ok := o.Envelope(lim)
	if !ok || lo != lim.AMin || hi != lim.AMax {
		t.Fatalf("unconstrained envelope = [%v, %v] ok=%v, want [%v, %v]", lo, hi, ok, lim.AMin, lim.AMax)
	}
}

// TestEnvelopeDegenerateWidths walks the envelope through degenerate guard
// combinations: contradictory floor/ceiling collapses it (ok=false), an
// exactly-touching pair admits the single point, and guards outside the
// actuation limits never widen it.
func TestEnvelopeDegenerateWidths(t *testing.T) {
	lim := leftturn.DefaultConfig().Ego

	// Contradiction: floor above ceiling.
	o := Outcome{HasFloor: true, Floor: 2, HasCeil: true, Ceil: 1}
	if _, _, ok := o.Envelope(lim); ok {
		t.Fatal("floor > ceiling yielded a non-empty envelope")
	}

	// Zero width: floor equals ceiling — that single command is admissible.
	o = Outcome{HasFloor: true, Floor: 1.5, HasCeil: true, Ceil: 1.5}
	lo, hi, ok := o.Envelope(lim)
	if !ok || lo != 1.5 || hi != 1.5 {
		t.Fatalf("touching guards envelope = [%v, %v] ok=%v, want the point 1.5", lo, hi, ok)
	}

	// Guards looser than the actuation limits must not widen the envelope.
	o = Outcome{HasFloor: true, Floor: lim.AMin - 10, HasCeil: true, Ceil: lim.AMax + 10}
	lo, hi, ok = o.Envelope(lim)
	if !ok || lo != lim.AMin || hi != lim.AMax {
		t.Fatalf("loose guards envelope = [%v, %v] ok=%v, want actuation limits", lo, hi, ok)
	}

	// A floor beyond AMax is an infeasible demand: empty envelope.
	o = Outcome{HasFloor: true, Floor: lim.AMax + 1}
	if _, _, ok := o.Envelope(lim); ok {
		t.Fatal("floor above AMax yielded a non-empty envelope")
	}
}

// TestEnvelopeAtBoundaryBand probes Assess right at the X_b slack edge
// with an overlapping window: just inside the (margin-widened) band the
// verdict is an emergency hand-off with no admissible envelope; just
// outside it κ_n keeps the full actuation interval.
func TestEnvelopeAtBoundaryBand(t *testing.T) {
	m := newMonitor()
	c := m.Cfg
	lim := c.Ego
	v := 8.0
	band := c.BoundaryThreshold(v) + c.SafetyMargin
	w := interval.New(0, math.Inf(1)) // always intersects, inflation-proof

	// Slack a hair below the band edge: boundary emergency.
	inside := dynamics.State{P: c.Geometry.PF - c.BrakingDistance(v) - (band - 1e-6), V: v}
	out := m.Assess(inside, w)
	if !out.Emergency || out.Reason != "boundary" {
		t.Fatalf("inside-band verdict = %+v", out)
	}
	if _, _, ok := out.Envelope(lim); ok {
		t.Fatal("boundary verdict admitted a planner command")
	}

	// Slack a hair above the band edge: safe, full envelope.
	outside := dynamics.State{P: c.Geometry.PF - c.BrakingDistance(v) - (band + 1e-6), V: v}
	out = m.Assess(outside, w)
	if out.Emergency {
		t.Fatalf("outside-band verdict = %+v", out)
	}
	lo, hi, ok := out.Envelope(lim)
	if !ok || lo != lim.AMin || hi != lim.AMax {
		t.Fatalf("outside-band envelope = [%v, %v] ok=%v, want actuation limits", lo, hi, ok)
	}
}

// TestAssessEmptyIntersection pins the no-conflict cases: an empty
// oncoming window, and a committed ego whose own window is empty (already
// past the back line), both hand κ_n the full envelope.
func TestAssessEmptyIntersection(t *testing.T) {
	m := newMonitor()
	c := m.Cfg
	lim := c.Ego

	// Committed (negative slack) but the oncoming window is empty: no
	// conflict exists, no commitment guard applies.
	committed := dynamics.State{P: 0, V: 12}
	if c.Slack(committed) >= 0 {
		t.Fatal("setup: expected committed state")
	}
	out := m.Assess(committed, interval.Empty())
	if out.Emergency || out.HasFloor || out.HasCeil {
		t.Fatalf("empty-window verdict = %+v", out)
	}
	if lo, hi, ok := out.Envelope(lim); !ok || lo != lim.AMin || hi != lim.AMax {
		t.Fatalf("empty-window envelope = [%v, %v] ok=%v", lo, hi, ok)
	}

	// Ego already past the back line: its own window is empty, so even an
	// imminent oncoming window cannot intersect.
	past := dynamics.State{P: c.Geometry.PB + 1, V: 8}
	out = m.Assess(past, interval.New(0, 5))
	if out.Emergency || out.HasFloor || out.HasCeil {
		t.Fatalf("past-zone verdict = %+v", out)
	}
}

// TestApplyBothGuards pins Apply with a floor and a ceiling active at
// once: below clamps up, above clamps down, inside passes through, and a
// degenerate floor==ceiling pins every command to the point.
func TestApplyBothGuards(t *testing.T) {
	o := Outcome{HasFloor: true, Floor: -1, HasCeil: true, Ceil: 2}
	if got := o.Apply(-5); got != -1 {
		t.Fatalf("Apply(-5) = %v, want -1", got)
	}
	if got := o.Apply(5); got != 2 {
		t.Fatalf("Apply(5) = %v, want 2", got)
	}
	if got := o.Apply(0.5); got != 0.5 {
		t.Fatalf("Apply(0.5) = %v, want pass-through", got)
	}
	o = Outcome{HasFloor: true, Floor: 1, HasCeil: true, Ceil: 1}
	for _, a := range []float64{-3, 1, 3} {
		if got := o.Apply(a); got != 1 {
			t.Fatalf("degenerate Apply(%v) = %v, want 1", a, got)
		}
	}
}

// TestHoldSlackTuning pins the configurable hold band and release margin:
// a stop inside a widened band holds, the same stop is released under the
// default band, and the release decision flips exactly around
// clearFast + ReleaseMargin.
func TestHoldSlackTuning(t *testing.T) {
	cfg := leftturn.DefaultConfig()
	mDefault := Monitor{Cfg: cfg}
	mWide := Monitor{Cfg: cfg, HoldSlack: 3}

	// Stopped 2 m short of the line: outside the default 0.5 m band, inside
	// the widened 3 m band.
	ego := dynamics.State{P: cfg.Geometry.PF - 2, V: 0}
	w := interval.New(1, math.Inf(1))
	if out := mDefault.Assess(ego, w); out.Emergency && out.Reason == "hold" {
		t.Fatalf("default band held 2 m from the line: %+v", out)
	}
	if out := mWide.Assess(ego, w); !out.Emergency || out.Reason != "hold" {
		t.Fatalf("widened band did not hold: %+v", out)
	}

	// Release flips around clearFast + ReleaseMargin.
	near := dynamics.State{P: cfg.Geometry.PF - 0.2, V: 0}
	clearFast := dynamics.TimeToReach(cfg.Geometry.PB-near.P, 0, cfg.Ego.AMax, cfg.Ego.VMax)
	release := 1.5
	m := Monitor{Cfg: cfg, ReleaseMargin: release}
	held := m.Assess(near, interval.New(clearFast+release-1e-6, math.Inf(1)))
	if !held.Emergency || held.Reason != "hold" {
		t.Fatalf("conflict inside the release margin did not hold: %+v", held)
	}
	released := m.Assess(near, interval.New(clearFast+release+1e-3, math.Inf(1)))
	if released.Emergency && released.Reason == "hold" {
		t.Fatalf("conflict beyond the release margin still held: %+v", released)
	}
}

// TestInflationZeroValueDefaults pins the tuning contract: a zero
// WindowInflation selects the package default (the near-miss state that
// only the inflated test catches escalates under both).
func TestInflationZeroValueDefaults(t *testing.T) {
	cfg := leftturn.DefaultConfig()
	ego := dynamics.State{P: 0, V: 11}
	egoW := cfg.EgoWindow(ego)
	w := interval.New(egoW.Hi+DefaultWindowInflation/2, egoW.Hi+10)
	zero := Monitor{Cfg: cfg}.Assess(ego, w)
	explicit := Monitor{Cfg: cfg, WindowInflation: DefaultWindowInflation}.Assess(ego, w)
	if zero != explicit {
		t.Fatalf("zero-value tuning diverged: %+v vs %+v", zero, explicit)
	}
	if !zero.Emergency {
		t.Fatalf("near-miss state did not escalate under the default inflation: %+v", zero)
	}
}
