// Package monitor implements the paper's runtime monitor (§III-C): every
// control step it estimates the unsafe set from the filtered information
// and decides whether the compound planner must hand control to the
// emergency planner — which, per Eq. 3, happens exactly when the current
// state lies in the boundary safe set X_b.
//
// Beyond the paper's slack-band formulation of X_b, the monitor adds two
// robustifications needed for a watertight *discrete-time* guarantee (the
// paper's §IV derivation only bounds the slack recursion and implicitly
// assumes the window-intersection term varies slowly):
//
//  1. The oncoming window used in the X_b membership test is inflated by a
//     small time margin, so an overlap that materializes within the next
//     step is already visible this step.
//  2. Once the ego is committed (negative slack — it can no longer stop
//     before the zone), the monitor constrains the NN planner's output to
//     preserve the disjointness that justified committing: an acceleration
//     floor when passing before the oncoming car (clear the back line
//     before its earliest possible arrival) and a ceiling when passing
//     after it (do not reach the front line before its latest possible
//     exit).  Without this, a pathological κ_n could brake mid-crossing
//     and create an overlap that no longer passes through X_b.
package monitor

import (
	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
)

// DefaultWindowInflation is the time margin (seconds, each side) applied to
// the conservative oncoming window in the X_b membership test.
const DefaultWindowInflation = 0.25

// DefaultHoldSlack is the slack below which a stopped ego with a live
// conflict is held by the emergency planner instead of being handed back
// to κ_n.  Without the hold, an insistent κ_n re-accelerates from the stop
// every step and the resulting κ_n/κ_e oscillation creeps the vehicle a few
// millimetres forward per cycle — eventually across the front line, where
// κ_e's escape mode would drive it into the conflict.  The emergency
// planner stops the vehicle within StopMargin of the line, well inside
// this band.
const DefaultHoldSlack = 0.5

// DefaultReleaseMargin is the spare time (seconds) demanded between the
// ego's full-throttle clearing of the zone and the oncoming vehicle's
// earliest possible arrival before a held vehicle is released to κ_n.
const DefaultReleaseMargin = 0.3

// Outcome is the monitor's verdict for one control step.
type Outcome struct {
	// Emergency is true when the emergency planner must take over.
	Emergency bool
	// Reason explains an emergency hand-off ("boundary", "unsafe",
	// "infeasible-commit"); empty otherwise.
	Reason string

	// HasFloor/Floor constrain the NN planner's acceleration from below
	// (committed, passing before the oncoming vehicle).
	HasFloor bool
	Floor    float64
	// HasCeil/Ceil constrain it from above (committed, passing after).
	HasCeil bool
	Ceil    float64
}

// Monitor evaluates X_b membership, the stopped-at-line hold, and the
// commitment guards.  Zero-valued tuning fields select the package
// defaults; set WindowInflation negative to disable inflation
// (paper-faithful ablation).
type Monitor struct {
	Cfg             leftturn.Config
	WindowInflation float64
	HoldSlack       float64
	ReleaseMargin   float64
}

// New returns a Monitor for the scenario configuration.
func New(cfg leftturn.Config) Monitor { return Monitor{Cfg: cfg} }

func (m Monitor) inflation() float64 {
	if m.WindowInflation == 0 {
		return DefaultWindowInflation
	}
	if m.WindowInflation < 0 {
		return 0
	}
	return m.WindowInflation
}

// Assess inspects the current ego state against the conservative
// (sound) oncoming window and returns the verdict.
func (m Monitor) Assess(ego dynamics.State, wCons interval.Interval) Outcome {
	c := m.Cfg
	// Inflate the window for the membership tests (clip at zero: the past
	// cannot conflict).
	wTest := wCons
	if !wTest.IsEmpty() {
		wTest = wTest.Expand(m.inflation())
		if wTest.Lo < 0 {
			wTest.Lo = 0
		}
	}
	if c.InUnsafeSet(ego, wTest) {
		// Defensive: with sound estimates and the guards below this state
		// is unreachable, but κ_e is still the best action from it.
		return Outcome{Emergency: true, Reason: "unsafe"}
	}
	if c.InBoundarySafeSet(ego, wTest) {
		return Outcome{Emergency: true, Reason: "boundary"}
	}
	if m.shouldHold(ego, wCons) {
		return Outcome{Emergency: true, Reason: "hold"}
	}

	// Commitment guards: slack < 0 with a live conflict window.
	if c.Slack(ego) >= 0 || wCons.IsEmpty() || ego.P > c.Geometry.PB {
		return Outcome{}
	}
	egoWin := c.EgoWindow(ego)
	if egoWin.IsEmpty() {
		return Outcome{}
	}
	switch {
	case egoWin.Hi < wCons.Lo:
		// Passing before: keep clearing the back line ahead of the
		// earliest possible oncoming arrival.
		floor, ok := c.MinAccelToClear(ego, wCons.Lo)
		if !ok {
			return Outcome{Emergency: true, Reason: "infeasible-commit"}
		}
		return Outcome{HasFloor: true, Floor: floor}
	case egoWin.Lo > wCons.Hi:
		// Passing after: do not arrive before the latest possible exit.
		ceil, ok := c.MaxAccelToDelay(ego, wCons.Hi)
		if !ok {
			return Outcome{Emergency: true, Reason: "infeasible-commit"}
		}
		return Outcome{HasCeil: true, Ceil: ceil}
	default:
		// Overlapping with negative slack is the unsafe set, handled above
		// for the inflated window; reaching here means only the inflation
		// margin overlaps — treat like the boundary case.
		return Outcome{Emergency: true, Reason: "boundary"}
	}
}

// shouldHold reports whether a (near-)stopped ego close to the front line
// must stay under κ_e: it is released only when even a full-throttle start
// clears the zone ReleaseMargin before the oncoming vehicle could arrive.
func (m Monitor) shouldHold(ego dynamics.State, wCons interval.Interval) bool {
	if ego.V > 1e-9 || wCons.IsEmpty() || ego.P > m.Cfg.Geometry.PF {
		return false
	}
	holdSlack := m.HoldSlack
	if holdSlack == 0 {
		holdSlack = DefaultHoldSlack
	}
	if m.Cfg.Geometry.PF-ego.P >= holdSlack {
		return false
	}
	release := m.ReleaseMargin
	if release == 0 {
		release = DefaultReleaseMargin
	}
	clearFast := dynamics.TimeToReach(m.Cfg.Geometry.PB-ego.P, 0, m.Cfg.Ego.AMax, m.Cfg.Ego.VMax)
	return wCons.Lo <= clearFast+release
}

// Envelope returns the acceleration interval the verdict admits for a
// non-emergency command: the actuation limits narrowed by the commitment
// guards.  ok is false when the verdict is an emergency hand-off — no
// planner command is admissible from that state, only κ_e's.  The
// compute-fault guard validates every executed command against this
// interval: in the committed regime (negative slack) Apply silently
// clamps κ_n's output, so a replayed or corrupted command that merely
// sits inside the actuation limits can still break the window
// disjointness the commitment relies on.
func (o Outcome) Envelope(lim dynamics.Limits) (lo, hi float64, ok bool) {
	if o.Emergency {
		return 0, 0, false
	}
	lo, hi = lim.AMin, lim.AMax
	if o.HasFloor && o.Floor > lo {
		lo = o.Floor
	}
	if o.HasCeil && o.Ceil < hi {
		hi = o.Ceil
	}
	return lo, hi, lo <= hi
}

// Apply clamps a planner-proposed acceleration to the outcome's guards.
func (o Outcome) Apply(a float64) float64 {
	if o.HasFloor && a < o.Floor {
		a = o.Floor
	}
	if o.HasCeil && a > o.Ceil {
		a = o.Ceil
	}
	return a
}
