package monitor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
)

func newMonitor() Monitor { return New(leftturn.DefaultConfig()) }

func TestFarStateHandsToNN(t *testing.T) {
	m := newMonitor()
	out := m.Assess(dynamics.State{P: -30, V: 8}, interval.New(3, math.Inf(1)))
	if out.Emergency || out.HasFloor || out.HasCeil {
		t.Fatalf("far state verdict = %+v", out)
	}
}

func TestBoundaryTriggersEmergency(t *testing.T) {
	m := newMonitor()
	c := m.Cfg
	v := 8.0
	// Slack in the middle of the widened band, overlapping window.
	p := c.Geometry.PF - c.BrakingDistance(v) - c.BoundaryThreshold(v)/2
	ego := dynamics.State{P: p, V: v}
	out := m.Assess(ego, interval.New(0, math.Inf(1)))
	if !out.Emergency || out.Reason != "boundary" {
		t.Fatalf("boundary verdict = %+v", out)
	}
}

func TestDisjointWindowSkipsBoundary(t *testing.T) {
	m := newMonitor()
	c := m.Cfg
	v := 8.0
	p := c.Geometry.PF - c.BrakingDistance(v) - c.BoundaryThreshold(v)/2
	ego := dynamics.State{P: p, V: v}
	// Oncoming window far in the future (beyond inflation): pass-before is
	// sanctioned, no emergency, but a commitment check happens only once
	// slack < 0 — here slack ≥ 0, so κ_n runs unconstrained.
	out := m.Assess(ego, interval.New(100, 200))
	if out.Emergency {
		t.Fatalf("disjoint boundary verdict = %+v", out)
	}
}

func TestUnsafeTriggersEmergency(t *testing.T) {
	m := newMonitor()
	// Committed, overlapping windows.
	ego := dynamics.State{P: 0, V: 11}
	egoW := m.Cfg.EgoWindow(ego)
	out := m.Assess(ego, egoW)
	if !out.Emergency || out.Reason != "unsafe" {
		t.Fatalf("unsafe verdict = %+v", out)
	}
}

func TestCommittedPassBeforeGetsFloor(t *testing.T) {
	m := newMonitor()
	// Fast ego, committed (negative slack), oncoming arrival well after the
	// ego's exit window: floor keeps the commitment.
	ego := dynamics.State{P: 0, V: 12}
	if m.Cfg.Slack(ego) >= 0 {
		t.Fatal("setup: expected committed state")
	}
	out := m.Assess(ego, interval.New(5, math.Inf(1)))
	if out.Emergency {
		t.Fatalf("pass-before commit escalated: %+v", out)
	}
	if !out.HasFloor {
		t.Fatalf("expected floor: %+v", out)
	}
	// The floor must be admissible and applying it keeps clearing feasible.
	if out.Floor < m.Cfg.Ego.AMin-1e-9 || out.Floor > m.Cfg.Ego.AMax+1e-9 {
		t.Fatalf("floor %v outside envelope", out.Floor)
	}
	if a := out.Apply(m.Cfg.Ego.AMin); a < out.Floor {
		t.Fatal("Apply did not clamp to floor")
	}
}

func TestCommittedPassAfterGetsCeil(t *testing.T) {
	m := newMonitor()
	// Committed ego crawling toward the line; oncoming vehicle surely gone
	// before the ego arrives at current speed... construct: ego at p=4,
	// v=5: slack = 5−25/12−4 < 0 committed; ego window = [0.2, 2.2];
	// oncoming window [0, 0.1] (about to leave).
	ego := dynamics.State{P: 2, V: 8} // slack = 3 − 64/12 < 0, window [0.375, 1.625]
	if m.Cfg.Slack(ego) >= 0 {
		t.Fatal("setup: expected committed state")
	}
	out := m.Assess(ego, interval.New(0, 0.1)) // gap to ego window exceeds the inflation
	if out.Emergency {
		t.Fatalf("pass-after commit escalated: %+v", out)
	}
	if !out.HasCeil {
		t.Fatalf("expected ceiling: %+v", out)
	}
	if a := out.Apply(m.Cfg.Ego.AMax); a > out.Ceil {
		t.Fatal("Apply did not clamp to ceiling")
	}
}

func TestInfeasibleCommitEscalates(t *testing.T) {
	m := newMonitor()
	// Committed but cannot clear before an (almost) immediate arrival and
	// cannot delay past it either — yet windows don't overlap because the
	// ego window starts after the oncoming window ends... hard to reach
	// geometrically; instead test the pass-before infeasibility: slow
	// committed ego with the oncoming car arriving soon after the ego
	// window ends.
	ego := dynamics.State{P: 4.9, V: 1} // slack = 0.1 − 1/12 − ... ≈ 0.017 ≥ 0? compute below
	if m.Cfg.Slack(ego) >= 0 {
		// Make it committed.
		ego.V = 3 // db = 0.75 > gap 0.1 → slack < 0
	}
	if m.Cfg.Slack(ego) >= 0 {
		t.Fatal("setup: expected committed state")
	}
	egoW := m.Cfg.EgoWindow(ego)
	// Oncoming arrives just after the ego window ends but before the ego
	// could clear even flat out (window very tight).
	w := interval.New(egoW.Hi+0.3, egoW.Hi+0.4)
	out := m.Assess(ego, w)
	// Whatever branch fires, the monitor must not hand unconstrained
	// control to κ_n here.
	if !out.Emergency && !out.HasFloor && !out.HasCeil {
		t.Fatalf("marginal commit left unconstrained: %+v", out)
	}
}

func TestHoldAtLine(t *testing.T) {
	m := newMonitor()
	c := m.Cfg
	// Stopped just before the line with the oncoming car arriving sooner
	// than a flat-out start could clear.
	ego := dynamics.State{P: c.Geometry.PF - 0.2, V: 0}
	out := m.Assess(ego, interval.New(1, math.Inf(1)))
	if !out.Emergency || out.Reason != "hold" {
		t.Fatalf("hold verdict = %+v", out)
	}
	// Released when the conflict is comfortably far away.
	out = m.Assess(ego, interval.New(30, math.Inf(1)))
	if out.Emergency {
		t.Fatalf("far conflict should release the hold: %+v", out)
	}
	// No hold when stopped far from the line.
	ego = dynamics.State{P: c.Geometry.PF - 3, V: 0}
	out = m.Assess(ego, interval.New(1, math.Inf(1)))
	if out.Emergency {
		t.Fatalf("hold fired far from the line: %+v", out)
	}
	// No hold while moving.
	ego = dynamics.State{P: c.Geometry.PF - 0.2, V: 2}
	out = m.Assess(ego, interval.New(1, math.Inf(1)))
	if out.Emergency && out.Reason == "hold" {
		t.Fatal("hold fired while moving")
	}
}

func TestEmptyWindowNeverEmergency(t *testing.T) {
	m := newMonitor()
	for _, ego := range []dynamics.State{
		{P: -30, V: 8}, {P: 0, V: 12}, {P: 4.9, V: 0}, {P: 10, V: 3},
	} {
		out := m.Assess(ego, interval.Empty())
		if out.Emergency {
			t.Fatalf("empty window escalated for %+v: %+v", ego, out)
		}
	}
}

func TestWindowInflationConfigurable(t *testing.T) {
	cfg := leftturn.DefaultConfig()
	mDefault := Monitor{Cfg: cfg}
	mOff := Monitor{Cfg: cfg, WindowInflation: -1}
	// A committed state whose ego window misses the oncoming window by
	// less than the default inflation.
	ego := dynamics.State{P: 0, V: 11}
	egoW := cfg.EgoWindow(ego)
	w := interval.New(egoW.Hi+DefaultWindowInflation/2, egoW.Hi+10)
	od := mDefault.Assess(ego, w)
	oo := mOff.Assess(ego, w)
	if !od.Emergency {
		t.Fatalf("inflated monitor should escalate: %+v", od)
	}
	if oo.Emergency {
		t.Fatalf("uninflated monitor should use the commit guard instead: %+v", oo)
	}
}

func TestOutcomeApplyNoGuards(t *testing.T) {
	var o Outcome
	if o.Apply(1.23) != 1.23 {
		t.Fatal("unconstrained Apply changed the value")
	}
}

// Property: the full compound policy induced by the monitor — κ_e on
// emergency, a worst-case κ_n clamped by the guards otherwise — never
// collides against any admissible oncoming behaviour when the oncoming
// window is computed from exact knowledge.  This is the heart of the
// paper's safety theorem, checked end to end at the monitor level with an
// adversarially reckless κ_n (always AMax).
func TestQuickMonitorSafetyWithRecklessNN(t *testing.T) {
	c := leftturn.DefaultConfig()
	m := New(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ego := c.EgoInit
		onc := dynamics.State{P: -40 + rng.Float64()*9.5, V: 5 + rng.Float64()*10}
		var oncA float64
		for i := 0; i < 800; i++ {
			w := c.ConservativeWindow(leftturn.ExactEstimate(onc, oncA))
			out := m.Assess(ego, w)
			var a float64
			if out.Emergency {
				a = c.EmergencyAccel(ego)
			} else {
				a = out.Apply(c.Ego.AMax) // reckless κ_n
			}
			ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
			ba := -3 + rng.Float64()*5.5
			onc, oncA = dynamics.Step(onc, ba, c.DtC, c.Oncoming)
			if c.Collision(ego, onc) {
				return false
			}
			if c.ReachedTarget(ego) {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a pathological braking κ_n (always AMin), the monitor's
// commitment floor must still prevent collisions.
func TestQuickMonitorSafetyWithBrakingNN(t *testing.T) {
	c := leftturn.DefaultConfig()
	m := New(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ego := c.EgoInit
		onc := dynamics.State{P: -40 + rng.Float64()*9.5, V: 5 + rng.Float64()*10}
		var oncA float64
		for i := 0; i < 800; i++ {
			w := c.ConservativeWindow(leftturn.ExactEstimate(onc, oncA))
			out := m.Assess(ego, w)
			var a float64
			if out.Emergency {
				a = c.EmergencyAccel(ego)
			} else {
				a = out.Apply(c.Ego.AMin) // pathological κ_n
			}
			ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
			ba := -3 + rng.Float64()*5.5
			onc, oncA = dynamics.Step(onc, ba, c.DtC, c.Oncoming)
			if c.Collision(ego, onc) {
				return false
			}
			if c.ReachedTarget(ego) {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
