package interval

import (
	"math/rand"
	"testing"
)

// Property tests for the slice kernels.  The defining law — checked per
// lane over ~200 random batches — is that a batched op over N lanes equals
// N scalar ops; the scalar laws (inclusion soundness, monotonicity) then
// transfer for free, but the soundness properties are re-checked directly
// on the batched outputs as a belt-and-braces guard against a kernel that
// drifts from its scalar twin.

// drawLanes returns a random batch of non-empty intervals with the same
// occasional degeneracies as drawInterval.
func drawLanes(rng *rand.Rand, n int) []Interval {
	out := make([]Interval, n)
	for i := range out {
		out[i] = drawInterval(rng)
	}
	return out
}

func drawLaneCount(rng *rand.Rand) int { return 1 + rng.Intn(64) }

func TestPropAddSlicesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for i := 0; i < propCases; i++ {
		n := drawLaneCount(rng)
		a, b := drawLanes(rng, n), drawLanes(rng, n)
		dst := make([]Interval, n)
		AddSlices(dst, a, b)
		for l := 0; l < n; l++ {
			if dst[l] != a[l].Add(b[l]) {
				t.Fatalf("lane %d: AddSlices %v ≠ scalar %v", l, dst[l], a[l].Add(b[l]))
			}
			x, y := drawIn(rng, a[l]), drawIn(rng, b[l])
			if !dst[l].Contains(x + y) {
				t.Fatalf("lane %d: %v + %v = %v does not contain %v", l, a[l], b[l], dst[l], x+y)
			}
		}
	}
}

func TestPropIntersectSlicesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for i := 0; i < propCases; i++ {
		n := drawLaneCount(rng)
		a, b := drawLanes(rng, n), drawLanes(rng, n)
		dst := make([]Interval, n)
		IntersectSlices(dst, a, b)
		for l := 0; l < n; l++ {
			if dst[l] != a[l].Intersect(b[l]) {
				t.Fatalf("lane %d: IntersectSlices %v ≠ scalar %v", l, dst[l], a[l].Intersect(b[l]))
			}
			// Inclusion: the intersection is inside both operands.
			if !dst[l].IsEmpty() && (!a[l].ContainsInterval(dst[l]) || !b[l].ContainsInterval(dst[l])) {
				t.Fatalf("lane %d: %v ∩ %v = %v escapes an operand", l, a[l], b[l], dst[l])
			}
		}
	}
}

func TestPropExpandSlicesMatchesScalarAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for i := 0; i < propCases; i++ {
		n := drawLaneCount(rng)
		src := drawLanes(rng, n)
		r := rng.Float64() * 3
		dst := make([]Interval, n)
		ExpandSlices(dst, src, r)
		for l := 0; l < n; l++ {
			if dst[l] != src[l].Expand(r) {
				t.Fatalf("lane %d: ExpandSlices %v ≠ scalar %v", l, dst[l], src[l].Expand(r))
			}
			// Monotone: growing by r ≥ 0 preserves inclusion per lane.
			if !dst[l].ContainsInterval(src[l]) {
				t.Fatalf("lane %d: %v.Expand(%v) = %v lost inclusion", l, src[l], r, dst[l])
			}
		}
	}
}

func TestPropContainsSlicesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	for i := 0; i < propCases; i++ {
		n := drawLaneCount(rng)
		ivs := drawLanes(rng, n)
		xs := make([]float64, n)
		for l := range xs {
			if rng.Intn(2) == 0 {
				xs[l] = drawIn(rng, ivs[l]) // inside
			} else {
				xs[l] = ivs[l].Hi + 1 + rng.Float64() // outside
			}
		}
		dst := make([]bool, n)
		ContainsSlices(dst, ivs, xs)
		for l := 0; l < n; l++ {
			if dst[l] != ivs[l].Contains(xs[l]) {
				t.Fatalf("lane %d: ContainsSlices(%v, %v) = %v ≠ scalar", l, ivs[l], xs[l], dst[l])
			}
		}
	}
}

func TestPropWidthSlicesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	for i := 0; i < propCases; i++ {
		n := drawLaneCount(rng)
		ivs := drawLanes(rng, n)
		dst := make([]float64, n)
		WidthSlices(dst, ivs)
		for l := 0; l < n; l++ {
			if dst[l] != ivs[l].Width() {
				t.Fatalf("lane %d: WidthSlices %v ≠ scalar %v", l, dst[l], ivs[l].Width())
			}
			if dst[l] < 0 {
				t.Fatalf("lane %d: negative width %v", l, dst[l])
			}
		}
	}
}

func TestSliceKernelsPanicOnLaneMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSlices accepted mismatched lane counts")
		}
	}()
	AddSlices(make([]Interval, 2), make([]Interval, 3), make([]Interval, 2))
}
