package interval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	iv := New(-1, 2)
	if iv.Lo != -1 || iv.Hi != 2 {
		t.Fatalf("New(-1,2) = %v", iv)
	}
	if iv.IsEmpty() {
		t.Fatal("non-empty interval reported empty")
	}
	if got := iv.Width(); got != 3 {
		t.Fatalf("Width = %v, want 3", got)
	}
	if got := iv.Mid(); got != 0.5 {
		t.Fatalf("Mid = %v, want 0.5", got)
	}
}

func TestPoint(t *testing.T) {
	p := Point(3.5)
	if !p.IsPoint() || p.Width() != 0 || !p.Contains(3.5) {
		t.Fatalf("Point(3.5) = %v", p)
	}
}

func TestEmpty(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() not empty")
	}
	if e.Width() != 0 {
		t.Fatalf("empty Width = %v", e.Width())
	}
	if !math.IsNaN(e.Mid()) {
		t.Fatalf("empty Mid = %v, want NaN", e.Mid())
	}
	if e.Contains(0) {
		t.Fatal("empty interval contains 0")
	}
}

func TestEntire(t *testing.T) {
	ent := Entire()
	if !ent.Contains(0) || !ent.Contains(math.MaxFloat64) || !ent.Contains(-math.MaxFloat64) {
		t.Fatal("Entire does not contain reals")
	}
}

func TestMustNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"reversed": func() { MustNew(2, 1) },
		"nan-lo":   func() { MustNew(math.NaN(), 1) },
		"nan-hi":   func() { MustNew(0, math.NaN()) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestNewReversedIsEmpty(t *testing.T) {
	if !New(2, 1).IsEmpty() {
		t.Fatal("New(2,1) should be empty")
	}
}

func TestContains(t *testing.T) {
	iv := New(0, 10)
	cases := []struct {
		x    float64
		want bool
	}{
		{0, true}, {10, true}, {5, true}, {-0.001, false}, {10.001, false},
	}
	for _, c := range cases {
		if got := iv.Contains(c.x); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	big := New(0, 10)
	if !big.ContainsInterval(New(2, 3)) {
		t.Error("[0,10] should contain [2,3]")
	}
	if !big.ContainsInterval(big) {
		t.Error("interval should contain itself")
	}
	if big.ContainsInterval(New(-1, 3)) {
		t.Error("[0,10] should not contain [-1,3]")
	}
	if !big.ContainsInterval(Empty()) {
		t.Error("every interval contains the empty interval")
	}
	if Empty().ContainsInterval(big) {
		t.Error("empty interval contains nothing nonempty")
	}
}

func TestIntersect(t *testing.T) {
	a := New(0, 5)
	b := New(3, 8)
	got := a.Intersect(b)
	if got.Lo != 3 || got.Hi != 5 {
		t.Fatalf("Intersect = %v, want [3,5]", got)
	}
	if !a.Intersects(b) {
		t.Fatal("a and b should intersect")
	}
	c := New(6, 7)
	if !a.Intersect(c).IsEmpty() || a.Intersects(c) {
		t.Fatal("disjoint intervals reported intersecting")
	}
	// Touching endpoints intersect in a point — matters for the unsafe-set
	// window test where a grazing pass is still a conflict.
	d := New(5, 9)
	if !a.Intersects(d) {
		t.Fatal("touching intervals should intersect")
	}
}

func TestHull(t *testing.T) {
	got := New(0, 1).Hull(New(4, 5))
	if got.Lo != 0 || got.Hi != 5 {
		t.Fatalf("Hull = %v, want [0,5]", got)
	}
	if got := Empty().Hull(New(1, 2)); got.Lo != 1 || got.Hi != 2 {
		t.Fatalf("Hull with empty = %v", got)
	}
	if got := New(1, 2).Hull(Empty()); got.Lo != 1 || got.Hi != 2 {
		t.Fatalf("Hull with empty (rhs) = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	a := New(1, 2)
	b := New(-3, 4)
	if got := a.Add(b); got.Lo != -2 || got.Hi != 6 {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got.Lo != -3 || got.Hi != 5 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Neg(); got.Lo != -2 || got.Hi != -1 {
		t.Errorf("Neg = %v", got)
	}
	if got := a.AddScalar(10); got.Lo != 11 || got.Hi != 12 {
		t.Errorf("AddScalar = %v", got)
	}
	if got := a.Scale(-2); got.Lo != -4 || got.Hi != -2 {
		t.Errorf("Scale(-2) = %v", got)
	}
	if got := a.Scale(3); got.Lo != 3 || got.Hi != 6 {
		t.Errorf("Scale(3) = %v", got)
	}
	if got := a.Mul(b); got.Lo != -6 || got.Hi != 8 {
		t.Errorf("Mul = %v", got)
	}
}

func TestEmptyPropagation(t *testing.T) {
	e := Empty()
	a := New(1, 2)
	ops := map[string]Interval{
		"Add":       a.Add(e),
		"Sub":       e.Sub(a),
		"Mul":       a.Mul(e),
		"Intersect": a.Intersect(e),
		"Neg":       e.Neg(),
		"Scale":     e.Scale(2),
		"AddScalar": e.AddScalar(1),
	}
	for name, got := range ops {
		if !got.IsEmpty() {
			t.Errorf("%s with empty operand = %v, want empty", name, got)
		}
	}
}

func TestExpand(t *testing.T) {
	iv := New(1, 3).Expand(0.5)
	if iv.Lo != 0.5 || iv.Hi != 3.5 {
		t.Fatalf("Expand = %v", iv)
	}
	if got := New(1, 2).Expand(-1); !got.IsEmpty() {
		t.Fatalf("over-shrunk interval should be empty, got %v", got)
	}
}

func TestClampTo(t *testing.T) {
	got := New(-5, 20).ClampTo(0, 12)
	if got.Lo != 0 || got.Hi != 12 {
		t.Fatalf("ClampTo = %v", got)
	}
}

func TestClamp(t *testing.T) {
	iv := New(0, 10)
	if iv.Clamp(-1) != 0 || iv.Clamp(11) != 10 || iv.Clamp(5) != 5 {
		t.Fatal("Clamp wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp on empty should panic")
		}
	}()
	Empty().Clamp(0)
}

func TestString(t *testing.T) {
	if got := New(1, 2).String(); got != "[1, 2]" {
		t.Fatalf("String = %q", got)
	}
	if got := Empty().String(); got != "∅" {
		t.Fatalf("empty String = %q", got)
	}
}

// genInterval builds a non-empty interval from two arbitrary floats, with
// magnitudes bounded so that sums and products stay finite.
func genInterval(a, b float64) Interval {
	clean := func(x, def float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return def
		}
		return math.Mod(x, 1e6)
	}
	a = clean(a, 0)
	b = clean(b, 1)
	return New(math.Min(a, b), math.Max(a, b))
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		x, y := genInterval(a, b), genInterval(c, d)
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulCommutative(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		x, y := genInterval(a, b), genInterval(c, d)
		return x.Mul(y) == y.Mul(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectSubset(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		x, y := genInterval(a, b), genInterval(c, d)
		got := x.Intersect(y)
		return x.ContainsInterval(got) && y.ContainsInterval(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHullSuperset(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		x, y := genInterval(a, b), genInterval(c, d)
		h := x.Hull(y)
		return h.ContainsInterval(x) && h.ContainsInterval(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Inclusion monotonicity is the property that makes interval computations
// sound: evaluating on point inputs inside the operand intervals yields a
// value inside the result interval.
func TestQuickInclusionAdd(t *testing.T) {
	f := func(a, b, c, d, s, u float64) bool {
		x, y := genInterval(a, b), genInterval(c, d)
		if math.IsNaN(s) || math.IsNaN(u) {
			return true
		}
		px := x.Lo + math.Abs(math.Mod(s, 1))*(x.Hi-x.Lo)
		py := y.Lo + math.Abs(math.Mod(u, 1))*(y.Hi-y.Lo)
		if math.IsNaN(px) || math.IsNaN(py) || math.IsInf(px, 0) || math.IsInf(py, 0) {
			return true
		}
		sum := x.Add(y)
		// Allow a little float slack at the boundary.
		return sum.Expand(1e-9 * (1 + math.Abs(px+py))).Contains(px + py)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNegInvolution(t *testing.T) {
	f := func(a, b float64) bool {
		x := genInterval(a, b)
		return x.Neg().Neg() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
