package interval

import "fmt"

// Slice kernels: element-wise interval operations over parallel lanes, for
// the batched lockstep stepping engine (internal/sim/batch).  Each kernel is
// defined as the scalar operation applied lane by lane — the batch property
// tests pin `kernel(dst, a, b)[i] == a[i].Op(b[i])` exactly, so every
// algebraic law proved for the scalar operations (inclusion soundness,
// monotonicity) transfers to the batched forms unchanged.
//
// All kernels require every slice to share one length and panic otherwise:
// a lane-count mismatch is a programming error in the batch engine's
// compaction bookkeeping, never a runtime condition to tolerate.

// checkLanes panics unless every length equals n.
func checkLanes(n int, lens ...int) {
	for _, l := range lens {
		if l != n {
			panic(fmt.Sprintf("interval: lane count mismatch: %d vs %d", n, l))
		}
	}
}

// AddSlices stores a[i].Add(b[i]) into dst[i] for every lane.  dst may
// alias a or b.
func AddSlices(dst, a, b []Interval) {
	checkLanes(len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i].Add(b[i])
	}
}

// IntersectSlices stores a[i].Intersect(b[i]) into dst[i] for every lane.
// dst may alias a or b.
func IntersectSlices(dst, a, b []Interval) {
	checkLanes(len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i].Intersect(b[i])
	}
}

// ExpandSlices stores src[i].Expand(r) into dst[i] for every lane.  dst may
// alias src.
func ExpandSlices(dst, src []Interval, r float64) {
	checkLanes(len(dst), len(src))
	for i := range dst {
		dst[i] = src[i].Expand(r)
	}
}

// ContainsSlices stores ivs[i].Contains(xs[i]) into dst[i] for every lane —
// the batched form of the per-step containment audits.
func ContainsSlices(dst []bool, ivs []Interval, xs []float64) {
	checkLanes(len(dst), len(ivs), len(xs))
	for i := range dst {
		dst[i] = ivs[i].Contains(xs[i])
	}
}

// WidthSlices stores ivs[i].Width() into dst[i] for every lane.
func WidthSlices(dst []float64, ivs []Interval) {
	checkLanes(len(dst), len(ivs))
	for i := range dst {
		dst[i] = ivs[i].Width()
	}
}
