// Package interval implements closed real intervals [Lo, Hi] and the
// arithmetic the safety framework needs to propagate set-valued state
// estimates.
//
// Every quantity the ego vehicle knows about another traffic participant —
// position, velocity, passing-time window — is an interval: the reachability
// analysis of delayed messages yields one interval, the Kalman filter yields
// another, and the information filter joins them by intersection.  The
// operations here are the usual inclusion-monotone interval extensions, so
// soundness (the true value stays inside) is preserved through every
// computation as long as the inputs are sound.
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Lo, Hi] over the extended reals.
// The zero value is the degenerate interval [0, 0].
//
// An interval with Lo > Hi is empty; use Empty to construct one and
// IsEmpty to test.  Operations on empty intervals yield empty intervals.
type Interval struct {
	Lo, Hi float64
}

// New returns the interval [lo, hi].  If lo > hi the result is empty, which
// mirrors intersection semantics; callers that consider reversed bounds a
// programming error should use MustNew.
func New(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

// MustNew returns [lo, hi] and panics if lo > hi or either bound is NaN.
func MustNew(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("interval: NaN bound [%v, %v]", lo, hi))
	}
	if lo > hi {
		panic(fmt.Sprintf("interval: reversed bounds [%v, %v]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Point returns the degenerate interval [x, x].
func Point(x float64) Interval { return Interval{Lo: x, Hi: x} }

// Empty returns a canonical empty interval.
func Empty() Interval { return Interval{Lo: math.Inf(1), Hi: math.Inf(-1)} }

// Entire returns (-inf, +inf).
func Entire() Interval { return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// IsEmpty reports whether the interval contains no points.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsPoint reports whether the interval is a single point.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// Width returns Hi-Lo, or 0 for an empty interval.
func (iv Interval) Width() float64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Mid returns the midpoint.  For an empty interval it returns NaN.
func (iv Interval) Mid() float64 {
	if iv.IsEmpty() {
		return math.NaN()
	}
	return iv.Lo + (iv.Hi-iv.Lo)/2
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// ContainsInterval reports whether other ⊆ iv.  The empty interval is a
// subset of everything.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	if iv.IsEmpty() {
		return false
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Intersect returns iv ∩ other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	if lo > hi {
		return Empty()
	}
	return Interval{Lo: lo, Hi: hi}
}

// Intersects reports whether iv ∩ other is nonempty.  This is the test the
// unsafe-set definition (paper Eq. 6) applies to passing-time windows.
func (iv Interval) Intersects(other Interval) bool {
	return !iv.Intersect(other).IsEmpty()
}

// Hull returns the smallest interval containing both operands.
func (iv Interval) Hull(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// Add returns the Minkowski sum [a.Lo+b.Lo, a.Hi+b.Hi].
func (iv Interval) Add(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: iv.Lo + other.Lo, Hi: iv.Hi + other.Hi}
}

// Sub returns iv - other under interval semantics.
func (iv Interval) Sub(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: iv.Lo - other.Hi, Hi: iv.Hi - other.Lo}
}

// Neg returns [-Hi, -Lo].
func (iv Interval) Neg() Interval {
	if iv.IsEmpty() {
		return iv
	}
	return Interval{Lo: -iv.Hi, Hi: -iv.Lo}
}

// AddScalar shifts the interval by x.
func (iv Interval) AddScalar(x float64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	return Interval{Lo: iv.Lo + x, Hi: iv.Hi + x}
}

// Scale multiplies both bounds by k, swapping them when k < 0.
func (iv Interval) Scale(k float64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	if k >= 0 {
		return Interval{Lo: iv.Lo * k, Hi: iv.Hi * k}
	}
	return Interval{Lo: iv.Hi * k, Hi: iv.Lo * k}
}

// Mul returns the interval product, the min/max over bound cross products.
func (iv Interval) Mul(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	a := iv.Lo * other.Lo
	b := iv.Lo * other.Hi
	c := iv.Hi * other.Lo
	d := iv.Hi * other.Hi
	return Interval{
		Lo: math.Min(math.Min(a, b), math.Min(c, d)),
		Hi: math.Max(math.Max(a, b), math.Max(c, d)),
	}
}

// Expand grows the interval by r on each side (shrinks if r < 0; the result
// becomes empty if it shrinks past its midpoint).
func (iv Interval) Expand(r float64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	out := Interval{Lo: iv.Lo - r, Hi: iv.Hi + r}
	if out.Lo > out.Hi {
		return Empty()
	}
	return out
}

// ClampTo intersects the interval with the admissible range [lo, hi]; it is
// used to apply physical limits (e.g. velocity in [vmin, vmax]) to an
// estimate.
func (iv Interval) ClampTo(lo, hi float64) Interval {
	return iv.Intersect(Interval{Lo: lo, Hi: hi})
}

// Clamp returns x clamped into the interval.  Clamp on an empty interval
// panics, as there is no valid value to return.
func (iv Interval) Clamp(x float64) float64 {
	if iv.IsEmpty() {
		panic("interval: Clamp on empty interval")
	}
	if x < iv.Lo {
		return iv.Lo
	}
	if x > iv.Hi {
		return iv.Hi
	}
	return x
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	return fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi)
}
