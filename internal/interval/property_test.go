package interval

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based tests for the interval-arithmetic laws the safety argument
// leans on.  Each law is checked against ~200 randomly drawn cases; the
// fundamental one is *inclusion soundness* — for every point x ∈ a, y ∈ b,
// the point result of an operation lies inside the interval result — since
// that is exactly what makes the conservative windows sound overapproxima-
// tions of the reachable sets.

const propCases = 200

// drawInterval returns a random non-empty interval, occasionally degenerate
// (a point) and occasionally spanning zero (the interesting case for Mul).
func drawInterval(rng *rand.Rand) Interval {
	lo := (rng.Float64() - 0.5) * 40
	switch rng.Intn(4) {
	case 0:
		return Point(lo)
	default:
		return New(lo, lo+rng.Float64()*20)
	}
}

// drawIn returns a uniformly drawn point of iv.
func drawIn(rng *rand.Rand, iv Interval) float64 {
	if iv.IsPoint() {
		return iv.Lo
	}
	return iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
}

func TestPropAddSoundAndCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < propCases; i++ {
		a, b := drawInterval(rng), drawInterval(rng)
		s := a.Add(b)
		if s != b.Add(a) {
			t.Fatalf("Add not commutative: %v + %v", a, b)
		}
		x, y := drawIn(rng, a), drawIn(rng, b)
		if !s.Contains(x + y) {
			t.Fatalf("%v + %v = %v does not contain %v + %v = %v", a, b, s, x, y, x+y)
		}
	}
}

func TestPropSubNegConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < propCases; i++ {
		a, b := drawInterval(rng), drawInterval(rng)
		if a.Sub(b) != a.Add(b.Neg()) {
			t.Fatalf("a−b ≠ a+(−b) for %v, %v", a, b)
		}
		x, y := drawIn(rng, a), drawIn(rng, b)
		if !a.Sub(b).Contains(x - y) {
			t.Fatalf("%v − %v does not contain %v − %v", a, b, x, y)
		}
	}
}

func TestPropMulSoundAndCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < propCases; i++ {
		a, b := drawInterval(rng), drawInterval(rng)
		p := a.Mul(b)
		if p != b.Mul(a) {
			t.Fatalf("Mul not commutative: %v × %v = %v vs %v", a, b, p, b.Mul(a))
		}
		x, y := drawIn(rng, a), drawIn(rng, b)
		// One float rounding of x*y may escape the exact-endpoint product
		// interval; allow an ulp-scale tolerance.
		tol := 1e-9 * (1 + math.Abs(x*y))
		if !p.Expand(tol).Contains(x * y) {
			t.Fatalf("%v × %v = %v does not contain %v × %v = %v", a, b, p, x, y, x*y)
		}
	}
}

func TestPropInclusionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for i := 0; i < propCases; i++ {
		a, b := drawInterval(rng), drawInterval(rng)
		// a' ⊆ a, b' ⊆ b drawn by shrinking.
		aa := New(drawIn(rng, a), a.Hi)
		bb := New(b.Lo, drawIn(rng, b))
		if !a.Add(b).ContainsInterval(aa.Add(bb)) {
			t.Fatalf("Add not inclusion-monotone: %v⊆%v, %v⊆%v", aa, a, bb, b)
		}
		if !a.Mul(b).ContainsInterval(aa.Mul(bb)) {
			t.Fatalf("Mul not inclusion-monotone: %v⊆%v, %v⊆%v", aa, a, bb, b)
		}
		if got := aa.Intersect(a); !got.IsEmpty() && !a.ContainsInterval(got) {
			t.Fatalf("Intersect escapes its operand: %v ∩ %v = %v", aa, a, got)
		}
	}
}

func TestPropIntersectHull(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for i := 0; i < propCases; i++ {
		a, b := drawInterval(rng), drawInterval(rng)
		h := a.Hull(b)
		if !h.ContainsInterval(a) || !h.ContainsInterval(b) {
			t.Fatalf("Hull(%v, %v) = %v does not contain both operands", a, b, h)
		}
		x := drawIn(rng, a)
		in := a.Intersect(b)
		if b.Contains(x) != in.Contains(x) {
			t.Fatalf("x=%v: membership in %v ∩ %v = %v disagrees with pointwise test", x, a, b, in)
		}
		if in.IsEmpty() && a.Intersects(b) {
			t.Fatalf("Intersects(%v, %v) true but intersection empty", a, b)
		}
	}
}

func TestPropScaleExpand(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for i := 0; i < propCases; i++ {
		a := drawInterval(rng)
		k := (rng.Float64() - 0.5) * 8
		x := drawIn(rng, a)
		s := a.Scale(k)
		tol := 1e-9 * (1 + math.Abs(k*x))
		if !s.Expand(tol).Contains(k * x) {
			t.Fatalf("%v scaled by %v = %v does not contain %v", a, k, s, k*x)
		}
		r := rng.Float64() * 3
		e := a.Expand(r)
		if !e.ContainsInterval(a) || math.Abs(e.Width()-(a.Width()+2*r)) > 1e-9 {
			t.Fatalf("Expand(%v, %v) = %v", a, r, e)
		}
	}
}

func TestPropEmptyAbsorbs(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for i := 0; i < propCases; i++ {
		a := drawInterval(rng)
		if !Empty().Intersect(a).IsEmpty() || !a.Intersect(Empty()).IsEmpty() {
			t.Fatalf("intersection with ∅ not empty for %v", a)
		}
		if h := a.Hull(Empty()); h != a {
			t.Fatalf("Hull(%v, ∅) = %v, want the operand back", a, h)
		}
		if Empty().Contains(drawIn(rng, a)) {
			t.Fatal("∅ contains a point")
		}
	}
}
