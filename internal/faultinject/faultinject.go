// Package faultinject is the compute-side counterpart of the channel and
// sensor disturbance layer (internal/disturb): composable fault models
// for the embedded planner κ_n itself.  Where disturb starves the
// *information* the planner consumes, faultinject corrupts the planner's
// *execution* — panics, NaN/±Inf outputs, stuck and biased commands, and
// simulated compute-latency spikes — so the guard layer (internal/guard)
// can be exercised under every failure mode the paper's theorem must
// survive.
//
// The determinism contract mirrors internal/disturb: a Model is an
// immutable description, Model.New instantiates one episode's process fed
// by caller-owned random streams, and fault *triggers* draw only from
// faultRng while fault *magnitudes* (latency durations) draw only from
// latRng — and a process consumes its magnitude draw even on steps where
// the trigger does not fire — so sweeping a trigger probability never
// perturbs the magnitudes of the faults that fire in both arms of an A/B
// comparison.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
)

// Decision is the fault injected into one planner invocation.
type Decision struct {
	// Panic raises a recoverable panic instead of returning.
	Panic bool
	// NonFinite replaces the output with NaN/±Inf (the injector cycles
	// through the three so every non-finite class is exercised).
	NonFinite bool
	// Stuck replays the planner's previous raw output (a frozen
	// inference backend returning a cached activation).
	Stuck bool
	// Bias is added to the output [m/s²] (a miscalibrated head; large
	// values push the command out of the actuation envelope).
	Bias float64
	// Latency is the simulated compute latency of the call [s], checked
	// against the guard's deterministic step budget.
	Latency float64
}

// Process is one episode's instantiated fault process.  Next is called
// once per planner invocation in nondecreasing time order.  It is not
// safe for concurrent use.
type Process interface {
	Next(t float64) Decision
}

// Model is an immutable description of a planner-fault process.
type Model interface {
	// Name identifies the model in tables and flags.
	Name() string
	// Validate reports whether the parameters are usable.
	Validate() error
	// New instantiates a fresh process.  Trigger decisions must draw
	// only from faultRng and magnitude draws only from latRng (consumed
	// every step), so the streams stay aligned across parameter sweeps.
	New(faultRng, latRng *rand.Rand) Process
}

// validProb rejects values outside [0, 1].
func validProb(name, field string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("faultinject: %s: %s %v outside [0,1]", name, field, p)
	}
	return nil
}

// None injects nothing (the explicit no-fault model, for sweeps).
type None struct{}

// Name implements Model.
func (None) Name() string { return "none" }

// Validate implements Model.
func (None) Validate() error { return nil }

// New implements Model.
func (None) New(_, _ *rand.Rand) Process { return nopProcess{} }

type nopProcess struct{}

func (nopProcess) Next(float64) Decision { return Decision{} }

// PanicEvery panics deterministically on every Nth planner call — the
// reproducible crash for regression tests and bisection.
type PanicEvery struct {
	// N is the crash period in calls (1 panics every call).
	N int
}

// Name implements Model.
func (PanicEvery) Name() string { return "panic-every" }

// Validate implements Model.
func (m PanicEvery) Validate() error {
	if m.N < 1 {
		return fmt.Errorf("faultinject: panic-every: period %d must be >= 1", m.N)
	}
	return nil
}

// New implements Model.
func (m PanicEvery) New(_, _ *rand.Rand) Process { return &panicEveryProcess{n: m.N} }

type panicEveryProcess struct{ n, calls int }

func (p *panicEveryProcess) Next(float64) Decision {
	p.calls++
	return Decision{Panic: p.calls%p.n == 0}
}

// PanicP panics i.i.d. with probability P per call.
type PanicP struct {
	P float64
}

// Name implements Model.
func (PanicP) Name() string { return "panic-p" }

// Validate implements Model.
func (m PanicP) Validate() error { return validProb("panic-p", "P", m.P) }

// New implements Model.
func (m PanicP) New(faultRng, _ *rand.Rand) Process {
	return &bernoulliProcess{p: m.P, rng: faultRng, make: func() Decision { return Decision{Panic: true} }}
}

// NaNOutput replaces the output with a non-finite value (cycling
// NaN → +Inf → −Inf) i.i.d. with probability P per call.
type NaNOutput struct {
	P float64
}

// Name implements Model.
func (NaNOutput) Name() string { return "nan" }

// Validate implements Model.
func (m NaNOutput) Validate() error { return validProb("nan", "P", m.P) }

// New implements Model.
func (m NaNOutput) New(faultRng, _ *rand.Rand) Process {
	return &bernoulliProcess{p: m.P, rng: faultRng, make: func() Decision { return Decision{NonFinite: true} }}
}

// bernoulliProcess fires a fixed decision i.i.d. with probability p.
type bernoulliProcess struct {
	p    float64
	rng  *rand.Rand
	make func() Decision
}

func (b *bernoulliProcess) Next(float64) Decision {
	if b.p > 0 && b.rng.Float64() < b.p {
		return b.make()
	}
	return Decision{}
}

// StuckOutput freezes the planner: with probability P per call it enters
// a stuck episode replaying the previous output for Hold calls.
type StuckOutput struct {
	P float64
	// Hold is the stuck-episode length in calls; 0 selects DefaultHold.
	Hold int
}

// DefaultHold is the default stuck-episode length.
const DefaultHold = 10

// Name implements Model.
func (StuckOutput) Name() string { return "stuck" }

// Validate implements Model.
func (m StuckOutput) Validate() error {
	if err := validProb("stuck", "P", m.P); err != nil {
		return err
	}
	if m.Hold < 0 {
		return fmt.Errorf("faultinject: stuck: negative hold %d", m.Hold)
	}
	return nil
}

// New implements Model.
func (m StuckOutput) New(faultRng, _ *rand.Rand) Process {
	hold := m.Hold
	if hold == 0 {
		hold = DefaultHold
	}
	return &stuckProcess{p: m.P, hold: hold, rng: faultRng}
}

type stuckProcess struct {
	p         float64
	hold      int
	remaining int
	rng       *rand.Rand
}

func (s *stuckProcess) Next(float64) Decision {
	if s.remaining > 0 {
		s.remaining--
		return Decision{Stuck: true}
	}
	if s.p > 0 && s.rng.Float64() < s.p {
		s.remaining = s.hold - 1
		return Decision{Stuck: true}
	}
	return Decision{}
}

// BiasOutput adds a constant bias to the output i.i.d. with probability P
// per call (a miscalibrated inference head; a bias beyond the envelope
// margin turns into guard range rejections).
type BiasOutput struct {
	// Bias is added to the planner's command [m/s²].
	Bias float64
	// P is the per-call probability the bias applies.
	P float64
}

// Name implements Model.
func (BiasOutput) Name() string { return "bias" }

// Validate implements Model.
func (m BiasOutput) Validate() error {
	if math.IsNaN(m.Bias) || math.IsInf(m.Bias, 0) {
		return fmt.Errorf("faultinject: bias: non-finite bias %v", m.Bias)
	}
	return validProb("bias", "P", m.P)
}

// New implements Model.
func (m BiasOutput) New(faultRng, _ *rand.Rand) Process {
	return &bernoulliProcess{p: m.P, rng: faultRng, make: func() Decision { return Decision{Bias: m.Bias} }}
}

// LatencySpike attributes a simulated compute latency drawn U(Min, Max)
// to the call i.i.d. with probability P — the inference-serving tail that
// blows the guard's deterministic step budget.
type LatencySpike struct {
	P        float64
	Min, Max float64 // spike latency range [s]
}

// Name implements Model.
func (LatencySpike) Name() string { return "latency" }

// Validate implements Model.
func (m LatencySpike) Validate() error {
	if err := validProb("latency", "P", m.P); err != nil {
		return err
	}
	if math.IsNaN(m.Min) || math.IsInf(m.Min, 0) || m.Min < 0 || math.IsNaN(m.Max) || math.IsInf(m.Max, 0) || m.Max < m.Min {
		return fmt.Errorf("faultinject: latency: bad range [%v, %v]", m.Min, m.Max)
	}
	return nil
}

// New implements Model.
func (m LatencySpike) New(faultRng, latRng *rand.Rand) Process {
	return &latencyProcess{m: m, faultRng: faultRng, latRng: latRng}
}

type latencyProcess struct {
	m        LatencySpike
	faultRng *rand.Rand
	latRng   *rand.Rand
}

func (l *latencyProcess) Next(float64) Decision {
	// Magnitude draw first and unconditionally, so sweeping P keeps the
	// spike durations of surviving faults aligned.
	lat := l.m.Min + l.latRng.Float64()*(l.m.Max-l.m.Min)
	if l.m.P > 0 && l.faultRng.Float64() < l.m.P {
		return Decision{Latency: lat}
	}
	return Decision{}
}

// Flaky gates an inner model through a two-state (good/bad) Markov chain:
// faults fire only during bad dwells, producing the bursty fail-recover
// pattern the guard's hysteresis exists for.  The inner process advances
// every call (its draws stay aligned whether or not the gate is open).
type Flaky struct {
	Inner Model
	// PGoodBad and PBadGood are the per-call transition probabilities.
	PGoodBad, PBadGood float64
	// StartBad starts the chain in the bad state.
	StartBad bool
}

// Name implements Model.
func (Flaky) Name() string { return "flaky" }

// Validate implements Model.
func (m Flaky) Validate() error {
	if m.Inner == nil {
		return fmt.Errorf("faultinject: flaky: nil inner model")
	}
	if err := m.Inner.Validate(); err != nil {
		return err
	}
	if err := validProb("flaky", "PGoodBad", m.PGoodBad); err != nil {
		return err
	}
	return validProb("flaky", "PBadGood", m.PBadGood)
}

// New implements Model.  The inner model gets derived substreams so the
// gate's own draws never interleave with the inner model's.
func (m Flaky) New(faultRng, latRng *rand.Rand) Process {
	inner := m.Inner.New(
		rand.New(rand.NewSource(faultRng.Int63())),
		rand.New(rand.NewSource(latRng.Int63())),
	)
	return &flakyProcess{inner: inner, m: m, bad: m.StartBad, rng: faultRng}
}

type flakyProcess struct {
	inner Process
	m     Flaky
	bad   bool
	rng   *rand.Rand
}

func (f *flakyProcess) Next(t float64) Decision {
	if f.bad {
		f.bad = !(f.rng.Float64() < f.m.PBadGood)
	} else {
		f.bad = f.rng.Float64() < f.m.PGoodBad
	}
	d := f.inner.Next(t) // always advance: keeps inner streams aligned
	if !f.bad {
		return Decision{}
	}
	return d
}

// Stack composes several models: per call, the decisions are merged
// (panic/non-finite/stuck OR together, biases sum, latencies sum — serial
// pipeline stages).  Each child gets derived substreams, so children
// never perturb each other's draws.
type Stack struct {
	Models []Model
}

// Name implements Model.
func (Stack) Name() string { return "stack" }

// Validate implements Model.
func (m Stack) Validate() error {
	if len(m.Models) == 0 {
		return fmt.Errorf("faultinject: stack: no models")
	}
	for i, c := range m.Models {
		if c == nil {
			return fmt.Errorf("faultinject: stack: nil model %d", i)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// New implements Model.
func (m Stack) New(faultRng, latRng *rand.Rand) Process {
	ps := make([]Process, len(m.Models))
	for i, c := range m.Models {
		ps[i] = c.New(
			rand.New(rand.NewSource(faultRng.Int63())),
			rand.New(rand.NewSource(latRng.Int63())),
		)
	}
	return stackProcess(ps)
}

type stackProcess []Process

func (s stackProcess) Next(t float64) Decision {
	var out Decision
	for _, p := range s {
		d := p.Next(t)
		out.Panic = out.Panic || d.Panic
		out.NonFinite = out.NonFinite || d.NonFinite
		out.Stuck = out.Stuck || d.Stuck
		out.Bias += d.Bias
		out.Latency += d.Latency
	}
	return out
}

// Script replays an explicit per-call decision sequence (fuzzing and
// regression fixtures search fault schedules directly); beyond its end
// the process is clean.
type Script struct {
	Steps []Decision
}

// Name implements Model.
func (Script) Name() string { return "script" }

// Validate implements Model.
func (m Script) Validate() error {
	for i, d := range m.Steps {
		if math.IsNaN(d.Bias) || math.IsInf(d.Bias, 0) {
			return fmt.Errorf("faultinject: script: step %d bias %v", i, d.Bias)
		}
		if math.IsNaN(d.Latency) || math.IsInf(d.Latency, 0) || d.Latency < 0 {
			return fmt.Errorf("faultinject: script: step %d latency %v", i, d.Latency)
		}
	}
	return nil
}

// New implements Model.
func (m Script) New(_, _ *rand.Rand) Process { return &scriptProcess{steps: m.Steps} }

type scriptProcess struct {
	steps []Decision
	i     int
}

func (s *scriptProcess) Next(float64) Decision {
	if s.i >= len(s.steps) {
		return Decision{}
	}
	d := s.steps[s.i]
	s.i++
	return d
}

// PanicError is the payload of an injected planner panic, so guard
// reports can distinguish injected crashes from genuine planner bugs.
type PanicError struct {
	T float64
}

// Error implements error.
func (e PanicError) Error() string {
	return fmt.Sprintf("faultinject: injected planner panic at t=%.3f", e.T)
}

// Injector owns one episode's instantiated fault process plus the
// output-corruption state (previous raw output for Stuck, the non-finite
// cycle, the last simulated latency).  It is not safe for concurrent
// use; episode runners create one per episode.
type Injector struct {
	proc     Process
	prev     float64
	hasPrev  bool
	nanCycle int
	latency  float64
}

// NewInjector instantiates m with the two caller-owned streams.
func NewInjector(m Model, faultRng, latRng *rand.Rand) (*Injector, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Injector{proc: m.New(faultRng, latRng)}, nil
}

// Apply runs one planner invocation under the fault model: it draws the
// step's Decision, panics with a PanicError when the decision says so
// (the guard recovers it), and otherwise returns the possibly corrupted
// output.  The simulated latency is recorded *before* panicking, so
// SimLatency is valid on every path.
func (in *Injector) Apply(t float64, plan func() (float64, bool)) (float64, bool) {
	d := in.proc.Next(t)
	in.latency = d.Latency
	if d.Panic {
		panic(PanicError{T: t})
	}
	a, em := plan()
	raw := a
	if d.Stuck && in.hasPrev {
		a = in.prev
	}
	a += d.Bias
	if d.NonFinite {
		switch in.nanCycle % 3 {
		case 0:
			a = math.NaN()
		case 1:
			a = math.Inf(1)
		default:
			a = math.Inf(-1)
		}
		in.nanCycle++
	}
	in.prev, in.hasPrev = raw, true
	return a, em
}

// SimLatency reports the simulated compute latency attributed to the
// most recent Apply [s] (zero before the first call).
func (in *Injector) SimLatency() float64 { return in.latency }
