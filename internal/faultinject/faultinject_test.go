package faultinject

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func run(t *testing.T, m Model, seed int64, n int) []Decision {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("%s: Validate: %v", m.Name(), err)
	}
	master := rand.New(rand.NewSource(seed))
	p := m.New(
		rand.New(rand.NewSource(master.Int63())),
		rand.New(rand.NewSource(master.Int63())),
	)
	out := make([]Decision, n)
	for i := range out {
		out[i] = p.Next(float64(i) * 0.1)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	models := []Model{
		None{},
		PanicEvery{N: 7},
		PanicP{P: 0.3},
		NaNOutput{P: 0.4},
		StuckOutput{P: 0.1, Hold: 5},
		BiasOutput{Bias: 3, P: 0.5},
		LatencySpike{P: 0.4, Min: 0.05, Max: 0.4},
		Flaky{Inner: NaNOutput{P: 0.8}, PGoodBad: 0.1, PBadGood: 0.2},
		Stack{Models: []Model{PanicP{P: 0.05}, LatencySpike{P: 0.3, Min: 0.1, Max: 0.2}}},
		Script{Steps: []Decision{{Panic: true}, {}, {NonFinite: true}}},
	}
	for _, m := range models {
		a := run(t, m, 42, 400)
		b := run(t, m, 42, 400)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different decision streams", m.Name())
		}
	}
}

func TestPanicEveryPeriod(t *testing.T) {
	ds := run(t, PanicEvery{N: 5}, 1, 20)
	for i, d := range ds {
		want := (i+1)%5 == 0
		if d.Panic != want {
			t.Fatalf("call %d: panic=%v, want %v", i, d.Panic, want)
		}
	}
}

func TestSplitStreamsLatencyAlignment(t *testing.T) {
	// Sweeping the trigger probability must not perturb the latency
	// magnitudes of the spikes that fire in both arms: fire positions
	// that coincide must carry identical latencies.
	low := run(t, LatencySpike{P: 0.3, Min: 0.05, Max: 0.4}, 9, 500)
	high := run(t, LatencySpike{P: 0.9, Min: 0.05, Max: 0.4}, 9, 500)
	shared, diff := 0, 0
	for i := range low {
		if low[i].Latency > 0 && high[i].Latency > 0 {
			shared++
			if low[i].Latency != high[i].Latency {
				diff++
			}
		}
	}
	if shared == 0 {
		t.Fatal("no shared spikes; test is vacuous")
	}
	if diff != 0 {
		t.Errorf("%d/%d shared spikes changed latency under a trigger-probability sweep", diff, shared)
	}
}

func TestStuckHold(t *testing.T) {
	ds := run(t, StuckOutput{P: 1, Hold: 3}, 3, 6)
	for i, d := range ds {
		if !d.Stuck {
			t.Fatalf("call %d not stuck with P=1", i)
		}
	}
}

func TestStackMerges(t *testing.T) {
	ds := run(t, Stack{Models: []Model{
		BiasOutput{Bias: 2, P: 1},
		BiasOutput{Bias: -0.5, P: 1},
	}}, 5, 3)
	for i, d := range ds {
		if d.Bias != 1.5 {
			t.Fatalf("call %d: bias %v, want 1.5 (sum)", i, d.Bias)
		}
	}
}

func TestFlakyGatesInner(t *testing.T) {
	ds := run(t, Flaky{Inner: NaNOutput{P: 1}, PGoodBad: 0.05, PBadGood: 0.2}, 11, 2000)
	bad := 0
	for _, d := range ds {
		if d.NonFinite {
			bad++
		}
	}
	if bad == 0 || bad == len(ds) {
		t.Fatalf("flaky gate never switched: %d/%d faulty", bad, len(ds))
	}
}

func TestScriptExhaustsClean(t *testing.T) {
	ds := run(t, Script{Steps: []Decision{{NonFinite: true}}}, 1, 3)
	if !ds[0].NonFinite || ds[1].NonFinite || ds[2].NonFinite {
		t.Fatalf("script replay wrong: %+v", ds)
	}
}

func TestInjectorCorruptions(t *testing.T) {
	plan := func(a float64) func() (float64, bool) {
		return func() (float64, bool) { return a, false }
	}
	master := rand.New(rand.NewSource(1))
	in, err := NewInjector(Script{Steps: []Decision{
		{},                // clean: primes prev=1
		{Stuck: true},     // replays 1 while plan returns 2
		{Bias: 3},         // 3 + 3
		{NonFinite: true}, // NaN (cycle 0)
		{NonFinite: true}, // +Inf (cycle 1)
		{NonFinite: true}, // −Inf (cycle 2)
		{Latency: 0.7},    // latency only
		{Panic: true},     // raises PanicError
	}}, rand.New(rand.NewSource(master.Int63())), rand.New(rand.NewSource(master.Int63())))
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}

	if a, _ := in.Apply(0, plan(1)); a != 1 {
		t.Fatalf("clean call corrupted: %v", a)
	}
	if a, _ := in.Apply(0.1, plan(2)); a != 1 {
		t.Fatalf("stuck call returned %v, want previous raw 1", a)
	}
	if a, _ := in.Apply(0.2, plan(3)); a != 6 {
		t.Fatalf("biased call returned %v, want 6", a)
	}
	if a, _ := in.Apply(0.3, plan(1)); !math.IsNaN(a) {
		t.Fatalf("non-finite call 1 returned %v, want NaN", a)
	}
	if a, _ := in.Apply(0.4, plan(1)); !math.IsInf(a, 1) {
		t.Fatalf("non-finite call 2 returned %v, want +Inf", a)
	}
	if a, _ := in.Apply(0.5, plan(1)); !math.IsInf(a, -1) {
		t.Fatalf("non-finite call 3 returned %v, want -Inf", a)
	}
	if a, _ := in.Apply(0.6, plan(2.5)); a != 2.5 || in.SimLatency() != 0.7 {
		t.Fatalf("latency call a=%v lat=%v", a, in.SimLatency())
	}
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("injected panic did not fire")
			}
			if _, ok := rec.(PanicError); !ok {
				t.Fatalf("panic payload %T, want PanicError", rec)
			}
			if in.SimLatency() != 0 {
				t.Fatalf("latency not recorded before panic: %v", in.SimLatency())
			}
		}()
		in.Apply(0.7, plan(1))
	}()
}

func TestStuckBeforeFirstOutputIsClean(t *testing.T) {
	master := rand.New(rand.NewSource(1))
	in, err := NewInjector(Script{Steps: []Decision{{Stuck: true}}},
		rand.New(rand.NewSource(master.Int63())), rand.New(rand.NewSource(master.Int63())))
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := in.Apply(0, func() (float64, bool) { return 2, false }); a != 2 {
		t.Fatalf("stuck with no history returned %v, want pass-through 2", a)
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) < 8 {
		t.Fatalf("too few presets: %v", names)
	}
	for _, name := range names {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		run(t, m, 7, 100) // must instantiate and step without issue
	}
	if _, err := Preset("no-such"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Model{
		PanicEvery{N: 0},
		PanicP{P: 1.5},
		PanicP{P: math.NaN()},
		NaNOutput{P: -0.1},
		StuckOutput{P: 0.5, Hold: -1},
		BiasOutput{Bias: math.Inf(1), P: 1},
		LatencySpike{P: 0.5, Min: 0.4, Max: 0.1},
		LatencySpike{P: 0.5, Min: -1, Max: 1},
		Flaky{Inner: nil, PGoodBad: 0.1, PBadGood: 0.1},
		Flaky{Inner: PanicP{P: 2}, PGoodBad: 0.1, PBadGood: 0.1},
		Stack{},
		Stack{Models: []Model{nil}},
		Script{Steps: []Decision{{Latency: -1}}},
		Script{Steps: []Decision{{Bias: math.NaN()}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d (%s): bad model validated", i, m.Name())
		}
	}
}
