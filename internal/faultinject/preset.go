package faultinject

import (
	"fmt"
	"sort"
)

// Presets are named, ready-to-run planner-fault workloads shared by the
// CLI flags (cmd/simulate -plannerfault, cmd/bench -guard), the fault
// matrix, and the fuzz seed corpus.  Parameters are adversarial at the
// evaluation's Δt_c = 0.1 s control cadence: panic and NaN rates high
// enough to drive the guard through its full degradation cycle within an
// episode, latency spikes that straddle the default one-period step
// budget, and a flaky gate whose bursts are long enough to degrade but
// short enough to let trust recover.
var presets = map[string]func() Model{
	"none": func() Model { return None{} },
	"panic": func() Model {
		return PanicP{P: 0.2}
	},
	"panic-every": func() Model {
		// One deterministic crash every 2.5 simulated seconds.
		return PanicEvery{N: 25}
	},
	"nan": func() Model {
		return NaNOutput{P: 0.5}
	},
	"stuck": func() Model {
		// ~one freeze per 20 s, each holding the output for 1.5 s.
		return StuckOutput{P: 0.005, Hold: 15}
	},
	"bias": func() Model {
		// +4 m/s² on every call: exceeds the ego's AMax margin, so most
		// biased commands become guard range rejections.
		return BiasOutput{Bias: 4, P: 1}
	},
	"latency": func() Model {
		// Spikes 0.05–0.4 s straddle the default 0.1 s step budget.
		return LatencySpike{P: 0.3, Min: 0.05, Max: 0.4}
	},
	"flaky": func() Model {
		// Bursts of mixed NaN + latency faults: mean good dwell 5 s,
		// mean bad dwell 1 s — the guard degrades and recovers repeatedly.
		return Flaky{
			Inner: Stack{Models: []Model{
				NaNOutput{P: 0.6},
				LatencySpike{P: 0.5, Min: 0.1, Max: 0.5},
			}},
			PGoodBad: 0.02,
			PBadGood: 0.1,
		}
	},
	"worst": func() Model {
		// Everything at once: random crashes, non-finite and biased
		// outputs, freezes, and latency tails.
		return Stack{Models: []Model{
			PanicP{P: 0.1},
			NaNOutput{P: 0.3},
			StuckOutput{P: 0.02, Hold: 20},
			BiasOutput{Bias: 5, P: 0.5},
			LatencySpike{P: 0.4, Min: 0.05, Max: 0.5},
		}}
	},
}

// Preset returns the named planner-fault workload.
func Preset(name string) (Model, error) {
	f, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("faultinject: unknown preset %q (have %v)", name, PresetNames())
	}
	return f(), nil
}

// PresetNames lists the presets in sorted order.
func PresetNames() []string {
	keys := make([]string, 0, len(presets))
	for k := range presets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
