package textio

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("setting", "planner", "rt")
	tb.AddRow("none", "pure NN", "7.99")
	tb.AddRow("delayed", "ultimate", "6.72")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "setting") || !strings.Contains(lines[0], "planner") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	// Columns align: "planner" column starts at the same offset everywhere.
	off := strings.Index(lines[0], "planner")
	if strings.Index(lines[2], "pure NN") != off {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Fatal("short row missing")
	}
}

func TestTableLongRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("a").AddRow("1", "2")
}

func TestCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("plain", "with,comma")
	tb.AddRow("quote\"inside", "ok")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with,comma\"\n\"quote\"\"inside\",ok\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestF(t *testing.T) {
	if got := F(1.23456, 3); got != "1.235" {
		t.Fatalf("F = %q", got)
	}
	if got := F(math.NaN(), 2); got != "—" {
		t.Fatalf("F(NaN) = %q", got)
	}
	if got := F(math.Inf(1), 2); got != "inf" {
		t.Fatalf("F(+Inf) = %q", got)
	}
	if got := F(math.Inf(-1), 2); got != "-inf" {
		t.Fatalf("F(-Inf) = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.99966); got != "99.97%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(math.NaN()); got != "—" {
		t.Fatalf("Pct(NaN) = %q", got)
	}
}

func TestChart(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	var sb strings.Builder
	err := Chart(&sb, "reaching time", xs, 6,
		Series{Name: "pure", Y: []float64{8, 8.5, 9, 9.5}},
		Series{Name: "ultimate", Y: []float64{6.4, 6.6, 6.9, 7.2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "reaching time") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "*=pure") || !strings.Contains(out, "o=ultimate") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "9.500") || !strings.Contains(out, "6.400") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestChartSkipsNaN(t *testing.T) {
	var sb strings.Builder
	err := Chart(&sb, "t", []float64{1, 2}, 4,
		Series{Name: "s", Y: []float64{math.NaN(), 2}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChartAllNaNFails(t *testing.T) {
	var sb strings.Builder
	err := Chart(&sb, "t", []float64{1}, 4, Series{Name: "s", Y: []float64{math.NaN()}})
	if err == nil {
		t.Fatal("expected error for chart with no finite points")
	}
}

func TestChartFlatSeries(t *testing.T) {
	var sb strings.Builder
	if err := Chart(&sb, "flat", []float64{1, 2, 3}, 4,
		Series{Name: "s", Y: []float64{5, 5, 5}}); err != nil {
		t.Fatal(err)
	}
}
