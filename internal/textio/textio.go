// Package textio renders the experiment outputs: aligned text tables for
// terminals, CSV for downstream plotting, and simple ASCII line charts for
// eyeballing the Figure-5 sweeps without leaving the shell.
package textio

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows panic (a programming error).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("textio: row has %d cells, table has %d columns", len(cells), len(t.header)))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted per RFC 4180).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with the given precision, rendering NaN as "—" and
// ±Inf as "inf"/"-inf".
func F(x float64, prec int) string {
	switch {
	case math.IsNaN(x):
		return "—"
	case math.IsInf(x, 1):
		return "inf"
	case math.IsInf(x, -1):
		return "-inf"
	}
	return fmt.Sprintf("%.*f", prec, x)
}

// Pct formats a fraction as a percentage with two decimals ("99.95%").
func Pct(x float64) string {
	if math.IsNaN(x) {
		return "—"
	}
	return fmt.Sprintf("%.2f%%", 100*x)
}

// Series is a named line for Chart.
type Series struct {
	Name string
	Y    []float64
}

// Chart renders an ASCII line chart of one or more series over shared X
// values.  Each series is drawn with its own marker; NaN points are
// skipped.  The chart is height rows tall and one column per X value
// (plus axis labels).
func Chart(w io.Writer, title string, xs []float64, height int, series ...Series) error {
	if height < 2 {
		height = 8
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("textio: chart %q has no finite points", title)
	}
	if hi == lo {
		hi = lo + 1
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(xs)))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, y := range s.Y {
			if i >= len(xs) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			r := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
			grid[r][i] = m
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.3f", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", len(xs))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  x: %.3g … %.3g\n", strings.Repeat(" ", 8), xs[0], xs[len(xs)-1]); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 8), strings.Join(legend, "  "))
	return err
}
