package dynamics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var testLimits = Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}

func TestValidate(t *testing.T) {
	if err := testLimits.Validate(); err != nil {
		t.Fatalf("valid limits rejected: %v", err)
	}
	bad := []Limits{
		{VMin: 5, VMax: 1, AMin: -1, AMax: 1},
		{VMin: 0, VMax: 1, AMin: 1, AMax: 1},
		{VMin: 0, VMax: 1, AMin: -1, AMax: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad limits %d accepted", i)
		}
	}
}

func TestStepBasicKinematics(t *testing.T) {
	s := State{P: 0, V: 10}
	next, a := Step(s, 2, 0.1, testLimits)
	if a != 2 {
		t.Fatalf("applied accel = %v", a)
	}
	wantP := 10*0.1 + 0.5*2*0.01
	wantV := 10 + 2*0.1
	if math.Abs(next.P-wantP) > 1e-12 || math.Abs(next.V-wantV) > 1e-12 {
		t.Fatalf("Step = %+v, want P=%v V=%v", next, wantP, wantV)
	}
}

func TestStepClampsAccelEnvelope(t *testing.T) {
	s := State{V: 5}
	_, a := Step(s, 100, 0.1, testLimits)
	if a != testLimits.AMax {
		t.Fatalf("accel not clamped to AMax: %v", a)
	}
	_, a = Step(s, -100, 0.1, testLimits)
	if a != testLimits.AMin {
		t.Fatalf("accel not clamped to AMin: %v", a)
	}
}

func TestStepVelocitySaturation(t *testing.T) {
	// Near top speed: full throttle must not push past VMax.
	s := State{V: 14.9}
	next, a := Step(s, 3, 0.1, testLimits)
	if next.V > testLimits.VMax+1e-12 {
		t.Fatalf("velocity exceeded VMax: %v", next.V)
	}
	if a >= 3 {
		t.Fatalf("accel should be reduced near VMax, got %v", a)
	}
	// Near standstill: braking must not produce negative speed.
	s = State{V: 0.1}
	next, _ = Step(s, -6, 0.1, testLimits)
	if next.V < testLimits.VMin-1e-12 {
		t.Fatalf("velocity below VMin: %v", next.V)
	}
}

func TestStepZeroDt(t *testing.T) {
	s := State{P: 3, V: 4}
	next, _ := Step(s, 2, 0, testLimits)
	if next != s {
		t.Fatalf("zero-dt step changed state: %+v", next)
	}
}

func TestStopDistance(t *testing.T) {
	if got := StopDistance(12, -6); got != 12 {
		t.Fatalf("StopDistance(12,-6) = %v, want 12", got)
	}
	if got := StopDistance(0, -6); got != 0 {
		t.Fatalf("StopDistance(0,-6) = %v", got)
	}
	if got := StopDistance(-3, -6); got != 0 {
		t.Fatalf("StopDistance of negative velocity = %v", got)
	}
	if got := StopDistance(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("StopDistance with no braking = %v, want +Inf", got)
	}
}

func TestTimeToReachConstantSpeed(t *testing.T) {
	if got := TimeToReach(10, 5, 0, 15); got != 2 {
		t.Fatalf("TimeToReach const = %v, want 2", got)
	}
}

func TestTimeToReachZeroDistance(t *testing.T) {
	if got := TimeToReach(0, 5, 1, 15); got != 0 {
		t.Fatalf("TimeToReach(0) = %v", got)
	}
	if got := TimeToReach(-3, 5, 1, 15); got != 0 {
		t.Fatalf("TimeToReach(<0) = %v", got)
	}
}

func TestTimeToReachAccelerating(t *testing.T) {
	// v=0, a=2, vMax huge: d = ½·a·t² → t = sqrt(2d/a) = sqrt(10) for d=10.
	got := TimeToReach(10, 0, 2, 1e9)
	if math.Abs(got-math.Sqrt(10)) > 1e-9 {
		t.Fatalf("TimeToReach accel = %v, want %v", got, math.Sqrt(10))
	}
}

func TestTimeToReachWithSaturation(t *testing.T) {
	// v=0, a=2, vMax=4: accel phase t1=2s covering 4m; remaining 6m at 4 m/s
	// = 1.5s → total 3.5s for d=10.
	got := TimeToReach(10, 0, 2, 4)
	if math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("TimeToReach saturated = %v, want 3.5", got)
	}
}

func TestTimeToReachAboveVMax(t *testing.T) {
	// Starting above vMax we travel at vMax.
	got := TimeToReach(10, 20, 1, 5)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("TimeToReach clamped v = %v, want 2", got)
	}
}

func TestTimeToReachUnreachable(t *testing.T) {
	if got := TimeToReach(10, 0, 0, 15); !math.IsInf(got, 1) {
		t.Fatalf("unreachable (v=0,a=0) = %v", got)
	}
	if got := TimeToReach(10, 0, -1, 15); !math.IsInf(got, 1) {
		t.Fatalf("unreachable (v=0,a<0) = %v", got)
	}
	// Decelerating: v=4, a=-2 stops after 4 m < 10 m.
	if got := TimeToReach(10, 4, -2, 15); !math.IsInf(got, 1) {
		t.Fatalf("unreachable (stops short) = %v", got)
	}
}

func TestTimeToReachDecelReachable(t *testing.T) {
	// v=10, a=-2: stops after 25 m, so 9 m is reachable.
	// Solve 9 = 10t - t² → t = (10 - sqrt(100-36))/2 = 1.
	got := TimeToReach(9, 10, -2, 15)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("TimeToReach decel = %v, want 1", got)
	}
}

func TestDistanceAfter(t *testing.T) {
	// No accel.
	if got := DistanceAfter(2, 5, 0, 0, 15); got != 10 {
		t.Fatalf("DistanceAfter const = %v", got)
	}
	// Accelerating without saturation: 5·2 + ½·1·4 = 12.
	if got := DistanceAfter(2, 5, 1, 0, 15); got != 12 {
		t.Fatalf("DistanceAfter accel = %v", got)
	}
	// Saturating at vMax=6 after 1 s: 5+0.5 + 6·1 = 11.5.
	if got := DistanceAfter(2, 5, 1, 0, 6); math.Abs(got-11.5) > 1e-12 {
		t.Fatalf("DistanceAfter saturated = %v", got)
	}
	// Braking to standstill (vMin=0) after 1 s from v=2, a=-2: 1 m then stop.
	if got := DistanceAfter(5, 2, -2, 0, 15); math.Abs(got-1) > 1e-12 {
		t.Fatalf("DistanceAfter stop = %v", got)
	}
	// Zero/negative time.
	if got := DistanceAfter(0, 5, 1, 0, 15); got != 0 {
		t.Fatalf("DistanceAfter t=0 = %v", got)
	}
}

// Property: repeated Step never violates the velocity envelope and position
// is monotone non-decreasing when VMin ≥ 0.
func TestQuickStepEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := State{P: rng.Float64()*100 - 50, V: rng.Float64() * testLimits.VMax}
		for i := 0; i < 200; i++ {
			prevP := s.P
			a := rng.Float64()*20 - 10
			s, _ = Step(s, a, 0.05, testLimits)
			if s.V < testLimits.VMin-1e-9 || s.V > testLimits.VMax+1e-9 {
				return false
			}
			if s.P < prevP-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: DistanceAfter is monotone in t.
func TestQuickDistanceAfterMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := rng.Float64() * 15
		a := rng.Float64()*12 - 6
		prev := 0.0
		for ti := 0.0; ti <= 5; ti += 0.25 {
			d := DistanceAfter(ti, v, a, 0, 15)
			if d < prev-1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TimeToReach and DistanceAfter are mutually consistent —
// travelling for the returned time covers at least d.
func TestQuickTimeDistanceConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Float64() * 50
		v := rng.Float64() * 10
		a := rng.Float64()*4 - 1
		vMax := 12.0
		tt := TimeToReach(d, v, a, vMax)
		if math.IsInf(tt, 1) {
			return true
		}
		got := DistanceAfter(tt, v, a, 0, vMax)
		return got >= d-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToCover(t *testing.T) {
	// Accelerating delegates to TimeToReach.
	if got, want := TimeToCover(10, 0, 2, 0, 1e9), math.Sqrt(10); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TimeToCover accel = %v, want %v", got, want)
	}
	// Constant speed.
	if got := TimeToCover(10, 5, 0, 0, 15); got != 2 {
		t.Fatalf("TimeToCover const = %v", got)
	}
	// Decelerating with positive floor: v=10 → vMin=2 at a=-2 takes 4 s
	// covering 24 m; d=30 needs 3 more seconds at 2 m/s → 7 s.
	if got := TimeToCover(30, 10, -2, 2, 15); math.Abs(got-7) > 1e-9 {
		t.Fatalf("TimeToCover floor = %v, want 7", got)
	}
	// Decelerating, reached during the decel phase: 9 = 10t - t² → t=1.
	if got := TimeToCover(9, 10, -2, 2, 15); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TimeToCover decel-phase = %v, want 1", got)
	}
	// Stops short with zero floor.
	if got := TimeToCover(30, 10, -2, 0, 15); !math.IsInf(got, 1) {
		t.Fatalf("TimeToCover stop-short = %v, want +Inf", got)
	}
	// Zero distance.
	if got := TimeToCover(0, 0, -1, 0, 15); got != 0 {
		t.Fatalf("TimeToCover d=0 = %v", got)
	}
	// Standstill with zero accel.
	if got := TimeToCover(5, 0, 0, 0, 15); !math.IsInf(got, 1) {
		t.Fatalf("TimeToCover standstill = %v, want +Inf", got)
	}
}

// Property: TimeToCover is consistent with DistanceAfter under the same
// saturation semantics.
func TestQuickTimeToCoverConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Float64() * 60
		v := rng.Float64() * 12
		a := rng.Float64()*10 - 6
		vMin := rng.Float64() * 2
		vMax := 12.0 + rng.Float64()*3
		tt := TimeToCover(d, v, a, vMin, vMax)
		if math.IsInf(tt, 1) {
			// Claimed unreachable: even after a long time the distance must
			// stay short of d.
			return DistanceAfter(1e6, v, a, vMin, vMax) < d+1e-6
		}
		got := DistanceAfter(tt, v, a, vMin, vMax)
		return math.Abs(got-d) < 1e-5 || got >= d-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
