// Package dynamics implements the discrete-time vehicle model of the paper
// (§II-A): a one-dimensional double integrator
//
//	p(t+Δt) = p(t) + v(t)·Δt + ½·a(t)·Δt²
//	v(t+Δt) = v(t) + a(t)·Δt
//
// subject to per-vehicle physical limits on velocity and acceleration.  The
// same model is shared by the simulator (ground truth), the reachability
// analysis, and the Kalman filter's process model, so they agree exactly.
package dynamics

import (
	"fmt"
	"math"
)

// State is the kinematic state of one vehicle on its (one-dimensional) path.
type State struct {
	P float64 // position along the path [m]
	V float64 // velocity [m/s]
}

// Limits captures a vehicle's physical envelope.  AMin is the strongest
// braking (negative), AMax the strongest acceleration (positive).
type Limits struct {
	VMin, VMax float64 // velocity range [m/s], VMin ≤ VMax
	AMin, AMax float64 // acceleration range [m/s²], AMin < 0 < AMax
}

// Validate reports whether the limits are internally consistent.
func (l Limits) Validate() error {
	switch {
	case l.VMin > l.VMax:
		return fmt.Errorf("dynamics: VMin %v > VMax %v", l.VMin, l.VMax)
	case l.AMin >= 0:
		return fmt.Errorf("dynamics: AMin %v must be negative", l.AMin)
	case l.AMax <= 0:
		return fmt.Errorf("dynamics: AMax %v must be positive", l.AMax)
	}
	return nil
}

// ClampAccel restricts a requested acceleration to the envelope, including
// the velocity bounds: the returned value, applied for dt seconds from
// velocity v, keeps the velocity inside [VMin, VMax].  This models
// saturation (an engine cannot push past top speed; brakes cannot drive the
// car backwards below VMin).
func (l Limits) ClampAccel(v, a, dt float64) float64 {
	if a > l.AMax {
		a = l.AMax
	}
	if a < l.AMin {
		a = l.AMin
	}
	if dt <= 0 {
		return a
	}
	if hi := (l.VMax - v) / dt; a > hi {
		a = hi
	}
	if lo := (l.VMin - v) / dt; a < lo {
		a = lo
	}
	return a
}

// Step advances the state by dt under acceleration a, clamped to the limits
// (see ClampAccel).  It returns the new state and the acceleration actually
// applied.
func Step(s State, a, dt float64, l Limits) (State, float64) {
	a = l.ClampAccel(s.V, a, dt)
	next := State{
		P: s.P + s.V*dt + 0.5*a*dt*dt,
		V: s.V + a*dt,
	}
	// Guard against float drift at the saturation boundary.
	if next.V > l.VMax {
		next.V = l.VMax
	}
	if next.V < l.VMin {
		next.V = l.VMin
	}
	return next, a
}

// StopDistance returns the distance covered when braking from velocity v at
// the constant (negative) acceleration aBrake down to zero velocity:
// d = -v²/(2·aBrake).  This is the braking distance d_b of the paper's
// slack definition (Eq. 5).
func StopDistance(v, aBrake float64) float64 {
	if v <= 0 {
		return 0
	}
	if aBrake >= 0 {
		return math.Inf(1)
	}
	return -v * v / (2 * aBrake)
}

// TimeToReach returns the earliest time to travel a nonnegative distance d
// starting at velocity v, accelerating at constant rate a but never
// exceeding vMax.  It returns +Inf when the distance is unreachable (e.g.
// v = 0 and a ≤ 0).  This closed form is the building block of the
// passing-time window estimates (paper Eq. 7 and Eq. 8).
func TimeToReach(d, v, a, vMax float64) float64 {
	if d <= 0 {
		return 0
	}
	if v > vMax {
		v = vMax
	}
	if a <= 0 {
		// Constant or decreasing speed: with a < 0 the vehicle may stop
		// before covering d.
		if a == 0 {
			if v <= 0 {
				return math.Inf(1)
			}
			return d / v
		}
		if v <= 0 {
			return math.Inf(1)
		}
		// Distance available before stopping: v²/(-2a).
		if avail := v * v / (-2 * a); avail < d {
			return math.Inf(1)
		}
		// Solve d = v·t + ½·a·t², take the smaller positive root.
		disc := v*v + 2*a*d
		if disc < 0 {
			disc = 0
		}
		return (v - math.Sqrt(disc)) / (-a)
	}
	// Accelerating phase up to vMax.
	if v >= vMax {
		return d / vMax
	}
	// Distance to reach vMax: (vMax² - v²) / (2a).
	dAccel := (vMax*vMax - v*v) / (2 * a)
	if dAccel >= d {
		// Reaches d while still accelerating: d = v·t + ½·a·t².
		disc := v*v + 2*a*d
		return (-v + math.Sqrt(disc)) / a
	}
	tAccel := (vMax - v) / a
	return tAccel + (d-dAccel)/vMax
}

// TimeToCover generalizes TimeToReach with a velocity floor: the vehicle
// accelerates (or decelerates) at constant rate a, with the velocity
// saturating inside [vMin, vMax], and the function returns the earliest time
// at which the nonnegative distance d has been covered (+Inf if never).
// The conservative passing-time upper bound τ_{1,max} (paper §IV) uses this
// with a = a_{1,min} and floor v_{1,min}.
func TimeToCover(d, v, a, vMin, vMax float64) float64 {
	if d <= 0 {
		return 0
	}
	if vMin < 0 {
		vMin = 0
	}
	if v < vMin {
		v = vMin
	}
	if v > vMax {
		v = vMax
	}
	if a > 0 {
		return TimeToReach(d, v, a, vMax)
	}
	if a == 0 {
		if v <= 0 {
			return math.Inf(1)
		}
		return d / v
	}
	// Decelerating toward vMin.
	tSat := (vMin - v) / a // ≥ 0
	dSat := v*tSat + 0.5*a*tSat*tSat
	if dSat >= d {
		disc := v*v + 2*a*d
		if disc < 0 {
			disc = 0
		}
		return (v - math.Sqrt(disc)) / (-a)
	}
	if vMin <= 0 {
		return math.Inf(1) // stops before covering d
	}
	return tSat + (d-dSat)/vMin
}

// DistanceAfter returns the distance covered after time t when starting at
// velocity v and applying constant acceleration a, with the velocity
// saturating inside [vMin, vMax].  It is the closed form behind the
// reachability bound of paper Eq. 2, generalized to both directions.
func DistanceAfter(t, v, a, vMin, vMax float64) float64 {
	if t <= 0 {
		return 0
	}
	if v < vMin {
		v = vMin
	}
	if v > vMax {
		v = vMax
	}
	if a == 0 {
		return v * t
	}
	var vSat float64
	if a > 0 {
		vSat = vMax
	} else {
		vSat = vMin
	}
	tSat := (vSat - v) / a // time until the velocity saturates (≥ 0)
	if tSat >= t {
		return v*t + 0.5*a*t*t
	}
	return v*tSat + 0.5*a*tSat*tSat + vSat*(t-tSat)
}
