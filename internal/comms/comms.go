// Package comms models the V2V communication channel of paper §II-A and the
// three disturbance settings of §V: "no disturbance" (every message arrives
// immediately), "messages delayed" (each message is delayed by Δt_d and may
// be dropped with probability p_d), and "messages lost" (every message is
// dropped, leaving only onboard sensors).
//
// Message *content* is always accurate — the channel only affects delivery
// time.  Randomness is injected through a caller-owned *rand.Rand so
// simulations are reproducible.
package comms

import (
	"fmt"
	"math/rand"
	"sort"

	"safeplan/internal/disturb"
)

// Message is a V2V state report: the exact kinematic state of the sender's
// vehicle at timestamp T.
type Message struct {
	Sender int     // sender vehicle index
	T      float64 // timestamp the state refers to [s]
	P      float64 // position at T [m]
	V      float64 // velocity at T [m/s]
	A      float64 // acceleration applied at T [m/s²]
}

// Config describes a channel's disturbance behaviour.
type Config struct {
	Delay    float64 // Δt_d: delivery delay applied to every surviving message [s]
	DropProb float64 // p_d: probability each message is dropped, in [0, 1]
	Lost     bool    // if true, every message is dropped ("messages lost")

	// OutageStart/OutageDuration model a communication blackout (e.g. an
	// occlusion or interferer): every message whose timestamp falls in
	// [OutageStart, OutageStart+OutageDuration) is dropped.  A zero
	// duration disables the outage.
	OutageStart    float64
	OutageDuration float64

	// Model, when non-nil, replaces the Delay/DropProb pair with a
	// composable disturbance process (Gilbert–Elliott burst loss, delay
	// jitter with reordering, stale replay, scripted phase schedules —
	// see internal/disturb).  Lost and the outage window still apply
	// first; they are deterministic and consume no randomness.
	Model disturb.Model
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Delay < 0 {
		return fmt.Errorf("comms: negative delay %v", c.Delay)
	}
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("comms: drop probability %v outside [0,1]", c.DropProb)
	}
	if c.OutageDuration < 0 {
		return fmt.Errorf("comms: negative outage duration %v", c.OutageDuration)
	}
	if c.Model != nil {
		if err := c.Model.Validate(); err != nil {
			return fmt.Errorf("comms: %w", err)
		}
	}
	return nil
}

// inOutage reports whether a message stamped t falls into the blackout.
func (c Config) inOutage(t float64) bool {
	return c.OutageDuration > 0 && t >= c.OutageStart && t < c.OutageStart+c.OutageDuration
}

// NoDisturbance returns the perfect-communication setting.
func NoDisturbance() Config { return Config{} }

// Delayed returns the "messages delayed" setting of the paper's evaluation:
// delay Δt_d with drop probability pd.
func Delayed(delay, pd float64) Config { return Config{Delay: delay, DropProb: pd} }

// Lost returns the "messages lost" setting (sensors only).
func Lost() Config { return Config{Lost: true} }

// Disturbed returns a channel governed by the given disturbance model.
func Disturbed(m disturb.Model) Config { return Config{Model: m} }

// pending is a message waiting for its delivery time.
type pending struct {
	deliverAt float64
	msg       Message
}

// Channel simulates the unreliable V2V link from one sender to the ego
// vehicle.  It is not safe for concurrent use.
type Channel struct {
	cfg   Config
	proc  disturb.Process // nil for the legacy Delay/DropProb pair
	drop  *rand.Rand      // loss decisions only
	delay *rand.Rand      // latency draws only
	queue []pending

	sent, dropped, delivered, replayed int
}

// NewChannel creates a channel with the given disturbance configuration.
// rng must be non-nil; it seeds two independent derived streams — one for
// loss decisions, one for latency draws — so sweeping a loss parameter
// (p_d, burst dwell) never perturbs the delays of unrelated messages in a
// seed-paired A/B comparison.
func NewChannel(cfg Config, rng *rand.Rand) (*Channel, error) {
	ch := &Channel{}
	if err := ch.Reset(cfg, rng); err != nil {
		return nil, err
	}
	return ch, nil
}

// Reset re-initialises the channel in place for a new episode, reusing the
// queue backing array and the two derived rand streams.  It draws from rng
// in exactly the order NewChannel does (drop seed, then delay seed), so a
// reset channel is bit-identical to a freshly constructed one.
func (c *Channel) Reset(cfg Config, rng *rand.Rand) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if rng == nil {
		return fmt.Errorf("comms: nil rng")
	}
	if c.drop == nil {
		c.drop = rand.New(rand.NewSource(rng.Int63()))
		c.delay = rand.New(rand.NewSource(rng.Int63()))
	} else {
		c.drop.Seed(rng.Int63())
		c.delay.Seed(rng.Int63())
	}
	c.cfg = cfg
	c.proc = nil
	if cfg.Model != nil {
		c.proc = cfg.Model.New(c.drop, c.delay)
	}
	c.queue = c.queue[:0]
	c.sent, c.dropped, c.delivered, c.replayed = 0, 0, 0, 0
	return nil
}

// Send offers a message to the channel at its timestamp m.T.  Depending on
// the configuration the message is dropped or enqueued for delivery after
// its per-message latency; disturbance models may additionally enqueue
// stale duplicate copies.
func (c *Channel) Send(m Message) {
	c.sent++
	if c.cfg.Lost || c.cfg.inOutage(m.T) {
		c.dropped++
		return
	}
	if c.proc != nil {
		d := c.proc.Next(m.T)
		if d.Drop {
			c.dropped++
			return
		}
		c.enqueue(m.T+d.Delay, m)
		for _, extra := range d.Dup {
			c.replayed++
			c.enqueue(m.T+extra, m)
		}
		return
	}
	if c.cfg.DropProb > 0 && c.drop.Float64() < c.cfg.DropProb {
		c.dropped++
		return
	}
	c.enqueue(m.T+c.cfg.Delay, m)
}

// enqueue inserts one delivery, keeping the queue sorted by delivery time
// (jitter models enqueue out of order; the stable sort keeps ties in send
// order, so Poll output is deterministic).
func (c *Channel) enqueue(at float64, m Message) {
	c.queue = append(c.queue, pending{deliverAt: at, msg: m})
	if n := len(c.queue); n > 1 && c.queue[n-2].deliverAt > c.queue[n-1].deliverAt {
		sort.SliceStable(c.queue, func(i, j int) bool {
			return c.queue[i].deliverAt < c.queue[j].deliverAt
		})
	}
}

// Poll returns, in delivery order, every message whose delivery time is
// ≤ now, removing them from the queue.  It allocates a fresh slice per
// call; hot paths should hold a scratch buffer and use PollAppend.
func (c *Channel) Poll(now float64) []Message {
	return c.PollAppend(now, nil)
}

// PollAppend is the allocation-free form of Poll: due messages are appended
// to buf (which may be nil or a reused scratch slice) and the extended
// slice is returned.  Delivery order and side effects are identical to
// Poll.
func (c *Channel) PollAppend(now float64, buf []Message) []Message {
	i := 0
	for ; i < len(c.queue); i++ {
		if c.queue[i].deliverAt > now {
			break
		}
		buf = append(buf, c.queue[i].msg)
	}
	if i > 0 {
		c.queue = append(c.queue[:0], c.queue[i:]...)
		c.delivered += i
	}
	return buf
}

// Pending returns how many messages are in flight.
func (c *Channel) Pending() int { return len(c.queue) }

// Stats returns the lifetime counters (sent, dropped, delivered).
func (c *Channel) Stats() (sent, dropped, delivered int) {
	return c.sent, c.dropped, c.delivered
}

// Replayed returns how many stale duplicate deliveries the disturbance
// model has enqueued.
func (c *Channel) Replayed() int { return c.replayed }

// Ticker generates the periodic broadcast/sensing instants of the paper
// (every Δt_m or Δt_s seconds).  It counts periods with an integer index so
// repeated float addition cannot drift.
type Ticker struct {
	period float64
	next   int // index of the next tick
}

// NewTicker returns a ticker firing at 0, period, 2·period, …  A
// non-positive period yields a ticker that never fires.
func NewTicker(period float64) *Ticker {
	return &Ticker{period: period}
}

// MakeTicker is the by-value form of NewTicker; episode step loops keep it
// on the stack instead of heap-allocating a fresh ticker per episode.
func MakeTicker(period float64) Ticker {
	return Ticker{period: period}
}

// Due reports whether a tick time ≤ now is pending and, if so, consumes it
// and returns its exact scheduled time.  Call repeatedly to drain multiple
// elapsed ticks.
func (tk *Ticker) Due(now float64) (float64, bool) {
	if tk.period <= 0 {
		return 0, false
	}
	at := float64(tk.next) * tk.period
	// Tolerate float error in the caller's clock accumulation.
	if at <= now+1e-9 {
		tk.next++
		return at, true
	}
	return 0, false
}

// Reset rewinds the ticker to fire at 0 again.
func (tk *Ticker) Reset() { tk.next = 0 }
