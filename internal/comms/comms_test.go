package comms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/disturb"
)

func newCh(t *testing.T, cfg Config, seed int64) *Channel {
	t.Helper()
	ch, err := NewChannel(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return ch
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Delay: -1}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
	if err := (Config{DropProb: 1.5}).Validate(); err == nil {
		t.Error("drop probability > 1 accepted")
	}
	if err := (Config{DropProb: -0.1}).Validate(); err == nil {
		t.Error("negative drop probability accepted")
	}
	if err := NoDisturbance().Validate(); err != nil {
		t.Errorf("NoDisturbance invalid: %v", err)
	}
	if err := Delayed(0.25, 0.5).Validate(); err != nil {
		t.Errorf("Delayed invalid: %v", err)
	}
}

func TestNewChannelRejectsNilRNG(t *testing.T) {
	if _, err := NewChannel(NoDisturbance(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestPerfectDeliveryImmediate(t *testing.T) {
	ch := newCh(t, NoDisturbance(), 1)
	ch.Send(Message{Sender: 1, T: 0.5, P: 10})
	got := ch.Poll(0.5)
	if len(got) != 1 || got[0].P != 10 {
		t.Fatalf("Poll = %v", got)
	}
	if len(ch.Poll(1)) != 0 {
		t.Fatal("message delivered twice")
	}
}

func TestDelayHoldsMessage(t *testing.T) {
	ch := newCh(t, Delayed(0.25, 0), 1)
	ch.Send(Message{T: 1.0, V: 7})
	if got := ch.Poll(1.2); len(got) != 0 {
		t.Fatalf("message delivered before delay elapsed: %v", got)
	}
	got := ch.Poll(1.25)
	if len(got) != 1 || got[0].V != 7 {
		t.Fatalf("Poll after delay = %v", got)
	}
}

func TestLostDropsEverything(t *testing.T) {
	ch := newCh(t, Lost(), 1)
	for i := 0; i < 100; i++ {
		ch.Send(Message{T: float64(i)})
	}
	if got := ch.Poll(math.Inf(1)); len(got) != 0 {
		t.Fatalf("lost channel delivered %d messages", len(got))
	}
	sent, dropped, delivered := ch.Stats()
	if sent != 100 || dropped != 100 || delivered != 0 {
		t.Fatalf("stats = %d/%d/%d", sent, dropped, delivered)
	}
}

func TestDropProbabilityRoughlyRespected(t *testing.T) {
	const n = 20000
	ch := newCh(t, Delayed(0, 0.3), 42)
	for i := 0; i < n; i++ {
		ch.Send(Message{T: float64(i)})
	}
	_, dropped, _ := ch.Stats()
	rate := float64(dropped) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("empirical drop rate %.3f, want ≈0.30", rate)
	}
}

func TestPollOrderAndPartialDrain(t *testing.T) {
	ch := newCh(t, Delayed(0.5, 0), 1)
	for i := 0; i < 5; i++ {
		ch.Send(Message{T: float64(i), P: float64(i)})
	}
	got := ch.Poll(2.5) // delivers T=0,1,2 (deliverAt 0.5,1.5,2.5)
	if len(got) != 3 {
		t.Fatalf("Poll delivered %d messages, want 3", len(got))
	}
	for i, m := range got {
		if m.P != float64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	if ch.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", ch.Pending())
	}
	rest := ch.Poll(math.Inf(1))
	if len(rest) != 2 || rest[0].P != 3 || rest[1].P != 4 {
		t.Fatalf("remaining = %v", rest)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		ch := newCh(t, Delayed(0.1, 0.5), 99)
		var pattern []int
		for i := 0; i < 50; i++ {
			ch.Send(Message{T: float64(i)})
			sent, dropped, _ := ch.Stats()
			pattern = append(pattern, sent-dropped)
		}
		return pattern
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("channel not deterministic for equal seeds")
		}
	}
}

func TestModelValidatedByConfig(t *testing.T) {
	if err := (Config{Model: disturb.IID{DropProb: 2}}).Validate(); err == nil {
		t.Fatal("invalid disturbance model accepted")
	}
	if err := Disturbed(disturb.GilbertElliott{DropBad: 1}).Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestModelDrivesChannel(t *testing.T) {
	// A blackout model must drop everything regardless of the legacy
	// fields.
	ch := newCh(t, Disturbed(disturb.Blackout{}), 1)
	for i := 0; i < 20; i++ {
		ch.Send(Message{T: float64(i)})
	}
	if got := ch.Poll(math.Inf(1)); len(got) != 0 {
		t.Fatalf("blackout delivered %d messages", len(got))
	}
}

func TestModelJitterDeliversInArrivalOrder(t *testing.T) {
	ch := newCh(t, Disturbed(disturb.Jitter{Base: 0.05, Spread: 0.6}), 3)
	const n = 200
	for i := 0; i < n; i++ {
		ch.Send(Message{T: float64(i) * 0.1, P: float64(i)})
	}
	got := ch.Poll(math.Inf(1))
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	// Jitter must actually reorder: some message must arrive after a
	// fresher one.
	reordered := false
	for i := 1; i < len(got); i++ {
		if got[i].T < got[i-1].T {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("jitter channel delivered in send order — no reordering")
	}
}

func TestModelReplayDeliversStaleDuplicates(t *testing.T) {
	ch := newCh(t, Disturbed(disturb.Replay{Prob: 1, ExtraMin: 0.5, ExtraMax: 0.5}), 1)
	ch.Send(Message{T: 1, P: 10})
	ch.Send(Message{T: 2, P: 20})
	if ch.Replayed() != 2 {
		t.Fatalf("Replayed = %d, want 2", ch.Replayed())
	}
	got := ch.Poll(math.Inf(1))
	// Originals at 1, 2 plus duplicates at 1.5, 2.5 → T order 1, 1, 2, 2.
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(got))
	}
	if got[1].T != 1 || got[2].T != 2 {
		t.Fatalf("delivery order %v", got)
	}
	// The duplicate of T=1 arrives at 1.5 — by then fresher traffic
	// (T=2 at 2.0) is still pending, but against a polled filter the
	// T=1 copy is stale on arrival after the first original.
}

// TestDropSweepLeavesDelaysUntouched covers the split-RNG fix at the
// channel level: two channels with the same seed but different drop
// probabilities must assign identical latencies to each sent message.
func TestDropSweepLeavesDelaysUntouched(t *testing.T) {
	arrivals := func(dropProb float64) map[float64]float64 {
		m := disturb.Jitter{Base: 0.05, Spread: 0.4, TailProb: 0.2, TailMean: 0.5, DropProb: dropProb}
		ch := newCh(t, Disturbed(m), 77)
		for i := 0; i < 300; i++ {
			ch.Send(Message{T: float64(i) * 0.1})
		}
		out := map[float64]float64{}
		for _, pd := range ch.queue {
			out[pd.msg.T] = pd.deliverAt
		}
		return out
	}
	a, b := arrivals(0), arrivals(0.6)
	if len(b) >= len(a) {
		t.Fatal("higher drop probability did not drop more messages")
	}
	for tm, at := range b {
		if a[tm] != at {
			t.Fatalf("message T=%v: delay changed across drop sweep (%v vs %v)", tm, a[tm], at)
		}
	}
}

func TestTickerFiresAtMultiples(t *testing.T) {
	tk := NewTicker(0.1)
	var fired []float64
	for step := 0; step <= 10; step++ {
		now := float64(step) * 0.05
		for {
			at, ok := tk.Due(now)
			if !ok {
				break
			}
			fired = append(fired, at)
		}
	}
	want := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if math.Abs(fired[i]-want[i]) > 1e-9 {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestTickerToleratesFloatDrift(t *testing.T) {
	tk := NewTicker(0.1)
	// Accumulate 0.05 naively; 0.1 multiples won't be exact.
	now := 0.0
	count := 0
	for i := 0; i < 200; i++ {
		for {
			if _, ok := tk.Due(now); !ok {
				break
			}
			count++
		}
		now += 0.05
	}
	// now ends near 10.0 → ticks at 0, 0.1, …, 9.9(+last) ⇒ 100 ticks ±1.
	if count < 99 || count > 101 {
		t.Fatalf("tick count = %d, want ≈100", count)
	}
}

func TestTickerNeverFiresNonPositive(t *testing.T) {
	tk := NewTicker(0)
	if _, ok := tk.Due(100); ok {
		t.Fatal("zero-period ticker fired")
	}
}

func TestTickerReset(t *testing.T) {
	tk := NewTicker(1)
	tk.Due(0)
	tk.Due(1)
	tk.Reset()
	at, ok := tk.Due(0)
	if !ok || at != 0 {
		t.Fatal("Reset did not rewind ticker")
	}
}

// Property: with DropProb 0 and any delay, every sent message is eventually
// delivered exactly once, in timestamp order.
func TestQuickLosslessConservation(t *testing.T) {
	f := func(seed int64, delayRaw float64) bool {
		delay := math.Mod(math.Abs(delayRaw), 2)
		if math.IsNaN(delay) {
			delay = 0
		}
		ch, err := NewChannel(Config{Delay: delay}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		const n = 30
		for i := 0; i < n; i++ {
			ch.Send(Message{T: float64(i) * 0.1, P: float64(i)})
		}
		var got []Message
		for now := 0.0; now < 10; now += 0.05 {
			got = append(got, ch.Poll(now)...)
		}
		got = append(got, ch.Poll(math.Inf(1))...)
		if len(got) != n {
			return false
		}
		for i, m := range got {
			if m.P != float64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
