package core

import (
	"math"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
	"safeplan/internal/planner"
	"safeplan/internal/telemetry"
)

// MultiAgent is the multi-vehicle counterpart of Agent: the paper's system
// model has the ego receive messages from vehicles C_1 … C_{n−1} (§II-A),
// and in the left-turn scenario several oncoming vehicles may cross the
// conflict zone in sequence.  Each control step the agent receives one
// Knowledge per tracked vehicle.
type MultiAgent interface {
	// Name identifies the agent in results tables.
	Name() string
	// Accel returns the acceleration command and an emergency flag.
	Accel(t float64, ego dynamics.State, ks []Knowledge) (a float64, emergency bool)
}

// MostConstrainingWindow reduces a set of per-vehicle passing windows to
// the single window handed to κ_n: the non-empty window with the earliest
// possible entry.  With a stream of oncoming vehicles this makes the
// planner handle them sequentially — yield to the nearest conflict, then
// re-evaluate against the next — which is exactly the behaviour the
// 5-feature planner input of the case study can express.
func MostConstrainingWindow(ws []interval.Interval) interval.Interval {
	best := interval.Empty()
	bestLo := math.Inf(1)
	for _, w := range ws {
		if w.IsEmpty() {
			continue
		}
		if w.Lo < bestLo {
			best = w
			bestLo = w.Lo
		}
	}
	return best
}

// MultiPure runs κ_n against the most constraining conservative window —
// the multi-vehicle baseline.
type MultiPure struct {
	Cfg     leftturn.Config
	Planner planner.Planner
}

// Name implements MultiAgent.
func (p *MultiPure) Name() string { return "pure-multi:" + p.Planner.Name() }

// Accel implements MultiAgent.
func (p *MultiPure) Accel(t float64, ego dynamics.State, ks []Knowledge) (float64, bool) {
	// Single-pass reduction (no window slice): agents are shared across
	// campaign workers, so they stay stateless AND allocation-free.
	best := interval.Empty()
	bestLo := math.Inf(1)
	for _, k := range ks {
		w := p.Cfg.ConservativeWindow(k.Fused)
		if !w.IsEmpty() && w.Lo < bestLo {
			best, bestLo = w, w.Lo
		}
	}
	return p.Planner.Accel(t, ego, best), false
}

// MultiCompound is the compound planner generalized to several oncoming
// vehicles: the runtime monitor assesses the ego state against *every*
// vehicle's sound window independently — any emergency verdict wins, and
// the commitment guards combine as the tightest floor and ceiling.  If the
// combined guards conflict (committed to pass before one vehicle but after
// another with incompatible accelerations), the emergency planner takes
// over.
type MultiCompound struct {
	Cfg     leftturn.Config
	Planner planner.Planner
	Monitor monitor.Monitor

	// AggressiveSet selects the aggressive unsafe-set estimation for κ_n's
	// input, as in the single-vehicle Compound.
	AggressiveSet bool

	// Collector, when non-nil, receives the combined monitor selection
	// (over all tracked vehicles) every control step.
	Collector telemetry.Collector

	label string
}

// SetCollector attaches a telemetry collector; part of the optional
// instrumentation contract recognized by the public run options.
func (c *MultiCompound) SetCollector(tc telemetry.Collector) { c.Collector = tc }

// decide reports the step's combined monitor selection to the collector.
func (c *MultiCompound) decide(reason string) {
	if c.Collector != nil {
		c.Collector.OnMonitorDecision(reason)
	}
}

// NewMultiBasic builds the multi-vehicle basic compound design.
func NewMultiBasic(cfg leftturn.Config, p planner.Planner) *MultiCompound {
	return &MultiCompound{
		Cfg:     cfg,
		Planner: p,
		Monitor: monitor.New(cfg),
		label:   "basic-multi:" + p.Name(),
	}
}

// NewMultiUltimate builds the multi-vehicle ultimate compound design.
func NewMultiUltimate(cfg leftturn.Config, p planner.Planner) *MultiCompound {
	return &MultiCompound{
		Cfg:           cfg,
		Planner:       p,
		Monitor:       monitor.New(cfg),
		AggressiveSet: true,
		label:         "ultimate-multi:" + p.Name(),
	}
}

// Name implements MultiAgent.
func (c *MultiCompound) Name() string {
	if c.label != "" {
		return c.label
	}
	return "compound-multi:" + c.Planner.Name()
}

// Accel implements MultiAgent.
func (c *MultiCompound) Accel(t float64, ego dynamics.State, ks []Knowledge) (float64, bool) {
	floor := math.Inf(-1)
	ceil := math.Inf(1)
	hasFloor, hasCeil := false, false
	for _, k := range ks {
		w := c.Cfg.ConservativeWindow(k.Sound)
		verdict := c.Monitor.Assess(ego, w)
		if verdict.Emergency {
			c.decide(verdict.Reason)
			return c.Cfg.EmergencyAccel(ego), true
		}
		if verdict.HasFloor && verdict.Floor > floor {
			floor, hasFloor = verdict.Floor, true
		}
		if verdict.HasCeil && verdict.Ceil < ceil {
			ceil, hasCeil = verdict.Ceil, true
		}
	}
	if hasFloor && hasCeil && floor > ceil {
		// Incompatible commitments (must out-run one vehicle but wait for
		// another): fall back to κ_e, which resolves by feasibility.
		c.decide(telemetry.ReasonInfeasible)
		return c.Cfg.EmergencyAccel(ego), true
	}
	c.decide(telemetry.ReasonPlanner)

	// Single-pass MostConstrainingWindow reduction: equivalent to building
	// the per-vehicle window slice and reducing it, without the per-step
	// allocation (the agent is shared across workers, so it cannot carry
	// mutable scratch).
	best := interval.Empty()
	bestLo := math.Inf(1)
	for _, k := range ks {
		var w interval.Interval
		if c.AggressiveSet {
			w = c.Cfg.AggressiveWindow(k.Fused)
		} else {
			w = c.Cfg.ConservativeWindow(k.Fused)
		}
		if !w.IsEmpty() && w.Lo < bestLo {
			best, bestLo = w, w.Lo
		}
	}
	a := c.Planner.Accel(t, ego, best)
	if hasFloor && a < floor {
		a = floor
	}
	if hasCeil && a > ceil {
		a = ceil
	}
	return a, false
}

// SingleAsMulti adapts a single-vehicle Agent to the MultiAgent interface
// for campaigns that mix vehicle counts; it considers only the most
// constraining vehicle, which is NOT safe in general — it exists for
// baseline comparisons in the multi-vehicle experiments.
type SingleAsMulti struct {
	Cfg   leftturn.Config
	Agent Agent
}

// Name implements MultiAgent.
func (s *SingleAsMulti) Name() string { return s.Agent.Name() + "+nearest" }

// Accel implements MultiAgent.
func (s *SingleAsMulti) Accel(t float64, ego dynamics.State, ks []Knowledge) (float64, bool) {
	if len(ks) == 0 {
		return s.Agent.Accel(t, ego, Knowledge{
			Sound: emptyEstimate(), Fused: emptyEstimate(),
		})
	}
	// Pick the vehicle with the earliest sound entry.
	best := 0
	bestLo := math.Inf(1)
	for i, k := range ks {
		w := s.Cfg.ConservativeWindow(k.Sound)
		if !w.IsEmpty() && w.Lo < bestLo {
			best, bestLo = i, w.Lo
		}
	}
	return s.Agent.Accel(t, ego, ks[best])
}

func emptyEstimate() leftturn.OncomingEstimate {
	return leftturn.OncomingEstimate{P: interval.Empty(), V: interval.Empty()}
}
