// Package core implements the paper's primary contribution: the compound
// planner κ_c (§III, Fig. 2).  Given any NN-based planner κ_n, the compound
// planner wires together
//
//   - the runtime monitor, which selects the emergency planner exactly when
//     the current state is in the boundary safe set (internal/monitor),
//   - the emergency planner κ_e of the scenario (leftturn.EmergencyAccel),
//   - and the aggressive unsafe-set estimation (leftturn.AggressiveWindow),
//     which feeds κ_n a compact window while the monitor keeps using the
//     sound conservative one.
//
// The information filter lives upstream (internal/fusion): the compound
// planner consumes its output as a leftturn.OncomingEstimate each step, so
// the same Agent works under any communication setting.
package core

import (
	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
	"safeplan/internal/planner"
	"safeplan/internal/telemetry"
)

// Knowledge is what the information filter delivers each control step:
// a guaranteed (sound) estimate for the safety machinery and the sharpest
// available estimate for the efficiency machinery.  Without the Kalman
// component the two coincide.
type Knowledge struct {
	// Sound is guaranteed to contain the true oncoming state; the runtime
	// monitor's unsafe-set estimation uses it, which is what makes the
	// safety guarantee unconditional.
	Sound leftturn.OncomingEstimate
	// Fused is the sharpest estimate (Kalman-joined when the information
	// filter is enabled); the embedded planner's unsafe-set input uses it.
	Fused leftturn.OncomingEstimate
}

// Agent is a closed-loop decision maker: each control step it receives the
// time, the ego state, and the filter knowledge about the oncoming vehicle,
// and returns the commanded acceleration plus whether the emergency planner
// produced it.
type Agent interface {
	// Name identifies the agent in results tables.
	Name() string
	// Accel returns the acceleration command and an emergency flag.
	Accel(t float64, ego dynamics.State, k Knowledge) (a float64, emergency bool)
}

// PureNN runs the embedded planner alone — no monitor, no emergency
// planner — exactly the baseline κ_n of the paper's evaluation.  The
// planner receives the conservative window over the estimate (the standard
// unsafe-set estimation).
type PureNN struct {
	Cfg     leftturn.Config
	Planner planner.Planner
}

// Name implements Agent.
func (p *PureNN) Name() string { return "pure:" + p.Planner.Name() }

// Accel implements Agent.
func (p *PureNN) Accel(t float64, ego dynamics.State, k Knowledge) (float64, bool) {
	w := p.Cfg.ConservativeWindow(k.Fused)
	return p.Planner.Accel(t, ego, w), false
}

// Compound is the paper's compound planner κ_c.
type Compound struct {
	Cfg     leftturn.Config
	Planner planner.Planner
	Monitor monitor.Monitor

	// AggressiveSet selects the aggressive unsafe-set estimation (Eq. 8)
	// for the embedded planner's input.  The monitor always uses the
	// conservative set regardless.
	AggressiveSet bool

	// MonitorOnFused makes the runtime monitor consume the fused (Kalman-
	// joined) estimate instead of the sound one — the paper's literal
	// design, in which the information filter output feeds the monitor
	// directly.  This trades the unconditional guarantee for a sharper
	// unsafe set; it exists for the ablation study only.
	MonitorOnFused bool

	// Collector, when non-nil, receives the monitor's selection reason
	// every control step (telemetry.ReasonPlanner when κ_n keeps
	// control).  Shared campaign collectors must be concurrency-safe.
	Collector telemetry.Collector

	label string
}

// SetCollector attaches a telemetry collector; part of the optional
// instrumentation contract recognized by the public run options.
func (c *Compound) SetCollector(tc telemetry.Collector) { c.Collector = tc }

// NewBasic builds the basic compound design of the evaluation: runtime
// monitor and emergency planner only (κ_cb).  Pair it with a fusion filter
// that has the Kalman component disabled.
func NewBasic(cfg leftturn.Config, p planner.Planner) *Compound {
	return &Compound{
		Cfg:     cfg,
		Planner: p,
		Monitor: monitor.New(cfg),
		label:   "basic:" + p.Name(),
	}
}

// NewUltimate builds the ultimate compound design (κ_cu): monitor,
// emergency planner, and aggressive unsafe-set estimation.  Pair it with a
// fusion filter that has the Kalman component (information filter) enabled.
func NewUltimate(cfg leftturn.Config, p planner.Planner) *Compound {
	return &Compound{
		Cfg:           cfg,
		Planner:       p,
		Monitor:       monitor.New(cfg),
		AggressiveSet: true,
		label:         "ultimate:" + p.Name(),
	}
}

// Name implements Agent.
func (c *Compound) Name() string {
	if c.label != "" {
		return c.label
	}
	return "compound:" + c.Planner.Name()
}

// Accel implements Agent: the runtime monitor assesses the conservative
// window over the *sound* estimate; on an emergency verdict κ_e takes over,
// otherwise κ_n plans against its window over the fused estimate
// (aggressive when AggressiveSet), subject to the monitor's commitment
// guards.
func (c *Compound) Accel(t float64, ego dynamics.State, k Knowledge) (float64, bool) {
	monEst := k.Sound
	if c.MonitorOnFused {
		monEst = k.Fused
	}
	wSound := c.Cfg.ConservativeWindow(monEst)
	verdict := c.Monitor.Assess(ego, wSound)
	if c.Collector != nil {
		reason := verdict.Reason
		if !verdict.Emergency {
			reason = telemetry.ReasonPlanner
		}
		c.Collector.OnMonitorDecision(reason)
	}
	if verdict.Emergency {
		return c.Cfg.EmergencyAccel(ego), true
	}
	var w interval.Interval
	if c.AggressiveSet {
		w = c.Cfg.AggressiveWindow(k.Fused)
	} else {
		w = c.Cfg.ConservativeWindow(k.Fused)
	}
	a := c.Planner.Accel(t, ego, w)
	return verdict.Apply(a), false
}
