package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/planner"
)

func TestMostConstrainingWindow(t *testing.T) {
	got := MostConstrainingWindow([]interval.Interval{
		interval.New(3, 8),
		interval.New(1, 4),
		interval.Empty(),
		interval.New(6, 9),
	})
	if got.Lo != 1 || got.Hi != 4 {
		t.Fatalf("MostConstrainingWindow = %v", got)
	}
	if !MostConstrainingWindow(nil).IsEmpty() {
		t.Fatal("empty input should give empty window")
	}
	if !MostConstrainingWindow([]interval.Interval{interval.Empty()}).IsEmpty() {
		t.Fatal("all-empty input should give empty window")
	}
}

func TestMultiNames(t *testing.T) {
	c := scenario()
	p := planner.ConservativeExpert(c)
	if got := (&MultiPure{Cfg: c, Planner: p}).Name(); got != "pure-multi:expert-conservative" {
		t.Fatalf("MultiPure name = %q", got)
	}
	if got := NewMultiBasic(c, p).Name(); got != "basic-multi:expert-conservative" {
		t.Fatalf("MultiBasic name = %q", got)
	}
	if got := NewMultiUltimate(c, p).Name(); got != "ultimate-multi:expert-conservative" {
		t.Fatalf("MultiUltimate name = %q", got)
	}
	if got := (&MultiCompound{Cfg: c, Planner: p}).Name(); got != "compound-multi:expert-conservative" {
		t.Fatalf("zero-value MultiCompound name = %q", got)
	}
	if got := (&SingleAsMulti{Cfg: c, Agent: NewBasic(c, p)}).Name(); got != "basic:expert-conservative+nearest" {
		t.Fatalf("SingleAsMulti name = %q", got)
	}
}

func TestMultiMatchesSingleForOneVehicle(t *testing.T) {
	c := scenario()
	p := planner.AggressiveExpert(c)
	single := NewUltimate(c, p)
	multi := NewMultiUltimate(c, p)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		ego := dynamics.State{P: -40 + rng.Float64()*50, V: rng.Float64() * c.Ego.VMax}
		onc := dynamics.State{P: -45 + rng.Float64()*60, V: rng.Float64() * c.Oncoming.VMax}
		k := exactKnowledge(onc, 0)
		a1, e1 := single.Accel(0, ego, k)
		a2, e2 := multi.Accel(0, ego, []Knowledge{k})
		if a1 != a2 || e1 != e2 {
			t.Fatalf("single (%v,%v) != multi (%v,%v) for ego=%+v onc=%+v", a1, e1, a2, e2, ego, onc)
		}
	}
}

func TestMultiEmergencyIfAnyVehicleTriggers(t *testing.T) {
	c := scenario()
	agent := NewMultiBasic(c, planner.AggressiveExpert(c))
	v := 10.0
	p := c.Geometry.PF - c.BrakingDistance(v) - c.BoundaryThreshold(v)/2
	ego := dynamics.State{P: p, V: v}
	far := exactKnowledge(dynamics.State{P: -200, V: 3}, 0)  // harmless
	near := exactKnowledge(dynamics.State{P: -10, V: 12}, 0) // imminent
	if _, em := agent.Accel(0, ego, []Knowledge{far, far}); em {
		t.Fatal("two harmless vehicles should not trigger emergency")
	}
	if _, em := agent.Accel(0, ego, []Knowledge{far, near}); !em {
		t.Fatal("one imminent vehicle must trigger emergency")
	}
}

func TestMultiGuardsCombine(t *testing.T) {
	c := scenario()
	brake := planner.Func{PlannerName: "brake", F: func(float64, dynamics.State, interval.Interval) float64 {
		return c.Ego.AMin
	}}
	agent := NewMultiBasic(c, brake)
	ego := dynamics.State{P: 0, V: 12} // committed
	// Two vehicles arriving late: pass-before floors from both.
	k1 := exactKnowledge(dynamics.State{P: -60, V: 5}, 0)
	k2 := exactKnowledge(dynamics.State{P: -80, V: 5}, 0)
	a, em := agent.Accel(0, ego, []Knowledge{k1, k2})
	if em {
		t.Fatal("unexpected emergency")
	}
	if a <= c.Ego.AMin {
		t.Fatalf("combined floor did not clamp: %v", a)
	}
}

func TestMultiNoVehicles(t *testing.T) {
	c := scenario()
	agent := NewMultiUltimate(c, planner.ConservativeExpert(c))
	ego := dynamics.State{P: -30, V: 8}
	a, em := agent.Accel(0, ego, nil)
	if em {
		t.Fatal("emergency with no vehicles")
	}
	if a != c.Ego.AMax {
		t.Fatalf("empty road should be full throttle, got %v", a)
	}
}

func TestSingleAsMultiPicksNearest(t *testing.T) {
	c := scenario()
	var seen leftturn.OncomingEstimate
	spy := PlannerFuncAgent{fn: func(_ float64, _ dynamics.State, k Knowledge) (float64, bool) {
		seen = k.Sound
		return 0, false
	}}
	adapter := &SingleAsMulti{Cfg: c, Agent: spy}
	near := exactKnowledge(dynamics.State{P: -10, V: 12}, 0)
	far := exactKnowledge(dynamics.State{P: -80, V: 5}, 0)
	adapter.Accel(0, dynamics.State{P: -30, V: 8}, []Knowledge{far, near})
	if !seen.P.Contains(-10) {
		t.Fatalf("adapter did not pick the nearest vehicle: %v", seen.P)
	}
	// Empty list: must not panic and must pass an empty estimate.
	adapter.Accel(0, dynamics.State{P: -30, V: 8}, nil)
	if !seen.P.IsEmpty() {
		t.Fatalf("empty list should yield empty estimate, got %v", seen.P)
	}
}

// PlannerFuncAgent adapts a function to Agent for tests.
type PlannerFuncAgent struct {
	fn func(float64, dynamics.State, Knowledge) (float64, bool)
}

// Name implements Agent.
func (PlannerFuncAgent) Name() string { return "spy" }

// Accel implements Agent.
func (a PlannerFuncAgent) Accel(t float64, ego dynamics.State, k Knowledge) (float64, bool) {
	return a.fn(t, ego, k)
}

// Multi-vehicle safety property: the compound planner never collides with
// any vehicle of a stream, even with an adversarial κ_n, under exact
// knowledge.
func TestQuickMultiCompoundSafety(t *testing.T) {
	c := scenario()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		chaotic := planner.Func{PlannerName: "chaos", F: func(float64, dynamics.State, interval.Interval) float64 {
			return c.Ego.AMin + rng.Float64()*(c.Ego.AMax-c.Ego.AMin)
		}}
		agent := NewMultiUltimate(c, chaotic)
		ego := c.EgoInit
		n := 2 + int(seed%3)
		oncs := make([]dynamics.State, n)
		accs := make([]float64, n)
		for i := range oncs {
			oncs[i] = dynamics.State{
				P: -40 - float64(i)*20 - rng.Float64()*8,
				V: 5 + rng.Float64()*10,
			}
		}
		for step := 0; step < 1200; step++ {
			tt := float64(step) * c.DtC
			ks := make([]Knowledge, n)
			for i := range oncs {
				ks[i] = exactKnowledge(oncs[i], accs[i])
			}
			a, _ := agent.Accel(tt, ego, ks)
			ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
			for i := range oncs {
				ba := -3 + rng.Float64()*5.5
				oncs[i], accs[i] = dynamics.Step(oncs[i], ba, c.DtC, c.Oncoming)
				if c.Collision(ego, oncs[i]) {
					return false
				}
			}
			if c.ReachedTarget(ego) {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Sanity: the conflicting-commitment fallback fires rather than handing κ_n
// an impossible floor/ceiling pair.
func TestMultiConflictingCommitments(t *testing.T) {
	c := scenario()
	agent := NewMultiBasic(c, planner.AggressiveExpert(c))
	// Committed ego; vehicle A demands pass-before (floor at ≈AMax),
	// vehicle B demands pass-after (ceiling ≈AMin).  Construct windows via
	// raw estimates: A far but fast bound, B just leaving.
	ego := dynamics.State{P: 2, V: 8} // committed (slack < 0), window [0.375, 1.625]
	if c.Slack(ego) >= 0 {
		t.Fatal("setup: expected committed state")
	}
	// kA: earliest entry just after ego's exit → tight pass-before floor.
	kA := Knowledge{}
	kA.Sound = leftturn.OncomingEstimate{
		P: interval.Point(-28), V: interval.Point(15),
		PointP: -28, PointV: 15, A: 3,
	}
	kA.Fused = kA.Sound
	// kB: about to exit → pass-after ceiling near AMin.
	kB := Knowledge{}
	kB.Sound = leftturn.OncomingEstimate{
		P: interval.Point(14.9), V: interval.Point(0.5),
		PointP: 14.9, PointV: 0.5, A: 0,
	}
	kB.Fused = kB.Sound
	a, em := agent.Accel(0, ego, []Knowledge{kA, kB})
	// Whatever the resolution, the output must be admissible and the agent
	// must not panic; if both guards were returned the emergency fallback
	// must have fired.
	if math.IsNaN(a) || a < c.Ego.AMin || a > c.Ego.AMax {
		t.Fatalf("inadmissible output %v (em=%v)", a, em)
	}
}
