package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/planner"
)

func scenario() leftturn.Config { return leftturn.DefaultConfig() }

// exactKnowledge builds Knowledge from perfectly known oncoming state.
func exactKnowledge(s dynamics.State, a float64) Knowledge {
	e := leftturn.ExactEstimate(s, a)
	return Knowledge{Sound: e, Fused: e}
}

func TestNames(t *testing.T) {
	c := scenario()
	p := planner.ConservativeExpert(c)
	if got := (&PureNN{Cfg: c, Planner: p}).Name(); got != "pure:expert-conservative" {
		t.Fatalf("PureNN name = %q", got)
	}
	if got := NewBasic(c, p).Name(); got != "basic:expert-conservative" {
		t.Fatalf("Basic name = %q", got)
	}
	if got := NewUltimate(c, p).Name(); got != "ultimate:expert-conservative" {
		t.Fatalf("Ultimate name = %q", got)
	}
	if got := (&Compound{Cfg: c, Planner: p}).Name(); got != "compound:expert-conservative" {
		t.Fatalf("zero-value Compound name = %q", got)
	}
}

func TestPureNeverFlagsEmergency(t *testing.T) {
	c := scenario()
	agent := &PureNN{Cfg: c, Planner: planner.AggressiveExpert(c)}
	k := exactKnowledge(dynamics.State{P: -10, V: 10}, 0)
	for p := -40.0; p < 20; p += 5 {
		_, em := agent.Accel(0, dynamics.State{P: p, V: 8}, k)
		if em {
			t.Fatal("pure planner reported emergency")
		}
	}
}

func TestCompoundEmergencyOnBoundary(t *testing.T) {
	c := scenario()
	agent := NewBasic(c, planner.AggressiveExpert(c))
	// Ego straddling the boundary band with an overlapping conflict.
	v := 10.0
	p := c.Geometry.PF - c.BrakingDistance(v) - c.BoundaryThreshold(v)/2
	ego := dynamics.State{P: p, V: v}
	onc := dynamics.State{P: -10, V: 12} // arriving soon
	a, em := agent.Accel(0, ego, exactKnowledge(onc, 0))
	if !em {
		t.Fatal("boundary state did not trigger the emergency planner")
	}
	if want := c.EmergencyAccel(ego); a != want {
		t.Fatalf("emergency accel = %v, want %v", a, want)
	}
}

func TestBasicVsUltimateWindowSelection(t *testing.T) {
	c := scenario()
	// A spy planner records the window it is given.
	var seen interval.Interval
	spy := planner.Func{PlannerName: "spy", F: func(_ float64, _ dynamics.State, w interval.Interval) float64 {
		seen = w
		return 0
	}}
	onc := dynamics.State{P: -35, V: 8}
	k := exactKnowledge(onc, 0.5)
	ego := dynamics.State{P: -30, V: 8}

	basic := NewBasic(c, spy)
	basic.Accel(0, ego, k)
	wantCons := c.ConservativeWindow(k.Fused)
	if seen != wantCons {
		t.Fatalf("basic gave κ_n %v, want conservative %v", seen, wantCons)
	}

	ultimate := NewUltimate(c, spy)
	ultimate.Accel(0, ego, k)
	wantAggr := c.AggressiveWindow(k.Fused)
	if seen != wantAggr {
		t.Fatalf("ultimate gave κ_n %v, want aggressive %v", seen, wantAggr)
	}
}

func TestMonitorUsesSoundEstimate(t *testing.T) {
	c := scenario()
	// Fused estimate says "no conflict" (C1 far), sound estimate says
	// "conflict imminent": the monitor must believe the sound one.
	var k Knowledge
	k.Fused = leftturn.ExactEstimate(dynamics.State{P: 100, V: 8}, 0) // past the zone
	k.Sound = leftturn.ExactEstimate(dynamics.State{P: -8, V: 12}, 0) // imminent
	v := 10.0
	p := c.Geometry.PF - c.BrakingDistance(v) - c.BoundaryThreshold(v)/2
	ego := dynamics.State{P: p, V: v}
	agent := NewUltimate(c, planner.AggressiveExpert(c))
	_, em := agent.Accel(0, ego, k)
	if !em {
		t.Fatal("monitor trusted the unsound fused estimate")
	}
}

func TestGuardsClampPlannerOutput(t *testing.T) {
	c := scenario()
	// Braking planner in a committed pass-before state: the floor must
	// override the planner's AMin.
	brake := planner.Func{PlannerName: "brake", F: func(float64, dynamics.State, interval.Interval) float64 {
		return c.Ego.AMin
	}}
	agent := NewBasic(c, brake)
	ego := dynamics.State{P: 0, V: 12} // committed
	onc := dynamics.State{P: -40, V: 5}
	a, em := agent.Accel(0, ego, exactKnowledge(onc, 0))
	if em {
		t.Fatalf("unexpected emergency")
	}
	if a <= c.Ego.AMin {
		t.Fatalf("floor did not clamp braking planner: a=%v", a)
	}
}

// The headline property (DESIGN.md invariant #3, paper §III-E): the
// compound planner with exact knowledge never collides, regardless of the
// embedded planner — here randomized planners, including adversarial ones.
func TestQuickCompoundSafetyAnyPlanner(t *testing.T) {
	c := scenario()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// A planner that outputs random admissible accelerations — the
		// worst kind of κ_n.
		chaotic := planner.Func{PlannerName: "chaos", F: func(float64, dynamics.State, interval.Interval) float64 {
			return c.Ego.AMin + rng.Float64()*(c.Ego.AMax-c.Ego.AMin)
		}}
		var agent Agent
		if seed%2 == 0 {
			agent = NewBasic(c, chaotic)
		} else {
			agent = NewUltimate(c, chaotic)
		}
		ego := c.EgoInit
		onc := dynamics.State{P: -40 + rng.Float64()*9.5, V: 5 + rng.Float64()*10}
		var oncA float64
		for i := 0; i < 800; i++ {
			tt := float64(i) * c.DtC
			a, _ := agent.Accel(tt, ego, exactKnowledge(onc, oncA))
			ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
			ba := -3 + rng.Float64()*5.5
			onc, oncA = dynamics.Step(onc, ba, c.DtC, c.Oncoming)
			if c.Collision(ego, onc) {
				return false
			}
			if c.ReachedTarget(ego) {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Compound safety must also hold under sound *interval* knowledge (the
// realistic case): blur the estimate while keeping it sound.
func TestQuickCompoundSafetyBlurredKnowledge(t *testing.T) {
	c := scenario()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		agent := NewUltimate(c, planner.AggressiveExpert(c))
		ego := c.EgoInit
		onc := dynamics.State{P: -40 + rng.Float64()*9.5, V: 5 + rng.Float64()*10}
		var oncA float64
		for i := 0; i < 800; i++ {
			tt := float64(i) * c.DtC
			// Sound blur: interval containing the truth, off-center.
			dp, dv := rng.Float64()*3, rng.Float64()*2
			op, ov := (rng.Float64()*2-1)*dp, (rng.Float64()*2-1)*dv
			sound := leftturn.OncomingEstimate{
				P:      interval.New(onc.P-dp+op, onc.P+dp+op).Hull(interval.Point(onc.P)),
				V:      interval.New(onc.V-dv+ov, onc.V+dv+ov).Hull(interval.Point(onc.V)).ClampTo(c.Oncoming.VMin, c.Oncoming.VMax),
				PointP: onc.P + op,
				PointV: math.Max(0, onc.V+ov),
				A:      oncA,
			}
			k := Knowledge{Sound: sound, Fused: sound}
			a, _ := agent.Accel(tt, ego, k)
			ego, _ = dynamics.Step(ego, a, c.DtC, c.Ego)
			ba := -3 + rng.Float64()*5.5
			onc, oncA = dynamics.Step(onc, ba, c.DtC, c.Oncoming)
			if c.Collision(ego, onc) {
				return false
			}
			if c.ReachedTarget(ego) {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
