//go:build !race

package serve

// Native-speed soak: the ISSUE acceptance scale (≥10k concurrent
// sessions) with a 20 ms p99 single-step SLO — engine steps are ~1 µs,
// so the bound only leaves room for scheduler and GC interference.
const (
	soakDefaultSessions = 10000
	soakStepSLO         = 20e6 // p99 step latency bound [ns]
)
