// Package serve hosts the compound planner as a long-running streaming
// service: many concurrent vehicle *sessions*, each a resumable episode
// engine (sim.Stepper, sim.MultiStepper, or carfollow.Stepper) fed by
// streamed V2V/sensor events over a line-delimited JSON protocol.
//
// Ownership model: sessions are sharded by SID hash across a fixed pool
// of worker goroutines.  All engine access happens on the owning shard's
// worker; connection readers only enqueue into a bounded per-session
// mailbox (a full mailbox is the backpressure signal — the reader rejects
// instead of blocking).  Admission control caps the number of live
// sessions; an idle reaper retires sessions no client has touched within
// the idle timeout.  Sessions are not bound to connections: a client may
// drop its TCP connection and keep stepping the same SID from a new one.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
)

// Config tunes a Server.  The zero value selects sensible defaults for
// every field.
type Config struct {
	// Shards is the number of session worker goroutines (and session-map
	// shards).  0 selects GOMAXPROCS.
	Shards int
	// MaxSessions caps concurrently live sessions (admission control);
	// opens beyond the cap are rejected with ReasonSaturated.  0 selects
	// DefaultMaxSessions.
	MaxSessions int
	// Mailbox is the per-session pending-request bound; a full mailbox
	// rejects with ReasonBackpressure.  0 selects DefaultMailbox.
	Mailbox int
	// MaxStepsPerRequest clamps OpStep batch sizes.  0 selects
	// DefaultMaxStepsPerRequest.
	MaxStepsPerRequest int
	// IdleTimeout retires sessions with no client activity for this long.
	// 0 disables the reaper.
	IdleTimeout time.Duration
}

// Defaults for the zero Config.
const (
	DefaultMaxSessions        = 1 << 14
	DefaultMailbox            = 16
	DefaultMaxStepsPerRequest = 1024
)

func (c *Config) fill() error {
	if c.Shards < 0 || c.MaxSessions < 0 || c.Mailbox < 0 || c.MaxStepsPerRequest < 0 || c.IdleTimeout < 0 {
		return fmt.Errorf("serve: negative Config field")
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.Mailbox == 0 {
		c.Mailbox = DefaultMailbox
	}
	if c.MaxStepsPerRequest == 0 {
		c.MaxStepsPerRequest = DefaultMaxStepsPerRequest
	}
	return nil
}

// Stats is a point-in-time summary of server activity, exported on
// OpStats responses and the /metrics endpoint.
type Stats struct {
	Shards int `json:"shards"`

	LiveSessions int64 `json:"live_sessions"`
	PeakSessions int64 `json:"peak_sessions"`

	SessionsOpened int64 `json:"sessions_opened"`
	SessionsClosed int64 `json:"sessions_closed"`
	SessionsReaped int64 `json:"sessions_reaped"`
	// EpisodesFinished counts episodes stepped to natural termination
	// (collision, target, or horizon) — closes mid-episode don't count.
	EpisodesFinished int64 `json:"episodes_finished"`

	StepRequests  int64 `json:"step_requests"`
	StepsExecuted int64 `json:"steps_executed"`

	// Rejections by machine-readable reason (see the Reason* constants);
	// omitted when no request was rejected.
	Rejections map[string]int64 `json:"rejections,omitempty"`

	// Draining reports a graceful shutdown in progress: opens are
	// rejected, existing sessions run to completion or the deadline.
	Draining bool `json:"draining,omitempty"`

	// StepLatencyNs distributes the service-side latency of single
	// engine steps (the soak SLO's p99 source).
	StepLatencyNs telemetry.HistogramSnapshot `json:"step_latency_ns"`
}

// rejection reasons indexed for lock-free counting.
var reasonNames = []string{
	ReasonSaturated,
	ReasonBackpressure,
	ReasonUnknownSession,
	ReasonDuplicateSession,
	ReasonSessionClosed,
	ReasonBadRequest,
	ReasonDraining,
}

func reasonIndex(reason string) int {
	for i, r := range reasonNames {
		if r == reason {
			return i
		}
	}
	return -1
}

// stepLatencyBounds spans 1 µs … 1 s in ns, exponential.
var stepLatencyBounds = []float64{
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
	1e6, 2e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9,
}

// Server hosts streamed planner sessions over line-delimited JSON.  Use
// New, then Serve (or ListenAndServe) for the session protocol and the
// Server itself as an http.Handler for /metrics and /healthz.
type Server struct {
	cfg     Config
	metrics *telemetry.Metrics
	shards  []*shard

	live     atomic.Int64
	peak     atomic.Int64
	draining atomic.Bool

	opened   atomic.Int64
	closed   atomic.Int64
	reaped   atomic.Int64
	finished atomic.Int64

	stepReqs atomic.Int64
	steps    atomic.Int64
	rejects  []atomic.Int64 // indexed like reasonNames

	stepLatency *telemetry.Histogram

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closing  bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a Server and starts its shard workers (and the idle reaper
// when Config.IdleTimeout is set).  Call Close to release them.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		metrics:     telemetry.NewMetrics(),
		rejects:     make([]atomic.Int64, len(reasonNames)),
		stepLatency: telemetry.NewHistogram(stepLatencyBounds...),
		conns:       make(map[net.Conn]struct{}),
		quit:        make(chan struct{}),
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			srv:      s,
			sessions: make(map[string]*session),
			// One runqueue slot per live session (the scheduled flag
			// dedupes); the 2× headroom absorbs stale entries from
			// close/teardown races so a send never blocks a reader.
			runq: make(chan *session, 2*cfg.MaxSessions),
		}
		s.shards[i] = sh
		s.wg.Add(1)
		go sh.run()
	}
	if cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.reaper()
	}
	return s, nil
}

// Metrics returns the engine-side telemetry collector shared by every
// session (step probes, episode outcomes, sound-violation counters).
func (s *Server) Metrics() *telemetry.Metrics { return s.metrics }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Shards:           len(s.shards),
		LiveSessions:     s.live.Load(),
		PeakSessions:     s.peak.Load(),
		SessionsOpened:   s.opened.Load(),
		SessionsClosed:   s.closed.Load(),
		SessionsReaped:   s.reaped.Load(),
		EpisodesFinished: s.finished.Load(),
		StepRequests:     s.stepReqs.Load(),
		StepsExecuted:    s.steps.Load(),
		StepLatencyNs:    s.stepLatency.Snapshot(),
		Draining:         s.draining.Load(),
	}
	for i, name := range reasonNames {
		if n := s.rejects[i].Load(); n > 0 {
			if st.Rejections == nil {
				st.Rejections = make(map[string]int64)
			}
			st.Rejections[name] = n
		}
	}
	return st
}

// ListenAndServe listens on addr and serves the session protocol until
// Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts session-protocol connections on ln until Close.  It
// returns nil after Close, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("serve: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Addr returns the protocol listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Shutdown drains the server gracefully: new session opens are rejected
// with ReasonDraining (and /healthz flips to 503 so orchestrators stop
// routing here), while live sessions keep stepping until they close,
// finish, or are reaped.  Once no session remains — or the deadline
// passes with sessions still live — the server closes hard and the
// final Stats snapshot is returned for a last metrics flush.  A zero or
// negative deadline closes immediately after the drain flag is up.
//
// Shutdown is idempotent with Close: whichever runs first wins, the
// loser is a no-op returning the (already final) Stats.
func (s *Server) Shutdown(deadline time.Duration) (Stats, error) {
	s.draining.Store(true)
	waited := time.Duration(0)
	const poll = 10 * time.Millisecond
	for waited < deadline && s.live.Load() > 0 {
		time.Sleep(poll)
		waited += poll
	}
	stranded := s.live.Load()
	err := s.Close()
	st := s.Stats()
	if err == nil && stranded > 0 {
		err = fmt.Errorf("serve: drain deadline %s passed with %d sessions still live", deadline, stranded)
	}
	return st, err
}

// Close stops accepting, drops every connection, stops the shard workers
// and reaper, and waits for all server goroutines to exit.  Live session
// state is discarded (no Finish bookkeeping — the process is going away).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.quit)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// handleConn reads one Request per line and dispatches it.  Malformed
// lines get a bad-request response; a read error ends the connection
// (its sessions stay live for other connections or the reaper).
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	w := newConnWriter(conn)
	dec := json.NewDecoder(conn)
	dec.DisallowUnknownFields()
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			// Distinguish a malformed line from connection teardown: after
			// a JSON syntax error the stream offset is unrecoverable, so
			// reject and drop the connection either way.
			var syn *json.SyntaxError
			var typ *json.UnmarshalTypeError
			if errors.As(err, &syn) || errors.As(err, &typ) || strings.HasPrefix(err.Error(), "json: unknown field") {
				s.reject(w, Request{}, ReasonBadRequest, "malformed request: "+err.Error())
			}
			return
		}
		s.dispatch(req, w)
	}
}

// dispatch routes one request.  Ping and stats answer inline; session ops
// go through the owning shard.
func (s *Server) dispatch(req Request, w *connWriter) {
	switch req.Op {
	case OpPing:
		w.send(Response{SID: req.SID, Op: OpPing, OK: true})
	case OpStats:
		st := s.Stats()
		w.send(Response{SID: req.SID, Op: OpStats, OK: true, Stats: &st})
	case OpOpen:
		s.open(req, w)
	case OpStep:
		s.step(req, w)
	case OpClose:
		s.closeSession(req, w)
	default:
		s.reject(w, req, ReasonBadRequest, fmt.Sprintf("unknown op %q", req.Op))
	}
}

func (s *Server) reject(w *connWriter, req Request, reason, msg string) {
	if i := reasonIndex(reason); i >= 0 {
		s.rejects[i].Add(1)
	}
	w.send(reject(req, reason, msg))
}

// shardFor routes a SID to its owning shard by FNV-1a hash.
func (s *Server) shardFor(sid string) *shard {
	h := fnv.New32a()
	h.Write([]byte(sid))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// open admits a new session: reserve a live slot (admission control),
// register the SID, and enqueue the open envelope — the shard worker
// builds the engine so all engine and scratch access stays worker-owned.
func (s *Server) open(req Request, w *connWriter) {
	if req.SID == "" {
		s.reject(w, req, ReasonBadRequest, "open requires a sid")
		return
	}
	if s.draining.Load() {
		s.reject(w, req, ReasonDraining, "server is draining")
		return
	}
	for {
		n := s.live.Load()
		if n >= int64(s.cfg.MaxSessions) {
			s.reject(w, req, ReasonSaturated,
				fmt.Sprintf("at session cap %d", s.cfg.MaxSessions))
			return
		}
		if s.live.CompareAndSwap(n, n+1) {
			break
		}
	}
	sess := &session{
		id:      req.SID,
		mailbox: make(chan envelope, s.cfg.Mailbox),
	}
	sess.touch()
	sh := s.shardFor(req.SID)
	sess.sh = sh
	// Enqueue the open envelope while the mailbox is still private — once
	// the SID is registered, racing step requests compete for the slots.
	sess.mailbox <- envelope{req: req, w: w}
	sh.mu.Lock()
	if _, dup := sh.sessions[req.SID]; dup {
		sh.mu.Unlock()
		s.live.Add(-1)
		s.reject(w, req, ReasonDuplicateSession, fmt.Sprintf("session %q is live", req.SID))
		return
	}
	sh.sessions[req.SID] = sess
	sh.mu.Unlock()
	for {
		p := s.peak.Load()
		if n := s.live.Load(); n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	s.opened.Add(1)
	sess.schedule()
}

// lookup finds a live session, or rejects with ReasonUnknownSession.
func (s *Server) lookup(req Request, w *connWriter) *session {
	if req.SID == "" {
		s.reject(w, req, ReasonBadRequest, req.Op+" requires a sid")
		return nil
	}
	sh := s.shardFor(req.SID)
	sh.mu.Lock()
	sess := sh.sessions[req.SID]
	sh.mu.Unlock()
	if sess == nil {
		s.reject(w, req, ReasonUnknownSession, fmt.Sprintf("no live session %q", req.SID))
		return nil
	}
	return sess
}

// step enqueues a step request into the session's bounded mailbox.
func (s *Server) step(req Request, w *connWriter) {
	sess := s.lookup(req, w)
	if sess == nil {
		return
	}
	sess.touch()
	if reason := sess.enqueue(envelope{req: req, w: w}); reason != "" {
		msg := "mailbox full"
		if reason == ReasonSessionClosed {
			msg = "session closed while enqueuing"
		}
		s.reject(w, req, reason, msg)
		return
	}
	sess.schedule()
}

// closeSession requests teardown.  Close jumps the mailbox queue — it is
// the cancellation path — so requests still pending in the mailbox are
// answered with ReasonSessionClosed.
func (s *Server) closeSession(req Request, w *connWriter) {
	sess := s.lookup(req, w)
	if sess == nil {
		return
	}
	sess.touch()
	env := &envelope{req: req, w: w}
	if !sess.closeReq.CompareAndSwap(nil, env) {
		s.reject(w, req, ReasonSessionClosed, "close already pending")
		return
	}
	sess.schedule()
}

// reaper periodically retires sessions idle past the configured timeout.
func (s *Server) reaper() {
	defer s.wg.Done()
	period := s.cfg.IdleTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	var stale []*session
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
		for _, sh := range s.shards {
			stale = stale[:0]
			sh.mu.Lock()
			for _, sess := range sh.sessions {
				if sess.lastActive.Load() < cutoff {
					stale = append(stale, sess)
				}
			}
			sh.mu.Unlock()
			for _, sess := range stale {
				sess.reap.Store(true)
				sess.schedule()
			}
		}
	}
}

// ServeHTTP exposes /healthz (liveness) and /metrics (server Stats plus
// the shared engine telemetry snapshot) — mount the Server on an
// http.Server to publish them.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing || s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case "/metrics":
		payload := struct {
			Server Stats              `json:"server"`
			Engine telemetry.Snapshot `json:"engine"`
		}{s.Stats(), s.metrics.Snapshot()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	default:
		http.NotFound(w, r)
	}
}

// connWriter serializes response lines onto one connection: sessions on
// different shards answer concurrently, so every write is mutex-guarded
// and a failed connection swallows later sends (the reader side tears the
// connection down).
type connWriter struct {
	mu   sync.Mutex
	enc  *json.Encoder
	conn net.Conn
	err  error
}

func newConnWriter(conn net.Conn) *connWriter {
	return &connWriter{enc: json.NewEncoder(conn), conn: conn}
}

func (w *connWriter) send(resp Response) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(resp)
}

// shard owns a disjoint subset of the session registry and the single
// worker goroutine that touches those sessions' engines.  The free list
// recycles scratch arenas across session churn: a closed session's pooled
// engine and buffers are reused by the next open on the same shard.
type shard struct {
	srv *Server

	mu       sync.Mutex
	sessions map[string]*session

	runq chan *session

	// free is worker-owned (no locking): arenas are taken at open
	// processing and returned at teardown, both on the worker.
	free []*sim.Scratch
}

func (sh *shard) run() {
	defer sh.srv.wg.Done()
	for {
		select {
		case <-sh.srv.quit:
			return
		case sess := <-sh.runq:
			sh.service(sess)
		}
	}
}

// service drains one scheduled session: teardown requests first (close
// jumps the queue), then the mailbox.  The scheduled-flag dance at the
// end closes the lost-wakeup race against concurrent enqueues.
func (sh *shard) service(sess *session) {
	sess.mu.Lock()
	dead := sess.closed
	sess.mu.Unlock()
	if dead {
		// Stale runqueue entry for a torn-down session (a close or reap
		// raced the teardown); answer any close that slipped in after the
		// teardown swapped closeReq.
		if env := sess.closeReq.Swap(nil); env != nil {
			sh.srv.reject(env.w, env.req, ReasonSessionClosed, "session closed")
		}
		return
	}
	for {
		if env := sess.closeReq.Swap(nil); env != nil {
			sh.teardown(sess, env, &sh.srv.closed)
			return
		}
		if sess.reap.Load() {
			sh.teardown(sess, nil, &sh.srv.reaped)
			return
		}
		select {
		case env := <-sess.mailbox:
			sh.process(sess, env)
		default:
			sess.scheduled.Store(false)
			idle := len(sess.mailbox) == 0 && sess.closeReq.Load() == nil && !sess.reap.Load()
			if idle || !sess.scheduled.CompareAndSwap(false, true) {
				// Nothing pending, or a racing enqueue already re-queued
				// the session; either way this service pass is done.
				return
			}
			// Work arrived between the drain and the flag clear and we
			// re-won the slot: keep draining inline.
		}
	}
}

// process executes one envelope on the worker.
func (sh *shard) process(sess *session, env envelope) {
	srv := sh.srv
	req := env.req
	switch req.Op {
	case OpOpen:
		scratch := sh.takeScratch()
		eng, err := buildEngine(req, sim.Options{
			Seed:      req.Seed,
			Collector: srv.metrics,
			Scratch:   scratch,
		})
		if err != nil {
			sh.free = append(sh.free, scratch)
			srv.reject(env.w, req, ReasonBadRequest, err.Error())
			sh.teardown(sess, nil, &srv.closed)
			return
		}
		sess.eng = eng
		sess.scratch = scratch
		env.w.send(Response{SID: sess.id, Op: OpOpen, OK: true})

	case OpStep:
		srv.stepReqs.Add(1)
		n := req.Steps
		if n < 1 {
			n = 1
		}
		if n > srv.cfg.MaxStepsPerRequest {
			n = srv.cfg.MaxStepsPerRequest
		}
		resp := Response{SID: sess.id, Op: OpStep, OK: true}
		if sess.finished {
			// Stepping past the end returns the terminal outcome, like
			// the engines themselves.
			resp.Done = true
			resp.Result = sess.result
			env.w.send(resp)
			return
		}
		in := sim.StepInput{Messages: req.Msgs, Readings: req.Reads}
		var out sim.StepOutcome
		var err error
		for i := 0; i < n; i++ {
			t0 := time.Now()
			out, err = sess.eng.Step(in)
			srv.stepLatency.Observe(float64(time.Since(t0).Nanoseconds()))
			in = sim.StepInput{}
			srv.steps.Add(1)
			if err != nil || out.Done {
				break
			}
		}
		resp.T, resp.Step = out.T, out.Step
		resp.Accel, resp.Emergency = out.Accel, out.Emergency
		resp.EgoP, resp.EgoV = out.EgoP, out.EgoV
		resp.Done = out.Done
		if err != nil {
			resp.OK = false
			resp.Error = err.Error()
		}
		if out.Done || err != nil {
			sh.settle(sess)
			resp.Result = sess.result
		}
		env.w.send(resp)

	default:
		// Close never lands in the mailbox and open is enqueued exactly
		// once at admission; anything else is a routing bug surfaced to
		// the client rather than silently dropped.
		srv.reject(env.w, req, ReasonBadRequest, fmt.Sprintf("op %q not valid in mailbox", req.Op))
	}
}

// settle finalizes the session's episode exactly once, recording the
// result summary and counting natural terminations.
func (sh *shard) settle(sess *session) {
	if sess.finished || sess.eng == nil {
		return
	}
	r, err := sess.eng.Finish()
	sess.finished = true
	sess.engErr = err
	sess.result = summarize(r)
	sh.srv.finished.Add(1)
}

// teardown retires a session on the worker: deregister, settle the
// episode (a mid-episode close yields the partial result), answer the
// close request, flush stragglers with ReasonSessionClosed, and recycle
// the scratch arena.
func (sh *shard) teardown(sess *session, closeEnv *envelope, counter *atomic.Int64) {
	sess.mu.Lock()
	sess.closed = true
	sess.mu.Unlock()
	sh.mu.Lock()
	delete(sh.sessions, sess.id)
	sh.mu.Unlock()

	if sess.eng != nil {
		sh.settle(sess)
	}
	if closeEnv != nil {
		resp := Response{SID: sess.id, Op: OpClose, OK: true, Result: sess.result}
		if sess.engErr != nil {
			resp.Error = sess.engErr.Error()
		}
		closeEnv.w.send(resp)
	}
	for {
		select {
		case env := <-sess.mailbox:
			sh.srv.reject(env.w, env.req, ReasonSessionClosed, "session closed")
		default:
			if sess.scratch != nil {
				sh.free = append(sh.free, sess.scratch)
				sess.scratch = nil
			}
			sess.eng = nil
			counter.Add(1)
			sh.srv.live.Add(-1)
			return
		}
	}
}

func (sh *shard) takeScratch() *sim.Scratch {
	if n := len(sh.free); n > 0 {
		sc := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return sc
	}
	return sim.NewScratch()
}
