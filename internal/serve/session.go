package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/planner"
	"safeplan/internal/sim"
)

// engine is the resumable-stepper contract every scenario engine
// satisfies (sim.Stepper, sim.MultiStepper, carfollow.Stepper): advance
// one control step with optional streamed events, then settle the
// episode result exactly once.
type engine interface {
	Step(sim.StepInput) (sim.StepOutcome, error)
	Finish() (sim.Result, error)
}

// session is one live vehicle episode: a long-lived engine plus the
// bounded mailbox connection handlers feed.  All engine access happens on
// the owning shard's worker goroutine; connection handlers only enqueue.
type session struct {
	id string
	sh *shard

	eng     engine
	scratch *sim.Scratch

	// mailbox carries pending requests.  Bounded: a full mailbox is the
	// backpressure signal (the handler rejects instead of blocking).
	mailbox chan envelope
	// mu orders mailbox enqueues against teardown: enqueue checks closed
	// under the lock, and teardown flips closed before draining, so no
	// envelope can land in a dead mailbox unanswered.
	mu     sync.Mutex
	closed bool
	// scheduled guards the session's single runqueue slot: CAS false→true
	// wins the right to enqueue onto the shard runqueue, and the worker
	// clears it after draining.  At most one slot per session means the
	// runqueue (sized at the session cap) can never block a sender.
	scheduled atomic.Bool
	// closeReq holds the pending close request, if any.  Close bypasses
	// the mailbox (cancellation must not be subject to backpressure) and
	// jumps the queue at the worker.
	closeReq atomic.Pointer[envelope]
	// lastActive is the unix-nano timestamp of the last client request,
	// read by the idle reaper.
	lastActive atomic.Int64
	// reap is set by the idle reaper; the worker tears the session down
	// at its next scheduling instead of processing the mailbox.
	reap atomic.Bool

	// Worker-owned episode bookkeeping (no locking: single worker).
	finished bool
	result   *ResultSummary
	engErr   error
}

// touch stamps the session for the idle reaper.
func (s *session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// enqueue places an envelope in the bounded mailbox, returning the
// rejection reason ("" on success): ReasonBackpressure when full,
// ReasonSessionClosed when racing a teardown.
func (s *session) enqueue(e envelope) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ReasonSessionClosed
	}
	select {
	case s.mailbox <- e:
		return ""
	default:
		return ReasonBackpressure
	}
}

// schedule queues the session onto its shard's runqueue if it does not
// already hold a slot.  The capacity-per-session invariant makes the send
// non-blocking.
func (s *session) schedule() {
	if s.scheduled.CompareAndSwap(false, true) {
		s.sh.runq <- s
	}
}

// envelope pairs a request with the connection it must be answered on.
type envelope struct {
	req Request
	w   *connWriter
}

// buildEngine constructs the session's episode engine from the open
// request.  The scratch arena comes from the shard's free list, so
// repeated open/close cycles on a shard reuse pooled engines and their
// internal buffers (the PR 5 allocation-free discipline, now applied to
// session churn).
func buildEngine(req Request, opts sim.Options) (engine, error) {
	design := req.Design
	if design == "" {
		design = DesignUltimate
	}
	pl := req.Planner
	if pl == "" {
		pl = PlannerConservative
	}
	var model disturb.Model
	if req.Disturb != "" {
		m, err := disturb.Preset(req.Disturb)
		if err != nil {
			return nil, err
		}
		model = m
	}

	switch req.Scenario {
	case "", ScenarioLeftTurn:
		cfg := sim.DefaultConfig()
		if model != nil {
			cfg.Comms = comms.Disturbed(model)
		}
		cfg.InfoFilter = design == DesignUltimate
		var kn planner.Planner
		switch pl {
		case PlannerConservative:
			kn = planner.ConservativeExpert(cfg.Scenario)
		case PlannerAggressive:
			kn = planner.AggressiveExpert(cfg.Scenario)
		default:
			return nil, fmt.Errorf("serve: unknown planner %q", pl)
		}
		var agent core.Agent
		switch design {
		case DesignPure:
			agent = &core.PureNN{Cfg: cfg.Scenario, Planner: kn}
		case DesignBasic:
			agent = core.NewBasic(cfg.Scenario, kn)
		case DesignUltimate:
			agent = core.NewUltimate(cfg.Scenario, kn)
		default:
			return nil, fmt.Errorf("serve: unknown design %q", design)
		}
		return sim.NewStepper(cfg, agent, opts)

	case ScenarioMulti:
		cfg := sim.DefaultMultiConfig()
		if model != nil {
			cfg.Comms = comms.Disturbed(model)
		}
		cfg.InfoFilter = design == DesignUltimate
		var kn planner.Planner
		switch pl {
		case PlannerConservative:
			kn = planner.ConservativeExpert(cfg.Scenario)
		case PlannerAggressive:
			kn = planner.AggressiveExpert(cfg.Scenario)
		default:
			return nil, fmt.Errorf("serve: unknown planner %q", pl)
		}
		var agent core.MultiAgent
		switch design {
		case DesignPure:
			agent = &core.MultiPure{Cfg: cfg.Scenario, Planner: kn}
		case DesignBasic:
			agent = core.NewMultiBasic(cfg.Scenario, kn)
		case DesignUltimate:
			agent = core.NewMultiUltimate(cfg.Scenario, kn)
		default:
			return nil, fmt.Errorf("serve: unknown design %q", design)
		}
		return sim.NewMultiStepper(cfg, agent, opts)

	case ScenarioCarFollow:
		cfg := carfollow.DefaultSimConfig()
		if model != nil {
			cfg.Comms = comms.Disturbed(model)
		}
		cfg.InfoFilter = design == DesignUltimate
		var kn carfollow.Planner
		switch pl {
		case PlannerConservative:
			kn = carfollow.ConservativeExpert(cfg.Scenario)
		case PlannerAggressive:
			kn = carfollow.AggressiveExpert(cfg.Scenario)
		default:
			return nil, fmt.Errorf("serve: unknown planner %q", pl)
		}
		var agent carfollow.Agent
		switch design {
		case DesignPure:
			agent = &carfollow.Pure{Cfg: cfg.Scenario, Planner: kn}
		case DesignBasic:
			agent = carfollow.NewBasic(cfg.Scenario, kn)
		case DesignUltimate:
			agent = carfollow.NewUltimate(cfg.Scenario, kn)
		default:
			return nil, fmt.Errorf("serve: unknown design %q", design)
		}
		return carfollow.NewStepper(cfg, agent, opts)
	}
	return nil, fmt.Errorf("serve: unknown scenario %q", req.Scenario)
}
