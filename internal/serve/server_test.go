package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"safeplan/internal/comms"
)

// newTestServer starts a server on a loopback listener and tears it down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// testClient is one synchronous protocol connection.
type testClient struct {
	t    *testing.T
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{t: t, conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

func (c *testClient) do(req Request) Response {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatal(err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.t.Fatal(err)
	}
	return resp
}

// stepToEnd drives one session to its episode's natural end.
func (c *testClient) stepToEnd(sid string, batch int) Response {
	c.t.Helper()
	for i := 0; i < 10000; i++ {
		resp := c.do(Request{Op: OpStep, SID: sid, Steps: batch})
		if !resp.OK {
			c.t.Fatalf("step rejected: %+v", resp)
		}
		if resp.Done {
			return resp
		}
	}
	c.t.Fatalf("session %s did not terminate", sid)
	return Response{}
}

func TestOpenStepCloseLifecycle(t *testing.T) {
	srv, addr := newTestServer(t, Config{Shards: 2})
	cl := dialTest(t, addr)

	if resp := cl.do(Request{Op: OpPing}); !resp.OK {
		t.Fatalf("ping: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpOpen, SID: "a", Seed: 3}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	final := cl.stepToEnd("a", 25)
	if final.Result == nil {
		t.Fatalf("terminal step carries no result: %+v", final)
	}
	if !final.Result.Reached || final.Result.Collided {
		t.Fatalf("default leftturn/ultimate episode should reach safely: %+v", final.Result)
	}
	// Stepping past the end returns the terminal outcome, unchanged.
	over := cl.do(Request{Op: OpStep, SID: "a"})
	if !over.OK || !over.Done || over.Result == nil || *over.Result != *final.Result {
		t.Fatalf("past-the-end step: %+v", over)
	}
	// Close carries the settled result and frees the SID.
	closed := cl.do(Request{Op: OpClose, SID: "a"})
	if !closed.OK || closed.Result == nil || *closed.Result != *final.Result {
		t.Fatalf("close: %+v", closed)
	}
	if resp := cl.do(Request{Op: OpStep, SID: "a"}); resp.OK || resp.Reason != ReasonUnknownSession {
		t.Fatalf("step after close: %+v", resp)
	}

	st := srv.Stats()
	if st.SessionsOpened != 1 || st.SessionsClosed != 1 || st.LiveSessions != 0 || st.EpisodesFinished != 1 {
		t.Fatalf("stats after lifecycle: %+v", st)
	}
}

func TestCloseMidEpisodeYieldsPartialResult(t *testing.T) {
	_, addr := newTestServer(t, Config{Shards: 1})
	cl := dialTest(t, addr)
	if resp := cl.do(Request{Op: OpOpen, SID: "cancel", Seed: 1}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpStep, SID: "cancel", Steps: 7}); !resp.OK || resp.Done {
		t.Fatalf("partial step: %+v", resp)
	}
	resp := cl.do(Request{Op: OpClose, SID: "cancel"})
	if !resp.OK || resp.Result == nil {
		t.Fatalf("cancel close: %+v", resp)
	}
	if resp.Result.Steps != 7 || resp.Result.Reached || resp.Result.Collided {
		t.Fatalf("cancelled episode should settle 7 open steps, got %+v", resp.Result)
	}
}

func TestRejections(t *testing.T) {
	srv, addr := newTestServer(t, Config{Shards: 1, MaxSessions: 2})
	cl := dialTest(t, addr)

	if resp := cl.do(Request{Op: OpOpen, SID: "one"}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	// Duplicate SID (below the cap, so admission passes first).
	cl2 := dialTest(t, addr)
	if resp := cl2.do(Request{Op: OpOpen, SID: "one"}); resp.OK || resp.Reason != ReasonDuplicateSession {
		t.Fatalf("duplicate open: %+v", resp)
	}
	// Admission control at the cap.
	if resp := cl.do(Request{Op: OpOpen, SID: "two"}); !resp.OK {
		t.Fatalf("open two: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpOpen, SID: "three"}); resp.OK || resp.Reason != ReasonSaturated {
		t.Fatalf("saturated open: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpClose, SID: "two"}); !resp.OK {
		t.Fatalf("close two: %+v", resp)
	}
	// Unknown session.
	if resp := cl.do(Request{Op: OpStep, SID: "ghost"}); resp.OK || resp.Reason != ReasonUnknownSession {
		t.Fatalf("unknown step: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpClose, SID: "ghost"}); resp.OK || resp.Reason != ReasonUnknownSession {
		t.Fatalf("unknown close: %+v", resp)
	}
	// Bad requests: unknown op, missing SID, invalid open parameters.
	if resp := cl.do(Request{Op: "warp", SID: "one"}); resp.OK || resp.Reason != ReasonBadRequest {
		t.Fatalf("unknown op: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpOpen}); resp.OK || resp.Reason != ReasonBadRequest {
		t.Fatalf("open without sid: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpClose, SID: "one"}); !resp.OK {
		t.Fatalf("cleanup close: %+v", resp)
	}
	if resp := cl.do(Request{Op: OpOpen, SID: "bad", Scenario: "hovercraft"}); resp.OK || resp.Reason != ReasonBadRequest {
		t.Fatalf("bad scenario: %+v", resp)
	}
	// The failed open must release its admission slot.
	if n := srv.Stats().LiveSessions; n != 0 {
		t.Fatalf("failed open leaked %d live sessions", n)
	}
	// Malformed JSON gets a bad-request response, then the connection drops.
	cl3 := dialTest(t, addr)
	if _, err := cl3.conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := cl3.dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Reason != ReasonBadRequest {
		t.Fatalf("malformed line: %+v", resp)
	}

	st := srv.Stats()
	for _, reason := range []string{ReasonSaturated, ReasonDuplicateSession, ReasonUnknownSession, ReasonBadRequest} {
		if st.Rejections[reason] == 0 {
			t.Fatalf("no %s rejection counted: %+v", reason, st.Rejections)
		}
	}
}

// TestBackpressure exercises the bounded-mailbox contract directly: the
// enqueue path must reject (never block) on a full mailbox, and must
// reject with the closed reason once teardown has flipped the session.
func TestBackpressure(t *testing.T) {
	sess := &session{id: "bp", mailbox: make(chan envelope, 2)}
	w := &connWriter{}
	for i := 0; i < 2; i++ {
		if reason := sess.enqueue(envelope{w: w}); reason != "" {
			t.Fatalf("enqueue %d rejected: %s", i, reason)
		}
	}
	done := make(chan string, 1)
	go func() { done <- sess.enqueue(envelope{w: w}) }()
	select {
	case reason := <-done:
		if reason != ReasonBackpressure {
			t.Fatalf("full-mailbox enqueue: got %q, want %q", reason, ReasonBackpressure)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue blocked on a full mailbox")
	}
	sess.mu.Lock()
	sess.closed = true
	sess.mu.Unlock()
	if reason := sess.enqueue(envelope{w: w}); reason != ReasonSessionClosed {
		t.Fatalf("closed enqueue: got %q, want %q", reason, ReasonSessionClosed)
	}
}

// TestBackpressureEndToEnd fills a 1-slot mailbox through the wire: two
// clients race step requests at a session whose worker is busy servicing
// a large batch, so one enqueue must observe a full mailbox eventually.
func TestBackpressureEndToEnd(t *testing.T) {
	_, addr := newTestServer(t, Config{Shards: 1, Mailbox: 1, MaxStepsPerRequest: 1 << 20})
	cl := dialTest(t, addr)
	if resp := cl.do(Request{Op: OpOpen, SID: "bp", Scenario: ScenarioCarFollow}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	// Fire-and-forget steps from a second connection while the first keeps
	// the worker busy; with a single shard and a 1-deep mailbox some must
	// bounce.  (Responses are drained concurrently so the writer never
	// stalls on a full socket.)
	cl2 := dialTest(t, addr)
	sawBackpressure := make(chan struct{})
	go func() {
		var once sync.Once
		for {
			var resp Response
			if err := cl2.dec.Decode(&resp); err != nil {
				return
			}
			if resp.Reason == ReasonBackpressure {
				once.Do(func() { close(sawBackpressure) })
			}
		}
	}()
	deadline := time.After(10 * time.Second)
	for i := 0; ; i++ {
		if err := cl2.enc.Encode(Request{Op: OpStep, SID: "bp", Steps: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-sawBackpressure:
			return
		case <-deadline:
			t.Fatal("no backpressure rejection after sustained overload")
		default:
		}
	}
}

func TestIdleReap(t *testing.T) {
	srv, addr := newTestServer(t, Config{Shards: 1, IdleTimeout: 60 * time.Millisecond})
	cl := dialTest(t, addr)
	if resp := cl.do(Request{Op: OpOpen, SID: "idle"}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := cl.do(Request{Op: OpClose, SID: "idle"})
		if !resp.OK && resp.Reason == ReasonUnknownSession {
			break // reaped
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was never reaped")
		}
		// A successful close means we raced ahead of the reaper — reopen
		// and keep waiting, this time without touching it.
		if resp.OK {
			if r := cl.do(Request{Op: OpOpen, SID: "idle"}); !r.OK {
				t.Fatalf("reopen: %+v", r)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st := srv.Stats(); st.SessionsReaped == 0 || st.LiveSessions != 0 {
		t.Fatalf("reap stats: %+v", st)
	}
}

// TestSessionOutlivesConnection pins that sessions are keyed by SID, not
// by connection: a client may reconnect and keep stepping.
func TestSessionOutlivesConnection(t *testing.T) {
	_, addr := newTestServer(t, Config{Shards: 1})
	cl := dialTest(t, addr)
	if resp := cl.do(Request{Op: OpOpen, SID: "roam", Seed: 4}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	first := cl.do(Request{Op: OpStep, SID: "roam", Steps: 3})
	if !first.OK || first.Done {
		t.Fatalf("first step: %+v", first)
	}
	cl.conn.Close()

	cl2 := dialTest(t, addr)
	second := cl2.do(Request{Op: OpStep, SID: "roam", Steps: 3})
	if !second.OK || second.Step != first.Step+3 {
		t.Fatalf("resumed step: %+v (after %+v)", second, first)
	}
	if resp := cl2.do(Request{Op: OpClose, SID: "roam"}); !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
}

// TestStreamedEventInjection pins the wire-level StepInput path: two
// sessions with identical seeds under the same bursty channel evolve
// identically, so feeding one of them an out-of-band V2V report must make
// the trajectories diverge — proof the Msgs field reaches the fusion
// filter rather than being dropped at the protocol layer.
func TestStreamedEventInjection(t *testing.T) {
	_, addr := newTestServer(t, Config{Shards: 1})
	cl := dialTest(t, addr)
	for _, sid := range []string{"plain", "fed"} {
		if resp := cl.do(Request{Op: OpOpen, SID: sid, Seed: 6, Disturb: "burst"}); !resp.OK {
			t.Fatalf("open %s: %+v", sid, resp)
		}
	}
	step := func(sid string, n int, msgs []comms.Message) Response {
		resp := cl.do(Request{Op: OpStep, SID: sid, Steps: n, Msgs: msgs})
		if !resp.OK {
			t.Fatalf("step %s: %+v", sid, resp)
		}
		return resp
	}
	step("plain", 10, nil)
	step("fed", 10, nil)
	// A false report — the oncoming vehicle much closer than the channel
	// has let on — must flow into the fusion filter and leave a visible
	// scar on the fed session's episode accounting (fused-interval misses
	// and sound violations while the lie is the freshest message).
	step("fed", 1, []comms.Message{{Sender: 1, T: 0.5, P: -16, V: 10}})
	step("plain", 1, nil)
	plain := cl.stepToEnd("plain", 25).Result
	fed := cl.stepToEnd("fed", 25).Result
	if plain == nil || fed == nil {
		t.Fatalf("missing terminal results: plain=%+v fed=%+v", plain, fed)
	}
	if *plain == *fed {
		t.Fatalf("injected V2V report left the fed session's episode identical: %+v", fed)
	}
	if fed.SoundViolations <= plain.SoundViolations {
		t.Fatalf("false report should raise sound violations: plain=%d fed=%d",
			plain.SoundViolations, fed.SoundViolations)
	}
}

func TestMetricsEndpoints(t *testing.T) {
	srv, addr := newTestServer(t, Config{Shards: 1})
	cl := dialTest(t, addr)
	if resp := cl.do(Request{Op: OpOpen, SID: "m", Seed: 2}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	cl.stepToEnd("m", 50)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	var payload struct {
		Server Stats `json:"server"`
		Engine struct {
			Episodes int64 `json:"episodes"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("metrics payload: %v\n%s", err, rec.Body.String())
	}
	if payload.Server.EpisodesFinished != 1 || payload.Engine.Episodes != 1 {
		t.Fatalf("metrics payload counts: %+v", payload)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path: %d", rec.Code)
	}
	srv.Close()
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz while closing: %d", rec.Code)
	}
}

// TestGracefulShutdownDrains: Shutdown stops admissions (ReasonDraining,
// healthz 503) while the in-flight session keeps stepping to its natural
// end; once the last session closes, Shutdown returns the final Stats.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, addr := newTestServer(t, Config{Shards: 2})
	cl := dialTest(t, addr)
	if resp := cl.do(Request{Op: OpOpen, SID: "d1", Seed: 5}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}

	done := make(chan struct{})
	var finalSt Stats
	var shutErr error
	go func() {
		finalSt, shutErr = srv.Shutdown(10 * time.Second)
		close(done)
	}()

	// The draining flag flips before Shutdown starts waiting, but give the
	// goroutine a moment to be scheduled at all.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := cl.do(Request{Op: OpOpen, SID: "d2"})
		if !resp.OK && resp.Reason == ReasonDraining {
			break
		}
		if resp.OK {
			// Won the race against the drain flag; retire it and retry.
			cl.do(Request{Op: OpClose, SID: "d2"})
		}
		if time.Now().After(deadline) {
			t.Fatal("draining never became observable to opens")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz while draining: %d", rec.Code)
	}

	// The in-flight session is NOT interrupted: it steps to its episode's
	// natural end and closes normally while the server drains.
	final := cl.stepToEnd("d1", 25)
	if final.Result == nil || !final.Result.Reached {
		t.Fatalf("drained session should finish normally: %+v", final)
	}
	if resp := cl.do(Request{Op: OpClose, SID: "d1"}); !resp.OK {
		t.Fatalf("close during drain: %+v", resp)
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the last session closed")
	}
	if shutErr != nil {
		t.Fatalf("Shutdown: %v", shutErr)
	}
	if !finalSt.Draining || finalSt.LiveSessions != 0 {
		t.Fatalf("final stats after drain: %+v", finalSt)
	}
	if finalSt.Rejections[ReasonDraining] == 0 {
		t.Fatalf("draining rejection not counted: %+v", finalSt.Rejections)
	}
	// Idempotent with Close (which Cleanup will call again): a second
	// Shutdown finds nothing live and returns the same final snapshot.
	if st, err := srv.Shutdown(time.Second); err != nil || !st.Draining {
		t.Fatalf("second Shutdown: %+v, %v", st, err)
	}
}

// TestShutdownDeadlineStrandsSessions: a session that never finishes
// forces Shutdown to give up at the deadline, close hard, and report the
// stranded count.
func TestShutdownDeadlineStrandsSessions(t *testing.T) {
	srv, addr := newTestServer(t, Config{Shards: 1})
	cl := dialTest(t, addr)
	if resp := cl.do(Request{Op: OpOpen, SID: "stuck", Seed: 2}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	st, err := srv.Shutdown(50 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "still live") {
		t.Fatalf("deadline shutdown error: %v", err)
	}
	if st.LiveSessions != 1 {
		t.Fatalf("stranded session not reflected in final stats: %+v", st)
	}
}

// TestSoak is the scaled-down-in-race / full-scale-native soak: a
// population of concurrent sessions (default soakDefaultSessions,
// override with SERVE_SOAK_SESSIONS) stepped to natural termination over
// a pool of connections, asserting the p99 step-latency SLO, zero
// SoundViolations, zero collisions, and no goroutine leak across Close.
func TestSoak(t *testing.T) {
	sessions := soakDefaultSessions
	if env := os.Getenv("SERVE_SOAK_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("bad SERVE_SOAK_SESSIONS=%q", env)
		}
		sessions = n
	}
	conns := 4 * runtime.GOMAXPROCS(0)
	if conns > sessions {
		conns = sessions
	}

	before := runtime.NumGoroutine()
	srv, err := New(Config{MaxSessions: sessions + 1, IdleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	errs := make([]error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs[ci] = func() error {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return err
				}
				defer conn.Close()
				enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
				do := func(req Request) (Response, error) {
					if err := enc.Encode(req); err != nil {
						return Response{}, err
					}
					var resp Response
					err := dec.Decode(&resp)
					return resp, err
				}
				var sids []string
				for i := ci; i < sessions; i += conns {
					sid := fmt.Sprintf("soak-%d", i)
					resp, err := do(Request{Op: OpOpen, SID: sid, Seed: int64(i), Disturb: "burst"})
					if err != nil {
						return err
					}
					if !resp.OK {
						return fmt.Errorf("open %s rejected: %s", sid, resp.Reason)
					}
					sids = append(sids, sid)
				}
				// Round-robin so the whole stripe stays concurrently live.
				live := append([]string(nil), sids...)
				for len(live) > 0 {
					next := live[:0]
					for _, sid := range live {
						resp, err := do(Request{Op: OpStep, SID: sid, Steps: 25})
						if err != nil {
							return err
						}
						if !resp.OK {
							return fmt.Errorf("step %s rejected: %s", sid, resp.Reason)
						}
						if resp.Done {
							if resp.Result == nil || resp.Result.Collided {
								return fmt.Errorf("session %s: bad terminal result %+v", sid, resp.Result)
							}
							continue
						}
						next = append(next, sid)
					}
					live = next
				}
				for _, sid := range sids {
					if resp, err := do(Request{Op: OpClose, SID: sid}); err != nil {
						return err
					} else if !resp.OK {
						return fmt.Errorf("close %s rejected: %s", sid, resp.Reason)
					}
				}
				return nil
			}()
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := srv.Stats()
	if st.PeakSessions < int64(sessions) {
		t.Fatalf("peak sessions %d, want the full population %d concurrently live", st.PeakSessions, sessions)
	}
	if st.EpisodesFinished != int64(sessions) || st.LiveSessions != 0 {
		t.Fatalf("soak stats: %+v", st)
	}
	if p99 := st.StepLatencyNs.Quantile(0.99); p99 > soakStepSLO {
		t.Fatalf("step latency p99 %.0fns exceeds SLO %.0fns", p99, float64(soakStepSLO))
	}
	engine := srv.Metrics().Snapshot()
	if engine.SoundViolations != 0 {
		t.Fatalf("soak produced %d sound violations", engine.SoundViolations)
	}
	t.Logf("soak: %d sessions, %d steps, step p50 %.2fµs p99 %.2fµs, rejections %v",
		sessions, st.StepsExecuted,
		st.StepLatencyNs.Quantile(0.5)/1e3, st.StepLatencyNs.Quantile(0.99)/1e3, st.Rejections)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Leak check: all server goroutines (shards, reaper, conn handlers)
	// must be gone.  Allow brief scheduler lag and a small slack for
	// runtime-internal goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before soak, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
