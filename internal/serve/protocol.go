package serve

import (
	"safeplan/internal/comms"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

// Protocol operations.  A client speaks line-delimited JSON over a plain
// TCP connection: one Request per line in, one Response per line out.
// Responses are written as sessions finish processing, so a client
// pipelining requests for many sessions over one connection must match
// responses by (SID, Op), not by arrival order.
const (
	// OpOpen admits a new session: a long-lived episode engine (a
	// resumable Stepper) identified by SID.
	OpOpen = "open"
	// OpStep advances the session's engine by Steps control steps
	// (default 1), fusing any streamed Msgs/Reads at the top of the first
	// step.
	OpStep = "step"
	// OpClose finishes the session (mid-episode cancellation included)
	// and releases its resources.
	OpClose = "close"
	// OpStats returns live server statistics; no session required.
	OpStats = "stats"
	// OpPing is a no-op liveness probe; no session required.
	OpPing = "ping"
)

// Rejection reasons carried in Response.Reason when OK is false.  The
// reason is machine-readable so clients can distinguish retryable
// conditions (backpressure) from terminal ones (unknown session).
const (
	// ReasonSaturated: admission control — the server is at MaxSessions.
	ReasonSaturated = "saturated"
	// ReasonBackpressure: the session's bounded mailbox is full; the
	// client is stepping faster than the shard drains.  Retryable.
	ReasonBackpressure = "backpressure"
	// ReasonUnknownSession: no live session with that SID (never opened,
	// already closed, or reaped by the idle timeout).
	ReasonUnknownSession = "unknown-session"
	// ReasonDuplicateSession: OpOpen with a SID that is already live.
	ReasonDuplicateSession = "duplicate-session"
	// ReasonSessionClosed: the session was closed while this request
	// waited in its mailbox.
	ReasonSessionClosed = "session-closed"
	// ReasonBadRequest: malformed JSON, unknown op, or invalid open
	// parameters.
	ReasonBadRequest = "bad-request"
	// ReasonDraining: the server is shutting down gracefully — no new
	// sessions are admitted, but existing sessions keep stepping until
	// they finish or the drain deadline passes.  Terminal for opens;
	// clients should go elsewhere.
	ReasonDraining = "draining"
)

// Scenario and design selectors accepted by OpOpen.
const (
	ScenarioLeftTurn  = "leftturn"  // single oncoming vehicle (default)
	ScenarioMulti     = "multi"     // oncoming stream
	ScenarioCarFollow = "carfollow" // distance-gap car following

	PlannerConservative = "cons" // conservative expert κ_n (default)
	PlannerAggressive   = "aggr" // aggressive expert κ_n

	DesignPure     = "pure"     // κ_n alone, no safety layer
	DesignBasic    = "basic"    // compound planner, no info filter
	DesignUltimate = "ultimate" // compound planner + info filter (default)
)

// Request is one line of client input.
type Request struct {
	Op  string `json:"op"`
	SID string `json:"sid,omitempty"`

	// Open parameters (ignored by other ops).
	Scenario string `json:"scenario,omitempty"` // leftturn | multi | carfollow
	Planner  string `json:"planner,omitempty"`  // cons | aggr
	Design   string `json:"design,omitempty"`   // pure | basic | ultimate
	Seed     int64  `json:"seed,omitempty"`
	Disturb  string `json:"disturb,omitempty"` // comms disturbance preset name

	// Step parameters.  Steps is clamped to [1, MaxStepsPerRequest];
	// Msgs/Reads are fused at the top of the first advanced step (the
	// sim.StepInput event-injection contract).
	Steps int              `json:"steps,omitempty"`
	Msgs  []comms.Message  `json:"msgs,omitempty"`
	Reads []sensor.Reading `json:"reads,omitempty"`
}

// ResultSummary condenses a finished episode's sim.Result for the wire
// (the full Result carries the trace slice, which sessions never record).
type ResultSummary struct {
	Reached             bool    `json:"reached"`
	ReachTime           float64 `json:"reach_time"`
	Collided            bool    `json:"collided"`
	Eta                 float64 `json:"eta"`
	Steps               int     `json:"steps"`
	EmergencySteps      int     `json:"emergency_steps"`
	FusedIntervalMisses int     `json:"fused_interval_misses"`
	SoundViolations     int     `json:"sound_violations"`
}

func summarize(r sim.Result) *ResultSummary {
	return &ResultSummary{
		Reached:             r.Reached,
		ReachTime:           r.ReachTime,
		Collided:            r.Collided,
		Eta:                 r.Eta,
		Steps:               r.Steps,
		EmergencySteps:      r.EmergencySteps,
		FusedIntervalMisses: r.FusedIntervalMisses,
		SoundViolations:     r.SoundViolations,
	}
}

// Response is one line of server output.
type Response struct {
	SID string `json:"sid,omitempty"`
	Op  string `json:"op"`
	OK  bool   `json:"ok"`

	// Error is a human-readable message; Reason is the machine-readable
	// rejection class.  Both empty when OK.
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`

	// Step outcome (OpStep, and OpClose when the episode had finished).
	T         float64 `json:"t,omitempty"`
	Step      int     `json:"step,omitempty"`
	Accel     float64 `json:"accel,omitempty"`
	Emergency bool    `json:"emergency,omitempty"`
	EgoP      float64 `json:"ego_p,omitempty"`
	EgoV      float64 `json:"ego_v,omitempty"`
	Done      bool    `json:"done,omitempty"`

	// Result is attached once the episode terminates (terminal step or
	// close).
	Result *ResultSummary `json:"result,omitempty"`

	// Stats is attached to OpStats responses.
	Stats *Stats `json:"stats,omitempty"`
}

func reject(req Request, reason, msg string) Response {
	return Response{SID: req.SID, Op: req.Op, OK: false, Reason: reason, Error: msg}
}
