//go:build race

package serve

// Under the race detector every engine step runs an order of magnitude
// slower and the soak population would dominate `make check`; the
// lifecycle coverage is identical, only the scale and SLO change.
const (
	soakDefaultSessions = 1000
	soakStepSLO         = 200e6 // p99 step latency bound under -race [ns]
)
