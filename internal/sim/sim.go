// Package sim closes the loop of the paper's evaluation (§V): it steps the
// ego and oncoming vehicles, the V2V channel with its disturbance model,
// the noisy onboard sensor, the information filter, and the agent (pure NN
// planner or compound planner) under a single deterministic seed, and
// scores each episode with the paper's evaluation function η.
package sim

import (
	"fmt"
	"math"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/leftturn"
	"safeplan/internal/sensor"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
)

// Config assembles one simulation campaign's fixed parameters.
type Config struct {
	Scenario leftturn.Config // geometry, limits, control period
	Comms    comms.Config    // disturbance setting
	Sensor   sensor.Config   // onboard sensor noise
	Driver   traffic.DriverConfig

	DtM float64 // message transmission period Δt_m [s]
	DtS float64 // sensing period Δt_s [s]

	// InfoFilter enables the Kalman component (with message replay) in the
	// fusion filter — the paper's information filter.  Off for the pure
	// and basic configurations, on for the ultimate one.
	InfoFilter bool
	// NoReplay disables the Kalman message rollback/replay while keeping
	// the filter itself (ablation; meaningful only with InfoFilter).
	NoReplay bool

	// SensorDropProb drops each scheduled sensor reading with this
	// probability (failure injection: a flaky perception stack).
	SensorDropProb float64

	// SensorDisturb, when non-nil, disturbs the sensing schedule beyond
	// i.i.d. dropout: burst dropout and sound bias drift (see
	// internal/disturb).  It composes with SensorDropProb — a reading is
	// dropped when either says so.  The channel-side counterpart lives in
	// Comms.Model.
	SensorDisturb disturb.SensorModel

	// OncomingScript, when non-empty, replaces the random driver with a
	// scripted per-control-step behavioural acceleration for the oncoming
	// vehicle (adversarial workloads, fuzzing); the last value holds
	// after the script is exhausted.  Values are clamped by the physical
	// envelope in dynamics.Step like any driver command.
	OncomingScript []float64

	Horizon float64 // episode cutoff [s]; 0 selects DefaultHorizon

	// OncomingStartSpread is the width of the initial-position sweep: each
	// episode starts C1 at OncomingInit.P − U(0, spread) (the paper's
	// p1(0) ∈ {50.5 + 0.5j | j = 0..19} becomes spread 9.5 m on the
	// mirrored axis).  Zero keeps the configured start.
	OncomingStartSpread float64
	// OncomingSpeedMin/Max sample the initial oncoming speed; both zero
	// keeps the configured OncomingInit.V.
	OncomingSpeedMin, OncomingSpeedMax float64

	// Guard, when non-nil, wraps every planner invocation in the
	// compute-fault containment layer (internal/guard): panics are
	// recovered, non-finite or out-of-range accelerations rejected, and
	// deadline overruns detected, each falling back to the last validated
	// action or κ_e.  Zero Limits are filled from Scenario.Ego.
	Guard *guard.Config

	// Certify, when non-nil, enables verified mode: each clean
	// non-emergency planner command is cross-checked against the
	// IBP-certified output range of the planner network over the sound
	// estimate, and misses are counted in Result / guard / campaign
	// stats.  See CertifyConfig; nil keeps the point-evaluation hot path
	// byte-identical.
	Certify *CertifyConfig

	// PlannerFault, when non-nil, injects compute faults into the planner
	// (internal/faultinject): panics, NaN outputs, stuck or biased
	// actuation, latency spikes.  A guard is installed automatically
	// (DefaultConfig) when none is configured — injected panics must never
	// escape Run.  The injector's random streams derive from the master
	// seed after every legacy stream, so configurations without a fault
	// model keep their exact per-seed behaviour.
	PlannerFault faultinject.Model
}

// DefaultHorizon cuts an episode after 30 simulated seconds.
const DefaultHorizon = 30

// DefaultConfig returns the evaluation defaults documented in
// EXPERIMENTS.md: Δt_m = Δt_s = 0.1 s, sensor δ = 1, perfect comms,
// C1's paper start sweep, and initial speeds 7–15 m/s.
func DefaultConfig() Config {
	return Config{
		Scenario:            leftturn.DefaultConfig(),
		Comms:               comms.NoDisturbance(),
		Sensor:              sensor.Uniform(1),
		Driver:              traffic.DefaultDriverConfig(),
		DtM:                 0.1,
		DtS:                 0.1,
		Horizon:             DefaultHorizon,
		OncomingStartSpread: 9.5,
		OncomingSpeedMin:    7,
		OncomingSpeedMax:    15,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Scenario.Validate(); err != nil {
		return err
	}
	if err := c.Comms.Validate(); err != nil {
		return err
	}
	if err := c.Sensor.Validate(); err != nil {
		return err
	}
	if err := c.Driver.Validate(); err != nil {
		return err
	}
	// NaN compares false with every ordering operator, so the range checks
	// below would silently accept NaN fields; reject non-finite values
	// explicitly first.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DtM", c.DtM}, {"DtS", c.DtS}, {"Horizon", c.Horizon},
		{"SensorDropProb", c.SensorDropProb},
		{"OncomingStartSpread", c.OncomingStartSpread},
		{"OncomingSpeedMin", c.OncomingSpeedMin},
		{"OncomingSpeedMax", c.OncomingSpeedMax},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("sim: %s is %v (must be finite)", f.name, f.v)
		}
	}
	if c.DtM <= 0 || c.DtS <= 0 {
		return fmt.Errorf("sim: non-positive periods DtM=%v DtS=%v", c.DtM, c.DtS)
	}
	if c.Horizon < 0 {
		return fmt.Errorf("sim: negative horizon %v", c.Horizon)
	}
	if c.OncomingStartSpread < 0 {
		return fmt.Errorf("sim: negative start spread")
	}
	if c.OncomingSpeedMin > c.OncomingSpeedMax {
		return fmt.Errorf("sim: oncoming speed range reversed")
	}
	if c.SensorDropProb < 0 || c.SensorDropProb > 1 {
		return fmt.Errorf("sim: sensor drop probability %v outside [0,1]", c.SensorDropProb)
	}
	if c.SensorDisturb != nil {
		if err := c.SensorDisturb.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	for i, a := range c.OncomingScript {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("sim: oncoming script step %d is %v", i, a)
		}
	}
	if c.Guard != nil {
		g := *c.Guard
		if g.Limits == (dynamics.Limits{}) {
			g.Limits = c.Scenario.Ego // NewGuardedStep applies the same fill
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.PlannerFault != nil {
		if err := c.PlannerFault.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.Certify != nil {
		if err := c.Certify.validate(); err != nil {
			return err
		}
	}
	return nil
}

// ScriptAccel returns the scripted behavioural acceleration for a control
// step, holding the final value once the script is exhausted.  Exported
// for the sibling scenario packages' runners.
func ScriptAccel(script []float64, step int) float64 {
	if step >= len(script) {
		return script[len(script)-1]
	}
	return script[step]
}

// Sample is one trace row (recorded when Options.Trace is set).
type Sample struct {
	T float64

	EgoP, EgoV, EgoA float64
	OncP, OncV, OncA float64 // ground truth

	MeasP, MeasV   float64 // latest raw sensor reading (NaN before the first)
	EstP, EstV     float64 // fused point estimates
	EstPLo, EstPHi float64 // fused position interval
	EstVLo, EstVHi float64 // fused velocity interval

	SoundPLo, SoundPHi float64 // sound position interval
	SoundVLo, SoundVHi float64 // sound velocity interval
	SoundLo, SoundHi   float64 // conservative window over the sound estimate

	ConsLo, ConsHi float64 // conservative window (relative times)
	AggrLo, AggrHi float64 // aggressive window (relative times)

	Emergency bool
}

// Result scores one episode.
type Result struct {
	Reached   bool
	ReachTime float64
	Collided  bool
	Eta       float64

	Steps          int
	EmergencySteps int

	// FusedIntervalMisses counts steps where the fused interval failed to
	// contain the true oncoming state.  The fused pair is deliberately
	// non-guaranteed — the Kalman component trades containment for width —
	// so misses are expected sharpening error, not a safety defect
	// (diagnostic; 0 without the Kalman component, near 0 with it).
	// Previously (mis)named SoundnessViolations.
	FusedIntervalMisses int

	// SoundViolations counts steps where the *sound* interval pair
	// (Estimate.SoundP/SoundV) failed to contain the true state — the same
	// predicate as the SoundEstimate invariant.  A nonzero count is a
	// genuine soundness-contract violation and must be 0 in every
	// configuration.
	SoundViolations int

	// Guard aggregates the planner-fault guard's activity for the episode.
	// All-zero (with WorstState/FinalState Nominal) when no guard is
	// configured.
	Guard guard.EpisodeStats

	// CertifiedSteps counts executed κ_n commands cross-checked against
	// the IBP certified range; CertifiedRangeMisses counts those that
	// fell outside it.  Both zero unless Config.Certify enabled verified
	// mode.  A nonzero miss count on a clean run means the certified
	// range or its wiring is wrong — the ibp-gate pins it at zero.
	CertifiedSteps       int
	CertifiedRangeMisses int

	// Links carries the per-link chain statistics of a platoon episode
	// (internal/platoon): entry ℓ describes the link from vehicle ℓ to
	// vehicle ℓ+1.  Populated only for chains longer than one link
	// (Vehicles > 2), so a two-vehicle platoon episode serializes
	// byte-identically to the car-following episode it reproduces.
	Links []LinkStats `json:",omitempty"`

	Trace []Sample
}

// LinkStats scores one inter-vehicle link of a platoon episode.
type LinkStats struct {
	// MinGap is the smallest observed bumper gap over the episode [m].
	MinGap float64
	// PeakGapErr is the peak absolute deviation of the gap from its
	// initial (equilibrium) value [m] — the per-link amplitude the
	// string-stability invariant compares down the chain.
	PeakGapErr float64
	// EmergencySteps counts control steps in which this link's follower
	// commanded emergency braking (always 0 for link 0, whose follower is
	// the NN vehicle scored by Result.EmergencySteps).
	EmergencySteps int
}

// EmergencyFrequency is the fraction of control steps commanded by κ_e.
func (r Result) EmergencyFrequency() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.EmergencySteps) / float64(r.Steps)
}

// Options selects per-episode behaviour.
type Options struct {
	Seed  int64 // master seed; every random stream derives from it
	Trace bool  // record per-step samples

	// Collector receives telemetry probes (per-step, per-episode).  Nil
	// disables telemetry: the loop then pays one nil-check per probe
	// site and skips the wall-clock reads entirely.  Campaign runners
	// share one collector across workers, so it must be concurrency-safe
	// (telemetry.Metrics is).
	Collector telemetry.Collector

	// Invariants are runtime checkers evaluated once per control step
	// (per observed vehicle) and once per finished episode.  A violation
	// aborts the episode with a *ViolationError.  Checkers must be
	// stateless: campaign runners share them across workers.
	Invariants []Invariant

	// Scratch, when non-nil, is the episode-scoped arena the runner draws
	// per-episode objects (rand streams, channel, sensor, driver, fusion
	// filter, Poll buffer) from instead of allocating them fresh.  The
	// episode is bit-identical with and without it.  A Scratch serves one
	// episode at a time: campaign workers keep one per shard and must not
	// share it between concurrently running episodes.
	Scratch *Scratch
}

// ReportOutcome forwards a finished episode to the collector (a no-op on
// a nil collector).  It is exported for the sibling scenario packages'
// runners.
func ReportOutcome(c telemetry.Collector, seed int64, r *Result) {
	if c == nil {
		return
	}
	c.OnEpisode(telemetry.EpisodeOutcome{
		Seed:                seed,
		Reached:             r.Reached,
		Collided:            r.Collided,
		Eta:                 r.Eta,
		ReachTime:           r.ReachTime,
		Steps:               r.Steps,
		EmergencySteps:      r.EmergencySteps,
		FusedIntervalMisses: r.FusedIntervalMisses,
		SoundViolations:     r.SoundViolations,
	})
}

// Run simulates one episode of agent under cfg and returns its Result.
// It is a thin closed loop over the resumable Stepper engine: construct,
// step to termination with no injected input, finalize.  The Stepper
// parity tests pin this equivalence byte for byte.
func Run(cfg Config, agent core.Agent, opts Options) (Result, error) {
	st, err := NewStepper(cfg, agent, opts)
	if err != nil {
		return Result{}, err
	}
	for {
		out, err := st.Step(StepInput{})
		if err != nil || out.Done {
			return st.Finish()
		}
	}
}
