// Package batch implements the batched lockstep stepping engine: a
// structure-of-arrays twin of sim.Stepper that advances N left-turn
// episodes one control step at a time over per-field contiguous slices.
// Within a step, the stateful component work (channel, sensing, fusion,
// planning) runs lane-major — each lane's pointer-heavy working set is
// touched once, while it is cache-hot — and the dense float work (the
// containment audits over the SoA interval sets, the outcome sweep) runs
// as whole-slice passes.  The payoff is throughput — per-step dispatch,
// ticker math, and shared per-step values amortize over the batch, and
// same-field state is cache-adjacent — while every lane stays
// byte-identical to the scalar engine.
//
// # Why lockstep batching is bit-invisible
//
// Each episode's randomness derives from its master seed through a fixed
// set of purpose-specific streams (driver, channel, sensor, init, sensor
// dropout, disturbance, fault injection), created in one documented order
// at construction.  Every stream is consumed by exactly one component, and
// every component is per-lane.  Interleaving lanes within a step therefore
// permutes only draws from different streams, never draws within one; each
// stream still observes exactly the scalar draw sequence.  Deferring the
// containment audits to a post-pass is equally invisible: they draw no
// randomness and only increment per-episode counters, so moving them
// after planning changes no operand of any other computation.  The float
// math is per-lane with identical operands in identical order, so results
// match bit for bit.  TestBatchScalarParity and FuzzBatchParity pin this.
//
// Three pieces of per-step state are genuinely shared across lanes and
// safely so, because all lanes run one Config: the time grid (t = step·Δt_c
// and the horizon), and the message/sensing tickers, which are pure integer
// functions of the time sequence.  The stateless monitor is shared too.
// Everything stateful — channel, fusion filter, sensor, driver, RNGs,
// guard — stays per-lane.
//
// # Lane compaction
//
// Episodes terminate at different steps.  A finished lane is finalized and
// swap-removed: the tail lane's state moves into its position across every
// parallel slice, and a stable index map (lane → result slot) keeps results
// addressed by their original batch position.  The batch thus stays dense —
// no per-step "is this lane alive" masking — and per-episode results come
// back in seed order regardless of termination order.
//
// # Telemetry
//
// The batch engine emits the same step/episode/guard probes as the scalar
// engine with one exception: StepProbe.PlannerNs is reported as 0.  The
// scalar engine brackets each planner call with wall-clock reads; the batch
// hot path deliberately performs no wall-clock reads at all (the
// determinism lint budget covers this package), so per-call planner
// latency is not measured in batch mode.  Campaign Stats never depend on telemetry, so this does
// not affect any determinism guarantee.
package batch

import (
	"fmt"
	"math"
	"math/rand"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/guard"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
	"safeplan/internal/reach"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
	"safeplan/internal/xrand"
)

// LaneError wraps an episode failure with its batch position, so the
// campaign runner can attribute the error to the exact seed.
type LaneError struct {
	Slot int   // index into the seeds slice passed to the engine
	Seed int64 // master seed of the failed episode
	Err  error
}

func (e *LaneError) Error() string {
	return fmt.Sprintf("batch lane %d (seed %d): %v", e.Slot, e.Seed, e.Err)
}

func (e *LaneError) Unwrap() error { return e.Err }

// BatchStepper steps N episodes of one Config in lockstep.  It is the SoA
// counterpart of sim.Stepper: per-field contiguous slices indexed by dense
// lane, compacted as lanes terminate.  Like the scalar engine it is pooled
// inside the Scratch arena (via the ExtEngine slot) and is not safe for
// concurrent use; one engine serves one batch at a time.
type BatchStepper struct {
	cfg   sim.Config
	agent core.Agent
	opts  sim.Options

	sc   leftturn.Config
	mon  monitor.Monitor
	coll telemetry.Collector

	dt       float64
	maxSteps int
	step     int
	t        float64

	// Shared tickers: pure integer functions of the lockstep time grid,
	// identical for every lane of the shared Config.
	msgTick, sensTick comms.Ticker

	n int // live lanes; lane-indexed slices below are valid in [0, n)

	// Vehicle state, SoA.
	egoP, egoV       []float64
	oncP, oncV, oncA []float64

	// Per-lane stateful components.
	drivers   []*traffic.Driver
	channels  []*comms.Channel
	sensors   []*sensor.Model
	filters   []*fusion.Filter
	sensProcs []disturb.SensorProcess
	dropRngs  []*rand.Rand
	guards    []*sim.GuardedStep

	lastMeas []sensor.Reading
	haveMeas []bool

	// Per-step working state, SoA: fused/sound interval sets feed the
	// batched containment kernels.
	fusedSet []reach.Set
	soundSet []reach.Set
	truth    []dynamics.State
	inFused  []bool
	inSound  []bool

	failed []bool

	// know is the current lane's planner knowledge, staged immediately
	// before that lane plans within the lane-major pass.  A single field
	// (not a lane-indexed slice) deliberately: the value is consumed in
	// the same loop iteration that writes it, and keeping it hot avoids a
	// per-lane array store the scalar engine does not pay.
	know core.Knowledge

	// slot maps dense lane index to the episode's position in the seeds
	// slice; it is the stable index map behind swap-remove compaction.
	slot []int

	// Slot-indexed episode outputs.
	seeds []int64
	res   []sim.Result
	errs  []error

	msgBuf []comms.Message

	// Pooled RNG backing stores.  Each lane owns a master source and up to
	// rngStreams derived sources, all xrand.Source (bit-exact math/rand
	// replicas) so construction can seed them in batch: xrand.SeedMany
	// interleaves the 607-entry bootstrap chains across lanes and streams,
	// hiding the serial multiply latency that makes per-source seeding the
	// single largest cost of a scalar episode.  The *rand.Rand wrappers are
	// created once and reused; reseeding the underlying source is
	// equivalent to the scalar engine's pooled rand.Seed.
	masterSrc []*xrand.Source
	masters   []*rand.Rand
	streamSrc []*xrand.Source
	streamRng []*rand.Rand

	seedSrcScratch []*xrand.Source
	seedValScratch []int64

	// Hot-path closures, built once per engine: they read the receiver's
	// cur field, so one closure set serves every lane of every batch.
	cur    int
	plan   func() (float64, bool)
	emergF func() float64
	envF   func() (float64, float64, bool)

	done     bool
	finished bool
}

// pooled fetches the arena's batch engine (stored in the opaque ExtEngine
// slot, the same mechanism internal/carfollow uses) or allocates a fresh
// one.  Reuse keeps steady-state batches allocation-free.
func pooled(sh *sim.Scratch) *BatchStepper {
	if b, ok := sh.ExtEngine().(*BatchStepper); ok && b != nil {
		return b
	}
	b := &BatchStepper{}
	sh.SetExtEngine(b)
	return b
}

// grow returns s resized to n lanes, reallocating only on capacity growth.
// Contents are unspecified; reset overwrites every live lane.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// rngStreams is the maximum number of derived per-lane streams (driver,
// channel, sensor, init, sensor dropout, disturbance), in their master
// derivation order.
const rngStreams = 6

// growRNGs extends the paired source/wrapper pools to at least n entries.
// Sources are reseeded in place batch after batch; the wrappers are bound
// to their source once and never reallocated.
func growRNGs(src []*xrand.Source, rng []*rand.Rand, n int) ([]*xrand.Source, []*rand.Rand) {
	for len(src) < n {
		s := &xrand.Source{}
		src = append(src, s)
		rng = append(rng, rand.New(s))
	}
	return src, rng
}

// New validates cfg and builds a batched engine positioned before step 0,
// one lane per seed.  Per-lane setup replays NewStepper's construction
// exactly — same RNG derivation order, same component acquisition order
// from the scratch arena — so every lane is byte-identical to a scalar
// episode run with the same seed (the parity suite pins this).
func New(cfg sim.Config, agent core.Agent, seeds []int64, opts sim.Options) (*BatchStepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("batch: empty seed set")
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = sim.DefaultHorizon
	}
	sh := opts.Scratch
	sh.Begin()
	b := pooled(sh)
	b.reset(cfg, agent, len(seeds), opts)
	b.seeds = append(b.seeds[:0], seeds...)

	sc := cfg.Scenario
	b.sc = sc
	b.mon = monitor.New(cfg.Scenario)
	b.coll = opts.Collector
	b.dt = sc.DtC
	b.maxSteps = int(horizon/b.dt) + 1

	// Batched stream seeding.  The derivation ORDER is a transcript of
	// NewStepper — master seeded from the episode seed, then the stream
	// seeds drawn from it in the documented sequence — but the expensive
	// part, bootstrapping each source's 607-entry state, is hoisted out of
	// the per-lane loop into two xrand.SeedMany passes (masters, then all
	// derived streams of all lanes).  Seeding a source has no side effect
	// on any other stream, so only the draw order matters for parity, and
	// that is preserved exactly.
	n := len(seeds)
	b.masterSrc, b.masters = growRNGs(b.masterSrc, b.masters, n)
	b.streamSrc, b.streamRng = growRNGs(b.streamSrc, b.streamRng, n*rngStreams)
	xrand.SeedMany(b.masterSrc[:n], seeds)
	srcs := b.seedSrcScratch[:0]
	vals := b.seedValScratch[:0]
	for i := range seeds {
		m := b.masters[i]
		base := i * rngStreams
		k := rngStreams - 1
		if cfg.SensorDisturb != nil {
			k = rngStreams
		}
		for j := 0; j < k; j++ {
			srcs = append(srcs, b.streamSrc[base+j])
			vals = append(vals, m.Int63())
		}
	}
	xrand.SeedMany(srcs, vals)
	b.seedSrcScratch, b.seedValScratch = srcs[:0], vals[:0]

	for i := range seeds {
		base := i * rngStreams
		master := b.masters[i]
		driverRng := b.streamRng[base]
		chanRng := b.streamRng[base+1]
		sensRng := b.streamRng[base+2]
		initRng := b.streamRng[base+3]
		b.dropRngs[i] = b.streamRng[base+4]
		if cfg.SensorDisturb != nil {
			b.sensProcs[i] = cfg.SensorDisturb.NewSensor(b.streamRng[base+5])
		} else {
			b.sensProcs[i] = nil
		}
		gs, err := sim.NewGuardedStep(cfg.Guard, cfg.PlannerFault, cfg.Scenario.Ego, master)
		if err != nil {
			return nil, err
		}
		b.guards[i] = gs

		if b.drivers[i], err = sh.Driver(cfg.Driver, driverRng); err != nil {
			return nil, err
		}
		if b.channels[i], err = sh.Channel(cfg.Comms, chanRng); err != nil {
			return nil, err
		}
		if b.sensors[i], err = sh.Sensor(cfg.Sensor, sensRng); err != nil {
			return nil, err
		}
		if b.filters[i], err = sh.Fusion(fusion.Config{
			Limits:    cfg.Scenario.Oncoming,
			Sensor:    cfg.Sensor,
			UseKalman: cfg.InfoFilter,
			Replay:    cfg.InfoFilter && !cfg.NoReplay,
		}); err != nil {
			return nil, err
		}

		ego, onc := sc.EgoInit, sc.OncomingInit
		if cfg.OncomingStartSpread > 0 {
			onc.P -= initRng.Float64() * cfg.OncomingStartSpread
		}
		if cfg.OncomingSpeedMax > 0 {
			onc.V = cfg.OncomingSpeedMin + initRng.Float64()*(cfg.OncomingSpeedMax-cfg.OncomingSpeedMin)
		}
		b.egoP[i], b.egoV[i] = ego.P, ego.V
		b.oncP[i], b.oncV[i] = onc.P, onc.V
		b.oncA[i] = 0

		// Handshake broadcast: initial oncoming state known exactly.
		b.filters[i].InitExact(0, onc, 0)
	}

	// One shared ticker pair for the whole batch; the scalar engine's
	// per-episode tickers are pure functions of the same time grid.
	b.msgTick = comms.MakeTicker(cfg.DtM)
	b.msgTick.Due(0) // initial broadcast consumed by InitExact
	b.sensTick = comms.MakeTicker(cfg.DtS)
	b.sensTick.Due(0)

	b.msgBuf = sh.MsgBuf()

	if b.plan == nil {
		// Built once per pooled engine; the closures read b.cur (and the
		// staged b.know) at call time, so one set serves every lane with
		// zero per-step allocation.
		b.plan = func() (float64, bool) {
			l := b.cur
			return b.agent.Accel(b.t, dynamics.State{P: b.egoP[l], V: b.egoV[l]}, b.know)
		}
		b.emergF = func() float64 {
			l := b.cur
			return b.sc.EmergencyAccel(dynamics.State{P: b.egoP[l], V: b.egoV[l]})
		}
		b.envF = func() (float64, float64, bool) {
			l := b.cur
			ego := dynamics.State{P: b.egoP[l], V: b.egoV[l]}
			return b.mon.Assess(ego, b.sc.ConservativeWindow(b.know.Sound)).Envelope(b.sc.Ego)
		}
	}
	return b, nil
}

// reset clears per-batch state and sizes every lane- and slot-indexed slice
// for n lanes, keeping the reusable closures and slice capacity.
func (b *BatchStepper) reset(cfg sim.Config, agent core.Agent, n int, opts sim.Options) {
	b.cfg = cfg
	b.agent = agent
	b.opts = opts
	b.step = 0
	b.t = 0
	b.done = false
	b.finished = false
	b.n = n

	b.egoP, b.egoV = grow(b.egoP, n), grow(b.egoV, n)
	b.oncP, b.oncV, b.oncA = grow(b.oncP, n), grow(b.oncV, n), grow(b.oncA, n)
	b.drivers = grow(b.drivers, n)
	b.channels = grow(b.channels, n)
	b.sensors = grow(b.sensors, n)
	b.filters = grow(b.filters, n)
	b.sensProcs = grow(b.sensProcs, n)
	b.dropRngs = grow(b.dropRngs, n)
	b.guards = grow(b.guards, n)
	b.lastMeas = grow(b.lastMeas, n)
	b.haveMeas = grow(b.haveMeas, n)
	b.fusedSet = grow(b.fusedSet, n)
	b.soundSet = grow(b.soundSet, n)
	b.truth = grow(b.truth, n)
	b.inFused = grow(b.inFused, n)
	b.inSound = grow(b.inSound, n)
	b.failed = grow(b.failed, n)
	b.slot = grow(b.slot, n)
	b.res = grow(b.res, n)
	b.errs = grow(b.errs, n)
	for i := 0; i < n; i++ {
		b.haveMeas[i] = false
		b.failed[i] = false
		b.slot[i] = i
		b.res[i] = sim.Result{}
		b.errs[i] = nil
	}
}

// Size returns the batch width (number of seeds / result slots).
func (b *BatchStepper) Size() int { return len(b.seeds) }

// Live returns the number of lanes still running.
func (b *BatchStepper) Live() int { return b.n }

// Done reports whether every lane has terminated.
func (b *BatchStepper) Done() bool { return b.done }

// Step advances every live lane by one control step.  The stateful
// component work runs lane-major — each lane's channel, filter, sensor,
// guard, and driver are touched together, while cache-hot — and the
// containment audits run afterward as whole-slice kernel passes over the
// SoA interval sets (sound because they draw no randomness and only
// increment counters; see the package comment).  Lanes that terminate
// (collision, target, horizon, or an invariant violation) are finalized
// and compacted out.  Step never fails as a whole — per-lane errors
// surface from Finish — and is a no-op once all lanes are done.
func (b *BatchStepper) Step() {
	if b.done {
		return
	}
	if b.step >= b.maxSteps {
		// Horizon exhausted before this step: every remaining lane times
		// out (neither target nor violation — η = 0), as in the scalar
		// engine's top-of-step check.
		b.finishAll()
		return
	}
	step := b.step
	t := float64(step) * b.dt
	b.t = t
	cfg := &b.cfg
	sc := b.sc
	n := b.n

	// The shared tickers and the scripted adversary accel advance once for
	// the whole batch.
	msgAt, msgDue := b.msgTick.Due(t)
	sensAt, sensDue := b.sensTick.Due(t)
	scripted := len(cfg.OncomingScript) > 0
	var scriptA float64
	if scripted {
		scriptA = sim.ScriptAccel(cfg.OncomingScript, step)
	}

	// Length-capped local views of every lane-indexed slice: with the loop
	// bound and each len tied to n, the compiler drops the per-access
	// bounds checks, which otherwise cost a few percent of the whole step
	// (the lane loop makes ~25 indexed accesses per lane).
	egoP, egoV := b.egoP[:n], b.egoV[:n]
	oncP, oncV, oncA := b.oncP[:n], b.oncV[:n], b.oncA[:n]
	channels, filters, sensors := b.channels[:n], b.filters[:n], b.sensors[:n]
	drivers, dropRngs, sensProcs := b.drivers[:n], b.dropRngs[:n], b.sensProcs[:n]
	guards, slot := b.guards[:n], b.slot[:n]
	fusedSet, soundSet, truth := b.fusedSet[:n], b.soundSet[:n], b.truth[:n]

	// Lane-major pass: phases 1–5 of the scalar step for one lane at a
	// time.  The per-lane operation order is exactly the scalar engine's,
	// so every RNG stream observes its scalar draw sequence.
	for l := 0; l < n; l++ {
		res := &b.res[slot[l]]

		// 1+2. Periodic V2V broadcast, then channel delivery.
		if msgDue {
			channels[l].Send(comms.Message{Sender: 1, T: msgAt, P: oncP[l], V: oncV[l], A: oncA[l]})
		}
		b.msgBuf = channels[l].PollAppend(t, b.msgBuf[:0])
		for _, m := range b.msgBuf {
			filters[l].OnMessage(m)
		}

		// 3. Periodic onboard sensing (dropout + disturbance).
		if sensDue {
			drop := cfg.SensorDropProb > 0 && dropRngs[l].Float64() < cfg.SensorDropProb
			var bias float64
			if sensProcs[l] != nil {
				d := sensProcs[l].Next(sensAt)
				drop = drop || d.Drop
				bias = d.Bias
			}
			if !drop {
				b.lastMeas[l] = sensors[l].MeasureBiased(1, sensAt, dynamics.State{P: oncP[l], V: oncV[l]}, oncA[l], bias)
				b.haveMeas[l] = true
				filters[l].OnReading(b.lastMeas[l])
			}
		}

		// 4a. Fuse; stage the audit operands in the SoA arrays for the
		// whole-slice kernel pass below.
		est := filters[l].EstimateAt(t)
		fusedSet[l] = reach.Set{P: est.P, V: est.V}
		soundSet[l] = reach.Set{P: est.SoundP, V: est.SoundV}
		truth[l] = dynamics.State{P: oncP[l], V: oncV[l]}
		b.know = core.Knowledge{
			Sound: leftturn.OncomingEstimate{
				P: est.SoundP, V: est.SoundV,
				PointP: est.PointP, PointV: est.PointV,
				A: est.A,
			},
			Fused: leftturn.OncomingEstimate{
				P: est.P, V: est.V,
				PointP: est.PointP, PointV: est.PointV,
				A: est.A,
			},
		}

		// 4b. Plan, through the guard when configured.  The command and
		// guard verdict live in locals: every consumer (telemetry,
		// invariants, trace, world advance) runs inside this iteration.
		b.cur = l
		var a0 float64
		var emergency bool
		var gres guard.StepResult
		if guards[l] != nil {
			a0, emergency, gres = guards[l].Step(t, b.plan, b.emergF, b.envF)
		} else {
			a0, emergency = b.plan()
		}

		// 4c. Telemetry, emergency accounting, invariants, trace.
		if b.coll != nil {
			b.coll.OnStep(telemetry.StepProbe{
				T:          t,
				Emergency:  emergency,
				SoundWidth: est.SoundP.Width(),
				FusedWidth: est.P.Width(),
				ConsWidth:  sc.ConservativeWindow(b.know.Fused).Width(),
				AggrWidth:  sc.AggressiveWindow(b.know.Fused).Width(),
				// PlannerNs stays 0: the batch hot path performs no
				// wall-clock reads (see the package comment).
			})
			if guards[l] != nil {
				guards[l].Report(b.coll, t, gres)
			}
		}
		if emergency {
			res.EmergencySteps++
		}
		if len(b.opts.Invariants) > 0 {
			si := sim.StepInfo{
				T:   t,
				Ego: dynamics.State{P: egoP[l], V: egoV[l]}, Other: truth[l], OtherA: oncA[l],
				Est: est, Accel: a0, Emergency: emergency,
			}
			if guards[l] != nil {
				guards[l].Annotate(&si, gres)
			}
			if ierr := sim.CheckStepInvariants(b.opts.Invariants, si); ierr != nil {
				// The lane aborts exactly where the scalar engine would:
				// before its trace row and before the world advances.
				b.errs[slot[l]] = ierr
				b.failed[l] = true
				continue
			}
		}
		if b.opts.Trace {
			b.appendTrace(l, t, est, a0, emergency)
		}

		// 5. Advance the world (only lanes that survived invariants).
		behavA := scriptA
		if !scripted {
			behavA = drivers[l].Accel(t, dynamics.State{P: oncP[l], V: oncV[l]})
		}
		ego, _ := dynamics.Step(dynamics.State{P: egoP[l], V: egoV[l]}, a0, b.dt, sc.Ego)
		onc, oncANext := dynamics.Step(dynamics.State{P: oncP[l], V: oncV[l]}, behavA, b.dt, sc.Oncoming)
		egoP[l], egoV[l] = ego.P, ego.V
		oncP[l], oncV[l], oncA[l] = onc.P, onc.V, oncANext
		res.Steps++
	}

	// Audit containment with the batched reach kernels over the staged SoA
	// interval sets.  Counter-only: failed lanes are audited too, exactly
	// as the scalar engine audits before its invariant abort.
	inFused, inSound := b.inFused[:n], b.inSound[:n]
	reach.ContainsSlices(inFused, fusedSet, truth)
	reach.ContainsSlices(inSound, soundSet, truth)
	for l := 0; l < n; l++ {
		if inFused[l] && inSound[l] {
			continue
		}
		res := &b.res[slot[l]]
		if !inFused[l] {
			res.FusedIntervalMisses++
		}
		if !inSound[l] {
			res.SoundViolations++
		}
	}
	b.step++

	// 6. Outcome checks and compaction.  Walking lanes high to low makes
	// swap-remove safe: the tail lane swapped into a freed position was
	// already handled this step.
	timeout := b.step >= b.maxSteps
	for l := b.n - 1; l >= 0; l-- {
		res := &b.res[b.slot[l]]
		ego := dynamics.State{P: b.egoP[l], V: b.egoV[l]}
		onc := dynamics.State{P: b.oncP[l], V: b.oncV[l]}
		switch {
		case b.failed[l]:
			b.removeLane(l)
		case sc.Collision(ego, onc):
			res.Collided = true
			res.Eta = -1
			b.removeLane(l)
		case sc.ReachedTarget(ego):
			res.Reached = true
			res.ReachTime = t + b.dt
			res.Eta = 1 / res.ReachTime
			b.removeLane(l)
		case timeout:
			b.removeLane(l)
		}
	}
	if b.n == 0 {
		b.done = true
	}
}

// appendTrace records the scalar engine's per-step trace row for lane l.
// It runs inside the lane-major pass, so b.know is lane l's staged
// knowledge and est is its fused estimate for this step.
func (b *BatchStepper) appendTrace(l int, t float64, est fusion.Estimate, a0 float64, emergency bool) {
	sc := b.sc
	cons := sc.ConservativeWindow(b.know.Fused)
	aggr := sc.AggressiveWindow(b.know.Fused)
	soundW := sc.ConservativeWindow(b.know.Sound)
	s := sim.Sample{
		T:    t,
		EgoP: b.egoP[l], EgoV: b.egoV[l], EgoA: a0,
		OncP: b.oncP[l], OncV: b.oncV[l], OncA: b.oncA[l],
		MeasP: math.NaN(), MeasV: math.NaN(),
		EstP: est.PointP, EstV: est.PointV,
		EstPLo: est.P.Lo, EstPHi: est.P.Hi,
		EstVLo: est.V.Lo, EstVHi: est.V.Hi,
		ConsLo: cons.Lo, ConsHi: cons.Hi,
		AggrLo: aggr.Lo, AggrHi: aggr.Hi,
		SoundPLo: est.SoundP.Lo, SoundPHi: est.SoundP.Hi,
		SoundVLo: est.SoundV.Lo, SoundVHi: est.SoundV.Hi,
		SoundLo: soundW.Lo, SoundHi: soundW.Hi,
		Emergency: emergency,
	}
	if b.haveMeas[l] {
		s.MeasP, s.MeasV = b.lastMeas[l].P, b.lastMeas[l].V
	}
	r := &b.res[b.slot[l]]
	r.Trace = append(r.Trace, s)
}

// finishAll finalizes every remaining lane (horizon timeout).
func (b *BatchStepper) finishAll() {
	for l := b.n - 1; l >= 0; l-- {
		b.removeLane(l)
	}
	b.done = true
}

// removeLane finalizes lane l's episode — the scalar Finish bookkeeping, in
// the same order — and swap-removes the lane from every parallel slice.
func (b *BatchStepper) removeLane(l int) {
	s := b.slot[l]
	sim.ReportOutcome(b.coll, b.seeds[s], &b.res[s])
	if b.guards[l] != nil {
		b.res[s].Guard = b.guards[l].Stats()
	}
	if b.errs[s] == nil && len(b.opts.Invariants) > 0 {
		b.errs[s] = sim.CheckEpisodeInvariants(b.opts.Invariants, &b.res[s])
	}

	last := b.n - 1
	if l != last {
		b.egoP[l], b.egoV[l] = b.egoP[last], b.egoV[last]
		b.oncP[l], b.oncV[l], b.oncA[l] = b.oncP[last], b.oncV[last], b.oncA[last]
		b.drivers[l] = b.drivers[last]
		b.channels[l] = b.channels[last]
		b.sensors[l] = b.sensors[last]
		b.filters[l] = b.filters[last]
		b.sensProcs[l] = b.sensProcs[last]
		b.dropRngs[l] = b.dropRngs[last]
		b.guards[l] = b.guards[last]
		b.lastMeas[l] = b.lastMeas[last]
		b.haveMeas[l] = b.haveMeas[last]
		b.fusedSet[l] = b.fusedSet[last]
		b.soundSet[l] = b.soundSet[last]
		b.truth[l] = b.truth[last]
		b.failed[l] = b.failed[last]
		b.slot[l] = b.slot[last]
	}
	b.n = last
}

// Finish returns the per-episode results in seed order and the first error
// in seed order, if any — the deterministic pick matching what a scalar
// sweep over the same seeds would hit first.  Lanes still live (an
// abandoned batch) are finalized with their partial results.  Finish is
// idempotent; the returned slice stays valid until the next New on the
// same scratch arena.
func (b *BatchStepper) Finish() ([]sim.Result, error) {
	if !b.finished {
		if !b.done {
			b.finishAll()
		}
		b.finished = true
	}
	for s, err := range b.errs {
		if err != nil {
			return b.res, &LaneError{Slot: s, Seed: b.seeds[s], Err: err}
		}
	}
	return b.res, nil
}

// Run steps a batch of episodes to completion: one lane per seed, results
// in seed order.  Each lane is byte-identical to sim.Run with the same
// seed and options; opts.Seed is ignored (seeds come from the slice).  On
// error the returned *LaneError names the failing slot and seed.
func Run(cfg sim.Config, agent core.Agent, seeds []int64, opts sim.Options) ([]sim.Result, error) {
	b, err := New(cfg, agent, seeds, opts)
	if err != nil {
		return nil, err
	}
	for !b.Done() {
		b.Step()
	}
	return b.Finish()
}
