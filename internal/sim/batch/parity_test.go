package batch_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"safeplan/internal/campaign"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/faultinject"
	"safeplan/internal/planner"
	"safeplan/internal/sim"
	"safeplan/internal/sim/batch"
)

// The differential parity suite: the batched lockstep engine must be
// indistinguishable from the scalar engine — byte-identical per-episode
// Results at every batch size, and bit-identical campaign Stats at every
// (workers × batch size) combination.  Batch sizes cover the degenerate
// lane (1), sizes that do not divide the episode count (3, 17 — a prime),
// the alloc-gate size (8), and one wider than most shards (64), so chunk
// remainders and heavy compaction are all exercised.

var batchSizes = []int{1, 3, 8, 17, 64}

const parityEpisodes = 40

func ultimate(cfg sim.Config) core.Agent {
	return core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
}

func aggressiveUltimate(cfg sim.Config) core.Agent {
	return core.NewUltimate(cfg.Scenario, planner.AggressiveExpert(cfg.Scenario))
}

type parityCase struct {
	name  string
	cfg   sim.Config
	agent core.Agent
}

// parityCases spans the configuration axes that thread state differently:
// the bare default, the paper's delayed channel with the information
// filter, the harshest disturbance presets, sensor dropout with a scripted
// adversary, and planner-fault injection under the guard.
func parityCases(t *testing.T) []parityCase {
	t.Helper()
	base := sim.DefaultConfig()

	delayed := sim.DefaultConfig()
	delayed.Comms = comms.Delayed(0.25, 0.5)
	delayed.InfoFilter = true

	m, err := disturb.Preset("worst")
	if err != nil {
		t.Fatal(err)
	}
	sm, err := disturb.SensorPreset("worst")
	if err != nil {
		t.Fatal(err)
	}
	worst := sim.DefaultConfig()
	worst.Comms = comms.Disturbed(m)
	worst.SensorDisturb = sm
	worst.InfoFilter = true

	dropScript := sim.DefaultConfig()
	dropScript.SensorDropProb = 0.35
	dropScript.OncomingScript = []float64{2, 2, -3, 1.5, -1, 0, 2, -2.5, 0.5, -0.5}

	fault := sim.DefaultConfig()
	fault.Comms = comms.Delayed(0.25, 0.5)
	fault.InfoFilter = true
	fault.PlannerFault = faultinject.PanicP{P: 0.3}

	return []parityCase{
		{"default", base, ultimate(base)},
		{"delayed-filter", delayed, ultimate(delayed)},
		{"disturbed-worst", worst, aggressiveUltimate(worst)},
		{"dropout-script", dropScript, ultimate(dropScript)},
		{"guard-fault", fault, ultimate(fault)},
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// scalarResults runs the seed range through the scalar engine with a
// reused arena (the campaign execution mode) and returns each Result's
// JSON encoding.
func scalarResults(t *testing.T, cfg sim.Config, agent core.Agent, seeds []int64) []string {
	t.Helper()
	sh := sim.NewScratch()
	out := make([]string, len(seeds))
	for i, seed := range seeds {
		r, err := sim.Run(cfg, agent, sim.Options{Seed: seed, Scratch: sh})
		if err != nil {
			t.Fatalf("scalar seed %d: %v", seed, err)
		}
		out[i] = mustJSON(t, r)
	}
	return out
}

func TestBatchScalarParity(t *testing.T) {
	for _, tc := range parityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			seeds := make([]int64, parityEpisodes)
			for i := range seeds {
				seeds[i] = int64(i)
			}
			want := scalarResults(t, tc.cfg, tc.agent, seeds)

			for _, size := range batchSizes {
				sh := sim.NewScratch()
				distinctSteps := map[int]bool{}
				for lo := 0; lo < len(seeds); lo += size {
					hi := min(lo+size, len(seeds))
					rs, err := batch.Run(tc.cfg, tc.agent, seeds[lo:hi], sim.Options{Scratch: sh})
					if err != nil {
						t.Fatalf("batch size %d chunk [%d,%d): %v", size, lo, hi, err)
					}
					for j := range rs {
						distinctSteps[rs[j].Steps] = true
						if got := mustJSON(t, rs[j]); got != want[lo+j] {
							t.Fatalf("batch size %d seed %d diverged\nscalar: %s\nbatch:  %s",
								size, seeds[lo+j], want[lo+j], got)
						}
					}
				}
				// Episodes terminate at different steps, so any batch wider
				// than one lane must have exercised mid-run compaction.
				if size >= 8 && len(distinctSteps) < 2 {
					t.Fatalf("batch size %d: all %d episodes terminated after the same step; compaction untested", size, len(seeds))
				}
			}

			// The nil-scratch path (no arena, no pooled engine) must agree too.
			rs, err := batch.Run(tc.cfg, tc.agent, seeds[:8], sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for j := range rs {
				if got := mustJSON(t, rs[j]); got != want[j] {
					t.Fatalf("nil-scratch batch seed %d diverged", seeds[j])
				}
			}
		})
	}
}

// TestBatchTraceParity covers the Trace path: per-step samples recorded in
// batch mode must match the scalar rows exactly, including the measurement
// columns fed by the per-lane sensor state.
func TestBatchTraceParity(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	cfg.SensorDropProb = 0.2
	agent := ultimate(cfg)
	seeds := []int64{11, 12, 13, 14, 15}

	// Trace rows carry NaN sentinels (no measurement yet), so compare via
	// %+v formatting instead of JSON; it prints every field including NaN.
	want := make([]string, len(seeds))
	for i, seed := range seeds {
		r, err := sim.Run(cfg, agent, sim.Options{Seed: seed, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprintf("%+v", r)
	}
	rs, err := batch.Run(cfg, agent, seeds, sim.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if got := fmt.Sprintf("%+v", rs[i]); got != want[i] {
			t.Fatalf("trace parity: seed %d diverged\nscalar: %s\nbatch:  %s", seeds[i], want[i], got)
		}
	}
}

// TestBatchCampaignStatsParity is the aggregate half of the differential
// harness: campaign Stats must be bit-identical between the scalar runner
// and the batched runner at every (workers × batch size) combination —
// positional seeding plus the ordered shard fold make batching and
// scheduling both invisible.
func TestBatchCampaignStatsParity(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := ultimate(cfg)
	invs := []sim.Invariant{
		sim.NoCollision{},
		sim.SoundEstimate{},
		sim.EmergencyOneStep{Cfg: cfg.Scenario},
		sim.NewMonitorConsistency(cfg.Scenario),
	}
	spec := campaign.Spec{
		Name: "batch-parity", Episodes: 64, BaseSeed: 7,
		Workers: 1, Invariants: invs,
	}

	baseline, err := campaign.Run(spec, campaign.LeftTurn(cfg, agent))
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, baseline.Stats)

	for _, workers := range []int{1, 4} {
		for _, size := range batchSizes {
			s := spec
			s.Workers = workers
			s.BatchSize = size
			rep, err := campaign.RunBatch(s, campaign.LeftTurnBatch(cfg, agent))
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, size, err)
			}
			if got := mustJSON(t, rep.Stats); got != want {
				t.Errorf("workers=%d batch=%d: Stats diverged from scalar baseline\nscalar: %s\nbatch:  %s",
					workers, size, want, got)
			}
		}
	}
}

// failAfter is a step invariant violated once T exceeds the threshold —
// a deterministic mid-episode failure for the lane-error contract.
type failAfter struct{ at float64 }

func (f failAfter) Name() string { return "fail-after" }
func (f failAfter) CheckStep(s sim.StepInfo) error {
	if s.T > f.at {
		return errors.New("fail-after tripped")
	}
	return nil
}
func (f failAfter) CheckEpisode(*sim.Result) error { return nil }

// TestBatchLaneError: a failing lane aborts exactly where the scalar
// engine would, and Finish surfaces the first failure in seed order with
// its slot and seed attached.
func TestBatchLaneError(t *testing.T) {
	cfg := sim.DefaultConfig()
	agent := ultimate(cfg)
	seeds := []int64{100, 101, 102, 103}
	inv := []sim.Invariant{failAfter{at: 2.0}}

	_, scalarErr := sim.Run(cfg, agent, sim.Options{Seed: seeds[0], Invariants: inv})
	if scalarErr == nil {
		t.Fatal("scalar run unexpectedly passed the failing invariant")
	}

	_, err := batch.Run(cfg, agent, seeds, sim.Options{Invariants: inv})
	var le *batch.LaneError
	if !errors.As(err, &le) {
		t.Fatalf("batch error %v is not a LaneError", err)
	}
	if le.Slot != 0 || le.Seed != seeds[0] {
		t.Fatalf("first failure attributed to slot %d seed %d; want slot 0 seed %d", le.Slot, le.Seed, seeds[0])
	}
	if le.Err.Error() != scalarErr.Error() {
		t.Fatalf("lane error %q differs from scalar %q", le.Err, scalarErr)
	}
}

// episodeBudget aborts the campaign after a fixed number of finished
// episodes — a deterministic mid-campaign interruption for the checkpoint
// test.  Single-worker use only (the counter is unsynchronized).
type episodeBudget struct {
	n     *int64
	limit int64
}

func (f episodeBudget) Name() string                 { return "episode-budget" }
func (f episodeBudget) CheckStep(sim.StepInfo) error { return nil }
func (f episodeBudget) CheckEpisode(*sim.Result) error {
	*f.n++
	if *f.n > f.limit {
		return errors.New("episode budget exhausted")
	}
	return nil
}

// TestBatchCheckpointInterop: a checkpoint written by the scalar runner
// resumes under the batched runner (the fingerprint excludes BatchSize)
// and completes to the identical Stats.
func TestBatchCheckpointInterop(t *testing.T) {
	cfg := sim.DefaultConfig()
	agent := ultimate(cfg)
	full := campaign.Spec{Name: "ckpt-interop", Episodes: 48, BaseSeed: 3, Workers: 2}

	baseline, err := campaign.Run(full, campaign.LeftTurn(cfg, agent))
	if err != nil {
		t.Fatal(err)
	}

	// First pass: scalar, single worker, interrupted after 30 episodes so
	// only a prefix of shards reaches the checkpoint.
	path := t.TempDir() + "/ckpt.json"
	partial := full
	partial.CheckpointPath = path
	partial.Workers = 1
	var ran int64
	partial.Invariants = []sim.Invariant{episodeBudget{n: &ran, limit: 30}}
	if _, err := campaign.Run(partial, campaign.LeftTurn(cfg, agent)); err == nil {
		t.Fatal("interrupted pass unexpectedly ran to completion")
	}

	resumed := full
	resumed.CheckpointPath = path
	resumed.BatchSize = 8
	rep, err := campaign.RunBatch(resumed, campaign.LeftTurnBatch(cfg, agent))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Perf.ResumedShards == 0 {
		t.Fatal("batched resume re-ran every shard; checkpoint was not picked up")
	}
	if got, want := mustJSON(t, rep.Stats), mustJSON(t, baseline.Stats); got != want {
		t.Fatalf("batched resume diverged from scalar baseline\nscalar: %s\nbatch:  %s", want, got)
	}
}
