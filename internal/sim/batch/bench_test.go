package batch_test

import (
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/sim"
	"safeplan/internal/sim/batch"
)

// Width benchmarks for the lockstep engine under the heaviest steady-state
// stack (delayed comms + information filter), one op = one full batch.
// Compare against BenchmarkScalarPool (the same episodes through the
// scalar engine) to see what a width buys; cmd/bench -perf writes the
// canonical comparison to BENCH_perf.json.
func benchBatch(b *testing.B, width int) {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := ultimate(cfg)
	sh := sim.NewScratch()
	seeds := make([]int64, width)
	for i := range seeds {
		seeds[i] = 42 + int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batch.Run(cfg, agent, seeds, sim.Options{Scratch: sh}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatch1(b *testing.B)  { benchBatch(b, 1) }
func BenchmarkBatch8(b *testing.B)  { benchBatch(b, 8) }
func BenchmarkBatch64(b *testing.B) { benchBatch(b, 64) }

// BenchmarkScalarPool steps the same 8 episodes as BenchmarkBatch8
// through the scalar engine — the baseline the widths amortize against.
func BenchmarkScalarPool(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := ultimate(cfg)
	sh := sim.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := int64(42); s < 50; s++ {
			if _, err := sim.Run(cfg, agent, sim.Options{Seed: s, Scratch: sh}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
