package batch_test

import (
	"fmt"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/faultinject"
	"safeplan/internal/planner"
	"safeplan/internal/sim"
	"safeplan/internal/sim/batch"
)

// fuzzReader decodes a fuzz byte stream into bounded parameters, so every
// decoded configuration passes Validate by construction and the fuzzer
// spends its budget on behaviour (the same pattern as the sim package's
// safety fuzzers).
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

func (r *fuzzReader) unit() float64 { return float64(r.next()) / 255 }

func (r *fuzzReader) rng(lo, hi float64) float64 { return lo + r.unit()*(hi-lo) }

// decodeConfig mutates the default configuration along every axis the
// batch engine threads differently: channel and sensor disturbance, the
// information filter and its replay ablation, sensor dropout, message and
// sensing periods, a scripted adversary, and planner-fault injection.
func decodeConfig(r *fuzzReader) sim.Config {
	cfg := sim.DefaultConfig()
	switch r.next() % 3 {
	case 1:
		cfg.Comms = comms.Disturbed(disturb.IID{DropProb: r.unit(), Delay: r.rng(0, 0.4)})
	case 2:
		cfg.Comms = comms.Disturbed(disturb.GilbertElliott{
			PGoodBad: r.unit(),
			PBadGood: r.rng(0.02, 1),
			DropGood: r.rng(0, 0.3),
			DropBad:  r.unit(),
			Delay:    r.rng(0, 0.3),
			StartBad: r.next()%2 == 0,
		})
	}
	switch r.next() % 3 {
	case 1:
		cfg.SensorDisturb = disturb.BiasDrift{Rate: r.unit(), Max: r.unit()}
	case 2:
		cfg.SensorDisturb = disturb.SensorDropout{
			PGoodBad: r.rng(0, 0.3),
			PBadGood: r.rng(0.05, 1),
			DropBad:  r.unit(),
		}
	}
	cfg.InfoFilter = r.next()%2 == 0
	cfg.NoReplay = r.next()%2 == 0
	cfg.SensorDropProb = r.rng(0, 0.5)
	periods := []float64{0.05, 0.1, 0.2}
	cfg.DtM = periods[int(r.next())%len(periods)]
	cfg.DtS = periods[int(r.next())%len(periods)]
	// Short horizons keep each execution fast; termination variety (reach
	// vs timeout) still occurs, exercising compaction.
	cfg.Horizon = r.rng(2, 8)
	switch r.next() % 3 {
	case 1:
		cfg.PlannerFault = faultinject.NaNOutput{P: r.rng(0, 0.5)}
	case 2:
		cfg.PlannerFault = faultinject.PanicP{P: r.rng(0, 0.5)}
	}
	if n := int(r.next()) % 12; n > 0 {
		lim := cfg.Scenario.Oncoming
		script := make([]float64, n)
		for i := range script {
			script[i] = r.rng(lim.AMin, lim.AMax)
		}
		cfg.OncomingScript = script
	}
	return cfg
}

// FuzzBatchParity decodes arbitrary bytes into a valid configuration, a
// batch size, and an episode count, and asserts the differential property
// behind the batched engine: every lane's Result equals the scalar
// engine's Result for the same seed, byte for byte, for any batch shape.
func FuzzBatchParity(f *testing.F) {
	// Seed corpus: perfect channel; delayed+filter; bursty channel with
	// sensor dropout; fault injection; wide batch over a scripted
	// adversary.  Mirrored in testdata/fuzz/FuzzBatchParity.
	f.Add([]byte{}, int64(1))
	f.Add([]byte{1, 127, 127, 0, 0, 1, 80, 1, 1, 3, 0, 5}, int64(42))
	f.Add([]byte{2, 30, 40, 10, 200, 50, 1, 2, 60, 100, 80, 0, 2, 120, 2, 200, 7, 90, 60, 30}, int64(7))
	f.Add([]byte{0, 0, 1, 0, 60, 0, 0, 140, 1, 100, 6, 5}, int64(99))
	f.Add([]byte{1, 200, 20, 1, 50, 200, 0, 1, 1, 2, 180, 2, 80, 11, 250, 10, 20, 250, 30, 250, 60, 120, 90, 200, 10, 16}, int64(3))

	sc := sim.DefaultConfig().Scenario
	agents := []core.Agent{
		core.NewUltimate(sc, planner.ConservativeExpert(sc)),
		core.NewUltimate(sc, planner.AggressiveExpert(sc)),
	}
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		r := &fuzzReader{data: data}
		cfg := decodeConfig(r)
		agent := agents[int(r.next())%len(agents)]
		episodes := 1 + int(r.next())%6
		size := 1 + int(r.next())%8
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoder produced invalid config: %v", err)
		}

		seeds := make([]int64, episodes)
		want := make([]string, episodes)
		for i := range seeds {
			seeds[i] = seed + int64(i)
			res, err := sim.Run(cfg, agent, sim.Options{Seed: seeds[i]})
			if err != nil {
				t.Fatalf("scalar seed %d: %v", seeds[i], err)
			}
			want[i] = fmt.Sprintf("%+v", res)
		}
		for lo := 0; lo < episodes; lo += size {
			hi := min(lo+size, episodes)
			rs, err := batch.Run(cfg, agent, seeds[lo:hi], sim.Options{})
			if err != nil {
				t.Fatalf("batch chunk [%d,%d): %v", lo, hi, err)
			}
			for j := range rs {
				if got := fmt.Sprintf("%+v", rs[j]); got != want[lo+j] {
					t.Fatalf("seed %d diverged at batch size %d under %+v\nscalar: %s\nbatch:  %s",
						seeds[lo+j], size, cfg.Comms, want[lo+j], got)
				}
			}
		}
	})
}
