package batch_test

import (
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/sim"
	"safeplan/internal/sim/batch"
)

// The batch allocation gate: with a warmed arena, stepping a batch must
// amortize to strictly less than one allocation per episode — the scalar
// engine's bar — at batch width 8.  The engine itself is pooled in the
// arena's ExtEngine slot and every lane- and slot-indexed slice is reused,
// so the steady state is a handful of allocations per *batch* at most
// (runtime noise included), not per episode.
const batchAllocWidth = 8

func TestBatchEpisodeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is not meaningful with -short")
	}
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := ultimate(cfg)
	sh := sim.NewScratch()
	seeds := make([]int64, batchAllocWidth)

	run := func(base int64) {
		for i := range seeds {
			seeds[i] = base + int64(i)
		}
		if _, err := batch.Run(cfg, agent, seeds, sim.Options{Scratch: sh}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the arena: the first batch grows every pool and lane slice.
	run(1)
	base := int64(100)
	avg := testing.AllocsPerRun(10, func() {
		base += batchAllocWidth
		run(base)
	})
	perEpisode := avg / batchAllocWidth
	if perEpisode >= 1 {
		t.Errorf("batched episode amortizes to %.2f allocs (%.1f per batch of %d); must stay below the scalar 1 alloc/episode bar",
			perEpisode, avg, batchAllocWidth)
	}
}
