package sim

// Failure-injection tests: the safety guarantee must survive a flaky
// perception stack (dropped sensor readings), communication blackouts,
// and their combination — the situations the paper's title promises to
// handle.

import (
	"math/rand"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
)

func TestSensorDropProbValidated(t *testing.T) {
	cfg := baseConfig()
	cfg.SensorDropProb = 1.5
	if cfg.Validate() == nil {
		t.Fatal("sensor drop probability > 1 accepted")
	}
	cfg.SensorDropProb = -0.1
	if cfg.Validate() == nil {
		t.Fatal("negative sensor drop probability accepted")
	}
}

func TestOutageValidated(t *testing.T) {
	cfg := baseConfig()
	cfg.Comms.OutageDuration = -1
	if cfg.Validate() == nil {
		t.Fatal("negative outage duration accepted")
	}
}

func TestCommOutageDropsWindow(t *testing.T) {
	// Direct channel-level check: messages inside the blackout vanish.
	cfg := comms.Config{OutageStart: 1.0, OutageDuration: 2.0}
	ch, err := comms.NewChannel(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0.5, 1.0, 1.5, 2.9, 3.0, 3.5} {
		ch.Send(comms.Message{T: tm})
	}
	sent, dropped, _ := ch.Stats()
	if sent != 6 || dropped != 3 { // 1.0, 1.5, 2.9 are inside [1, 3)
		t.Fatalf("sent=%d dropped=%d, want 6/3", sent, dropped)
	}
}

func TestSafetyUnderFlakySensorsAndOutage(t *testing.T) {
	cfg := baseConfig()
	cfg.Comms = comms.Config{Delay: 0.25, DropProb: 0.5, OutageStart: 2, OutageDuration: 3}
	cfg.Sensor = sensor.Uniform(2)
	cfg.SensorDropProb = 0.5
	cfg.InfoFilter = true
	agent := core.NewUltimate(cfg.Scenario, planner.AggressiveExpert(cfg.Scenario))
	for seed := int64(0); seed < 60; seed++ {
		r, err := Run(cfg, agent, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Collided {
			t.Fatalf("seed %d: collision under failure injection", seed)
		}
		if r.SoundViolations != 0 {
			// The sound estimate must stay sound no matter how little
			// information arrives.
			t.Fatalf("seed %d: %d sound-estimate violations", seed, r.SoundViolations)
		}
		if r.FusedIntervalMisses != 0 {
			// Fused (KF-side) misses are expected sharpening error; log them.
			t.Logf("seed %d: %d fused-estimate misses (KF side)", seed, r.FusedIntervalMisses)
		}
	}
}

func TestTotalBlackoutStillSafeAndLive(t *testing.T) {
	// Absolutely no information after t=0: no messages, every sensor
	// reading dropped.  The ego must remain safe (the sound estimate decays
	// to the full reachable set, freezing it before the zone) — and once
	// the oncoming vehicle could only be past the zone, it must proceed.
	cfg := baseConfig()
	cfg.Comms = comms.Lost()
	cfg.SensorDropProb = 1
	cfg.InfoFilter = true
	cfg.Horizon = 60
	agent := core.NewUltimate(cfg.Scenario, planner.AggressiveExpert(cfg.Scenario))
	reached := 0
	for seed := int64(0); seed < 25; seed++ {
		r, err := Run(cfg, agent, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Collided {
			t.Fatalf("seed %d: collision under total blackout", seed)
		}
		if r.Reached {
			reached++
		}
	}
	// With zero information the conservative window only empties when the
	// oncoming vehicle must have cleared (its position lower bound passes
	// the back line: from the t=0 handshake, even the slowest admissible
	// behaviour is bounded below only by VMin=0 — so the window never
	// empties and the ego waits forever short of the zone.  Liveness under
	// total blackout therefore cannot be expected; safety is the claim.
	t.Logf("reached under total blackout: %d/25 (waiting forever is the sound behaviour)", reached)
}
