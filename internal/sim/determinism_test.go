package sim

import (
	"reflect"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/planner"
	"safeplan/internal/telemetry"
)

// disturbedConfig returns the harshest preset pairing — the config most
// likely to expose worker-order or collector-dependent randomness in the
// disturbance threading.
func disturbedConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	m, err := disturb.Preset("worst")
	if err != nil {
		t.Fatal(err)
	}
	sm, err := disturb.SensorPreset("worst")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Comms = comms.Disturbed(m)
	cfg.SensorDisturb = sm
	cfg.InfoFilter = true
	return cfg
}

const (
	detEpisodes = 64
	detSeed     = 5
)

// TestCampaignDeterministicAcrossWorkers: a campaign's results must be a
// pure function of (config, n, base seed) — the worker count only changes
// the execution order, never an episode's random streams or the order of
// the returned slice.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := disturbedConfig(t)
	run := func(workers int) []Result {
		agent := core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
		rs, err := RunCampaign(cfg, agent, detEpisodes, CampaignOptions{BaseSeed: detSeed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatal("campaign results differ between 1 and 8 workers")
	}
}

// TestMultiCampaignDeterministicAcrossWorkers is the multi-vehicle twin.
func TestMultiCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Config = disturbedConfig(t)
	cfg.Horizon = 45
	run := func(workers int) []Result {
		agent := core.NewMultiUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
		rs, err := RunMultiCampaign(cfg, agent, detEpisodes, CampaignOptions{BaseSeed: detSeed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatal("multi campaign results differ between 1 and 8 workers")
	}
}

// TestCampaignCollectorInvariance: attaching a telemetry collector must
// not perturb any episode (telemetry only observes; it never draws from
// the episode's random streams).
func TestCampaignCollectorInvariance(t *testing.T) {
	cfg := disturbedConfig(t)
	run := func(withCollector bool) []Result {
		agent := core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
		o := CampaignOptions{BaseSeed: detSeed}
		if withCollector {
			m := telemetry.NewMetrics()
			agent.SetCollector(m)
			o.Collector = m
		}
		rs, err := RunCampaign(cfg, agent, detEpisodes, o)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	if a, b := run(false), run(true); !reflect.DeepEqual(a, b) {
		t.Fatal("campaign results differ with a collector attached")
	}
}

// TestRunCampaignDeterministic pins campaign determinism: two campaigns
// over the same seeds must return identical results.
func TestRunCampaignDeterministic(t *testing.T) {
	cfg := disturbedConfig(t)
	agent := core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
	a, err := RunCampaign(cfg, agent, detEpisodes, CampaignOptions{BaseSeed: detSeed})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg, agent, detEpisodes, CampaignOptions{BaseSeed: detSeed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunCampaign not deterministic across identical invocations")
	}
}

// TestRunMultiCampaignDeterministic is the multi-vehicle twin.
func TestRunMultiCampaignDeterministic(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Config = disturbedConfig(t)
	cfg.Horizon = 45
	agent := core.NewMultiUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
	a, err := RunMultiCampaign(cfg, agent, detEpisodes, CampaignOptions{BaseSeed: detSeed})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiCampaign(cfg, agent, detEpisodes, CampaignOptions{BaseSeed: detSeed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunMultiCampaign not deterministic across identical invocations")
	}
}
