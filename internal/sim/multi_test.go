package sim

import (
	"testing"
	"testing/quick"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
)

func multiConfig() MultiConfig { return DefaultMultiConfig() }

func multiUltimate(cfg MultiConfig, aggressive bool) core.MultiAgent {
	var kn planner.Planner
	if aggressive {
		kn = planner.AggressiveExpert(cfg.Scenario)
	} else {
		kn = planner.ConservativeExpert(cfg.Scenario)
	}
	return core.NewMultiUltimate(cfg.Scenario, kn)
}

func TestMultiValidate(t *testing.T) {
	cfg := multiConfig()
	cfg.Vehicles = 0
	if cfg.Validate() == nil {
		t.Error("zero vehicles accepted")
	}
	cfg = multiConfig()
	cfg.SpacingDist = -1
	if cfg.Validate() == nil {
		t.Error("negative spacing accepted")
	}
	cfg = multiConfig()
	cfg.DtM = 0
	if cfg.Validate() == nil {
		t.Error("invalid base config accepted")
	}
}

// TestSpacingDistZeroSelectsDefault is the regression test for the
// documented zero-default: a zero SpacingDist must behave exactly like
// DefaultSpacingDist rather than stacking every oncoming vehicle at the
// same start position (modulo jitter), which is what the runner silently
// did before the fill was applied.
func TestSpacingDistZeroSelectsDefault(t *testing.T) {
	zero := multiConfig()
	zero.SpacingDist = 0
	explicit := multiConfig()
	explicit.SpacingDist = DefaultSpacingDist
	stacked := multiConfig()
	stacked.SpacingDist = 1e-9 // effectively stacked, but non-zero: no fill
	for seed := int64(0); seed < 10; seed++ {
		z, err := RunMulti(zero, multiUltimate(zero, false), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		e, err := RunMulti(explicit, multiUltimate(explicit, false), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if zs, es := mustJSON(t, z), mustJSON(t, e); zs != es {
			t.Fatalf("seed %d: zero spacing differs from DefaultSpacingDist\nzero:    %s\ndefault: %s", seed, zs, es)
		}
	}
	// The distinction must be observable: a genuinely tiny spacing yields a
	// different episode than the default fill on at least one seed.
	differs := false
	for seed := int64(0); seed < 10 && !differs; seed++ {
		z, err := RunMulti(zero, multiUltimate(zero, false), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s, err := RunMulti(stacked, multiUltimate(stacked, false), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		differs = mustJSON(t, z) != mustJSON(t, s)
	}
	if !differs {
		t.Fatal("near-zero spacing indistinguishable from the default fill — regression test inert")
	}
}

func TestRunMultiReachesSafely(t *testing.T) {
	cfg := multiConfig()
	cfg.InfoFilter = true
	r, err := RunMulti(cfg, multiUltimate(cfg, false), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Collided {
		t.Fatal("multi-vehicle episode collided")
	}
	if !r.Reached {
		t.Fatal("multi-vehicle episode timed out")
	}
	// With three oncoming vehicles the crossing takes longer than with one.
	single := DefaultConfig()
	single.InfoFilter = true
	sr, err := Run(single, core.NewUltimate(single.Scenario, planner.ConservativeExpert(single.Scenario)), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReachTime <= sr.ReachTime {
		t.Logf("note: multi reach %v vs single %v (seeds differ in stream layout)", r.ReachTime, sr.ReachTime)
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	cfg := multiConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	a, err := RunMulti(cfg, multiUltimate(cfg, true), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(cfg, multiUltimate(cfg, true), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.ReachTime != b.ReachTime || a.Steps != b.Steps {
		t.Fatal("RunMulti not deterministic")
	}
}

func TestRunMultiSingleVehicleMatchesShape(t *testing.T) {
	// A one-vehicle stream must behave like the single-vehicle engine in
	// aggregate (not bit-identical: the RNG draw order differs).
	cfg := multiConfig()
	cfg.Vehicles = 1
	cfg.InfoFilter = true
	agent := multiUltimate(cfg, false)
	safe := 0
	for seed := int64(0); seed < 30; seed++ {
		r, err := RunMulti(cfg, agent, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Collided {
			safe++
		}
	}
	if safe != 30 {
		t.Fatalf("one-vehicle stream unsafe: %d/30", safe)
	}
}

func TestRunMultiCampaignPairsSeeds(t *testing.T) {
	cfg := multiConfig()
	rs, err := RunMultiCampaign(cfg, multiUltimate(cfg, true), 6, CampaignOptions{BaseSeed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		single, err := RunMulti(cfg, multiUltimate(cfg, true), Options{Seed: 50 + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if r.ReachTime != single.ReachTime {
			t.Fatalf("episode %d differs from direct run", i)
		}
	}
	if _, err := RunMultiCampaign(cfg, multiUltimate(cfg, true), 0, CampaignOptions{}); err == nil {
		t.Fatal("zero episodes accepted")
	}
}

// Property: the multi-vehicle compound planner stays safe across random
// disturbance settings and stream sizes — the multi-vehicle version of the
// headline guarantee.
func TestQuickMultiEndToEndSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed int64) bool {
		u := seed
		if u < 0 {
			u = -u
		}
		cfg := multiConfig()
		cfg.Vehicles = 1 + int(u%4)
		switch u % 3 {
		case 1:
			cfg.Comms = comms.Delayed(0.25, float64(u%20)*0.05)
		case 2:
			cfg.Comms = comms.Lost()
			cfg.Sensor = sensor.Uniform(1 + float64(u%10)*0.3)
		}
		cfg.InfoFilter = u%2 == 0
		agent := multiUltimate(cfg, true)
		r, err := RunMulti(cfg, agent, Options{Seed: seed})
		if err != nil {
			return false
		}
		return !r.Collided
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
