package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
	"safeplan/internal/telemetry"
)

var update = flag.Bool("update", false, "re-bless the golden trace files")

// goldenRow is one step of a golden trace: the closed-loop state, the
// monitor's selection, and the chosen acceleration.  Floats marshal with
// Go's shortest-round-trip formatting, so the encoding is byte-exact and
// any behavioural drift — RNG stream reordering, filter changes, monitor
// retuning — shows up as a diff.
type goldenRow struct {
	T         float64 `json:"t"`
	EgoP      float64 `json:"ego_p"`
	EgoV      float64 `json:"ego_v"`
	EgoA      float64 `json:"ego_a"`
	OncP      float64 `json:"onc_p"`
	OncV      float64 `json:"onc_v"`
	Reason    string  `json:"reason"`
	Emergency bool    `json:"emergency"`
}

// reasonRecorder captures the per-step monitor selections in order.  The
// compound planner reports exactly one decision per control step, so the
// i-th reason aligns with the i-th trace sample.
type reasonRecorder struct {
	telemetry.Nop
	mu      sync.Mutex
	reasons []string
}

func (r *reasonRecorder) OnMonitorDecision(reason string) {
	r.mu.Lock()
	r.reasons = append(r.reasons, reason)
	r.mu.Unlock()
}

// goldenEpisodes are the three canonical paper settings plus the bursty
// Gilbert–Elliott disturbance preset, run with the ultimate compound
// planner (conservative κ_n) under a fixed seed.
func goldenEpisodes() []struct {
	Name string
	Cfg  Config
} {
	none := DefaultConfig()
	delayed := DefaultConfig()
	delayed.Comms = comms.Delayed(0.25, 0.5)
	lost := DefaultConfig()
	lost.Comms = comms.Lost()
	lost.Sensor = sensor.Uniform(2)
	burst := DefaultConfig()
	bm, err := disturb.Preset("burst")
	if err != nil {
		panic(err)
	}
	burst.Comms = comms.Disturbed(bm)
	for _, c := range []*Config{&none, &delayed, &lost, &burst} {
		c.InfoFilter = true
	}
	return []struct {
		Name string
		Cfg  Config
	}{
		{"none", none},
		{"delayed", delayed},
		{"lost", lost},
		{"burst", burst},
	}
}

const goldenSeed = 11

// goldenTrace runs one canonical episode and renders its golden rows.
func goldenTrace(t *testing.T, cfg Config) []byte {
	t.Helper()
	sc := cfg.Scenario
	agent := core.NewUltimate(sc, planner.ConservativeExpert(sc))
	rec := &reasonRecorder{}
	agent.SetCollector(rec)
	res, err := Run(cfg, agent, Options{Seed: goldenSeed, Trace: true, Collector: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.reasons) != len(res.Trace) {
		t.Fatalf("recorded %d monitor decisions for %d trace steps", len(rec.reasons), len(res.Trace))
	}
	rows := make([]goldenRow, len(res.Trace))
	for i, s := range res.Trace {
		rows[i] = goldenRow{
			T:    s.T,
			EgoP: s.EgoP, EgoV: s.EgoV, EgoA: s.EgoA,
			OncP: s.OncP, OncV: s.OncV,
			Reason:    rec.reasons[i],
			Emergency: s.Emergency,
		}
	}
	out, err := json.MarshalIndent(rows, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenTraces replays the canonical episodes and byte-compares them
// against the blessed traces in testdata/.  Run with -update to re-bless
// after an intentional behaviour change.
func TestGoldenTraces(t *testing.T) {
	for _, ep := range goldenEpisodes() {
		ep := ep
		t.Run(ep.Name, func(t *testing.T) {
			got := goldenTrace(t, ep.Cfg)
			path := filepath.Join("testdata", "golden_"+ep.Name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/sim -run TestGolden -update` to bless)", err)
			}
			if !bytes.Equal(got, want) {
				diffAt := 0
				for diffAt < len(got) && diffAt < len(want) && got[diffAt] == want[diffAt] {
					diffAt++
				}
				lo, hi := diffAt-80, diffAt+80
				if lo < 0 {
					lo = 0
				}
				if hi > len(got) {
					hi = len(got)
				}
				t.Fatalf("golden trace %q drifted at byte %d:\n got … %s …\nre-bless with -update only if the change is intentional",
					ep.Name, diffAt, got[lo:hi])
			}
		})
	}
}

// TestGoldenTraceStableAcrossTelemetry guards the collector-neutrality
// contract the goldens rely on: attaching a telemetry collector must not
// change a single byte of the episode's behaviour.
func TestGoldenTraceStableAcrossTelemetry(t *testing.T) {
	ep := goldenEpisodes()[1] // the delayed setting exercises all streams
	sc := ep.Cfg.Scenario

	run := func(withCollector bool) []Sample {
		agent := core.NewUltimate(sc, planner.ConservativeExpert(sc))
		opts := Options{Seed: goldenSeed, Trace: true}
		if withCollector {
			m := telemetry.NewMetrics()
			agent.SetCollector(m)
			opts.Collector = m
		}
		res, err := Run(ep.Cfg, agent, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Compare formatted values: Sample holds NaN placeholders (MeasP
		// before the first reading), and NaN != NaN under ==.
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Fatalf("step %d differs with telemetry attached: %+v vs %+v", i, a[i], b[i])
		}
	}
}
