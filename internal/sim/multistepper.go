package sim

import (
	"time"

	"math/rand"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/guard"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"

	"safeplan/internal/telemetry"
)

// MultiStepper is the multi-vehicle twin of Stepper: a resumable engine
// over RunMulti's oncoming-vehicle stream, one fusion filter and channel
// per track.  Injected StepInput events are routed to tracks by their
// 1-based Sender/Target index; out-of-range indices are dropped.
//
// The same lifetime rules apply as for Stepper: not safe for concurrent
// use, and pooled inside the arena when Options.Scratch is set.
type MultiStepper struct {
	cfg   MultiConfig
	agent core.MultiAgent
	opts  Options

	sc  leftturn.Config
	mon monitor.Monitor
	gs  *GuardedStep

	tracks []oncomingTrack
	ks     []core.Knowledge
	ests   []fusion.Estimate

	// Telemetry-probe window scratch (nil unless a collector is attached).
	cons, aggr []interval.Interval

	sensDropRng *rand.Rand

	ego dynamics.State

	msgTick, sensTick comms.Ticker
	msgBuf            []comms.Message

	coll telemetry.Collector

	plan  func() (float64, bool)
	emerg func() float64
	env   func() (float64, float64, bool)

	t float64

	dt       float64
	maxSteps int
	step     int

	res      Result
	done     bool
	finished bool
	err      error
}

// NewMultiStepper validates cfg and builds a resumable multi-vehicle
// engine positioned before step 0, performing exactly the per-episode
// setup of the closed RunMulti loop (same RNG derivation order).
func NewMultiStepper(cfg MultiConfig, agent core.MultiAgent, opts Options) (*MultiStepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = DefaultHorizon
	}
	sh := opts.Scratch
	sh.Begin()
	st := sh.multiStepper()
	st.reset(cfg, agent, opts)

	master := sh.RNG(opts.Seed)
	initRng := sh.RNG(master.Int63())
	st.sensDropRng = sh.RNG(master.Int63())

	sc := cfg.Scenario
	st.sc = sc
	tracks := sh.trackSlice(cfg.Vehicles)
	st.tracks = tracks
	// Zero spacing selects the documented default; without the fill a
	// zero-valued MultiConfig stacked every oncoming vehicle at the same
	// start position (modulo jitter).
	spacing := cfg.SpacingDist
	if spacing == 0 {
		spacing = DefaultSpacingDist
	}
	offset := 0.0
	for i := range tracks {
		tr := &tracks[i]
		driver, err := sh.Driver(cfg.Driver, sh.RNG(master.Int63()))
		if err != nil {
			return nil, err
		}
		channel, err := sh.Channel(cfg.Comms, sh.RNG(master.Int63()))
		if err != nil {
			return nil, err
		}
		sens, err := sh.Sensor(cfg.Sensor, sh.RNG(master.Int63()))
		if err != nil {
			return nil, err
		}
		filt, err := sh.Fusion(fusion.Config{
			Limits:    sc.Oncoming,
			Sensor:    cfg.Sensor,
			UseKalman: cfg.InfoFilter,
			Replay:    cfg.InfoFilter && !cfg.NoReplay,
		})
		if err != nil {
			return nil, err
		}
		s := sc.OncomingInit
		if cfg.OncomingStartSpread > 0 {
			s.P -= initRng.Float64() * cfg.OncomingStartSpread
		}
		if cfg.OncomingSpeedMax > 0 {
			s.V = cfg.OncomingSpeedMin + initRng.Float64()*(cfg.OncomingSpeedMax-cfg.OncomingSpeedMin)
		}
		s.P -= offset
		offset += spacing + initRng.Float64()*cfg.SpacingJitter
		filt.InitExact(0, s, 0)
		*tr = oncomingTrack{state: s, driver: driver, channel: channel, sensor: sens, filter: filt}
	}
	// Sensor disturbance streams derive after every track's legacy streams
	// so existing configurations keep their exact per-seed behaviour.
	if cfg.SensorDisturb != nil {
		for i := range tracks {
			tracks[i].sensProc = cfg.SensorDisturb.NewSensor(sh.RNG(master.Int63()))
		}
	}
	// Planner-fault streams derive last, under the same compatibility rule.
	gs, err := NewGuardedStep(cfg.Guard, cfg.PlannerFault, sc.Ego, master)
	if err != nil {
		return nil, err
	}
	st.gs = gs
	// Safe-action envelope basis for the guard; see Run.
	st.mon = monitor.New(sc)

	st.ego = sc.EgoInit
	st.msgTick = comms.MakeTicker(cfg.DtM)
	st.msgTick.Due(0)
	st.sensTick = comms.MakeTicker(cfg.DtS)
	st.sensTick.Due(0)

	st.coll = opts.Collector
	st.dt = sc.DtC
	st.maxSteps = int(horizon/st.dt) + 1
	st.ks, st.ests = sh.knowledgeSlices(len(tracks))
	st.msgBuf = sh.MsgBuf()
	if st.coll != nil {
		st.cons, st.aggr = sh.windowSlices(len(tracks))
	}

	if st.plan == nil {
		// Built once per pooled MultiStepper (see Stepper): the closures
		// read the receiver's fields at call time.
		st.plan = func() (float64, bool) { return st.agent.Accel(st.t, st.ego, st.ks) }
		st.emerg = func() float64 { return st.sc.EmergencyAccel(st.ego) }
		// Per-track envelopes intersect: the ego must satisfy every
		// vehicle's commitment guard at once, exactly as the multi-vehicle
		// compound resolves them (an empty intersection or any emergency
		// verdict admits only κ_e).
		st.env = func() (float64, float64, bool) {
			lo, hi := st.sc.Ego.AMin, st.sc.Ego.AMax
			for _, k := range st.ks {
				o := st.mon.Assess(st.ego, st.sc.ConservativeWindow(k.Sound))
				if o.Emergency {
					return 0, 0, false
				}
				tlo, thi, ok := o.Envelope(st.sc.Ego)
				if !ok {
					return 0, 0, false
				}
				if tlo > lo {
					lo = tlo
				}
				if thi < hi {
					hi = thi
				}
			}
			return lo, hi, lo <= hi
		}
	}
	return st, nil
}

// reset clears per-episode state while keeping the reusable closures.
func (st *MultiStepper) reset(cfg MultiConfig, agent core.MultiAgent, opts Options) {
	plan, emerg, env := st.plan, st.emerg, st.env
	*st = MultiStepper{plan: plan, emerg: emerg, env: env}
	st.cfg = cfg
	st.agent = agent
	st.opts = opts
}

// Done reports whether the episode has terminated (or a step invariant
// failed); further Step calls are no-ops returning the terminal outcome.
func (st *MultiStepper) Done() bool { return st.done || st.err != nil }

// Err returns the step-invariant violation that aborted the episode, if
// any.
func (st *MultiStepper) Err() error { return st.err }

// Step advances the episode by one control step; see Stepper.Step.
// Injected messages and readings are routed to their track by the 1-based
// Sender/Target index.
func (st *MultiStepper) Step(in StepInput) (StepOutcome, error) {
	if st.done || st.err != nil {
		return st.terminalOutcome(), st.err
	}
	if st.step >= st.maxSteps {
		st.done = true
		return st.terminalOutcome(), nil
	}
	step := st.step
	st.t = float64(step) * st.dt
	t := st.t
	cfg := &st.cfg
	sc := st.sc
	res := &st.res
	tracks := st.tracks

	// 0. Externally streamed events, routed by track index.
	for _, m := range in.Messages {
		if m.Sender >= 1 && m.Sender <= len(tracks) {
			tracks[m.Sender-1].filter.OnMessage(m)
		}
	}
	for _, r := range in.Readings {
		if r.Target >= 1 && r.Target <= len(tracks) {
			tracks[r.Target-1].filter.OnReading(r)
		}
	}

	msgAt, msgDue := st.msgTick.Due(t)
	sensAt, sensDue := st.sensTick.Due(t)
	for i := range tracks {
		tr := &tracks[i]
		if msgDue {
			tr.channel.Send(comms.Message{Sender: i + 1, T: msgAt, P: tr.state.P, V: tr.state.V, A: tr.accel})
		}
		st.msgBuf = tr.channel.PollAppend(t, st.msgBuf[:0])
		for _, m := range st.msgBuf {
			tr.filter.OnMessage(m)
		}
		if sensDue {
			drop := cfg.SensorDropProb > 0 && st.sensDropRng.Float64() < cfg.SensorDropProb
			var bias float64
			if tr.sensProc != nil {
				d := tr.sensProc.Next(sensAt)
				drop = drop || d.Drop
				bias = d.Bias
			}
			if !drop {
				tr.filter.OnReading(tr.sensor.MeasureBiased(i+1, sensAt, tr.state, tr.accel, bias))
			}
		}
		est := tr.filter.EstimateAt(t)
		st.ests[i] = est
		if !est.P.Contains(tr.state.P) || !est.V.Contains(tr.state.V) {
			res.FusedIntervalMisses++
		}
		if !est.SoundP.Contains(tr.state.P) || !est.SoundV.Contains(tr.state.V) {
			res.SoundViolations++
		}
		st.ks[i] = core.Knowledge{
			Sound: leftturn.OncomingEstimate{
				P: est.SoundP, V: est.SoundV,
				PointP: est.PointP, PointV: est.PointV, A: est.A,
			},
			Fused: leftturn.OncomingEstimate{
				P: est.P, V: est.V,
				PointP: est.PointP, PointV: est.PointV, A: est.A,
			},
		}
	}

	var a0 float64
	var emergency bool
	var gres guard.StepResult
	var start time.Time
	if st.coll != nil {
		start = time.Now()
	}
	if st.gs != nil {
		a0, emergency, gres = st.gs.Step(t, st.plan, st.emerg, st.env)
	} else {
		a0, emergency = st.plan()
	}
	if st.coll != nil {
		st.coll.OnStep(multiStepProbe(sc, t, emergency, st.ks, st.cons, st.aggr, time.Since(start).Nanoseconds()))
		if st.gs != nil {
			st.gs.Report(st.coll, t, gres)
		}
	}
	if emergency {
		res.EmergencySteps++
	}
	if len(st.opts.Invariants) > 0 {
		for i := range tracks {
			tr := &tracks[i]
			si := StepInfo{
				T: t, Vehicle: i, Ego: st.ego, Other: tr.state, OtherA: tr.accel,
				Est: st.ests[i], Accel: a0, Emergency: emergency,
			}
			if st.gs != nil {
				st.gs.Annotate(&si, gres)
			}
			if ierr := CheckStepInvariants(st.opts.Invariants, si); ierr != nil {
				st.err = ierr
				return st.terminalOutcome(), ierr
			}
		}
	}

	st.ego, _ = dynamics.Step(st.ego, a0, st.dt, sc.Ego)
	for i := range tracks {
		tr := &tracks[i]
		var ba float64
		if len(cfg.OncomingScript) > 0 {
			ba = ScriptAccel(cfg.OncomingScript, step)
		} else {
			ba = tr.driver.Accel(t, tr.state)
		}
		tr.state, tr.accel = dynamics.Step(tr.state, ba, st.dt, sc.Oncoming)
	}
	res.Steps++
	st.step++

	out := StepOutcome{
		T: t, Step: step,
		Accel: a0, Emergency: emergency,
		EgoP: st.ego.P, EgoV: st.ego.V,
	}

	for i := range tracks {
		if sc.Collision(st.ego, tracks[i].state) {
			res.Collided = true
			res.Eta = -1
			st.done = true
			out.Done, out.Collided = true, true
			return out, nil
		}
	}
	if sc.ReachedTarget(st.ego) {
		res.Reached = true
		res.ReachTime = t + st.dt
		res.Eta = 1 / res.ReachTime
		st.done = true
		out.Done, out.Reached = true, true
		return out, nil
	}
	if st.step >= st.maxSteps {
		st.done = true
		out.Done = true
	}
	return out, nil
}

// terminalOutcome summarizes a finished (or failed) episode for repeated
// Step calls past the end.
func (st *MultiStepper) terminalOutcome() StepOutcome {
	return StepOutcome{
		T: st.t, Step: st.step,
		EgoP: st.ego.P, EgoV: st.ego.V,
		Done: true, Collided: st.res.Collided, Reached: st.res.Reached,
	}
}

// Finish finalizes the episode; see Stepper.Finish.
func (st *MultiStepper) Finish() (Result, error) {
	if st.finished {
		return st.res, st.err
	}
	st.finished = true
	ReportOutcome(st.coll, st.opts.Seed, &st.res)
	if st.gs != nil {
		st.res.Guard = st.gs.Stats()
	}
	if st.err == nil && len(st.opts.Invariants) > 0 {
		st.err = CheckEpisodeInvariants(st.opts.Invariants, &st.res)
	}
	return st.res, st.err
}
