package sim

import (
	"fmt"
	"math"

	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
)

// StepInfo is the ground-truth plus estimate payload handed to invariant
// checkers once per control step (per observed vehicle in the
// multi-vehicle scenario).  It is passed by value, so checking never
// allocates.
type StepInfo struct {
	// T is the simulation time of the step [s].
	T float64
	// Vehicle indexes the observed vehicle (always 0 in the single-vehicle
	// scenarios; the track index in RunMulti).
	Vehicle int

	// Ego is the true ego state at decision time.
	Ego dynamics.State
	// Other is the true state of the observed vehicle (the oncoming car in
	// the left-turn scenario, the lead in car following).
	Other dynamics.State
	// OtherA is the observed vehicle's current behavioural acceleration.
	OtherA float64

	// Est is the fusion filter's output for this vehicle at time T.
	Est fusion.Estimate

	// Accel is the acceleration the agent commanded this step.
	Accel float64
	// Emergency is true when the emergency planner κ_e produced Accel.
	Emergency bool

	// GuardState is the guard's degradation state after this step
	// ("nominal", "degraded", "emergency-only"); empty when no guard is
	// configured.  GuardFault names the contained planner fault ("panic",
	// "deadline", "wall-clock", "non-finite", "range") and GuardFallback
	// the substitute command source ("last-good", "emergency"); both are
	// empty on clean pass-through steps.
	GuardState    string
	GuardFault    string
	GuardFallback string
}

// Invariant is a pluggable runtime check threaded through the simulation
// step loop.  The same checkers run in unit tests, the fuzz targets, and
// the Monte-Carlo campaign engine (internal/campaign), so a property is
// stated once and enforced everywhere.
//
// Implementations must be stateless (or internally synchronized): campaign
// runners share one checker across all worker goroutines, and a checker is
// invoked for many interleaved episodes.
type Invariant interface {
	// Name identifies the invariant in violation reports and campaign
	// counters.
	Name() string
	// CheckStep inspects one control step; a non-nil error aborts the
	// episode with a *ViolationError.
	CheckStep(s StepInfo) error
	// CheckEpisode inspects a finished episode's result.
	CheckEpisode(r *Result) error
}

// ViolationError reports an invariant violation.  Episode runners wrap it
// with seed context; campaign runners unwrap it (errors.As) to count
// violations by invariant name.
type ViolationError struct {
	// Invariant is the Name of the violated checker.
	Invariant string
	// T is the simulation time of the violating step; NaN for
	// episode-level violations.
	T float64
	// Detail describes the violation.
	Detail string
}

// Error implements error.
func (e *ViolationError) Error() string {
	if math.IsNaN(e.T) {
		return fmt.Sprintf("invariant %s violated: %s", e.Invariant, e.Detail)
	}
	return fmt.Sprintf("invariant %s violated at t=%.3f: %s", e.Invariant, e.T, e.Detail)
}

// stepViolation builds a step-level ViolationError.
func stepViolation(name string, s StepInfo, format string, args ...any) error {
	return &ViolationError{Invariant: name, T: s.T, Detail: fmt.Sprintf(format, args...)}
}

// episodeViolation builds an episode-level ViolationError.
func episodeViolation(name, format string, args ...any) error {
	return &ViolationError{Invariant: name, T: math.NaN(), Detail: fmt.Sprintf(format, args...)}
}

// CheckStepInvariants runs every checker against one step.  It is exported
// for the sibling scenario packages' step loops (internal/carfollow).
func CheckStepInvariants(invs []Invariant, s StepInfo) error {
	for _, inv := range invs {
		if err := inv.CheckStep(s); err != nil {
			return err
		}
	}
	return nil
}

// CheckEpisodeInvariants runs every checker against a finished episode.
func CheckEpisodeInvariants(invs []Invariant, r *Result) error {
	for _, inv := range invs {
		if err := inv.CheckEpisode(r); err != nil {
			return err
		}
	}
	return nil
}

// StepOnly provides a no-op CheckEpisode; embed it in checkers that only
// inspect steps.
type StepOnly struct{}

// CheckEpisode implements Invariant.
func (StepOnly) CheckEpisode(*Result) error { return nil }

// EpisodeOnly provides a no-op CheckStep; embed it in checkers that only
// inspect finished episodes.
type EpisodeOnly struct{}

// CheckStep implements Invariant.
func (EpisodeOnly) CheckStep(StepInfo) error { return nil }

// NoCollision asserts the paper's headline guarantee: a compound planner
// never collides, so η ≥ 0 in every episode.  Attach it only to agents
// that carry the guarantee (basic or ultimate designs, not pure κ_n).
type NoCollision struct{ EpisodeOnly }

// Name implements Invariant.
func (NoCollision) Name() string { return "no-collision" }

// CheckEpisode implements Invariant.
func (n NoCollision) CheckEpisode(r *Result) error {
	if r.Collided || r.Eta < 0 {
		return episodeViolation(n.Name(), "episode collided (η = %v) after %d steps", r.Eta, r.Steps)
	}
	return nil
}

// SoundEstimate asserts the information-filter soundness contract: the
// sound interval pair (Estimate.SoundP/SoundV) contains the true state of
// the observed vehicle at every step.  This holds unconditionally — the
// Kalman component only sharpens the *fused* pair — so the checker is
// valid for every design, including ablations.
type SoundEstimate struct{ StepOnly }

// Name implements Invariant.
func (SoundEstimate) Name() string { return "sound-estimate" }

// CheckStep implements Invariant.
func (c SoundEstimate) CheckStep(s StepInfo) error {
	if !s.Est.SoundP.Contains(s.Other.P) {
		return stepViolation(c.Name(), s, "vehicle %d: true position %v outside sound interval %v",
			s.Vehicle, s.Other.P, s.Est.SoundP)
	}
	if !s.Est.SoundV.Contains(s.Other.V) {
		return stepViolation(c.Name(), s, "vehicle %d: true velocity %v outside sound interval %v",
			s.Vehicle, s.Other.V, s.Est.SoundV)
	}
	return nil
}

// DefaultSlackTolerance absorbs the ~1 ulp discrepancy between the
// emergency planner's constant-deceleration stop computation and the
// integrator's step arithmetic.
const DefaultSlackTolerance = 1e-6

// EmergencyOneStep asserts the Eq. 4 one-step property of the emergency
// planner in the left-turn scenario: whenever κ_e commands a *stoppable*
// ego (short of the front line with more than StopOvershoot of slack),
// executing the command for one control step must keep the slack
// nonnegative — κ_e never burns the stopping margin it exists to protect.
// The committed branch (slack at or below the overshoot bound: escape at
// full throttle) is covered by NoCollision instead, since its correctness
// argument is window disjointness, not slack.
//
// Two discretization details make the discrete form differ from the
// continuous Eq. 4.  First, the integrator clamps velocity at VMin: when
// κ_e brakes to a stop from v < |AMin|·Δt_c it applies the milder
// deceleration −v/Δt_c for the whole step and travels v·Δt_c/2 instead of
// the continuous stopping distance v²/(2|AMin|), an overshoot of at most
// |AMin|·Δt_c²/8 (maximized at v = |AMin|·Δt_c/2).  The checker budgets
// exactly that bound on top of Tol.  Second, Slack switches to the
// inside-the-zone branch at PF, so the post-step state is measured with
// the un-branched stopping-margin formula — a micro-overshoot past the
// front line must read as millimetres, not as the zone depth.
//
// A deliberately broken κ_e — braking too late, or accelerating from the
// boundary safe set — trips this checker on the first bad step.
type EmergencyOneStep struct {
	StepOnly
	Cfg leftturn.Config
	// Tol is the slack tolerance; 0 selects DefaultSlackTolerance.
	Tol float64
}

// Name implements Invariant.
func (EmergencyOneStep) Name() string { return "emergency-one-step" }

// CheckStep implements Invariant.
func (c EmergencyOneStep) CheckStep(s StepInfo) error {
	if !s.Emergency {
		return nil
	}
	slack := c.Cfg.Slack(s.Ego)
	if slack <= c.Cfg.StopOvershoot() || math.IsInf(slack, 1) {
		return nil // committed (escape) or already past the zone
	}
	tol := c.Tol
	if tol == 0 {
		tol = DefaultSlackTolerance
	}
	// Admissible stop-step overshoot of the VMin-clamping integrator.
	tol += -c.Cfg.Ego.AMin * c.Cfg.DtC * c.Cfg.DtC / 8
	next, _ := dynamics.Step(s.Ego, s.Accel, c.Cfg.DtC, c.Cfg.Ego)
	// Un-branched stopping margin: unlike Cfg.Slack, stays continuous
	// across the front line so a mm-scale overshoot reads as mm-scale.
	after := c.Cfg.Geometry.PF - c.Cfg.BrakingDistance(next.V) - next.P
	if after < -tol {
		return stepViolation(c.Name(), s,
			"κ_e command a=%.3f drives slack %.6f → %.6f (ego p=%.3f v=%.3f)",
			s.Accel, slack, after, s.Ego.P, s.Ego.V)
	}
	return nil
}

// GuardConsistency asserts the planner-fault guard's containment
// contract on every step it intervened in: the executed acceleration is
// finite and inside the actuation envelope (± Tol), an "emergency"
// fallback is flagged as a κ_e step, a "last-good" fallback is not (it
// replays a validated nominal action), and no contained fault ever
// reaches the actuators without a fallback.  Steps without guard
// activity are skipped, so the checker composes with any agent.
//
// Unlike MonitorConsistency this checker stays valid under fault
// injection — the guard forcing κ_e on a panic step is exactly the
// behaviour it asserts, whereas the monitor-iff-boundary property is
// deliberately broken by such a step.
type GuardConsistency struct {
	StepOnly
	// Limits is the actuation envelope the guard enforces.
	Limits dynamics.Limits
	// Tol absorbs floating-point slack at the envelope edges; 0 selects
	// the guard's own range tolerance.
	Tol float64
}

// NewGuardConsistency builds the checker for the left-turn scenario's ego
// envelope.
func NewGuardConsistency(cfg leftturn.Config) GuardConsistency {
	return GuardConsistency{Limits: cfg.Ego}
}

// Name implements Invariant.
func (GuardConsistency) Name() string { return "guard-consistency" }

// CheckStep implements Invariant.
func (c GuardConsistency) CheckStep(s StepInfo) error {
	if s.GuardFault == "" && s.GuardFallback == "" {
		return nil // no guard, or clean pass-through
	}
	tol := c.Tol
	if tol == 0 {
		tol = 1e-9
	}
	if math.IsNaN(s.Accel) || math.IsInf(s.Accel, 0) {
		return stepViolation(c.Name(), s,
			"guard passed non-finite acceleration %v (fault %q, fallback %q)",
			s.Accel, s.GuardFault, s.GuardFallback)
	}
	if s.Accel < c.Limits.AMin-tol || s.Accel > c.Limits.AMax+tol {
		return stepViolation(c.Name(), s,
			"guard passed out-of-range acceleration %v outside [%v, %v] (fault %q, fallback %q)",
			s.Accel, c.Limits.AMin, c.Limits.AMax, s.GuardFault, s.GuardFallback)
	}
	if s.GuardFault != "" && s.GuardFallback == "" {
		return stepViolation(c.Name(), s,
			"fault %q reached the actuators without a fallback (a=%v)", s.GuardFault, s.Accel)
	}
	switch s.GuardFallback {
	case "emergency":
		if !s.Emergency {
			return stepViolation(c.Name(), s,
				"emergency fallback not flagged as a κ_e step (fault %q)", s.GuardFault)
		}
	case "last-good":
		if s.Emergency {
			return stepViolation(c.Name(), s,
				"last-good fallback flagged as a κ_e step (fault %q)", s.GuardFault)
		}
	}
	return nil
}

// MonitorConsistency asserts that the agent hands control to κ_e exactly
// when the runtime monitor's assessment of the *sound* conservative window
// says so (monitor-selects-κ_e iff the state is in X_b, the unsafe set, or
// the stopped-at-line hold).  It re-runs monitor.Assess on the checker's
// side from the same inputs the compound planner consumes, so it is valid
// only for single-vehicle compound agents with the default monitor tuning
// and the sound-monitor wiring (MonitorOnFused unset) — exactly the
// designs that carry the paper's guarantee.
type MonitorConsistency struct {
	StepOnly
	Cfg leftturn.Config
	Mon monitor.Monitor
}

// NewMonitorConsistency builds the checker with the default monitor tuning
// (the one core.NewBasic / core.NewUltimate install).
func NewMonitorConsistency(cfg leftturn.Config) MonitorConsistency {
	return MonitorConsistency{Cfg: cfg, Mon: monitor.New(cfg)}
}

// Name implements Invariant.
func (MonitorConsistency) Name() string { return "monitor-iff-boundary" }

// CheckStep implements Invariant.
func (c MonitorConsistency) CheckStep(s StepInfo) error {
	est := leftturn.OncomingEstimate{
		P: s.Est.SoundP, V: s.Est.SoundV,
		PointP: s.Est.PointP, PointV: s.Est.PointV,
		A: s.Est.A,
	}
	want := c.Mon.Assess(s.Ego, c.Cfg.ConservativeWindow(est))
	if want.Emergency != s.Emergency {
		return stepViolation(c.Name(), s,
			"agent emergency=%v but monitor says %v (reason %q, ego p=%.3f v=%.3f)",
			s.Emergency, want.Emergency, want.Reason, s.Ego.P, s.Ego.V)
	}
	return nil
}
