package sim

import (
	"math/rand"

	"safeplan/internal/dynamics"
	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/telemetry"
)

// GuardedStep bundles one episode's planner-fault containment state: the
// guard and, when a fault model is configured, the fault injector wrapped
// around the agent call.  Agents are shared across campaign workers and
// must stay stateless, so this state lives in the episode runners, one
// instance per episode.
type GuardedStep struct {
	g   *guard.Guard
	inj *faultinject.Injector
}

// NewGuardedStep instantiates the episode's guard and injector from the
// config.  With neither a guard nor a fault model it returns nil (and the
// step loops keep their direct agent call).  A fault model without an
// explicit guard installs guard.DefaultConfig(lim): injected panics must
// never escape the runner.  The injector's streams derive from master
// only when a fault model is configured — after every legacy stream — so
// existing configurations keep their exact per-seed behaviour.
func NewGuardedStep(gcfg *guard.Config, fm faultinject.Model, lim dynamics.Limits, master *rand.Rand) (*GuardedStep, error) {
	if gcfg == nil && fm == nil {
		return nil, nil
	}
	var gs GuardedStep
	if fm != nil {
		inj, err := faultinject.NewInjector(fm,
			rand.New(rand.NewSource(master.Int63())),
			rand.New(rand.NewSource(master.Int63())),
		)
		if err != nil {
			return nil, err
		}
		gs.inj = inj
	}
	cfg := guard.DefaultConfig(lim)
	if gcfg != nil {
		cfg = *gcfg
		if cfg.Limits == (dynamics.Limits{}) {
			cfg.Limits = lim
		}
	}
	g, err := guard.New(cfg)
	if err != nil {
		return nil, err
	}
	gs.g = g
	return &gs, nil
}

// Stats returns the guard's episode statistics accumulated so far.
func (gs *GuardedStep) Stats() guard.EpisodeStats { return gs.g.Stats() }

// SetCertifiedRange arms the guard's IBP cross-check (see
// guard.Guard.SetCertifiedRange).
func (gs *GuardedStep) SetCertifiedRange(f func() (lo, hi float64, ok bool), tol float64) {
	gs.g.SetCertifiedRange(f, tol)
}

// Step runs one guarded planner invocation, threading the injector (when
// configured) inside the guard so injected panics and latencies are
// contained and accounted like genuine ones.  envelope, when non-nil,
// supplies the monitor's safe-action interval for the current state; the
// guard validates every executed non-emergency command against it (see
// guard.Guard.Step).
func (gs *GuardedStep) Step(t float64, plan func() (float64, bool), emergency func() float64, envelope func() (lo, hi float64, ok bool)) (float64, bool, guard.StepResult) {
	wrapped := plan
	var latFn func() float64
	if gs.inj != nil {
		wrapped = func() (float64, bool) { return gs.inj.Apply(t, plan) }
		latFn = gs.inj.SimLatency
	}
	return gs.g.Step(wrapped, emergency, latFn, envelope)
}

// annotate fills a StepInfo's guard fields from the step result.
func (gs *GuardedStep) Annotate(s *StepInfo, r guard.StepResult) {
	s.GuardState = r.State.String()
	if r.Fault != guard.FaultNone {
		s.GuardFault = r.Fault.String()
	}
	if r.Fallback != guard.FallbackNone {
		s.GuardFallback = r.Fallback.String()
	}
}

// report forwards a guard intervention to the collector.  Clean
// pass-through steps (no fault, no fallback, no transition) stay silent,
// so guarded no-fault runs emit zero guard events.
func (gs *GuardedStep) Report(coll telemetry.Collector, t float64, r guard.StepResult) {
	if r.Fault == guard.FaultNone && r.Fallback == guard.FallbackNone && !r.Transition() {
		return
	}
	e := telemetry.GuardEvent{
		T:          t,
		State:      r.State.String(),
		From:       r.Prev.String(),
		Transition: r.Transition(),
	}
	if r.Fault != guard.FaultNone {
		e.Fault = r.Fault.String()
	}
	if r.Fallback != guard.FallbackNone {
		e.Fallback = r.Fallback.String()
	}
	coll.OnGuardEvent(e)
}
