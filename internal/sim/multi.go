package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/guard"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
	"safeplan/internal/sensor"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
)

// MultiConfig extends Config with a stream of oncoming vehicles: vehicle i
// starts SpacingDist·i metres behind the first (plus jitter), each with its
// own random behaviour, V2V channel, sensor stream, and fusion filter.
type MultiConfig struct {
	Config

	// Vehicles is the number of oncoming vehicles (≥ 1).
	Vehicles int
	// SpacingDist separates successive vehicles' start positions [m].
	// Zero selects DefaultSpacingDist.
	SpacingDist float64
	// SpacingJitter adds U(0, SpacingJitter) extra metres per gap.
	SpacingJitter float64
}

// DefaultSpacingDist keeps successive oncoming vehicles ≈2 s apart at
// typical speeds.
const DefaultSpacingDist = 20

// DefaultMultiConfig returns a three-vehicle stream over the standard
// evaluation defaults, with a longer horizon so the whole stream can clear.
func DefaultMultiConfig() MultiConfig {
	cfg := DefaultConfig()
	cfg.Horizon = 45
	return MultiConfig{
		Config:        cfg,
		Vehicles:      3,
		SpacingDist:   DefaultSpacingDist,
		SpacingJitter: 8,
	}
}

// Validate checks the configuration.
func (c MultiConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Vehicles < 1 {
		return fmt.Errorf("sim: need at least one oncoming vehicle, got %d", c.Vehicles)
	}
	if c.SpacingDist < 0 || c.SpacingJitter < 0 {
		return fmt.Errorf("sim: negative spacing")
	}
	return nil
}

// oncomingTrack bundles one oncoming vehicle's simulation state.
type oncomingTrack struct {
	state    dynamics.State
	accel    float64
	driver   *traffic.Driver
	channel  *comms.Channel
	sensor   *sensor.Model
	filter   *fusion.Filter
	sensProc disturb.SensorProcess // nil unless SensorDisturb is set
}

// RunMulti simulates one episode with a stream of oncoming vehicles.  The
// episode ends at the first collision with any vehicle, when the ego
// clears the zone, or at the horizon.
func RunMulti(cfg MultiConfig, agent core.MultiAgent, opts Options) (res Result, err error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(opts.Invariants) > 0 {
		defer func() {
			if err == nil {
				err = CheckEpisodeInvariants(opts.Invariants, &res)
			}
		}()
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = DefaultHorizon
	}
	sh := opts.Scratch
	sh.Begin()
	master := sh.RNG(opts.Seed)
	initRng := sh.RNG(master.Int63())
	sensDropRng := sh.RNG(master.Int63())

	sc := cfg.Scenario
	tracks := sh.trackSlice(cfg.Vehicles)
	offset := 0.0
	for i := range tracks {
		tr := &tracks[i]
		driver, err := sh.Driver(cfg.Driver, sh.RNG(master.Int63()))
		if err != nil {
			return Result{}, err
		}
		channel, err := sh.Channel(cfg.Comms, sh.RNG(master.Int63()))
		if err != nil {
			return Result{}, err
		}
		sens, err := sh.Sensor(cfg.Sensor, sh.RNG(master.Int63()))
		if err != nil {
			return Result{}, err
		}
		filt, err := sh.Fusion(fusion.Config{
			Limits:    sc.Oncoming,
			Sensor:    cfg.Sensor,
			UseKalman: cfg.InfoFilter,
			Replay:    cfg.InfoFilter && !cfg.NoReplay,
		})
		if err != nil {
			return Result{}, err
		}
		s := sc.OncomingInit
		if cfg.OncomingStartSpread > 0 {
			s.P -= initRng.Float64() * cfg.OncomingStartSpread
		}
		if cfg.OncomingSpeedMax > 0 {
			s.V = cfg.OncomingSpeedMin + initRng.Float64()*(cfg.OncomingSpeedMax-cfg.OncomingSpeedMin)
		}
		s.P -= offset
		offset += cfg.SpacingDist + initRng.Float64()*cfg.SpacingJitter
		filt.InitExact(0, s, 0)
		*tr = oncomingTrack{state: s, driver: driver, channel: channel, sensor: sens, filter: filt}
	}
	// Sensor disturbance streams derive after every track's legacy streams
	// so existing configurations keep their exact per-seed behaviour.
	if cfg.SensorDisturb != nil {
		for i := range tracks {
			tracks[i].sensProc = cfg.SensorDisturb.NewSensor(sh.RNG(master.Int63()))
		}
	}
	// Planner-fault streams derive last, under the same compatibility rule.
	gs, err := NewGuardedStep(cfg.Guard, cfg.PlannerFault, sc.Ego, master)
	if err != nil {
		return Result{}, err
	}
	if gs != nil {
		defer func() { res.Guard = gs.Stats() }()
	}
	// Safe-action envelope basis for the guard; see Run.
	mon := monitor.New(sc)

	ego := sc.EgoInit
	msgTick := comms.MakeTicker(cfg.DtM)
	msgTick.Due(0)
	sensTick := comms.MakeTicker(cfg.DtS)
	sensTick.Due(0)

	coll := opts.Collector
	defer ReportOutcome(coll, opts.Seed, &res)
	dt := sc.DtC
	maxSteps := int(horizon/dt) + 1
	ks, ests := sh.knowledgeSlices(len(tracks))
	msgBuf := sh.MsgBuf()

	// Per-episode closures (see Run): built once, reading the loop
	// variables through shared captures.
	var t float64
	plan := func() (float64, bool) { return agent.Accel(t, ego, ks) }
	emerg := func() float64 { return sc.EmergencyAccel(ego) }
	// Per-track envelopes intersect: the ego must satisfy every vehicle's
	// commitment guard at once, exactly as the multi-vehicle compound
	// resolves them (an empty intersection or any emergency verdict admits
	// only κ_e).
	env := func() (float64, float64, bool) {
		lo, hi := sc.Ego.AMin, sc.Ego.AMax
		for _, k := range ks {
			o := mon.Assess(ego, sc.ConservativeWindow(k.Sound))
			if o.Emergency {
				return 0, 0, false
			}
			tlo, thi, ok := o.Envelope(sc.Ego)
			if !ok {
				return 0, 0, false
			}
			if tlo > lo {
				lo = tlo
			}
			if thi < hi {
				hi = thi
			}
		}
		return lo, hi, lo <= hi
	}

	for step := 0; step < maxSteps; step++ {
		t = float64(step) * dt

		msgAt, msgDue := msgTick.Due(t)
		sensAt, sensDue := sensTick.Due(t)
		for i := range tracks {
			tr := &tracks[i]
			if msgDue {
				tr.channel.Send(comms.Message{Sender: i + 1, T: msgAt, P: tr.state.P, V: tr.state.V, A: tr.accel})
			}
			msgBuf = tr.channel.PollAppend(t, msgBuf[:0])
			for _, m := range msgBuf {
				tr.filter.OnMessage(m)
			}
			if sensDue {
				drop := cfg.SensorDropProb > 0 && sensDropRng.Float64() < cfg.SensorDropProb
				var bias float64
				if tr.sensProc != nil {
					d := tr.sensProc.Next(sensAt)
					drop = drop || d.Drop
					bias = d.Bias
				}
				if !drop {
					tr.filter.OnReading(tr.sensor.MeasureBiased(i+1, sensAt, tr.state, tr.accel, bias))
				}
			}
			est := tr.filter.EstimateAt(t)
			ests[i] = est
			if !est.P.Contains(tr.state.P) || !est.V.Contains(tr.state.V) {
				res.FusedIntervalMisses++
			}
			if !est.SoundP.Contains(tr.state.P) || !est.SoundV.Contains(tr.state.V) {
				res.SoundViolations++
			}
			ks[i] = core.Knowledge{
				Sound: leftturn.OncomingEstimate{
					P: est.SoundP, V: est.SoundV,
					PointP: est.PointP, PointV: est.PointV, A: est.A,
				},
				Fused: leftturn.OncomingEstimate{
					P: est.P, V: est.V,
					PointP: est.PointP, PointV: est.PointV, A: est.A,
				},
			}
		}

		var a0 float64
		var emergency bool
		var gres guard.StepResult
		var start time.Time
		if coll != nil {
			start = time.Now()
		}
		if gs != nil {
			a0, emergency, gres = gs.Step(t, plan, emerg, env)
		} else {
			a0, emergency = plan()
		}
		if coll != nil {
			coll.OnStep(multiStepProbe(sc, t, emergency, ks, time.Since(start).Nanoseconds()))
			if gs != nil {
				gs.Report(coll, t, gres)
			}
		}
		if emergency {
			res.EmergencySteps++
		}
		if len(opts.Invariants) > 0 {
			for i := range tracks {
				tr := &tracks[i]
				si := StepInfo{
					T: t, Vehicle: i, Ego: ego, Other: tr.state, OtherA: tr.accel,
					Est: ests[i], Accel: a0, Emergency: emergency,
				}
				if gs != nil {
					gs.Annotate(&si, gres)
				}
				if ierr := CheckStepInvariants(opts.Invariants, si); ierr != nil {
					return res, ierr
				}
			}
		}

		ego, _ = dynamics.Step(ego, a0, dt, sc.Ego)
		for i := range tracks {
			tr := &tracks[i]
			var ba float64
			if len(cfg.OncomingScript) > 0 {
				ba = ScriptAccel(cfg.OncomingScript, step)
			} else {
				ba = tr.driver.Accel(t, tr.state)
			}
			tr.state, tr.accel = dynamics.Step(tr.state, ba, dt, sc.Oncoming)
		}
		res.Steps++

		for i := range tracks {
			if sc.Collision(ego, tracks[i].state) {
				res.Collided = true
				res.Eta = -1
				return res, nil
			}
		}
		if sc.ReachedTarget(ego) {
			res.Reached = true
			res.ReachTime = t + dt
			res.Eta = 1 / res.ReachTime
			return res, nil
		}
	}
	return res, nil
}

// multiStepProbe condenses the per-vehicle knowledge into one telemetry
// probe: the estimate widths report the worst-tracked (widest) vehicle,
// and the window widths report the most constraining window — exactly the
// one handed to κ_n.
func multiStepProbe(sc leftturn.Config, t float64, emergency bool, ks []core.Knowledge, plannerNs int64) telemetry.StepProbe {
	p := telemetry.StepProbe{T: t, Emergency: emergency, PlannerNs: plannerNs}
	cons := make([]interval.Interval, len(ks))
	aggr := make([]interval.Interval, len(ks))
	for i, k := range ks {
		if w := k.Sound.P.Width(); w > p.SoundWidth {
			p.SoundWidth = w
		}
		if w := k.Fused.P.Width(); w > p.FusedWidth {
			p.FusedWidth = w
		}
		cons[i] = sc.ConservativeWindow(k.Fused)
		aggr[i] = sc.AggressiveWindow(k.Fused)
	}
	p.ConsWidth = core.MostConstrainingWindow(cons).Width()
	p.AggrWidth = core.MostConstrainingWindow(aggr).Width()
	return p
}

// RunMultiCampaign simulates n seed-paired multi-vehicle episodes with
// the campaign options (worker bound, shared telemetry collector).
func RunMultiCampaign(cfg MultiConfig, agent core.MultiAgent, n int, o CampaignOptions) ([]Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: non-positive episode count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]Result, n)
	errs := make([]error, n)
	var done atomic.Int64
	scratches := NewWorkerScratches(o.Workers, n)
	ParallelForWorkersScoped(o.Workers, n, func(w, i int) {
		results[i], errs[i] = RunMulti(cfg, agent, Options{Seed: o.BaseSeed + int64(i), Collector: o.Collector, Scratch: scratches[w]})
		if o.Collector != nil {
			o.Collector.OnProgress(done.Add(1), int64(n))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: episode %d: %w", i, err)
		}
	}
	return results, nil
}

// RunManyMulti is the campaign counterpart of RunMulti (seed-paired, one
// goroutine per core, no telemetry).
//
// Deprecated: use RunMultiCampaign.
func RunManyMulti(cfg MultiConfig, agent core.MultiAgent, n int, baseSeed int64) ([]Result, error) {
	return RunMultiCampaign(cfg, agent, n, CampaignOptions{BaseSeed: baseSeed})
}
