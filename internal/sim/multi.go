package sim

import (
	"fmt"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/sensor"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
	"sync/atomic"
)

// MultiConfig extends Config with a stream of oncoming vehicles: vehicle i
// starts SpacingDist·i metres behind the first (plus jitter), each with its
// own random behaviour, V2V channel, sensor stream, and fusion filter.
type MultiConfig struct {
	Config

	// Vehicles is the number of oncoming vehicles (≥ 1).
	Vehicles int
	// SpacingDist separates successive vehicles' start positions [m].
	// Zero selects DefaultSpacingDist.
	SpacingDist float64
	// SpacingJitter adds U(0, SpacingJitter) extra metres per gap.
	SpacingJitter float64
}

// DefaultSpacingDist keeps successive oncoming vehicles ≈2 s apart at
// typical speeds.
const DefaultSpacingDist = 20

// DefaultMultiConfig returns a three-vehicle stream over the standard
// evaluation defaults, with a longer horizon so the whole stream can clear.
func DefaultMultiConfig() MultiConfig {
	cfg := DefaultConfig()
	cfg.Horizon = 45
	return MultiConfig{
		Config:        cfg,
		Vehicles:      3,
		SpacingDist:   DefaultSpacingDist,
		SpacingJitter: 8,
	}
}

// Validate checks the configuration.
func (c MultiConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Vehicles < 1 {
		return fmt.Errorf("sim: need at least one oncoming vehicle, got %d", c.Vehicles)
	}
	if c.SpacingDist < 0 || c.SpacingJitter < 0 {
		return fmt.Errorf("sim: negative spacing")
	}
	return nil
}

// oncomingTrack bundles one oncoming vehicle's simulation state.
type oncomingTrack struct {
	state    dynamics.State
	accel    float64
	driver   *traffic.Driver
	channel  *comms.Channel
	sensor   *sensor.Model
	filter   *fusion.Filter
	sensProc disturb.SensorProcess // nil unless SensorDisturb is set
}

// RunMulti simulates one episode with a stream of oncoming vehicles.  The
// episode ends at the first collision with any vehicle, when the ego
// clears the zone, or at the horizon.  Like Run it is a thin closed loop
// over the resumable engine (here MultiStepper).
func RunMulti(cfg MultiConfig, agent core.MultiAgent, opts Options) (Result, error) {
	st, err := NewMultiStepper(cfg, agent, opts)
	if err != nil {
		return Result{}, err
	}
	for {
		out, err := st.Step(StepInput{})
		if err != nil || out.Done {
			return st.Finish()
		}
	}
}

// multiStepProbe condenses the per-vehicle knowledge into one telemetry
// probe: the estimate widths report the worst-tracked (widest) vehicle,
// and the window widths report the most constraining window — exactly the
// one handed to κ_n.  cons and aggr are caller-owned per-track scratch
// slices of length len(ks) (hoisted into the episode arena so a
// collector-attached run stays allocation-free per step).
func multiStepProbe(sc leftturn.Config, t float64, emergency bool, ks []core.Knowledge, cons, aggr []interval.Interval, plannerNs int64) telemetry.StepProbe {
	p := telemetry.StepProbe{T: t, Emergency: emergency, PlannerNs: plannerNs}
	for i, k := range ks {
		if w := k.Sound.P.Width(); w > p.SoundWidth {
			p.SoundWidth = w
		}
		if w := k.Fused.P.Width(); w > p.FusedWidth {
			p.FusedWidth = w
		}
		cons[i] = sc.ConservativeWindow(k.Fused)
		aggr[i] = sc.AggressiveWindow(k.Fused)
	}
	p.ConsWidth = core.MostConstrainingWindow(cons).Width()
	p.AggrWidth = core.MostConstrainingWindow(aggr).Width()
	return p
}

// RunMultiCampaign simulates n seed-paired multi-vehicle episodes with
// the campaign options (worker bound, shared telemetry collector).
func RunMultiCampaign(cfg MultiConfig, agent core.MultiAgent, n int, o CampaignOptions) ([]Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: non-positive episode count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]Result, n)
	errs := make([]error, n)
	var done atomic.Int64
	scratches := NewWorkerScratches(o.Workers, n)
	ParallelForWorkersScoped(o.Workers, n, func(w, i int) {
		results[i], errs[i] = RunMulti(cfg, agent, o.EpisodeOptions(i, scratches[w]))
		if o.Collector != nil {
			o.Collector.OnProgress(done.Add(1), int64(n))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: episode %d: %w", i, err)
		}
	}
	return results, nil
}
