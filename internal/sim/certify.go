package sim

import (
	"fmt"

	"safeplan/internal/core"
	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
	"safeplan/internal/nn/ibp"
)

// defaultCertifyTol absorbs the IBP float64 rounding slack (library
// activations round faithfully but not provably monotonically — see
// internal/nn/ibp) plus the same round-off margin the guard's other range
// checks use.
const defaultCertifyTol = 1e-9

// CertifyConfig enables verified mode: every clean non-emergency planner
// command is cross-checked against the IBP-certified output range of the
// planner network over the *sound* estimate — "could any state consistent
// with what we soundly know have produced this command?".  Misses are
// counted (episode Result, guard stats, campaign stats, telemetry), not
// substituted: the monitor envelope remains the enforcement layer, the
// certified range is a diagnostic over-approximation.
//
// The propagator must be built (ibp.New) from the same network and
// normalizer the episode's agent actually runs, and Limits must match the
// planner's actuation clamp; otherwise misses measure the configuration
// mismatch, not a defect.  Supported agents are *core.PureNN and
// *core.Compound with an NN planner; NewStepper rejects anything else.
//
// Point evaluation stays on the hot path: a nil Certify skips every part
// of this machinery, and the episode bytes are identical with and without
// the field (the check only reads state the step already computes).
type CertifyConfig struct {
	// Prop is the interval propagator over the planner network.  A
	// Propagator is immutable and safe to share across campaign workers.
	Prop *ibp.Propagator

	// Limits is the actuation clamp the planner applies to the network
	// output (planner.NNPlanner clamps to its Limits).  Zero value: the
	// scenario's ego limits.
	Limits dynamics.Limits

	// Tol widens the certified range on both sides before flagging a
	// miss.  Zero or negative: defaultCertifyTol.
	Tol float64
}

// tol returns the effective miss tolerance.
func (c *CertifyConfig) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return defaultCertifyTol
}

// validate checks the verified-mode configuration against the scenario.
func (c *CertifyConfig) validate() error {
	if c.Prop == nil {
		return fmt.Errorf("sim: Certify.Prop is nil")
	}
	if c.Prop.InputDim() != leftturn.FeatureCount {
		return fmt.Errorf("sim: Certify.Prop wants %d inputs, planner features are %d",
			c.Prop.InputDim(), leftturn.FeatureCount)
	}
	if c.Prop.OutputDim() != 1 {
		return fmt.Errorf("sim: Certify.Prop has %d outputs, planners emit 1", c.Prop.OutputDim())
	}
	return nil
}

// certifier is the per-stepper verified-mode state: the propagator, the
// agent-shape facts the range computation needs, and the reusable
// buffers.  It lives inside the pooled Stepper; the shared CertifyConfig
// stays read-only.
type certifier struct {
	prop *ibp.Propagator
	lim  dynamics.Limits
	tol  float64

	// Agent shape, fixed at NewStepper: which window feeds κ_n, and the
	// monitor clamp to lift over the range (Compound only).  The monitor
	// is stateless (a pure value), so holding a copy reproduces the
	// agent's verdict exactly.
	aggressive bool
	clamp      bool
	monFused   bool
	mon        monitor.Monitor

	scr *ibp.Scratch
	box [leftturn.FeatureCount]interval.Interval
	out [1]interval.Interval

	// Per-step stash: the last computed range, read by the guard hook and
	// the telemetry probe without recomputation.
	lo, hi float64
	ok     bool
}

// init (re)configures the per-stepper verified-mode state for agent,
// rejecting agent types whose command the certified range does not
// describe.  The receiver's scratch is reused when present, so a pooled
// Stepper re-enters verified mode without allocating.
func (c *certifier) init(cfg *CertifyConfig, ego dynamics.Limits, agent core.Agent) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	c.prop, c.lim, c.tol = cfg.Prop, cfg.Limits, cfg.tol()
	if c.lim == (dynamics.Limits{}) {
		c.lim = ego
	}
	c.aggressive, c.clamp, c.monFused = false, false, false
	c.mon = monitor.Monitor{}
	switch ag := agent.(type) {
	case *core.PureNN:
		// κ_n alone over the conservative window; no monitor clamp.
	case *core.Compound:
		c.aggressive = ag.AggressiveSet
		c.clamp = true
		c.monFused = ag.MonitorOnFused
		c.mon = ag.Monitor
	default:
		return fmt.Errorf("sim: Certify does not support agent type %T", agent)
	}
	if c.scr == nil {
		c.scr = cfg.Prop.NewScratch()
	}
	return nil
}

// rangeAt computes the certified command range for the current step: the
// feature box over the sound estimate is propagated through the network,
// clamped by the actuation limits exactly as the planner clamps its
// output, and — for the compound agent — clipped by the recomputed
// monitor verdict (Outcome.Apply is a monotone clip, so containment is
// preserved).  ok=false when the executed command is not κ_n's to
// certify (the compound monitor demanded κ_e this step).
func (c *certifier) rangeAt(t float64, ego dynamics.State, sc leftturn.Config, know core.Knowledge) (lo, hi float64, ok bool) {
	if c.clamp {
		monEst := know.Sound
		if c.monFused {
			monEst = know.Fused
		}
		verdict := c.mon.Assess(ego, sc.ConservativeWindow(monEst))
		if verdict.Emergency {
			return 0, 0, false
		}
		defer func() {
			lo, hi = verdict.Apply(lo), verdict.Apply(hi)
		}()
	}
	sc.FeatureBoxInto(c.box[:], t, ego, know.Sound, c.aggressive)
	c.prop.PredictIntervalInto(c.out[:], c.box[:], c.scr)
	lo, hi = c.out[0].Lo, c.out[0].Hi
	if lo < c.lim.AMin {
		lo = c.lim.AMin
	}
	if lo > c.lim.AMax {
		lo = c.lim.AMax
	}
	if hi < c.lim.AMin {
		hi = c.lim.AMin
	}
	if hi > c.lim.AMax {
		hi = c.lim.AMax
	}
	return lo, hi, true
}
