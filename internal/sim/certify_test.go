package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"safeplan/internal/core"
	"safeplan/internal/dynamics"
	"safeplan/internal/guard"
	"safeplan/internal/nn"
	"safeplan/internal/nn/ibp"
	"safeplan/internal/planner"
)

// certifyPlanner builds a random NN planner (with a normalizer, the
// trained-model shape) and its matching propagator.
func certifyPlanner(t testing.TB, seed int64) (*planner.NNPlanner, *ibp.Propagator) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(rng, nn.Tanh{}, 5, 12, 12, 1)
	norm := &nn.Normalizer{Mean: make([]float64, 5), Std: make([]float64, 5)}
	for j := range norm.Mean {
		norm.Mean[j] = rng.Float64()*10 - 5
		norm.Std[j] = 1 + rng.Float64()*10
	}
	cfg := DefaultConfig()
	p := &planner.NNPlanner{Label: "certify-test", Net: net, Norm: norm, Limits: cfg.Scenario.Ego}
	prop, err := ibp.New(net, norm)
	if err != nil {
		t.Fatalf("ibp.New: %v", err)
	}
	return p, prop
}

// TestCertifyZeroMisses is the soundness property end to end: on clean
// episodes (no fault injection, no planner corruption) the executed κ_n
// command always lies inside the IBP certified range — for the pure
// agent, both compound designs, and the guarded path.
func TestCertifyZeroMisses(t *testing.T) {
	p, prop := certifyPlanner(t, 1)
	base := DefaultConfig()
	gcfg := guard.DefaultConfig(base.Scenario.Ego)
	cases := []struct {
		name  string
		agent core.Agent
		mut   func(*Config)
	}{
		{"pure", &core.PureNN{Cfg: base.Scenario, Planner: p}, nil},
		{"basic", core.NewBasic(base.Scenario, p), nil},
		{"ultimate", core.NewUltimate(base.Scenario, p), func(c *Config) { c.InfoFilter = true }},
		{"ultimate_guarded", core.NewUltimate(base.Scenario, p), func(c *Config) {
			c.InfoFilter = true
			c.Guard = &gcfg
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			cfg.Certify = &CertifyConfig{Prop: prop}
			var certified, misses int
			for seed := int64(0); seed < 25; seed++ {
				res, err := Run(cfg, tc.agent, Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				certified += res.CertifiedSteps
				misses += res.CertifiedRangeMisses
			}
			if certified == 0 {
				t.Fatal("no step was certified — the check never armed")
			}
			if misses != 0 {
				t.Fatalf("%d/%d certified steps missed the range on clean episodes", misses, certified)
			}
		})
	}
}

// TestCertifyDoesNotPerturbEpisode pins the opt-in contract: enabling
// verified mode changes only the certification counters, never the
// episode itself.
func TestCertifyDoesNotPerturbEpisode(t *testing.T) {
	p, prop := certifyPlanner(t, 2)
	agent := core.NewUltimate(DefaultConfig().Scenario, p)
	for seed := int64(0); seed < 20; seed++ {
		cfg := DefaultConfig()
		cfg.InfoFilter = true
		plain, err := Run(cfg, agent, Options{Seed: seed, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Certify = &CertifyConfig{Prop: prop}
		verified, err := Run(cfg, agent, Options{Seed: seed, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if verified.CertifiedSteps == 0 {
			t.Fatalf("seed %d: verified run certified nothing", seed)
		}
		verified.CertifiedSteps, verified.CertifiedRangeMisses = 0, 0
		verified.Guard.CertifiedSteps, verified.Guard.CertifiedRangeMisses = 0, 0
		// NaN != NaN would fail DeepEqual on the pre-measurement trace
		// rows; replace the sentinel (bit-identity checked separately).
		for _, tr := range [][]Sample{plain.Trace, verified.Trace} {
			for i := range tr {
				if math.IsNaN(tr[i].MeasP) {
					tr[i].MeasP = -1e9
				}
				if math.IsNaN(tr[i].MeasV) {
					tr[i].MeasV = -1e9
				}
			}
		}
		if !reflect.DeepEqual(plain, verified) {
			t.Fatalf("seed %d: result diverged:\nplain    %+v\nverified %+v", seed, plain, verified)
		}
	}
}

// badAgent is an agent type verified mode cannot describe.
type badAgent struct{}

func (badAgent) Name() string { return "bad" }
func (badAgent) Accel(float64, dynamics.State, core.Knowledge) (float64, bool) {
	return 0, false
}

// TestCertifyRejectsUnsupported pins the constructor-time rejections:
// unknown agent types and shape-mismatched propagators.
func TestCertifyRejectsUnsupported(t *testing.T) {
	_, prop := certifyPlanner(t, 3)
	cfg := DefaultConfig()
	cfg.Certify = &CertifyConfig{Prop: prop}
	if _, err := NewStepper(cfg, badAgent{}, Options{}); err == nil {
		t.Fatal("unknown agent type accepted")
	}
	cfg.Certify = &CertifyConfig{}
	if err := cfg.Validate(); err == nil {
		t.Fatal("nil propagator accepted")
	}
	rng := rand.New(rand.NewSource(4))
	wide, err := ibp.New(nn.NewMLP(rng, nn.Tanh{}, 3, 4, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Certify = &CertifyConfig{Prop: wide}
	if err := cfg.Validate(); err == nil {
		t.Fatal("3-input propagator accepted for 5-feature planners")
	}
}

// TestCertifyEpisodeAllocs is the verified-mode alloc budget wired into
// make alloc-gate: with a warm arena, enabling Certify must stay within
// the same per-episode budget as the plain path (the IBP scratch and the
// certifier live in the pooled Stepper).
func TestCertifyEpisodeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is not meaningful with -short")
	}
	p, prop := certifyPlanner(t, 5)
	cfg := DefaultConfig()
	cfg.InfoFilter = true
	cfg.Certify = &CertifyConfig{Prop: prop}
	agent := core.NewUltimate(cfg.Scenario, p)
	sh := NewScratch()
	opts := Options{Scratch: sh}
	if _, err := Run(cfg, agent, opts); err != nil { // warm the arena
		t.Fatal(err)
	}
	seed := int64(1)
	avg := testing.AllocsPerRun(10, func() {
		opts.Seed = seed
		seed++
		if _, err := Run(cfg, agent, opts); err != nil {
			t.Fatal(err)
		}
	})
	if avg > episodeAllocBudget {
		t.Errorf("verified episode allocates %.1f times (budget %d)", avg, episodeAllocBudget)
	}
}
