package sim

import (
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
)

// stepperAgent builds the canonical golden-config agent (ultimate
// compound, conservative κ_n).
func stepperAgent(cfg Config) core.Agent {
	return core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
}

// driveStepper runs a freshly constructed Stepper to termination one
// explicit Step at a time — the session-style loop — and finalizes it.
func driveStepper(t *testing.T, cfg Config, opts Options) Result {
	t.Helper()
	st, err := NewStepper(cfg, stepperAgent(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !st.Done() {
		if _, err := st.Step(StepInput{}); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 10*st.maxSteps {
			t.Fatalf("stepper did not terminate after %d steps", steps)
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStepperRunParity pins the ownership inversion: a Stepper driven
// step by step from the outside — a fresh engine per episode, with and
// without an arena, and a pooled engine reused across episodes — must be
// byte-identical to the closed Run loop across every golden config.
func TestStepperRunParity(t *testing.T) {
	reused := NewScratch()
	for _, ep := range goldenEpisodes() {
		t.Run(ep.Name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				opts := Options{Seed: seed}
				want, err := Run(ep.Cfg, stepperAgent(ep.Cfg), opts)
				if err != nil {
					t.Fatal(err)
				}
				ref := mustJSON(t, want)
				if got := mustJSON(t, driveStepper(t, ep.Cfg, opts)); got != ref {
					t.Fatalf("seed %d: stepper-driven episode diverged from Run\nrun:     %s\nstepper: %s", seed, ref, got)
				}
				pooled := opts
				pooled.Scratch = reused
				if got := mustJSON(t, driveStepper(t, ep.Cfg, pooled)); got != ref {
					t.Fatalf("seed %d: pooled stepper episode diverged from Run\nrun:    %s\npooled: %s", seed, ref, got)
				}
			}
		})
	}
}

// TestMultiStepperRunParity is the multi-vehicle twin.
func TestMultiStepperRunParity(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Comms = allocBenchConfig().Comms
	cfg.InfoFilter = true
	agent := consMultiAgent(cfg)
	reused := NewScratch()
	for seed := int64(0); seed < 10; seed++ {
		want, err := RunMulti(cfg, agent, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref := mustJSON(t, want)
		for name, opts := range map[string]Options{
			"fresh":  {Seed: seed},
			"pooled": {Seed: seed, Scratch: reused},
		} {
			st, err := NewMultiStepper(cfg, agent, opts)
			if err != nil {
				t.Fatal(err)
			}
			for !st.Done() {
				if _, err := st.Step(StepInput{}); err != nil {
					t.Fatal(err)
				}
			}
			res, err := st.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if got := mustJSON(t, res); got != ref {
				t.Fatalf("seed %d (%s): stepper-driven episode diverged from RunMulti\nrun:     %s\nstepper: %s", seed, name, ref, got)
			}
		}
	}
}

// TestStepperInterleaving pins that episode state is fully owned by the
// engine object: two concurrently live Steppers advanced in alternation
// produce exactly the episodes they produce when run in isolation.  The
// closed Run loop can never exercise this; a streaming server always
// does.
func TestStepperInterleaving(t *testing.T) {
	cfg := goldenEpisodes()[1].Cfg // delayed comms + info filter
	solo := func(seed int64) string {
		r, err := Run(cfg, stepperAgent(cfg), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, r)
	}
	wantA, wantB := solo(3), solo(4)

	// Interleaved: distinct arenas (a shared arena is per-episode by
	// contract), strictly alternating steps.
	a, err := NewStepper(cfg, stepperAgent(cfg), Options{Seed: 3, Scratch: NewScratch()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStepper(cfg, stepperAgent(cfg), Options{Seed: 4, Scratch: NewScratch()})
	if err != nil {
		t.Fatal(err)
	}
	for !a.Done() || !b.Done() {
		if !a.Done() {
			if _, err := a.Step(StepInput{}); err != nil {
				t.Fatal(err)
			}
		}
		if !b.Done() {
			if _, err := b.Step(StepInput{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ra, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, ra); got != wantA {
		t.Fatalf("interleaved episode A diverged from solo run\nsolo:        %s\ninterleaved: %s", wantA, got)
	}
	if got := mustJSON(t, rb); got != wantB {
		t.Fatalf("interleaved episode B diverged from solo run\nsolo:        %s\ninterleaved: %s", wantB, got)
	}
}

// TestStepperTerminalContract pins the session-facing edge semantics:
// steps past the end return the terminal outcome without perturbing the
// result, Finish is idempotent, and a mid-episode Finish yields the
// partial result (the cancellation path).
func TestStepperTerminalContract(t *testing.T) {
	cfg := goldenEpisodes()[0].Cfg
	st, err := NewStepper(cfg, stepperAgent(cfg), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var last StepOutcome
	for !st.Done() {
		out, err := st.Step(StepInput{})
		if err != nil {
			t.Fatal(err)
		}
		last = out
	}
	if !last.Done {
		t.Fatal("terminal step did not report Done")
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ref := mustJSON(t, res)

	over, err := st.Step(StepInput{})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Done || over.Collided != last.Collided || over.Reached != last.Reached {
		t.Fatalf("past-the-end step changed the terminal outcome: %+v vs %+v", over, last)
	}
	again, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, again); got != ref {
		t.Fatalf("Finish is not idempotent\nfirst:  %s\nsecond: %s", ref, got)
	}

	// Cancellation: Finish mid-episode returns the partial bookkeeping.
	st2, err := NewStepper(cfg, stepperAgent(cfg), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := st2.Step(StepInput{}); err != nil {
			t.Fatal(err)
		}
	}
	partial, err := st2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if partial.Steps != 7 || partial.Reached || partial.Collided {
		t.Fatalf("mid-episode Finish: got %d steps (reached=%v collided=%v), want 7 open steps",
			partial.Steps, partial.Reached, partial.Collided)
	}
}

// TestStepperInjectedEventParity pins the StepInput contract boundary: an
// explicitly empty input is the identity (same bytes as Run), while an
// injected stale message must flow into the fusion filter and change the
// episode — proof the injection path is live, not silently dropped.
func TestStepperInjectedEventParity(t *testing.T) {
	cfg := goldenEpisodes()[2].Cfg // lost comms: injected V2V is the only channel input
	opts := Options{Seed: 9}
	want, err := Run(cfg, stepperAgent(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := mustJSON(t, want)

	st, err := NewStepper(cfg, stepperAgent(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		// Empty non-nil slices must behave exactly like the zero input.
		if _, err := st.Step(StepInput{Messages: []comms.Message{}, Readings: []sensor.Reading{}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res); got != ref {
		t.Fatalf("empty injected slices diverged from Run\nrun:      %s\ninjected: %s", ref, got)
	}

	// A genuinely informative injected message must perturb the filter
	// state (the t=0 prior already equals the true initial state, so the
	// message has to carry news: a mid-episode report the lost channel
	// could never deliver).
	st2, err := NewStepper(cfg, stepperAgent(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	for !st2.Done() {
		in := StepInput{}
		if step == 10 {
			in.Messages = []comms.Message{{
				Sender: 1, T: float64(step) * cfg.Scenario.DtC,
				P: cfg.Scenario.OncomingInit.P + cfg.Scenario.OncomingInit.V*float64(step)*cfg.Scenario.DtC,
				V: cfg.Scenario.OncomingInit.V,
			}}
		}
		if _, err := st2.Step(in); err != nil {
			t.Fatal(err)
		}
		step++
	}
	res2, err := st2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res2); got == ref {
		t.Fatal("injected V2V message left the episode byte-identical; injection path appears dead")
	}
}
