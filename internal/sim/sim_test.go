package sim

import (
	"math"
	"testing"
	"testing/quick"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
)

func baseConfig() Config { return DefaultConfig() }

func consAgent(cfg Config) core.Agent {
	return &core.PureNN{Cfg: cfg.Scenario, Planner: planner.ConservativeExpert(cfg.Scenario)}
}

func TestValidateRejects(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"dtm":    func(c *Config) { c.DtM = 0 },
		"dts":    func(c *Config) { c.DtS = -1 },
		"hor":    func(c *Config) { c.Horizon = -1 },
		"spread": func(c *Config) { c.OncomingStartSpread = -1 },
		"speed":  func(c *Config) { c.OncomingSpeedMin = 10; c.OncomingSpeedMax = 5 },
		"comms":  func(c *Config) { c.Comms.DropProb = 2 },
		"sensor": func(c *Config) { c.Sensor.DeltaP = -1 },
	} {
		t.Run(name, func(t *testing.T) {
			c := baseConfig()
			mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestRunConservativeReachesSafely(t *testing.T) {
	cfg := baseConfig()
	r, err := Run(cfg, consAgent(cfg), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reached || r.Collided {
		t.Fatalf("conservative episode: %+v", r)
	}
	if r.ReachTime <= 4 || r.ReachTime >= 30 {
		t.Fatalf("implausible reach time %v", r.ReachTime)
	}
	if r.Eta <= 0 || math.Abs(r.Eta-1/r.ReachTime) > 1e-12 {
		t.Fatalf("η = %v for reach time %v", r.Eta, r.ReachTime)
	}
	if r.FusedIntervalMisses != 0 {
		t.Fatalf("fused estimate missed %d times", r.FusedIntervalMisses)
	}
	if r.SoundViolations != 0 {
		t.Fatalf("sound estimate violated %d times", r.SoundViolations)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	cfg := baseConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	a, err := Run(cfg, consAgent(cfg), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, consAgent(cfg), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.ReachTime != b.ReachTime || a.Steps != b.Steps || a.Eta != b.Eta {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	cfg := baseConfig()
	a, _ := Run(cfg, consAgent(cfg), Options{Seed: 1})
	b, _ := Run(cfg, consAgent(cfg), Options{Seed: 2})
	if a.ReachTime == b.ReachTime && a.Steps == b.Steps {
		t.Fatal("different seeds produced identical episodes (suspicious)")
	}
}

func TestTraceRecorded(t *testing.T) {
	cfg := baseConfig()
	r, err := Run(cfg, consAgent(cfg), Options{Seed: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != r.Steps {
		t.Fatalf("trace length %d != steps %d", len(r.Trace), r.Steps)
	}
	// Time stamps advance by DtC; ego position is monotone.
	for i := 1; i < len(r.Trace); i++ {
		if r.Trace[i].T <= r.Trace[i-1].T {
			t.Fatal("trace time not increasing")
		}
		if r.Trace[i].EgoP < r.Trace[i-1].EgoP-1e-9 {
			t.Fatal("ego moved backwards")
		}
	}
	// Sound intervals in the trace contain the truth.
	for _, s := range r.Trace {
		if s.OncP < s.SoundPLo-1e-6 || s.OncP > s.SoundPHi+1e-6 {
			t.Fatalf("sound interval [%v,%v] misses truth %v", s.SoundPLo, s.SoundPHi, s.OncP)
		}
	}
}

func TestNoTraceByDefault(t *testing.T) {
	cfg := baseConfig()
	r, _ := Run(cfg, consAgent(cfg), Options{Seed: 3})
	if r.Trace != nil {
		t.Fatal("trace recorded without Options.Trace")
	}
}

func TestPureAggressiveSometimesCollides(t *testing.T) {
	cfg := baseConfig()
	agent := &core.PureNN{Cfg: cfg.Scenario, Planner: planner.AggressiveExpert(cfg.Scenario)}
	collided := 0
	for seed := int64(0); seed < 60; seed++ {
		r, err := Run(cfg, agent, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Collided {
			collided++
			if r.Eta != -1 {
				t.Fatalf("collided episode η = %v, want -1", r.Eta)
			}
		}
	}
	if collided == 0 {
		t.Fatal("pure aggressive planner never collided — workload too benign")
	}
}

func TestCompoundAlwaysSafe(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"none", func(c *Config) {}},
		{"delayed", func(c *Config) { c.Comms = comms.Delayed(0.25, 0.5) }},
		{"lost", func(c *Config) { c.Comms = comms.Lost(); c.Sensor = sensor.Uniform(3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			tc.mut(&cfg)
			cfg.InfoFilter = true
			agent := core.NewUltimate(cfg.Scenario, planner.AggressiveExpert(cfg.Scenario))
			for seed := int64(0); seed < 40; seed++ {
				r, err := Run(cfg, agent, Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if r.Collided {
					t.Fatalf("seed %d: compound planner collided", seed)
				}
			}
		})
	}
}

func TestLostCommsStillWorks(t *testing.T) {
	cfg := baseConfig()
	cfg.Comms = comms.Lost()
	cfg.Sensor = sensor.Uniform(2)
	r, err := Run(cfg, consAgent(cfg), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Collided {
		t.Fatal("conservative expert collided under lost comms")
	}
	if !r.Reached {
		t.Fatal("episode timed out under lost comms")
	}
}

func TestEmergencyFrequency(t *testing.T) {
	var r Result
	if r.EmergencyFrequency() != 0 {
		t.Fatal("zero-step frequency should be 0")
	}
	r = Result{Steps: 200, EmergencySteps: 50}
	if r.EmergencyFrequency() != 0.25 {
		t.Fatalf("frequency = %v", r.EmergencyFrequency())
	}
}

func TestRunCampaignPairsSeeds(t *testing.T) {
	cfg := baseConfig()
	rs, err := RunCampaign(cfg, consAgent(cfg), 8, CampaignOptions{BaseSeed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("got %d results", len(rs))
	}
	// Each result must equal an individual run with the same seed.
	for i, r := range rs {
		single, err := Run(cfg, consAgent(cfg), Options{Seed: 100 + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if r.ReachTime != single.ReachTime || r.Steps != single.Steps {
			t.Fatalf("episode %d differs from single run", i)
		}
	}
}

func TestRunCampaignRejects(t *testing.T) {
	cfg := baseConfig()
	if _, err := RunCampaign(cfg, consAgent(cfg), 0, CampaignOptions{BaseSeed: 1}); err == nil {
		t.Fatal("zero episodes accepted")
	}
	cfg.DtM = 0
	if _, err := RunCampaign(cfg, consAgent(cfg), 1, CampaignOptions{BaseSeed: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// Property: under arbitrary disturbance settings, the ultimate compound
// planner never collides and the sound estimate never misses the truth.
func TestQuickEndToEndSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed int64) bool {
		cfg := baseConfig()
		rng := seed
		switch rng % 3 {
		case 1:
			cfg.Comms = comms.Delayed(0.25, float64(seed%20)*0.05)
		case 2:
			cfg.Comms = comms.Lost()
			cfg.Sensor = sensor.Uniform(1 + float64(seed%20)*0.2)
		}
		cfg.InfoFilter = seed%2 == 0
		var agent core.Agent
		if cfg.InfoFilter {
			agent = core.NewUltimate(cfg.Scenario, planner.AggressiveExpert(cfg.Scenario))
		} else {
			agent = core.NewBasic(cfg.Scenario, planner.AggressiveExpert(cfg.Scenario))
		}
		r, err := Run(cfg, agent, Options{Seed: seed})
		if err != nil {
			return false
		}
		return !r.Collided
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
