package sim

import (
	"testing"

	"safeplan/internal/core"
	"safeplan/internal/leftturn"
	"safeplan/internal/planner"
	"safeplan/internal/telemetry"
)

// TestRunCampaignCollector attaches a live collector to a 64-episode
// campaign (exercised with -race in CI via `make check`) and cross-checks
// the collector's counters against the returned results.
func TestRunCampaignCollector(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InfoFilter = true
	sc := leftturn.DefaultConfig()
	agent := core.NewUltimate(sc, planner.ConservativeExpert(sc))
	m := telemetry.NewMetrics()
	agent.SetCollector(m)

	const n = 64
	rs, err := RunCampaign(cfg, agent, n, CampaignOptions{Options: Options{Collector: m}, BaseSeed: 100})
	if err != nil {
		t.Fatal(err)
	}
	var steps, emergency, reached int
	for _, r := range rs {
		steps += r.Steps
		emergency += r.EmergencySteps
		if r.Reached {
			reached++
		}
	}
	s := m.Snapshot()
	if s.Episodes != n {
		t.Errorf("episodes = %d, want %d", s.Episodes, n)
	}
	if s.Steps != int64(steps) {
		t.Errorf("steps = %d, want %d", s.Steps, steps)
	}
	if s.EmergencySteps != int64(emergency) {
		t.Errorf("emergency steps = %d, want %d", s.EmergencySteps, emergency)
	}
	if s.Reached != int64(reached) {
		t.Errorf("reached = %d, want %d", s.Reached, reached)
	}
	if s.ProgressDone != n || s.ProgressTotal != n {
		t.Errorf("progress = %d/%d, want %d/%d", s.ProgressDone, s.ProgressTotal, n, n)
	}
	// The compound agent reports exactly one monitor decision per step.
	var decisions int64
	for _, c := range s.MonitorReasons {
		decisions += c
	}
	if decisions != int64(steps) {
		t.Errorf("monitor decisions = %d, want %d", decisions, steps)
	}
	if s.SoundWidth.Count != int64(steps) || s.FusedWidth.Count != int64(steps) {
		t.Errorf("width observations = %d/%d, want %d", s.SoundWidth.Count, s.FusedWidth.Count, steps)
	}
	if s.PlannerLatency.Count == 0 {
		t.Error("no planner latency recorded")
	}
}

func TestRunCampaignRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	sc := leftturn.DefaultConfig()
	agent := &core.PureNN{Cfg: sc, Planner: planner.ConservativeExpert(sc)}
	if _, err := RunCampaign(cfg, agent, 4, CampaignOptions{Workers: -1}); err == nil {
		t.Fatal("negative worker count accepted")
	}
}

func TestRunCampaignWorkerBound(t *testing.T) {
	cfg := DefaultConfig()
	sc := leftturn.DefaultConfig()
	agent := &core.PureNN{Cfg: sc, Planner: planner.ConservativeExpert(sc)}
	// Sequential (Workers: 1) must agree with the parallel default —
	// episodes are seed-deterministic and index-disjoint.
	seq, err := RunCampaign(cfg, agent, 8, CampaignOptions{BaseSeed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCampaign(cfg, agent, 8, CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Eta != par[i].Eta || seq[i].Steps != par[i].Steps {
			t.Fatalf("episode %d differs across worker counts: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestRunMultiCampaignCollector(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Vehicles = 2
	cfg.InfoFilter = true
	sc := leftturn.DefaultConfig()
	agent := core.NewMultiUltimate(sc, planner.ConservativeExpert(sc))
	m := telemetry.NewMetrics()
	agent.SetCollector(m)

	rs, err := RunMultiCampaign(cfg, agent, 8, CampaignOptions{Options: Options{Collector: m}, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var steps int
	for _, r := range rs {
		steps += r.Steps
	}
	s := m.Snapshot()
	if s.Episodes != 8 {
		t.Errorf("episodes = %d", s.Episodes)
	}
	if s.Steps != int64(steps) {
		t.Errorf("steps = %d, want %d", s.Steps, steps)
	}
	var decisions int64
	for _, c := range s.MonitorReasons {
		decisions += c
	}
	if decisions != int64(steps) {
		t.Errorf("monitor decisions = %d, want %d", decisions, steps)
	}
}
