package sim

import (
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/planner"
)

// fuzzReader decodes a fuzz byte stream into bounded parameters.  Every
// draw is valid by construction, so the fuzzer spends its budget on
// behaviour, not on Validate rejections.
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

// unit returns a value in [0, 1].
func (r *fuzzReader) unit() float64 { return float64(r.next()) / 255 }

// rng returns a value in [lo, hi].
func (r *fuzzReader) rng(lo, hi float64) float64 { return lo + r.unit()*(hi-lo) }

// decodeModel builds an arbitrary (but always valid) channel disturbance.
func decodeModel(r *fuzzReader) disturb.Model {
	switch r.next() % 6 {
	case 0:
		return nil // legacy perfect channel
	case 1:
		return disturb.IID{DropProb: r.unit(), Delay: r.rng(0, 0.5)}
	case 2:
		return disturb.GilbertElliott{
			PGoodBad: r.unit(),
			PBadGood: r.rng(0.02, 1),
			DropGood: r.rng(0, 0.3),
			DropBad:  r.unit(),
			Delay:    r.rng(0, 0.3),
			StartBad: r.next()%2 == 0,
		}
	case 3:
		return disturb.Jitter{
			Base:     r.rng(0, 0.2),
			Spread:   r.rng(0, 0.8),
			TailProb: r.unit(),
			TailMean: r.rng(0, 1),
			DropProb: r.unit(),
		}
	case 4:
		lo := r.rng(0.1, 1)
		return disturb.Replay{
			Inner:    disturb.IID{DropProb: r.rng(0, 0.6), Delay: r.rng(0, 0.3)},
			Prob:     r.unit(),
			ExtraMin: lo,
			ExtraMax: lo + r.unit(),
		}
	default:
		// A scripted schedule with strictly increasing phase starts,
		// including a mid-episode blackout.
		s1 := r.rng(0, 4)
		s2 := s1 + r.rng(0.5, 3)
		s3 := s2 + r.rng(0.5, 3)
		return disturb.Schedule{Phases: []disturb.Phase{
			{Start: s1, Model: disturb.IID{DropProb: r.unit(), Delay: r.rng(0, 0.3)}},
			{Start: s2, Model: disturb.Blackout{}},
			{Start: s3, Model: disturb.Jitter{Base: r.rng(0, 0.2), Spread: r.rng(0, 0.5)}},
		}}
	}
}

// decodeSensorModel builds an arbitrary valid sensing disturbance.
func decodeSensorModel(r *fuzzReader) disturb.SensorModel {
	switch r.next() % 4 {
	case 0:
		return nil
	case 1:
		return disturb.BiasDrift{Rate: r.unit(), Max: r.unit()}
	case 2:
		return disturb.BiasDrift{Max: r.unit(), Period: r.rng(1, 20)}
	default:
		return disturb.SensorDropout{
			PGoodBad: r.rng(0, 0.3),
			PBadGood: r.rng(0.05, 1),
			DropBad:  r.unit(),
		}
	}
}

// decodeScript maps the remaining bytes onto a behavioural acceleration
// sequence inside [aMin, aMax] (one control step per byte).
func decodeScript(r *fuzzReader, aMin, aMax float64, maxLen int) []float64 {
	n := len(r.data) - r.i
	if n > maxLen {
		n = maxLen
	}
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.rng(aMin, aMax)
	}
	return out
}

// FuzzCompoundSafety decodes arbitrary bytes into a disturbance schedule
// plus a scripted oncoming behaviour and asserts the paper's guarantees via
// the shared invariant checkers: the compound planner never collides (η ≥
// 0), the sound estimate always contains the true oncoming state, κ_e
// preserves the Eq. 4 one-step slack, and the agent hands control to κ_e
// exactly when the monitor's X_b test says so — no matter what the channel,
// the sensors, or the other vehicle do.
func FuzzCompoundSafety(f *testing.F) {
	// Seed corpus: the paper's Table I/II settings (none / delayed with
	// Δt_d = 0.25, p_d = 0.5 / lost), a burst channel, and a blackout
	// schedule, each against conservative and aggressive κ_n.
	f.Add([]byte{}, int64(1))                                      // perfect channel, conservative
	f.Add([]byte{1, 127, 127, 1, 0, 1}, int64(42))                 // ≈ "messages delayed": IID p_d≈0.5, Δt_d≈0.25
	f.Add([]byte{1, 255, 0, 0, 1, 3}, int64(7))                    // ≈ "messages lost": drop everything
	f.Add([]byte{2, 20, 30, 0, 255, 60, 0, 3, 0, 9}, int64(99))    // bursty Gilbert–Elliott
	f.Add([]byte{5, 100, 120, 50, 80, 80, 30, 60, 2, 1}, int64(3)) // scheduled blackout
	f.Add([]byte{3, 50, 200, 100, 100, 150, 1, 200, 180, 1, 60, 200, 0, 255, 128, 64}, int64(5))

	sc := DefaultConfig().Scenario
	agents := []core.Agent{
		core.NewBasic(sc, planner.ConservativeExpert(sc)),
		core.NewBasic(sc, planner.AggressiveExpert(sc)),
	}
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		r := &fuzzReader{data: data}
		cfg := DefaultConfig()
		if m := decodeModel(r); m != nil {
			cfg.Comms = comms.Disturbed(m)
		}
		cfg.SensorDisturb = decodeSensorModel(r)
		agent := agents[int(r.next())%len(agents)]
		lim := cfg.Scenario.Oncoming
		cfg.OncomingScript = decodeScript(r, lim.AMin, lim.AMax, 400)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoder produced invalid config: %v", err)
		}
		// The full invariant set — the same checkers the campaign engine and
		// the unit tests run (see invariant.go) — enforced on every step.
		_, err := Run(cfg, agent, Options{Seed: seed, Invariants: []Invariant{
			NoCollision{},
			SoundEstimate{},
			EmergencyOneStep{Cfg: cfg.Scenario},
			NewMonitorConsistency(cfg.Scenario),
		}})
		if err != nil {
			t.Fatalf("invariant violated under %+v: %v", cfg.Comms, err)
		}
	})
}
