package sim

import (
	"encoding/json"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/planner"
	"safeplan/internal/telemetry"
)

// The allocation gate: with a warmed scratch arena, an episode's steady
// state must not allocate.  testing.AllocsPerRun reports the average
// mallocs per run, so any per-step or per-episode allocation that sneaks
// back into the hot path fails this test with its count.
//
// The budget is a small constant, not zero: construction paths that run
// once per *process* (lazy pool growth on the first episode) are warmed
// up before measuring, but the runtime itself occasionally charges a
// stray allocation (timer bookkeeping, stack growth) to the measured
// function.  Anything above the budget is a real regression — the
// pre-arena baseline was 25–70 allocations per episode.
const episodeAllocBudget = 2

func TestEpisodeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is not meaningful with -short")
	}
	cfg := allocBenchConfig()
	agent := consAgent(cfg)
	sh := NewScratch()
	// Warm the arena: the first episode grows every pool to steady state.
	if _, err := Run(cfg, agent, Options{Seed: 1, Scratch: sh}); err != nil {
		t.Fatal(err)
	}
	seed := int64(0)
	avg := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := Run(cfg, agent, Options{Seed: seed, Scratch: sh}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > episodeAllocBudget {
		t.Errorf("left-turn episode allocates %.1f times with a warm scratch (budget %d)", avg, episodeAllocBudget)
	}
}

func TestMultiEpisodeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is not meaningful with -short")
	}
	cfg := DefaultMultiConfig()
	cfg.Comms = allocBenchConfig().Comms
	cfg.InfoFilter = true
	agent := consMultiAgent(cfg)
	sh := NewScratch()
	if _, err := RunMulti(cfg, agent, Options{Seed: 1, Scratch: sh}); err != nil {
		t.Fatal(err)
	}
	seed := int64(0)
	avg := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := RunMulti(cfg, agent, Options{Seed: seed, Scratch: sh}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > episodeAllocBudget {
		t.Errorf("multi-vehicle episode allocates %.1f times with a warm scratch (budget %d)", avg, episodeAllocBudget)
	}
}

// TestMultiEpisodeAllocsWithCollector is the regression test for the
// collector-attached probe path: multiStepProbe used to allocate two
// fresh window slices per control step, so attaching telemetry broke the
// zero-alloc contract the bare gate above cannot see.  The window scratch
// now lives in the arena, and telemetry.Metrics itself is allocation-free
// (atomics and histogram bucket adds), so the same budget applies.
func TestMultiEpisodeAllocsWithCollector(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is not meaningful with -short")
	}
	cfg := DefaultMultiConfig()
	cfg.Comms = allocBenchConfig().Comms
	cfg.InfoFilter = true
	agent := consMultiAgent(cfg)
	coll := telemetry.NewMetrics()
	sh := NewScratch()
	if _, err := RunMulti(cfg, agent, Options{Seed: 1, Scratch: sh, Collector: coll}); err != nil {
		t.Fatal(err)
	}
	seed := int64(0)
	avg := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := RunMulti(cfg, agent, Options{Seed: seed, Scratch: sh, Collector: coll}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > episodeAllocBudget {
		t.Errorf("collector-attached multi-vehicle episode allocates %.1f times with a warm scratch (budget %d)", avg, episodeAllocBudget)
	}
}

// TestScratchParity is the bit-identity half of the gate: the same seed
// must produce the same Result with a fresh arena, a reused arena, and no
// arena at all.  Marshalling to JSON compares every exported field bit
// for bit (floats round-trip exactly).
func TestScratchParity(t *testing.T) {
	cfg := allocBenchConfig()
	agent := consAgent(cfg)
	reused := NewScratch()
	for seed := int64(0); seed < 25; seed++ {
		bare, err := Run(cfg, agent, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(cfg, agent, Options{Seed: seed, Scratch: NewScratch()})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := Run(cfg, agent, Options{Seed: seed, Scratch: reused})
		if err != nil {
			t.Fatal(err)
		}
		b, f, p := mustJSON(t, bare), mustJSON(t, fresh), mustJSON(t, pooled)
		if b != f {
			t.Fatalf("seed %d: fresh-scratch episode diverged\nbare:  %s\nfresh: %s", seed, b, f)
		}
		if b != p {
			t.Fatalf("seed %d: reused-scratch episode diverged\nbare:   %s\npooled: %s", seed, b, p)
		}
	}
}

// TestScratchParityMulti repeats the parity check on the multi-vehicle
// runner, whose arena use is heaviest (per-track pools).
func TestScratchParityMulti(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Comms = allocBenchConfig().Comms
	cfg.InfoFilter = true
	agent := consMultiAgent(cfg)
	reused := NewScratch()
	for seed := int64(0); seed < 15; seed++ {
		bare, err := RunMulti(cfg, agent, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := RunMulti(cfg, agent, Options{Seed: seed, Scratch: reused})
		if err != nil {
			t.Fatal(err)
		}
		if b, p := mustJSON(t, bare), mustJSON(t, pooled); b != p {
			t.Fatalf("seed %d: reused-scratch episode diverged\nbare:   %s\npooled: %s", seed, b, p)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// allocBenchConfig is the delayed-comms + information-filter stack — the
// heaviest steady state (Kalman replay, fusion, compound monitor).
func allocBenchConfig() Config {
	cfg := DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	return cfg
}

func consMultiAgent(cfg MultiConfig) core.MultiAgent {
	return core.NewMultiUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
}
