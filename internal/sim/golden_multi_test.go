package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/planner"
)

// goldenMultiRow is one seed's episode outcome in the multi-vehicle golden
// regression.  RunMulti has no per-step trace, so the regression pins the
// per-seed *results* instead: every field is part of the closed-loop RNG
// contract, and any drift — stream construction order, filter changes,
// spacing sampling — shows up as a byte diff.
type goldenMultiRow struct {
	Seed           int64   `json:"seed"`
	Reached        bool    `json:"reached"`
	Collided       bool    `json:"collided"`
	Steps          int     `json:"steps"`
	EmergencySteps int     `json:"emergency_steps"`
	ReachTime      float64 `json:"reach_time"`
	Eta            float64 `json:"eta"`
}

// TestGoldenMulti replays a canonical multi-vehicle scenario (three-vehicle
// stream, delayed comms, ultimate design) over a fixed seed range and
// byte-compares the outcomes against the blessed file.  Run with -update to
// re-bless after an intentional behaviour change.
func TestGoldenMulti(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	sc := cfg.Scenario
	agent := core.NewMultiUltimate(sc, planner.ConservativeExpert(sc))

	rows := make([]goldenMultiRow, 0, 20)
	for seed := int64(1); seed <= 20; seed++ {
		res, err := RunMulti(cfg, agent, Options{
			Seed: seed,
			// The goldens double as an invariant regression: the canonical
			// episodes must pass the full checker set forever.
			Invariants: []Invariant{NoCollision{}, SoundEstimate{}, EmergencyOneStep{Cfg: sc}},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rows = append(rows, goldenMultiRow{
			Seed:           seed,
			Reached:        res.Reached,
			Collided:       res.Collided,
			Steps:          res.Steps,
			EmergencySteps: res.EmergencySteps,
			ReachTime:      res.ReachTime,
			Eta:            res.Eta,
		})
	}
	got, err := json.MarshalIndent(rows, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_multi.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sim -run TestGoldenMulti -update` to bless)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("multi-vehicle golden drifted:\n got: %s\nre-bless with -update only if the change is intentional", got)
	}
}
