package sim

import (
	"fmt"
	"runtime"
	"sync"

	"safeplan/internal/core"
)

// RunMany simulates n episodes of agent under cfg with master seeds
// baseSeed, baseSeed+1, …, baseSeed+n−1, fanning the work across CPU
// cores.  Results are returned in seed order so campaigns of different
// agents over the same seeds are pairwise comparable (same C1 behaviour,
// same channel and sensor noise).
//
// The agent must be stateless across episodes (every agent in this
// repository is); per-episode state (filters, channels, drivers) is
// created inside Run.
func RunMany(cfg Config, agent core.Agent, n int, baseSeed int64) ([]Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: non-positive episode count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]Result, n)
	errs := make([]error, n)
	ParallelFor(n, func(i int) {
		results[i], errs[i] = Run(cfg, agent, Options{Seed: baseSeed + int64(i)})
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: episode %d: %w", i, err)
		}
	}
	return results, nil
}

// ParallelFor runs f(0) … f(n−1) across GOMAXPROCS workers and waits for
// completion.  f must only write to index-disjoint state.  It is exported
// for the sibling scenario packages' campaign runners.
func ParallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
