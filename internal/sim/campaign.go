package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"safeplan/internal/core"
)

// CampaignOptions selects campaign-level behaviour shared by the
// left-turn, multi-vehicle, and car-following campaign runners.  It
// embeds the per-episode Options, which the runners replicate for every
// episode: the Collector and Invariants fields apply to each episode
// (shared across workers, so both must be concurrency-safe/stateless —
// which telemetry.Metrics and every shipped Invariant are), while the
// embedded Seed, Trace, and Scratch fields are ignored — the campaign
// seeds episode i with BaseSeed+i, never records traces, and manages one
// arena per worker itself.
type CampaignOptions struct {
	Options

	// BaseSeed seeds episode i with BaseSeed+i.
	BaseSeed int64
	// Workers bounds the number of concurrent episode goroutines; 0
	// selects GOMAXPROCS.  Negative counts are rejected by the runners.
	Workers int
}

func (o CampaignOptions) validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("sim: worker count %d must be >= 1 (0 selects GOMAXPROCS)", o.Workers)
	}
	return nil
}

// EpisodeOptions derives episode i's Options from the
// embedded episode options: per-campaign seed pairing and per-worker
// arenas override the corresponding embedded fields, and Trace stays off
// (a campaign's worth of traces would defeat the allocation-free hot
// path; run a single traced episode instead).  Exported for the sibling
// scenario packages' campaign runners.
func (o CampaignOptions) EpisodeOptions(i int, scratch *Scratch) Options {
	epo := o.Options
	epo.Seed = o.BaseSeed + int64(i)
	epo.Trace = false
	epo.Scratch = scratch
	return epo
}

// RunCampaign simulates n episodes of agent under cfg with master seeds
// BaseSeed, BaseSeed+1, …, BaseSeed+n−1, fanning the work across
// o.Workers goroutines.  Results are returned in seed order so campaigns
// of different agents over the same seeds are pairwise comparable (same
// C1 behaviour, same channel and sensor noise).
//
// The agent must be stateless across episodes (every agent in this
// repository is); per-episode state (filters, channels, drivers) is
// created inside Run.
func RunCampaign(cfg Config, agent core.Agent, n int, o CampaignOptions) ([]Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: non-positive episode count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]Result, n)
	errs := make([]error, n)
	var done atomic.Int64
	scratches := NewWorkerScratches(o.Workers, n)
	ParallelForWorkersScoped(o.Workers, n, func(w, i int) {
		results[i], errs[i] = Run(cfg, agent, o.EpisodeOptions(i, scratches[w]))
		if o.Collector != nil {
			o.Collector.OnProgress(done.Add(1), int64(n))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: episode %d: %w", i, err)
		}
	}
	return results, nil
}

// ParallelForWorkers runs f(0) … f(n−1) across the given number of
// goroutines (0 selects GOMAXPROCS) and waits for completion.  f must
// only write to index-disjoint state.
func ParallelForWorkers(workers, n int, f func(i int)) {
	ParallelForWorkersScoped(workers, n, func(_, i int) { f(i) })
}

// ResolveWorkers applies the shared worker-count convention: 0 selects
// GOMAXPROCS, and the count never exceeds the task count.
func ResolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// NewWorkerScratches builds one episode arena per effective worker under
// the ResolveWorkers convention, for campaign runners that index them by
// the worker argument of ParallelForWorkersScoped.  Reusing an arena
// across a worker's episodes cannot perturb results — episodes are
// seed-deterministic with or without a scratch (the parity tests assert
// bit identity).
func NewWorkerScratches(workers, n int) []*Scratch {
	out := make([]*Scratch, ResolveWorkers(workers, n))
	for i := range out {
		out[i] = NewScratch()
	}
	return out
}

// ParallelForWorkersScoped is ParallelForWorkers with the worker index
// (0 … effective workers−1) passed alongside the task index, so callers
// can keep per-worker scratch state without locking.
func ParallelForWorkersScoped(workers, n int, f func(worker, i int)) {
	workers = ResolveWorkers(workers, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				f(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ParallelFor runs f(0) … f(n−1) across GOMAXPROCS workers and waits for
// completion.  It is exported for the sibling scenario packages' campaign
// runners.
func ParallelFor(n int, f func(i int)) { ParallelForWorkers(0, n, f) }
