package sim

import (
	"errors"
	"math"
	"testing"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/dynamics"
	"safeplan/internal/leftturn"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
)

// brokenEmergency wraps a compound agent and sabotages the emergency
// planner: whenever the monitor hands control to κ_e, it commands full
// throttle instead of the stopping command.  Test-only — it exists to prove
// the EmergencyOneStep checker actually detects a broken κ_e rather than
// vacuously passing.
type brokenEmergency struct {
	inner core.Agent
	cfg   leftturn.Config
}

func (b brokenEmergency) Name() string { return "broken-emergency:" + b.inner.Name() }

func (b brokenEmergency) Accel(t float64, ego dynamics.State, k core.Knowledge) (float64, bool) {
	a, emergency := b.inner.Accel(t, ego, k)
	if emergency {
		return b.cfg.Ego.AMax, true
	}
	return a, emergency
}

// invariantConfig is a communication setting harsh enough that the monitor
// regularly selects κ_e, so the emergency checkers get exercised.
func invariantConfig() Config {
	cfg := DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	return cfg
}

func fullInvariants(sc leftturn.Config) []Invariant {
	return []Invariant{
		NoCollision{},
		SoundEstimate{},
		EmergencyOneStep{Cfg: sc},
		NewMonitorConsistency(sc),
	}
}

// TestBrokenEmergencyTripsOneStepChecker is the checker's acceptance test:
// a compound agent with a sabotaged κ_e must trip the Eq. 4 one-step
// invariant, and the violation must identify that checker by name.
func TestBrokenEmergencyTripsOneStepChecker(t *testing.T) {
	cfg := invariantConfig()
	sc := cfg.Scenario
	// The aggressive expert regularly drives the ego into the boundary safe
	// set, so κ_e — here, the sabotaged one — actually gets control.
	agent := brokenEmergency{inner: core.NewBasic(sc, planner.AggressiveExpert(sc)), cfg: sc}
	opts := Options{Invariants: []Invariant{EmergencyOneStep{Cfg: sc}}}
	tripped := 0
	for seed := int64(1); seed <= 50; seed++ {
		opts.Seed = seed
		_, err := Run(cfg, agent, opts)
		if err == nil {
			continue
		}
		var v *ViolationError
		if !errors.As(err, &v) {
			t.Fatalf("seed %d: unexpected non-violation error %v", seed, err)
		}
		if v.Invariant != (EmergencyOneStep{}).Name() {
			t.Fatalf("seed %d: wrong invariant %q in %v", seed, v.Invariant, err)
		}
		if math.IsNaN(v.T) {
			t.Fatalf("seed %d: step-level violation lost its timestamp: %v", seed, err)
		}
		tripped++
	}
	if tripped == 0 {
		t.Fatal("sabotaged emergency planner never tripped the one-step checker in 50 seeds")
	}
}

// TestGuaranteedAgentsPassAllInvariants sweeps the guaranteed designs
// through every checker under disturbed communications: zero violations.
func TestGuaranteedAgentsPassAllInvariants(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"none":    func(*Config) {},
		"delayed": func(c *Config) { c.Comms = comms.Delayed(0.25, 0.5) },
		"lost":    func(c *Config) { c.Comms = comms.Lost(); c.Sensor = sensor.Uniform(2.0) },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			mutate(&cfg)
			sc := cfg.Scenario
			for _, agent := range []core.Agent{
				core.NewBasic(sc, planner.ConservativeExpert(sc)),
				core.NewBasic(sc, planner.AggressiveExpert(sc)),
			} {
				opts := Options{Invariants: fullInvariants(sc)}
				for seed := int64(1); seed <= 25; seed++ {
					opts.Seed = seed
					if _, err := Run(cfg, agent, opts); err != nil {
						t.Fatalf("agent %s seed %d: %v", agent.Name(), seed, err)
					}
				}
			}
		})
	}
}

// TestSoundEstimateCheckerDetectsUnsoundFilter: the pure-NN design carries
// no guarantee, but its *estimates* are still sound, so SoundEstimate must
// pass even where NoCollision fails.  Conversely NoCollision must trip on
// at least one pure-κ_n collision under disturbance — the paper's baseline
// result, restated as a checker test.
func TestNoCollisionTripsOnPureNN(t *testing.T) {
	cfg := invariantConfig()
	sc := cfg.Scenario
	agent := &core.PureNN{Cfg: sc, Planner: planner.AggressiveExpert(sc)}
	opts := Options{Invariants: []Invariant{NoCollision{}, SoundEstimate{}}}
	tripped := 0
	for seed := int64(1); seed <= 200 && tripped == 0; seed++ {
		opts.Seed = seed
		_, err := Run(cfg, agent, opts)
		if err == nil {
			continue
		}
		var v *ViolationError
		if !errors.As(err, &v) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v.Invariant != (NoCollision{}).Name() {
			t.Fatalf("seed %d: expected a no-collision violation, got %v", seed, err)
		}
		if !math.IsNaN(v.T) {
			t.Fatalf("seed %d: episode-level violation carries a step time: %v", seed, err)
		}
		tripped++
	}
	if tripped == 0 {
		t.Fatal("pure κ_n never collided in 200 delayed-comms seeds; baseline fixture is broken")
	}
}

// TestInvariantsThreadThroughMulti exercises the per-track step checks in
// the multi-vehicle loop.
func TestInvariantsThreadThroughMulti(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	sc := cfg.Scenario
	agent := core.NewMultiBasic(sc, planner.ConservativeExpert(sc))
	for seed := int64(1); seed <= 10; seed++ {
		_, err := RunMulti(cfg, agent, Options{
			Seed:       seed,
			Invariants: []Invariant{NoCollision{}, SoundEstimate{}, EmergencyOneStep{Cfg: sc}},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
